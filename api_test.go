package noisewave_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"noisewave"
)

// TestSentinelErrorContract: the re-exported sentinels must be matchable
// with errors.Is through every layer of wrapping the library applies.
func TestSentinelErrorContract(t *testing.T) {
	// ErrBadSamples from waveform construction.
	if _, err := noisewave.NewWaveform(nil, nil); !errors.Is(err, noisewave.ErrBadSamples) {
		t.Errorf("NewWaveform(nil, nil) = %v, want ErrBadSamples", err)
	}
	if _, err := noisewave.NewWaveform([]float64{1, 0}, []float64{0, 1}); !errors.Is(err, noisewave.ErrBadSamples) {
		t.Errorf("non-monotonic samples: %v, want ErrBadSamples", err)
	}

	// ErrEmptyWindow from a degenerate extraction window.
	w, err := noisewave.NewWaveform([]float64{0, 1}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Window(5, 3); !errors.Is(err, noisewave.ErrEmptyWindow) {
		t.Errorf("Window(5, 3) = %v, want ErrEmptyWindow", err)
	}
	if _, err := w.Window(10, 20); !errors.Is(err, noisewave.ErrEmptyWindow) {
		t.Errorf("Window outside span = %v, want ErrEmptyWindow", err)
	}

	// ErrNoCrossing from an arrival query on a flat waveform.
	flat, _ := noisewave.NewWaveform([]float64{0, 1}, []float64{0.2, 0.2})
	if _, err := noisewave.GateDelay(w, flat, 1.0); !errors.Is(err, noisewave.ErrNoCrossing) {
		t.Errorf("GateDelay on flat output = %v, want ErrNoCrossing", err)
	}
}

// TestFacadeCancellation: a canceled context surfaces ErrCanceled (and the
// context's own cause) through the facade's comparison entry point.
func TestFacadeCancellation(t *testing.T) {
	tech := noisewave.DefaultTech()
	gate := noisewave.NewInverterChainSim(tech, []float64{1}, 1e-12)
	w, err := noisewave.NewWaveform([]float64{0, 1e-9, 2e-9}, []float64{0, tech.Vdd / 2, tech.Vdd})
	if err != nil {
		t.Fatal(err)
	}
	out, err := noisewave.NewWaveform([]float64{0, 1e-9, 2e-9}, []float64{tech.Vdd, tech.Vdd / 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	in := noisewave.TechniqueInput{Noisy: w, Noiseless: w, NoiselessOut: out, Vdd: tech.Vdd}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = noisewave.CompareTechniquesWith(gate, in, out, noisewave.CompareTechniquesOpts{Ctx: ctx})
	if !errors.Is(err, noisewave.ErrCanceled) {
		t.Errorf("canceled comparison: %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled comparison: %v, want context.Canceled via the cause chain", err)
	}
}

// TestFacadeTelemetrySnapshot: the exported registry/snapshot types work
// end to end — collect, snapshot, delta, render.
func TestFacadeTelemetrySnapshot(t *testing.T) {
	reg := noisewave.NewTelemetry()
	reg.Counter("demo.count").Add(3)
	before := reg.Snapshot()
	reg.Counter("demo.count").Add(2)
	stop := reg.Timer("demo.seconds").Start()
	stop()
	after := reg.Snapshot()

	d := after.Delta(before)
	if got := d.Counters["demo.count"]; got != 2 {
		t.Errorf("delta counter = %d, want 2", got)
	}
	if got := d.Timers["demo.seconds"].Count; got != 1 {
		t.Errorf("delta timer count = %d, want 1", got)
	}
	var b strings.Builder
	if err := after.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(b.String(), "demo.count") {
		t.Errorf("text dump missing counter:\n%s", b.String())
	}
	var js strings.Builder
	if err := after.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(js.String(), "\"demo.count\"") {
		t.Errorf("JSON dump missing counter:\n%s", js.String())
	}
}

// TestTable1OptionsSweepThrough: the embedded SweepOptions block reaches
// the sweep engine — a one-case smoke run through the facade with telemetry
// and a deprecated-path equivalence check on the options plumbing.
func TestTable1OptionsSweepThrough(t *testing.T) {
	if testing.Short() {
		t.Skip("transient sweep")
	}
	cfg := noisewave.ConfigurationI(noisewave.DefaultTech())
	cfg.Step = 2e-12
	reg := noisewave.NewTelemetry()
	opts := noisewave.Table1Options{
		Cases: 2, Range: 1e-9, P: 35,
		SweepOptions: noisewave.SweepOptions{Workers: 1, Telemetry: reg},
	}
	res, err := noisewave.RunTable1(cfg, opts)
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if len(res.Stats) == 0 {
		t.Fatal("no stats")
	}
	snap := reg.Snapshot()
	if snap.Counters["sweep.cases_completed"] != 2 {
		t.Errorf("sweep.cases_completed = %d, want 2", snap.Counters["sweep.cases_completed"])
	}

	// The same options without telemetry must produce bit-identical stats:
	// observation cannot perturb the result.
	plain := opts
	plain.Telemetry = nil
	res2, err := noisewave.RunTable1(cfg, plain)
	if err != nil {
		t.Fatalf("RunTable1 (no telemetry): %v", err)
	}
	if !reflect.DeepEqual(res.Stats, res2.Stats) {
		t.Errorf("telemetry changed the statistics:\nwith    %+v\nwithout %+v", res.Stats, res2.Stats)
	}
}
