module noisewave

go 1.22
