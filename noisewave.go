// Package noisewave is a noise-aware static timing analysis library: a Go
// reproduction of "Modeling and Propagation of Noisy Waveforms in Static
// Timing Analysis" (Nazarian, Pedram, Tuncer, Lin, Ajami — DATE 2005).
//
// The package provides, from the bottom up:
//
//   - sampled voltage waveforms and saturated ramps (Γeff) — wave types,
//   - a transistor-level transient circuit simulator (the golden
//     reference standing in for Hspice),
//   - alpha-power-law CMOS cells and an NLDM characterization engine with
//     a Liberty-subset writer/parser,
//   - the six equivalent-waveform techniques of the paper — P1, P2, LSF3,
//     E4, WLS5 and the proposed SGDP,
//   - the coupled-interconnect crosstalk testbench of the paper's Figure 1,
//   - a gate-level static timing engine with a noise-aware mode, and
//   - experiment drivers that regenerate every table and figure of the
//     paper's evaluation (Table 1, Figure 2, §4.2 run times).
//
// This root package is a facade re-exporting the stable public surface;
// the implementation lives in internal/ packages. Examples under examples/
// exercise exactly this surface.
package noisewave

import (
	"io"

	"noisewave/internal/charlib"
	"noisewave/internal/core"
	"noisewave/internal/device"
	"noisewave/internal/eqwave"
	"noisewave/internal/experiments"
	"noisewave/internal/liberty"
	"noisewave/internal/netgen"
	"noisewave/internal/netlist"
	"noisewave/internal/noise"
	"noisewave/internal/spef"
	"noisewave/internal/spice"
	"noisewave/internal/sta"
	"noisewave/internal/telemetry"
	"noisewave/internal/verilog"
	"noisewave/internal/wave"
	"noisewave/internal/xtalk"
)

// Error contract. The library reports failure classes through sentinel
// errors; match them with errors.Is regardless of how many layers of
// wrapping ("experiments: case 12: spice: ...") sit on top:
//
//	ErrCanceled          the run stopped because a context was canceled or
//	                     timed out. Errors carrying it also wrap the
//	                     context's cause, so errors.Is(err,
//	                     context.DeadlineExceeded) works too. Drivers that
//	                     sweep many cases return their partial statistics
//	                     alongside this error.
//	ErrNoConvergence     the transient simulator's Newton iteration failed —
//	                     the circuit, step or tolerances are pathological.
//	ErrBadSamples        waveform construction from an empty or
//	                     non-monotonic sample series.
//	ErrEmptyWindow       a waveform extraction window was empty or missed
//	                     the waveform's span.
//	ErrNoCrossing        a waveform never reaches a requested threshold
//	                     (e.g. arrival measurement on an incomplete edge).
//	ErrCombinationalLoop the static timing engine found a cycle in the
//	                     gate graph.
var (
	ErrCanceled          = telemetry.ErrCanceled
	ErrNoConvergence     = spice.ErrNewton
	ErrBadSamples        = wave.ErrBadSamples
	ErrEmptyWindow       = wave.ErrEmptyWindow
	ErrNoCrossing        = wave.ErrNoCrossing
	ErrCombinationalLoop = sta.ErrCombinationalLoop
)

// Telemetry is the concurrency-safe metrics registry observed by the whole
// pipeline: spice engine counters, replay-cache outcomes, per-technique
// fit timers, sweep worker throughput and per-experiment wall timers. Pass
// one registry through the options structs (CompareTechniquesOpts,
// SweepOptions, Timer.Telemetry); a nil registry disables collection at
// zero cost.
type Telemetry = telemetry.Registry

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// MetricsSnapshot is a point-in-time copy of a Telemetry registry; subtract
// two with Snapshot.Delta and render with WriteText/WriteJSON.
type MetricsSnapshot = telemetry.Snapshot

// Waveform is a sampled piecewise-linear voltage waveform.
type Waveform = wave.Waveform

// Ramp is a saturated linear waveform — the equivalent waveform Γeff.
type Ramp = wave.Ramp

// Edge is a transition direction.
type Edge = wave.Edge

// Transition directions.
const (
	Rising  = wave.Rising
	Falling = wave.Falling
)

// NewWaveform validates and wraps (t, v) samples.
func NewWaveform(t, v []float64) (*Waveform, error) { return wave.New(t, v) }

// Technique converts a noisy input waveform into an equivalent linear
// waveform.
type Technique = eqwave.Technique

// TechniqueInput carries the waveforms a technique consumes.
type TechniqueInput = eqwave.Input

// SGDP is the paper's sensitivity-based gate delay propagation technique.
type SGDP = eqwave.SGDP

// NewSGDP returns SGDP with the paper's full feature set.
func NewSGDP() *SGDP { return eqwave.NewSGDP() }

// AllTechniques returns P1, P2, LSF3, E4, WLS5 and SGDP in Table 1 order.
func AllTechniques() []Technique { return eqwave.All() }

// TechniqueByName resolves "P1".."SGDP".
func TechniqueByName(name string) (Technique, error) { return eqwave.ByName(name) }

// Sensitivity is the sampled output-to-input derivative ρ of a gate.
type Sensitivity = eqwave.Sensitivity

// ComputeSensitivity samples ρ over the noiseless critical region.
func ComputeSensitivity(nlIn, nlOut *Waveform, vdd float64, edge Edge, n int) (*Sensitivity, error) {
	return eqwave.ComputeSensitivity(nlIn, nlOut, vdd, edge, n)
}

// Tech describes a CMOS technology for the built-in cells.
type Tech = device.Tech

// DefaultTech returns the built-in 130 nm-class technology.
func DefaultTech() Tech { return device.Default130() }

// Corner describes a process/voltage/temperature corner; apply with
// Tech.AtCorner.
type Corner = device.Corner

// Standard corners of the built-in technology.
var (
	TypicalCorner = device.TypicalCorner
	SlowCorner    = device.SlowCorner
	FastCorner    = device.FastCorner
)

// CrosstalkConfig is a coupled-line noise-injection testbench configuration
// (the paper's Figure 1).
type CrosstalkConfig = xtalk.Config

// ConfigurationI returns the paper's single-aggressor configuration.
func ConfigurationI(t Tech) CrosstalkConfig { return xtalk.ConfigurationI(t) }

// ConfigurationII returns the paper's two-aggressor configuration.
func ConfigurationII(t Tech) CrosstalkConfig { return xtalk.ConfigurationII(t) }

// QuietAggressor marks an aggressor as non-switching in CrosstalkConfig.Run.
func QuietAggressor() float64 { return xtalk.Quiet }

// GateSim is the transistor-level gate evaluation backend.
type GateSim = core.GateSim

// NewInverterChainSim builds an inverter-chain receiver (gate under test at
// drives[0]) evaluated with the internal transient simulator.
func NewInverterChainSim(t Tech, drives []float64, step float64) *GateSim {
	return core.NewInverterChainSim(t, drives, step)
}

// Comparison scores every technique against the transient reference for
// one noise case.
type Comparison = core.Comparison

// TechniqueResult is one technique's scored prediction.
type TechniqueResult = core.TechniqueResult

// CompareTechniquesOpts configures CompareTechniquesWith: cancellation
// context, technique set (nil = all six) and optional telemetry registry.
type CompareTechniquesOpts = core.CompareOptions

// CompareTechniquesWith runs the selected techniques on one noisy case and
// scores the predicted output arrivals against the reference output. A
// canceled opts.Ctx aborts between techniques and inside the gate replays
// with an error matching ErrCanceled.
func CompareTechniquesWith(gate *GateSim, in TechniqueInput, trueOut *Waveform, opts CompareTechniquesOpts) (*Comparison, error) {
	return core.CompareTechniquesWith(gate, in, trueOut, opts)
}

// CompareTechniques runs all techniques on one noisy case and scores the
// predicted output arrivals against the reference output.
//
// Deprecated: use CompareTechniquesWith, which adds cancellation and
// telemetry through an options struct. CompareTechniques(gate, in, out,
// techs) is equivalent to CompareTechniquesWith(gate, in, out,
// CompareTechniquesOpts{Techniques: techs}).
func CompareTechniques(gate *GateSim, in TechniqueInput, trueOut *Waveform, techs []Technique) (*Comparison, error) {
	return core.CompareTechniquesWith(gate, in, trueOut, core.CompareOptions{Techniques: techs})
}

// GateDelay measures the 50%-to-50% delay between two waveforms.
func GateDelay(in, out *Waveform, vdd float64) (float64, error) {
	return core.GateDelay(in, out, vdd)
}

// Library is an NLDM cell library.
type Library = liberty.Library

// ParseLibrary reads a Liberty-subset file.
func ParseLibrary(r io.Reader) (*Library, error) { return liberty.Parse(r) }

// CharacterizationOptions configures library characterization.
type CharacterizationOptions = charlib.Options

// DefaultCharacterization returns the production slew×load grid.
func DefaultCharacterization() CharacterizationOptions { return charlib.DefaultOptions() }

// FastCharacterization returns a coarse grid for quick runs.
func FastCharacterization() CharacterizationOptions { return charlib.FastOptions() }

// Characterize sweeps the built-in standard cells into an NLDM library.
func Characterize(t Tech, opts CharacterizationOptions) (*Library, error) {
	return charlib.Characterize(t, charlib.StandardCells(t), opts)
}

// Design is a parsed gate-level netlist.
type Design = netlist.Design

// ParseNetlist reads the STA netlist format.
func ParseNetlist(r io.Reader) (*Design, error) { return netlist.Parse(r) }

// Timer is the static timing engine.
type Timer = sta.Timer

// NoiseAnnotation attaches crosstalk waveforms to a net for noise-aware
// timing.
type NoiseAnnotation = sta.NoiseAnnotation

// NewTimer builds a timer over a library and design (noise conversion
// defaults to SGDP).
func NewTimer(lib *Library, d *Design) *Timer { return sta.New(lib, d) }

// TimingResult is the output of a timing run: per-net, per-edge arrivals
// with transitions, early/late bounds and critical-path back-pointers.
type TimingResult = sta.Result

// RunOptions is the run-control block of Timer.RunCtx — the context-first
// timing entry point: cancellation context, worker-pool size for the
// levelized parallel engine (results are bit-identical at any worker
// count), per-run telemetry/tracing and a per-run wire-model override.
type RunOptions = sta.RunOptions

// PathStep is one hop of an extracted critical path.
type PathStep = sta.PathStep

// WireModel selects how interconnect delay is modeled during timing.
type WireModel = sta.WireModel

// Wire models: ideal (zero-delay) wires, or first-order Elmore RC delay
// from netres/netcap annotations.
const (
	IdealWire  = sta.IdealWire
	ElmoreWire = sta.ElmoreWire
)

// MultiDriverError reports a net driven by more than one gate output;
// match with errors.As to recover the net and both driver names.
type MultiDriverError = sta.MultiDriverError

// SweepOptions is the sweep-control block shared by the experiment drivers
// (embedded in Table1Options, PushoutOptions, Figure2Options): worker-pool
// size, seed, progress callback, cancellation context and telemetry.
type SweepOptions = experiments.SweepOptions

// Table1Options parameterizes the Table 1 sweep.
type Table1Options = experiments.Table1Options

// Table1Result is one configuration block of the reproduced Table 1.
type Table1Result = experiments.Table1Result

// RunTable1 reproduces one configuration of the paper's Table 1.
func RunTable1(cfg CrosstalkConfig, opts Table1Options) (*Table1Result, error) {
	return experiments.RunTable1(cfg, opts)
}

// Figure2Series is the data behind the paper's Figure 2.
type Figure2Series = experiments.Figure2Series

// Figure2Options selects the noisy case of Figure 2's panel (b).
type Figure2Options = experiments.Figure2Options

// RunFigure2 regenerates the Figure 2 waveform series.
func RunFigure2(cfg CrosstalkConfig, opts Figure2Options) (*Figure2Series, error) {
	return experiments.RunFigure2(cfg, opts)
}

// Glitch summarizes a functional-noise bump on a quiet net.
type Glitch = noise.Glitch

// GlitchPropagation reports how a glitch survives a receiving gate.
type GlitchPropagation = noise.PropagationResult

// AnalyzeGlitch measures the dominant excursion on a quiet-net waveform.
func AnalyzeGlitch(w *Waveform) (Glitch, error) { return noise.Analyze(w) }

// PropagateGlitch replays a glitch into a receiving gate chain and
// measures the surviving output excursion against failThreshold.
func PropagateGlitch(gate *GateSim, glitchWave *Waveform, failThreshold float64) (GlitchPropagation, error) {
	return noise.Propagate(gate, glitchWave, failThreshold)
}

// RequiredTimes holds backward-propagated required times and slacks.
type RequiredTimes = sta.RequiredTimes

// VerilogModule is a parsed structural Verilog module.
type VerilogModule = verilog.Module

// ParseVerilog reads a structural Verilog module (named connections only);
// convert with VerilogModule.ToDesign.
func ParseVerilog(r io.Reader) (*VerilogModule, error) { return verilog.Parse(r) }

// Parasitics is parsed SPEF content (net ground caps + couplings).
type Parasitics = spef.Parasitics

// ParseSPEF reads the supported SPEF subset; apply with
// Parasitics.Annotate(design).
func ParseSPEF(r io.Reader) (*Parasitics, error) { return spef.Parse(r) }

// PushoutStats characterizes the delay-noise distribution of a crosstalk
// configuration.
type PushoutStats = experiments.PushoutStats

// PushoutOptions configures the delay-noise distribution sweep.
type PushoutOptions = experiments.PushoutOptions

// RunPushout sweeps aggressor alignments and measures reference output
// arrival shifts against the quiet baseline.
func RunPushout(cfg CrosstalkConfig, opts PushoutOptions) (*PushoutStats, error) {
	return experiments.RunPushout(cfg, opts)
}

// GenerateChain programmatically builds an n-stage chain design.
func GenerateChain(name string, n int, cells []string) *Design {
	return netlist.GenerateChain(name, n, cells)
}

// GenerateTree programmatically builds a balanced NAND-reduction tree with
// 2^depth inputs.
func GenerateTree(name string, depth int, nandCell string) *Design {
	return netlist.GenerateTree(name, depth, nandCell)
}

// WriteNetlist emits a design in the STA netlist format (the inverse of
// ParseNetlist; quantities round-trip exactly).
func WriteNetlist(w io.Writer, d *Design) error { return netlist.Write(w, d) }

// MeshConfig parameterizes a seeded synthetic mesh netlist — the workload
// generator behind the full-chip timing benchmarks. Start from DefaultMesh
// and override; equal configs generate identical designs.
type MeshConfig = netgen.Config

// DefaultMesh returns the standard mesh configuration for a gate count:
// 40% NAND2, jittered wire parasitics, 5% coupled nets.
func DefaultMesh(gates int) MeshConfig { return netgen.DefaultConfig(gates) }

// GenerateMesh builds a levelized synthetic mesh (10³–10⁶ gates) that
// validates, writes, and times at any worker count.
func GenerateMesh(cfg MeshConfig) (*Design, error) { return netgen.Generate(cfg) }

// SyntheticMeshLibrary returns the analytic NLDM library covering the mesh
// cell set (INVX1, INVX4, NAND2X1) — benchmark designs need no
// transistor-level characterization run.
func SyntheticMeshLibrary() *Library { return netgen.SyntheticLibrary() }

// MeshNoiseSite is one synthetic crosstalk victim on a generated mesh: the
// waveform trio to attach via Timer.Annotate.
type MeshNoiseSite = netgen.NoiseSite

// MeshNoiseSites deterministically synthesizes noise annotations for a
// fraction of a generated mesh's nets.
func MeshNoiseSites(cfg MeshConfig, d *Design, vdd, frac float64) []MeshNoiseSite {
	return netgen.NoiseSites(cfg, d, vdd, frac)
}
