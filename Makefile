# Development entry points; CI (.github/workflows/ci.yml) runs the same
# targets.

GO ?= go

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep engine and the experiment drivers are the only concurrent code;
# they get a dedicated race-detector pass.
race:
	$(GO) test -race ./internal/sweep/... ./internal/experiments/...

# Scaling benchmark for the parallel sweep engine (see EXPERIMENTS.md).
bench:
	$(GO) test -run XXX -bench BenchmarkTable1ParallelSweep -benchtime 3x .

check: vet build test race
