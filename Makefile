# Development entry points; CI (.github/workflows/ci.yml) runs the same
# targets.

GO ?= go

.PHONY: all vet build test race bench bench-micro bench-batch check staticcheck metrics-demo logs-demo chaos fuzz serve-smoke serve-crash loadtest

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The metrics registry, the sweep engine, the experiment drivers, the span
# tracer, the observability layer and the levelized parallel timer are the
# concurrent code; they get a dedicated race-detector pass.
race:
	$(GO) test -race ./internal/telemetry/... ./internal/sweep/... ./internal/experiments/... \
		./internal/trace/... ./internal/obs/... ./internal/jobs/... ./internal/sta/...

# Benchmark trajectory harness: run the pinned CI workload and write
# BENCH_table1-small.json. Gate a change against a saved baseline with
# `go run ./cmd/bench -workload table1-small -compare old.json`
# (see EXPERIMENTS.md "Benchmark trajectory").
bench:
	$(GO) run ./cmd/bench -workload table1-small

# Batch-engine micro-benchmark: K lockstep transients through the shared
# trunk vs the same K cases run scalar, with allocation counts — the
# batched steady state must beat scalar on both time/op and allocs/op
# (see EXPERIMENTS.md "Batched lockstep solving").
bench-batch:
	$(GO) test -run XXX -bench BenchmarkBatchRun -benchtime 2s -benchmem ./internal/spice/

# Go micro/scaling benchmarks: the parallel sweep engine and the crossing
# scan on the arrival-measurement hot path.
bench-micro:
	$(GO) test -run XXX -bench BenchmarkTable1ParallelSweep -benchtime 3x .
	$(GO) test -run XXX -bench BenchmarkCrossings ./internal/wave/
	$(GO) test -run XXX -bench 'BenchmarkAssemble|BenchmarkNewtonIteration|BenchmarkTransientStep' ./internal/spice/

# Fault-injection suite under the race detector: every chaos test drives the
# recovery ladder, the quarantine path or the degraded fallback through the
# deterministic injector (see EXPERIMENTS.md "Failure handling & chaos
# testing").
chaos:
	$(GO) test -race -run 'Chaos' ./internal/spice/... ./internal/sweep/... ./internal/xtalk/... ./internal/experiments/...

# Short fuzz pass over the waveform constructor and crossing scan; CI runs
# the same budget, longer local runs just raise -fuzztime.
fuzz:
	$(GO) test -run XXX -fuzz FuzzWaveNew -fuzztime 15s ./internal/wave/
	$(GO) test -run XXX -fuzz FuzzCrossings -fuzztime 15s ./internal/wave/

# Lint with staticcheck when available (CI installs it; local runs skip
# gracefully rather than demanding an install).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Small instrumented run: Table 1 on six cases with the telemetry snapshot
# dumped at exit (see EXPERIMENTS.md "Observability").
metrics-demo:
	$(GO) run ./cmd/repro -experiment table1 -cases 6 -config I -q -metrics text

# Small structured-logging run: the same six cases under chaos so the
# quarantine and solver-recovery log events actually fire, streamed as
# human-readable lines (see EXPERIMENTS.md "Request-scoped observability").
logs-demo:
	$(GO) run ./cmd/repro -experiment table1 -cases 6 -config I -q \
		-keep-going -chaos 1 -log debug -log-format human

# Timing-as-a-service self-test: boot cmd/serve on a loopback port, drive
# the HTTP job API end to end (submit, poll, result), compare every number
# against the direct in-process run, and verify identical resubmissions are
# served from the content-addressed cache with zero new solves (see
# EXPERIMENTS.md "Timing as a service").
serve-smoke:
	$(GO) run ./cmd/serve -smoke

# Crash-recovery acceptance run, under the race detector: build the real
# binary, kill -9 it mid-batch, verify the restart replays the write-ahead
# journal and completes the batch, verify durable cache hits run zero new
# solves, then SIGTERM-drain and check the clean-shutdown path (see
# EXPERIMENTS.md "Durability & crash recovery").
serve-crash:
	$(GO) test -race -run TestServeCrashRecovery -count=1 ./cmd/serve/

# Sustained load test: 8 concurrent submitters drive distinct jobs through
# the full HTTP surface; the report gives p50/p95/p99 submit-to-done latency
# plus the server-side jobs.run_seconds distribution.
loadtest:
	$(GO) run ./cmd/serve -load -load-out LOAD_report.json

check: vet build test race chaos staticcheck serve-smoke serve-crash
