package noisewave

import (
	"fmt"
	"sync"
	"testing"

	"noisewave/internal/charlib"
	"noisewave/internal/device"
	"noisewave/internal/eqwave"
	"noisewave/internal/experiments"
	"noisewave/internal/xtalk"
)

// The benchmark harness regenerates every evaluation artifact of the paper:
//
//	Table 1  -> BenchmarkTable1ConfigurationI / BenchmarkTable1ConfigurationII
//	            (full accuracy sweep at reduced case count per iteration;
//	            run cmd/repro for the 200-case numbers)
//	Figure 2 -> BenchmarkFigure2 (sensitivity + Γeff series generation)
//	§4.2     -> BenchmarkTechniqueFit/* (per-gate Γeff fit time per
//	            technique, P=35) and BenchmarkSGDPSampleSweep/P=* (the
//	            accuracy/run-time trade-off knob)
//	Figure 1 -> BenchmarkTestbenchTransient (one golden-reference transient
//	            of the coupled testbench)
//
// Ablation benches (design choices called out in DESIGN.md):
//
//	BenchmarkSGDPAblation/* — fit cost of SGDP variants (no remap, first
//	order only, no δ-shift), showing what each step of §3 costs.
type benchEnv struct {
	cfg   xtalk.Config
	in    eqwave.Input
	gate  *GateSim
	trueO *Waveform
}

var (
	benchOnce sync.Once
	benchErr  error
	env       benchEnv
)

// setupBench simulates one representative noisy case of Configuration I
// shared by all fitting benchmarks.
func setupBench(b *testing.B) *benchEnv {
	benchOnce.Do(func() {
		tech := device.Default130()
		cfg := xtalk.ConfigurationI(tech)
		const vs = 0.3e-9
		nlIn, nlOut, err := cfg.RunNoiseless(vs)
		if err != nil {
			benchErr = err
			return
		}
		noisy, trueOut, err := cfg.Run(vs, []float64{vs + 0.05e-9})
		if err != nil {
			benchErr = err
			return
		}
		env = benchEnv{
			cfg: cfg,
			in: eqwave.Input{
				Noisy: noisy, Noiseless: nlIn, NoiselessOut: nlOut,
				Vdd: tech.Vdd, Edge: cfg.VictimEdge, P: eqwave.DefaultP,
			},
			gate: NewInverterChainSim(tech,
				[]float64{cfg.ReceiverDrive, cfg.Load1Drive, cfg.Load2Drive}, cfg.Step),
			trueO: trueOut,
		}
	})
	if benchErr != nil {
		b.Fatalf("bench setup: %v", benchErr)
	}
	return &env
}

// benchTable1 runs a reduced-case Table 1 sweep per iteration.
func benchTable1(b *testing.B, cfg xtalk.Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(cfg, experiments.Table1Options{
			Cases: 10, Range: 1e-9, P: eqwave.DefaultP,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range res.Stats {
				b.Logf("%-5s max=%6.2fps avg=%5.2fps", s.Name, s.MaxAbs*1e12, s.AvgAbs*1e12)
			}
		}
	}
}

func BenchmarkTable1ConfigurationI(b *testing.B) {
	benchTable1(b, xtalk.ConfigurationI(device.Default130()))
}

func BenchmarkTable1ConfigurationII(b *testing.B) {
	benchTable1(b, xtalk.ConfigurationII(device.Default130()))
}

func BenchmarkFigure2(b *testing.B) {
	cfg := xtalk.ConfigurationI(device.Default130())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure2(cfg, experiments.Figure2Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTechniqueFit is the §4.2 run-time comparison: the per-gate cost
// of computing Γeff with each technique at P = 35.
func BenchmarkTechniqueFit(b *testing.B) {
	e := setupBench(b)
	for _, tech := range eqwave.All() {
		b.Run(tech.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tech.Equivalent(e.in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSGDPSampleSweep varies P (§4.2: "SGDP run-time can be reduced by
// using smaller P values").
func BenchmarkSGDPSampleSweep(b *testing.B) {
	e := setupBench(b)
	sgdp := eqwave.NewSGDP()
	for _, p := range []int{9, 17, 35, 71, 141} {
		in := e.in
		in.P = p
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgdp.Equivalent(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSGDPAblation times the §3 pipeline variants.
func BenchmarkSGDPAblation(b *testing.B) {
	e := setupBench(b)
	variants := map[string]*eqwave.SGDP{
		"full":        eqwave.NewSGDP(),
		"first-order": {VoltageRemap: true, DeltaShift: true},
		"no-remap":    {SecondOrder: true, DeltaShift: true},
		"no-shift":    {VoltageRemap: true, SecondOrder: true},
	}
	for _, name := range []string{"full", "first-order", "no-remap", "no-shift"} {
		v := variants[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := v.Equivalent(e.in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGateEvaluation measures the transistor-level replay of Γeff
// through the receiver chain — the evaluation step shared by all
// techniques in the accuracy experiments.
func BenchmarkGateEvaluation(b *testing.B) {
	e := setupBench(b)
	gamma, err := eqwave.NewSGDP().Equivalent(e.in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.gate.OutputForRamp(gamma, 0, 2.5e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTestbenchTransient measures one golden-reference transient of
// the full Figure 1 testbench (Configuration I).
func BenchmarkTestbenchTransient(b *testing.B) {
	cfg := xtalk.ConfigurationI(device.Default130())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		const vs = 0.3e-9
		if _, _, err := cfg.Run(vs, []float64{vs + 0.05e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareTechniques measures the full per-case scoring pipeline
// (six fits + six gate evaluations) used by the Table 1 sweep.
func BenchmarkCompareTechniques(b *testing.B) {
	e := setupBench(b)
	techs := eqwave.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompareTechniquesWith(e.gate, e.in, e.trueO, CompareTechniquesOpts{Techniques: techs}); err != nil {
			b.Fatal(err)
		}
	}
}

// staLib caches a coarse characterized library for the STA scaling benches.
var (
	staLibOnce sync.Once
	staLib     *Library
	staLibErr  error
)

func staLibrary(b *testing.B) *Library {
	staLibOnce.Do(func() {
		staLib, staLibErr = Characterize(DefaultTech(), FastCharacterization())
	})
	if staLibErr != nil {
		b.Fatal(staLibErr)
	}
	return staLib
}

// BenchmarkSTAChain measures arrival propagation over inverter chains —
// the timer's per-gate cost (no noise conversion).
func BenchmarkSTAChain(b *testing.B) {
	lib := staLibrary(b)
	for _, n := range []int{10, 100, 1000} {
		d := GenerateChain("chain", n, []string{"INVX1", "INVX4"})
		b.Run(fmt.Sprintf("gates=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewTimer(lib, d).Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSTATree measures the wide-graph case (2^depth inputs reduced by
// NAND2 levels) including worst-arrival selection at every node.
func BenchmarkSTATree(b *testing.B) {
	lib := staLibrary(b)
	for _, depth := range []int{4, 8} {
		d := GenerateTree("tree", depth, "NAND2X1")
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewTimer(lib, d).Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCharacterizeCell measures one full slew×load characterization
// of a single inverter (the cost unit behind cmd/charlib).
func BenchmarkCharacterizeCell(b *testing.B) {
	tech := DefaultTech()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := charlib.Characterize(tech,
			[]device.Cell{device.Inverter(tech, 4)}, charlib.FastOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1ParallelSweep measures the sweep engine's scaling on a
// 40-case Table 1 sweep at 1, 2 and 4 workers (coarsened transient step so
// one iteration stays tractable). Each worker owns a private simulator, the
// cases are independent, and the statistics are bit-identical across worker
// counts, so on a 4-core machine workers=4 should deliver well above 1.8×
// the workers=1 throughput; on fewer cores the curve flattens accordingly.
func BenchmarkTable1ParallelSweep(b *testing.B) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	const cases = 40
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunTable1(cfg, experiments.Table1Options{
					Cases: cases, Range: 1e-9, P: eqwave.DefaultP,
					SweepOptions: experiments.SweepOptions{Workers: w},
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cases)*float64(b.N)/b.Elapsed().Seconds(), "cases/s")
		})
	}
}

// BenchmarkPushoutCase measures one reference noise-injection case (the
// unit of the delay-noise distribution sweep).
func BenchmarkPushoutCase(b *testing.B) {
	e := setupBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		const vs = 0.3e-9
		if _, _, err := e.cfg.Run(vs, []float64{vs + 0.1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}
