package noisewave

import (
	"os"
	"testing"
)

// TestSampleDesignBundle pins the shipped testdata files: the Verilog and
// native netlists must parse to equivalent designs, the SPEF must annotate
// cleanly, and the whole bundle must time end-to-end against a
// characterized library.
func TestSampleDesignBundle(t *testing.T) {
	vf, err := os.Open("testdata/sample.v")
	if err != nil {
		t.Fatal(err)
	}
	defer vf.Close()
	mod, err := ParseVerilog(vf)
	if err != nil {
		t.Fatalf("sample.v: %v", err)
	}
	dv, err := mod.ToDesign(120e-12)
	if err != nil {
		t.Fatalf("sample.v conversion: %v", err)
	}

	sf, err := os.Open("testdata/sample.spef")
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	para, err := ParseSPEF(sf)
	if err != nil {
		t.Fatalf("sample.spef: %v", err)
	}
	para.Annotate(dv)
	if dv.NetCaps["n3"] < 90e-15 {
		t.Errorf("n3 wire cap not annotated: %g", dv.NetCaps["n3"])
	}
	if len(dv.Couplings) == 0 {
		t.Error("coupling not annotated")
	}

	nf, err := os.Open("testdata/sample.nl")
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	dn, err := ParseNetlist(nf)
	if err != nil {
		t.Fatalf("sample.nl: %v", err)
	}
	if len(dn.Gates) != len(dv.Gates) {
		t.Errorf("gate count mismatch: %d vs %d", len(dn.Gates), len(dv.Gates))
	}

	lib, err := Characterize(DefaultTech(), FastCharacterization())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Design{dv, dn} {
		res, err := NewTimer(lib, d).Run()
		if err != nil {
			t.Fatalf("timing %s: %v", d.Name, err)
		}
		y := res.Nets["y"]
		if y == nil || (!y.Rise.Valid && !y.Fall.Valid) {
			t.Fatalf("design %s: output not timed", d.Name)
		}
	}
}
