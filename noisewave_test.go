package noisewave

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

// TestFacadeWaveforms exercises the exported waveform surface.
func TestFacadeWaveforms(t *testing.T) {
	w, err := NewWaveform([]float64{0, 1e-9}, []float64{0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if w.EdgeDir() != Rising {
		t.Error("edge")
	}
	if _, err := NewWaveform([]float64{1, 0}, []float64{0, 1}); err == nil {
		t.Error("invalid waveform accepted")
	}
}

// TestFacadeTechniques checks the exported technique registry and a full
// fit through the public types only.
func TestFacadeTechniques(t *testing.T) {
	if len(AllTechniques()) != 6 {
		t.Fatalf("techniques: %d", len(AllTechniques()))
	}
	if _, err := TechniqueByName("SGDP"); err != nil {
		t.Fatal(err)
	}
	if _, err := TechniqueByName("XXX"); err == nil {
		t.Error("unknown technique accepted")
	}

	const vdd = 1.2
	mk := func(t0, full float64, invert bool) *Waveform {
		ts := make([]float64, 900)
		vs := make([]float64, 900)
		for i := range ts {
			ts[i] = float64(i) * 2e-12
			u := (ts[i] - t0) / full
			u = math.Max(0, math.Min(1, u))
			if invert {
				u = 1 - u
			}
			vs[i] = vdd * u
		}
		w, err := NewWaveform(ts, vs)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	in := TechniqueInput{
		Noisy:        mk(0.4e-9, 0.3e-9, false),
		Noiseless:    mk(0.4e-9, 0.3e-9, false),
		NoiselessOut: mk(0.5e-9, 0.15e-9, true),
		Vdd:          vdd,
		Edge:         Rising,
	}
	gamma, err := NewSGDP().Equivalent(in)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := gamma.Arrival()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := in.Noisy.LastCrossing(0.5 * vdd)
	if math.Abs(arr-want) > 10e-12 {
		t.Errorf("facade SGDP arrival %.1f ps, want %.1f ps", arr*1e12, want*1e12)
	}
}

// TestFacadeSTAFlow runs the parse → characterize-free → time flow through
// the facade with a synthetic library file.
func TestFacadeSTAFlow(t *testing.T) {
	lib, err := ParseLibrary(strings.NewReader(`
library (t) {
  nom_voltage : 1.2;
  cell (INVX1) {
    pin (A) { direction : input; capacitance : 0.002; }
    pin (Y) {
      direction : output;
      timing () {
        related_pin : "A";
        timing_sense : negative_unate;
        cell_rise (x) { index_1 ("0.01,0.5"); index_2 ("0.001,0.1"); values ("0.01,0.02","0.03,0.04"); }
        cell_fall (x) { index_1 ("0.01,0.5"); index_2 ("0.001,0.1"); values ("0.01,0.02","0.03,0.04"); }
        rise_transition (x) { index_1 ("0.01,0.5"); index_2 ("0.001,0.1"); values ("0.02,0.03","0.04,0.05"); }
        fall_transition (x) { index_1 ("0.01,0.5"); index_2 ("0.001,0.1"); values ("0.02,0.03","0.04,0.05"); }
      }
    }
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseNetlist(strings.NewReader(`
design t
input a
output y
gate u1 INVX1 A=a Y=y
`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewTimer(lib, d).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Nets["y"] == nil || !res.Nets["y"].Rise.Valid {
		t.Fatal("no timing at output")
	}
}

// TestFacadeConfigurations spot-checks the exported testbench constructors.
func TestFacadeConfigurations(t *testing.T) {
	tech := DefaultTech()
	c1 := ConfigurationI(tech)
	c2 := ConfigurationII(tech)
	if c1.Aggressors != 1 || c2.Aggressors != 2 {
		t.Errorf("aggressors: %d %d", c1.Aggressors, c2.Aggressors)
	}
	if c1.LineLengthUm != 1000 || c2.LineLengthUm != 500 {
		t.Errorf("lengths: %g %g", c1.LineLengthUm, c2.LineLengthUm)
	}
	if !math.IsInf(QuietAggressor(), 1) {
		t.Error("QuietAggressor sentinel")
	}
}

// TestFacadeMeshTiming drives the full-chip surface end to end: generate a
// mesh, write and re-parse it, then time it with the context-first API at
// two worker counts and check the results agree.
func TestFacadeMeshTiming(t *testing.T) {
	cfg := DefaultMesh(400)
	cfg.Seed = 12
	d, err := GenerateMesh(cfg)
	if err != nil {
		t.Fatalf("GenerateMesh: %v", err)
	}

	var buf bytes.Buffer
	if err := WriteNetlist(&buf, d); err != nil {
		t.Fatalf("WriteNetlist: %v", err)
	}
	d2, err := ParseNetlist(&buf)
	if err != nil {
		t.Fatalf("ParseNetlist(WriteNetlist(mesh)): %v", err)
	}

	lib := SyntheticMeshLibrary()
	timer := NewTimer(lib, d)
	timer.Wire = ElmoreWire
	res, err := timer.RunCtx(context.Background(), RunOptions{Workers: 4})
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}

	timer2 := NewTimer(lib, d2)
	timer2.Wire = ElmoreWire
	res2, err := timer2.RunCtx(context.Background(), RunOptions{Workers: 1})
	if err != nil {
		t.Fatalf("RunCtx on round-tripped design: %v", err)
	}

	net, edge, at, err := res.WorstOutput(d.Outputs)
	if err != nil {
		t.Fatalf("WorstOutput: %v", err)
	}
	net2, edge2, at2, err := res2.WorstOutput(d2.Outputs)
	if err != nil {
		t.Fatalf("WorstOutput (round-tripped): %v", err)
	}
	if net != net2 || edge != edge2 || at.Arrival != at2.Arrival {
		t.Fatalf("round-tripped mesh times differently: (%s,%v,%g) vs (%s,%v,%g)",
			net, edge, at.Arrival, net2, edge2, at2.Arrival)
	}

	path, err := res.CriticalPath(net, edge)
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if len(path) < 2 {
		t.Fatalf("critical path too short: %d steps", len(path))
	}
	var _ []PathStep = path
	var _ *TimingResult = res
}

// TestFacadeMeshNoise attaches synthetic noise sites through the facade.
func TestFacadeMeshNoise(t *testing.T) {
	cfg := DefaultMesh(300)
	cfg.Seed = 8
	d, err := GenerateMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lib := SyntheticMeshLibrary()
	timer := NewTimer(lib, d)
	sites := MeshNoiseSites(cfg, d, lib.Vdd, 0.1)
	if len(sites) == 0 {
		t.Fatal("no mesh noise sites")
	}
	for _, s := range sites {
		timer.Annotate(s.Net, &NoiseAnnotation{
			Noisy: s.Noisy, Noiseless: s.Noiseless, NoiselessOut: s.NoiselessOut, Edge: s.Edge,
		})
	}
	if _, err := timer.RunCtx(context.Background(), RunOptions{Workers: 2}); err != nil {
		t.Fatalf("noisy mesh RunCtx: %v", err)
	}
}
