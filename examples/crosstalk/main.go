// Crosstalk: the full transistor-level flow on the paper's Figure 1
// testbench. A victim line driven by a ×1 inverter is coupled to an
// opposing aggressor; we sweep the aggressor alignment, fit Γeff with each
// technique and score the predicted receiver output arrival against the
// transient reference — a miniature of the paper's Table 1.
package main

import (
	"fmt"
	"log"

	"noisewave"
)

func main() {
	tech := noisewave.DefaultTech()
	cfg := noisewave.ConfigurationI(tech)
	cfg.Step = 2e-12 // coarser step: this is a demo, not the benchmark

	const victimStart = 0.3e-9

	// Reference pair with the aggressor quiet: the sensitivity source.
	nlIn, nlOut, err := cfg.RunNoiseless(victimStart)
	if err != nil {
		log.Fatal(err)
	}
	slew, err := nlIn.Slew(tech.Vdd, noisewave.Rising)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noiseless victim far-end slew: %.0f ps\n", slew*1e12)

	// The receiver chain of Figure 1: ×4 gate under test into ×16 → ×64.
	gate := noisewave.NewInverterChainSim(tech,
		[]float64{cfg.ReceiverDrive, cfg.Load1Drive, cfg.Load2Drive}, cfg.Step)

	fmt.Println("\noffset(ps)   technique  predicted(ps)  reference(ps)  error(ps)")
	for _, offset := range []float64{-200e-12, 0, 100e-12, 250e-12} {
		noisyIn, noisyOut, err := cfg.Run(victimStart, []float64{victimStart + offset})
		if err != nil {
			log.Fatal(err)
		}
		in := noisewave.TechniqueInput{
			Noisy:        noisyIn,
			Noiseless:    nlIn,
			NoiselessOut: nlOut,
			Vdd:          tech.Vdd,
			Edge:         cfg.VictimEdge,
		}
		cmp, err := noisewave.CompareTechniquesWith(gate, in, noisyOut,
			noisewave.CompareTechniquesOpts{
				Techniques: []noisewave.Technique{noisewave.NewSGDP()},
			})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range cmp.Results {
			if r.Err != nil {
				fmt.Printf("%10.0f   %-9s  failed: %v\n", offset*1e12, r.Name, r.Err)
				continue
			}
			fmt.Printf("%10.0f   %-9s  %13.1f  %13.1f  %+9.2f\n",
				offset*1e12, r.Name,
				r.EstArrival*1e12, cmp.TrueArrival*1e12, r.ArrivalError*1e12)
		}
	}
}
