// Noise-aware STA: run the gate-level static timer on a small design whose
// internal net is a crosstalk victim. The victim's noisy waveform comes
// from the transistor-level testbench; the timer converts it to Γeff with
// a configurable technique before NLDM lookup — showing how the choice of
// equivalent-waveform technique changes the reported arrival times.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"noisewave"
)

const design = `
design  victim_path
input   a slew=150ps at=0ps
output  y
gate    u1 INVX1  A=a  Y=n1
gate    u2 INVX4  A=n1 Y=n2
gate    u3 INVX16 A=n2 Y=y
netcap  n1 96fF
couple  n1 agg 100fF
`

func main() {
	tech := noisewave.DefaultTech()

	d, err := noisewave.ParseNetlist(strings.NewReader(design))
	if err != nil {
		log.Fatal(err)
	}
	lib, err := noisewave.Characterize(tech, noisewave.FastCharacterization())
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize the victim waveforms with the Figure 1 testbench: n1 is
	// the far end of a coupled 1000 µm line (the netlist's netcap/couple
	// annotations mirror this).
	cfg := noisewave.ConfigurationI(tech)
	cfg.Step = 2e-12
	const victimStart = 0.3e-9
	nlIn, nlOut, err := cfg.RunNoiseless(victimStart)
	if err != nil {
		log.Fatal(err)
	}
	noisyIn, _, err := cfg.Run(victimStart, []float64{victimStart + 0.1e-9})
	if err != nil {
		log.Fatal(err)
	}
	annotation := &noisewave.NoiseAnnotation{
		Noisy:        noisyIn,
		Noiseless:    nlIn,
		NoiselessOut: nlOut,
		Edge:         noisewave.Rising,
	}

	fmt.Println("technique  y rise AT(ps)  y fall AT(ps)")
	for _, name := range []string{"P1", "P2", "LSF3", "E4", "WLS5", "SGDP"} {
		tq, err := noisewave.TechniqueByName(name)
		if err != nil {
			log.Fatal(err)
		}
		timer := noisewave.NewTimer(lib, d)
		timer.Technique = tq
		timer.Annotate("n1", annotation)
		res, err := timer.RunCtx(context.Background(), noisewave.RunOptions{})
		if err != nil {
			fmt.Printf("%-9s  failed: %v\n", name, err)
			continue
		}
		n := res.Nets["y"]
		fmt.Printf("%-9s  %13.1f  %13.1f\n", name,
			n.Rise.Arrival*1e12, n.Fall.Arrival*1e12)
	}

	// Critical path with the SGDP-annotated timing, through the
	// context-first entry point (cancelable, parallel for large designs).
	timer := noisewave.NewTimer(lib, d)
	timer.Annotate("n1", annotation)
	res, err := timer.RunCtx(context.Background(), noisewave.RunOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	net, edge, at, err := res.WorstOutput(d.Outputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst output %s (%v) at %.1f ps; critical path:\n", net, edge, at.Arrival*1e12)
	path, err := res.CriticalPath(net, edge)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range path {
		via := s.ViaGate
		if via == "" {
			via = "(input)"
		}
		fmt.Printf("  %-4s %-4s AT=%8.1f ps  trans=%7.1f ps  via %s\n",
			s.Net, s.Edge, s.Arrival*1e12, s.Trans*1e12, via)
	}
}
