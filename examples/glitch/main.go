// Glitch: functional-noise analysis on a quiet victim. The aggressor of
// the Figure 1 testbench fires while the victim holds still; we measure
// the coupled glitch (peak/width/area), sweep the coupling strength, and
// check whether the glitch survives the receiving gate chain.
package main

import (
	"fmt"
	"log"

	"noisewave"
)

func main() {
	tech := noisewave.DefaultTech()
	gate := noisewave.NewInverterChainSim(tech, []float64{4, 16}, 2e-12)

	fmt.Println("coupling(fF)  peak(V)   width(ps)  area(V·ps)  out peak(V)  propagates")
	for _, cc := range []float64{20e-15, 50e-15, 100e-15, 200e-15, 400e-15} {
		cfg := noisewave.ConfigurationI(tech)
		cfg.Step = 2e-12
		cfg.CouplingTotal = cc
		victimIn, _, err := cfg.RunQuietVictim([]float64{0.3e-9})
		if err != nil {
			log.Fatal(err)
		}
		res, err := noisewave.PropagateGlitch(gate, victimIn, 0.5*tech.Vdd)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.0f  %+8.3f  %9.1f  %10.2f  %+11.3f  %v\n",
			cc*1e15,
			res.Input.Peak, res.Input.Width*1e12, res.Input.Area*1e12,
			res.Output.Peak, res.Propagates)
	}
	fmt.Println("\nThe receiver chain rejects small glitches (gain << 1) and only")
	fmt.Println("amplifies once the bump approaches the switching threshold —")
	fmt.Println("the functional-noise counterpart of the delay noise the paper models.")
}
