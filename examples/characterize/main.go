// Characterize: build an NLDM cell library from the built-in transistor
// models by sweeping input slew × output load through the transient
// simulator, then query it the way an STA delay calculator would.
package main

import (
	"fmt"
	"log"
	"os"

	"noisewave"
)

func main() {
	tech := noisewave.DefaultTech()

	// Coarse grid so the example finishes in a few seconds; use
	// DefaultCharacterization() for the production 6×7 grid.
	lib, err := noisewave.Characterize(tech, noisewave.FastCharacterization())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library %s @ %.1f V: cells %v\n\n", tech.Name, tech.Vdd, lib.CellNames())

	cell, err := lib.Cell("INVX4")
	if err != nil {
		log.Fatal(err)
	}
	arc, ok := cell.ArcTo("A")
	if !ok {
		log.Fatal("INVX4 has no arc A->Y")
	}

	fmt.Println("INVX4 rising-input delay (ps) over slew × load:")
	fmt.Printf("%12s", "slew\\load")
	for _, load := range []float64{2e-15, 8e-15, 32e-15} {
		fmt.Printf("  %8.0f fF", load*1e15)
	}
	fmt.Println()
	for _, slew := range []float64{50e-12, 150e-12, 400e-12} {
		fmt.Printf("%9.0f ps", slew*1e12)
		for _, load := range []float64{2e-15, 8e-15, 32e-15} {
			d, _, _, err := arc.Delay(noisewave.Rising, slew, load)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %11.1f", d*1e12)
		}
		fmt.Println()
	}

	// Round-trip through the Liberty text form.
	f, err := os.CreateTemp("", "generic130-*.lib")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := lib.Write(f); err != nil {
		log.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		log.Fatal(err)
	}
	again, err := noisewave.ParseLibrary(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote and re-parsed %s: %d cells survive the Liberty round trip\n",
		f.Name(), len(again.CellNames()))
}
