// Quickstart: fit an equivalent linear waveform Γeff to a noisy gate-input
// waveform with SGDP and compare it against the simpler techniques.
//
// The noisy waveform here is synthetic — a clean ramp with a crosstalk
// glitch injected mid-transition — so the example runs in milliseconds
// without any circuit simulation. See examples/crosstalk for the full
// transistor-level flow.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"noisewave"
)

func main() {
	const (
		vdd  = 1.2
		slew = 200e-12 // noiseless input: 200 ps transition
		t0   = 100e-12
	)

	// Noiseless input: saturated ramp from 0 to Vdd.
	ramp := func(t float64) float64 {
		v := vdd * (t - t0) / (slew / 0.8)
		return math.Max(0, math.Min(vdd, v))
	}
	// Gate output for the noiseless input: an inverted, delayed, sharper
	// ramp (a stand-in for a characterized inverter response).
	outRamp := func(t float64) float64 {
		const delay = 80e-12
		const outSlew = 120e-12
		v := vdd * (t - t0 - delay) / (outSlew / 0.8)
		return vdd - math.Max(0, math.Min(vdd, v))
	}
	// Noisy input: the same ramp with a capacitive-coupling dip during the
	// transition.
	noisy := func(t float64) float64 {
		glitch := -0.25 * vdd * math.Exp(-math.Pow((t-260e-12)/40e-12, 2))
		return math.Max(-0.2, math.Min(vdd*1.1, ramp(t)+glitch))
	}

	sample := func(f func(float64) float64) *noisewave.Waveform {
		const n = 600
		ts := make([]float64, n)
		vs := make([]float64, n)
		for i := range ts {
			ts[i] = float64(i) * 1e-12
			vs[i] = f(ts[i])
		}
		w, err := noisewave.NewWaveform(ts, vs)
		if err != nil {
			log.Fatal(err)
		}
		return w
	}

	in := noisewave.TechniqueInput{
		Noisy:        sample(noisy),
		Noiseless:    sample(ramp),
		NoiselessOut: sample(outRamp),
		Vdd:          vdd,
		Edge:         noisewave.Rising,
	}

	fmt.Println("technique  arrival(ps)  slew10-90(ps)")
	for _, tech := range noisewave.AllTechniques() {
		gamma, err := tech.Equivalent(in)
		if err != nil {
			fmt.Printf("%-9s  failed: %v\n", tech.Name(), err)
			continue
		}
		arr, _ := gamma.Arrival()
		tt, _ := gamma.TransitionTime()
		fmt.Printf("%-9s  %11.1f  %13.1f\n", tech.Name(), arr*1e12, tt*1e12)
	}

	// The sensitivity ρ that SGDP uses as its fitting weight:
	sens, err := noisewave.ComputeSensitivity(in.Noiseless, in.NoiselessOut, vdd, noisewave.Rising, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnoiseless critical region: [%.0f, %.0f] ps\n",
		sens.TFirst*1e12, sens.TLast*1e12)
	rho, _ := sens.AtVoltage(0.6 * vdd)
	fmt.Printf("rho at 0.6*Vdd: %.2f (output moves %.1fx faster than the input there)\n", rho, rho)

	// Full-chip taste: generate a seeded 2 000-gate mesh, time it with the
	// levelized parallel engine, and pull the critical path — no
	// characterization run needed, the synthetic library is analytic.
	mesh, err := noisewave.GenerateMesh(noisewave.DefaultMesh(2000))
	if err != nil {
		log.Fatal(err)
	}
	timer := noisewave.NewTimer(noisewave.SyntheticMeshLibrary(), mesh)
	timer.Wire = noisewave.ElmoreWire
	res, err := timer.RunCtx(context.Background(), noisewave.RunOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	net, edge, at, err := res.WorstOutput(mesh.Outputs)
	if err != nil {
		log.Fatal(err)
	}
	path, err := res.CriticalPath(net, edge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d-gate mesh: worst output %s (%v) at %.1f ps over a %d-stage path\n",
		len(mesh.Gates), net, edge, at.Arrival*1e12, len(path))
}
