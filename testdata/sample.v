// Sample gate-level design for the noisesta tool: a small arithmetic-ish
// cone with a reconvergent path and one long wire (annotated in
// sample.spef) that picks up crosstalk from a neighbouring bus.
module sample (a, b, c, y);
  input a, b, c;
  output y;
  wire n1, n2, n3, n4;

  NAND2X1 u1 (.A(a),  .B(b),  .Y(n1));
  INVX1   u2 (.A(c),  .Y(n2));
  NOR2X1  u3 (.A(n1), .B(n2), .Y(n3));
  INVX4   u4 (.A(n3), .Y(n4));
  INVX16  u5 (.A(n4), .Y(y));
endmodule
