// Command noisesta runs the gate-level static timing engine on a netlist:
// it characterizes (or loads) an NLDM library, propagates arrivals —
// optionally in parallel over the levelized graph — prints per-net timing
// and the critical path, optionally checks required-time constraints, and
// supports structural Verilog input plus SPEF parasitic annotation. It can
// also generate a seeded synthetic mesh instead of reading a file, and
// write any generated design back to disk in the native format.
//
// Usage:
//
//	noisesta -netlist design.nl  [-lib cells.lib] [-technique SGDP]
//	noisesta -verilog design.v   [-spef design.spef] [-require y=500ps]
//	noisesta -gen-gates 100000   [-gen-seed 7] [-workers 8] [-write-netlist mesh.nl]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"noisewave/internal/charlib"
	"noisewave/internal/device"
	"noisewave/internal/eqwave"
	"noisewave/internal/liberty"
	"noisewave/internal/netgen"
	"noisewave/internal/netlist"
	"noisewave/internal/report"
	"noisewave/internal/spef"
	"noisewave/internal/sta"
	"noisewave/internal/verilog"
)

// maxOutputRows caps the per-output timing table so a 10⁵-gate mesh does
// not scroll hundreds of rows past the critical path.
const maxOutputRows = 32

type requireFlags map[string]float64

func (r requireFlags) String() string { return fmt.Sprint(map[string]float64(r)) }

func (r requireFlags) Set(s string) error {
	net, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want net=time, got %q", s)
	}
	t, err := netlist.ParseQuantity(val)
	if err != nil {
		return err
	}
	r[net] = t
	return nil
}

type options struct {
	netlistPath string
	verilogPath string
	spefPath    string
	libPath     string
	techName    string
	defSlew     string
	genGates    int
	genSeed     int64
	genWidth    int
	writePath   string
	workers     int
	timeout     time.Duration
	requires    requireFlags
}

func main() {
	opts := options{requires: requireFlags{}}
	flag.StringVar(&opts.netlistPath, "netlist", "", "netlist file (native format)")
	flag.StringVar(&opts.verilogPath, "verilog", "", "structural Verilog file")
	flag.StringVar(&opts.spefPath, "spef", "", "SPEF parasitics to annotate")
	flag.StringVar(&opts.libPath, "lib", "", "Liberty library, or \"synthetic\" for the mesh library (default: characterize built-in cells; generated meshes use the synthetic library)")
	flag.StringVar(&opts.techName, "technique", "SGDP", "noise conversion technique (P1,P2,LSF3,E4,WLS5,SGDP)")
	flag.StringVar(&opts.defSlew, "slew", "100ps", "default primary-input slew for Verilog input")
	flag.IntVar(&opts.genGates, "gen-gates", 0, "generate a synthetic mesh with this many gates instead of reading a file")
	flag.Int64Var(&opts.genSeed, "gen-seed", 1, "seed for the generated mesh")
	flag.IntVar(&opts.genWidth, "gen-width", 0, "gates per rank of the generated mesh (0 = ~sqrt)")
	flag.StringVar(&opts.writePath, "write-netlist", "", "write the timed design to this file in the native format")
	flag.IntVar(&opts.workers, "workers", 1, "parallel workers for arrival propagation (<=0 = all cores)")
	flag.DurationVar(&opts.timeout, "timeout", 0, "abort the run after this long (0 = no limit)")
	flag.Var(opts.requires, "require", "required arrival, e.g. -require y=500ps (repeatable)")
	flag.Parse()

	sources := 0
	for _, set := range []bool{opts.netlistPath != "", opts.verilogPath != "", opts.genGates > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "noisesta: exactly one of -netlist, -verilog or -gen-gates is required")
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "noisesta:", err)
		os.Exit(1)
	}
}

func loadDesign(opts options) (*netlist.Design, error) {
	if opts.genGates > 0 {
		cfg := netgen.DefaultConfig(opts.genGates)
		cfg.Seed = opts.genSeed
		cfg.Width = opts.genWidth
		return netgen.Generate(cfg)
	}
	if opts.netlistPath != "" {
		f, err := os.Open(opts.netlistPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.Parse(f)
	}
	f, err := os.Open(opts.verilogPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	mod, err := verilog.Parse(f)
	if err != nil {
		return nil, err
	}
	slew, err := netlist.ParseQuantity(opts.defSlew)
	if err != nil {
		return nil, err
	}
	return mod.ToDesign(slew)
}

func loadLibrary(opts options) (*liberty.Library, error) {
	if opts.libPath == "synthetic" {
		return netgen.SyntheticLibrary(), nil
	}
	if opts.libPath != "" {
		f, err := os.Open(opts.libPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return liberty.Parse(f)
	}
	if opts.genGates > 0 {
		return netgen.SyntheticLibrary(), nil
	}
	tech := device.Default130()
	fmt.Fprintln(os.Stderr, "noisesta: characterizing built-in cells (coarse grid)...")
	return charlib.Characterize(tech, charlib.StandardCells(tech), charlib.FastOptions())
}

func run(opts options) error {
	design, err := loadDesign(opts)
	if err != nil {
		return err
	}
	if opts.spefPath != "" {
		f, err := os.Open(opts.spefPath)
		if err != nil {
			return err
		}
		para, err := spef.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		para.Annotate(design)
		fmt.Fprintf(os.Stderr, "noisesta: annotated %d net caps, %d couplings from %s\n",
			len(para.GroundCap), len(para.Couplings), opts.spefPath)
	}
	if opts.writePath != "" {
		f, err := os.Create(opts.writePath)
		if err != nil {
			return err
		}
		if err := netlist.Write(f, design); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "noisesta: wrote %s (%d gates)\n", opts.writePath, len(design.Gates))
	}
	lib, err := loadLibrary(opts)
	if err != nil {
		return err
	}
	tech, err := eqwave.ByName(opts.techName)
	if err != nil {
		return err
	}
	timer := sta.New(lib, design)
	timer.Technique = tech
	if opts.genGates > 0 {
		timer.Wire = sta.ElmoreWire // generated meshes carry RC annotations
	}

	ctx := context.Background()
	if opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := timer.RunCtx(ctx, sta.RunOptions{Workers: opts.workers})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Printf("design %s: %d gates, %d inputs, %d outputs (technique %s, %d workers, %.1f ms)\n\n",
		design.Name, len(design.Gates), len(design.Inputs), len(design.Outputs),
		tech.Name(), opts.workers, float64(wall.Microseconds())/1000)

	tbl := report.NewTable("Net", "Rise AT (ps)", "Rise Tr (ps)", "Fall AT (ps)", "Fall Tr (ps)")
	shown := 0
	for _, o := range design.Outputs {
		n := res.Nets[o]
		if n == nil {
			continue
		}
		if shown == maxOutputRows {
			fmt.Fprintf(os.Stderr, "noisesta: %d more outputs not shown\n", len(design.Outputs)-shown)
			break
		}
		shown++
		tbl.AddRow(o,
			pinCell(n.Rise), pinTrans(n.Rise),
			pinCell(n.Fall), pinTrans(n.Fall))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	net, edge, at, err := res.WorstOutput(design.Outputs)
	if err != nil {
		return err
	}
	fmt.Printf("\nworst output: %s (%v) arrival %s ps\n", net, edge, report.Ps(at.Arrival))
	path, err := res.CriticalPath(net, edge)
	if err != nil {
		return err
	}
	fmt.Println("\ncritical path:")
	ptbl := report.NewTable("Net", "Edge", "AT (ps)", "Trans (ps)", "Via")
	for _, s := range path {
		via := s.ViaGate
		if via == "" {
			via = "(input)"
		}
		ptbl.AddRow(s.Net, s.Edge.String(), report.Ps(s.Arrival), report.Ps(s.Trans), via)
	}
	if err := ptbl.Render(os.Stdout); err != nil {
		return err
	}

	if len(opts.requires) > 0 {
		req, err := timer.ComputeRequired(res, opts.requires)
		if err != nil {
			return err
		}
		fmt.Println("\nslack report:")
		stbl := report.NewTable("Net", "Edge", "AT (ps)", "Required (ps)", "Slack (ps)")
		for netName, rt := range opts.requires {
			for _, e := range []sta.PathStep{{Edge: 0}, {Edge: 1}} {
				s, ok := req.Slack(res, netName, e.Edge)
				if !ok {
					continue
				}
				n := res.Nets[netName]
				pt := n.Rise
				if e.Edge != 0 {
					pt = n.Fall
				}
				stbl.AddRow(netName, e.Edge.String(), report.Ps(pt.Arrival), report.Ps(rt), report.Ps(s))
			}
		}
		if err := stbl.Render(os.Stdout); err != nil {
			return err
		}
		if wnet, wedge, ws, ok := req.WorstSlack(res); ok {
			verdict := "MET"
			if ws < 0 {
				verdict = "VIOLATED"
			}
			fmt.Printf("\nworst slack: %s ps at %s (%v) — %s\n", report.Ps(ws), wnet, wedge, verdict)
		}
	}
	return nil
}

func pinCell(p sta.PinTiming) string {
	if !p.Valid {
		return "-"
	}
	return report.Ps(p.Arrival)
}

func pinTrans(p sta.PinTiming) string {
	if !p.Valid {
		return "-"
	}
	return report.Ps(p.Trans)
}
