// Command noisesta runs the gate-level static timing engine on a netlist:
// it characterizes (or loads) an NLDM library, propagates arrivals, prints
// per-net timing and the critical path, optionally checks required-time
// constraints, and supports structural Verilog input plus SPEF parasitic
// annotation.
//
// Usage:
//
//	noisesta -netlist design.nl  [-lib cells.lib] [-technique SGDP]
//	noisesta -verilog design.v   [-spef design.spef] [-require y=500ps]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"noisewave/internal/charlib"
	"noisewave/internal/device"
	"noisewave/internal/eqwave"
	"noisewave/internal/liberty"
	"noisewave/internal/netlist"
	"noisewave/internal/report"
	"noisewave/internal/spef"
	"noisewave/internal/sta"
	"noisewave/internal/verilog"
)

type requireFlags map[string]float64

func (r requireFlags) String() string { return fmt.Sprint(map[string]float64(r)) }

func (r requireFlags) Set(s string) error {
	net, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want net=time, got %q", s)
	}
	t, err := netlist.ParseQuantity(val)
	if err != nil {
		return err
	}
	r[net] = t
	return nil
}

func main() {
	requires := requireFlags{}
	var (
		netlistPath = flag.String("netlist", "", "netlist file (native format)")
		verilogPath = flag.String("verilog", "", "structural Verilog file")
		spefPath    = flag.String("spef", "", "SPEF parasitics to annotate")
		libPath     = flag.String("lib", "", "Liberty library (default: characterize built-in cells, coarse grid)")
		techName    = flag.String("technique", "SGDP", "noise conversion technique (P1,P2,LSF3,E4,WLS5,SGDP)")
		defSlew     = flag.String("slew", "100ps", "default primary-input slew for Verilog input")
	)
	flag.Var(requires, "require", "required arrival, e.g. -require y=500ps (repeatable)")
	flag.Parse()
	if (*netlistPath == "") == (*verilogPath == "") {
		fmt.Fprintln(os.Stderr, "noisesta: exactly one of -netlist or -verilog is required")
		os.Exit(2)
	}
	if err := run(*netlistPath, *verilogPath, *spefPath, *libPath, *techName, *defSlew, requires); err != nil {
		fmt.Fprintln(os.Stderr, "noisesta:", err)
		os.Exit(1)
	}
}

func loadDesign(netlistPath, verilogPath, defSlew string) (*netlist.Design, error) {
	if netlistPath != "" {
		f, err := os.Open(netlistPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.Parse(f)
	}
	f, err := os.Open(verilogPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	mod, err := verilog.Parse(f)
	if err != nil {
		return nil, err
	}
	slew, err := netlist.ParseQuantity(defSlew)
	if err != nil {
		return nil, err
	}
	return mod.ToDesign(slew)
}

func loadLibrary(libPath string) (*liberty.Library, error) {
	if libPath != "" {
		f, err := os.Open(libPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return liberty.Parse(f)
	}
	tech := device.Default130()
	fmt.Fprintln(os.Stderr, "noisesta: characterizing built-in cells (coarse grid)...")
	return charlib.Characterize(tech, charlib.StandardCells(tech), charlib.FastOptions())
}

func run(netlistPath, verilogPath, spefPath, libPath, techName, defSlew string, requires map[string]float64) error {
	design, err := loadDesign(netlistPath, verilogPath, defSlew)
	if err != nil {
		return err
	}
	if spefPath != "" {
		f, err := os.Open(spefPath)
		if err != nil {
			return err
		}
		para, err := spef.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		para.Annotate(design)
		fmt.Fprintf(os.Stderr, "noisesta: annotated %d net caps, %d couplings from %s\n",
			len(para.GroundCap), len(para.Couplings), spefPath)
	}
	lib, err := loadLibrary(libPath)
	if err != nil {
		return err
	}
	tech, err := eqwave.ByName(techName)
	if err != nil {
		return err
	}
	timer := sta.New(lib, design)
	timer.Technique = tech

	res, err := timer.Run()
	if err != nil {
		return err
	}

	fmt.Printf("design %s: %d gates, %d inputs, %d outputs (technique %s)\n\n",
		design.Name, len(design.Gates), len(design.Inputs), len(design.Outputs), tech.Name())

	tbl := report.NewTable("Net", "Rise AT (ps)", "Rise Tr (ps)", "Fall AT (ps)", "Fall Tr (ps)")
	for _, o := range design.Outputs {
		n := res.Nets[o]
		if n == nil {
			continue
		}
		tbl.AddRow(o,
			pinCell(n.Rise), pinTrans(n.Rise),
			pinCell(n.Fall), pinTrans(n.Fall))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	net, edge, at, err := res.WorstOutput(design.Outputs)
	if err != nil {
		return err
	}
	fmt.Printf("\nworst output: %s (%v) arrival %s ps\n", net, edge, report.Ps(at.Arrival))
	path, err := res.CriticalPath(net, edge)
	if err != nil {
		return err
	}
	fmt.Println("\ncritical path:")
	ptbl := report.NewTable("Net", "Edge", "AT (ps)", "Trans (ps)", "Via")
	for _, s := range path {
		via := s.ViaGate
		if via == "" {
			via = "(input)"
		}
		ptbl.AddRow(s.Net, s.Edge.String(), report.Ps(s.Arrival), report.Ps(s.Trans), via)
	}
	if err := ptbl.Render(os.Stdout); err != nil {
		return err
	}

	if len(requires) > 0 {
		req, err := timer.ComputeRequired(res, requires)
		if err != nil {
			return err
		}
		fmt.Println("\nslack report:")
		stbl := report.NewTable("Net", "Edge", "AT (ps)", "Required (ps)", "Slack (ps)")
		for netName, rt := range requires {
			for _, e := range []sta.PathStep{{Edge: 0}, {Edge: 1}} {
				s, ok := req.Slack(res, netName, e.Edge)
				if !ok {
					continue
				}
				n := res.Nets[netName]
				pt := n.Rise
				if e.Edge != 0 {
					pt = n.Fall
				}
				stbl.AddRow(netName, e.Edge.String(), report.Ps(pt.Arrival), report.Ps(rt), report.Ps(s))
			}
		}
		if err := stbl.Render(os.Stdout); err != nil {
			return err
		}
		if wnet, wedge, ws, ok := req.WorstSlack(res); ok {
			verdict := "MET"
			if ws < 0 {
				verdict = "VIOLATED"
			}
			fmt.Printf("\nworst slack: %s ps at %s (%v) — %s\n", report.Ps(ws), wnet, wedge, verdict)
		}
	}
	return nil
}

func pinCell(p sta.PinTiming) string {
	if !p.Valid {
		return "-"
	}
	return report.Ps(p.Arrival)
}

func pinTrans(p sta.PinTiming) string {
	if !p.Valid {
		return "-"
	}
	return report.Ps(p.Trans)
}
