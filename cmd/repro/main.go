// Command repro regenerates the paper's evaluation artifacts: Table 1
// (accuracy of the six equivalent-waveform techniques on Configurations I
// and II), Figure 2 (sensitivity and Γeff waveform series, as CSV) and the
// §4.2 run-time comparison, using the built-in technology and the internal
// transient simulator as the golden reference.
//
// Usage:
//
//	repro -experiment table1 [-cases 200] [-config both] [-p 35] [-workers N]
//	repro -experiment figure2 [-out figure2.csv]
//	repro -experiment runtime [-p 35]
//	repro -experiment psweep
//	repro -experiment all
//
// -workers sizes the sweep worker pool for the alignment sweeps (table1,
// pushout, psweep): 0 (the default) uses every core, 1 forces the
// sequential oracle path. Each worker owns a private transistor-level
// simulator — the spice engine is single-threaded — and the statistics are
// bit-identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"noisewave/internal/device"
	"noisewave/internal/experiments"
	"noisewave/internal/report"
	"noisewave/internal/xtalk"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1 | figure2 | runtime | psweep | pushout | all")
		cases      = flag.Int("cases", 200, "number of aggressor alignment cases for table1")
		config     = flag.String("config", "both", "I | II | both")
		p          = flag.Int("p", 35, "technique sample count P")
		out        = flag.String("out", "", "CSV output path for figure2 (default stdout)")
		quiet      = flag.Bool("q", false, "suppress progress output")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = all cores, 1 = sequential)")
	)
	flag.Parse()

	if err := run(*experiment, *config, *cases, *p, *workers, *out, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(experiment, config string, cases, p, workers int, out string, quiet bool) error {
	cfgs, err := selectConfigs(config)
	if err != nil {
		return err
	}
	switch experiment {
	case "table1":
		return runTable1(cfgs, cases, p, workers, quiet)
	case "figure2":
		return runFigure2(cfgs[0], p, out)
	case "runtime":
		return runRuntime(cfgs[0], p)
	case "psweep":
		return runPSweep(cfgs[0], cases, workers)
	case "pushout":
		return runPushout(cfgs, cases, workers)
	case "all":
		if err := runTable1(cfgs, cases, p, workers, quiet); err != nil {
			return err
		}
		if err := runFigure2(cfgs[0], p, out); err != nil {
			return err
		}
		if err := runRuntime(cfgs[0], p); err != nil {
			return err
		}
		if err := runPSweep(cfgs[0], cases/10, workers); err != nil {
			return err
		}
		return runPushout(cfgs, cases/2, workers)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

// poolSize reports the effective worker count for throughput lines.
func poolSize(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// runPushout prints the delay-noise distribution per configuration.
func runPushout(cfgs []xtalk.Config, cases, workers int) error {
	for _, cfg := range cfgs {
		start := time.Now()
		st, err := experiments.RunPushout(cfg, experiments.PushoutOptions{
			Cases: cases, Range: 1e-9, Workers: workers,
		})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "pushout config %s: %d cases in %v (%.2f cases/s, %d workers)\n",
			cfg.Name, st.Cases, elapsed.Round(time.Millisecond),
			float64(st.Cases)/elapsed.Seconds(), poolSize(workers))
		fmt.Printf("\nDelay-noise distribution, configuration %s (%d cases):\n", cfg.Name, st.Cases)
		fmt.Printf("  quiet arrival %s ns; pushout mean=%s p50=%s p95=%s max=%s ps\n",
			report.Ns(st.QuietArrival), report.Ps(st.Mean), report.Ps(st.P50),
			report.Ps(st.P95), report.Ps(st.Max))
		for _, b := range st.Hist {
			bar := ""
			for i := 0; i < b.Count; i++ {
				bar += "#"
			}
			fmt.Printf("  [%7s, %7s) ps %s\n", report.Ps(b.Lo), report.Ps(b.Hi), bar)
		}
	}
	return nil
}

func selectConfigs(sel string) ([]xtalk.Config, error) {
	t := device.Default130()
	switch strings.ToUpper(sel) {
	case "I":
		return []xtalk.Config{xtalk.ConfigurationI(t)}, nil
	case "II":
		return []xtalk.Config{xtalk.ConfigurationII(t)}, nil
	case "BOTH":
		return []xtalk.Config{xtalk.ConfigurationI(t), xtalk.ConfigurationII(t)}, nil
	}
	return nil, fmt.Errorf("unknown config %q (want I, II or both)", sel)
}

func runTable1(cfgs []xtalk.Config, cases, p, workers int, quiet bool) error {
	fmt.Printf("Table 1: gate delay error vs transient reference (%d cases, P=%d)\n\n", cases, p)
	tbl := report.NewTable("Method", "Cfg I Max (ps)", "Cfg I Avg (ps)", "Cfg II Max (ps)", "Cfg II Avg (ps)")
	columns := map[string][4]string{}
	var order []string
	for _, cfg := range cfgs {
		opts := experiments.Table1Options{Cases: cases, Range: 1e-9, P: p, Workers: workers}
		if !quiet {
			opts.Progress = func(done, total int) {
				if done%20 == 0 || done == total {
					fmt.Fprintf(os.Stderr, "  config %s: %d/%d cases\r", cfg.Name, done, total)
				}
			}
		}
		start := time.Now()
		res, err := experiments.RunTable1(cfg, opts)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if !quiet {
			fmt.Fprintln(os.Stderr)
		}
		fmt.Fprintf(os.Stderr, "  config %s: %d cases in %v (%.2f cases/s, %d workers)\n",
			cfg.Name, cases, elapsed.Round(time.Millisecond),
			float64(cases)/elapsed.Seconds(), poolSize(workers))
		// Worst-case diagnostic: the per-aggressor offsets reproduce the
		// exact alignment (Configuration II's aggressors sweep with
		// different strides, so one scalar would misname the case).
		for _, name := range []string{"SGDP", "WLS5"} {
			if rec, e, ok := res.WorstCase(name); ok {
				fmt.Fprintf(os.Stderr, "  config %s worst %s case: err=%s ps at aggressor offsets (ps)%s\n",
					cfg.Name, name, report.Ps(e), fmtOffsetsPs(rec.Offsets))
			}
		}
		for _, s := range res.Stats {
			col, ok := columns[s.Name]
			if !ok {
				order = append(order, s.Name)
				col = [4]string{"-", "-", "-", "-"}
			}
			base := 0
			if cfg.Name == "II" {
				base = 2
			}
			col[base] = report.Ps(s.MaxAbs)
			col[base+1] = report.Ps(s.AvgAbs)
			columns[s.Name] = col
		}
	}
	for _, name := range order {
		c := columns[name]
		tbl.AddRow(name, c[0], c[1], c[2], c[3])
	}
	return tbl.Render(os.Stdout)
}

func runFigure2(cfg xtalk.Config, p int, out string) error {
	series, err := experiments.RunFigure2(cfg, experiments.Figure2Options{P: p})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	names := []string{"v_in_noiseless", "v_out_noiseless", "rho_noiseless_x0.2",
		"v_in_noisy", "v_out_noisy", "rho_eff_x0.2", "gamma_eff", "v_out_eff"}
	waves := map[string]interface{ At(float64) float64 }{
		"v_in_noiseless":     series.NoiselessIn,
		"v_out_noiseless":    series.NoiselessOut,
		"rho_noiseless_x0.2": series.RhoNoiseless,
		"v_in_noisy":         series.NoisyIn,
		"v_out_noisy":        series.NoisyOut,
		"rho_eff_x0.2":       series.RhoEff,
		"gamma_eff":          series.GammaWave,
		"v_out_eff":          series.EstOut,
	}
	fmt.Fprintf(os.Stderr, "Figure 2: Γeff = %v\n", series.GammaEff)
	return report.WriteWaveCSV(w, names, func(name string, t float64) float64 {
		return waves[name].At(t)
	}, series.NoisyIn.T)
}

func runRuntime(cfg xtalk.Config, p int) error {
	rows, err := experiments.RunRuntime(cfg, experiments.RuntimeOptions{P: p})
	if err != nil {
		return err
	}
	fmt.Printf("\nRun-time comparison (§4.2): per-gate Γeff fit, P=%d\n\n", p)
	tbl := report.NewTable("Method", "Per-gate time")
	for _, r := range rows {
		tbl.AddRow(r.Name, r.PerGate.String())
	}
	return tbl.Render(os.Stdout)
}

// fmtOffsetsPs renders an offset slice in picoseconds for diagnostics.
func fmtOffsetsPs(offsets []float64) string {
	var b strings.Builder
	for _, o := range offsets {
		fmt.Fprintf(&b, " %s", report.Ps(o))
	}
	return b.String()
}

func runPSweep(cfg xtalk.Config, cases, workers int) error {
	rows, err := experiments.RunPSweep(cfg, nil, cases, workers)
	if err != nil {
		return err
	}
	fmt.Printf("\nSGDP accuracy/run-time vs P (§4.2 trade-off)\n\n")
	tbl := report.NewTable("P", "Per-gate time", "Avg |err| (ps)")
	for _, r := range rows {
		tbl.AddRow(fmt.Sprint(r.P), r.PerGate.String(), report.Ps(r.AvgAbsErr))
	}
	return tbl.Render(os.Stdout)
}
