// Command repro regenerates the paper's evaluation artifacts: Table 1
// (accuracy of the six equivalent-waveform techniques on Configurations I
// and II), Figure 2 (sensitivity and Γeff waveform series, as CSV) and the
// §4.2 run-time comparison, using the built-in technology and the internal
// transient simulator as the golden reference.
//
// Usage:
//
//	repro -experiment table1 [-cases 200] [-config both] [-p 35] [-workers N]
//	repro -experiment figure2 [-out figure2.csv]
//	repro -experiment runtime [-p 35]
//	repro -experiment psweep
//	repro -experiment all
//
// -workers sizes the sweep worker pool for the alignment sweeps (table1,
// pushout, psweep): 0 (the default) uses every core, 1 forces the
// sequential oracle path. Each worker owns a private transistor-level
// simulator — the spice engine is single-threaded — and the statistics are
// bit-identical for any worker count.
//
// -batch K (default 8) solves K sweep cases in lockstep through one shared
// transient trunk; -no-batch (= -batch 1) restores the scalar path. Like
// -workers, batching changes only wall clock: results are bit-identical at
// any workers × batch combination, with unshareable cases peeling off to
// scalar runs automatically (see EXPERIMENTS.md "Batched lockstep
// solving").
//
// Observability and run control:
//
//	-metrics text|json   dump the telemetry snapshot (spice engine counters,
//	                     replay-cache outcomes, per-technique fit timers,
//	                     sweep throughput, per-experiment wall timers) to
//	                     stderr at exit
//	-trace               record hierarchical spans: one trace per sweep case
//	                     (golden transient, per-technique fits and replays,
//	                     spice internals). Tracing never changes the numbers.
//	-artifacts DIR       write the run-artifact directory at exit — Chrome
//	                     trace (Perfetto-loadable), JSONL case journal,
//	                     metrics snapshot, failure report, resolved config.
//	                     Implies -trace.
//	-serve addr          status server: /metrics (Prometheus), /healthz,
//	                     /progress (live sweep state), /trace/{case}
//	-pprof addr          serve net/http/pprof on addr (e.g. localhost:6060);
//	                     the listener is bound before any sweep work, so a
//	                     bad address fails fast instead of being reported
//	                     mid-run
//	-timeout d           cancel the run after d (e.g. 30s); the sweep stops
//	                     at the next case boundary, in-flight transients stop
//	                     at their next time step, and the partial statistics
//	                     accumulated so far are reported before a clean exit
//	-log level           structured event log on stderr (debug|info|warn|
//	                     error|off, default off): case quarantines, solver
//	                     recovery rungs and ladder exhaustion as one line per
//	                     event, correlated by sweep case
//	-log-format f        human (aligned, for terminals), json (one JSON
//	                     object per line) or text (slog key=value)
//
// Ctrl-C (SIGINT/SIGTERM) cancels the same way as -timeout: partial
// results plus, with -metrics, the snapshot of what ran.
//
// Failure handling and chaos testing (see EXPERIMENTS.md):
//
//	-keep-going          quarantine failing sweep cases (solver error, worker
//	                     panic, per-case timeout) instead of aborting; the
//	                     statistics cover the surviving cases and a failure
//	                     report names every quarantined case
//	-case-timeout d      bound each sweep case with its own deadline; an
//	                     overrunning case fails (and, with -keep-going, is
//	                     quarantined) without cancelling the run
//	-chaos seed          enable the deterministic fault injector with the
//	                     given seed (0 = off): a capped dose of forced solver
//	                     divergence, NaN poisoning, stalls and worker panics,
//	                     to exercise the recovery and quarantine paths; the
//	                     per-class fire counts are printed at exit
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"noisewave/internal/device"
	"noisewave/internal/experiments"
	"noisewave/internal/faultinject"
	"noisewave/internal/obs"
	"noisewave/internal/obs/httpserver"
	"noisewave/internal/obs/logctx"
	"noisewave/internal/report"
	"noisewave/internal/sweep"
	"noisewave/internal/telemetry"
	"noisewave/internal/trace"
	"noisewave/internal/xtalk"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1 | figure2 | runtime | psweep | pushout | all")
		cases      = flag.Int("cases", 200, "number of aggressor alignment cases for table1")
		config     = flag.String("config", "both", "I | II | both")
		p          = flag.Int("p", 35, "technique sample count P")
		out        = flag.String("out", "", "CSV output path for figure2 (default stdout)")
		quiet      = flag.Bool("q", false, "suppress progress output")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = all cores, 1 = sequential)")
		metrics    = flag.String("metrics", "", "dump telemetry snapshot at exit: text | json")
		traceOn    = flag.Bool("trace", false, "record hierarchical spans (one trace per sweep case)")
		artifacts  = flag.String("artifacts", "", "write run artifacts (trace, journal, metrics, failures, config) to this directory at exit; implies -trace")
		serveAddr  = flag.String("serve", "", "serve the status endpoints (/metrics /healthz /progress /trace/{case}) on this address")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		timeout    = flag.Duration("timeout", 0, "cancel the run after this duration (0 = no limit)")
		keepGoing  = flag.Bool("keep-going", false, "quarantine failing sweep cases instead of aborting the run")
		caseTO     = flag.Duration("case-timeout", 0, "per-case deadline for sweep cases (0 = no limit)")
		chaos      = flag.Int64("chaos", 0, "fault-injection seed: exercise recovery/quarantine paths deterministically (0 = off)")
		noFastPath = flag.Bool("no-fastpath", false, "disable the spice solver fast path (full restamp + LU per Newton iteration)")
		batch      = flag.Int("batch", 8, "lockstep batch size: sweep cases solved per shared transient trunk (1 = scalar)")
		noBatch    = flag.Bool("no-batch", false, "disable batched lockstep solving (same as -batch 1)")
		logLevel   = flag.String("log", "off", "structured-log level on stderr: debug | info | warn | error | off")
		logFormat  = flag.String("log-format", "human", "structured-log format: human | json | text")
	)
	flag.Parse()

	if *metrics != "" && *metrics != "text" && *metrics != "json" {
		fmt.Fprintf(os.Stderr, "repro: -metrics %q: want text or json\n", *metrics)
		os.Exit(2)
	}
	level, err := logctx.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}
	log, err := logctx.New(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		// Bind synchronously so a bad address (typo, taken port) fails
		// before any sweep work starts, with a clean exit code — not as a
		// background complaint racing a half-finished run.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro: pprof server:", err)
			os.Exit(2)
		}
		// DefaultServeMux carries the net/http/pprof handlers.
		go http.Serve(ln, nil)
	}

	// Ctrl-C and -timeout share one cancellation path into the pipeline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// The pipeline picks the logger up from the context (logctx.From), so
	// quarantine and solver-recovery events surface without any plumbing.
	ctx = logctx.With(ctx, log)

	var inject *faultinject.Injector
	if *chaos != 0 {
		inject = faultinject.Default(*chaos)
	}

	reg := telemetry.New()
	var tracer *trace.Tracer
	if *traceOn || *artifacts != "" {
		tracer = trace.New()
	}
	progress := &obs.Progress{}
	if *serveAddr != "" {
		srv, ln, err := (&httpserver.Server{
			Registry: reg, Tracer: tracer, Progress: progress,
		}).Start(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintln(os.Stderr, "repro: status server on http://"+ln.Addr().String())
	}

	if *noBatch {
		*batch = 1
	}
	e := env{
		ctx: ctx, reg: reg, tracer: tracer, progress: progress,
		config: *config, cases: *cases, p: *p,
		workers: *workers, out: *out, quiet: *quiet,
		keepGoing: *keepGoing, caseTimeout: *caseTO, inject: inject,
		noFastPath: *noFastPath, batch: *batch,
	}
	if *artifacts != "" {
		e.failures = make(map[string]*sweep.FailureReport)
	}
	err = run(e, *experiment)

	if inject != nil {
		fmt.Fprintln(os.Stderr, "repro:", inject.Summary())
	}
	if *metrics != "" {
		dumpMetrics(reg, *metrics)
	}
	if *artifacts != "" {
		// Written on every exit path — a canceled or partially failed run
		// still leaves its provenance behind.
		if aerr := writeArtifacts(*artifacts, e, *experiment); aerr != nil {
			fmt.Fprintln(os.Stderr, "repro: artifacts:", aerr)
		} else {
			fmt.Fprintln(os.Stderr, "repro: artifacts written to", *artifacts)
		}
	}
	if err != nil {
		if errors.Is(err, telemetry.ErrCanceled) {
			// A canceled run is a clean exit: partial statistics were
			// already reported by the experiment printers above.
			fmt.Fprintln(os.Stderr, "repro: run canceled:", err)
			return
		}
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

// env carries the run-wide settings every experiment printer needs: the
// cancellation context, the shared telemetry registry and the CLI knobs.
type env struct {
	ctx         context.Context
	reg         *telemetry.Registry
	tracer      *trace.Tracer
	progress    *obs.Progress
	config      string
	cases       int
	p           int
	workers     int
	out         string
	quiet       bool
	keepGoing   bool
	caseTimeout time.Duration
	inject      *faultinject.Injector
	noFastPath  bool
	batch       int
	// failures collects each sweep's failure report for the run-artifact
	// directory; nil when -artifacts is off.
	failures map[string]*sweep.FailureReport
}

// sweepOpts assembles the shared sweep-control block from the environment.
// The live progress tracker feeds the status server even when no display
// callback is installed.
func (e env) sweepOpts() experiments.SweepOptions {
	return experiments.SweepOptions{
		Workers: e.workers, Ctx: e.ctx, Telemetry: e.reg, Tracer: e.tracer,
		Progress:  e.progress.Hook(nil),
		KeepGoing: e.keepGoing, CaseTimeout: e.caseTimeout, Inject: e.inject,
		NoFastPath: e.noFastPath, Batch: e.batch,
	}
}

// noteFailures records a sweep's failure report for the artifact directory.
func (e env) noteFailures(label string, rep *sweep.FailureReport) {
	if e.failures != nil {
		e.failures[label] = rep
	}
}

// writeArtifacts renders the run-artifact directory: resolved config,
// metrics snapshot, Chrome trace + JSONL journal, failure reports.
func writeArtifacts(dir string, e env, experiment string) error {
	a, err := obs.OpenRun(dir)
	if err != nil {
		return err
	}
	cfg := map[string]any{
		"experiment":   experiment,
		"config":       e.config,
		"cases":        e.cases,
		"p":            e.p,
		"workers":      e.workers,
		"keep_going":   e.keepGoing,
		"case_timeout": e.caseTimeout.String(),
		"chaos":        e.inject != nil,
		"no_fastpath":  e.noFastPath,
		"batch":        e.batch,
	}
	if err := a.WriteConfig(cfg); err != nil {
		return err
	}
	if err := a.WriteMetrics(e.reg.Snapshot()); err != nil {
		return err
	}
	if err := a.WriteTrace(e.tracer); err != nil {
		return err
	}
	return a.WriteFailures(e.failures)
}

func run(e env, experiment string) error {
	cfgs, err := selectConfigs(e.config)
	if err != nil {
		return err
	}
	switch experiment {
	case "table1":
		return runTable1(e, cfgs)
	case "figure2":
		return runFigure2(e, cfgs[0])
	case "runtime":
		return runRuntime(e, cfgs[0])
	case "psweep":
		return runPSweep(e, cfgs[0], e.cases)
	case "pushout":
		return runPushout(e, cfgs, e.cases)
	case "all":
		if err := runTable1(e, cfgs); err != nil {
			return err
		}
		if err := runFigure2(e, cfgs[0]); err != nil {
			return err
		}
		if err := runRuntime(e, cfgs[0]); err != nil {
			return err
		}
		if err := runPSweep(e, cfgs[0], e.cases/10); err != nil {
			return err
		}
		return runPushout(e, cfgs, e.cases/2)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

// poolSize reports the effective worker count for throughput lines.
func poolSize(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// dumpMetrics writes the registry snapshot to stderr in the chosen format.
func dumpMetrics(reg *telemetry.Registry, format string) {
	snap := reg.Snapshot()
	fmt.Fprintln(os.Stderr, "--- telemetry snapshot ---")
	var err error
	if format == "json" {
		err = snap.WriteJSON(os.Stderr)
	} else {
		err = snap.WriteText(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro: metrics dump:", err)
	}
}

// throughput reports a sweep's cases/s from the telemetry delta rather than
// an ad-hoc stopwatch: completed cases come from the sweep engine's own
// counter (recorded identically by the sequential and the parallel path, so
// -workers 1 and -workers N lines are comparable) and the denominator is
// the experiment's wall timer.
func throughput(d telemetry.Snapshot, wallTimer string) (cases int64, elapsed time.Duration, rate float64) {
	cases = d.Counters["sweep.cases_completed"]
	elapsed = time.Duration(d.Timers[wallTimer].Sum * float64(time.Second))
	if s := d.Timers[wallTimer].Sum; s > 0 {
		rate = float64(cases) / s
	}
	return cases, elapsed, rate
}

// runPushout prints the delay-noise distribution per configuration.
func runPushout(e env, cfgs []xtalk.Config, cases int) error {
	for _, cfg := range cfgs {
		before := e.reg.Snapshot()
		e.progress.SetPhase("pushout config "+cfg.Name, cases)
		st, err := experiments.RunPushout(cfg, experiments.PushoutOptions{
			Cases: cases, Range: 1e-9, SweepOptions: e.sweepOpts(),
		})
		if err != nil && !errors.Is(err, telemetry.ErrCanceled) {
			return err
		}
		e.noteFailures("pushout config "+cfg.Name, st.Failures)
		done, elapsed, rate := throughput(e.reg.Snapshot().Delta(before), "experiments.pushout.seconds")
		fmt.Fprintf(os.Stderr, "pushout config %s: %d cases in %v (%.2f cases/s, %d workers)\n",
			cfg.Name, done, elapsed.Round(time.Millisecond), rate, poolSize(e.workers))
		fmt.Printf("\nDelay-noise distribution, configuration %s (%d cases):\n", cfg.Name, st.Cases)
		fmt.Printf("  quiet arrival %s ns; pushout mean=%s p50=%s p95=%s max=%s ps\n",
			report.Ns(st.QuietArrival), report.Ps(st.Mean), report.Ps(st.P50),
			report.Ps(st.P95), report.Ps(st.Max))
		for _, b := range st.Hist {
			bar := ""
			for i := 0; i < b.Count; i++ {
				bar += "#"
			}
			fmt.Printf("  [%7s, %7s) ps %s\n", report.Ps(b.Lo), report.Ps(b.Hi), bar)
		}
		printFailures(cfg.Name, st.Excluded, st.Failures)
		if err != nil {
			return err
		}
	}
	return nil
}

func selectConfigs(sel string) ([]xtalk.Config, error) {
	t := device.Default130()
	switch strings.ToUpper(sel) {
	case "I":
		return []xtalk.Config{xtalk.ConfigurationI(t)}, nil
	case "II":
		return []xtalk.Config{xtalk.ConfigurationII(t)}, nil
	case "BOTH":
		return []xtalk.Config{xtalk.ConfigurationI(t), xtalk.ConfigurationII(t)}, nil
	}
	return nil, fmt.Errorf("unknown config %q (want I, II or both)", sel)
}

func runTable1(e env, cfgs []xtalk.Config) error {
	fmt.Printf("Table 1: gate delay error vs transient reference (%d cases, P=%d)\n\n", e.cases, e.p)
	tbl := report.NewTable("Method", "Cfg I Max (ps)", "Cfg I Avg (ps)", "Cfg II Max (ps)", "Cfg II Avg (ps)")
	columns := map[string][4]string{}
	var order []string
	var canceled error
	for _, cfg := range cfgs {
		opts := experiments.Table1Options{
			Cases: e.cases, Range: 1e-9, P: e.p, SweepOptions: e.sweepOpts(),
		}
		if !e.quiet {
			opts.Progress = e.progress.Hook(func(done, total int) {
				if done%20 == 0 || done == total {
					fmt.Fprintf(os.Stderr, "  config %s: %d/%d cases\r", cfg.Name, done, total)
				}
			})
		}
		e.progress.SetPhase("table1 config "+cfg.Name, e.cases)
		before := e.reg.Snapshot()
		res, err := experiments.RunTable1(cfg, opts)
		if err != nil && !errors.Is(err, telemetry.ErrCanceled) {
			return err
		}
		e.noteFailures("table1 config "+cfg.Name, res.Failures)
		canceled = err
		if !e.quiet {
			fmt.Fprintln(os.Stderr)
		}
		done, elapsed, rate := throughput(e.reg.Snapshot().Delta(before), "experiments.table1.seconds")
		fmt.Fprintf(os.Stderr, "  config %s: %d cases in %v (%.2f cases/s, %d workers)\n",
			cfg.Name, done, elapsed.Round(time.Millisecond), rate, poolSize(e.workers))
		// Worst-case diagnostic: the per-aggressor offsets reproduce the
		// exact alignment (Configuration II's aggressors sweep with
		// different strides, so one scalar would misname the case).
		for _, name := range []string{"SGDP", "WLS5"} {
			if rec, errv, ok := res.WorstCase(name); ok {
				fmt.Fprintf(os.Stderr, "  config %s worst %s case: err=%s ps at aggressor offsets (ps)%s\n",
					cfg.Name, name, report.Ps(errv), fmtOffsetsPs(rec.Offsets))
			}
		}
		for _, s := range res.Stats {
			col, ok := columns[s.Name]
			if !ok {
				order = append(order, s.Name)
				col = [4]string{"-", "-", "-", "-"}
			}
			base := 0
			if cfg.Name == "II" {
				base = 2
			}
			col[base] = report.Ps(s.MaxAbs)
			col[base+1] = report.Ps(s.AvgAbs)
			columns[s.Name] = col
		}
		printFailures(cfg.Name, res.Excluded, res.Failures)
		if canceled != nil {
			break
		}
	}
	for _, name := range order {
		c := columns[name]
		tbl.AddRow(name, c[0], c[1], c[2], c[3])
	}
	if canceled != nil {
		fmt.Println("(partial: run canceled mid-sweep)")
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return canceled
}

func runFigure2(e env, cfg xtalk.Config) error {
	series, err := experiments.RunFigure2(cfg, experiments.Figure2Options{
		P: e.p, SweepOptions: e.sweepOpts(),
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if e.out != "" {
		f, err := os.Create(e.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	names := []string{"v_in_noiseless", "v_out_noiseless", "rho_noiseless_x0.2",
		"v_in_noisy", "v_out_noisy", "rho_eff_x0.2", "gamma_eff", "v_out_eff"}
	waves := map[string]interface{ At(float64) float64 }{
		"v_in_noiseless":     series.NoiselessIn,
		"v_out_noiseless":    series.NoiselessOut,
		"rho_noiseless_x0.2": series.RhoNoiseless,
		"v_in_noisy":         series.NoisyIn,
		"v_out_noisy":        series.NoisyOut,
		"rho_eff_x0.2":       series.RhoEff,
		"gamma_eff":          series.GammaWave,
		"v_out_eff":          series.EstOut,
	}
	fmt.Fprintf(os.Stderr, "Figure 2: Γeff = %v\n", series.GammaEff)
	return report.WriteWaveCSV(w, names, func(name string, t float64) float64 {
		return waves[name].At(t)
	}, series.NoisyIn.T)
}

func runRuntime(e env, cfg xtalk.Config) error {
	rows, err := experiments.RunRuntime(cfg, experiments.RuntimeOptions{
		P: e.p, Ctx: e.ctx, Telemetry: e.reg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nRun-time comparison (§4.2): per-gate Γeff fit, P=%d\n\n", e.p)
	tbl := report.NewTable("Method", "Per-gate time")
	for _, r := range rows {
		tbl.AddRow(r.Name, r.PerGate.String())
	}
	return tbl.Render(os.Stdout)
}

// printFailures renders a sweep's failure report when anything was
// quarantined or excluded; silent on clean runs, so healthy output stays
// byte-identical with and without the resilience flags.
func printFailures(config string, excluded int, rep *sweep.FailureReport) {
	if excluded == 0 && rep.Quarantined() == 0 {
		return
	}
	fmt.Printf("\nFailure report, configuration %s: %d case(s) excluded from statistics\n", config, excluded)
	if rep != nil {
		fmt.Printf("  %s\n", rep)
	}
}

// fmtOffsetsPs renders an offset slice in picoseconds for diagnostics.
func fmtOffsetsPs(offsets []float64) string {
	var b strings.Builder
	for _, o := range offsets {
		fmt.Fprintf(&b, " %s", report.Ps(o))
	}
	return b.String()
}

func runPSweep(e env, cfg xtalk.Config, cases int) error {
	rows, err := experiments.RunPSweep(cfg, nil, cases, e.workers)
	if err != nil {
		return err
	}
	fmt.Printf("\nSGDP accuracy/run-time vs P (§4.2 trade-off)\n\n")
	tbl := report.NewTable("P", "Per-gate time", "Avg |err| (ps)")
	for _, r := range rows {
		tbl.AddRow(fmt.Sprint(r.P), r.PerGate.String(), report.Ps(r.AvgAbsErr))
	}
	return tbl.Render(os.Stdout)
}
