// Command charlib characterizes the built-in standard cells (inverters at
// ×1/×4/×16/×64, NAND2, NOR2, BUF) into an NLDM cell library and writes it
// as Liberty-subset text.
//
// Usage:
//
//	charlib -o generic130.lib [-fast]
package main

import (
	"flag"
	"fmt"
	"os"

	"noisewave/internal/charlib"
	"noisewave/internal/device"
)

func main() {
	var (
		out  = flag.String("o", "", "output .lib path (default stdout)")
		fast = flag.Bool("fast", false, "coarse 3x3 characterization grid")
	)
	flag.Parse()

	tech := device.Default130()
	opts := charlib.DefaultOptions()
	if *fast {
		opts = charlib.FastOptions()
	}
	lib, err := charlib.Characterize(tech, charlib.StandardCells(tech), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charlib:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charlib:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := lib.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "charlib:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "charlib: wrote %d cells (%d slews x %d loads)\n",
		len(lib.CellNames()), len(opts.Slews), len(opts.Loads))
}
