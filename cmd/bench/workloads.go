package main

import (
	"context"
	"fmt"

	"noisewave/internal/circuit"
	"noisewave/internal/device"
	"noisewave/internal/experiments"
	"noisewave/internal/netgen"
	"noisewave/internal/netlist"
	"noisewave/internal/spice"
	"noisewave/internal/sta"
	"noisewave/internal/telemetry"
	"noisewave/internal/wave"
	"noisewave/internal/xtalk"
)

// workload is one pinned benchmark scenario. Parameters are fixed in code —
// never taken from flags — so BENCH_<name>.json files from different
// commits measure the same work and the -compare gate is meaningful.
type workload struct {
	name string
	// about is one line for -list and the JSON.
	about string
	// setup, if non-nil, runs once per measurement before the clock starts
	// (e.g. generating a benchmark netlist) so fixture construction never
	// pollutes the wall time.
	setup func(ctx context.Context) error
	// run executes the workload; batch is the lockstep batch size (0 =
	// scalar path) and is ignored by workloads without a batched mode.
	run func(ctx context.Context, reg *telemetry.Registry, workers, batch int) error
	// batches lists extra pinned batch sizes to measure on top of the
	// always-measured scalar run.
	batches []int
}

// workloads returns the pinned scenarios, cheapest first.
//
//   - table1-small: the CI gate — Configuration I at a coarse step, 8
//     alignment cases, P=15. Seconds, not minutes.
//   - table1-full: the paper's Table 1 sweep on Configuration I (200
//     cases, P=35) at the production step.
//   - pushout: the delay-noise distribution on Configuration I (100
//     cases), which exercises the transient path without technique fits.
//   - spice-micro: the bare solver — repeated gate-replay transients on
//     one reused simulator, no sweep engine, no technique fits. Isolates
//     the Newton/assembly/LU hot path the solver fast path optimizes.
//   - sta-mesh: full-chip static timing on a pinned 10⁵-gate synthetic
//     mesh. The 1-worker run uses the pre-levelized sequential map walk
//     (sta.Timer.RunReference) as the baseline; the parallel run uses the
//     levelized engine at the requested worker count. Throughput is
//     gates/s via the sta.gates_timed counter.
func workloads() []workload {
	// sta-mesh fixture, built once per process by the workload's setup hook
	// (generation is excluded from the measured wall time).
	var meshDesign *netlist.Design
	meshSetup := func(context.Context) error {
		if meshDesign != nil {
			return nil
		}
		cfg := netgen.DefaultConfig(100000)
		cfg.Seed = 1
		d, err := netgen.Generate(cfg)
		if err != nil {
			return err
		}
		meshDesign = d
		return nil
	}

	return []workload{
		{
			name:  "spice-micro",
			about: "bare solver: 60 gate-replay transients, one reused simulator",
			run: func(ctx context.Context, reg *telemetry.Registry, workers, batch int) error {
				_ = workers // single simulator; the solver path has no parallelism
				tech := device.Default130()
				ckt := circuit.New()
				in := ckt.Node("in")
				mid := ckt.Node("mid")
				out := ckt.Node("out")
				vdd := ckt.Node("vdd")
				ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
				vin := ckt.AddVSource("vin", in, circuit.Ground, circuit.DCSource(0))
				ckt.AddInverter("u1", tech, 4, in, mid, vdd)
				ckt.AddInverter("u2", tech, 16, mid, out, vdd)
				ckt.AddInverter("u3", tech, 64, out, ckt.Node("out2"), vdd)
				sim := spice.New(ckt, spice.Options{
					Step: 1e-12, Probes: []string{"out"},
					Telemetry: reg, ReuseResult: true,
				})
				for i := 0; i < 60; i++ {
					edge := wave.Rising
					if i%2 == 1 {
						edge = wave.Falling
					}
					vin.Value = circuit.SlewRamp(0.2e-9, 150e-12, tech.Vdd, edge)
					if _, err := sim.RunWindow(ctx, 0, 1.2e-9); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			name:  "sta-mesh",
			about: "full-chip STA: 1e5-gate mesh, Elmore wires; 1 worker = legacy map walk",
			setup: meshSetup,
			run: func(ctx context.Context, reg *telemetry.Registry, workers, batch int) error {
				timer := sta.New(netgen.SyntheticLibrary(), meshDesign)
				timer.Wire = sta.ElmoreWire
				timer.Telemetry = reg
				if workers == 1 {
					_, err := timer.RunReference()
					return err
				}
				_, err := timer.RunCtx(ctx, sta.RunOptions{Workers: workers})
				return err
			},
		},
		{
			name:  "table1-small",
			about: "Table 1, config I, 8 cases, P=15, coarse step",
			run: func(ctx context.Context, reg *telemetry.Registry, workers, batch int) error {
				cfg := xtalk.ConfigurationI(device.Default130())
				cfg.Step = 2e-12
				_, err := experiments.RunTable1(cfg, experiments.Table1Options{
					Cases: 8, Range: 1e-9, P: 15,
					SweepOptions: experiments.SweepOptions{
						Workers: workers, Batch: batch, Ctx: ctx, Telemetry: reg,
					},
				})
				return err
			},
			batches: []int{8},
		},
		{
			name:  "table1-full",
			about: "Table 1, config I, 200 cases, P=35, paper step",
			run: func(ctx context.Context, reg *telemetry.Registry, workers, batch int) error {
				cfg := xtalk.ConfigurationI(device.Default130())
				_, err := experiments.RunTable1(cfg, experiments.Table1Options{
					Cases: 200, Range: 1e-9, P: 35,
					SweepOptions: experiments.SweepOptions{
						Workers: workers, Batch: batch, Ctx: ctx, Telemetry: reg,
					},
				})
				return err
			},
			batches: []int{8},
		},
		{
			name:  "pushout",
			about: "delay-noise distribution, config I, 100 cases",
			run: func(ctx context.Context, reg *telemetry.Registry, workers, batch int) error {
				cfg := xtalk.ConfigurationI(device.Default130())
				cfg.Step = 2e-12
				_, err := experiments.RunPushout(cfg, experiments.PushoutOptions{
					Cases: 100, Range: 1e-9,
					SweepOptions: experiments.SweepOptions{
						Workers: workers, Batch: batch, Ctx: ctx, Telemetry: reg,
					},
				})
				return err
			},
			batches: []int{8},
		},
		{
			name:  "spice-batch",
			about: "bare batch engine: 64 lockstep transients, config I, one reused bench",
			run: func(ctx context.Context, reg *telemetry.Registry, workers, batch int) error {
				_ = workers // single bench; the batch engine has no parallelism
				cfg := xtalk.ConfigurationI(device.Default130())
				cfg.Step = 2e-12
				// A 1 ns tail after the last edge keeps the per-case window
				// pinned near 2.5 ns with the aggressor edge at ~60% of it, so
				// the shared trunk covers a realistic late-alignment fraction
				// of the run rather than a sliver.
				cfg.Window = 1.0e-9
				cfg.Telemetry = reg
				b, err := xtalk.NewBench(cfg)
				if err != nil {
					return err
				}
				// 64 cases in groups of k. The scalar row (batch 0) runs the
				// same cases as K=1 batches — the engine's degenerate mode,
				// bit-identical to the scalar path — so both rows count cases
				// through spice.batch.cases and the JSON tracks the lockstep
				// speedup directly. Aggressor edges land well after the victim
				// edge so batched groups share a long trunk.
				k := batch
				if k <= 1 {
					k = 1
				}
				const total, victimStart = 64, 0.3e-9
				for lo := 0; lo < total; lo += k {
					hi := lo + k
					if hi > total {
						hi = total
					}
					aggStarts := make([][]float64, hi-lo)
					for i := range aggStarts {
						aggStarts[i] = []float64{victimStart + 1.2e-9 + float64(lo+i)*5e-12}
					}
					err := b.RunBatchReportCtx(ctx, victimStart, aggStarts,
						func(i int, in, out *wave.Waveform, rec spice.RecoveryReport, err error) error {
							return err
						})
					if err != nil {
						return err
					}
				}
				return nil
			},
			batches: []int{8},
		},
	}
}

// findWorkload resolves a workload by name.
func findWorkload(name string) (workload, error) {
	for _, w := range workloads() {
		if w.name == name {
			return w, nil
		}
	}
	return workload{}, fmt.Errorf("bench: unknown workload %q (use -list)", name)
}
