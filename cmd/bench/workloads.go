package main

import (
	"context"
	"fmt"

	"noisewave/internal/device"
	"noisewave/internal/experiments"
	"noisewave/internal/telemetry"
	"noisewave/internal/xtalk"
)

// workload is one pinned benchmark scenario. Parameters are fixed in code —
// never taken from flags — so BENCH_<name>.json files from different
// commits measure the same work and the -compare gate is meaningful.
type workload struct {
	name string
	// about is one line for -list and the JSON.
	about string
	run   func(ctx context.Context, reg *telemetry.Registry, workers int) error
}

// workloads returns the pinned scenarios, cheapest first.
//
//   - table1-small: the CI gate — Configuration I at a coarse step, 8
//     alignment cases, P=15. Seconds, not minutes.
//   - table1-full: the paper's Table 1 sweep on Configuration I (200
//     cases, P=35) at the production step.
//   - pushout: the delay-noise distribution on Configuration I (100
//     cases), which exercises the transient path without technique fits.
func workloads() []workload {
	return []workload{
		{
			name:  "table1-small",
			about: "Table 1, config I, 8 cases, P=15, coarse step",
			run: func(ctx context.Context, reg *telemetry.Registry, workers int) error {
				cfg := xtalk.ConfigurationI(device.Default130())
				cfg.Step = 2e-12
				_, err := experiments.RunTable1(cfg, experiments.Table1Options{
					Cases: 8, Range: 1e-9, P: 15,
					SweepOptions: experiments.SweepOptions{
						Workers: workers, Ctx: ctx, Telemetry: reg,
					},
				})
				return err
			},
		},
		{
			name:  "table1-full",
			about: "Table 1, config I, 200 cases, P=35, paper step",
			run: func(ctx context.Context, reg *telemetry.Registry, workers int) error {
				cfg := xtalk.ConfigurationI(device.Default130())
				_, err := experiments.RunTable1(cfg, experiments.Table1Options{
					Cases: 200, Range: 1e-9, P: 35,
					SweepOptions: experiments.SweepOptions{
						Workers: workers, Ctx: ctx, Telemetry: reg,
					},
				})
				return err
			},
		},
		{
			name:  "pushout",
			about: "delay-noise distribution, config I, 100 cases",
			run: func(ctx context.Context, reg *telemetry.Registry, workers int) error {
				cfg := xtalk.ConfigurationI(device.Default130())
				cfg.Step = 2e-12
				_, err := experiments.RunPushout(cfg, experiments.PushoutOptions{
					Cases: 100, Range: 1e-9,
					SweepOptions: experiments.SweepOptions{
						Workers: workers, Ctx: ctx, Telemetry: reg,
					},
				})
				return err
			},
		},
	}
}

// findWorkload resolves a workload by name.
func findWorkload(name string) (workload, error) {
	for _, w := range workloads() {
		if w.name == name {
			return w, nil
		}
	}
	return workload{}, fmt.Errorf("bench: unknown workload %q (use -list)", name)
}
