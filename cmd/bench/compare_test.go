package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func baseBench() Benchmark {
	return Benchmark{
		Workload: "table1-small",
		Runs: []RunResult{
			{Workers: 1, WallSeconds: 10.0, Cases: 8},
			{Workers: 4, WallSeconds: 3.0, Cases: 8},
		},
	}
}

func TestCompareNoRegression(t *testing.T) {
	old := baseBench()
	cur := baseBench()
	cur.Runs[0].WallSeconds = 11.0 // +10%, inside the 20% budget
	if regs := compareBenchmarks(old, cur, 0.20, 0.30); len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}
}

// TestCompareCatchesInjectedRegression is the acceptance check: an
// injected >= 20% wall-time regression must fail the gate.
func TestCompareCatchesInjectedRegression(t *testing.T) {
	old := baseBench()
	cur := baseBench()
	cur.Runs[1].WallSeconds = old.Runs[1].WallSeconds * 1.25 // +25%
	regs := compareBenchmarks(old, cur, 0.20, 0.30)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly one", regs)
	}
	if !strings.Contains(regs[0], "@4 workers") {
		t.Errorf("regression line does not name the run: %q", regs[0])
	}
}

func TestCompareWorkloadMismatch(t *testing.T) {
	old := baseBench()
	cur := baseBench()
	cur.Workload = "pushout"
	if regs := compareBenchmarks(old, cur, 0.20, 0.30); len(regs) != 1 {
		t.Errorf("workload mismatch must be a gate failure, got %v", regs)
	}
}

func TestCompareIgnoresUnmatchedWorkerCounts(t *testing.T) {
	old := baseBench()
	old.Runs = old.Runs[:1] // baseline only has the 1-worker run
	cur := baseBench()
	cur.Runs[1].WallSeconds = 100 // 4-worker run has no baseline: ignored
	if regs := compareBenchmarks(old, cur, 0.20, 0.30); len(regs) != 0 {
		t.Errorf("unmatched worker counts must not gate: %v", regs)
	}
}

// Runs are matched by (workers, batch): a batched run never gates against
// the scalar run at the same worker count, and a baseline without batched
// runs never gates a current file that adds them.
func TestCompareMatchesByBatch(t *testing.T) {
	old := baseBench()
	old.Runs = append(old.Runs, RunResult{Workers: 1, Batch: 8, WallSeconds: 2.0, Cases: 8})
	cur := baseBench()
	cur.Runs = append(cur.Runs, RunResult{Workers: 1, Batch: 8, WallSeconds: 5.0, Cases: 8})
	regs := compareBenchmarks(old, cur, 0.20, 0.30)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the batched run", regs)
	}
	if !strings.Contains(regs[0], "batch 8") {
		t.Errorf("regression line does not name the batch: %q", regs[0])
	}

	// Baseline without the batched run: the new run is ignored.
	old = baseBench()
	if regs := compareBenchmarks(old, cur, 0.20, 0.30); len(regs) != 0 {
		t.Errorf("unmatched batch sizes must not gate: %v", regs)
	}
}

// An allocation-volume blowup fails the gate even when wall time holds,
// and allocThreshold = 0 disables the alloc gate entirely.
func TestCompareGatesAllocBytes(t *testing.T) {
	old := baseBench()
	old.Runs[0].AllocBytes = 1 << 20
	cur := baseBench()
	cur.Runs[0].AllocBytes = 2 << 20 // +100% alloc, wall time flat
	regs := compareBenchmarks(old, cur, 0.20, 0.30)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the alloc regression", regs)
	}
	if !strings.Contains(regs[0], "alloc") {
		t.Errorf("regression line does not mention allocations: %q", regs[0])
	}
	if regs := compareBenchmarks(old, cur, 0.20, 0); len(regs) != 0 {
		t.Errorf("allocThreshold 0 must disable the alloc gate: %v", regs)
	}
}

func TestBenchmarkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	want := baseBench()
	if err := writeBenchmark(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := loadBenchmark(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != want.Workload || len(got.Runs) != len(want.Runs) ||
		got.Runs[1] != want.Runs[1] {
		t.Errorf("round trip: got %+v want %+v", got, want)
	}
}

func TestFindWorkload(t *testing.T) {
	for _, name := range []string{"table1-small", "table1-full", "pushout", "spice-batch"} {
		if _, err := findWorkload(name); err != nil {
			t.Errorf("findWorkload(%q): %v", name, err)
		}
	}
	if _, err := findWorkload("nope"); err == nil {
		t.Error("findWorkload must reject unknown names")
	}
}
