package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// RunResult is one measured (workload, workers) execution. Everything a
// regression hunt needs rides along with the wall time: throughput, the
// Newton-iteration count (the solver's real unit of work — a wall-time
// regression with flat iterations is scheduling, one with rising
// iterations is numerics), the replay-cache hit rate and the allocation
// volume.
type RunResult struct {
	Workers          int     `json:"workers"`
	WallSeconds      float64 `json:"wall_seconds"`
	Cases            int64   `json:"cases"`
	CasesPerSec      float64 `json:"cases_per_sec"`
	NewtonIterations int64   `json:"newton_iterations"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	AllocBytes       uint64  `json:"alloc_bytes"`
}

// Benchmark is the BENCH_<workload>.json document: the pinned workload
// plus one RunResult per worker count (1 and N by default).
type Benchmark struct {
	Workload string      `json:"workload"`
	About    string      `json:"about"`
	Runs     []RunResult `json:"runs"`
}

// loadBenchmark reads a Benchmark JSON file.
func loadBenchmark(path string) (Benchmark, error) {
	var b Benchmark
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("bench: %s: %w", path, err)
	}
	return b, nil
}

// compareBenchmarks gates cur against old: every (workers) run present in
// both must not regress wall time by more than threshold (0.20 = 20%
// slower fails). It returns human-readable regression lines; an empty
// slice means the gate passes. Runs only present on one side are ignored —
// adding a worker count must not fail old baselines.
func compareBenchmarks(old, cur Benchmark, threshold float64) []string {
	if old.Workload != cur.Workload {
		return []string{fmt.Sprintf("workload mismatch: baseline %q vs current %q", old.Workload, cur.Workload)}
	}
	byWorkers := make(map[int]RunResult, len(old.Runs))
	for _, r := range old.Runs {
		byWorkers[r.Workers] = r
	}
	var regressions []string
	for _, cr := range cur.Runs {
		or, ok := byWorkers[cr.Workers]
		if !ok || or.WallSeconds <= 0 {
			continue
		}
		ratio := cr.WallSeconds / or.WallSeconds
		if ratio > 1+threshold {
			regressions = append(regressions, fmt.Sprintf(
				"%s @%d workers: wall %.3fs -> %.3fs (%.0f%% > %.0f%% budget)",
				cur.Workload, cr.Workers, or.WallSeconds, cr.WallSeconds,
				(ratio-1)*100, threshold*100))
		}
	}
	return regressions
}
