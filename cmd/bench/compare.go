package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// RunResult is one measured (workload, workers) execution. Everything a
// regression hunt needs rides along with the wall time: throughput, the
// Newton-iteration count (the solver's real unit of work — a wall-time
// regression with flat iterations is scheduling, one with rising
// iterations is numerics), the replay-cache hit rate and the allocation
// volume.
type RunResult struct {
	Workers int `json:"workers"`
	// Batch is the lockstep batch size of the run (0 = scalar path). A
	// workload may record both scalar and batched runs; compare matches
	// runs by (workers, batch).
	Batch            int     `json:"batch,omitempty"`
	WallSeconds      float64 `json:"wall_seconds"`
	Cases            int64   `json:"cases"`
	CasesPerSec      float64 `json:"cases_per_sec"`
	NewtonIterations int64   `json:"newton_iterations"`
	// CacheHitRate is the Γeff replay cache (core.replay_hits/misses). On
	// the sweep workloads it is genuinely 0 — every alignment case carries
	// a distinct noisy waveform, so the cache can never hit; the field only
	// moves on workloads that replay identical inputs. LUReuseRate below is
	// the solver-cache figure that regresses meaningfully on sweeps.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// LUReuseRate is the fraction of fast-path Newton solves served by a
	// reused LU factorization: lu_reuses / (lu_reuses + refactors). The
	// fast path's reuse policy and the batch engine's shared trunk both
	// push it up; a drop means the solver is refactoring more.
	LUReuseRate float64 `json:"lu_reuse_rate"`
	AllocBytes  uint64  `json:"alloc_bytes"`
}

// Benchmark is the BENCH_<workload>.json document: the pinned workload
// plus one RunResult per worker count (1 and N by default).
type Benchmark struct {
	Workload string      `json:"workload"`
	About    string      `json:"about"`
	Runs     []RunResult `json:"runs"`
}

// loadBenchmark reads a Benchmark JSON file.
func loadBenchmark(path string) (Benchmark, error) {
	var b Benchmark
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("bench: %s: %w", path, err)
	}
	return b, nil
}

// compareBenchmarks gates cur against old: every (workers, batch) run
// present in both must not regress wall time by more than threshold (0.20 =
// 20% slower fails) nor allocation volume by more than allocThreshold. It
// returns human-readable regression lines; an empty slice means the gate
// passes. Runs only present on one side are ignored — adding a worker count
// or a batch size must not fail old baselines.
func compareBenchmarks(old, cur Benchmark, threshold, allocThreshold float64) []string {
	if old.Workload != cur.Workload {
		return []string{fmt.Sprintf("workload mismatch: baseline %q vs current %q", old.Workload, cur.Workload)}
	}
	type key struct{ workers, batch int }
	byRun := make(map[key]RunResult, len(old.Runs))
	for _, r := range old.Runs {
		byRun[key{r.Workers, r.Batch}] = r
	}
	var regressions []string
	for _, cr := range cur.Runs {
		or, ok := byRun[key{cr.Workers, cr.Batch}]
		if !ok || or.WallSeconds <= 0 {
			continue
		}
		ratio := cr.WallSeconds / or.WallSeconds
		if ratio > 1+threshold {
			regressions = append(regressions, fmt.Sprintf(
				"%s @%d workers batch %d: wall %.3fs -> %.3fs (%.0f%% > %.0f%% budget)",
				cur.Workload, cr.Workers, cr.Batch, or.WallSeconds, cr.WallSeconds,
				(ratio-1)*100, threshold*100))
		}
		// Allocation volume gates with its own (looser) budget: it is
		// noise-free per workload, so growth means a real new allocation in
		// the hot loop, not scheduler jitter.
		if or.AllocBytes > 0 && allocThreshold > 0 {
			aratio := float64(cr.AllocBytes) / float64(or.AllocBytes)
			if aratio > 1+allocThreshold {
				regressions = append(regressions, fmt.Sprintf(
					"%s @%d workers batch %d: alloc %.1f MB -> %.1f MB (%.0f%% > %.0f%% budget)",
					cur.Workload, cr.Workers, cr.Batch,
					float64(or.AllocBytes)/(1<<20), float64(cr.AllocBytes)/(1<<20),
					(aratio-1)*100, allocThreshold*100))
			}
		}
	}
	return regressions
}
