// Command bench is the benchmark trajectory harness: it runs pinned sweep
// workloads, records wall time, throughput, Newton iterations, cache hit
// rate and allocations into BENCH_<workload>.json, and gates the current
// numbers against a saved baseline.
//
// Usage:
//
//	bench -workload table1-small             run + write BENCH_table1-small.json
//	bench -workload table1-small -workers 8  pin the parallel worker count
//	bench -list                              print the pinned workloads
//	bench -workload X -compare old.json      also gate against a baseline;
//	                                         exits 1 when any worker count's
//	                                         wall time regressed > -threshold
//
// Each workload runs twice — sequentially (1 worker) and at -workers (0 =
// all cores) — so the JSON tracks both the solver's raw speed and the
// sweep engine's scaling. Workload parameters are pinned in code, never
// flags: two BENCH files always measure the same work.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"noisewave/internal/telemetry"
)

func main() {
	var (
		name      = flag.String("workload", "table1-small", "pinned workload to run (see -list)")
		workers   = flag.Int("workers", 0, "parallel worker count (0 = all cores); 1-worker run always included")
		outDir    = flag.String("out", ".", "directory for BENCH_<workload>.json")
		compare   = flag.String("compare", "", "baseline BENCH json to gate against")
		threshold = flag.Float64("threshold", 0.20, "wall-time regression budget for -compare (0.20 = +20%)")
		allocTh   = flag.Float64("alloc-threshold", 0.30, "alloc_bytes regression budget for -compare (0 = don't gate allocations)")
		list      = flag.Bool("list", false, "print the pinned workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads() {
			fmt.Printf("%-14s %s\n", w.name, w.about)
		}
		return
	}
	w, err := findWorkload(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	parallel := *workers
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	counts := []int{1}
	if parallel > 1 {
		counts = append(counts, parallel)
	}
	// Every workload runs scalar (batch 0); batch-capable workloads add a
	// run per pinned batch size so the JSON tracks both paths and compare
	// can gate them independently.
	type combo struct{ workers, batch int }
	var combos []combo
	for _, b := range append([]int{0}, w.batches...) {
		for _, n := range counts {
			combos = append(combos, combo{n, b})
		}
	}

	bench := Benchmark{Workload: w.name, About: w.about}
	for _, c := range combos {
		r, err := measure(w, c.workers, c.batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s @%d workers batch %d: %v\n", w.name, c.workers, c.batch, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: %s @%d workers batch %d: %.3fs wall, %.2f cases/s, %d NR iters, %.0f%% LU reuse, %.1f MB alloc\n",
			w.name, c.workers, c.batch, r.WallSeconds, r.CasesPerSec, r.NewtonIterations,
			r.LUReuseRate*100, float64(r.AllocBytes)/(1<<20))
		bench.Runs = append(bench.Runs, r)
	}

	out := filepath.Join(*outDir, "BENCH_"+w.name+".json")
	if err := writeBenchmark(out, bench); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bench: wrote", out)

	if *compare != "" {
		old, err := loadBenchmark(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if regs := compareBenchmarks(old, bench, *threshold, *allocTh); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "bench: REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: no regression vs %s (budget %.0f%%)\n", *compare, *threshold*100)
	}
}

// measure runs one workload at one worker count with a fresh registry and
// derives the run record from the engine's own counters: completed cases
// and Newton iterations come from telemetry (identical accounting on the
// sequential and parallel paths), the allocation volume from the
// runtime's total-alloc delta.
func measure(w workload, workers, batch int) (RunResult, error) {
	reg := telemetry.New()
	if w.setup != nil {
		if err := w.setup(context.Background()); err != nil {
			return RunResult{}, fmt.Errorf("setup: %w", err)
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := w.run(context.Background(), reg, workers, batch); err != nil {
		return RunResult{}, err
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	snap := reg.Snapshot()
	r := RunResult{
		Workers:          workers,
		Batch:            batch,
		WallSeconds:      wall,
		Cases:            snap.Counters["sweep.cases_completed"],
		NewtonIterations: snap.Counters["spice.newton_iterations"],
		AllocBytes:       after.TotalAlloc - before.TotalAlloc,
	}
	if r.Cases == 0 {
		// STA workloads have no sweep cases; count timed gates instead, so
		// CasesPerSec reads as gates/s.
		r.Cases = snap.Counters["sta.gates_timed"]
	}
	if r.Cases == 0 {
		// Bare batched-solver workloads bypass the sweep engine; count the
		// batch engine's delivered cases.
		r.Cases = snap.Counters["spice.batch.cases"]
	}
	if wall > 0 {
		r.CasesPerSec = float64(r.Cases) / wall
	}
	hits := snap.Counters["core.replay_hits"]
	misses := snap.Counters["core.replay_misses"]
	if hits+misses > 0 {
		r.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	reuses := snap.Counters["spice.fastpath.lu_reuses"]
	refactors := snap.Counters["spice.fastpath.refactors"]
	if reuses+refactors > 0 {
		r.LUReuseRate = float64(reuses) / float64(reuses+refactors)
	}
	return r, nil
}

// writeBenchmark writes the document as indented JSON, creating the
// directory if needed.
func writeBenchmark(path string, b Benchmark) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
