package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"noisewave/internal/jobs"
	"noisewave/internal/obs/httpserver"
	"noisewave/internal/telemetry"
)

// The load mode is the ROADMAP's missing sustained load test: boot the
// real daemon on a loopback port, run N concurrent submitters each driving
// J distinct jobs through the full HTTP surface (submit, poll, fetch
// result), and report submit-to-done latency percentiles from the client
// side plus the server-side jobs.run_seconds distribution. Every config is
// unique (the input slew is parameterized per job), so the run measures
// queueing + execution, not the content-addressed cache.

// loadOptions configures one load run.
type loadOptions struct {
	Submitters int
	Jobs       int
	Out        string
	Manager    jobs.Options
}

// loadReport is the JSON document -load-out writes (and CI uploads).
type loadReport struct {
	Submitters int     `json:"submitters"`
	Jobs       int     `json:"jobs"`
	Durable    bool    `json:"durable"`
	WallS      float64 `json:"wall_s"`
	Throughput float64 `json:"jobs_per_s"`
	// Client-observed submit-to-done latency (includes queueing + polls).
	Latency loadPercentiles `json:"submit_to_done_s"`
	// Server-side execution time per job, from the jobs.run_seconds histogram.
	Run      loadPercentiles `json:"run_seconds"`
	Errors   int             `json:"errors"`
	Rejected int             `json:"rejected_429"`
}

// loadPercentiles is one latency distribution.
type loadPercentiles struct {
	N    int     `json:"n"`
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// percentiles summarizes samples (no-op zero value on empty input).
func percentiles(samples []float64) loadPercentiles {
	if len(samples) == 0 {
		return loadPercentiles{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return loadPercentiles{
		N:    len(samples),
		Min:  telemetry.Quantile(samples, 0),
		P50:  telemetry.Quantile(samples, 0.50),
		P95:  telemetry.Quantile(samples, 0.95),
		P99:  telemetry.Quantile(samples, 0.99),
		Max:  telemetry.Quantile(samples, 1),
		Mean: sum / float64(len(samples)),
	}
}

// runLoad executes the sustained load test and prints the report.
func runLoad(opts loadOptions) error {
	if opts.Submitters <= 0 {
		opts.Submitters = 8
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 25
	}
	total := opts.Submitters * opts.Jobs

	reg := telemetry.New()
	mo := opts.Manager
	mo.Telemetry = reg
	if mo.Backlog < total {
		// The harness measures latency under load, not backlog rejection;
		// size the queue to admit the whole run.
		mo.Backlog = total
	}
	if mo.TenantQuota < total {
		mo.TenantQuota = total
	}
	// Retain every run_seconds observation of this run for percentiles.
	reg.Histogram("jobs.run_seconds").KeepSamples(total)

	mgr, err := jobs.Open(mo)
	if err != nil {
		return err
	}
	defer mgr.Close()
	srv := &httpserver.Server{Registry: reg, Jobs: mgr}
	httpSrv, ln, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	libText, err := smokeLiberty()
	if err != nil {
		return fmt.Errorf("build liberty fixture: %w", err)
	}
	fmt.Printf("serve: load test on %s: %d submitters x %d jobs (runners=%d durable=%v)\n",
		base, opts.Submitters, opts.Jobs, mo.Runners, mo.DataDir != "")

	latencies := make([]float64, total)
	errs := make([]error, total)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < opts.Submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < opts.Jobs; k++ {
				idx := s*opts.Jobs + k
				cfg := loadConfig(libText, idx)
				t0 := time.Now()
				if _, err := submitAndWait(base, cfg); err != nil {
					errs[idx] = fmt.Errorf("submitter %d job %d: %w", s, k, err)
					continue
				}
				latencies[idx] = time.Since(t0).Seconds()
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)

	var ok []float64
	nerr := 0
	for i, l := range latencies {
		if errs[i] != nil {
			nerr++
			if nerr <= 3 {
				fmt.Fprintln(os.Stderr, "serve: load:", errs[i])
			}
			continue
		}
		ok = append(ok, l)
	}

	snap := reg.Snapshot()
	rep := loadReport{
		Submitters: opts.Submitters,
		Jobs:       opts.Jobs,
		Durable:    mo.DataDir != "",
		WallS:      wall.Seconds(),
		Throughput: float64(len(ok)) / wall.Seconds(),
		Latency:    percentiles(ok),
		Run:        percentiles(reg.Histogram("jobs.run_seconds").Samples()),
		Errors:     nerr,
		Rejected:   int(snap.Counters["jobs.rejected_backlog"] + snap.Counters["jobs.rejected_quota"]),
	}

	fmt.Printf("serve: load done: %d/%d jobs in %.2fs (%.1f jobs/s)\n",
		len(ok), total, rep.WallS, rep.Throughput)
	printPercentiles("submit-to-done", rep.Latency)
	printPercentiles("run_seconds   ", rep.Run)
	if rep.Errors > 0 {
		return fmt.Errorf("%d/%d jobs failed", rep.Errors, total)
	}

	if opts.Out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.Out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("serve: load report written to", opts.Out)
	}
	return nil
}

// printPercentiles renders one distribution row in milliseconds.
func printPercentiles(label string, p loadPercentiles) {
	if p.N == 0 {
		fmt.Printf("serve: load %s: no samples\n", label)
		return
	}
	ms := func(v float64) float64 { return v * 1e3 }
	fmt.Printf("serve: load %s: n=%d p50=%.2fms p95=%.2fms p99=%.2fms min=%.2fms max=%.2fms mean=%.2fms\n",
		label, p.N, ms(p.P50), ms(p.P95), ms(p.P99), ms(p.Min), ms(p.Max), ms(p.Mean))
}

// loadConfig builds the idx-th distinct job: the shared STA chain with a
// per-job input slew, so every submission content-addresses uniquely and
// runs a real (table-lookup) timing pass without making the load test
// solver-bound.
func loadConfig(libText string, idx int) jobs.Config {
	return jobs.Config{
		Experiment: "sta",
		Netlist: fmt.Sprintf("design load_chain\n"+
			"input a slew=%dps at=0ps\n"+
			"output y\n"+
			"gate u1 INV A=a Y=n1\n"+
			"gate u2 BUF A=n1 Y=n2\n"+
			"gate u3 INV A=n2 Y=y\n"+
			"netcap n1 5fF\nnetres n1 200\n"+
			"netcap n2 3fF\nnetres n2 150\n", 20+idx),
		Liberty: libText,
		Wire:    "elmore",
		Require: map[string]string{"y": "500ps"},
	}
}
