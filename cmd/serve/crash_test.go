package main

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"noisewave/internal/jobs"
)

// serveProc is one live serve process under test: the captured stdout and
// the parsed listen address.
type serveProc struct {
	cmd  *exec.Cmd
	base string
	eof  chan struct{}

	mu    sync.Mutex
	lines []string
}

// wait reaps the process, first letting the output scanner drain to EOF —
// cmd.Wait closes the stdout pipe, so reaping earlier can discard the
// final lines (the drain/shutdown messages the test asserts on).
func (p *serveProc) wait() error {
	select {
	case <-p.eof:
	case <-time.After(60 * time.Second):
	}
	return p.cmd.Wait()
}

// output returns everything the process printed so far.
func (p *serveProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.lines, "\n")
}

// startServe launches the built binary and waits for its listening line.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, eof: make(chan struct{})}
	listening := make(chan string, 1)
	go func() {
		defer close(p.eof)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.lines = append(p.lines, line)
			p.mu.Unlock()
			if addr, ok := strings.CutPrefix(line, "serve: listening on "); ok {
				addr, _, _ = strings.Cut(addr, " ")
				listening <- addr
			}
		}
	}()
	select {
	case addr := <-listening:
		p.base = "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("serve did not start listening; output:\n%s", p.output())
	}
	return p
}

// TestServeCrashRecovery is the end-to-end acceptance run: boot the real
// binary with -data, submit a batch, kill -9 mid-batch, verify the restart
// recovers and completes the batch, verify a resubmission is a durable
// cache hit with zero new solves, then SIGTERM-drain cleanly and verify the
// third boot reports the clean-shutdown path.
func TestServeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs transistor-level sweeps")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")
	artDir := filepath.Join(tmp, "artifacts")
	serveArgs := []string{"-addr", "127.0.0.1:0", "-data", dataDir,
		"-artifacts", artDir, "-log", "debug", "-log-format", "json",
		"-runners", "1", "-workers", "2", "-drain-timeout", "30s"}
	var procs []*serveProc
	t.Cleanup(func() { saveDiagnostics(t, artDir, procs) })

	// Boot 1: submit a batch whose jobs take ~0.5s each at one runner, so
	// the kill lands with most of the batch unfinished.
	p1 := startServe(t, bin, serveArgs...)
	procs = append(procs, p1)
	const batch = 4
	cfgs := make([]jobs.Config, batch)
	ids := make([]string, batch)
	for i := range cfgs {
		cfgs[i] = jobs.Config{Experiment: "pushout", Cases: 8 + i, RangeS: 0.4e-9}
		st, err := submit(p1.base, cfgs[i])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	time.Sleep(200 * time.Millisecond) // let the first job get mid-run
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.wait()

	// Boot 2: the same data dir must recover and complete the whole batch.
	p2 := startServe(t, bin, serveArgs...)
	procs = append(procs, p2)
	if out := p2.output(); !strings.Contains(out, "serve: recovered from crash") &&
		!strings.Contains(out, "serve: restart:") {
		t.Fatalf("restart did not log recovery; output:\n%s", out)
	}
	// A crash-recovery boot freezes the flight ring into the artifact dir.
	if strings.Contains(p2.output(), "serve: recovered from crash") {
		if _, err := os.Stat(filepath.Join(artDir, "boot-recovery", "flight.json")); err != nil {
			t.Errorf("crash-recovery boot left no flight dump: %v", err)
		}
	}
	deadline := time.Now().Add(3 * time.Minute)
	for i, id := range ids {
		for {
			res, err := fetchResult(p2.base, id)
			if err == nil && res != "" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s (batch %d) not completed after restart; output:\n%s",
					id, i, p2.output())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Resubmitting a batch config must be a durable cache hit: terminal on
	// arrival, zero new solves (frozen spice counters).
	before, err := scrapeCounters(p2.base)
	if err != nil {
		t.Fatal(err)
	}
	st, err := submit(p2.base, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit || st.State != jobs.StateDone {
		t.Fatalf("resubmission after crash not a cache hit: %+v", st)
	}
	after, err := scrapeCounters(p2.base)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range after {
		if strings.HasPrefix(name, "noisewave_spice_") && v != before[name] {
			t.Errorf("cache hit ran solves: %s moved %d -> %d", name, before[name], v)
		}
	}

	// SIGTERM must drain within the deadline and exit 0.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.wait(); err != nil {
		t.Fatalf("drain exit: %v; output:\n%s", err, p2.output())
	}
	if out := p2.output(); !strings.Contains(out, "serve: drained cleanly") {
		t.Fatalf("no clean-drain log; output:\n%s", out)
	}

	// Boot 3 must see the clean-shutdown record, not a crash.
	p3 := startServe(t, bin, serveArgs...)
	procs = append(procs, p3)
	defer func() {
		p3.cmd.Process.Signal(syscall.SIGTERM)
		p3.wait()
	}()
	if out := p3.output(); !strings.Contains(out, "serve: clean shutdown restart") {
		t.Fatalf("third boot did not take the clean-shutdown path; output:\n%s", out)
	}
}

// saveDiagnostics preserves the failure evidence — each boot's combined
// stdout/stderr (structured JSON logs included) and the artifact tree
// (flight dumps, per-job logs and traces) — into $CRASH_DIAG_DIR, which CI
// uploads as a workflow artifact when the job fails. A passing run, or a
// run without the env var, writes nothing.
func saveDiagnostics(t *testing.T, artDir string, procs []*serveProc) {
	diag := os.Getenv("CRASH_DIAG_DIR")
	if diag == "" || !t.Failed() {
		return
	}
	if err := os.MkdirAll(diag, 0o755); err != nil {
		t.Logf("diagnostics: %v", err)
		return
	}
	for i, p := range procs {
		name := filepath.Join(diag, fmt.Sprintf("serve-boot%d.log", i+1))
		if err := os.WriteFile(name, []byte(p.output()+"\n"), 0o644); err != nil {
			t.Logf("diagnostics: %v", err)
		}
	}
	if err := copyTree(artDir, filepath.Join(diag, "artifacts")); err != nil {
		t.Logf("diagnostics: copy artifacts: %v", err)
	}
	t.Logf("diagnostics saved to %s", diag)
}

// copyTree copies a directory recursively (missing source is not an error:
// the run may have died before writing anything).
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
}

// fetchResult GETs one job's result; "" with nil error means still running.
func fetchResult(base, id string) (string, error) {
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return string(body), nil
	case http.StatusAccepted:
		return "", nil
	default:
		return "", fmt.Errorf("job %s: result status %d: %s", id, resp.StatusCode, body)
	}
}
