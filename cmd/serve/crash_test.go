package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"noisewave/internal/jobs"
)

// serveProc is one live serve process under test: the captured stdout and
// the parsed listen address.
type serveProc struct {
	cmd  *exec.Cmd
	base string

	mu    sync.Mutex
	lines []string
}

// output returns everything the process printed so far.
func (p *serveProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.lines, "\n")
}

// startServe launches the built binary and waits for its listening line.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd}
	listening := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.lines = append(p.lines, line)
			p.mu.Unlock()
			if addr, ok := strings.CutPrefix(line, "serve: listening on "); ok {
				addr, _, _ = strings.Cut(addr, " ")
				listening <- addr
			}
		}
	}()
	select {
	case addr := <-listening:
		p.base = "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("serve did not start listening; output:\n%s", p.output())
	}
	return p
}

// TestServeCrashRecovery is the end-to-end acceptance run: boot the real
// binary with -data, submit a batch, kill -9 mid-batch, verify the restart
// recovers and completes the batch, verify a resubmission is a durable
// cache hit with zero new solves, then SIGTERM-drain cleanly and verify the
// third boot reports the clean-shutdown path.
func TestServeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs transistor-level sweeps")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")
	serveArgs := []string{"-addr", "127.0.0.1:0", "-data", dataDir,
		"-runners", "1", "-workers", "2", "-drain-timeout", "30s"}

	// Boot 1: submit a batch whose jobs take ~0.5s each at one runner, so
	// the kill lands with most of the batch unfinished.
	p1 := startServe(t, bin, serveArgs...)
	const batch = 4
	cfgs := make([]jobs.Config, batch)
	ids := make([]string, batch)
	for i := range cfgs {
		cfgs[i] = jobs.Config{Experiment: "pushout", Cases: 8 + i, RangeS: 0.4e-9}
		st, err := submit(p1.base, cfgs[i])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	time.Sleep(200 * time.Millisecond) // let the first job get mid-run
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait()

	// Boot 2: the same data dir must recover and complete the whole batch.
	p2 := startServe(t, bin, serveArgs...)
	if out := p2.output(); !strings.Contains(out, "serve: recovered from crash") &&
		!strings.Contains(out, "serve: restart:") {
		t.Fatalf("restart did not log recovery; output:\n%s", out)
	}
	deadline := time.Now().Add(3 * time.Minute)
	for i, id := range ids {
		for {
			res, err := fetchResult(p2.base, id)
			if err == nil && res != "" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s (batch %d) not completed after restart; output:\n%s",
					id, i, p2.output())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Resubmitting a batch config must be a durable cache hit: terminal on
	// arrival, zero new solves (frozen spice counters).
	before, err := scrapeCounters(p2.base)
	if err != nil {
		t.Fatal(err)
	}
	st, err := submit(p2.base, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit || st.State != jobs.StateDone {
		t.Fatalf("resubmission after crash not a cache hit: %+v", st)
	}
	after, err := scrapeCounters(p2.base)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range after {
		if strings.HasPrefix(name, "noisewave_spice_") && v != before[name] {
			t.Errorf("cache hit ran solves: %s moved %d -> %d", name, before[name], v)
		}
	}

	// SIGTERM must drain within the deadline and exit 0.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("drain exit: %v; output:\n%s", err, p2.output())
	}
	if out := p2.output(); !strings.Contains(out, "serve: drained cleanly") {
		t.Fatalf("no clean-drain log; output:\n%s", out)
	}

	// Boot 3 must see the clean-shutdown record, not a crash.
	p3 := startServe(t, bin, serveArgs...)
	defer func() {
		p3.cmd.Process.Signal(syscall.SIGTERM)
		p3.cmd.Wait()
	}()
	if out := p3.output(); !strings.Contains(out, "serve: clean shutdown restart") {
		t.Fatalf("third boot did not take the clean-shutdown path; output:\n%s", out)
	}
}

// fetchResult GETs one job's result; "" with nil error means still running.
func fetchResult(base, id string) (string, error) {
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return string(body), nil
	case http.StatusAccepted:
		return "", nil
	default:
		return "", fmt.Errorf("job %s: result status %d: %s", id, resp.StatusCode, body)
	}
}
