// Command serve boots the timing-as-a-service daemon: the job manager
// (internal/jobs) behind the HTTP surface (internal/obs/httpserver).
//
// Usage:
//
//	serve [-addr :9090] [-workers 0] [-shards 4] [-runners 1]
//	      [-batch 8] [-no-batch] [-no-fastpath]
//	      [-backlog 64] [-quota 8] [-artifacts DIR]
//	      [-data DIR] [-drain-timeout 30s] [-recover requeue|interrupt]
//	      [-log info] [-log-format human]
//	serve -smoke
//	serve -load [-load-submitters 8] [-load-jobs 25] [-load-out FILE]
//
// The daemon exposes:
//
//	POST   /jobs              submit a batch config (JSON)
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         job status
//	GET    /jobs/{id}/result  job result
//	DELETE /jobs/{id}         cancel
//	GET    /metrics           Prometheus exposition (jobs.* + engine metrics)
//	GET    /healthz           liveness
//	GET    /debug/flight      recent incident events (bounded ring, JSON)
//
// Every request and every job lifecycle transition emits one structured
// log line on stderr carrying a correlation ID (the job ID), controlled by
// -log (debug|info|warn|error|off) and -log-format (human|json|text). The
// same event stream feeds a bounded in-memory flight recorder served at
// /debug/flight and frozen into the artifact bundle of any failing job.
//
// With -data DIR the service is durable: every acknowledged job is fsync'd
// into a CRC-framed write-ahead journal and every completed result into an
// on-disk content-addressed store before the client sees it, so kill -9
// loses nothing — the next boot replays the journal, rehydrates finished
// jobs, and re-runs (or, with -recover interrupt, marks interrupted)
// whatever was in flight. SIGTERM/SIGINT trigger a graceful drain: new
// submissions get 503 + Retry-After, running jobs get -drain-timeout to
// finish, and a clean-shutdown record lets the next boot skip recovery.
//
// -smoke runs the self-test CI uses: boot on a loopback port, drive the
// HTTP API end to end (an STA job and a sharded transistor-level pushout
// job), compare every number against the equivalent direct in-process run,
// verify an identical resubmission is served from the cache with zero new
// solves, and verify a draining manager answers 503 + Retry-After. Exit
// status 0 means the service reproduces the direct path bit for bit.
//
// -load runs the sustained load test: concurrent submitters drive distinct
// jobs through the full HTTP surface and the report gives p50/p95/p99
// submit-to-done latency plus the server-side jobs.run_seconds
// distribution (see EXPERIMENTS.md "Durability & crash recovery").
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"noisewave/internal/jobs"
	"noisewave/internal/obs"
	"noisewave/internal/obs/httpserver"
	"noisewave/internal/obs/logctx"
	"noisewave/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":9090", "listen address")
		workers      = flag.Int("workers", 0, "sweep workers per job (0 = all cores)")
		shards       = flag.Int("shards", 4, "consistent-hash shards per sweep job")
		batch        = flag.Int("batch", 8, "lockstep batch size for sweep jobs (1 = scalar; ignored when shards > 1)")
		noBatch      = flag.Bool("no-batch", false, "disable batched lockstep solving (same as -batch 1)")
		noFastPath   = flag.Bool("no-fastpath", false, "disable the spice solver fast path in every job")
		runners      = flag.Int("runners", 1, "jobs executed concurrently")
		backlog      = flag.Int("backlog", 64, "max queued jobs before 429")
		quota        = flag.Int("quota", 8, "max queued+running jobs per tenant before 429")
		artifacts    = flag.String("artifacts", "", "per-job artifact directory (empty = off)")
		data         = flag.String("data", "", "durable data directory: write-ahead journal + result store (empty = in-memory)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline for running jobs on SIGTERM")
		recoverMode  = flag.String("recover", "requeue", "crashed in-flight jobs on boot: requeue | interrupt")
		logLevel     = flag.String("log", "info", "structured-log level: debug | info | warn | error | off")
		logFormat    = flag.String("log-format", "human", "structured-log format on stderr: human | json | text")
		smoke        = flag.Bool("smoke", false, "run the end-to-end self-test and exit")
		load         = flag.Bool("load", false, "run the sustained load test and exit")
		loadSubs     = flag.Int("load-submitters", 8, "concurrent submitters in -load mode")
		loadJobs     = flag.Int("load-jobs", 25, "jobs per submitter in -load mode")
		loadOut      = flag.String("load-out", "", "write the -load percentile report as JSON to this file")
	)
	flag.Parse()

	policy := jobs.RecoverRequeue
	switch *recoverMode {
	case "requeue":
	case "interrupt":
		policy = jobs.RecoverInterrupt
	default:
		fmt.Fprintf(os.Stderr, "serve: -recover %q (want requeue or interrupt)\n", *recoverMode)
		os.Exit(2)
	}

	if *smoke {
		if err := runSmoke(*workers, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "serve: smoke FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("serve: smoke OK")
		return
	}

	if *noBatch {
		*batch = 1
	}
	opts := jobs.Options{
		Backlog: *backlog, TenantQuota: *quota, Runners: *runners,
		Workers: *workers, Shards: *shards,
		NoFastPath: *noFastPath, Batch: *batch,
		ArtifactsDir: *artifacts,
		DataDir:      *data, Recover: policy,
	}

	if *load {
		if err := runLoad(loadOptions{
			Submitters: *loadSubs, Jobs: *loadJobs, Out: *loadOut, Manager: opts,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "serve: load FAILED:", err)
			os.Exit(1)
		}
		return
	}

	level, err := logctx.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}
	stderrLog, err := logctx.New(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}
	// Everything warn-and-up also lands in the flight recorder, regardless
	// of the stderr level — /debug/flight keeps working with -log off.
	flight := obs.NewFlightRecorder(obs.DefaultFlightSize)
	log := slog.New(logctx.Tee(stderrLog.Handler(), flight.Handler(slog.LevelWarn)))

	reg := telemetry.New()
	opts.Telemetry = reg
	opts.Log = log
	opts.Flight = flight
	mgr, err := jobs.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	logRecovery(*data, mgr.Recovery())
	if rep := mgr.Recovery(); rep.Recovered() {
		log.Warn("crash recovery",
			"rehydrated", rep.Rehydrated, "requeued", rep.Requeued,
			"resumed", rep.Resumed, "rescued", rep.Rescued,
			"interrupted", rep.Interrupted, "torn_bytes", rep.TornBytes)
		dumpBootFlight(*artifacts, flight, log)
	}
	srv := &httpserver.Server{Registry: reg, Jobs: mgr, Log: log, Flight: flight}
	httpSrv, ln, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Printf("serve: listening on %s (runners=%d workers=%d shards=%d backlog=%d quota=%d durable=%v)\n",
		ln.Addr(), *runners, *workers, *shards, *backlog, *quota, *data != "")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("serve: draining (timeout %s)\n", *drainTimeout)
	// Drain first, while the HTTP surface still answers: new submissions
	// get 503 + Retry-After, pollers keep seeing status, and running jobs
	// get the deadline to finish before the clean-shutdown record lands.
	mgr.Drain(*drainTimeout)
	httpSrv.Close()
	fmt.Println("serve: drained cleanly")
}

// dumpBootFlight freezes the flight ring (which at this point holds the
// crash-recovery event) into <artifacts>/boot-recovery so the incident
// context survives even if the process dies again before anyone curls
// /debug/flight. Best-effort: a failure is logged, not fatal.
func dumpBootFlight(artifacts string, flight *obs.FlightRecorder, log *slog.Logger) {
	if artifacts == "" {
		return
	}
	run, err := obs.OpenRun(filepath.Join(artifacts, "boot-recovery"))
	if err == nil {
		err = run.WriteFlight(flight)
	}
	if err != nil {
		log.Warn("boot flight dump failed", "err", err.Error())
		return
	}
	log.Info("boot flight dump written", "dir", run.Dir())
}

// logRecovery reports what boot-time replay found, in a stable, greppable
// form (the crash suite asserts on these lines).
func logRecovery(data string, rep jobs.RecoveryReport) {
	if data == "" {
		return
	}
	switch {
	case rep.Records == 0:
		fmt.Println("serve: durable store empty (first boot)")
	case rep.Recovered():
		fmt.Printf("serve: recovered from crash: rehydrated=%d requeued=%d resumed=%d rescued=%d interrupted=%d torn_bytes=%d\n",
			rep.Rehydrated, rep.Requeued, rep.Resumed, rep.Rescued, rep.Interrupted, rep.TornBytes)
	case rep.CleanShutdown:
		fmt.Printf("serve: clean shutdown restart: rehydrated=%d requeued=%d\n",
			rep.Rehydrated, rep.Requeued)
	default:
		fmt.Printf("serve: restart: rehydrated=%d requeued=%d\n", rep.Rehydrated, rep.Requeued)
	}
}
