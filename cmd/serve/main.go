// Command serve boots the timing-as-a-service daemon: the job manager
// (internal/jobs) behind the HTTP surface (internal/obs/httpserver).
//
// Usage:
//
//	serve [-addr :9090] [-workers 0] [-shards 4] [-runners 1]
//	      [-backlog 64] [-quota 8] [-artifacts DIR]
//	serve -smoke
//
// The daemon exposes:
//
//	POST   /jobs              submit a batch config (JSON)
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         job status
//	GET    /jobs/{id}/result  job result
//	DELETE /jobs/{id}         cancel
//	GET    /metrics           Prometheus exposition (jobs.* + engine metrics)
//	GET    /healthz           liveness
//
// -smoke runs the self-test CI uses: boot on a loopback port, drive the
// HTTP API end to end (an STA job and a sharded transistor-level pushout
// job), compare every number against the equivalent direct in-process run,
// and verify an identical resubmission is served from the cache with zero
// new solves. Exit status 0 means the service reproduces the direct path
// bit for bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"noisewave/internal/jobs"
	"noisewave/internal/obs/httpserver"
	"noisewave/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", ":9090", "listen address")
		workers   = flag.Int("workers", 0, "sweep workers per job (0 = all cores)")
		shards    = flag.Int("shards", 4, "consistent-hash shards per sweep job")
		runners   = flag.Int("runners", 1, "jobs executed concurrently")
		backlog   = flag.Int("backlog", 64, "max queued jobs before 429")
		quota     = flag.Int("quota", 8, "max queued+running jobs per tenant before 429")
		artifacts = flag.String("artifacts", "", "per-job artifact directory (empty = off)")
		smoke     = flag.Bool("smoke", false, "run the end-to-end self-test and exit")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(*workers, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "serve: smoke FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("serve: smoke OK")
		return
	}

	reg := telemetry.New()
	mgr := jobs.NewManager(jobs.Options{
		Backlog: *backlog, TenantQuota: *quota, Runners: *runners,
		Workers: *workers, Shards: *shards,
		Telemetry: reg, ArtifactsDir: *artifacts,
	})
	srv := &httpserver.Server{Registry: reg, Jobs: mgr}
	httpSrv, ln, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Printf("serve: listening on %s (runners=%d workers=%d shards=%d backlog=%d quota=%d)\n",
		ln.Addr(), *runners, *workers, *shards, *backlog, *quota)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("serve: shutting down")
	httpSrv.Close()
	mgr.Close()
}
