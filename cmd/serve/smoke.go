package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"time"

	"noisewave/internal/jobs"
	"noisewave/internal/liberty"
	"noisewave/internal/obs/httpserver"
	"noisewave/internal/telemetry"
)

// runSmoke boots the service on a loopback port and drives the HTTP API
// end to end: an elmore STA job and a sharded transistor-level pushout
// job, each checked bit-for-bit against the direct in-process run, then
// resubmitted to prove the content-addressed cache serves them with zero
// new solves.
func runSmoke(workers, shards int) error {
	if workers == 0 {
		workers = 2
	}
	reg := telemetry.New()
	mgr := jobs.NewManager(jobs.Options{
		Workers: workers, Shards: shards, Telemetry: reg,
	})
	defer mgr.Close()
	srv := &httpserver.Server{Registry: reg, Jobs: mgr}
	httpSrv, ln, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serve: smoke server on", base)

	libText, err := smokeLiberty()
	if err != nil {
		return fmt.Errorf("build liberty fixture: %w", err)
	}
	staCfg := jobs.Config{
		Experiment: "sta",
		Netlist: "design smoke_chain\n" +
			"input a slew=100ps at=0ps\n" +
			"output y\n" +
			"gate u1 INV A=a Y=n1\n" +
			"gate u2 BUF A=n1 Y=n2\n" +
			"gate u3 INV A=n2 Y=y\n" +
			"netcap n1 5fF\nnetres n1 200\n" +
			"netcap n2 3fF\nnetres n2 150\n",
		Liberty: libText,
		Wire:    "elmore",
		Require: map[string]string{"y": "500ps"},
	}
	pushCfg := jobs.Config{Experiment: "pushout", Cases: 3, RangeS: 0.4e-9}

	// Drive both jobs through HTTP and compare against the direct path.
	// The direct runs use their own registry so the service counters stay
	// attributable to the HTTP jobs alone.
	for _, tc := range []struct {
		name string
		cfg  jobs.Config
	}{{"sta-elmore", staCfg}, {"pushout-sharded", pushCfg}} {
		got, err := submitAndWait(base, tc.cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		want, err := jobs.RunDirect(context.Background(), tc.cfg,
			jobs.Options{Workers: workers, Shards: shards, Telemetry: telemetry.New()})
		if err != nil {
			return fmt.Errorf("%s direct run: %w", tc.name, err)
		}
		// The service result crossed a JSON round-trip; Go's float encoding
		// is exact (shortest-representation), so equality here is
		// bit-identity of every number.
		if !reflect.DeepEqual(got, roundTrip(want)) {
			return fmt.Errorf("%s: service result differs from direct run\n got: %+v\nwant: %+v",
				tc.name, got, want)
		}
		fmt.Printf("serve: smoke %-16s matches direct run\n", tc.name)
	}

	// Resubmissions must be cache hits that run zero new solves.
	before, err := scrapeCounters(base)
	if err != nil {
		return err
	}
	for _, cfg := range []jobs.Config{staCfg, pushCfg} {
		st, err := submit(base, cfg)
		if err != nil {
			return fmt.Errorf("resubmit: %w", err)
		}
		if !st.CacheHit || st.State != jobs.StateDone {
			return fmt.Errorf("resubmission not served from cache: %+v", st)
		}
	}
	after, err := scrapeCounters(base)
	if err != nil {
		return err
	}
	if hits := after["noisewave_jobs_cache_hits"] - before["noisewave_jobs_cache_hits"]; hits != 2 {
		return fmt.Errorf("jobs.cache_hits moved by %d, want 2", hits)
	}
	for name, v := range after {
		if strings.HasPrefix(name, "noisewave_spice_") && v != before[name] {
			return fmt.Errorf("cache hit ran solves: %s moved %d -> %d", name, before[name], v)
		}
	}
	fmt.Println("serve: smoke cache hits served with zero new solves")

	// A draining manager must shed load: submissions get 503 with a
	// Retry-After so clients back off and retry after the restart.
	mgr.Drain(time.Second)
	body, err := json.Marshal(map[string]any{"tenant": "smoke", "config": staCfg})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("submit to draining manager: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		return fmt.Errorf("503 response missing Retry-After header")
	}
	fmt.Println("serve: smoke draining manager answers 503 + Retry-After")
	return nil
}

// smokeLiberty builds the synthetic two-cell library the smoke netlist
// instantiates, serialized to Liberty text like a real client would send.
func smokeLiberty() (string, error) {
	flat := func(d float64) *liberty.Table2D {
		return &liberty.Table2D{
			Index1: []float64{10e-12, 500e-12},
			Index2: []float64{1e-15, 100e-15},
			Values: [][]float64{{d, d}, {d, d}},
		}
	}
	lib := liberty.NewLibrary("smokelib", 1.2)
	lib.AddCell(&liberty.Cell{
		Name: "INV",
		Pins: []liberty.Pin{
			{Name: "A", Direction: "input", Cap: 2e-15},
			{Name: "Y", Direction: "output"},
		},
		Arcs: []liberty.Arc{{
			From: "A", To: "Y", Sense: liberty.NegativeUnate,
			CellRise: flat(10e-12), CellFall: flat(12e-12),
			RiseTransition: flat(30e-12), FallTransition: flat(28e-12),
		}},
	})
	lib.AddCell(&liberty.Cell{
		Name: "BUF",
		Pins: []liberty.Pin{
			{Name: "A", Direction: "input", Cap: 3e-15},
			{Name: "Y", Direction: "output"},
		},
		Arcs: []liberty.Arc{{
			From: "A", To: "Y", Sense: liberty.PositiveUnate,
			CellRise: flat(20e-12), CellFall: flat(20e-12),
			RiseTransition: flat(30e-12), FallTransition: flat(30e-12),
		}},
	})
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// submit POSTs one config and decodes the job status.
func submit(base string, cfg jobs.Config) (jobs.Status, error) {
	body, err := json.Marshal(map[string]any{"tenant": "smoke", "config": cfg})
	if err != nil {
		return jobs.Status{}, err
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobs.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return jobs.Status{}, fmt.Errorf("submit status %d", resp.StatusCode)
	}
	var st jobs.Status
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// submitAndWait submits and polls the result URL until the job settles.
func submitAndWait(base string, cfg jobs.Config) (*jobs.Result, error) {
	st, err := submit(base, cfg)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		resp, err := http.Get(base + "/jobs/" + st.ID + "/result")
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			defer resp.Body.Close()
			var res jobs.Result
			return &res, json.NewDecoder(resp.Body).Decode(&res)
		case http.StatusAccepted:
			resp.Body.Close()
		default:
			var eb struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&eb)
			resp.Body.Close()
			return nil, fmt.Errorf("result status %d: %s", resp.StatusCode, eb.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s did not finish", st.ID)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// roundTrip pushes a result through JSON, mirroring what the HTTP client
// sees, so DeepEqual compares like with like (nil-vs-empty slices etc.).
func roundTrip(r *jobs.Result) *jobs.Result {
	b, err := json.Marshal(r)
	if err != nil {
		panic(err)
	}
	var out jobs.Result
	if err := json.Unmarshal(b, &out); err != nil {
		panic(err)
	}
	return &out
}

// scrapeCounters reads the integer-valued samples off /metrics.
func scrapeCounters(base string) (map[string]int64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseFloat(val, 64); err == nil {
			out[name] = int64(v)
		}
	}
	return out, sc.Err()
}
