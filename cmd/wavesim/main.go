// Command wavesim transient-simulates the paper's Figure 1 crosstalk
// testbench and dumps the victim receiver input/output waveforms as CSV —
// useful for inspecting what the noise-injection cases actually look like.
//
// Usage:
//
//	wavesim -config I -offset 0.05ns [-noiseless] [-out waves.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"noisewave/internal/device"
	"noisewave/internal/netlist"
	"noisewave/internal/report"
	"noisewave/internal/wave"
	"noisewave/internal/xtalk"
)

func main() {
	var (
		config    = flag.String("config", "I", "I or II")
		offsetStr = flag.String("offset", "0.05ns", "aggressor offset relative to the victim edge")
		noiseless = flag.Bool("noiseless", false, "keep all aggressors quiet")
		out       = flag.String("out", "", "CSV output path (default stdout)")
	)
	flag.Parse()

	tech := device.Default130()
	var cfg xtalk.Config
	switch strings.ToUpper(*config) {
	case "I":
		cfg = xtalk.ConfigurationI(tech)
	case "II":
		cfg = xtalk.ConfigurationII(tech)
	default:
		fmt.Fprintf(os.Stderr, "wavesim: unknown config %q\n", *config)
		os.Exit(1)
	}
	offset, err := netlist.ParseQuantity(*offsetStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wavesim:", err)
		os.Exit(1)
	}

	const victimStart = 0.3e-9
	var in, outW *wave.Waveform
	if *noiseless {
		in, outW, err = cfg.RunNoiseless(victimStart)
	} else {
		starts := make([]float64, cfg.Aggressors)
		for k := range starts {
			starts[k] = victimStart + offset + float64(k)*40e-12
		}
		in, outW, err = cfg.Run(victimStart, starts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wavesim:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wavesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	err = report.WriteWaveCSV(w, []string{xtalk.NodeVictimFar, xtalk.NodeGateOut},
		func(name string, t float64) float64 {
			if name == xtalk.NodeVictimFar {
				return in.At(t)
			}
			return outW.At(t)
		}, in.T)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wavesim:", err)
		os.Exit(1)
	}
	half := 0.5 * tech.Vdd
	tIn, err1 := in.LastCrossing(half)
	tOut, err2 := outW.LastCrossing(half)
	if err1 == nil && err2 == nil {
		fmt.Fprintf(os.Stderr, "wavesim: config %s gate delay = %s ps (arrival in=%s out=%s ns)\n",
			cfg.Name, report.Ps(tOut-tIn), report.Ns(tIn), report.Ns(tOut))
	}
}
