// Package interconnect builds distributed RC interconnect models — the
// victim/aggressor lines of the paper's Figure 1 testbench — and provides
// Elmore/moment analysis used for sanity checks and closed-form baselines.
package interconnect

import (
	"fmt"

	"noisewave/internal/circuit"
)

// Line is a uniform distributed RC wire modeled as a cascade of π-segments:
// each segment is a series resistance RSeg with CSeg/2 shunt capacitance at
// both ends (so interior junctions accumulate CSeg).
//
// The paper's Figure 1 annotates R = 8.5 Ω and C = 4.8 fF per segment. At
// 0.13 µm metal parameters (≈0.17 Ω/µm, ≈0.1 fF/µm) this corresponds to a
// ≈50 µm physical segment; the figure's three drawn segments are schematic
// shorthand, so a 1000 µm line is ≈20 such segments (170 Ω, 96 fF total) —
// consistent with industrial 0.13 µm wire loads and with the error
// magnitudes of Table 1.
type Line struct {
	Segments int
	RSeg     float64 // series resistance per segment (Ω)
	CSeg     float64 // total shunt capacitance per segment (F)
}

// SegmentLengthUm is the physical length represented by one R=8.5 Ω /
// C=4.8 fF π-segment.
const SegmentLengthUm = 50.0

// PaperLine returns the Figure 1 line for a given physical length:
// length/50 µm segments of R = 8.5 Ω, C = 4.8 fF each (minimum 3, the
// number of segments the figure draws).
func PaperLine(lengthUm float64) Line {
	n := int(lengthUm/SegmentLengthUm + 0.5)
	if n < 3 {
		n = 3
	}
	return Line{Segments: n, RSeg: 8.5, CSeg: 4.8e-15}
}

// TotalR returns the end-to-end resistance.
func (l Line) TotalR() float64 { return float64(l.Segments) * l.RSeg }

// TotalC returns the total shunt capacitance.
func (l Line) TotalC() float64 { return float64(l.Segments) * l.CSeg }

// Build instantiates the line into ckt starting at node from. Interior and
// far-end nodes are named "<prefix>.<i>" (i = 1..Segments); the far-end
// node ID is returned. Junction node IDs (including from and far) are
// returned for coupling-capacitor placement.
func (l Line) Build(ckt *circuit.Circuit, prefix string, from circuit.NodeID) (far circuit.NodeID, junctions []circuit.NodeID) {
	if l.Segments < 1 {
		panic("interconnect: line needs at least one segment")
	}
	junctions = make([]circuit.NodeID, 0, l.Segments+1)
	junctions = append(junctions, from)
	prev := from
	for i := 1; i <= l.Segments; i++ {
		n := ckt.Node(fmt.Sprintf("%s.%d", prefix, i))
		ckt.AddResistor(prev, n, l.RSeg)
		ckt.AddCapacitor(prev, circuit.Ground, l.CSeg/2)
		ckt.AddCapacitor(n, circuit.Ground, l.CSeg/2)
		junctions = append(junctions, n)
		prev = n
	}
	return prev, junctions
}

// BuildBetween instantiates the line between two existing nodes, creating
// only the interior junction nodes ("<prefix>.<i>", i = 1..Segments−1). It
// returns all junction node IDs from the near end to the far end inclusive.
func (l Line) BuildBetween(ckt *circuit.Circuit, prefix string, from, to circuit.NodeID) []circuit.NodeID {
	if l.Segments < 1 {
		panic("interconnect: line needs at least one segment")
	}
	junctions := make([]circuit.NodeID, 0, l.Segments+1)
	junctions = append(junctions, from)
	prev := from
	for i := 1; i <= l.Segments; i++ {
		var n circuit.NodeID
		if i == l.Segments {
			n = to
		} else {
			n = ckt.Node(fmt.Sprintf("%s.%d", prefix, i))
		}
		ckt.AddResistor(prev, n, l.RSeg)
		ckt.AddCapacitor(prev, circuit.Ground, l.CSeg/2)
		ckt.AddCapacitor(n, circuit.Ground, l.CSeg/2)
		junctions = append(junctions, n)
		prev = n
	}
	return junctions
}

// CouplePair places coupling capacitors between corresponding junctions of
// two already-built lines. cmTotal is divided equally over the interior and
// far-end junctions (the figure shows one Cm per segment boundary); the
// driver-end junction is excluded since it is held by the driver.
func CouplePair(ckt *circuit.Circuit, a, b []circuit.NodeID, cmTotal float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("interconnect: junction count mismatch %d vs %d", len(a), len(b))
	}
	n := len(a) - 1 // skip index 0 (driver end)
	if n < 1 {
		return fmt.Errorf("interconnect: need at least one coupled junction")
	}
	cm := cmTotal / float64(n)
	for i := 1; i < len(a); i++ {
		ckt.AddCapacitor(a[i], b[i], cm)
	}
	return nil
}
