package interconnect

import (
	"math"
	"testing"

	"noisewave/internal/circuit"
	"noisewave/internal/spice"
)

func TestPaperLineSegments(t *testing.T) {
	l := PaperLine(1000)
	if l.Segments != 20 {
		t.Errorf("1000um: %d segments, want 20", l.Segments)
	}
	if l.RSeg != 8.5 || l.CSeg != 4.8e-15 {
		t.Errorf("per-segment values %g %g", l.RSeg, l.CSeg)
	}
	if got := l.TotalR(); math.Abs(got-170) > 1e-9 {
		t.Errorf("TotalR = %g", got)
	}
	if got := l.TotalC(); math.Abs(got-96e-15) > 1e-20 {
		t.Errorf("TotalC = %g", got)
	}
	// Short lines keep the figure's minimum of 3 segments.
	if PaperLine(50).Segments != 3 {
		t.Errorf("50um: %d segments", PaperLine(50).Segments)
	}
	if PaperLine(500).Segments != 10 {
		t.Errorf("500um: %d segments", PaperLine(500).Segments)
	}
}

func TestElmoreUniformLadder(t *testing.T) {
	// Uniform N-segment ladder: Elmore = Σ_i (i·R)·C = R·C·N(N+1)/2.
	l := Line{Segments: 4, RSeg: 100, CSeg: 1e-12}
	lad := l.Ladder(0)
	// With π-segments the far node holds C/2; recompute expectation
	// directly from the ladder arrays instead.
	want := 0.0
	racc := 0.0
	for i := range lad.R {
		racc += lad.R[i]
		want += racc * lad.C[i]
	}
	if got := lad.ElmoreDelay(); math.Abs(got-want) > 1e-18 {
		t.Errorf("ElmoreDelay = %g, want %g", got, want)
	}
	// Load capacitance adds load·TotalR.
	ladL := l.Ladder(2e-12)
	extra := ladL.ElmoreDelay() - lad.ElmoreDelay()
	if math.Abs(extra-2e-12*400) > 1e-18 {
		t.Errorf("load contribution = %g", extra)
	}
}

func TestElmoreDelayAtMonotone(t *testing.T) {
	lad := Line{Segments: 6, RSeg: 50, CSeg: 2e-13}.Ladder(1e-13)
	prev := -1.0
	for k := 0; k < 6; k++ {
		d := lad.DelayAt(k)
		if d <= prev {
			t.Fatalf("DelayAt not increasing at %d: %g <= %g", k, d, prev)
		}
		prev = d
	}
	if math.Abs(lad.DelayAt(5)-lad.ElmoreDelay()) > 1e-18 {
		t.Error("DelayAt(last) != ElmoreDelay")
	}
}

func TestMomentsFirstIsElmore(t *testing.T) {
	lad := Line{Segments: 5, RSeg: 120, CSeg: 3e-13}.Ladder(5e-13)
	m := lad.Moments(2)
	if len(m) != 2 {
		t.Fatalf("moments: %v", m)
	}
	if math.Abs(-m[0]-lad.ElmoreDelay()) > 1e-15*lad.ElmoreDelay() {
		t.Errorf("m1 = %g, want -Elmore = %g", m[0], -lad.ElmoreDelay())
	}
	if m[1] <= 0 {
		t.Errorf("m2 = %g, want > 0 for an RC ladder", m[1])
	}
}

// TestElmoreVsTransient cross-validates the closed form against the
// simulator: the 50% step-response delay of an RC ladder is ≈ 0.7·Elmore
// (ln 2 scaling for a dominant-pole system).
func TestElmoreVsTransient(t *testing.T) {
	line := Line{Segments: 10, RSeg: 200, CSeg: 50e-15}
	lad := line.Ladder(0)
	elmore := lad.ElmoreDelay()

	ckt := circuit.New()
	in := ckt.Node("in")
	far := ckt.Node("far")
	ckt.AddVSource("v", in, circuit.Ground, circuit.PWL{T: []float64{0, 1e-15}, V: []float64{0, 1}})
	line.BuildBetween(ckt, "l", in, far)
	sim := spice.New(ckt, spice.Options{Stop: 10 * elmore, Step: elmore / 200})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform("far")
	if err != nil {
		t.Fatal(err)
	}
	t50, err := w.FirstCrossing(0.5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := t50 / elmore
	if ratio < 0.4 || ratio > 1.0 {
		t.Errorf("t50/Elmore = %.3f, want ≈ 0.7 (dominant pole)", ratio)
	}
}

func TestBuildJunctions(t *testing.T) {
	ckt := circuit.New()
	from := ckt.Node("a")
	line := Line{Segments: 3, RSeg: 10, CSeg: 1e-15}
	far, junc := line.Build(ckt, "w", from)
	if len(junc) != 4 {
		t.Fatalf("junctions: %d", len(junc))
	}
	if junc[0] != from || junc[3] != far {
		t.Error("junction endpoints wrong")
	}
	// BuildBetween must terminate exactly on the given node.
	ckt2 := circuit.New()
	a, b := ckt2.Node("a"), ckt2.Node("b")
	j2 := line.BuildBetween(ckt2, "w", a, b)
	if j2[len(j2)-1] != b {
		t.Error("BuildBetween far end mismatch")
	}
}

func TestCouplePair(t *testing.T) {
	ckt := circuit.New()
	a, b := ckt.Node("a"), ckt.Node("b")
	line := Line{Segments: 2, RSeg: 10, CSeg: 1e-15}
	_, ja := line.Build(ckt, "la", a)
	_, jb := line.Build(ckt, "lb", b)
	before := len(ckt.Elements())
	if err := CouplePair(ckt, ja, jb, 100e-15); err != nil {
		t.Fatal(err)
	}
	added := len(ckt.Elements()) - before
	if added != 2 { // one per non-driver junction
		t.Errorf("added %d coupling caps, want 2", added)
	}
	if err := CouplePair(ckt, ja, jb[:1], 1e-15); err == nil {
		t.Error("mismatched junctions accepted")
	}
}
