package interconnect

// RCLadder is a driver-to-load RC ladder: resistance R[i] connects node i-1
// to node i (node -1 is the driver), and C[i] loads node i to ground.
type RCLadder struct {
	R []float64
	C []float64
}

// Ladder converts a Line (plus an optional far-end load capacitance) into
// an RCLadder for closed-form analysis. The π-segment end half-caps are
// folded into node capacitances.
func (l Line) Ladder(loadC float64) RCLadder {
	n := l.Segments
	r := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		r[i] = l.RSeg
		c[i] = l.CSeg
	}
	// The far-end node only has the final half-cap plus the load; interior
	// nodes get a half from each neighbouring segment.
	c[n-1] = l.CSeg/2 + loadC
	return RCLadder{R: r, C: c}
}

// ElmoreDelay returns the Elmore delay (first moment of the impulse
// response) from the driver to the far end:
//
//	T_D = Σ_i R_path(i) · C_i, with R_path the resistance shared between
//	the source→i and source→out paths (for a ladder: ΣR up to node i).
//
// Elmore is the classical reference the paper's E4 technique is inspired
// by ([2] W.C. Elmore, 1948).
func (l RCLadder) ElmoreDelay() float64 {
	n := len(l.C)
	d := 0.0
	rAcc := 0.0
	for i := 0; i < n; i++ {
		rAcc += l.R[i]
		d += rAcc * l.C[i]
	}
	return d
}

// DelayAt returns the Elmore delay from the driver to node k (0-based).
// For a ladder: T_k = Σ_i C_i · R(min(i,k)) where R(j) = Σ_{m<=j} R_m.
func (l RCLadder) DelayAt(k int) float64 {
	d := 0.0
	rPrefix := make([]float64, len(l.R))
	acc := 0.0
	for i, r := range l.R {
		acc += r
		rPrefix[i] = acc
	}
	for i, c := range l.C {
		j := i
		if j > k {
			j = k
		}
		d += c * rPrefix[j]
	}
	return d
}

// Moments returns the first m moments of the far-end transfer function
// (m1 = −Elmore). Computed by the standard recursive tree-moment algorithm
// specialized to a ladder: moment k of node voltages given moment k−1.
func (l RCLadder) Moments(m int) []float64 {
	n := len(l.C)
	if n == 0 || m <= 0 {
		return nil
	}
	// v0 = 1 at every node (DC gain of an RC ladder).
	prev := make([]float64, n)
	for i := range prev {
		prev[i] = 1
	}
	out := make([]float64, m)
	cur := make([]float64, n)
	rPrefix := make([]float64, n)
	acc := 0.0
	for i, r := range l.R {
		acc += r
		rPrefix[i] = acc
	}
	for k := 0; k < m; k++ {
		// moment_{k+1}(node j) = −Σ_i C_i · v_k(i) · R(min(i,j)).
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				rj := rPrefix[j]
				if rPrefix[i] < rj {
					rj = rPrefix[i]
				}
				s += l.C[i] * prev[i] * rj
			}
			cur[j] = -s
		}
		out[k] = cur[n-1]
		copy(prev, cur)
	}
	return out
}
