package liberty

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a Liberty-flavoured library as produced by Write. Unknown
// attributes and groups are skipped, so libraries with extra content still
// load as long as the core structure (cells, pins, timing tables) follows
// Liberty syntax.
func Parse(r io.Reader) (*Library, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := &parser{src: string(data)}
	lib, err := p.parseLibrary()
	if err != nil {
		return nil, fmt.Errorf("liberty: parse: %w (at offset %d)", err, p.pos)
	}
	return lib, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\\':
			p.pos++
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '*':
			end := strings.Index(p.src[p.pos+2:], "*/")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += end + 4
		case c == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '-':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("expected %q, found %q", string(c), string(p.peek()))
	}
	p.pos++
	return nil
}

func (p *parser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.' || c == '-' || c == '+' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

// value reads everything until ';' (an unquoted attribute value).
func (p *parser) value() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ';' {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("unterminated attribute value")
	}
	v := strings.TrimSpace(p.src[start:p.pos])
	p.pos++ // consume ';'
	return strings.Trim(v, `"`), nil
}

// parenArgs reads a parenthesized argument list as raw text.
func (p *parser) parenArgs() (string, error) {
	if err := p.expect('('); err != nil {
		return "", err
	}
	depth := 1
	start := p.pos
	for p.pos < len(p.src) && depth > 0 {
		switch p.src[p.pos] {
		case '(':
			depth++
		case ')':
			depth--
		}
		p.pos++
	}
	if depth != 0 {
		return "", fmt.Errorf("unbalanced parentheses")
	}
	return p.src[start : p.pos-1], nil
}

// skipGroup consumes a balanced { ... } block.
func (p *parser) skipGroup() error {
	if err := p.expect('{'); err != nil {
		return err
	}
	depth := 1
	for p.pos < len(p.src) && depth > 0 {
		switch p.src[p.pos] {
		case '{':
			depth++
		case '}':
			depth--
		}
		p.pos++
	}
	if depth != 0 {
		return fmt.Errorf("unbalanced braces")
	}
	return nil
}

func (p *parser) parseLibrary() (*Library, error) {
	p.skipSpace()
	if kw := p.ident(); kw != "library" {
		return nil, fmt.Errorf("expected 'library', got %q", kw)
	}
	name, err := p.parenArgs()
	if err != nil {
		return nil, err
	}
	lib := NewLibrary(strings.TrimSpace(name), 0)
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			return lib, nil
		}
		kw := p.ident()
		if kw == "" {
			return nil, fmt.Errorf("unexpected character %q in library body", string(p.peek()))
		}
		p.skipSpace()
		switch {
		case kw == "cell" && p.peek() == '(':
			cname, err := p.parenArgs()
			if err != nil {
				return nil, err
			}
			cell, err := p.parseCell(strings.TrimSpace(cname))
			if err != nil {
				return nil, err
			}
			lib.AddCell(cell)
		case p.peek() == ':':
			p.pos++
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			if kw == "nom_voltage" {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					lib.Vdd = f
				}
			}
		case p.peek() == '(':
			if _, err := p.parenArgs(); err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.peek() == '{' {
				if err := p.skipGroup(); err != nil {
					return nil, err
				}
			} else if p.peek() == ';' {
				p.pos++
			}
		default:
			return nil, fmt.Errorf("unexpected token after %q", kw)
		}
	}
}

func (p *parser) parseCell(name string) (*Cell, error) {
	cell := &Cell{Name: name}
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			return cell, nil
		}
		kw := p.ident()
		p.skipSpace()
		switch {
		case kw == "pin" && p.peek() == '(':
			pname, err := p.parenArgs()
			if err != nil {
				return nil, err
			}
			if err := p.parsePin(cell, strings.TrimSpace(pname)); err != nil {
				return nil, err
			}
		case p.peek() == ':':
			p.pos++
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			if kw == "area" {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					cell.Area = f
				}
			}
		case p.peek() == '(':
			if _, err := p.parenArgs(); err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.peek() == '{' {
				if err := p.skipGroup(); err != nil {
					return nil, err
				}
			} else if p.peek() == ';' {
				p.pos++
			}
		default:
			return nil, fmt.Errorf("unexpected token %q in cell %s", kw, name)
		}
	}
}

func (p *parser) parsePin(cell *Cell, name string) error {
	pin := Pin{Name: name}
	if err := p.expect('{'); err != nil {
		return err
	}
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			cell.Pins = append(cell.Pins, pin)
			return nil
		}
		kw := p.ident()
		p.skipSpace()
		switch {
		case kw == "timing" && p.peek() == '(':
			if _, err := p.parenArgs(); err != nil {
				return err
			}
			arc, err := p.parseTiming(name)
			if err != nil {
				return err
			}
			cell.Arcs = append(cell.Arcs, *arc)
		case kw == "output_waveforms" && p.peek() == '(':
			arg, err := p.parenArgs()
			if err != nil {
				return err
			}
			if err := p.parseWaveTable(cell, arg); err != nil {
				return err
			}
		case p.peek() == ':':
			p.pos++
			v, err := p.value()
			if err != nil {
				return err
			}
			switch kw {
			case "direction":
				pin.Direction = v
			case "capacitance":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return fmt.Errorf("pin %s capacitance: %w", name, err)
				}
				pin.Cap = f * capUnit
			}
		default:
			return fmt.Errorf("unexpected token %q in pin %s", kw, name)
		}
	}
}

func (p *parser) parseTiming(toPin string) (*Arc, error) {
	arc := &Arc{To: toPin}
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			return arc, nil
		}
		kw := p.ident()
		p.skipSpace()
		switch {
		case p.peek() == ':':
			p.pos++
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			switch kw {
			case "related_pin":
				arc.From = v
			case "timing_sense":
				if v == "positive_unate" {
					arc.Sense = PositiveUnate
				} else {
					arc.Sense = NegativeUnate
				}
			}
		case p.peek() == '(':
			if _, err := p.parenArgs(); err != nil { // template name, ignored
				return nil, err
			}
			tbl, err := p.parseTable()
			if err != nil {
				return nil, fmt.Errorf("table %s: %w", kw, err)
			}
			switch kw {
			case "cell_rise":
				arc.CellRise = tbl
			case "cell_fall":
				arc.CellFall = tbl
			case "rise_transition":
				arc.RiseTransition = tbl
			case "fall_transition":
				arc.FallTransition = tbl
			}
		default:
			return nil, fmt.Errorf("unexpected token %q in timing group", kw)
		}
	}
}

func (p *parser) parseTable() (*Table2D, error) {
	t := &Table2D{}
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			if err := t.Validate(); err != nil {
				return nil, err
			}
			return t, nil
		}
		kw := p.ident()
		p.skipSpace()
		if p.peek() != '(' {
			return nil, fmt.Errorf("expected '(' after %q", kw)
		}
		raw, err := p.parenArgs()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() == ';' {
			p.pos++
		}
		switch kw {
		case "index_1":
			t.Index1, err = parseNumberList(raw, timeUnit)
		case "index_2":
			t.Index2, err = parseNumberList(raw, capUnit)
		case "values":
			t.Values, err = parseValueRows(raw, timeUnit)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", kw, err)
		}
	}
}

func parseNumberList(raw string, unit float64) ([]float64, error) {
	raw = strings.NewReplacer("\"", " ", "\\", " ", "\n", " ").Replace(raw)
	fields := strings.FieldsFunc(raw, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	out := make([]float64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out = append(out, v*unit)
	}
	return out, nil
}

func parseValueRows(raw string, unit float64) ([][]float64, error) {
	var rows [][]float64
	for {
		start := strings.IndexByte(raw, '"')
		if start < 0 {
			break
		}
		end := strings.IndexByte(raw[start+1:], '"')
		if end < 0 {
			return nil, fmt.Errorf("unbalanced quotes in values")
		}
		row, err := parseNumberList(raw[start+1:start+1+end], unit)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		raw = raw[start+end+2:]
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("empty values group")
	}
	return rows, nil
}
