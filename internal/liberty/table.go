// Package liberty implements the subset of the Liberty (.lib) cell-library
// format that conventional STA delay calculation needs: two-dimensional
// NLDM lookup tables over (input transition, output load) for cell delay
// and output transition, grouped into timing arcs and cells, with a writer
// and parser for a Liberty-flavoured text representation.
//
// The paper stresses that SGDP "is compatible with the current level of
// gate characterization in conventional ASIC cell libraries"; this package
// is that conventional level, and internal/sta consumes it.
package liberty

import (
	"errors"
	"fmt"
	"sort"
)

// Table2D is an NLDM lookup table: Values[i][j] corresponds to
// (Index1[i], Index2[j]). Index1 is input transition time (s), Index2 is
// output load (F). Lookup is bilinear inside the grid and linearly
// extrapolated from the boundary cells outside it (the standard Liberty
// semantics).
type Table2D struct {
	Index1 []float64   // input transition times, strictly increasing
	Index2 []float64   // output loads, strictly increasing
	Values [][]float64 // [len(Index1)][len(Index2)]
}

// ErrBadTable is returned for malformed table shapes.
var ErrBadTable = errors.New("liberty: malformed table")

// Validate checks shape and monotonicity.
func (t *Table2D) Validate() error {
	if len(t.Index1) == 0 || len(t.Index2) == 0 {
		return fmt.Errorf("%w: empty index", ErrBadTable)
	}
	if len(t.Values) != len(t.Index1) {
		return fmt.Errorf("%w: %d rows for %d index1 entries", ErrBadTable, len(t.Values), len(t.Index1))
	}
	for i, row := range t.Values {
		if len(row) != len(t.Index2) {
			return fmt.Errorf("%w: row %d has %d cols, want %d", ErrBadTable, i, len(row), len(t.Index2))
		}
	}
	for i := 0; i+1 < len(t.Index1); i++ {
		if t.Index1[i+1] <= t.Index1[i] {
			return fmt.Errorf("%w: index_1 not increasing at %d", ErrBadTable, i)
		}
	}
	for j := 0; j+1 < len(t.Index2); j++ {
		if t.Index2[j+1] <= t.Index2[j] {
			return fmt.Errorf("%w: index_2 not increasing at %d", ErrBadTable, j)
		}
	}
	return nil
}

// segment returns the interpolation cell index and parameter for x in axis,
// extrapolating from the boundary cells.
func segment(axis []float64, x float64) (i int, u float64) {
	n := len(axis)
	if n == 1 {
		return 0, 0
	}
	i = sort.SearchFloat64s(axis, x)
	switch {
	case i <= 0:
		i = 0
	case i >= n:
		i = n - 2
	default:
		i--
	}
	if i > n-2 {
		i = n - 2
	}
	u = (x - axis[i]) / (axis[i+1] - axis[i])
	return i, u
}

// At performs bilinear interpolation (with boundary-cell extrapolation) at
// input transition trans and load cap load.
func (t *Table2D) At(trans, load float64) float64 {
	i, u := segment(t.Index1, trans)
	j, v := segment(t.Index2, load)
	if len(t.Index1) == 1 && len(t.Index2) == 1 {
		return t.Values[0][0]
	}
	if len(t.Index1) == 1 {
		return t.Values[0][j]*(1-v) + t.Values[0][j+1]*v
	}
	if len(t.Index2) == 1 {
		return t.Values[i][0]*(1-u) + t.Values[i+1][0]*u
	}
	a := t.Values[i][j]*(1-v) + t.Values[i][j+1]*v
	b := t.Values[i+1][j]*(1-v) + t.Values[i+1][j+1]*v
	return a*(1-u) + b*u
}

// Clone deep-copies the table.
func (t *Table2D) Clone() *Table2D {
	out := &Table2D{
		Index1: append([]float64(nil), t.Index1...),
		Index2: append([]float64(nil), t.Index2...),
		Values: make([][]float64, len(t.Values)),
	}
	for i, row := range t.Values {
		out.Values[i] = append([]float64(nil), row...)
	}
	return out
}
