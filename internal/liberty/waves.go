package liberty

import (
	"fmt"
	"strconv"
	"strings"

	"noisewave/internal/wave"
)

// The output_waveforms group is this library's CCS-style extension: it
// persists the characterized noiseless output waveform at every NLDM grid
// point so the noise-aware STA mode can reconstruct gate sensitivities from
// the .lib file alone (no re-simulation). Syntax mirrors Liberty tables:
//
//	output_waveforms (rise) {
//	  index_1 ("0.02, 0.05");        /* input transitions, ns */
//	  index_2 ("0.001, 0.002");      /* loads, pF */
//	  wave_0_0 { time ("..."); voltage ("..."); }  /* ns, V */
//	  wave_0_1 { ... }
//	}
//
// Waveform time bases are relative to the input's 50% crossing.

// writeWaveTables emits all stored waveform tables of a cell.
func writeWaveTables(b *strings.Builder, c *Cell) {
	if c.Waves == nil {
		return
	}
	for _, e := range []wave.Edge{wave.Rising, wave.Falling} {
		wt, ok := c.Waves[e]
		if !ok {
			continue
		}
		fmt.Fprintf(b, "      output_waveforms (%s) {\n", e)
		fmt.Fprintf(b, "        index_1 (\"%s\");\n", joinScaled(wt.Index1, timeUnit))
		fmt.Fprintf(b, "        index_2 (\"%s\");\n", joinScaled(wt.Index2, capUnit))
		for i := range wt.Index1 {
			for j := range wt.Index2 {
				w := wt.Waves[i][j]
				if w == nil {
					continue
				}
				fmt.Fprintf(b, "        wave_%d_%d {\n", i, j)
				fmt.Fprintf(b, "          time (\"%s\");\n", joinScaled(w.T, timeUnit))
				fmt.Fprintf(b, "          voltage (\"%s\");\n", joinScaled(w.V, 1))
				b.WriteString("        }\n")
			}
		}
		b.WriteString("      }\n")
	}
}

// parseWaveTable parses one output_waveforms group (the "(rise)"/"(fall)"
// argument has already been consumed by the caller).
func (p *parser) parseWaveTable(cell *Cell, arg string) error {
	var edge wave.Edge
	switch strings.TrimSpace(arg) {
	case "rise":
		edge = wave.Rising
	case "fall":
		edge = wave.Falling
	default:
		return fmt.Errorf("output_waveforms edge %q (want rise|fall)", arg)
	}
	wt := &WaveTable{}
	type pending struct {
		i, j int
		w    *wave.Waveform
	}
	var waves []pending
	if err := p.expect('{'); err != nil {
		return err
	}
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			if len(wt.Index1) == 0 || len(wt.Index2) == 0 {
				return fmt.Errorf("output_waveforms missing indices")
			}
			wt.Waves = make([][]*wave.Waveform, len(wt.Index1))
			for i := range wt.Waves {
				wt.Waves[i] = make([]*wave.Waveform, len(wt.Index2))
			}
			for _, pw := range waves {
				if pw.i >= len(wt.Index1) || pw.j >= len(wt.Index2) {
					return fmt.Errorf("wave_%d_%d outside the index grid", pw.i, pw.j)
				}
				wt.Waves[pw.i][pw.j] = pw.w
			}
			if cell.Waves == nil {
				cell.Waves = make(map[wave.Edge]*WaveTable, 2)
			}
			cell.Waves[edge] = wt
			return nil
		}
		kw := p.ident()
		p.skipSpace()
		switch {
		case kw == "index_1" && p.peek() == '(':
			raw, err := p.parenArgs()
			if err != nil {
				return err
			}
			p.consumeSemicolon()
			if wt.Index1, err = parseNumberList(raw, timeUnit); err != nil {
				return fmt.Errorf("index_1: %w", err)
			}
		case kw == "index_2" && p.peek() == '(':
			raw, err := p.parenArgs()
			if err != nil {
				return err
			}
			p.consumeSemicolon()
			if wt.Index2, err = parseNumberList(raw, capUnit); err != nil {
				return fmt.Errorf("index_2: %w", err)
			}
		case strings.HasPrefix(kw, "wave_") && p.peek() == '{':
			i, j, err := parseWaveName(kw)
			if err != nil {
				return err
			}
			w, err := p.parseWaveBody()
			if err != nil {
				return fmt.Errorf("%s: %w", kw, err)
			}
			waves = append(waves, pending{i, j, w})
		default:
			return fmt.Errorf("unexpected token %q in output_waveforms", kw)
		}
	}
}

// parseWaveBody parses { time ("..."); voltage ("..."); }.
func (p *parser) parseWaveBody() (*wave.Waveform, error) {
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	var ts, vs []float64
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			if ts == nil || vs == nil {
				return nil, fmt.Errorf("wave needs time and voltage")
			}
			if len(ts) != len(vs) {
				return nil, fmt.Errorf("time/voltage length mismatch %d/%d", len(ts), len(vs))
			}
			return wave.New(ts, vs)
		}
		kw := p.ident()
		p.skipSpace()
		if p.peek() != '(' {
			return nil, fmt.Errorf("expected '(' after %q", kw)
		}
		raw, err := p.parenArgs()
		if err != nil {
			return nil, err
		}
		p.consumeSemicolon()
		switch kw {
		case "time":
			if ts, err = parseNumberList(raw, timeUnit); err != nil {
				return nil, fmt.Errorf("time: %w", err)
			}
		case "voltage":
			if vs, err = parseNumberList(raw, 1); err != nil {
				return nil, fmt.Errorf("voltage: %w", err)
			}
		default:
			return nil, fmt.Errorf("unexpected %q in wave body", kw)
		}
	}
}

// parseWaveName extracts (i, j) from "wave_i_j".
func parseWaveName(kw string) (int, int, error) {
	parts := strings.Split(kw, "_")
	if len(parts) != 3 {
		return 0, 0, fmt.Errorf("malformed wave name %q", kw)
	}
	i, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("malformed wave name %q", kw)
	}
	j, err := strconv.Atoi(parts[2])
	if err != nil {
		return 0, 0, fmt.Errorf("malformed wave name %q", kw)
	}
	return i, j, nil
}

// consumeSemicolon eats an optional trailing ';'.
func (p *parser) consumeSemicolon() {
	p.skipSpace()
	if p.peek() == ';' {
		p.pos++
	}
}
