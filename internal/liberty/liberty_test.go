package liberty

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"noisewave/internal/wave"
)

func sampleTable() *Table2D {
	return &Table2D{
		Index1: []float64{10e-12, 100e-12, 500e-12},
		Index2: []float64{1e-15, 10e-15},
		Values: [][]float64{
			{5e-12, 20e-12},
			{9e-12, 28e-12},
			{25e-12, 60e-12},
		},
	}
}

func TestTableValidate(t *testing.T) {
	tbl := sampleTable()
	if err := tbl.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	bad := sampleTable()
	bad.Values = bad.Values[:2]
	if err := bad.Validate(); err == nil {
		t.Error("short values accepted")
	}
	bad2 := sampleTable()
	bad2.Index1[1] = bad2.Index1[0]
	if err := bad2.Validate(); err == nil {
		t.Error("non-increasing index accepted")
	}
}

func TestTableAtExactKnots(t *testing.T) {
	tbl := sampleTable()
	for i, s := range tbl.Index1 {
		for j, l := range tbl.Index2 {
			if got := tbl.At(s, l); math.Abs(got-tbl.Values[i][j]) > 1e-18 {
				t.Errorf("At(%g,%g)=%g want %g", s, l, got, tbl.Values[i][j])
			}
		}
	}
}

func TestTableInterpolationBounds(t *testing.T) {
	tbl := sampleTable()
	// Property: inside the grid, bilinear interpolation stays within the
	// min/max of the four corner values of its cell.
	f := func(a, b float64) bool {
		s := 10e-12 + math.Mod(math.Abs(a), 1)*490e-12
		l := 1e-15 + math.Mod(math.Abs(b), 1)*9e-15
		v := tbl.At(s, l)
		return v >= 4.9e-12 && v <= 60.1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableExtrapolation(t *testing.T) {
	tbl := sampleTable()
	// Below the grid, the boundary cell's gradient continues.
	lo := tbl.At(0, 1e-15)
	if lo >= tbl.Values[0][0] {
		t.Errorf("extrapolation below grid should fall below first knot: %g", lo)
	}
	hi := tbl.At(1e-9, 10e-15)
	if hi <= tbl.Values[2][1] {
		t.Errorf("extrapolation above grid should exceed last knot: %g", hi)
	}
}

func buildLibrary() *Library {
	lib := NewLibrary("testlib", 1.2)
	cell := &Cell{
		Name: "INVX1",
		Area: 1,
		Pins: []Pin{
			{Name: "A", Direction: "input", Cap: 2e-15},
			{Name: "Y", Direction: "output"},
		},
		Arcs: []Arc{{
			From: "A", To: "Y", Sense: NegativeUnate,
			CellRise: sampleTable(), CellFall: sampleTable(),
			RiseTransition: sampleTable(), FallTransition: sampleTable(),
		}},
	}
	lib.AddCell(cell)
	return lib
}

// TestLibertyRoundTrip writes a library and parses it back, checking that
// lookups agree everywhere.
func TestLibertyRoundTrip(t *testing.T) {
	lib := buildLibrary()
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, buf.String())
	}
	if got.Name != "testlib" || math.Abs(got.Vdd-1.2) > 1e-12 {
		t.Errorf("library header: name=%q vdd=%g", got.Name, got.Vdd)
	}
	cell, err := got.Cell("INVX1")
	if err != nil {
		t.Fatal(err)
	}
	pin, ok := cell.Pin("A")
	if !ok || math.Abs(pin.Cap-2e-15) > 1e-20 {
		t.Errorf("pin A cap = %g, want 2fF", pin.Cap)
	}
	arc, ok := cell.ArcTo("A")
	if !ok {
		t.Fatal("missing arc")
	}
	want := buildLibrary().cells["INVX1"].Arcs[0]
	for _, tc := range []struct{ s, l float64 }{
		{10e-12, 1e-15}, {75e-12, 3e-15}, {500e-12, 10e-15}, {1e-9, 20e-15},
	} {
		a := arc.CellRise.At(tc.s, tc.l)
		b := want.CellRise.At(tc.s, tc.l)
		if math.Abs(a-b) > 1e-15*math.Abs(b)+1e-16 {
			t.Errorf("cell_rise(%g,%g): %g != %g", tc.s, tc.l, a, b)
		}
	}
}

// TestParseSkipsUnknown ensures foreign attributes/groups don't break the
// parser.
func TestParseSkipsUnknown(t *testing.T) {
	src := `
library (weird) {
  time_unit : "1ns";
  nom_voltage : 1.0;
  operating_conditions (typical) { process : 1; }
  cell (BUFX2) {
    area : 2;
    cell_footprint : "buf";
    pin (A) { direction : input; capacitance : 0.004; }
    pin (Y) {
      direction : output;
      timing () {
        related_pin : "A";
        timing_sense : positive_unate;
        cell_rise (tmpl) {
          index_1 ("0.1, 0.2");
          index_2 ("0.001, 0.002");
          values ("0.01, 0.02", "0.03, 0.04");
        }
        cell_fall (tmpl) {
          index_1 ("0.1, 0.2");
          index_2 ("0.001, 0.002");
          values ("0.01, 0.02", "0.03, 0.04");
        }
        rise_transition (tmpl) {
          index_1 ("0.1, 0.2");
          index_2 ("0.001, 0.002");
          values ("0.01, 0.02", "0.03, 0.04");
        }
        fall_transition (tmpl) {
          index_1 ("0.1, 0.2");
          index_2 ("0.001, 0.002");
          values ("0.01, 0.02", "0.03, 0.04");
        }
      }
    }
  }
}`
	lib, err := Parse(bytes.NewReader([]byte(src)))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cell, err := lib.Cell("BUFX2")
	if err != nil {
		t.Fatal(err)
	}
	arc, ok := cell.ArcTo("A")
	if !ok {
		t.Fatal("missing arc")
	}
	if arc.Sense != PositiveUnate {
		t.Error("sense not parsed")
	}
	d, tr, edge, err := arc.Delay(wave.Rising, 0.15e-9, 1.5e-15)
	if err != nil {
		t.Fatal(err)
	}
	if edge != wave.Rising {
		t.Error("positive unate should preserve edge")
	}
	if d <= 0 || tr <= 0 {
		t.Errorf("delay %g trans %g", d, tr)
	}
}

// TestArcDelayUnateness checks edge mapping through both senses.
func TestArcDelayUnateness(t *testing.T) {
	arc := Arc{
		From: "A", To: "Y", Sense: NegativeUnate,
		CellRise: sampleTable(), CellFall: sampleTable(),
		RiseTransition: sampleTable(), FallTransition: sampleTable(),
	}
	_, _, edge, err := arc.Delay(wave.Rising, 100e-12, 5e-15)
	if err != nil {
		t.Fatal(err)
	}
	if edge != wave.Falling {
		t.Error("negative unate must flip a rising input to a falling output")
	}
}
