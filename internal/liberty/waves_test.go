package liberty

import (
	"bytes"
	"math"
	"testing"

	"noisewave/internal/wave"
)

func libraryWithWaves() *Library {
	lib := buildLibrary()
	cell := lib.cells["INVX1"]
	mk := func(shift float64) *wave.Waveform {
		return wave.MustNew(
			[]float64{0, 50e-12, 100e-12},
			[]float64{1.2, 0.6 + shift, 0.0},
		)
	}
	cell.Waves = map[wave.Edge]*WaveTable{
		wave.Falling: {
			Index1: []float64{10e-12, 100e-12},
			Index2: []float64{1e-15, 10e-15},
			Waves: [][]*wave.Waveform{
				{mk(0), mk(0.01)},
				{mk(0.02), mk(0.03)},
			},
		},
	}
	return lib
}

// TestWaveTableRoundTrip persists output waveforms through the Liberty text
// form and compares the reloaded shapes sample by sample.
func TestWaveTableRoundTrip(t *testing.T) {
	lib := libraryWithWaves()
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, buf.String())
	}
	cell, err := got.Cell("INVX1")
	if err != nil {
		t.Fatal(err)
	}
	if cell.Waves == nil {
		t.Fatal("waveform tables lost in round trip")
	}
	wt, ok := cell.Waves[wave.Falling]
	if !ok {
		t.Fatal("falling wave table missing")
	}
	if len(wt.Index1) != 2 || len(wt.Index2) != 2 {
		t.Fatalf("grid: %dx%d", len(wt.Index1), len(wt.Index2))
	}
	orig := libraryWithWaves().cells["INVX1"].Waves[wave.Falling]
	for i := range wt.Index1 {
		for j := range wt.Index2 {
			w, o := wt.Waves[i][j], orig.Waves[i][j]
			if w == nil {
				t.Fatalf("wave_%d_%d missing", i, j)
			}
			if w.Len() != o.Len() {
				t.Fatalf("wave_%d_%d length %d != %d", i, j, w.Len(), o.Len())
			}
			for k := range w.T {
				if math.Abs(w.T[k]-o.T[k]) > 1e-17 || math.Abs(w.V[k]-o.V[k]) > 1e-7 {
					t.Errorf("wave_%d_%d sample %d: (%g,%g) != (%g,%g)",
						i, j, k, w.T[k], w.V[k], o.T[k], o.V[k])
				}
			}
		}
	}
	// Nearest lookup works on the reloaded table.
	if wt.Nearest(100e-12, 10e-15) == nil {
		t.Error("Nearest failed on reloaded table")
	}
}

func TestWaveTableParseErrors(t *testing.T) {
	bad := `
library (t) {
  cell (X) {
    pin (Y) {
      direction : output;
      output_waveforms (sideways) {
        index_1 ("0.01");
        index_2 ("0.001");
      }
    }
  }
}`
	if _, err := Parse(bytes.NewReader([]byte(bad))); err == nil {
		t.Error("bad edge name accepted")
	}
	mismatch := `
library (t) {
  cell (X) {
    pin (Y) {
      direction : output;
      output_waveforms (rise) {
        index_1 ("0.01");
        index_2 ("0.001");
        wave_0_0 { time ("0, 1"); voltage ("0"); }
      }
    }
  }
}`
	if _, err := Parse(bytes.NewReader([]byte(mismatch))); err == nil {
		t.Error("time/voltage mismatch accepted")
	}
	outside := `
library (t) {
  cell (X) {
    pin (Y) {
      direction : output;
      output_waveforms (rise) {
        index_1 ("0.01");
        index_2 ("0.001");
        wave_3_0 { time ("0, 1"); voltage ("0, 1"); }
      }
    }
  }
}`
	if _, err := Parse(bytes.NewReader([]byte(outside))); err == nil {
		t.Error("out-of-grid wave accepted")
	}
}
