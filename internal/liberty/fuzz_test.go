package liberty

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse hardens the Liberty parser against hostile input: it must
// return an error or a library, never panic or hang, and anything it
// accepts must survive a write→parse round trip.
func FuzzParse(f *testing.F) {
	lib := buildLibrary()
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`library (x) { }`)
	f.Add(`library (x) { cell (c) { pin (A) { direction : input; } } }`)
	f.Add(`library (x`)
	f.Add(`library (x) { cell (c) { pin (Y) { direction : output; timing () { related_pin : "A"; } } } }`)
	f.Add("library (x) { nom_voltage : abc; }")
	f.Add("library (x) { output_waveforms (rise) { } }")

	f.Fuzz(func(t *testing.T, src string) {
		got, err := Parse(strings.NewReader(src))
		if err != nil || got == nil {
			return
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("accepted library failed to write: %v", err)
		}
		if _, err := Parse(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round trip failed: %v\ninput: %q\nwritten: %q", err, src, out.String())
		}
	})
}
