package liberty

import (
	"fmt"
	"io"
	"strings"
)

// File units: Liberty text uses nanoseconds and picofarads (the common
// industrial convention); the in-memory representation is SI (s, F).
const (
	timeUnit = 1e-9  // 1 ns
	capUnit  = 1e-12 // 1 pF
)

// Write emits the library as Liberty-flavoured text.
func (l *Library) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "library (%s) {\n", l.Name)
	b.WriteString("  time_unit : \"1ns\";\n")
	b.WriteString("  capacitive_load_unit (1,pf);\n")
	fmt.Fprintf(&b, "  nom_voltage : %g;\n", l.Vdd)
	for _, name := range l.CellNames() {
		c := l.cells[name]
		writeCell(&b, c)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeCell(b *strings.Builder, c *Cell) {
	fmt.Fprintf(b, "  cell (%s) {\n", c.Name)
	fmt.Fprintf(b, "    area : %g;\n", c.Area)
	outPin, _ := c.OutputPin()
	for _, p := range c.Pins {
		if p.Direction == "input" {
			fmt.Fprintf(b, "    pin (%s) {\n", p.Name)
			b.WriteString("      direction : input;\n")
			fmt.Fprintf(b, "      capacitance : %.6g;\n", p.Cap/capUnit)
			b.WriteString("    }\n")
		}
	}
	if outPin != "" {
		fmt.Fprintf(b, "    pin (%s) {\n", outPin)
		b.WriteString("      direction : output;\n")
		for i := range c.Arcs {
			writeArc(b, &c.Arcs[i])
		}
		writeWaveTables(b, c)
		b.WriteString("    }\n")
	}
	b.WriteString("  }\n")
}

func writeArc(b *strings.Builder, a *Arc) {
	b.WriteString("      timing () {\n")
	fmt.Fprintf(b, "        related_pin : \"%s\";\n", a.From)
	fmt.Fprintf(b, "        timing_sense : %s;\n", a.Sense)
	writeTable(b, "cell_rise", a.CellRise)
	writeTable(b, "cell_fall", a.CellFall)
	writeTable(b, "rise_transition", a.RiseTransition)
	writeTable(b, "fall_transition", a.FallTransition)
	b.WriteString("      }\n")
}

func writeTable(b *strings.Builder, kind string, t *Table2D) {
	if t == nil {
		return
	}
	fmt.Fprintf(b, "        %s (tmpl_%dx%d) {\n", kind, len(t.Index1), len(t.Index2))
	fmt.Fprintf(b, "          index_1 (\"%s\");\n", joinScaled(t.Index1, timeUnit))
	fmt.Fprintf(b, "          index_2 (\"%s\");\n", joinScaled(t.Index2, capUnit))
	b.WriteString("          values ( \\\n")
	for i, row := range t.Values {
		sep := ", \\"
		if i == len(t.Values)-1 {
			sep = " \\"
		}
		fmt.Fprintf(b, "            \"%s\"%s\n", joinScaled(row, timeUnit), sep)
	}
	b.WriteString("          );\n")
	b.WriteString("        }\n")
}

func joinScaled(v []float64, unit float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.6g", x/unit)
	}
	return strings.Join(parts, ", ")
}
