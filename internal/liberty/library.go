package liberty

import (
	"fmt"
	"sort"

	"noisewave/internal/wave"
)

// Sense is the unateness of a timing arc.
type Sense int

const (
	// NegativeUnate: a rising input causes a falling output (inverter,
	// NAND, NOR).
	NegativeUnate Sense = iota
	// PositiveUnate: output follows the input direction (buffer).
	PositiveUnate
)

// String returns the Liberty keyword.
func (s Sense) String() string {
	if s == PositiveUnate {
		return "positive_unate"
	}
	return "negative_unate"
}

// Arc is one timing arc (input pin → output pin) with NLDM tables for both
// output edges. Table indexing follows Liberty: cell_rise/rise_transition
// describe a rising *output*.
type Arc struct {
	From, To string
	Sense    Sense

	CellRise, CellFall             *Table2D
	RiseTransition, FallTransition *Table2D
}

// outputEdge maps an input edge through the arc's unateness.
func (a *Arc) outputEdge(in wave.Edge) wave.Edge {
	if a.Sense == PositiveUnate {
		return in
	}
	return in.Opposite()
}

// Delay looks up delay and output transition for a given input edge,
// input transition time and load.
func (a *Arc) Delay(inEdge wave.Edge, trans, load float64) (delay, outTrans float64, outEdge wave.Edge, err error) {
	outEdge = a.outputEdge(inEdge)
	var dt, tt *Table2D
	if outEdge == wave.Rising {
		dt, tt = a.CellRise, a.RiseTransition
	} else {
		dt, tt = a.CellFall, a.FallTransition
	}
	if dt == nil || tt == nil {
		return 0, 0, outEdge, fmt.Errorf("liberty: arc %s->%s missing %v tables", a.From, a.To, outEdge)
	}
	return dt.At(trans, load), tt.At(trans, load), outEdge, nil
}

// Pin describes a cell pin.
type Pin struct {
	Name      string
	Direction string  // "input" or "output"
	Cap       float64 // input capacitance (F), inputs only
}

// Cell is a characterized standard cell.
type Cell struct {
	Name string
	Area float64
	Pins []Pin
	Arcs []Arc

	// Waves optionally carries the characterized noiseless output
	// waveforms per table grid point (a CCS-style extension used by the
	// noise-aware STA mode). Keyed by output edge.
	Waves map[wave.Edge]*WaveTable
}

// Pin returns the named pin.
func (c *Cell) Pin(name string) (Pin, bool) {
	for _, p := range c.Pins {
		if p.Name == name {
			return p, true
		}
	}
	return Pin{}, false
}

// InputPins lists input pin names in declaration order.
func (c *Cell) InputPins() []string {
	var out []string
	for _, p := range c.Pins {
		if p.Direction == "input" {
			out = append(out, p.Name)
		}
	}
	return out
}

// OutputPin returns the (single) output pin name.
func (c *Cell) OutputPin() (string, bool) {
	for _, p := range c.Pins {
		if p.Direction == "output" {
			return p.Name, true
		}
	}
	return "", false
}

// ArcTo returns the arc from input pin `from`, if characterized.
func (c *Cell) ArcTo(from string) (*Arc, bool) {
	for i := range c.Arcs {
		if c.Arcs[i].From == from {
			return &c.Arcs[i], true
		}
	}
	return nil, false
}

// Library is a set of cells plus global units/supply.
type Library struct {
	Name  string
	Vdd   float64
	cells map[string]*Cell
}

// NewLibrary returns an empty library.
func NewLibrary(name string, vdd float64) *Library {
	return &Library{Name: name, Vdd: vdd, cells: make(map[string]*Cell)}
}

// AddCell registers a cell (replacing any previous cell of the same name).
func (l *Library) AddCell(c *Cell) { l.cells[c.Name] = c }

// Cell returns the named cell.
func (l *Library) Cell(name string) (*Cell, error) {
	c, ok := l.cells[name]
	if !ok {
		return nil, fmt.Errorf("liberty: library %s has no cell %q", l.Name, name)
	}
	return c, nil
}

// CellNames returns all cell names sorted.
func (l *Library) CellNames() []string {
	out := make([]string, 0, len(l.cells))
	for n := range l.cells {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WaveTable stores characterized output waveforms on the same (transition,
// load) grid as the NLDM tables. Each waveform is stored in a normalized
// time base starting at the input's 50% crossing.
type WaveTable struct {
	Index1 []float64 // input transitions
	Index2 []float64 // loads
	Waves  [][]*wave.Waveform
}

// Nearest returns the stored waveform at the grid point closest to
// (trans, load). Bilinear blending of waveforms is deliberately avoided:
// the shapes are used as sensitivity references where a consistent single
// simulation beats a blended hybrid.
func (w *WaveTable) Nearest(trans, load float64) *wave.Waveform {
	i, u := segment(w.Index1, trans)
	j, v := segment(w.Index2, load)
	if u > 0.5 && i+1 < len(w.Index1) {
		i++
	}
	if v > 0.5 && j+1 < len(w.Index2) {
		j++
	}
	return w.Waves[i][j]
}
