package core

import (
	"math"
	"reflect"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/eqwave"
	"noisewave/internal/wave"
)

// fixedRamp is a stub technique that always emits the same Γeff,
// simulating techniques that converge to identical fits.
type fixedRamp struct {
	name string
	r    wave.Ramp
}

func (f fixedRamp) Name() string                               { return f.name }
func (f fixedRamp) Equivalent(eqwave.Input) (wave.Ramp, error) { return f.r, nil }

// TestReplayKeyQuantization pins the cache-key semantics: perturbations
// far below the quantization steps collapse to one key, anything at
// technique-error scale (picoseconds) does not, and flat ramps are never
// cacheable.
func TestReplayKeyQuantization(t *testing.T) {
	base := wave.NewRamp(8e9, 0.6-8e9*0.5e-9, 0, 1.2) // 50% crossing at 0.5 ns
	k0, ok := makeReplayKey(base, 0, 2e-9)
	if !ok {
		t.Fatal("base ramp not cacheable")
	}

	// Sub-quantum perturbation of the crossing: same key.
	near := base.Shifted(1e-17)
	k1, ok := makeReplayKey(near, 0, 2e-9)
	if !ok || k0 != k1 {
		t.Errorf("sub-femtosecond shift changed the key: %+v vs %+v", k0, k1)
	}

	// Picosecond-scale shift: different key.
	far := base.Shifted(1e-12)
	if k2, _ := makeReplayKey(far, 0, 2e-9); k0 == k2 {
		t.Error("1 ps shift should produce a distinct key")
	}

	// Slope change beyond the quantum: different key.
	steep := wave.NewRamp(base.A*1.01, base.B, 0, 1.2)
	if k3, _ := makeReplayKey(steep, 0, 2e-9); k0 == k3 {
		t.Error("1% slope change should produce a distinct key")
	}

	// A different replay window must not alias.
	if k4, _ := makeReplayKey(base, 0, 2.5e-9); k0 == k4 {
		t.Error("different stop time should produce a distinct key")
	}

	// Flat ramps have no crossing and are never cached.
	if _, ok := makeReplayKey(wave.Ramp{B: 0.6, VHigh: 1.2}, 0, 2e-9); ok {
		t.Error("flat ramp should not be cacheable")
	}
}

// TestCompareTechniquesReplayCache: two techniques emitting Γeff within
// the quantization tolerance must share one transistor-level replay, and
// the shared result must be bit-identical for both.
func TestCompareTechniquesReplayCache(t *testing.T) {
	tech := device.Default130()
	vdd := tech.Vdd
	gate := NewInverterChainSim(tech, []float64{1}, 1e-12)

	slope := vdd / 150e-12
	r1 := wave.RampThroughPoint(slope, 0.5e-9, vdd/2, 0, vdd)
	r2 := r1.Shifted(1e-17)  // within one femtosecond bucket of r1
	r3 := r1.Shifted(20e-12) // clearly distinct case

	// Synthetic reference pair: a rising input and a falling output, both
	// crossing vdd/2 so the reference arrival and delay are defined.
	noisy := r1.ToWaveform(0, 2e-9, 64)
	trueOut := wave.FromFunc(func(tt float64) float64 {
		return vdd - r1.Shifted(60e-12).At(tt)
	}, 0, 2e-9, 64)
	in := eqwave.Input{Noisy: noisy, Noiseless: noisy, NoiselessOut: trueOut, Vdd: vdd}

	cmp, err := CompareTechniquesWith(gate, in, trueOut, CompareOptions{Techniques: []eqwave.Technique{
		fixedRamp{"A", r1}, fixedRamp{"B", r2}, fixedRamp{"C", r3},
	}})
	if err != nil {
		t.Fatalf("CompareTechniquesWith: %v", err)
	}
	for _, r := range cmp.Results {
		if r.Err != nil {
			t.Fatalf("technique %s failed: %v", r.Name, r.Err)
		}
	}
	if cmp.ReplayMisses != 2 || cmp.ReplayHits != 1 {
		t.Errorf("replay cache: %d misses, %d hits; want 2 misses, 1 hit",
			cmp.ReplayMisses, cmp.ReplayHits)
	}
	a, _ := cmp.Result("A")
	b, _ := cmp.Result("B")
	c, _ := cmp.Result("C")
	if !reflect.DeepEqual(a.EstOut, b.EstOut) || a.EstArrival != b.EstArrival {
		t.Error("near-identical ramps should share one replayed output")
	}
	if math.Abs(c.EstArrival-a.EstArrival) < 1e-12 {
		t.Errorf("distinct ramp C should produce a distinct arrival (A %.4g, C %.4g)",
			a.EstArrival, c.EstArrival)
	}
}
