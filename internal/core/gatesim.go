// Package core is the gate delay propagation engine: it ties an
// equivalent-waveform technique (internal/eqwave) to a gate evaluation
// backend and produces output arrival times and delay errors against the
// golden transient reference.
//
// Two gate backends are provided: a transistor-level backend that replays
// a drive waveform into the receiving gate with the internal simulator
// (used by the paper-accuracy experiments), and an NLDM table backend
// (internal/liberty) used by the STA engine, matching how a production
// timer would consume Γeff.
package core

import (
	"context"
	"fmt"
	"math"

	"noisewave/internal/circuit"
	"noisewave/internal/device"
	"noisewave/internal/faultinject"
	"noisewave/internal/spice"
	"noisewave/internal/telemetry"
	"noisewave/internal/wave"
)

// GateSim is the transistor-level gate evaluation backend: a receiving
// gate chain driven by an ideal source, simulated with internal/spice.
type GateSim struct {
	Tech   device.Tech
	Drives []float64 // inverter chain drive strengths; Drives[0] is the gate under test
	Step   float64   // simulator step

	// OutStage selects which chain stage's output is "the gate output"
	// (default 0: the first inverter, matching the paper's out_u).
	OutStage int

	// Telemetry, if non-nil, receives the spice engine counters of every
	// replay this backend runs. The registry is concurrency-safe, so one
	// registry may be shared by the per-worker GateSims of a sweep.
	Telemetry *telemetry.Registry

	// Inject, if non-nil, threads the deterministic fault injector into
	// every replay transient (chaos testing; see internal/faultinject).
	Inject *faultinject.Injector

	// NoFastPath threads Options.NoFastPath into every replay simulator
	// (the solver fast path's escape hatch; see internal/spice).
	NoFastPath bool

	// rec accumulates the recovery-ladder reports of every replay since
	// the last TakeRecovery call. Like the simulator itself, this is not
	// safe for concurrent use.
	rec spice.RecoveryReport

	// The persistent replay testbench: one circuit and simulator reused
	// across every replay this backend runs, with only the input source
	// value and the run window changing per call (each run starts from a
	// fresh DC operating point, so no state leaks between replays). It is
	// rebuilt when any of the configuration fields above change.
	bench    *gateBench
	benchCfg gateBenchCfg
}

// gateBench is GateSim's cached testbench.
type gateBench struct {
	sim     *spice.Simulator
	vin     *circuit.VSource
	outName string
	drives  []float64 // the Drives the circuit was built from
}

func (b *gateBench) sameDrives(drives []float64) bool {
	if len(b.drives) != len(drives) {
		return false
	}
	for i, d := range drives {
		if b.drives[i] != d {
			return false
		}
	}
	return true
}

// gateBenchCfg snapshots every GateSim field the cached testbench bakes in;
// a mismatch at replay time forces a rebuild.
type gateBenchCfg struct {
	tech       device.Tech
	step       float64
	outStage   int
	tele       *telemetry.Registry
	inject     *faultinject.Injector
	noFastPath bool
}

func (g *GateSim) cfg() gateBenchCfg {
	return gateBenchCfg{
		tech: g.Tech, step: g.Step, outStage: g.OutStage,
		tele: g.Telemetry, inject: g.Inject, noFastPath: g.NoFastPath,
	}
}

// TakeRecovery returns the recovery-ladder activity accumulated over the
// replays since the previous call, and resets the accumulator. Sweep
// drivers call it once per case to classify the case's health.
func (g *GateSim) TakeRecovery() spice.RecoveryReport {
	r := g.rec
	g.rec = spice.RecoveryReport{}
	return r
}

// NewInverterChainSim builds the standard receiver used by the paper's
// testbench: the gate under test at drives[0] loaded by the remaining
// stages (e.g. 4, 16, 64).
func NewInverterChainSim(t device.Tech, drives []float64, step float64) *GateSim {
	return &GateSim{Tech: t, Drives: append([]float64(nil), drives...), Step: step}
}

// OutputForSource drives the chain input with src and returns the waveform
// at the selected output stage over [start, stop].
func (g *GateSim) OutputForSource(src circuit.Source, start, stop float64) (*wave.Waveform, error) {
	return g.OutputForSourceCtx(context.Background(), src, start, stop)
}

// OutputForSourceCtx is OutputForSource under a context: the replay
// transient stops early once ctx is done, returning an error matching
// telemetry.ErrCanceled.
func (g *GateSim) OutputForSourceCtx(ctx context.Context, src circuit.Source, start, stop float64) (*wave.Waveform, error) {
	b, err := g.replayBench()
	if err != nil {
		return nil, err
	}
	b.vin.Value = src
	res, err := b.sim.RunWindow(ctx, start, stop)
	if res != nil {
		g.rec.Absorb(res.Recovery)
	}
	if err != nil {
		return nil, fmt.Errorf("core: gate evaluation: %w", err)
	}
	return res.Waveform(b.outName)
}

// replayBench returns the cached testbench, (re)building it when the
// backend's configuration changed since the last replay. The simulator runs
// with ReuseResult: the *Result is recycled per replay, which is safe
// because OutputForSourceCtx only hands out Waveform copies.
func (g *GateSim) replayBench() (*gateBench, error) {
	if g.bench != nil && g.benchCfg == g.cfg() && g.bench.sameDrives(g.Drives) {
		return g.bench, nil
	}
	if len(g.Drives) == 0 {
		return nil, fmt.Errorf("core: GateSim has no stages")
	}
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(g.Tech.Vdd))
	in := ckt.Node("in")
	vin := ckt.AddVSource("vin", in, circuit.Ground, circuit.DCSource(0))
	prev := in
	var outName string
	for i, d := range g.Drives {
		out := ckt.Node(fmt.Sprintf("out%d", i))
		ckt.AddInverter(fmt.Sprintf("u%d", i), g.Tech, d, prev, out, vdd)
		if i == g.OutStage {
			outName = ckt.NodeName(out)
		}
		prev = out
	}
	sim := spice.New(ckt, spice.Options{
		Step:        g.Step,
		Probes:      []string{outName},
		Telemetry:   g.Telemetry,
		Inject:      g.Inject,
		NoFastPath:  g.NoFastPath,
		ReuseResult: true,
	})
	g.bench = &gateBench{
		sim: sim, vin: vin, outName: outName,
		drives: append([]float64(nil), g.Drives...),
	}
	g.benchCfg = g.cfg()
	return g.bench, nil
}

// OutputForRamp evaluates the chain for an equivalent linear waveform.
func (g *GateSim) OutputForRamp(r wave.Ramp, start, stop float64) (*wave.Waveform, error) {
	return g.OutputForRampCtx(context.Background(), r, start, stop)
}

// OutputForRampCtx is OutputForRamp under a context (see
// OutputForSourceCtx).
func (g *GateSim) OutputForRampCtx(ctx context.Context, r wave.Ramp, start, stop float64) (*wave.Waveform, error) {
	return g.OutputForSourceCtx(ctx, circuit.RampWaveSource{R: r}, start, stop)
}

// OutputForWave replays an arbitrary waveform into the chain.
func (g *GateSim) OutputForWave(w *wave.Waveform, start, stop float64) (*wave.Waveform, error) {
	return g.OutputForSource(circuit.WaveSource{W: w}, start, stop)
}

// ArrivalAt returns the STA arrival time of a waveform: its latest crossing
// of 0.5·Vdd.
func ArrivalAt(w *wave.Waveform, vdd float64) (float64, error) {
	return w.LastCrossing(0.5 * vdd)
}

// GateDelay returns the 50%-to-50% gate delay between an input and output
// waveform pair (latest crossings, per the paper's §4.1).
func GateDelay(in, out *wave.Waveform, vdd float64) (float64, error) {
	tIn, err := ArrivalAt(in, vdd)
	if err != nil {
		return 0, fmt.Errorf("core: input arrival: %w", err)
	}
	tOut, err := ArrivalAt(out, vdd)
	if err != nil {
		return 0, fmt.Errorf("core: output arrival: %w", err)
	}
	return tOut - tIn, nil
}

// WindowFor picks a simulation window that covers a ramp's transition and
// a reference record, with margin on both sides.
func WindowFor(r wave.Ramp, ref *wave.Waveform, margin float64) (start, stop float64) {
	start, stop = ref.Start(), ref.End()
	if t0, t1, err := r.Span(); err == nil {
		start = math.Min(start, t0-margin)
		stop = math.Max(stop, t1+margin)
	}
	return start, stop
}
