package core

import (
	"context"
	"fmt"

	"noisewave/internal/eqwave"
	"noisewave/internal/telemetry"
	"noisewave/internal/trace"
	"noisewave/internal/wave"
)

// TechniqueResult is one technique's prediction for one noise case.
type TechniqueResult struct {
	Name string
	// Gamma is the fitted equivalent linear waveform.
	Gamma wave.Ramp
	// EstOut is the gate output under Gamma.
	EstOut *wave.Waveform
	// EstArrival is the predicted output arrival (latest 0.5·Vdd crossing).
	EstArrival float64
	// ArrivalError is EstArrival − the reference output arrival, in
	// seconds (signed; positive = pessimistic for a late-arrival check).
	ArrivalError float64
	// Err is set when the technique could not produce a prediction (e.g.
	// WLS5 on non-overlapping transitions); the numeric fields are then
	// meaningless.
	Err error
}

// Comparison holds the reference timing and all technique results for one
// noise-injection case.
type Comparison struct {
	// TrueArrival is the reference output arrival from the golden
	// transient simulation of the noisy waveform.
	TrueArrival float64
	// TrueDelay is the reference 50%–50% gate delay.
	TrueDelay float64
	// Results has one entry per technique, in input order.
	Results []TechniqueResult
	// ReplayHits and ReplayMisses count Γeff replay-cache outcomes for
	// this case: techniques often emit near-identical equivalent
	// waveforms, and each hit is one transistor-level transient that was
	// not re-simulated.
	ReplayHits, ReplayMisses int
}

// CompareOptions parameterizes CompareTechniquesWith.
type CompareOptions struct {
	// Ctx, if non-nil, cancels the comparison: the technique loop stops
	// before the next fit and any in-flight replay transient stops at its
	// next time step, returning an error matching telemetry.ErrCanceled.
	Ctx context.Context
	// Techniques to evaluate; nil selects eqwave.All().
	Techniques []eqwave.Technique
	// Telemetry, if non-nil, receives per-technique fit timers
	// ("eqwave.fit_seconds.<name>"), the replay-cache hit/miss/eviction
	// counters and the spice engine counters of the replays (via the
	// gate's registry, which this call temporarily sets when unset).
	Telemetry *telemetry.Registry
}

// CompareTechniques computes Γeff with every technique, replays each Γeff
// through the gate backend, and scores the predicted output arrival
// against the reference noisy output.
//
// Deprecated: use CompareTechniquesWith, which adds cancellation and
// telemetry; this wrapper forwards to it with background context and no
// registry and is kept for source compatibility.
func CompareTechniques(gate *GateSim, in eqwave.Input, trueOut *wave.Waveform, techs []eqwave.Technique) (*Comparison, error) {
	return CompareTechniquesWith(gate, in, trueOut, CompareOptions{Techniques: techs})
}

// CompareTechniquesWith computes Γeff with every configured technique,
// replays each Γeff through the gate backend, and scores the predicted
// output arrival against the reference noisy output.
//
// Replays are memoized within the case: techniques that emit
// near-identical ramps (quantized on slope, 50% crossing, rails and replay
// window — see replaycache.go) share one transistor-level transient. The
// Comparison reports the hit/miss counts, and opts.Telemetry (when set)
// accumulates them across cases.
//
// The reference input/output pair and the noiseless pair must share the
// same time base (the experiment drivers guarantee this by construction).
func CompareTechniquesWith(gate *GateSim, in eqwave.Input, trueOut *wave.Waveform, opts CompareOptions) (*Comparison, error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	techs := opts.Techniques
	if techs == nil {
		techs = eqwave.All()
	}
	if gate.Telemetry == nil && opts.Telemetry != nil {
		defer func() { gate.Telemetry = nil }()
		gate.Telemetry = opts.Telemetry
	}
	trueArr, err := ArrivalAt(trueOut, in.Vdd)
	if err != nil {
		return nil, fmt.Errorf("core: reference output arrival: %w", err)
	}
	trueDelay, err := GateDelay(in.Noisy, trueOut, in.Vdd)
	if err != nil {
		return nil, fmt.Errorf("core: reference delay: %w", err)
	}
	cmp := &Comparison{TrueArrival: trueArr, TrueDelay: trueDelay}
	cache := newReplayCache()
	defer cache.publish(opts.Telemetry)
	for _, tech := range techs {
		if ctx.Err() != nil {
			return nil, telemetry.Canceled(ctx, "core: comparison canceled before %s", tech.Name())
		}
		r := TechniqueResult{Name: tech.Name()}
		// One child span per technique: the Γeff fit and the (possibly
		// cache-served) replay nest under it, with cache outcome as events.
		tctx, tspan := trace.Start(ctx, "core.technique", trace.String("technique", tech.Name()))
		stopFit := opts.Telemetry.Timer("eqwave.fit_seconds." + tech.Name()).Start()
		_, fitSpan := trace.Start(tctx, "eqwave.fit")
		gamma, err := tech.Equivalent(in)
		fitSpan.End()
		stopFit()
		if err != nil {
			r.Err = err
			tspan.SetAttr(trace.String("error", err.Error()))
			tspan.End()
			cmp.Results = append(cmp.Results, r)
			continue
		}
		r.Gamma = gamma
		start, stop := WindowFor(gamma, trueOut, 0.2e-9)
		hitsBefore := cache.hits
		est, err := cache.outputForRamp(tctx, gate, gamma, start, stop)
		if cache.hits > hitsBefore {
			tspan.Event("core.replay.cache_hit")
		} else {
			tspan.Event("core.replay.cache_miss")
		}
		if err != nil {
			if ctx.Err() != nil {
				tspan.SetAttr(trace.String("error", "canceled"))
				tspan.End()
				return nil, telemetry.Canceled(ctx, "core: replay canceled during %s", tech.Name())
			}
			r.Err = err
			tspan.SetAttr(trace.String("error", err.Error()))
			tspan.End()
			cmp.Results = append(cmp.Results, r)
			continue
		}
		r.EstOut = est
		arr, err := ArrivalAt(est, in.Vdd)
		if err != nil {
			r.Err = fmt.Errorf("estimated output never crosses 0.5·Vdd: %w", err)
			tspan.SetAttr(trace.String("error", r.Err.Error()))
			tspan.End()
			cmp.Results = append(cmp.Results, r)
			continue
		}
		r.EstArrival = arr
		r.ArrivalError = arr - trueArr
		tspan.SetAttr(trace.Float("arrival_error_s", r.ArrivalError))
		tspan.End()
		cmp.Results = append(cmp.Results, r)
	}
	cmp.ReplayHits, cmp.ReplayMisses = cache.hits, cache.misses
	return cmp, nil
}

// Result returns the entry for a named technique.
func (c *Comparison) Result(name string) (TechniqueResult, bool) {
	for _, r := range c.Results {
		if r.Name == name {
			return r, true
		}
	}
	return TechniqueResult{}, false
}
