package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/eqwave"
	"noisewave/internal/telemetry"
	"noisewave/internal/wave"
)

// testRamps returns n clearly distinct cacheable ramps.
func testRamps(vdd float64, n int) []wave.Ramp {
	slope := vdd / 150e-12
	base := wave.RampThroughPoint(slope, 0.5e-9, vdd/2, 0, vdd)
	out := make([]wave.Ramp, n)
	for i := range out {
		out[i] = base.Shifted(float64(i) * 20e-12)
	}
	return out
}

// TestReplayCacheEviction: with the capacity forced down to 2, a third
// distinct ramp evicts the oldest entry (FIFO), and re-requesting the
// evicted ramp is a miss again.
func TestReplayCacheEviction(t *testing.T) {
	tech := device.Default130()
	gate := NewInverterChainSim(tech, []float64{1}, 1e-12)
	ctx := context.Background()

	c := newReplayCache()
	c.maxEntries = 2
	ramps := testRamps(tech.Vdd, 3)
	for _, r := range ramps {
		if _, err := c.outputForRamp(ctx, gate, r, 0, 2e-9); err != nil {
			t.Fatalf("outputForRamp: %v", err)
		}
	}
	if c.evictions != 1 {
		t.Errorf("evictions = %d, want 1 after 3 inserts at capacity 2", c.evictions)
	}
	if len(c.entries) != 2 || len(c.order) != 2 {
		t.Errorf("cache holds %d entries / %d order slots, want 2/2", len(c.entries), len(c.order))
	}
	// ramps[0] was evicted first (FIFO): a repeat is a miss. ramps[2] is
	// still resident: a repeat is a hit.
	misses := c.misses
	if _, err := c.outputForRamp(ctx, gate, ramps[0], 0, 2e-9); err != nil {
		t.Fatal(err)
	}
	if c.misses != misses+1 {
		t.Error("evicted ramp should miss on re-request")
	}
	hits := c.hits
	if _, err := c.outputForRamp(ctx, gate, ramps[2], 0, 2e-9); err != nil {
		t.Fatal(err)
	}
	if c.hits != hits+1 {
		t.Error("resident ramp should hit on re-request")
	}

	reg := telemetry.New()
	c.publish(reg)
	snap := reg.Snapshot()
	if got := snap.Counters["core.replay_evictions"]; got != 2 {
		t.Errorf("published core.replay_evictions = %d, want 2", got)
	}
	if got := snap.Counters["core.replay_hits"]; got != int64(c.hits) {
		t.Errorf("published core.replay_hits = %d, want %d", got, c.hits)
	}
	if got := snap.Counters["core.replay_misses"]; got != int64(c.misses) {
		t.Errorf("published core.replay_misses = %d, want %d", got, c.misses)
	}
}

// compareFixture builds the synthetic single-case comparison workload used
// by the options-struct tests.
func compareFixture(t *testing.T) (*GateSim, eqwave.Input, *wave.Waveform, []eqwave.Technique) {
	t.Helper()
	tech := device.Default130()
	vdd := tech.Vdd
	gate := NewInverterChainSim(tech, []float64{1}, 1e-12)
	r1 := wave.RampThroughPoint(vdd/150e-12, 0.5e-9, vdd/2, 0, vdd)
	noisy := r1.ToWaveform(0, 2e-9, 64)
	trueOut := wave.FromFunc(func(tt float64) float64 {
		return vdd - r1.Shifted(60e-12).At(tt)
	}, 0, 2e-9, 64)
	in := eqwave.Input{Noisy: noisy, Noiseless: noisy, NoiselessOut: trueOut, Vdd: vdd}
	techs := []eqwave.Technique{
		fixedRamp{"A", r1}, fixedRamp{"B", r1.Shifted(20e-12)},
	}
	return gate, in, trueOut, techs
}

// TestCompareTechniquesWithCancel: a canceled context stops the comparison
// with an error matching telemetry.ErrCanceled.
func TestCompareTechniquesWithCancel(t *testing.T) {
	gate, in, trueOut, techs := compareFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompareTechniquesWith(gate, in, trueOut, CompareOptions{
		Ctx: ctx, Techniques: techs,
	})
	if err == nil {
		t.Fatal("nil error under canceled context")
	}
	if !errors.Is(err, telemetry.ErrCanceled) {
		t.Errorf("error %v does not match telemetry.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not match context.Canceled", err)
	}
}

// TestCompareTechniquesWrapperEquivalence: the deprecated positional
// wrapper must produce a bit-identical Comparison to the options-struct
// path it forwards to.
func TestCompareTechniquesWrapperEquivalence(t *testing.T) {
	gate, in, trueOut, techs := compareFixture(t)
	//lint:ignore SA1019 the deprecated wrapper is the subject under test.
	old, err := CompareTechniques(gate, in, trueOut, techs)
	if err != nil {
		t.Fatalf("CompareTechniques: %v", err)
	}
	neu, err := CompareTechniquesWith(gate, in, trueOut, CompareOptions{Techniques: techs})
	if err != nil {
		t.Fatalf("CompareTechniquesWith: %v", err)
	}
	if !reflect.DeepEqual(old, neu) {
		t.Errorf("deprecated wrapper and options path differ:\nold %+v\nnew %+v", old, neu)
	}
}

// TestCompareTechniquesWithTelemetry: the options-struct path must leave
// per-technique fit timers and replay counters in the registry, and must
// reset the gate's temporarily-borrowed registry afterwards.
func TestCompareTechniquesWithTelemetry(t *testing.T) {
	gate, in, trueOut, techs := compareFixture(t)
	reg := telemetry.New()
	cmp, err := CompareTechniquesWith(gate, in, trueOut, CompareOptions{
		Techniques: techs, Telemetry: reg,
	})
	if err != nil {
		t.Fatalf("CompareTechniquesWith: %v", err)
	}
	if gate.Telemetry != nil {
		t.Error("gate.Telemetry not reset after the comparison")
	}
	snap := reg.Snapshot()
	for _, name := range []string{"A", "B"} {
		if ts := snap.Timers["eqwave.fit_seconds."+name]; ts.Count != 1 {
			t.Errorf("fit timer for %s observed %d times, want 1", name, ts.Count)
		}
	}
	if got := snap.Counters["core.replay_misses"]; got != int64(cmp.ReplayMisses) {
		t.Errorf("core.replay_misses = %d, want %d", got, cmp.ReplayMisses)
	}
	// The replays themselves ran under the borrowed registry.
	if got := snap.Counters["spice.transients"]; got <= 0 {
		t.Errorf("spice.transients = %d, want > 0 (replay transients)", got)
	}
}
