package core_test

import (
	"math"
	"testing"

	"noisewave/internal/core"
	"noisewave/internal/device"
	"noisewave/internal/eqwave"
	"noisewave/internal/xtalk"
)

// TestCompareTechniquesEndToEnd is the headline integration test: all six
// techniques must produce a prediction for a representative noisy case and
// the sensitivity-aware techniques (WLS5, SGDP) must beat the point-based
// ones, with SGDP at least as accurate as WLS5.
func TestCompareTechniquesEndToEnd(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	const vs = 0.3e-9
	nlIn, nlOut, err := cfg.RunNoiseless(vs)
	if err != nil {
		t.Fatalf("noiseless run: %v", err)
	}
	gate := core.NewInverterChainSim(cfg.Tech,
		[]float64{cfg.ReceiverDrive, cfg.Load1Drive, cfg.Load2Drive}, cfg.Step)

	// Average over a few representative alignments to avoid judging on a
	// single lucky case.
	offsets := []float64{0.0, 0.1e-9, 0.25e-9, -0.1e-9}
	sumAbs := map[string]float64{}
	for _, off := range offsets {
		nIn, nOut, err := cfg.Run(vs, []float64{vs + off})
		if err != nil {
			t.Fatalf("noisy run (off=%g): %v", off, err)
		}
		in := eqwave.Input{
			Noisy: nIn, Noiseless: nlIn, NoiselessOut: nlOut,
			Vdd: cfg.Tech.Vdd, Edge: cfg.VictimEdge,
		}
		cmp, err := core.CompareTechniquesWith(gate, in, nOut, core.CompareOptions{Techniques: eqwave.All()})
		if err != nil {
			t.Fatalf("CompareTechniquesWith: %v", err)
		}
		for _, r := range cmp.Results {
			if r.Err != nil {
				t.Fatalf("technique %s failed (off=%g): %v", r.Name, off, r.Err)
			}
			sumAbs[r.Name] += math.Abs(r.ArrivalError)
			t.Logf("off=%+.2gns  %-5s err=%+7.2f ps", off*1e9, r.Name, r.ArrivalError*1e12)
		}
	}
	n := float64(len(offsets))
	for name, s := range sumAbs {
		t.Logf("avg |err| %-5s = %.2f ps", name, s/n*1e12)
	}
	// Sanity bounds: every technique within 250 ps on average.
	for name, s := range sumAbs {
		if s/n > 250e-12 {
			t.Errorf("%s average error %.1f ps is implausibly large", name, s/n*1e12)
		}
	}
	// Accuracy ordering on the averages. The full 200-case statistics live
	// in the experiments package; on this 4-offset spot check we only
	// require that the sensitivity-based techniques stay in the same class
	// (SGDP within 1.5× of WLS5) and beat the best point-based technique.
	if sumAbs["SGDP"] > sumAbs["WLS5"]*1.5 {
		t.Errorf("SGDP (%.2f ps) should not be far worse than WLS5 (%.2f ps)",
			sumAbs["SGDP"]/n*1e12, sumAbs["WLS5"]/n*1e12)
	}
	pointBest := math.Min(sumAbs["P1"], sumAbs["P2"])
	if sumAbs["SGDP"] > pointBest {
		t.Errorf("SGDP (%.2f ps) should beat point-based best (%.2f ps)",
			sumAbs["SGDP"]/n*1e12, pointBest/n*1e12)
	}
}
