package core

import (
	"math"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/wave"
)

func TestGateSimInverts(t *testing.T) {
	tech := device.Default130()
	g := NewInverterChainSim(tech, []float64{4}, 1e-12)
	ramp := wave.NewRamp(1.2/0.2e-9, -1.2*(0.3e-9)/0.2e-9, 0, 1.2) // rises 0.3→0.5 ns
	out, err := g.OutputForRamp(ramp, 0, 1.5e-9)
	if err != nil {
		t.Fatalf("OutputForRamp: %v", err)
	}
	if out.EdgeDir() != wave.Falling {
		t.Errorf("inverter output should fall, got %v", out.EdgeDir())
	}
	if v := out.V[len(out.V)-1]; v > 0.05 {
		t.Errorf("output did not settle low: %g", v)
	}
}

func TestGateSimOutStageSelection(t *testing.T) {
	tech := device.Default130()
	g := NewInverterChainSim(tech, []float64{4, 16}, 1e-12)
	g.OutStage = 1 // second stage: non-inverted overall
	ramp := wave.NewRamp(1.2/0.2e-9, -1.2*(0.3e-9)/0.2e-9, 0, 1.2)
	out, err := g.OutputForRamp(ramp, 0, 1.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if out.EdgeDir() != wave.Rising {
		t.Errorf("two inversions should restore the edge, got %v", out.EdgeDir())
	}
}

func TestGateSimEmpty(t *testing.T) {
	g := &GateSim{Tech: device.Default130(), Step: 1e-12}
	if _, err := g.OutputForSource(nil, 0, 1e-9); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestGateDelayAndArrival(t *testing.T) {
	in := wave.FromFunc(func(tt float64) float64 {
		return math.Min(1.2, math.Max(0, (tt-0.1e-9)*1.2/0.2e-9))
	}, 0, 1e-9, 500)
	out := wave.FromFunc(func(tt float64) float64 {
		return 1.2 - math.Min(1.2, math.Max(0, (tt-0.25e-9)*1.2/0.1e-9))
	}, 0, 1e-9, 500)
	d, err := GateDelay(in, out, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// in 50% at 0.2 ns, out 50% at 0.3 ns.
	if math.Abs(d-0.1e-9) > 2e-12 {
		t.Errorf("delay = %g, want 0.1 ns", d)
	}
	arr, err := ArrivalAt(out, 1.2)
	if err != nil || math.Abs(arr-0.3e-9) > 2e-12 {
		t.Errorf("arrival = %g, %v", arr, err)
	}
}

func TestWindowFor(t *testing.T) {
	ref := wave.MustNew([]float64{1e-9, 2e-9}, []float64{0, 1})
	r := wave.NewRamp(1.2/0.1e-9, -1.2*0.5e-9/0.1e-9, 0, 1.2) // spans 0.5..0.6 ns
	start, stop := WindowFor(r, ref, 0.1e-9)
	if start > 0.4e-9+1e-15 {
		t.Errorf("start %g should cover the ramp with margin", start)
	}
	if stop < 2e-9 {
		t.Errorf("stop %g should cover the reference", stop)
	}
	// Flat ramp: window falls back to the reference span.
	flat := wave.NewRamp(0, 0.6, 0, 1.2)
	s2, e2 := WindowFor(flat, ref, 0.1e-9)
	if s2 != 1e-9 || e2 != 2e-9 {
		t.Errorf("flat ramp window [%g, %g]", s2, e2)
	}
}

func TestOutputForWaveReplaysRecordedWaveform(t *testing.T) {
	tech := device.Default130()
	g := NewInverterChainSim(tech, []float64{4}, 1e-12)
	in := wave.FromFunc(func(tt float64) float64 {
		u := (tt - 0.3e-9) / 0.2e-9
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		return 1.2 * u
	}, 0, 1.2e-9, 600)
	out, err := g.OutputForWave(in, 0, 1.2e-9)
	if err != nil {
		t.Fatalf("OutputForWave: %v", err)
	}
	if out.EdgeDir() != wave.Falling {
		t.Errorf("expected falling output, got %v", out.EdgeDir())
	}
	d, err := GateDelay(in, out, tech.Vdd)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 100e-12 {
		t.Errorf("replayed delay %.3g s implausible", d)
	}
}

func TestComparisonResultLookup(t *testing.T) {
	c := &Comparison{Results: []TechniqueResult{{Name: "SGDP"}, {Name: "P1"}}}
	if r, ok := c.Result("P1"); !ok || r.Name != "P1" {
		t.Error("Result lookup failed")
	}
	if _, ok := c.Result("nope"); ok {
		t.Error("unknown technique found")
	}
}
