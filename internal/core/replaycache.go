package core

import (
	"context"
	"math"

	"noisewave/internal/telemetry"
	"noisewave/internal/wave"
)

// Quantization steps for the replay cache key. Two ramps whose 50% crossing
// times agree within a femtosecond and whose slopes agree within 1e-6 V/ps
// drive the receiver to outputs that differ by far less than the technique
// errors being measured (picoseconds), so replaying both would only redo
// the same transistor-level transient. The replay window is quantized at
// the same femtosecond grid.
const (
	replayTimeQuantum  = 1e-15 // s: crossing time and window bounds
	replaySlopeQuantum = 1e6   // V/s, i.e. 1e-6 V/ps
	replayVoltQuantum  = 1e-6  // V: saturation rails
)

// replayKey identifies a Γeff replay up to quantization: the ramp's slope,
// 50% crossing and rails, plus the simulation window.
type replayKey struct {
	slope, cross int64
	lo, hi       int64
	start, stop  int64
}

func quantize(x, q float64) int64 { return int64(math.Round(x / q)) }

func makeReplayKey(r wave.Ramp, start, stop float64) (replayKey, bool) {
	// Flat ramps have no crossing; never cache them (techniques reject
	// them anyway).
	cross, err := r.Arrival()
	if err != nil {
		return replayKey{}, false
	}
	return replayKey{
		slope: quantize(r.A, replaySlopeQuantum),
		cross: quantize(cross, replayTimeQuantum),
		lo:    quantize(r.VLow, replayVoltQuantum),
		hi:    quantize(r.VHigh, replayVoltQuantum),
		start: quantize(start, replayTimeQuantum),
		stop:  quantize(stop, replayTimeQuantum),
	}, true
}

// replayCache memoizes GateSim.OutputForRamp within one noise case. The
// techniques frequently emit near-identical equivalent waveforms — e.g.
// SGDP's safeguard falls back to the WLS5 fit, and P1/P2 coincide whenever
// the noisy 10%/50%/90% crossings are collinear — so the dominant cost of
// a case, the transistor-level replay transient, is simulated once per
// distinct (quantized) ramp.
//
// A cache instance is confined to a single CompareTechniques call (one
// case, one goroutine): sharing across cases would be unsound under the
// sweep engine's worker pool and would let the memory footprint grow with
// the sweep, while per-case confinement keeps the parallel and sequential
// paths bit-identical by construction.
//
// The entry count is bounded (maxEntries, FIFO eviction) so a pathological
// technique set cannot grow the footprint; with the built-in six techniques
// a case never comes close to the bound, and the eviction counter staying
// at zero is itself a useful health signal in the telemetry snapshot.
type replayCache struct {
	entries    map[replayKey]replayEntry
	order      []replayKey // insertion order, for FIFO eviction
	maxEntries int
	hits       int
	misses     int
	evictions  int
}

type replayEntry struct {
	out *wave.Waveform
	err error
}

// defaultReplayCap bounds the per-case replay cache. Each technique
// contributes at most one distinct ramp per case, so the built-in set of
// six never evicts.
const defaultReplayCap = 64

func newReplayCache() *replayCache {
	return &replayCache{
		entries:    make(map[replayKey]replayEntry),
		maxEntries: defaultReplayCap,
	}
}

// outputForRamp returns the gate response for the ramp, replaying through
// the simulator only on the first sight of a quantized key. Errors are
// cached too: an unstable replay would fail identically on retry.
func (c *replayCache) outputForRamp(ctx context.Context, gate *GateSim, r wave.Ramp, start, stop float64) (*wave.Waveform, error) {
	key, ok := makeReplayKey(r, start, stop)
	if !ok {
		c.misses++
		return gate.OutputForRampCtx(ctx, r, start, stop)
	}
	if e, ok := c.entries[key]; ok {
		c.hits++
		return e.out, e.err
	}
	c.misses++
	out, err := gate.OutputForRampCtx(ctx, r, start, stop)
	if len(c.entries) >= c.maxEntries && c.maxEntries > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
		c.evictions++
	}
	c.entries[key] = replayEntry{out: out, err: err}
	c.order = append(c.order, key)
	return out, err
}

// publish flushes the cache outcome counters to a registry (nil-safe).
func (c *replayCache) publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("core.replay_hits").Add(int64(c.hits))
	reg.Counter("core.replay_misses").Add(int64(c.misses))
	reg.Counter("core.replay_evictions").Add(int64(c.evictions))
}
