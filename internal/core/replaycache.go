package core

import (
	"math"

	"noisewave/internal/wave"
)

// Quantization steps for the replay cache key. Two ramps whose 50% crossing
// times agree within a femtosecond and whose slopes agree within 1e-6 V/ps
// drive the receiver to outputs that differ by far less than the technique
// errors being measured (picoseconds), so replaying both would only redo
// the same transistor-level transient. The replay window is quantized at
// the same femtosecond grid.
const (
	replayTimeQuantum  = 1e-15 // s: crossing time and window bounds
	replaySlopeQuantum = 1e6   // V/s, i.e. 1e-6 V/ps
	replayVoltQuantum  = 1e-6  // V: saturation rails
)

// replayKey identifies a Γeff replay up to quantization: the ramp's slope,
// 50% crossing and rails, plus the simulation window.
type replayKey struct {
	slope, cross int64
	lo, hi       int64
	start, stop  int64
}

func quantize(x, q float64) int64 { return int64(math.Round(x / q)) }

func makeReplayKey(r wave.Ramp, start, stop float64) (replayKey, bool) {
	// Flat ramps have no crossing; never cache them (techniques reject
	// them anyway).
	cross, err := r.Arrival()
	if err != nil {
		return replayKey{}, false
	}
	return replayKey{
		slope: quantize(r.A, replaySlopeQuantum),
		cross: quantize(cross, replayTimeQuantum),
		lo:    quantize(r.VLow, replayVoltQuantum),
		hi:    quantize(r.VHigh, replayVoltQuantum),
		start: quantize(start, replayTimeQuantum),
		stop:  quantize(stop, replayTimeQuantum),
	}, true
}

// replayCache memoizes GateSim.OutputForRamp within one noise case. The
// techniques frequently emit near-identical equivalent waveforms — e.g.
// SGDP's safeguard falls back to the WLS5 fit, and P1/P2 coincide whenever
// the noisy 10%/50%/90% crossings are collinear — so the dominant cost of
// a case, the transistor-level replay transient, is simulated once per
// distinct (quantized) ramp.
//
// A cache instance is confined to a single CompareTechniques call (one
// case, one goroutine): sharing across cases would be unsound under the
// sweep engine's worker pool and would let the memory footprint grow with
// the sweep, while per-case confinement keeps the parallel and sequential
// paths bit-identical by construction.
type replayCache struct {
	entries map[replayKey]replayEntry
	hits    int
	misses  int
}

type replayEntry struct {
	out *wave.Waveform
	err error
}

func newReplayCache() *replayCache {
	return &replayCache{entries: make(map[replayKey]replayEntry)}
}

// outputForRamp returns the gate response for the ramp, replaying through
// the simulator only on the first sight of a quantized key. Errors are
// cached too: an unstable replay would fail identically on retry.
func (c *replayCache) outputForRamp(gate *GateSim, r wave.Ramp, start, stop float64) (*wave.Waveform, error) {
	key, ok := makeReplayKey(r, start, stop)
	if !ok {
		c.misses++
		return gate.OutputForRamp(r, start, stop)
	}
	if e, ok := c.entries[key]; ok {
		c.hits++
		return e.out, e.err
	}
	c.misses++
	out, err := gate.OutputForRamp(r, start, stop)
	c.entries[key] = replayEntry{out: out, err: err}
	return out, err
}
