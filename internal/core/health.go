package core

// Health classifies how a sweep case reached its result, from fully
// trustworthy to excluded. The experiment drivers attach it to every case
// record and compute statistics over healthy cases only, reporting the
// exclusion count explicitly.
type Health int

const (
	// HealthOK: the golden transient and every replay converged without
	// recovery; the case is fully trustworthy.
	HealthOK Health = iota
	// HealthRecovered: at least one transient needed the spice recovery
	// ladder (gmin ramp or BE fallback) but completed; the case scores
	// normally and the recovery is recorded for diagnostics.
	HealthRecovered
	// HealthDegraded: the golden transient was unrecoverable, so the case
	// fell back to the P2 Γeff path over the salvaged waveform prefix. It
	// carries an estimated arrival but no reference truth, and is excluded
	// from error statistics.
	HealthDegraded
	// HealthQuarantined: the case failed entirely (error, panic or
	// timeout) and survives only as a sweep.CaseFailure in the failure
	// report.
	HealthQuarantined
)

// String names the status for reports.
func (h Health) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthRecovered:
		return "recovered"
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	}
	return "unknown"
}

// Healthy reports whether the case's numbers are backed by a converged
// golden reference and may enter error statistics.
func (h Health) Healthy() bool { return h == HealthOK || h == HealthRecovered }
