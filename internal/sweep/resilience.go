package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"noisewave/internal/obs/logctx"
	"noisewave/internal/trace"
)

// ErrCaseTimeout marks a case that exceeded Options.CaseTimeout. It is a
// per-case failure, not a sweep cancellation: it deliberately does NOT
// match telemetry.ErrCanceled, so a slow case cannot masquerade as the
// whole sweep being canceled. With KeepGoing set such cases are
// quarantined; otherwise the sweep stops with this error.
var ErrCaseTimeout = errors.New("sweep: case timeout")

// ErrWorkersLost marks a sweep abandoned because every worker died — each
// hit an unrecoverable panic whose state rebuild failed, or its factory
// never produced state. Remaining cases are left incomplete.
var ErrWorkersLost = errors.New("sweep: all workers lost")

// CaseFailure records one quarantined case: which case, the final error,
// how the failure manifested, and the per-attempt log (the "attempt log"
// drivers print in failure reports).
type CaseFailure struct {
	// Index is the case index in [0, n).
	Index int
	// Err is the error of the final attempt. For timeouts it matches
	// ErrCaseTimeout; for panics it carries the recovered panic value.
	Err error
	// Panicked is set when any attempt panicked (the worker recovered and,
	// if needed, rebuilt its state).
	Panicked bool
	// TimedOut is set when the final attempt exceeded Options.CaseTimeout.
	TimedOut bool
	// Attempts logs every attempt's outcome in order, e.g.
	// "attempt 1/2: panic: boom".
	Attempts []string
}

// String renders the failure for logs: case index, classification and the
// final error.
func (f CaseFailure) String() string {
	kind := "error"
	switch {
	case f.Panicked && f.TimedOut:
		kind = "panic+timeout"
	case f.Panicked:
		kind = "panic"
	case f.TimedOut:
		kind = "timeout"
	}
	return fmt.Sprintf("case %d [%s, %d attempt(s)]: %v", f.Index, kind, len(f.Attempts), f.Err)
}

// FailureReport is the typed account of what went wrong in a sweep that
// kept going: the quarantined cases (ascending index) and any workers lost
// to unrecoverable panics. A nil *FailureReport means the sweep saw no
// case failures.
type FailureReport struct {
	// Total is the sweep's case count.
	Total int
	// Failures holds the quarantined cases in ascending index order.
	Failures []CaseFailure
	// WorkersLost counts workers that exited early because their state
	// could not be rebuilt after a panic (or never built at all).
	WorkersLost int
}

// Quarantined returns the number of quarantined cases.
func (r *FailureReport) Quarantined() int {
	if r == nil {
		return 0
	}
	return len(r.Failures)
}

// Case returns the failure record for case index i, if it was quarantined.
func (r *FailureReport) Case(i int) (CaseFailure, bool) {
	if r == nil {
		return CaseFailure{}, false
	}
	for _, f := range r.Failures {
		if f.Index == i {
			return f, true
		}
	}
	return CaseFailure{}, false
}

// String renders a compact multi-line report for terminal output.
func (r *FailureReport) String() string {
	if r.Quarantined() == 0 && (r == nil || r.WorkersLost == 0) {
		return "no case failures"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d case(s) quarantined", len(r.Failures), r.Total)
	if r.WorkersLost > 0 {
		fmt.Fprintf(&b, ", %d worker(s) lost", r.WorkersLost)
	}
	for _, f := range r.Failures {
		b.WriteString("\n  ")
		b.WriteString(f.String())
	}
	return b.String()
}

// caseOutcome is the result of running one case through the resilience
// machinery: exactly one of value (success), failure (quarantinable), or
// cancel (the parent context died mid-case) applies.
type caseOutcome[R any] struct {
	value   R
	failure *CaseFailure
	cancel  error
	// workerDead is set alongside failure when a panic destroyed the
	// worker state and the factory could not rebuild it; the worker must
	// exit.
	workerDead bool
}

// attemptCase executes a single attempt of case i with panic containment
// and fault-injection hooks. The returned error carries the panic value
// when panicked is set; stack holds a trimmed goroutine stack for the
// attempt log.
func attemptCase[W, R any](ctx context.Context, opts Options, i int, state W,
	do func(context.Context, int, W) (R, error)) (r R, err error, panicked bool, stack string) {

	defer func() {
		if p := recover(); p != nil {
			panicked = true
			stack = trimStack(debug.Stack())
			err = fmt.Errorf("sweep: case %d panicked: %v", i, p)
		}
	}()
	opts.Inject.StallPoint(ctx)
	if opts.Inject.PanicsWorker() {
		panic(fmt.Sprintf("injected worker panic (case %d)", i))
	}
	r, err = do(ctx, i, state)
	return r, err, false, ""
}

// trimStack keeps the first few frames of a panic stack — enough to name
// the site without flooding an attempt log.
func trimStack(s []byte) string {
	lines := strings.Split(strings.TrimSpace(string(s)), "\n")
	if len(lines) > 9 {
		lines = lines[:9]
	}
	return strings.Join(lines, "\n")
}

// runCase executes case i with the full resilience ladder: per-attempt
// deadline (Options.CaseTimeout), panic recovery with worker-state rebuild,
// and up to Options.CaseRetries retries. rebuild re-invokes the worker
// factory after a panic, because a panic mid-case may have left the
// worker-private state (a simulator mid-assembly) unusable.
//
// The returned state is the (possibly rebuilt) worker state the caller
// must carry forward.
func runCase[W, R any](ctx context.Context, opts Options, i int, state W,
	rebuild func() (W, error),
	do func(context.Context, int, W) (R, error)) (caseOutcome[R], W) {

	attempts := 1 + opts.CaseRetries
	if attempts < 1 {
		attempts = 1
	}
	ctx, root := opts.Tracer.Root(ctx, "sweep.case", i)
	defer root.End()
	fail := CaseFailure{Index: i}
	for a := 0; a < attempts; a++ {
		caseCtx, cancel := ctx, context.CancelFunc(func() {})
		if opts.CaseTimeout > 0 {
			caseCtx, cancel = context.WithTimeout(ctx, opts.CaseTimeout)
		}
		r, err, panicked, stack := attemptCase(caseCtx, opts, i, state, do)
		timedOut := caseCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil
		cancel()

		if err == nil {
			root.SetAttr(trace.String("status", "ok"), trace.Int("attempts", a+1))
			return caseOutcome[R]{value: r}, state
		}
		if ctx.Err() != nil && !panicked {
			// The parent died while the case ran: this is a sweep
			// cancellation, not a case failure.
			root.SetAttr(trace.String("status", "canceled"))
			return caseOutcome[R]{cancel: err}, state
		}
		switch {
		case panicked:
			fail.Panicked = true
			opts.Telemetry.Counter("sweep.worker_panics").Inc()
			note := fmt.Sprintf("attempt %d/%d: %v", a+1, attempts, err)
			if stack != "" {
				note += "\n    " + strings.ReplaceAll(stack, "\n", "\n    ")
			}
			fail.Attempts = append(fail.Attempts, note)
		case timedOut:
			fail.TimedOut = true
			opts.Telemetry.Counter("sweep.case_timeouts").Inc()
			// %v (not %w) on the underlying error: it usually wraps the
			// deadline's context error, which must not make the timeout
			// match telemetry.ErrCanceled.
			err = fmt.Errorf("%w: case %d exceeded %v (%v)", ErrCaseTimeout, i, opts.CaseTimeout, err)
			fail.Attempts = append(fail.Attempts, fmt.Sprintf("attempt %d/%d: timeout after %v", a+1, attempts, opts.CaseTimeout))
		default:
			fail.TimedOut = false
			fail.Attempts = append(fail.Attempts, fmt.Sprintf("attempt %d/%d: %v", a+1, attempts, err))
		}
		fail.Err = err

		if panicked {
			// The panic may have corrupted the worker-private state
			// (half-assembled matrices, dangling history). Rebuild it
			// before any further attempt or case.
			ns, rerr := rebuild()
			if rerr != nil {
				fail.Err = fmt.Errorf("sweep: case %d: worker state rebuild after panic failed: %w (panic: %v)", i, rerr, err)
				fail.Attempts = append(fail.Attempts, fmt.Sprintf("rebuild: %v", rerr))
				failSpan(root, fail)
				logQuarantine(ctx, fail)
				return caseOutcome[R]{failure: &fail, workerDead: true}, state
			}
			state = ns
		}
		if a+1 < attempts {
			opts.Telemetry.Counter("sweep.case_retries").Inc()
			root.Event("sweep.retry", trace.Int("attempt", a+2))
		}
	}
	failSpan(root, fail)
	logQuarantine(ctx, fail)
	return caseOutcome[R]{failure: &fail}, state
}

// logQuarantine emits the structured quarantine event; the correlation ID
// (the owning job, when run under one) rides in from the context.
func logQuarantine(ctx context.Context, fail CaseFailure) {
	logctx.From(ctx).Warn("case quarantined",
		"case", fail.Index,
		"panicked", fail.Panicked,
		"timed_out", fail.TimedOut,
		"attempts", len(fail.Attempts),
		"err", fail.Err.Error(),
	)
}

// failSpan annotates a case root span with the failure record; the
// "failure" attr is the quarantine marker downstream consumers key on.
func failSpan(root *trace.Span, fail CaseFailure) {
	root.SetAttr(
		trace.String("status", "failed"),
		trace.String("failure", fail.Err.Error()),
		trace.Bool("panicked", fail.Panicked),
		trace.Bool("timed_out", fail.TimedOut),
		trace.Int("attempts", len(fail.Attempts)),
	)
}
