package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// noState is the worker factory for stateless tests.
func noState(int) (struct{}, error) { return struct{}{}, nil }

// TestOrderingDeterminism: results must come back indexed by case, not by
// completion order, even when workers finish in a scrambled sequence.
func TestOrderingDeterminism(t *testing.T) {
	const n = 64
	got, err := Run(context.Background(), n, Options{Workers: 8}, noState,
		func(_ context.Context, i int, _ struct{}) (int, error) {
			// Pseudo-random per-case delay scrambles completion order
			// deterministically (no global rand, no shared state).
			d := time.Duration(rand.New(rand.NewSource(int64(i)*2654435761)).Intn(3)) * time.Millisecond
			time.Sleep(d)
			return i * i, nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range got {
		if r != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, r, i*i)
		}
	}
}

// TestWorkerState: every case must run with the state of exactly one
// worker, and no more workers than requested may be created.
func TestWorkerState(t *testing.T) {
	const n, workers = 32, 4
	var created int32
	seen := make([]int32, workers)
	_, err := Run(context.Background(), n, Options{Workers: workers},
		func(w int) (int, error) {
			atomic.AddInt32(&created, 1)
			return w, nil
		},
		func(_ context.Context, i int, w int) (int, error) {
			atomic.AddInt32(&seen[w], 1)
			return i, nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if created > workers {
		t.Errorf("created %d worker states, want <= %d", created, workers)
	}
	var total int32
	for _, c := range seen {
		total += c
	}
	if total != n {
		t.Errorf("workers executed %d cases, want %d", total, n)
	}
}

// TestErrorCancelsDispatch: the first case error must stop the dispatch of
// not-yet-started cases and be returned to the caller.
func TestErrorCancelsDispatch(t *testing.T) {
	const n = 200
	boom := errors.New("boom")
	var started int32
	_, err := Run(context.Background(), n, Options{Workers: 4}, noState,
		func(ctx context.Context, i int, _ struct{}) (int, error) {
			atomic.AddInt32(&started, 1)
			if i == 5 {
				return 0, fmt.Errorf("case 5: %w", boom)
			}
			// Non-failing cases take long enough that cancellation
			// happens while most of the sweep is still undispatched.
			select {
			case <-ctx.Done():
			case <-time.After(20 * time.Millisecond):
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want wrapped %v", err, boom)
	}
	if s := atomic.LoadInt32(&started); s >= n {
		t.Errorf("all %d cases were dispatched despite early error", s)
	}
}

// TestLowestErrorIndexWins: when several cases fail, the reported error is
// the one with the lowest case index, making failures deterministic.
func TestLowestErrorIndexWins(t *testing.T) {
	const n = 16
	var wg sync.WaitGroup
	wg.Add(n) // hold every case open until all have started
	_, err := Run(context.Background(), n, Options{Workers: n}, noState,
		func(_ context.Context, i int, _ struct{}) (int, error) {
			wg.Done()
			wg.Wait()
			if i%2 == 1 {
				return 0, fmt.Errorf("case %d failed", i)
			}
			return i, nil
		})
	if err == nil || err.Error() != "case 1 failed" {
		t.Fatalf("Run error = %v, want case 1 failed", err)
	}
}

// TestWorkerFactoryError: a failing worker factory aborts the sweep.
func TestWorkerFactoryError(t *testing.T) {
	bad := errors.New("no simulator")
	_, err := Run(context.Background(), 8, Options{Workers: 2},
		func(w int) (struct{}, error) {
			if w == 1 {
				return struct{}{}, bad
			}
			return struct{}{}, nil
		},
		func(_ context.Context, i int, _ struct{}) (int, error) { return i, nil })
	if !errors.Is(err, bad) {
		t.Fatalf("Run error = %v, want %v", err, bad)
	}
}

// TestProgressSerialized: done counts must be strictly increasing and end
// at n — the callback contract that lets cmd/repro print without locks.
func TestProgressSerialized(t *testing.T) {
	const n = 50
	var calls []int
	_, err := Run(context.Background(), n, Options{
		Workers:  8,
		Progress: func(done, total int) { calls = append(calls, done) }, // serialized by Run
	}, noState,
		func(_ context.Context, i int, _ struct{}) (int, error) { return i, nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(calls) != n {
		t.Fatalf("%d progress calls, want %d", len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress call %d reported done=%d, want %d", i, d, i+1)
		}
	}
}

// TestParentCancellation: canceling the parent context stops the sweep
// with a context error.
func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	go func() {
		for atomic.LoadInt32(&started) == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, err := Run(ctx, 100, Options{Workers: 2}, noState,
		func(ctx context.Context, i int, _ struct{}) (int, error) {
			atomic.AddInt32(&started, 1)
			select {
			case <-ctx.Done():
			case <-time.After(10 * time.Millisecond):
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

// TestSequentialOracle: Sequential and Run(workers=1) agree with each
// other and with the obvious loop.
func TestSequentialOracle(t *testing.T) {
	const n = 20
	do := func(_ context.Context, i int, _ struct{}) (int, error) { return 3*i + 1, nil }
	seq, err := Sequential(context.Background(), n, Options{}, noState, do)
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	par, err := Run(context.Background(), n, Options{Workers: 1}, noState, do)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range seq {
		if seq[i] != 3*i+1 || par[i] != seq[i] {
			t.Fatalf("index %d: sequential %d parallel %d want %d", i, seq[i], par[i], 3*i+1)
		}
	}
}

// TestZeroCases: an empty sweep returns an empty, non-nil result.
func TestZeroCases(t *testing.T) {
	got, err := Run(context.Background(), 0, Options{}, noState,
		func(_ context.Context, i int, _ struct{}) (int, error) { return i, nil })
	if err != nil || got == nil || len(got) != 0 {
		t.Fatalf("Run(0 cases) = %v, %v; want empty slice, nil error", got, err)
	}
}
