package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"noisewave/internal/faultinject"
	"noisewave/internal/telemetry"
)

// TestChaosWorkerPanicQuarantines: injected worker panics are recovered —
// the process never crashes — and with KeepGoing the affected cases are
// quarantined with a panic-tagged failure record while every other case
// completes.
func TestChaosWorkerPanicQuarantines(t *testing.T) {
	const n = 24
	inj := faultinject.New(faultinject.Config{Seed: 3, PanicEvery: 5, PanicMax: 2})
	reg := telemetry.New()
	results, completed, report, err := RunPartial(context.Background(), n,
		Options{Workers: 4, KeepGoing: true, Inject: inj, Telemetry: reg}, noState,
		func(ctx context.Context, i int, _ struct{}) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatalf("KeepGoing sweep errored: %v", err)
	}
	if got := report.Quarantined(); got != 2 {
		t.Fatalf("quarantined %d cases, want 2: %v", got, report)
	}
	for _, f := range report.Failures {
		if !f.Panicked {
			t.Errorf("quarantined case %d not marked Panicked: %v", f.Index, f)
		}
		if len(f.Attempts) == 0 {
			t.Errorf("case %d has an empty attempt log", f.Index)
		}
		if completed[f.Index] {
			t.Errorf("quarantined case %d also marked completed", f.Index)
		}
	}
	nDone := 0
	for i, ok := range completed {
		if ok {
			nDone++
			if results[i] != i*i {
				t.Errorf("results[%d] = %d, want %d", i, results[i], i*i)
			}
		}
	}
	if nDone != n-2 {
		t.Errorf("%d cases completed, want %d", nDone, n-2)
	}
	snap := reg.Snapshot()
	if snap.Counters["sweep.worker_panics"] != 2 {
		t.Errorf("sweep.worker_panics = %d, want 2", snap.Counters["sweep.worker_panics"])
	}
	if snap.Counters["sweep.cases_quarantined"] != 2 {
		t.Errorf("sweep.cases_quarantined = %d, want 2", snap.Counters["sweep.cases_quarantined"])
	}
}

// TestChaosDisablesBatching: an armed fault injector forces RunBatchedPartial
// onto the scalar path — group dispatch would route around the per-case
// injection points (stalls, worker panics) in the scalar worker loop, so
// chaos drills must behave identically at any batch size.
func TestChaosDisablesBatching(t *testing.T) {
	const n = 24
	inj := faultinject.New(faultinject.Config{Seed: 3, PanicEvery: 5, PanicMax: 2})
	reg := telemetry.New()
	var groupCalls atomic.Int64
	results, completed, report, err := RunBatchedPartial(context.Background(), n, 4,
		Options{Workers: 4, KeepGoing: true, Inject: inj, Telemetry: reg}, noState,
		func(ctx context.Context, lo, hi int, _ struct{}, deliver DeliverFunc[int]) error {
			groupCalls.Add(1)
			for i := lo; i < hi; i++ {
				deliver(i, i*i, nil)
			}
			return nil
		},
		func(ctx context.Context, i int, _ struct{}) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatalf("KeepGoing batched sweep errored: %v", err)
	}
	if groupCalls.Load() != 0 {
		t.Errorf("group function called %d times with chaos armed, want 0", groupCalls.Load())
	}
	if got := report.Quarantined(); got != 2 {
		t.Fatalf("quarantined %d cases, want 2 (same as the scalar drill): %v", got, report)
	}
	nDone := 0
	for i, ok := range completed {
		if ok {
			nDone++
			if results[i] != i*i {
				t.Errorf("results[%d] = %d, want %d", i, results[i], i*i)
			}
		}
	}
	if nDone != n-2 {
		t.Errorf("%d cases completed, want %d", nDone, n-2)
	}
	snap := reg.Snapshot()
	if snap.Counters["sweep.worker_panics"] != 2 {
		t.Errorf("sweep.worker_panics = %d, want 2", snap.Counters["sweep.worker_panics"])
	}
	if snap.Counters["sweep.batch.groups"] != 0 {
		t.Errorf("sweep.batch.groups = %d, want 0 with chaos armed", snap.Counters["sweep.batch.groups"])
	}
}

// TestChaosPanicRetryRebuildsWorker: a case that panics once succeeds on
// its retry, and the worker state is rebuilt through the factory before
// the retry runs.
func TestChaosPanicRetryRebuildsWorker(t *testing.T) {
	var builds, tries atomic.Int64
	results, completed, report, err := RunPartial(context.Background(), 6,
		Options{Workers: 2, KeepGoing: true, CaseRetries: 1},
		func(w int) (int, error) { builds.Add(1); return w, nil },
		func(ctx context.Context, i int, _ int) (int, error) {
			if i == 3 && tries.Add(1) == 1 {
				panic("transient corruption")
			}
			return i, nil
		})
	if err != nil {
		t.Fatalf("sweep errored: %v", err)
	}
	if report.Quarantined() != 0 {
		t.Fatalf("retryable panic still quarantined: %v", report)
	}
	if !completed[3] || results[3] != 3 {
		t.Errorf("case 3 not recovered by retry: completed=%v r=%d", completed[3], results[3])
	}
	if builds.Load() != 3 { // 2 workers + 1 rebuild after the panic
		t.Errorf("worker factory ran %d times, want 3 (2 workers + 1 rebuild)", builds.Load())
	}
}

// TestChaosStallTimeoutQuarantines: an injected stall trips the per-case
// deadline; the case is quarantined as a timeout (matching ErrCaseTimeout,
// NOT telemetry.ErrCanceled) and the sweep still completes the rest
// promptly.
func TestChaosStallTimeoutQuarantines(t *testing.T) {
	const n = 8
	inj := faultinject.New(faultinject.Config{StallEvery: 1, StallMax: 1, StallFor: time.Hour})
	start := time.Now()
	_, completed, report, err := RunPartial(context.Background(), n,
		Options{Workers: 2, KeepGoing: true, CaseTimeout: 50 * time.Millisecond, Inject: inj}, noState,
		func(ctx context.Context, i int, _ struct{}) (int, error) {
			if ctx.Err() != nil {
				return 0, telemetry.Canceled(ctx, "case %d interrupted", i)
			}
			return i, nil
		})
	if err != nil {
		t.Fatalf("KeepGoing sweep errored: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled sweep took %v; deadline not enforced", elapsed)
	}
	if report.Quarantined() != 1 {
		t.Fatalf("quarantined %d cases, want 1: %v", report.Quarantined(), report)
	}
	f := report.Failures[0]
	if !f.TimedOut {
		t.Errorf("stalled case not marked TimedOut: %v", f)
	}
	if !errors.Is(f.Err, ErrCaseTimeout) {
		t.Errorf("failure %v does not match ErrCaseTimeout", f.Err)
	}
	if errors.Is(f.Err, telemetry.ErrCanceled) {
		t.Error("case timeout masquerades as sweep cancellation")
	}
	nDone := 0
	for _, ok := range completed {
		if ok {
			nDone++
		}
	}
	if nDone != n-1 {
		t.Errorf("%d cases completed, want %d", nDone, n-1)
	}
}

// TestCaseTimeoutAbortsWithoutKeepGoing: without KeepGoing a timed-out
// case stops the sweep with ErrCaseTimeout — still distinct from a
// cancellation — and the completed subset is retained.
func TestCaseTimeoutAbortsWithoutKeepGoing(t *testing.T) {
	_, completed, report, err := SequentialPartial(context.Background(), 6,
		Options{CaseTimeout: 30 * time.Millisecond}, noState,
		func(ctx context.Context, i int, _ struct{}) (int, error) {
			if i == 2 {
				<-ctx.Done()
				return 0, telemetry.Canceled(ctx, "case %d interrupted", i)
			}
			return i, nil
		})
	if !errors.Is(err, ErrCaseTimeout) {
		t.Fatalf("err = %v, want ErrCaseTimeout", err)
	}
	if errors.Is(err, telemetry.ErrCanceled) {
		t.Error("timeout error masquerades as cancellation")
	}
	if !completed[0] || !completed[1] || completed[2] {
		t.Errorf("completed = %v, want prefix [0,1]", completed)
	}
	if f, ok := report.Case(2); !ok || !f.TimedOut {
		t.Errorf("report does not name timed-out case 2: %v", report)
	}
}

// TestKeepGoingCompletesRemaining: plain case errors are quarantined and
// every other case still runs; progress counts quarantined cases so the
// bar reaches n.
func TestKeepGoingCompletesRemaining(t *testing.T) {
	const n = 15
	boom := errors.New("boom")
	var lastDone atomic.Int64
	results, completed, report, err := RunPartial(context.Background(), n,
		Options{Workers: 3, KeepGoing: true, Progress: func(done, total int) { lastDone.Store(int64(done)) }},
		noState,
		func(ctx context.Context, i int, _ struct{}) (int, error) {
			if i%5 == 0 {
				return 0, fmt.Errorf("case %d: %w", i, boom)
			}
			return i + 1, nil
		})
	if err != nil {
		t.Fatalf("KeepGoing sweep errored: %v", err)
	}
	if report.Quarantined() != 3 {
		t.Fatalf("quarantined %d, want 3: %v", report.Quarantined(), report)
	}
	for _, idx := range []int{0, 5, 10} {
		f, ok := report.Case(idx)
		if !ok || !errors.Is(f.Err, boom) {
			t.Errorf("report missing case %d: %v", idx, report)
		}
	}
	for i := 0; i < n; i++ {
		if i%5 == 0 {
			if completed[i] {
				t.Errorf("failing case %d marked completed", i)
			}
			continue
		}
		if !completed[i] || results[i] != i+1 {
			t.Errorf("case %d: completed=%v r=%d", i, completed[i], results[i])
		}
	}
	if lastDone.Load() != n {
		t.Errorf("final progress done=%d, want %d (quarantined cases count)", lastDone.Load(), n)
	}
}

// TestSequentialKeepGoingPanic: the sequential oracle has the same
// quarantine semantics, including worker-state rebuild after a panic.
func TestSequentialKeepGoingPanic(t *testing.T) {
	builds := 0
	results, completed, report, err := SequentialPartial(context.Background(), 5,
		Options{KeepGoing: true},
		func(int) (int, error) { builds++; return 0, nil },
		func(ctx context.Context, i int, _ int) (int, error) {
			if i == 1 {
				panic("boom")
			}
			return i * 10, nil
		})
	if err != nil {
		t.Fatalf("sweep errored: %v", err)
	}
	if report.Quarantined() != 1 || !report.Failures[0].Panicked {
		t.Fatalf("report = %v, want one panicked quarantine", report)
	}
	if builds != 2 {
		t.Errorf("factory ran %d times, want 2 (initial + rebuild)", builds)
	}
	for _, i := range []int{0, 2, 3, 4} {
		if !completed[i] || results[i] != i*10 {
			t.Errorf("case %d lost: completed=%v r=%d", i, completed[i], results[i])
		}
	}
}

// TestChaosAllWorkersLost: when every worker dies unrecoverably (panic and
// the factory cannot rebuild), the sweep returns ErrWorkersLost instead of
// deadlocking, and the report counts the lost workers.
func TestChaosAllWorkersLost(t *testing.T) {
	var builds atomic.Int64
	_, _, report, err := RunPartial(context.Background(), 12,
		Options{Workers: 2, KeepGoing: true},
		func(w int) (int, error) {
			if builds.Add(1) > 2 {
				return 0, errors.New("allocator down")
			}
			return w, nil
		},
		func(ctx context.Context, i int, _ int) (int, error) { panic("always") })
	if !errors.Is(err, ErrWorkersLost) {
		t.Fatalf("err = %v, want ErrWorkersLost", err)
	}
	if report == nil || report.WorkersLost != 2 {
		t.Fatalf("report = %v, want 2 workers lost", report)
	}
}

// TestGaugesResetAndFinalProgressOnError: an aborting sweep must leave the
// pool/queue gauges at zero and emit one final serialized Progress call so
// displays can settle.
func TestGaugesResetAndFinalProgressOnError(t *testing.T) {
	reg := telemetry.New()
	type call struct{ done, total int }
	var calls []call
	_, completed, _, err := RunPartial(context.Background(), 16,
		Options{Workers: 2, Telemetry: reg, Progress: func(done, total int) {
			calls = append(calls, call{done, total}) // serialized by the sweep
		}}, noState,
		func(ctx context.Context, i int, _ struct{}) (int, error) {
			if i == 4 {
				return 0, errors.New("boom")
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("expected case error")
	}
	snap := reg.Snapshot()
	if snap.Gauges["sweep.pool_size"] != 0 || snap.Gauges["sweep.queue_depth"] != 0 {
		t.Errorf("gauges not reset on error exit: pool=%g queue=%g",
			snap.Gauges["sweep.pool_size"], snap.Gauges["sweep.queue_depth"])
	}
	if len(calls) == 0 {
		t.Fatal("no final progress call on early exit")
	}
	nDone := 0
	for _, ok := range completed {
		if ok {
			nDone++
		}
	}
	last := calls[len(calls)-1]
	if last.done != nDone || last.total != 16 {
		t.Errorf("final progress (%d,%d), want (%d,16)", last.done, last.total, nDone)
	}

	// Same contract on the sequential early-cancel path (the historical
	// stale-gauge bug).
	reg2 := telemetry.New()
	ctx, cancel := context.WithCancel(context.Background())
	_, _, _, err = SequentialPartial(ctx, 10, Options{Telemetry: reg2}, noState,
		func(ctx context.Context, i int, _ struct{}) (int, error) {
			if i == 3 {
				cancel()
			}
			return i, nil
		})
	if !errors.Is(err, telemetry.ErrCanceled) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	snap2 := reg2.Snapshot()
	if snap2.Gauges["sweep.pool_size"] != 0 || snap2.Gauges["sweep.queue_depth"] != 0 {
		t.Errorf("sequential gauges not reset on cancel: pool=%g queue=%g",
			snap2.Gauges["sweep.pool_size"], snap2.Gauges["sweep.queue_depth"])
	}
}

// TestFailureReportString: the report renders the case index,
// classification and attempt count.
func TestFailureReportString(t *testing.T) {
	r := &FailureReport{Total: 10, Failures: []CaseFailure{
		{Index: 4, Err: errors.New("boom"), TimedOut: true, Attempts: []string{"attempt 1/1: timeout"}},
	}, WorkersLost: 1}
	s := r.String()
	for _, want := range []string{"1/10", "case 4", "timeout", "1 worker(s) lost"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
	var nilReport *FailureReport
	if nilReport.Quarantined() != 0 {
		t.Error("nil report not nil-safe")
	}
	if _, ok := nilReport.Case(0); ok {
		t.Error("nil report claims a case")
	}
}
