package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"noisewave/internal/telemetry"
)

// TestRunPartialCancellation: at every worker count, canceling mid-sweep
// must surface the completed subset, flag exactly those indices, and return
// an error matching telemetry.ErrCanceled.
func TestRunPartialCancellation(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n, stopAfter = 64, 5
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var done atomic.Int64
			results, completed, _, err := RunPartial(ctx, n, Options{Workers: workers}, noState,
				func(ctx context.Context, i int, _ struct{}) (int, error) {
					if done.Add(1) == stopAfter {
						cancel()
					}
					return i * i, nil
				})
			if err == nil {
				t.Fatal("nil error from canceled sweep")
			}
			if !errors.Is(err, telemetry.ErrCanceled) {
				t.Errorf("error %v does not match telemetry.ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("error %v does not match context.Canceled", err)
			}
			if len(results) != n || len(completed) != n {
				t.Fatalf("len(results)=%d len(completed)=%d, want %d", len(results), len(completed), n)
			}
			nDone := 0
			for i, ok := range completed {
				if ok {
					nDone++
					if results[i] != i*i {
						t.Errorf("completed case %d holds %d, want %d", i, results[i], i*i)
					}
				} else if results[i] != 0 {
					t.Errorf("incomplete case %d holds %d, want zero value", i, results[i])
				}
			}
			if nDone < stopAfter || nDone == n {
				t.Errorf("%d cases completed, want partial coverage in [%d, %d)", nDone, stopAfter, n)
			}
		})
	}
}

// TestSequentialPartialCancellation: the sequential oracle completes the
// exact prefix before the cancellation point and nothing after it.
func TestSequentialPartialCancellation(t *testing.T) {
	const n, stopAfter = 20, 5
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	results, completed, _, err := SequentialPartial(ctx, n, Options{}, noState,
		func(ctx context.Context, i int, _ struct{}) (int, error) {
			calls++
			if calls == stopAfter {
				cancel()
			}
			return i + 100, nil
		})
	if !errors.Is(err, telemetry.ErrCanceled) {
		t.Fatalf("error %v does not match telemetry.ErrCanceled", err)
	}
	if calls != stopAfter {
		t.Errorf("do ran %d times, want exactly %d", calls, stopAfter)
	}
	for i := 0; i < n; i++ {
		wantDone := i < stopAfter
		if completed[i] != wantDone {
			t.Errorf("completed[%d] = %v, want %v", i, completed[i], wantDone)
		}
		if wantDone && results[i] != i+100 {
			t.Errorf("results[%d] = %d, want %d", i, results[i], i+100)
		}
	}
}

// TestSweepTelemetryComparable: the pool and the sequential oracle record
// the same completion counter and pool-size gauge semantics, so throughput
// derived from a snapshot is comparable across worker counts.
func TestSweepTelemetryComparable(t *testing.T) {
	const n = 24
	for _, tc := range []struct {
		name    string
		workers int
		run     func(reg *telemetry.Registry) error
	}{
		{"sequential", 1, func(reg *telemetry.Registry) error {
			_, _, _, err := SequentialPartial(context.Background(), n, Options{Telemetry: reg}, noState,
				func(ctx context.Context, i int, _ struct{}) (int, error) { return i, nil })
			return err
		}},
		{"pool", 4, func(reg *telemetry.Registry) error {
			_, _, _, err := RunPartial(context.Background(), n, Options{Workers: 4, Telemetry: reg}, noState,
				func(ctx context.Context, i int, _ struct{}) (int, error) { return i, nil })
			return err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.New()
			if err := tc.run(reg); err != nil {
				t.Fatalf("sweep: %v", err)
			}
			snap := reg.Snapshot()
			if got := snap.Counters["sweep.cases_completed"]; got != n {
				t.Errorf("sweep.cases_completed = %d, want %d", got, n)
			}
			if got := snap.Counters["sweep.cases_dispatched"]; got != n {
				t.Errorf("sweep.cases_dispatched = %d, want %d", got, n)
			}
			// Both gauges are reset on exit: a post-sweep snapshot must
			// not claim a live pool or a pending queue.
			if got := snap.Gauges["sweep.pool_size"]; got != 0 {
				t.Errorf("sweep.pool_size = %g at exit, want 0", got)
			}
			if got := snap.Gauges["sweep.queue_depth"]; got != 0 {
				t.Errorf("sweep.queue_depth = %g at exit, want 0", got)
			}
			// Per-worker case counts must add up to the total.
			var perWorker int64
			for name, v := range snap.Counters {
				if len(name) > 13 && name[:13] == "sweep.worker." && name[len(name)-6:] == ".cases" {
					perWorker += v
				}
			}
			if perWorker != n {
				t.Errorf("per-worker case counts sum to %d, want %d", perWorker, n)
			}
		})
	}
}

// TestRunPartialCaseError: a case failure keeps the other completed cases
// and returns the original (non-cancellation) error.
func TestRunPartialCaseError(t *testing.T) {
	boom := errors.New("boom")
	results, completed, report, err := RunPartial(context.Background(), 8, Options{Workers: 2}, noState,
		func(ctx context.Context, i int, _ struct{}) (int, error) {
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if errors.Is(err, telemetry.ErrCanceled) {
		t.Error("case failure must not masquerade as a cancellation")
	}
	if completed[3] {
		t.Error("failing case marked completed")
	}
	for i, ok := range completed {
		if ok && results[i] != i {
			t.Errorf("results[%d] = %d, want %d", i, results[i], i)
		}
	}
	// Even without KeepGoing the report names the case that aborted.
	if f, ok := report.Case(3); !ok || !errors.Is(f.Err, boom) {
		t.Errorf("failure report does not name case 3: %v", report)
	}
}
