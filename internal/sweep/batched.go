package sweep

// Batched dispatch: the case space is cut into contiguous groups of up to
// `batch` cases and each group is handed to a group function that may solve
// its cases in lockstep (the spice batch engine's shared-trunk transient).
// The scalar per-case function remains the semantic ground truth: any case
// the group function fails to deliver — or delivers with an error — is
// re-run through the ordinary resilience machinery (retries, timeout,
// quarantine), so batching can only change wall-clock time, never results.
// The engine guarantees batched results are bit-identical to scalar ones,
// and the sweep aggregates by case index, so any worker × batch combination
// produces identical statistics.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"noisewave/internal/telemetry"
	"noisewave/internal/trace"
)

// DeliverFunc hands one case's outcome from a group function back to the
// sweep: a result r (when err is nil) or a per-case error. Deliveries for
// indices outside the group, or repeated deliveries for one index, are
// ignored.
type DeliverFunc[R any] func(i int, r R, err error)

// GroupFunc evaluates the contiguous cases [lo, hi) against worker-private
// state, delivering per-case outcomes as they settle. Cases not delivered
// when it returns — and cases delivered with an error — fall back to the
// scalar path. A returned error matching telemetry.ErrCanceled aborts the
// sweep; any other return value just routes the group's unsettled cases to
// the scalar path.
type GroupFunc[W, R any] func(ctx context.Context, lo, hi int, state W, deliver DeliverFunc[R]) error

// RunBatchedPartial is RunPartial with group dispatch: cases are dispatched
// to workers in contiguous groups of up to batch indices, each first offered
// to doGroup, with do as the scalar fallback (and the only path that can
// quarantine or retry a case). batch <= 1 degenerates to RunPartial, as does
// an armed fault injector: chaos mode is a drill of the scalar resilience
// ladder, whose per-case injection points (stalls, worker panics) sit in the
// scalar worker loop — group dispatch would route around them.
//
// The partial-results contract is RunPartial's. Progress is still per case,
// but settles in delivery order within a group rather than strict index
// order.
func RunBatchedPartial[W, R any](ctx context.Context, n, batch int, opts Options,
	newWorker func(worker int) (W, error),
	doGroup GroupFunc[W, R],
	do func(ctx context.Context, i int, state W) (R, error)) (results []R, completed []bool, report *FailureReport, err error) {

	if batch <= 1 || opts.Inject != nil {
		return RunPartial(ctx, n, opts, newWorker, do)
	}
	if n < 0 {
		return nil, nil, nil, fmt.Errorf("sweep: negative case count %d", n)
	}
	results = make([]R, n)
	completed = make([]bool, n)
	if n == 0 {
		return results, completed, nil, nil
	}
	groups := (n + batch - 1) / batch
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > groups {
		workers = groups
	}
	poolSize := opts.Telemetry.Gauge("sweep.pool_size")
	poolSize.Set(float64(workers))
	queueDepth := opts.Telemetry.Gauge("sweep.queue_depth")
	defer func() {
		poolSize.Set(0)
		queueDepth.Set(0)
	}()
	dispatched := opts.Telemetry.Counter("sweep.cases_dispatched")
	completedCtr := opts.Telemetry.Counter("sweep.cases_completed")
	quarantinedCtr := opts.Telemetry.Counter("sweep.cases_quarantined")
	groupsCtr := opts.Telemetry.Counter("sweep.batch.groups")
	fallbackCtr := opts.Telemetry.Counter("sweep.batch.fallback_cases")

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu          sync.Mutex
		firstErr    error
		errIdx      = n
		done        int
		failures    []CaseFailure
		workersLost int
		liveWorkers = workers
	)
	fail := func(idx int, err error) {
		mu.Lock()
		if firstErr == nil || idx < errIdx {
			firstErr, errIdx = err, idx
		}
		mu.Unlock()
		cancel()
	}
	complete := func() {
		mu.Lock()
		done++
		d := done
		if opts.Progress != nil {
			opts.Progress(d, n)
		}
		mu.Unlock()
	}
	quarantine := func(f CaseFailure) {
		mu.Lock()
		failures = append(failures, f)
		mu.Unlock()
		quarantinedCtr.Inc()
	}
	workerDown := func(cause error) {
		if !opts.KeepGoing {
			fail(-1, cause)
			return
		}
		mu.Lock()
		workersLost++
		liveWorkers--
		last := liveWorkers == 0
		mu.Unlock()
		if last {
			fail(-1, fmt.Errorf("%w (last worker: %v)", ErrWorkersLost, cause))
		}
	}

	groupIdx := make(chan int)
	go func() {
		defer close(groupIdx)
		queueDepth.Set(float64(n))
		for g := 0; g < groups; g++ {
			select {
			case groupIdx <- g:
				lo, hi := g*batch, (g+1)*batch
				if hi > n {
					hi = n
				}
				dispatched.Add(int64(hi - lo))
				queueDepth.Set(float64(n - hi))
			case <-ctx.Done():
				queueDepth.Set(0)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wCases, wBusy := opts.workerTelemetry(w)
			rebuild := func() (W, error) { return newWorker(w) }
			state, err := newWorker(w)
			if err != nil {
				workerDown(fmt.Errorf("sweep: worker %d: %w", w, err))
				return
			}
			for g := range groupIdx {
				lo, hi := g*batch, (g+1)*batch
				if hi > n {
					hi = n
				}
				groupsCtr.Inc()
				groupStart := time.Now()

				// Offer the group to the batched path. The group span
				// replaces the per-case roots for cases that settle here;
				// fallback cases get their usual "sweep.case" root below.
				gctx, gspan := opts.Tracer.Root(ctx, "sweep.batch_group", lo)
				gspan.SetAttr(trace.Int("group_lo", lo), trace.Int("group_hi", hi))
				settled := make([]bool, hi-lo)
				var fallback []int
				gerr := runGroupAttempt(gctx, doGroup, lo, hi, state, func(i int, r R, derr error) {
					if i < lo || i >= hi || settled[i-lo] {
						return
					}
					settled[i-lo] = true
					if derr != nil {
						fallback = append(fallback, i)
						return
					}
					results[i] = r
					completed[i] = true
					wCases.Inc()
					completedCtr.Inc()
					complete()
				})
				if gerr != nil && (ctx.Err() != nil || errors.Is(gerr, telemetry.ErrCanceled)) {
					gspan.SetAttr(trace.String("status", "canceled"))
					gspan.End()
					wBusy.Observe(time.Since(groupStart).Seconds())
					fail(lo, gerr)
					return
				}
				if gerr != nil {
					gspan.SetAttr(trace.String("status", "fallback"), trace.String("error", gerr.Error()))
					if p, ok := gerr.(*groupPanic); ok {
						// The panic may have corrupted the worker state;
						// rebuild before touching another case, as the
						// scalar path does.
						opts.Telemetry.Counter("sweep.worker_panics").Inc()
						ns, rerr := rebuild()
						if rerr != nil {
							gspan.End()
							workerDown(fmt.Errorf("sweep: worker %d state rebuild after group panic failed: %w (panic: %v)", w, rerr, p.value))
							return
						}
						state = ns
					}
				} else {
					gspan.SetAttr(trace.String("status", "ok"))
				}
				// Everything the group did not settle cleanly re-runs
				// through the scalar resilience path.
				for i := lo; i < hi; i++ {
					if !settled[i-lo] {
						fallback = append(fallback, i)
					}
				}
				gspan.SetAttr(trace.Int("fallback_cases", len(fallback)))
				gspan.End()

				abort := false
				for _, i := range fallback {
					fallbackCtr.Inc()
					out, ns := runCase(ctx, opts, i, state, rebuild, do)
					state = ns
					switch {
					case out.cancel != nil:
						fail(i, out.cancel)
						abort = true
					case out.failure != nil:
						if !opts.KeepGoing {
							mu.Lock()
							failures = append(failures, *out.failure)
							mu.Unlock()
							fail(i, out.failure.Err)
							abort = true
							break
						}
						quarantine(*out.failure)
						complete()
						if out.workerDead {
							workerDown(out.failure.Err)
							abort = true
						}
					default:
						results[i] = out.value
						completed[i] = true
						wCases.Inc()
						completedCtr.Inc()
						complete()
					}
					if abort {
						break
					}
				}
				wBusy.Observe(time.Since(groupStart).Seconds())
				if abort {
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if len(failures) > 0 || workersLost > 0 {
		sortFailures(failures)
		report = &FailureReport{Total: n, Failures: failures, WorkersLost: workersLost}
	}
	finalProgress := func() {
		if opts.Progress != nil {
			opts.Progress(done, n)
		}
	}
	if firstErr != nil {
		finalProgress()
		return results, completed, report, firstErr
	}
	if parent.Err() != nil {
		finalProgress()
		return results, completed, report, telemetry.Canceled(parent,
			"sweep: canceled after %d/%d cases", done, n)
	}
	return results, completed, report, nil
}

// groupPanic wraps a panic recovered from a group function so the worker
// loop can distinguish it (and rebuild its state) from an ordinary error.
type groupPanic struct{ value any }

func (p *groupPanic) Error() string { return fmt.Sprintf("sweep: batched group panicked: %v", p.value) }

// runGroupAttempt invokes the group function with panic containment:
// whatever it delivered before panicking stays settled, the rest falls back
// to the scalar path.
func runGroupAttempt[W, R any](ctx context.Context, doGroup GroupFunc[W, R],
	lo, hi int, state W, deliver DeliverFunc[R]) (err error) {

	defer func() {
		if p := recover(); p != nil {
			err = &groupPanic{value: p}
		}
	}()
	return doGroup(ctx, lo, hi, state, deliver)
}
