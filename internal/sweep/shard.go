// Sharding: a sweep's case space can be split into shards by a consistent
// hash on the case index and executed shard by shard — each shard is its
// own sub-sweep over the worker pool — with the shard results merged back
// at their global case indices. Because every result lands at its global
// index and aggregation downstream happens in index order, the merged
// output is bit-identical to a single unsharded sweep at any worker count
// and any shard count. The timing-as-a-service layer (internal/jobs) uses
// shards as its unit of scheduling and progress; the consistent hash means
// a given case always lands in the same shard regardless of how many cases
// the job carries per shard, so partial (per-shard) results are stable and
// mergeable across re-runs.
package sweep

import (
	"context"
	"fmt"
)

// ShardOf returns the shard that owns case index i among shards shards,
// using an FNV-1a hash of the index. The mapping depends only on (i,
// shards): re-running a job with the same shard count reproduces the same
// partition, so per-shard partial results are comparable across runs.
func ShardOf(i, shards int) int {
	if shards <= 1 {
		return 0
	}
	// FNV-1a over the index's little-endian bytes.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	v := uint64(i)
	for b := 0; b < 8; b++ {
		h ^= (v >> (8 * b)) & 0xff
		h *= prime64
	}
	return int(h % uint64(shards))
}

// ShardIndices partitions the case indices [0, n) into shards groups by
// ShardOf, preserving ascending index order within each shard. Empty shards
// are kept (as empty slices) so shard identity is stable.
func ShardIndices(n, shards int) [][]int {
	if shards < 1 {
		shards = 1
	}
	out := make([][]int, shards)
	for i := 0; i < n; i++ {
		s := ShardOf(i, shards)
		out[s] = append(out[s], i)
	}
	return out
}

// RunShardedPartial is RunPartial with the case space split into shards
// sub-sweeps executed one after another over the same worker pool. do
// always receives the global case index, results and completion flags are
// indexed globally, failure-report indices are global, and Progress reports
// the global settled count — so callers cannot tell a sharded run from an
// unsharded one except through per-worker telemetry (worker state is
// rebuilt per shard).
//
// An error in one shard stops the remaining shards; the merged partial
// results of every shard that ran are returned with it. shards <= 1
// delegates to RunPartial directly.
func RunShardedPartial[W, R any](ctx context.Context, n, shards int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) (results []R, completed []bool, report *FailureReport, err error) {

	if shards <= 1 {
		return RunPartial(ctx, n, opts, newWorker, do)
	}
	if n < 0 {
		return nil, nil, nil, fmt.Errorf("sweep: negative case count %d", n)
	}
	results = make([]R, n)
	completed = make([]bool, n)
	var allFailures []CaseFailure
	workersLost := 0
	settled := 0

	for _, indices := range ShardIndices(n, shards) {
		if len(indices) == 0 {
			continue
		}
		shardOpts := opts
		if opts.Progress != nil {
			// Report the global settled count: previous shards' settled
			// cases plus this shard's running count, over the global total.
			base := settled
			shardOpts.Progress = func(done, _ int) {
				opts.Progress(base+done, n)
			}
		}
		idx := indices
		shardDo := func(ctx context.Context, j int, state W) (R, error) {
			return do(ctx, idx[j], state)
		}
		res, comp, rep, rerr := RunPartial(ctx, len(idx), shardOpts, newWorker, shardDo)
		for j := range idx {
			if comp != nil && comp[j] {
				results[idx[j]] = res[j]
				completed[idx[j]] = true
				settled++
			}
		}
		if rep != nil {
			workersLost += rep.WorkersLost
			for _, f := range rep.Failures {
				f.Index = idx[f.Index] // remap to the global case index
				allFailures = append(allFailures, f)
				settled++ // quarantined cases count as settled for progress
			}
		}
		if rerr != nil {
			err = rerr
			break
		}
	}
	if len(allFailures) > 0 || workersLost > 0 {
		sortFailures(allFailures)
		report = &FailureReport{Total: n, Failures: allFailures, WorkersLost: workersLost}
	}
	return results, completed, report, err
}
