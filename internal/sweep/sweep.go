// Package sweep is the bounded worker-pool runner behind the paper's
// evaluation sweeps. The Table 1 accuracy sweep, the delay-noise (push-out)
// distribution and the §4.2 run-time drivers all evaluate a few hundred
// *independent* aggressor-alignment cases — a coupled-RC transient plus
// transistor-level Γeff replays per case — which the sequential drivers
// executed on one core. Run fans those cases out over GOMAXPROCS workers
// while preserving the sequential semantics the experiments rely on:
//
//   - Results are ordered by case index, so any order-dependent
//     aggregation (floating-point error sums, histograms) performed on the
//     returned slice is bit-identical to a sequential loop.
//   - Each worker owns private state built by a factory (the experiment
//     drivers allocate a core.GateSim — and therefore a spice.Simulator —
//     per worker, because the simulator is documented as not safe for
//     concurrent use).
//   - The first case error cancels the shared context, which stops the
//     dispatch of not-yet-started cases; in-flight cases drain. Among the
//     errors observed, the one with the lowest case index is returned, so
//     the reported failure is deterministic for deterministic case
//     functions.
//   - The progress callback is serialized: it never runs concurrently with
//     itself and sees a strictly increasing completed-case count.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Options configures a Run.
type Options struct {
	// Workers is the worker-pool size. Values <= 0 select
	// runtime.GOMAXPROCS(0). Workers == 1 still runs on the calling
	// goroutine's pool machinery but executes cases strictly in index
	// order, matching a plain loop.
	Workers int
	// Progress, if non-nil, is invoked after each completed case with the
	// number of completed cases and the total. Calls are serialized and
	// done is strictly increasing, so the callback needs no locking of its
	// own.
	Progress func(done, total int)
}

// Run evaluates do(ctx, i, state) for every case index i in [0, n) over a
// bounded pool of workers and returns the results ordered by case index.
//
// newWorker is called once per worker with the worker index and builds the
// worker-private state passed to every case that worker executes. do must
// be a pure function of its case index and worker state for the
// deterministic-ordering guarantee to extend to the results' values.
//
// The first error — from a worker factory, a case, or the parent context —
// cancels dispatch and is returned after in-flight cases drain. Case
// errors are returned as-is (do is expected to wrap them with case
// context).
func Run[W, R any](ctx context.Context, n int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) ([]R, error) {

	if n < 0 {
		return nil, fmt.Errorf("sweep: negative case count %d", n)
	}
	results := make([]R, n)
	if n == 0 {
		return results, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = n // lowest failing case index; n means "none"
		done     int
	)
	// fail records an error, keeping the lowest-index one, and cancels
	// dispatch. Worker-factory failures use idx == -1 so they dominate.
	fail := func(idx int, err error) {
		mu.Lock()
		if firstErr == nil || idx < errIdx {
			firstErr, errIdx = err, idx
		}
		mu.Unlock()
		cancel()
	}
	complete := func() {
		mu.Lock()
		done++
		d := done
		if opts.Progress != nil {
			opts.Progress(d, n)
		}
		mu.Unlock()
	}

	indices := make(chan int)
	go func() {
		defer close(indices)
		for i := 0; i < n; i++ {
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state, err := newWorker(w)
			if err != nil {
				fail(-1, fmt.Errorf("sweep: worker %d: %w", w, err))
				return
			}
			for i := range indices {
				r, err := do(ctx, i, state)
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
				complete()
			}
		}(w)
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	// Dispatch may have been stopped by the parent context without any
	// case failing.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: canceled after %d/%d cases: %w", done, n, err)
	}
	return results, nil
}

// Sequential runs the same contract as Run without goroutines: cases
// execute strictly in index order on the calling goroutine. The experiment
// drivers use it as the workers=1 oracle the parallel path is tested
// against.
func Sequential[W, R any](ctx context.Context, n int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) ([]R, error) {

	if n < 0 {
		return nil, fmt.Errorf("sweep: negative case count %d", n)
	}
	results := make([]R, n)
	if n == 0 {
		return results, nil
	}
	state, err := newWorker(0)
	if err != nil {
		return nil, fmt.Errorf("sweep: worker 0: %w", err)
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sweep: canceled after %d/%d cases: %w", i, n, err)
		}
		r, err := do(ctx, i, state)
		if err != nil {
			return nil, err
		}
		results[i] = r
		if opts.Progress != nil {
			opts.Progress(i+1, n)
		}
	}
	return results, nil
}
