// Package sweep is the bounded worker-pool runner behind the paper's
// evaluation sweeps. The Table 1 accuracy sweep, the delay-noise (push-out)
// distribution and the §4.2 run-time drivers all evaluate a few hundred
// *independent* aggressor-alignment cases — a coupled-RC transient plus
// transistor-level Γeff replays per case — which the sequential drivers
// executed on one core. Run fans those cases out over GOMAXPROCS workers
// while preserving the sequential semantics the experiments rely on:
//
//   - Results are ordered by case index, so any order-dependent
//     aggregation (floating-point error sums, histograms) performed on the
//     returned slice is bit-identical to a sequential loop.
//   - Each worker owns private state built by a factory (the experiment
//     drivers allocate a core.GateSim — and therefore a spice.Simulator —
//     per worker, because the simulator is documented as not safe for
//     concurrent use).
//   - The first case error cancels the shared context, which stops the
//     dispatch of not-yet-started cases; in-flight cases drain. Among the
//     errors observed, the one with the lowest case index is returned, so
//     the reported failure is deterministic for deterministic case
//     functions.
//   - The progress callback is serialized: it never runs concurrently with
//     itself and sees a strictly increasing completed-case count.
//   - Cancellation is first-class: when the parent context is canceled the
//     Partial variants return the completed cases together with an error
//     matching telemetry.ErrCanceled, so drivers can report partial
//     statistics instead of discarding finished work.
//   - An Options.Telemetry registry observes the sweep: queue depth and
//     pool-size gauges, dispatched/completed counters, and per-worker case
//     counts and busy time — identically for Run and the Sequential oracle.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"noisewave/internal/telemetry"
)

// Options configures a Run.
type Options struct {
	// Workers is the worker-pool size. Values <= 0 select
	// runtime.GOMAXPROCS(0). Workers == 1 still runs on the calling
	// goroutine's pool machinery but executes cases strictly in index
	// order, matching a plain loop.
	Workers int
	// Progress, if non-nil, is invoked after each completed case with the
	// number of completed cases and the total. Calls are serialized and
	// done is strictly increasing, so the callback needs no locking of its
	// own.
	Progress func(done, total int)
	// Telemetry, if non-nil, receives the sweep's counters: dispatched and
	// completed cases, the undispatched-queue depth gauge, the worker-pool
	// size gauge, and per-worker case counts and busy time (metric names in
	// EXPERIMENTS.md "Observability"). Both Run and Sequential record them,
	// so throughput derived from the snapshot is comparable across worker
	// counts.
	Telemetry *telemetry.Registry
}

// workerTelemetry returns the per-worker instruments (nil-safe).
func (o Options) workerTelemetry(w int) (*telemetry.Counter, *telemetry.Timer) {
	return o.Telemetry.Counter(fmt.Sprintf("sweep.worker.%d.cases", w)),
		o.Telemetry.Timer(fmt.Sprintf("sweep.worker.%d.busy_seconds", w))
}

// Run evaluates do(ctx, i, state) for every case index i in [0, n) over a
// bounded pool of workers and returns the results ordered by case index.
//
// newWorker is called once per worker with the worker index and builds the
// worker-private state passed to every case that worker executes. do must
// be a pure function of its case index and worker state for the
// deterministic-ordering guarantee to extend to the results' values.
//
// The first error — from a worker factory, a case, or the parent context —
// cancels dispatch and is returned after in-flight cases drain. Case
// errors are returned as-is (do is expected to wrap them with case
// context). On any error the results are discarded; use RunPartial to keep
// the completed subset.
func Run[W, R any](ctx context.Context, n int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) ([]R, error) {

	results, _, err := RunPartial(ctx, n, opts, newWorker, do)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunPartial is Run, but also reports which cases completed, and keeps the
// completed results when the sweep stops early: on cancellation (an error
// matching telemetry.ErrCanceled) or a case failure, results holds every
// completed case's value at its index (the zero value elsewhere) and
// completed flags exactly those indices. Aggregating the completed subset
// in index order stays deterministic for a deterministic do.
func RunPartial[W, R any](ctx context.Context, n int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) (results []R, completed []bool, err error) {

	if n < 0 {
		return nil, nil, fmt.Errorf("sweep: negative case count %d", n)
	}
	results = make([]R, n)
	completed = make([]bool, n)
	if n == 0 {
		return results, completed, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	opts.Telemetry.Gauge("sweep.pool_size").Set(float64(workers))
	queueDepth := opts.Telemetry.Gauge("sweep.queue_depth")
	dispatched := opts.Telemetry.Counter("sweep.cases_dispatched")
	completedCtr := opts.Telemetry.Counter("sweep.cases_completed")

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = n // lowest failing case index; n means "none"
		done     int
	)
	// fail records an error, keeping the lowest-index one, and cancels
	// dispatch. Worker-factory failures use idx == -1 so they dominate.
	fail := func(idx int, err error) {
		mu.Lock()
		if firstErr == nil || idx < errIdx {
			firstErr, errIdx = err, idx
		}
		mu.Unlock()
		cancel()
	}
	complete := func() {
		mu.Lock()
		done++
		d := done
		if opts.Progress != nil {
			opts.Progress(d, n)
		}
		mu.Unlock()
	}

	indices := make(chan int)
	go func() {
		defer close(indices)
		queueDepth.Set(float64(n))
		for i := 0; i < n; i++ {
			select {
			case indices <- i:
				dispatched.Inc()
				queueDepth.Set(float64(n - i - 1))
			case <-ctx.Done():
				queueDepth.Set(0)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wCases, wBusy := opts.workerTelemetry(w)
			state, err := newWorker(w)
			if err != nil {
				fail(-1, fmt.Errorf("sweep: worker %d: %w", w, err))
				return
			}
			for i := range indices {
				caseStart := time.Now()
				r, err := do(ctx, i, state)
				wBusy.Observe(time.Since(caseStart).Seconds())
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
				completed[i] = true
				wCases.Inc()
				completedCtr.Inc()
				complete()
			}
		}(w)
	}
	wg.Wait()

	if firstErr != nil {
		return results, completed, firstErr
	}
	// Dispatch may have been stopped by the parent context without any
	// case failing.
	if parent.Err() != nil {
		return results, completed, telemetry.Canceled(parent,
			"sweep: canceled after %d/%d cases", done, n)
	}
	return results, completed, nil
}

// Sequential runs the same contract as Run without goroutines: cases
// execute strictly in index order on the calling goroutine. The experiment
// drivers use it as the workers=1 oracle the parallel path is tested
// against. On any error the results are discarded; use SequentialPartial
// to keep the completed prefix.
func Sequential[W, R any](ctx context.Context, n int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) ([]R, error) {

	results, _, err := SequentialPartial(ctx, n, opts, newWorker, do)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SequentialPartial is Sequential with RunPartial's partial-results
// contract: on cancellation or a case failure, results holds the completed
// prefix and completed flags it. It records the same telemetry as
// RunPartial (the single worker is worker 0), so snapshot-derived
// throughput is comparable between the sequential oracle and the pool.
func SequentialPartial[W, R any](ctx context.Context, n int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) (results []R, completed []bool, err error) {

	if n < 0 {
		return nil, nil, fmt.Errorf("sweep: negative case count %d", n)
	}
	results = make([]R, n)
	completed = make([]bool, n)
	if n == 0 {
		return results, completed, nil
	}
	opts.Telemetry.Gauge("sweep.pool_size").Set(1)
	queueDepth := opts.Telemetry.Gauge("sweep.queue_depth")
	dispatched := opts.Telemetry.Counter("sweep.cases_dispatched")
	completedCtr := opts.Telemetry.Counter("sweep.cases_completed")
	wCases, wBusy := opts.workerTelemetry(0)

	state, err := newWorker(0)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: worker 0: %w", err)
	}
	queueDepth.Set(float64(n))
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			queueDepth.Set(0)
			return results, completed, telemetry.Canceled(ctx,
				"sweep: canceled after %d/%d cases", i, n)
		}
		dispatched.Inc()
		queueDepth.Set(float64(n - i - 1))
		caseStart := time.Now()
		r, err := do(ctx, i, state)
		wBusy.Observe(time.Since(caseStart).Seconds())
		if err != nil {
			return results, completed, err
		}
		results[i] = r
		completed[i] = true
		wCases.Inc()
		completedCtr.Inc()
		if opts.Progress != nil {
			opts.Progress(i+1, n)
		}
	}
	return results, completed, nil
}
