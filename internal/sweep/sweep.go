// Package sweep is the bounded worker-pool runner behind the paper's
// evaluation sweeps. The Table 1 accuracy sweep, the delay-noise (push-out)
// distribution and the §4.2 run-time drivers all evaluate a few hundred
// *independent* aggressor-alignment cases — a coupled-RC transient plus
// transistor-level Γeff replays per case — which the sequential drivers
// executed on one core. Run fans those cases out over GOMAXPROCS workers
// while preserving the sequential semantics the experiments rely on:
//
//   - Results are ordered by case index, so any order-dependent
//     aggregation (floating-point error sums, histograms) performed on the
//     returned slice is bit-identical to a sequential loop.
//   - Each worker owns private state built by a factory (the experiment
//     drivers allocate a core.GateSim — and therefore a spice.Simulator —
//     per worker, because the simulator is documented as not safe for
//     concurrent use).
//   - The first case error cancels the shared context, which stops the
//     dispatch of not-yet-started cases; in-flight cases drain. Among the
//     errors observed, the one with the lowest case index is returned, so
//     the reported failure is deterministic for deterministic case
//     functions.
//   - The progress callback is serialized: it never runs concurrently with
//     itself and sees a strictly increasing completed-case count; on an
//     early exit (error or cancellation) one final call repeats the last
//     count so displays can render a final state.
//   - Cancellation is first-class: when the parent context is canceled the
//     Partial variants return the completed cases together with an error
//     matching telemetry.ErrCanceled, so drivers can report partial
//     statistics instead of discarding finished work.
//   - An Options.Telemetry registry observes the sweep: queue depth and
//     pool-size gauges (both reset to zero on every exit path),
//     dispatched/completed counters, and per-worker case counts and busy
//     time — identically for Run and the Sequential oracle.
//
// On top of those semantics sits a resilience layer (see resilience.go): a
// panicking case is recovered instead of crashing the process, cases can
// carry a per-case deadline (CaseTimeout), and KeepGoing mode quarantines
// failing cases — recording index, final error and attempt log in a
// FailureReport — while the rest of the sweep completes.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"noisewave/internal/faultinject"
	"noisewave/internal/telemetry"
	"noisewave/internal/trace"
)

// Options configures a Run.
type Options struct {
	// Workers is the worker-pool size. Values <= 0 select
	// runtime.GOMAXPROCS(0). Workers == 1 still runs on the calling
	// goroutine's pool machinery but executes cases strictly in index
	// order, matching a plain loop.
	Workers int
	// Progress, if non-nil, is invoked after each completed (or, with
	// KeepGoing, quarantined) case with the number of settled cases and the
	// total. Calls are serialized and done is strictly increasing; when the
	// sweep exits early on an error or cancellation, one final serialized
	// call repeats the last settled count.
	Progress func(done, total int)
	// Telemetry, if non-nil, receives the sweep's counters: dispatched and
	// completed cases, the undispatched-queue depth gauge, the worker-pool
	// size gauge, and per-worker case counts and busy time (metric names in
	// EXPERIMENTS.md "Observability"). Both Run and Sequential record them,
	// so throughput derived from the snapshot is comparable across worker
	// counts. Gauges are reset to zero on every exit path, including early
	// errors and cancellation.
	Telemetry *telemetry.Registry
	// Tracer, if non-nil, records one hierarchical root span per case
	// ("sweep.case", trace.Case = the case index) covering every attempt.
	// The span's context is what do receives, so instrumented layers
	// below (core, spice, xtalk) nest their spans under it. The root
	// carries a "status" attr (ok / failed / canceled); failed cases add
	// "failure" (the final error), "panicked", "timed_out" and "attempts",
	// and each retry is an event. Nil — the default — costs one nil check
	// per case and changes nothing else: results are bit-identical with
	// tracing on or off.
	Tracer *trace.Tracer

	// KeepGoing quarantines failing cases instead of aborting the sweep:
	// a case error, panic or timeout is recorded in the FailureReport
	// (index, final error, attempt log) and the remaining cases still run.
	// The sweep then returns a nil error as long as the pool survived and
	// the parent context stayed alive; consult the report for failures.
	KeepGoing bool
	// CaseTimeout, if > 0, bounds each case attempt with its own deadline
	// (derived from the sweep context). A case that exceeds it fails with
	// an error matching ErrCaseTimeout — which deliberately does not match
	// telemetry.ErrCanceled, so a slow case cannot masquerade as a sweep
	// cancellation.
	CaseTimeout time.Duration
	// CaseRetries is how many extra attempts a failing case gets before it
	// counts as failed (0 = single attempt). After a panic the worker
	// state is rebuilt through the factory before the retry.
	CaseRetries int
	// Inject, if non-nil, is the deterministic fault injector driving the
	// chaos suite: it can stall case dispatch (honoring the case context)
	// and panic workers. Nil — the production default — costs one nil
	// check per case.
	Inject *faultinject.Injector
}

// workerTelemetry returns the per-worker instruments (nil-safe).
func (o Options) workerTelemetry(w int) (*telemetry.Counter, *telemetry.Timer) {
	return o.Telemetry.Counter(fmt.Sprintf("sweep.worker.%d.cases", w)),
		o.Telemetry.Timer(fmt.Sprintf("sweep.worker.%d.busy_seconds", w))
}

// Run evaluates do(ctx, i, state) for every case index i in [0, n) over a
// bounded pool of workers and returns the results ordered by case index.
//
// newWorker is called once per worker with the worker index and builds the
// worker-private state passed to every case that worker executes. do must
// be a pure function of its case index and worker state for the
// deterministic-ordering guarantee to extend to the results' values.
//
// The first error — from a worker factory, a case, or the parent context —
// cancels dispatch and is returned after in-flight cases drain. Case
// errors are returned as-is (do is expected to wrap them with case
// context). On any error the results are discarded; use RunPartial to keep
// the completed subset (and, with Options.KeepGoing, to keep sweeping past
// failures).
func Run[W, R any](ctx context.Context, n int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) ([]R, error) {

	results, _, _, err := RunPartial(ctx, n, opts, newWorker, do)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunPartial is Run, but also reports which cases completed, keeps the
// completed results when the sweep stops early, and returns the
// FailureReport of the resilience layer: on cancellation (an error
// matching telemetry.ErrCanceled) or a case failure, results holds every
// completed case's value at its index (the zero value elsewhere) and
// completed flags exactly those indices. Aggregating the completed subset
// in index order stays deterministic for a deterministic do.
//
// The report is nil when no case failed and no worker was lost. With
// Options.KeepGoing, failing cases are quarantined into the report and err
// stays nil as long as the pool survived and the parent context stayed
// alive; without it, the report still describes the (single) failing case
// that aborted the sweep.
func RunPartial[W, R any](ctx context.Context, n int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) (results []R, completed []bool, report *FailureReport, err error) {

	if n < 0 {
		return nil, nil, nil, fmt.Errorf("sweep: negative case count %d", n)
	}
	results = make([]R, n)
	completed = make([]bool, n)
	if n == 0 {
		return results, completed, nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	poolSize := opts.Telemetry.Gauge("sweep.pool_size")
	poolSize.Set(float64(workers))
	queueDepth := opts.Telemetry.Gauge("sweep.queue_depth")
	// Every exit path leaves the gauges at zero: a snapshot taken after the
	// sweep — even one that errored out early — must not claim a live pool
	// or a pending queue.
	defer func() {
		poolSize.Set(0)
		queueDepth.Set(0)
	}()
	dispatched := opts.Telemetry.Counter("sweep.cases_dispatched")
	completedCtr := opts.Telemetry.Counter("sweep.cases_completed")
	quarantinedCtr := opts.Telemetry.Counter("sweep.cases_quarantined")

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu          sync.Mutex
		firstErr    error
		errIdx      = n // lowest failing case index; n means "none"
		done        int
		failures    []CaseFailure
		workersLost int
		liveWorkers = workers
	)
	// fail records an error, keeping the lowest-index one, and cancels
	// dispatch. Worker-factory failures use idx == -1 so they dominate.
	fail := func(idx int, err error) {
		mu.Lock()
		if firstErr == nil || idx < errIdx {
			firstErr, errIdx = err, idx
		}
		mu.Unlock()
		cancel()
	}
	complete := func() {
		mu.Lock()
		done++
		d := done
		if opts.Progress != nil {
			opts.Progress(d, n)
		}
		mu.Unlock()
	}
	quarantine := func(f CaseFailure) {
		mu.Lock()
		failures = append(failures, f)
		mu.Unlock()
		quarantinedCtr.Inc()
	}
	// workerDown retires a worker whose state is unbuildable. Without
	// KeepGoing that aborts the sweep (the historical contract); with it
	// the pool degrades, aborting only when the last worker dies.
	workerDown := func(cause error) {
		if !opts.KeepGoing {
			fail(-1, cause)
			return
		}
		mu.Lock()
		workersLost++
		liveWorkers--
		last := liveWorkers == 0
		mu.Unlock()
		if last {
			fail(-1, fmt.Errorf("%w (last worker: %v)", ErrWorkersLost, cause))
		}
	}

	indices := make(chan int)
	go func() {
		defer close(indices)
		queueDepth.Set(float64(n))
		for i := 0; i < n; i++ {
			select {
			case indices <- i:
				dispatched.Inc()
				queueDepth.Set(float64(n - i - 1))
			case <-ctx.Done():
				queueDepth.Set(0)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wCases, wBusy := opts.workerTelemetry(w)
			rebuild := func() (W, error) { return newWorker(w) }
			state, err := newWorker(w)
			if err != nil {
				workerDown(fmt.Errorf("sweep: worker %d: %w", w, err))
				return
			}
			for i := range indices {
				caseStart := time.Now()
				out, ns := runCase(ctx, opts, i, state, rebuild, do)
				state = ns
				wBusy.Observe(time.Since(caseStart).Seconds())
				switch {
				case out.cancel != nil:
					fail(i, out.cancel)
					return
				case out.failure != nil:
					if !opts.KeepGoing {
						mu.Lock()
						failures = append(failures, *out.failure)
						mu.Unlock()
						fail(i, out.failure.Err)
						return
					}
					quarantine(*out.failure)
					complete()
					if out.workerDead {
						workerDown(out.failure.Err)
						return
					}
				default:
					results[i] = out.value
					completed[i] = true
					wCases.Inc()
					completedCtr.Inc()
					complete()
				}
			}
		}(w)
	}
	wg.Wait()

	if len(failures) > 0 || workersLost > 0 {
		sortFailures(failures)
		report = &FailureReport{Total: n, Failures: failures, WorkersLost: workersLost}
	}
	// One final serialized Progress call on early exits, so displays can
	// render the state the sweep actually stopped in. (The workers have
	// drained; no call can race this one.)
	finalProgress := func() {
		if opts.Progress != nil {
			opts.Progress(done, n)
		}
	}
	if firstErr != nil {
		finalProgress()
		return results, completed, report, firstErr
	}
	// Dispatch may have been stopped by the parent context without any
	// case failing.
	if parent.Err() != nil {
		finalProgress()
		return results, completed, report, telemetry.Canceled(parent,
			"sweep: canceled after %d/%d cases", done, n)
	}
	return results, completed, report, nil
}

// sortFailures orders quarantine records by ascending case index (workers
// append them in completion order).
func sortFailures(fs []CaseFailure) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Index < fs[j-1].Index; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// Sequential runs the same contract as Run without goroutines: cases
// execute strictly in index order on the calling goroutine. The experiment
// drivers use it as the workers=1 oracle the parallel path is tested
// against. On any error the results are discarded; use SequentialPartial
// to keep the completed prefix.
func Sequential[W, R any](ctx context.Context, n int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) ([]R, error) {

	results, _, _, err := SequentialPartial(ctx, n, opts, newWorker, do)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SequentialPartial is Sequential with RunPartial's partial-results and
// failure-report contract: on cancellation or a case failure, results
// holds the completed prefix and completed flags it; with KeepGoing,
// failing cases are quarantined into the report and the loop continues. It
// records the same telemetry as RunPartial (the single worker is worker
// 0), so snapshot-derived throughput is comparable between the sequential
// oracle and the pool.
func SequentialPartial[W, R any](ctx context.Context, n int, opts Options,
	newWorker func(worker int) (W, error),
	do func(ctx context.Context, i int, state W) (R, error)) (results []R, completed []bool, report *FailureReport, err error) {

	if n < 0 {
		return nil, nil, nil, fmt.Errorf("sweep: negative case count %d", n)
	}
	results = make([]R, n)
	completed = make([]bool, n)
	if n == 0 {
		return results, completed, nil, nil
	}
	poolSize := opts.Telemetry.Gauge("sweep.pool_size")
	poolSize.Set(1)
	queueDepth := opts.Telemetry.Gauge("sweep.queue_depth")
	defer func() {
		poolSize.Set(0)
		queueDepth.Set(0)
	}()
	dispatched := opts.Telemetry.Counter("sweep.cases_dispatched")
	completedCtr := opts.Telemetry.Counter("sweep.cases_completed")
	quarantinedCtr := opts.Telemetry.Counter("sweep.cases_quarantined")
	wCases, wBusy := opts.workerTelemetry(0)

	var failures []CaseFailure
	workersLost := 0
	buildReport := func() *FailureReport {
		if len(failures) == 0 && workersLost == 0 {
			return nil
		}
		return &FailureReport{Total: n, Failures: failures, WorkersLost: workersLost}
	}
	done := 0
	settle := func() {
		done++
		if opts.Progress != nil {
			opts.Progress(done, n)
		}
	}
	finalProgress := func() {
		if opts.Progress != nil {
			opts.Progress(done, n)
		}
	}

	rebuild := func() (W, error) { return newWorker(0) }
	state, err := newWorker(0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sweep: worker 0: %w", err)
	}
	queueDepth.Set(float64(n))
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			finalProgress()
			return results, completed, buildReport(), telemetry.Canceled(ctx,
				"sweep: canceled after %d/%d cases", i, n)
		}
		dispatched.Inc()
		queueDepth.Set(float64(n - i - 1))
		caseStart := time.Now()
		out, ns := runCase(ctx, opts, i, state, rebuild, do)
		state = ns
		wBusy.Observe(time.Since(caseStart).Seconds())
		switch {
		case out.cancel != nil:
			finalProgress()
			return results, completed, buildReport(), out.cancel
		case out.failure != nil:
			failures = append(failures, *out.failure)
			if !opts.KeepGoing {
				finalProgress()
				return results, completed, buildReport(), out.failure.Err
			}
			quarantinedCtr.Inc()
			settle()
			if out.workerDead {
				workersLost = 1
				finalProgress()
				return results, completed, buildReport(),
					fmt.Errorf("%w (last worker: %v)", ErrWorkersLost, out.failure.Err)
			}
		default:
			results[i] = out.value
			completed[i] = true
			wCases.Inc()
			completedCtr.Inc()
			settle()
		}
	}
	return results, completed, buildReport(), nil
}
