package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestShardIndicesPartition(t *testing.T) {
	const n, shards = 100, 7
	parts := ShardIndices(n, shards)
	if len(parts) != shards {
		t.Fatalf("got %d shards, want %d", len(parts), shards)
	}
	seen := make([]bool, n)
	for s, idx := range parts {
		prev := -1
		for _, i := range idx {
			if i < 0 || i >= n {
				t.Fatalf("shard %d holds out-of-range index %d", s, i)
			}
			if seen[i] {
				t.Fatalf("index %d in two shards", i)
			}
			seen[i] = true
			if i <= prev {
				t.Errorf("shard %d indices not ascending: %d after %d", s, i, prev)
			}
			prev = i
			if got := ShardOf(i, shards); got != s {
				t.Errorf("ShardOf(%d, %d) = %d, but index landed in shard %d", i, shards, got, s)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("index %d in no shard", i)
		}
	}
	// Consistency: the same (i, shards) always maps to the same shard.
	for i := 0; i < n; i++ {
		if ShardOf(i, shards) != ShardOf(i, shards) {
			t.Fatal("ShardOf not deterministic")
		}
	}
}

func TestShardOfSingleShard(t *testing.T) {
	for _, i := range []int{0, 1, 99999} {
		if ShardOf(i, 1) != 0 || ShardOf(i, 0) != 0 {
			t.Errorf("ShardOf(%d, <=1) != 0", i)
		}
	}
}

// TestRunShardedMatchesUnsharded: the merged results of a sharded run must
// be identical to a plain run, for several shard and worker counts.
func TestRunShardedMatchesUnsharded(t *testing.T) {
	const n = 64
	do := func(_ context.Context, i int, _ struct{}) (float64, error) {
		return float64(i*i) * 1.5, nil
	}
	newWorker := func(int) (struct{}, error) { return struct{}{}, nil }
	want, _, _, err := RunPartial(context.Background(), n, Options{Workers: 3}, newWorker, do)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 5, 16, 64} {
		for _, workers := range []int{1, 4} {
			got, comp, rep, err := RunShardedPartial(context.Background(), n, shards,
				Options{Workers: workers}, newWorker, do)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if rep != nil {
				t.Fatalf("shards=%d: unexpected failure report %v", shards, rep)
			}
			for i := range comp {
				if !comp[i] {
					t.Fatalf("shards=%d: case %d not completed", shards, i)
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d workers=%d: merged results differ from unsharded run", shards, workers)
			}
		}
	}
}

// TestRunShardedGlobalProgress: Progress must report the global settled
// count over the global total, strictly increasing across shard boundaries.
func TestRunShardedGlobalProgress(t *testing.T) {
	const n, shards = 30, 4
	var mu sync.Mutex
	var dones []int
	opts := Options{Workers: 2, Progress: func(done, total int) {
		if total != n {
			t.Errorf("progress total = %d, want %d", total, n)
		}
		mu.Lock()
		dones = append(dones, done)
		mu.Unlock()
	}}
	_, _, _, err := RunShardedPartial(context.Background(), n, shards, opts,
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ context.Context, i int, _ struct{}) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) == 0 || dones[len(dones)-1] != n {
		t.Fatalf("final progress = %v, want last == %d", dones, n)
	}
	for i := 1; i < len(dones); i++ {
		if dones[i] < dones[i-1] {
			t.Errorf("progress regressed at %d: %v", i, dones)
		}
	}
}

// TestRunShardedFailureIndicesGlobal: quarantined cases must be reported
// with their global case index, not the shard-local one.
func TestRunShardedFailureIndicesGlobal(t *testing.T) {
	const n, shards = 40, 3
	bad := map[int]bool{7: true, 23: true, 38: true}
	_, completed, rep, err := RunShardedPartial(context.Background(), n, shards,
		Options{Workers: 2, KeepGoing: true},
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ context.Context, i int, _ struct{}) (int, error) {
			if bad[i] {
				return 0, fmt.Errorf("case %d broken", i)
			}
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.Failures) != len(bad) {
		t.Fatalf("failure report = %v, want %d failures", rep, len(bad))
	}
	for _, f := range rep.Failures {
		if !bad[f.Index] {
			t.Errorf("failure at index %d, not an injected failure", f.Index)
		}
		if completed[f.Index] {
			t.Errorf("failed case %d also marked completed", f.Index)
		}
	}
}

// TestRunShardedStopsOnError: without KeepGoing, a failing case aborts the
// run; completed cases from earlier shards are preserved in the partials.
func TestRunShardedStopsOnError(t *testing.T) {
	const n, shards = 20, 2
	boom := errors.New("boom")
	results, completed, _, err := RunShardedPartial(context.Background(), n, shards,
		Options{Workers: 1},
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ context.Context, i int, _ struct{}) (int, error) {
			if ShardOf(i, shards) == 1 {
				return 0, boom
			}
			return i + 1, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	for i := range results {
		if completed[i] && results[i] != i+1 {
			t.Errorf("completed case %d holds %d, want %d", i, results[i], i+1)
		}
	}
}
