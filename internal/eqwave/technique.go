// Package eqwave implements the equivalent-waveform techniques of the
// paper: the conventional gate delay propagation methods P1, P2 (point
// based), LSF3 (least squares), E4 (energy/area based) and WLS5 (weighted
// least squares, Hashimoto et al. TCAD 2004), plus the paper's contribution
// SGDP (sensitivity-based gate delay propagation).
//
// Every technique maps a noisy gate-input waveform to an equivalent linear
// waveform Γeff — a saturated ramp with a single arrival time and slew —
// that a conventional STA delay model can consume.
package eqwave

import (
	"errors"
	"fmt"

	"noisewave/internal/wave"
)

// DefaultP is the paper's sample count for the fitting techniques (§4.2
// reports run times "with P = 35").
const DefaultP = 35

// Input carries everything a technique may consult. Point-based techniques
// use only the noisy (and for P1 the noiseless) input; the weighted
// techniques additionally need the noiseless gate output to extract the
// output-to-input sensitivity.
type Input struct {
	// Noisy is the (crosstalk-distorted) waveform at the gate input.
	Noisy *wave.Waveform
	// Noiseless is the same transition with all aggressors quiet.
	Noiseless *wave.Waveform
	// NoiselessOut is the gate output waveform under the noiseless input.
	NoiselessOut *wave.Waveform
	// Vdd is the supply voltage; Γeff saturates at [0, Vdd].
	Vdd float64
	// Edge is the direction of the input transition.
	Edge wave.Edge
	// P is the number of sampling points for the fitting techniques
	// (DefaultP when zero).
	P int
}

func (in Input) samples() int {
	if in.P > 0 {
		return in.P
	}
	return DefaultP
}

func (in Input) validate(needNoiseless, needOut bool) error {
	if in.Noisy == nil {
		return errors.New("eqwave: Input.Noisy is required")
	}
	if in.Vdd <= 0 {
		return fmt.Errorf("eqwave: Vdd must be positive, got %g", in.Vdd)
	}
	if needNoiseless && in.Noiseless == nil {
		return errors.New("eqwave: technique requires the noiseless input waveform")
	}
	if needOut && in.NoiselessOut == nil {
		return errors.New("eqwave: technique requires the noiseless output waveform")
	}
	return nil
}

// Technique converts a noisy input waveform into an equivalent linear
// waveform Γeff.
type Technique interface {
	// Name returns the paper's identifier (P1, P2, LSF3, E4, WLS5, SGDP).
	Name() string
	// Equivalent computes Γeff for the given input.
	Equivalent(in Input) (wave.Ramp, error)
}

// All returns the six techniques of the paper in its Table 1 order, with
// SGDP at default settings.
func All() []Technique {
	return []Technique{P1{}, P2{}, LSF3{}, E4{}, WLS5{}, NewSGDP()}
}

// ByName returns the technique with the given (case-sensitive) name.
func ByName(name string) (Technique, error) {
	for _, t := range All() {
		if t.Name() == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("eqwave: unknown technique %q", name)
}

// latestHalfCrossing returns the latest 0.5·Vdd crossing of the noisy
// waveform — the common arrival-time reference of P1, P2 and E4.
func latestHalfCrossing(in Input) (float64, error) {
	return in.Noisy.LastCrossing(0.5 * in.Vdd)
}

// signedSlope converts a 10–90% transition time into a signed ramp slope.
func signedSlope(transition, vdd float64, edge wave.Edge) (float64, error) {
	if transition <= 0 {
		return 0, fmt.Errorf("eqwave: non-positive transition time %g", transition)
	}
	a := 0.8 * vdd / transition
	if edge == wave.Falling {
		a = -a
	}
	return a, nil
}

// uniformGrid returns n points spanning [t0, t1] inclusive.
func uniformGrid(t0, t1 float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	dt := (t1 - t0) / float64(n-1)
	for i := range out {
		out[i] = t0 + float64(i)*dt
	}
	return out
}
