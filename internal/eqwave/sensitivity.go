package eqwave

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"noisewave/internal/wave"
)

// Sensitivity is the sampled output-to-input derivative ρ of a gate for a
// noiseless transition (the paper's Eq. 1):
//
//	ρ(t) = |dv_out/dt| / |dv_in/dt|
//
// defined on the noiseless critical region (between the input's first
// 10% crossing and last 90% crossing) and zero outside. The magnitude is
// used: for an inverting gate dv_out/dv_in is negative, and the paper's
// Figure 2 plots ρ as a positive weight.
//
// The samples also carry the noiseless input voltage at each time, which is
// what enables SGDP's voltage-domain remap: ρ as a function of the input
// voltage level rather than of time.
type Sensitivity struct {
	TFirst, TLast float64 // noiseless critical region

	T   []float64 // sample times spanning [TFirst, TLast]
	V   []float64 // noiseless input voltage at T (monotonic in the edge direction)
	Rho []float64 // ρ at T

	// dRho/dV at T (chain rule: ρ'(t) / v'in(t)), used by the second-order
	// term of SGDP's Eq. 3.
	DRhoDV []float64

	Edge wave.Edge
}

// ErrNoSensitivity is returned when the output does not move inside the
// input's critical region (non-overlapping transitions — WLS5's failure
// mode, §2.4).
var ErrNoSensitivity = errors.New("eqwave: output-to-input derivative is zero over the critical region (non-overlapping transitions)")

// derivEps guards divisions by a vanishing input slope: input-slope samples
// below derivEps × (peak slope) are treated as zero. Near the edges of the
// critical region the input slope approaches zero while the output may
// still be slewing, which would otherwise produce unbounded ρ spikes.
const derivEps = 1e-3

// rhoCap bounds ρ against residual division spikes; a gate with a genuine
// small-signal gain above this in its switching region would be pathological
// for the fit weights anyway.
const rhoCap = 100.0

// ComputeSensitivity samples ρ over the noiseless critical region of the
// input with n points (n ≥ 2; values below 32 are raised to 128 for
// internal accuracy — the technique's own P only controls fit sampling).
func ComputeSensitivity(nlIn, nlOut *wave.Waveform, vdd float64, edge wave.Edge, n int) (*Sensitivity, error) {
	if n < 128 {
		n = 128
	}
	tFirst, tLast, err := nlIn.CriticalRegion(0.1*vdd, 0.9*vdd, edge)
	if err != nil {
		return nil, fmt.Errorf("eqwave: noiseless critical region: %w", err)
	}
	if tLast <= tFirst {
		return nil, fmt.Errorf("eqwave: empty noiseless critical region [%g,%g]", tFirst, tLast)
	}
	dIn := nlIn.Derivative()
	dOut := nlOut.Derivative()

	ts := uniformGrid(tFirst, tLast, n)
	vs := make([]float64, n)
	rho := make([]float64, n)

	// Peak input slope inside the region sets the division guard.
	peak := 0.0
	for _, t := range ts {
		if a := math.Abs(dIn.At(t)); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		return nil, fmt.Errorf("eqwave: input waveform is flat over its critical region")
	}
	guard := derivEps * peak

	mono := nlIn.Monotonicized(edge)
	maxRho := 0.0
	for i, t := range ts {
		vs[i] = mono.At(t)
		num := math.Abs(dOut.At(t))
		den := math.Abs(dIn.At(t))
		if den < guard {
			rho[i] = 0
			continue
		}
		rho[i] = math.Min(num/den, rhoCap)
		if rho[i] > maxRho {
			maxRho = rho[i]
		}
	}
	if maxRho < 1e-6 {
		return nil, ErrNoSensitivity
	}
	s := &Sensitivity{
		TFirst: tFirst, TLast: tLast,
		T: ts, V: vs, Rho: rho,
		Edge: edge,
	}
	s.DRhoDV = s.computeDRhoDV()
	return s, nil
}

// computeDRhoDV differentiates ρ with respect to the input voltage by
// centered differences on the (monotonic) V grid.
func (s *Sensitivity) computeDRhoDV() []float64 {
	n := len(s.T)
	d := make([]float64, n)
	for i := range d {
		lo, hi := i-1, i+1
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		dv := s.V[hi] - s.V[lo]
		if math.Abs(dv) < 1e-12 {
			d[i] = 0
			continue
		}
		d[i] = (s.Rho[hi] - s.Rho[lo]) / dv
	}
	return d
}

// RhoAtTime returns ρ(t), zero outside the critical region (the region acts
// as a filter — WLS5's behaviour).
func (s *Sensitivity) RhoAtTime(t float64) float64 {
	if t < s.TFirst || t > s.TLast {
		return 0
	}
	i := sort.SearchFloat64s(s.T, t)
	if i == 0 {
		return s.Rho[0]
	}
	if i >= len(s.T) {
		return s.Rho[len(s.Rho)-1]
	}
	t0, t1 := s.T[i-1], s.T[i]
	if t1 == t0 {
		return s.Rho[i]
	}
	u := (t - t0) / (t1 - t0)
	return s.Rho[i-1] + u*(s.Rho[i]-s.Rho[i-1])
}

// AtVoltage returns ρ and dρ/dv at the input voltage level v — the
// voltage-domain remap of SGDP Step 2. Voltage levels outside the noiseless
// critical region's range (outside ≈[0.1·Vdd, 0.9·Vdd]) have no matching
// time t_j in the noiseless region, so the remapped sensitivity is zero
// there: a noisy sample sitting on a settled rail carries no weight.
func (s *Sensitivity) AtVoltage(v float64) (rho, dRhoDV float64) {
	// V is monotonic increasing for a rising edge, decreasing for falling.
	n := len(s.V)
	asc := s.Edge == wave.Rising
	// Binary search for the bracketing interval.
	lo, hi := 0, n-1
	if asc {
		if v < s.V[0] || v > s.V[n-1] {
			return 0, 0
		}
		if v == s.V[0] {
			return s.Rho[0], s.DRhoDV[0]
		}
		lo = sort.Search(n, func(i int) bool { return s.V[i] >= v }) - 1
	} else {
		if v > s.V[0] || v < s.V[n-1] {
			return 0, 0
		}
		if v == s.V[0] {
			return s.Rho[0], s.DRhoDV[0]
		}
		lo = sort.Search(n, func(i int) bool { return s.V[i] <= v }) - 1
	}
	hi = lo + 1
	dv := s.V[hi] - s.V[lo]
	if math.Abs(dv) < 1e-15 {
		return s.Rho[lo], s.DRhoDV[lo]
	}
	u := (v - s.V[lo]) / dv
	rho = s.Rho[lo] + u*(s.Rho[hi]-s.Rho[lo])
	dRhoDV = s.DRhoDV[lo] + u*(s.DRhoDV[hi]-s.DRhoDV[lo])
	return rho, dRhoDV
}

// TotalWeight integrates ρ over the critical region; WLS5 uses it to detect
// the degenerate non-overlap case.
func (s *Sensitivity) TotalWeight() float64 {
	sum := 0.0
	for i := 0; i+1 < len(s.T); i++ {
		sum += 0.5 * (s.Rho[i] + s.Rho[i+1]) * (s.T[i+1] - s.T[i])
	}
	return sum
}

// Overlapping reports whether the noiseless input and output transitions
// overlap in time: their 10–90% windows intersect. Non-overlapping
// transitions are the regime where WLS5 is undefined and SGDP applies its
// δ-shift pre/post-processing.
func Overlapping(nlIn, nlOut *wave.Waveform, vdd float64, inEdge, outEdge wave.Edge) (bool, float64, error) {
	inFirst, inLast, err := nlIn.CriticalRegion(0.1*vdd, 0.9*vdd, inEdge)
	if err != nil {
		return false, 0, err
	}
	outFirst, outLast, err := nlOut.CriticalRegion(0.1*vdd, 0.9*vdd, outEdge)
	if err != nil {
		return false, 0, err
	}
	overlap := inFirst <= outLast && outFirst <= inLast
	// δ aligns the 0.5·Vdd crossings of input and output.
	tIn, err := nlIn.LastCrossing(0.5 * vdd)
	if err != nil {
		return false, 0, err
	}
	tOut, err := nlOut.LastCrossing(0.5 * vdd)
	if err != nil {
		return false, 0, err
	}
	return overlap, tOut - tIn, nil
}
