package eqwave

import (
	"math"
	"testing"

	"noisewave/internal/wave"
)

// TestShiftGammaForwardAblation documents why the paper's literal "shift
// the equivalent input line forward in time by δ" post-step defaults off
// (DESIGN.md §6): on a non-overlapping gate, the forward shift moves Γeff
// out of the input time frame by the full gate delay δ, so its arrival no
// longer corresponds to the input transition it is supposed to replace.
func TestShiftGammaForwardAblation(t *testing.T) {
	in := cleanInput(wave.Rising)
	const bigDelay = 3e-9
	in.NoiselessOut = invOut(1e-9, 0.4e-9, bigDelay, 0.2e-9, wave.Rising)

	inputArrival, err := in.Noisy.LastCrossing(0.5 * vdd)
	if err != nil {
		t.Fatal(err)
	}

	def := NewSGDP()
	gDef, err := def.Equivalent(in)
	if err != nil {
		t.Fatalf("default SGDP: %v", err)
	}
	arrDef, _ := gDef.Arrival()

	lit := NewSGDP()
	lit.ShiftGammaForward = true
	gLit, err := lit.Equivalent(in)
	if err != nil {
		t.Fatalf("literal SGDP: %v", err)
	}
	arrLit, _ := gLit.Arrival()

	// Default: Γeff stays anchored to the input transition.
	if math.Abs(arrDef-inputArrival) > 30e-12 {
		t.Errorf("default Γeff arrival %.2f ns should track the input (%.2f ns)",
			arrDef*1e9, inputArrival*1e9)
	}
	// Literal: Γeff lands ≈δ later — at the *output* transition.
	if math.Abs(arrLit-arrDef-bigDelay) > 100e-12 {
		t.Errorf("literal shift moved Γeff by %.2f ns, expected ≈δ = %.2f ns",
			(arrLit-arrDef)*1e9, bigDelay*1e9)
	}
}
