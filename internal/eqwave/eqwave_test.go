package eqwave

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"noisewave/internal/wave"
)

const vdd = 1.2

// rampWave samples a saturated rising ramp: 0 before t0, Vdd after
// t0 + full, linear in between (full = 0–100% time).
func rampWave(t0, full float64, edge wave.Edge) *wave.Waveform {
	f := func(t float64) float64 {
		u := (t - t0) / full
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		if edge == wave.Falling {
			return vdd * (1 - u)
		}
		return vdd * u
	}
	return wave.FromFunc(f, 0, t0+full+1e-9, 1200)
}

// invOut models an inverting gate response to a ramp input: delayed,
// sharper, opposite edge.
func invOut(t0, full, delay, outFull float64, inEdge wave.Edge) *wave.Waveform {
	// Output midpoint = input midpoint + delay.
	mid := t0 + full/2 + delay
	o0 := mid - outFull/2
	f := func(t float64) float64 {
		u := (t - o0) / outFull
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		if inEdge == wave.Rising {
			return vdd * (1 - u) // falling output
		}
		return vdd * u
	}
	return wave.FromFunc(f, 0, mid+outFull+1e-9, 1200)
}

// glitched adds a Gaussian bump to a waveform.
func glitched(w *wave.Waveform, center, width, amp float64) *wave.Waveform {
	out := w.Clone()
	for i, t := range out.T {
		out.V[i] += amp * math.Exp(-((t-center)/width)*((t-center)/width))
	}
	return out
}

// cleanInput builds the Input for a noise-free case (noisy == noiseless).
func cleanInput(edge wave.Edge) Input {
	in := rampWave(1e-9, 0.4e-9, edge)
	out := invOut(1e-9, 0.4e-9, 80e-12, 0.2e-9, edge)
	return Input{
		Noisy: in, Noiseless: in, NoiselessOut: out,
		Vdd: vdd, Edge: edge,
	}
}

// TestIdentityOnCleanRamp: with no noise, every technique must reproduce
// the input ramp's arrival closely; the slew-matching ones must also match
// its slope.
func TestIdentityOnCleanRamp(t *testing.T) {
	for _, edge := range []wave.Edge{wave.Rising, wave.Falling} {
		in := cleanInput(edge)
		wantArrival, err := in.Noisy.LastCrossing(0.5 * vdd)
		if err != nil {
			t.Fatal(err)
		}
		wantSlew, err := in.Noisy.Slew(vdd, edge)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range All() {
			gamma, err := tech.Equivalent(in)
			if err != nil {
				t.Fatalf("%v %s: %v", edge, tech.Name(), err)
			}
			if gamma.Edge() != edge {
				t.Errorf("%v %s: wrong direction", edge, tech.Name())
			}
			arr, err := gamma.Arrival()
			if err != nil {
				t.Fatalf("%v %s: %v", edge, tech.Name(), err)
			}
			if math.Abs(arr-wantArrival) > 12e-12 {
				t.Errorf("%v %s: arrival %.1f ps, want %.1f ps",
					edge, tech.Name(), arr*1e12, wantArrival*1e12)
			}
			tt, _ := gamma.TransitionTime()
			if math.Abs(tt-wantSlew) > 0.30*wantSlew {
				t.Errorf("%v %s: transition %.1f ps, want ≈%.1f ps",
					edge, tech.Name(), tt*1e12, wantSlew*1e12)
			}
		}
	}
}

func TestP1UsesNoiselessSlew(t *testing.T) {
	in := cleanInput(wave.Rising)
	// Distort the noisy waveform's slew without moving its 50% point: P1
	// must keep the noiseless slew, P2 must see the distorted one.
	in.Noisy = rampWave(1.05e-9, 0.3e-9, wave.Rising) // faster and shifted
	g1, err := (P1{}).Equivalent(in)
	if err != nil {
		t.Fatal(err)
	}
	tt1, _ := g1.TransitionTime()
	wantNl, _ := in.Noiseless.Slew(vdd, wave.Rising)
	if math.Abs(tt1-wantNl) > 2e-12 {
		t.Errorf("P1 transition %.1f ps, want noiseless %.1f ps", tt1*1e12, wantNl*1e12)
	}
	g2, err := (P2{}).Equivalent(in)
	if err != nil {
		t.Fatal(err)
	}
	tt2, _ := g2.TransitionTime()
	wantNoisy, _ := in.Noisy.Slew(vdd, wave.Rising)
	if math.Abs(tt2-wantNoisy) > 2e-12 {
		t.Errorf("P2 transition %.1f ps, want noisy %.1f ps", tt2*1e12, wantNoisy*1e12)
	}
	// Both anchor at the latest noisy 0.5·Vdd crossing.
	want50, _ := in.Noisy.LastCrossing(0.5 * vdd)
	for name, g := range map[string]wave.Ramp{"P1": g1, "P2": g2} {
		arr, _ := g.Arrival()
		if math.Abs(arr-want50) > 1e-12 {
			t.Errorf("%s arrival %.2f ps, want %.2f ps", name, arr*1e12, want50*1e12)
		}
	}
}

func TestE4AreaEquivalence(t *testing.T) {
	// For a clean linear ramp the E4 construction is exact: the area
	// between the ramp and Vdd above 0.5·Vdd equals the triangle formula,
	// so the fitted slope equals the ramp slope.
	in := cleanInput(wave.Rising)
	g, err := (E4{}).Equivalent(in)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := vdd / 0.4e-9
	if math.Abs(g.A-wantSlope) > 0.05*wantSlope {
		t.Errorf("E4 slope %g, want %g", g.A, wantSlope)
	}
}

func TestE4PessimismWithDips(t *testing.T) {
	// A dip after the 50% crossing adds area and must flatten the E4 slope
	// (the paper's stated pessimism mechanism).
	in := cleanInput(wave.Rising)
	clean, err := (E4{}).Equivalent(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Noisy = glitched(in.Noisy, 1.35e-9, 40e-12, -0.35)
	dipped, err := (E4{}).Equivalent(in)
	if err != nil {
		t.Fatal(err)
	}
	if dipped.A >= clean.A {
		t.Errorf("dip should flatten E4: %g >= %g", dipped.A, clean.A)
	}
}

func TestLSF3MatchesUnweightedFit(t *testing.T) {
	// On a pure ramp (no saturation inside the critical region), the LS
	// fit reproduces the ramp exactly.
	in := cleanInput(wave.Rising)
	g, err := (LSF3{}).Equivalent(in)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := vdd / 0.4e-9
	if math.Abs(g.A-wantSlope) > 0.02*wantSlope {
		t.Errorf("LSF3 slope %g, want %g", g.A, wantSlope)
	}
}

func TestSensitivityKnownRatio(t *testing.T) {
	// Output = inverted input with 2x the slope, transitioning exactly
	// when the input does: |dVout/dVin| = 2 in the overlap.
	in := rampWave(1e-9, 0.4e-9, wave.Rising)
	out := invOut(1e-9, 0.4e-9, 0, 0.2e-9, wave.Rising)
	s, err := ComputeSensitivity(in, out, vdd, wave.Rising, 256)
	if err != nil {
		t.Fatal(err)
	}
	// At mid region (input 0.5·Vdd) both are slewing: ratio = (vdd/0.2n) /
	// (vdd/0.4n) = 2.
	rho := s.RhoAtTime(1.2e-9)
	if math.Abs(rho-2) > 0.1 {
		t.Errorf("rho mid = %g, want 2", rho)
	}
	// Outside the critical region, zero.
	if s.RhoAtTime(0.5e-9) != 0 || s.RhoAtTime(2.5e-9) != 0 {
		t.Error("rho must vanish outside the critical region")
	}
}

func TestSensitivityVoltageRemapBounds(t *testing.T) {
	in := rampWave(1e-9, 0.4e-9, wave.Rising)
	out := invOut(1e-9, 0.4e-9, 50e-12, 0.2e-9, wave.Rising)
	s, err := ComputeSensitivity(in, out, vdd, wave.Rising, 256)
	if err != nil {
		t.Fatal(err)
	}
	// No match exists outside ≈[0.1,0.9]·Vdd: remap must return zero.
	if r, _ := s.AtVoltage(0.02 * vdd); r != 0 {
		t.Errorf("rho below range = %g", r)
	}
	if r, _ := s.AtVoltage(0.99 * vdd); r != 0 {
		t.Errorf("rho above range = %g", r)
	}
	// Inside, finite and non-negative.
	for _, v := range []float64{0.2, 0.4, 0.6, 0.8} {
		r, _ := s.AtVoltage(v * vdd)
		if r < 0 || math.IsNaN(r) || r > rhoCap {
			t.Errorf("rho(%g·Vdd) = %g", v, r)
		}
	}
}

func TestWLS5RequiresOverlap(t *testing.T) {
	// Output transitioning 3 ns after the input: no overlap, ρ ≡ 0 inside
	// the input's critical region → WLS5 must fail with ErrNoSensitivity.
	in := cleanInput(wave.Rising)
	in.NoiselessOut = invOut(1e-9, 0.4e-9, 3e-9, 0.2e-9, wave.Rising)
	_, err := (WLS5{}).Equivalent(in)
	if !errors.Is(err, ErrNoSensitivity) {
		t.Errorf("WLS5 on non-overlapping transitions: err = %v", err)
	}
}

func TestSGDPDeltaShiftHandlesNonOverlap(t *testing.T) {
	// Same non-overlap case: SGDP's δ-shift pre-processing must recover.
	in := cleanInput(wave.Rising)
	in.NoiselessOut = invOut(1e-9, 0.4e-9, 3e-9, 0.2e-9, wave.Rising)
	g, err := NewSGDP().Equivalent(in)
	if err != nil {
		t.Fatalf("SGDP with δ-shift: %v", err)
	}
	arr, _ := g.Arrival()
	want, _ := in.Noisy.LastCrossing(0.5 * vdd)
	if math.Abs(arr-want) > 30e-12 {
		t.Errorf("SGDP arrival %.1f ps, want ≈%.1f ps", arr*1e12, want*1e12)
	}
	// Without the δ-shift it must fail like WLS5.
	noShift := NewSGDP()
	noShift.DeltaShift = false
	if _, err := noShift.Equivalent(in); err == nil {
		t.Error("SGDP without δ-shift accepted non-overlapping transitions")
	}
}

func TestSGDPSeesNoiseOutsideNoiselessWindow(t *testing.T) {
	// The paper's motivating case: noise DELAYS the edge so part of the
	// transition happens after the noiseless critical region. WLS5's
	// window-limited fit goes optimistic; SGDP's remapped weights follow
	// the noise. SGDP's arrival must sit closer to the noisy waveform's
	// true 50% crossing.
	nl := rampWave(1e-9, 0.4e-9, wave.Rising)
	out := invOut(1e-9, 0.4e-9, 80e-12, 0.2e-9, wave.Rising)
	noisy := rampWave(1.35e-9, 0.4e-9, wave.Rising) // edge delayed by 350 ps
	in := Input{Noisy: noisy, Noiseless: nl, NoiselessOut: out, Vdd: vdd, Edge: wave.Rising}

	trueArr, _ := noisy.LastCrossing(0.5 * vdd)
	gS, err := NewSGDP().Equivalent(in)
	if err != nil {
		t.Fatalf("SGDP: %v", err)
	}
	arrS, _ := gS.Arrival()
	gW, err := (WLS5{}).Equivalent(in)
	var errW float64 = math.Inf(1)
	if err == nil {
		arrW, _ := gW.Arrival()
		errW = math.Abs(arrW - trueArr)
	}
	errS := math.Abs(arrS - trueArr)
	if errS > 20e-12 {
		t.Errorf("SGDP arrival error %.1f ps on a delayed edge", errS*1e12)
	}
	if errS > errW {
		t.Errorf("SGDP (%.1f ps) should beat WLS5 (%.1f ps) on noise outside the noiseless window",
			errS*1e12, errW*1e12)
	}
}

func TestSGDPAblationFlags(t *testing.T) {
	in := cleanInput(wave.Rising)
	in.Noisy = glitched(in.Noisy, 1.2e-9, 30e-12, -0.2)
	variants := []*SGDP{
		NewSGDP(),
		{VoltageRemap: true, DeltaShift: true},                     // first-order only
		{SecondOrder: true, DeltaShift: true},                      // no remap
		{VoltageRemap: true, SecondOrder: true},                    // no δ-shift
		{VoltageRemap: true, SecondOrder: true, NoSafeguard: true}, // no fallback
	}
	for i, v := range variants {
		g, err := v.Equivalent(in)
		if err != nil {
			t.Errorf("variant %d: %v", i, err)
			continue
		}
		if g.Edge() != wave.Rising {
			t.Errorf("variant %d: wrong edge", i)
		}
		arr, err := g.Arrival()
		if err != nil || arr < 0.9e-9 || arr > 1.6e-9 {
			t.Errorf("variant %d: arrival %v %v", i, arr, err)
		}
	}
}

func TestTaylorResidualMonotone(t *testing.T) {
	// White-box property: |f| never decreases as |r| grows, for any
	// weight pair. This is the guard that stops Eq. 3 from "cancelling"
	// large errors with an invalid Taylor expansion.
	f := func(a, b, r1, r2 float64) bool {
		rho := math.Mod(math.Abs(a), 10)
		drho := math.Remainder(b, 50)
		x1 := math.Remainder(r1, 2)
		x2 := math.Remainder(r2, 2)
		if math.Abs(x1) > math.Abs(x2) {
			x1, x2 = x2, x1
		}
		if math.Signbit(x1) != math.Signbit(x2) {
			x1 = math.Copysign(x1, x2)
		}
		f1, _ := taylorResidual(rho, drho, x1)
		f2, _ := taylorResidual(rho, drho, x2)
		return math.Abs(f2) >= math.Abs(f1)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAllTechniquesFiniteUnderRandomGlitches(t *testing.T) {
	// Property: for random glitch placements/amplitudes on a rising edge,
	// every technique yields a finite rising ramp whose arrival lies in a
	// sane window around the transition.
	techs := All()
	f := func(a, b, c float64) bool {
		center := 1e-9 + math.Mod(math.Abs(a), 0.6e-9)
		width := 20e-12 + math.Mod(math.Abs(b), 60e-12)
		amp := math.Remainder(c, 0.4)
		in := cleanInput(wave.Rising)
		in.Noisy = glitched(in.Noisy, center, width, amp)
		for _, tech := range techs {
			g, err := tech.Equivalent(in)
			if err != nil {
				return false
			}
			arr, err := g.Arrival()
			if err != nil {
				return false
			}
			if math.IsNaN(arr) || arr < 0.5e-9 || arr > 2.5e-9 {
				return false
			}
			if g.Edge() != wave.Rising {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := (P2{}).Equivalent(Input{Vdd: 1}); err == nil {
		t.Error("missing noisy accepted")
	}
	in := cleanInput(wave.Rising)
	in.Vdd = 0
	if _, err := (P2{}).Equivalent(in); err == nil {
		t.Error("zero vdd accepted")
	}
	in2 := cleanInput(wave.Rising)
	in2.NoiselessOut = nil
	if _, err := (WLS5{}).Equivalent(in2); err == nil {
		t.Error("WLS5 without noiseless output accepted")
	}
	if _, err := (LSF3{}).Equivalent(in2); err != nil {
		t.Errorf("LSF3 should not need the noiseless output: %v", err)
	}
}

func TestByNameAndAll(t *testing.T) {
	names := []string{"P1", "P2", "LSF3", "E4", "WLS5", "SGDP"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d techniques", len(all))
	}
	for i, n := range names {
		if all[i].Name() != n {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name(), n)
		}
		tech, err := ByName(n)
		if err != nil || tech.Name() != n {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestOverlapping(t *testing.T) {
	in := rampWave(1e-9, 0.4e-9, wave.Rising)
	near := invOut(1e-9, 0.4e-9, 50e-12, 0.2e-9, wave.Rising)
	far := invOut(1e-9, 0.4e-9, 3e-9, 0.2e-9, wave.Rising)
	ov, delta, err := Overlapping(in, near, vdd, wave.Rising, wave.Falling)
	if err != nil || !ov {
		t.Errorf("near output should overlap: %v %v", ov, err)
	}
	if math.Abs(delta-50e-12) > 5e-12 {
		t.Errorf("near delta = %g", delta)
	}
	ov, delta, err = Overlapping(in, far, vdd, wave.Rising, wave.Falling)
	if err != nil || ov {
		t.Errorf("far output should not overlap: %v %v", ov, err)
	}
	if math.Abs(delta-3e-9) > 20e-12 {
		t.Errorf("far delta = %g", delta)
	}
}
