package eqwave

import (
	"fmt"
	"math"

	"noisewave/internal/wave"
)

// E4 is the energy-based technique (§2.3), inspired by the Elmore delay:
// Γeff passes through the latest 0.5·Vdd crossing of the noisy waveform and
// its slope is chosen so the area enclosed between the line and the
// v = 0.5·Vdd / v = Vdd levels (for a rising edge; mirrored for falling)
// equals the corresponding area enclosed by the noisy waveform.
//
// The more often the noisy waveform re-crosses 0.5·Vdd, the more area the
// dips contribute, the shallower the fitted slope — the pessimism the paper
// remarks on.
type E4 struct{}

// Name implements Technique.
func (E4) Name() string { return "E4" }

// Equivalent implements Technique.
func (E4) Equivalent(in Input) (wave.Ramp, error) {
	if err := in.validate(false, false); err != nil {
		return wave.Ramp{}, err
	}
	half := 0.5 * in.Vdd
	t50First, err := in.Noisy.FirstCrossing(half)
	if err != nil {
		return wave.Ramp{}, err
	}
	t50Last, err := in.Noisy.LastCrossing(half)
	if err != nil {
		return wave.Ramp{}, err
	}
	// Target level the transition settles toward.
	target := in.Vdd
	if in.Edge == wave.Falling {
		target = 0
	}
	// Area between the clamped waveform and the settling rail, from the
	// first 0.5·Vdd crossing to the end of the record.
	area := 0.0
	end := in.Noisy.End()
	clamped := func(t float64) float64 {
		v := in.Noisy.At(t)
		if in.Edge == wave.Rising {
			return math.Abs(target - math.Min(math.Max(v, half), in.Vdd))
		}
		return math.Abs(math.Max(math.Min(v, half), 0) - target)
	}
	// Integrate on the waveform's own grid for exactness on linear pieces.
	prevT := t50First
	prevV := clamped(prevT)
	for _, t := range in.Noisy.T {
		if t <= t50First {
			continue
		}
		if t > end {
			break
		}
		v := clamped(t)
		area += 0.5 * (prevV + v) * (t - prevT)
		prevT, prevV = t, v
	}
	if area <= 0 {
		return wave.Ramp{}, fmt.Errorf("eqwave: E4: degenerate area %g", area)
	}
	// A ramp from 0.5·Vdd to the rail encloses (0.5·Vdd)²/(2|a|).
	absA := half * half / (2 * area)
	a := absA
	if in.Edge == wave.Falling {
		a = -absA
	}
	return wave.RampThroughPoint(a, t50Last, half, 0, in.Vdd), nil
}
