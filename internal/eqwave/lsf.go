package eqwave

import (
	"noisewave/internal/numeric"
	"noisewave/internal/wave"
)

// LSF3 is the least-squared-error technique (§2.2): Γeff minimizes the sum
// of squared differences to the noisy waveform over P samples spanning the
// noisy critical region. It is a purely mathematical match with no model of
// the receiving gate.
type LSF3 struct{}

// Name implements Technique.
func (LSF3) Name() string { return "LSF3" }

// Equivalent implements Technique.
func (LSF3) Equivalent(in Input) (wave.Ramp, error) {
	if err := in.validate(false, false); err != nil {
		return wave.Ramp{}, err
	}
	tFirst, tLast, err := in.Noisy.CriticalRegion(0.1*in.Vdd, 0.9*in.Vdd, in.Edge)
	if err != nil {
		return wave.Ramp{}, err
	}
	ts := uniformGrid(tFirst, tLast, in.samples())
	vs := make([]float64, len(ts))
	for i, t := range ts {
		vs[i] = in.Noisy.At(t)
	}
	a, b, err := numeric.LineFit(ts, vs)
	if err != nil {
		return wave.Ramp{}, err
	}
	return wave.NewRamp(a, b, 0, in.Vdd), nil
}
