package eqwave

import "noisewave/internal/wave"

// P1 is the first point-based technique (§2.1): the effective slew is the
// 10–90% time of the *noiseless* waveform (as though the noise had never
// happened) and the arrival point is the latest 0.5·Vdd crossing of the
// noisy waveform.
type P1 struct{}

// Name implements Technique.
func (P1) Name() string { return "P1" }

// Equivalent implements Technique.
func (P1) Equivalent(in Input) (wave.Ramp, error) {
	if err := in.validate(true, false); err != nil {
		return wave.Ramp{}, err
	}
	t50, err := latestHalfCrossing(in)
	if err != nil {
		return wave.Ramp{}, err
	}
	tt, err := in.Noiseless.Slew(in.Vdd, in.Edge)
	if err != nil {
		return wave.Ramp{}, err
	}
	a, err := signedSlope(tt, in.Vdd, in.Edge)
	if err != nil {
		return wave.Ramp{}, err
	}
	return wave.RampThroughPoint(a, t50, 0.5*in.Vdd, 0, in.Vdd), nil
}

// P2 is the second point-based technique (§2.1): the effective slew spans
// from the earliest 0.1·Vdd crossing to the latest 0.9·Vdd crossing of the
// *noisy* waveform; the arrival point is the latest 0.5·Vdd crossing.
type P2 struct{}

// Name implements Technique.
func (P2) Name() string { return "P2" }

// Equivalent implements Technique.
func (P2) Equivalent(in Input) (wave.Ramp, error) {
	if err := in.validate(false, false); err != nil {
		return wave.Ramp{}, err
	}
	t50, err := latestHalfCrossing(in)
	if err != nil {
		return wave.Ramp{}, err
	}
	tFirst, tLast, err := in.Noisy.CriticalRegion(0.1*in.Vdd, 0.9*in.Vdd, in.Edge)
	if err != nil {
		return wave.Ramp{}, err
	}
	a, err := signedSlope(tLast-tFirst, in.Vdd, in.Edge)
	if err != nil {
		return wave.Ramp{}, err
	}
	return wave.RampThroughPoint(a, t50, 0.5*in.Vdd, 0, in.Vdd), nil
}
