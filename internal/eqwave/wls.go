package eqwave

import (
	"errors"
	"fmt"

	"noisewave/internal/numeric"
	"noisewave/internal/wave"
)

// WLS5 is the weighted least-squared-error technique of Hashimoto,
// Yamada and Onodera (TCAD 2004), §2.4 of the paper: Γeff minimizes
//
//	Σ_k ρ_noiseless(t_k) · (v_in^noisy(t_k) − a·t_k − b)²        (Eq. 2)
//
// with the weight ρ taken from the *noiseless* transition and therefore
// nonzero only inside the noiseless critical region. Noise distortion
// outside that region is silently ignored — the weakness SGDP fixes.
//
// For gates whose noiseless input and output transitions do not overlap
// (large intrinsic delay, heavy fanout) ρ is undefined/zero and WLS5
// returns ErrNoSensitivity.
type WLS5 struct{}

// Name implements Technique.
func (WLS5) Name() string { return "WLS5" }

// Equivalent implements Technique.
func (WLS5) Equivalent(in Input) (wave.Ramp, error) {
	if err := in.validate(true, true); err != nil {
		return wave.Ramp{}, err
	}
	sens, err := ComputeSensitivity(in.Noiseless, in.NoiselessOut, in.Vdd, in.Edge, 4*in.samples())
	if err != nil {
		return wave.Ramp{}, fmt.Errorf("WLS5: %w", err)
	}
	// Sample over the noiseless critical region: outside it the weight is
	// zero by definition, so those samples cannot contribute.
	ts := uniformGrid(sens.TFirst, sens.TLast, in.samples())
	vs := make([]float64, len(ts))
	ws := make([]float64, len(ts))
	for i, t := range ts {
		vs[i] = in.Noisy.At(t)
		ws[i] = sens.RhoAtTime(t)
	}
	a, b, err := numeric.WeightedLineFit(ts, vs, ws)
	if err != nil {
		if errors.Is(err, numeric.ErrDegenerate) {
			return wave.Ramp{}, fmt.Errorf("WLS5: %w", ErrNoSensitivity)
		}
		return wave.Ramp{}, fmt.Errorf("WLS5: %w", err)
	}
	return wave.NewRamp(a, b, 0, in.Vdd), nil
}
