package eqwave

import (
	"fmt"
	"math"

	"noisewave/internal/numeric"
	"noisewave/internal/wave"
)

// SGDP is the paper's sensitivity-based gate delay propagation (§3).
//
// Step 1 computes ρ_noiseless exactly as WLS5 does. Step 2 remaps ρ onto
// the *noisy* critical region through the voltage domain: at each sample
// time t_i of the noisy region, ρ_eff(t_i) is the noiseless ρ at the time
// the noiseless input passes the same voltage level. Noise distortion is
// therefore weighted wherever it occurs, not only inside the noiseless
// window. Step 3 fits Γeff = a·t + b by minimizing the second-order Taylor
// approximation of the output error (Eq. 3):
//
//	Σ_k [ ρ_eff(t_k)·r_k + ½·(∂ρ/∂v)(t_k)·r_k² ]²,  r_k = a·t_k + b − v^noisy(t_k)
//
// solved by damped Gauss–Newton seeded with the first-order (weighted
// least-squares) solution.
//
// Slope-collapse safeguard: when an input stalls for a long time at a
// voltage level inside the gate's switching band (a crosstalk "sag"), the
// voltage remap assigns that level's large ρ to every revisiting sample,
// the weighted abscissae become nearly collinear at constant voltage, and
// the literal Eq. 3 optimum degenerates toward a flat line (an unphysical
// Γeff slower than the whole transition). The implementation detects the
// collapse — fitted transition time far beyond the noiseless transition
// time — and refits with time-domain weights over the same noisy region,
// finally falling back to the WLS5 fit. See DESIGN.md §5 and the ablation
// benches.
//
// For non-overlapping input/output transitions SGDP shifts the noiseless
// output back by δ (the distance between the 0.5·Vdd crossings) before
// Steps 1–3, restoring a meaningful ρ — the paper's pre/post-processing
// step for multi-stage or heavily loaded gates.
type SGDP struct {
	// SecondOrder enables the ½·(∂ρ/∂v)·r² term of Eq. 3. Disabling it
	// reduces Step 3 to a weighted least-squares fit over ρ_eff (ablation).
	SecondOrder bool
	// VoltageRemap enables Step 2. Disabling it falls back to the
	// time-domain ρ of WLS5 while keeping the Eq. 3 objective (ablation).
	VoltageRemap bool
	// DeltaShift enables the non-overlap pre/post-processing.
	DeltaShift bool
	// ShiftGammaForward additionally shifts the fitted Γeff forward by δ
	// after a δ-shifted fit, following the paper's literal description.
	// The default keeps Γeff in the input time frame (see EXPERIMENTS.md
	// ablation A3 for the comparison).
	ShiftGammaForward bool
	// NoSafeguard disables the slope-collapse fallback (ablation).
	NoSafeguard bool
	// GaussNewtonIters bounds the Eq. 3 iteration (default 20).
	GaussNewtonIters int
	// CollapseFactor is the safeguard threshold: a fit whose 10–90%
	// transition time exceeds CollapseFactor × the noiseless transition
	// time is considered collapsed (default 2.5).
	CollapseFactor float64
}

// NewSGDP returns SGDP with the paper's full feature set enabled.
func NewSGDP() *SGDP {
	return &SGDP{
		SecondOrder:      true,
		VoltageRemap:     true,
		DeltaShift:       true,
		GaussNewtonIters: 20,
	}
}

// Name implements Technique.
func (s *SGDP) Name() string { return "SGDP" }

// Equivalent implements Technique.
func (s *SGDP) Equivalent(in Input) (wave.Ramp, error) {
	if err := in.validate(true, true); err != nil {
		return wave.Ramp{}, err
	}
	nlOut := in.NoiselessOut
	var delta float64
	if s.DeltaShift {
		overlap, d, err := Overlapping(in.Noiseless, nlOut, in.Vdd, in.Edge, nlOut.EdgeDir())
		if err != nil {
			return wave.Ramp{}, fmt.Errorf("SGDP: %w", err)
		}
		if !overlap {
			delta = d
			nlOut = nlOut.Shifted(-delta)
		}
	}
	// Step 1: ρ of the noiseless pair.
	sens, err := ComputeSensitivity(in.Noiseless, nlOut, in.Vdd, in.Edge, 4*in.samples())
	if err != nil {
		return wave.Ramp{}, fmt.Errorf("SGDP: %w", err)
	}
	// Step 2: sample the noisy critical region and attach remapped weights.
	tFirst, tLast, err := in.Noisy.CriticalRegion(0.1*in.Vdd, 0.9*in.Vdd, in.Edge)
	if err != nil {
		return wave.Ramp{}, fmt.Errorf("SGDP: noisy critical region: %w", err)
	}
	P := in.samples()
	ts := uniformGrid(tFirst, tLast, P)
	vs := make([]float64, P)
	rho := make([]float64, P)
	drho := make([]float64, P)
	for i, t := range ts {
		vs[i] = in.Noisy.At(t)
		if s.VoltageRemap {
			rho[i], drho[i] = sens.AtVoltage(vs[i])
		} else {
			rho[i] = sens.RhoAtTime(t)
			_, drho[i] = sens.AtVoltage(vs[i]) // second-order term still needs dρ/dv
		}
	}
	nlTT, err := in.Noiseless.Slew(in.Vdd, in.Edge)
	if err != nil {
		return wave.Ramp{}, fmt.Errorf("SGDP: noiseless slew: %w", err)
	}
	// Plausibility bounds for the fitted arrival. The reference delay is
	// measured at the *latest* 0.5·Vdd crossings (§4.1), so a usable Γeff
	// must cross 0.5·Vdd in the neighbourhood of the noisy waveform's own
	// final crossing: an equivalent waveform arriving half a transition
	// earlier has latched onto an earlier partial rise (a deep multi-
	// crossing dip) that the receiving gate did not commit to, and one
	// arriving later was captured by revisited voltage levels after the
	// transition completed.
	half := 0.5 * in.Vdd
	t50Last, err := in.Noisy.LastCrossing(half)
	if err != nil {
		return wave.Ramp{}, fmt.Errorf("SGDP: %w", err)
	}
	degenerate := func(r wave.Ramp) bool {
		if s.collapsed(r, nlTT, in.Edge) {
			return true
		}
		arr, err := r.Arrival()
		if err != nil {
			return true
		}
		return arr < t50Last-0.5*nlTT || arr > t50Last+0.25*nlTT
	}

	// Step 3 with the remapped weights.
	ramp, err := s.fit(ts, vs, rho, drho, in)
	if err != nil {
		return wave.Ramp{}, err
	}
	if !s.NoSafeguard && degenerate(ramp) {
		// Refit with time-domain weights over the same (noisy) region.
		rhoTD := make([]float64, P)
		for i, t := range ts {
			rhoTD[i] = sens.RhoAtTime(t)
		}
		ramp, err = s.fit(ts, vs, rhoTD, drho, in)
		if err != nil || degenerate(ramp) {
			// Next fallback: the WLS5 fit (noiseless region, first order).
			ramp, err = (WLS5{}).Equivalent(in)
			if err != nil || degenerate(ramp) {
				// Deeply non-monotonic inputs (e.g. several coincident
				// aggressors reversing the edge mid-transition) can defeat
				// every least-squares fit; anchor at the latest 0.5·Vdd
				// crossing with the noisy-region slew instead (P2), which
				// is always well defined.
				ramp, err = (P2{}).Equivalent(in)
				if err != nil {
					return wave.Ramp{}, fmt.Errorf("SGDP: all fits degenerate: %w", err)
				}
			}
		}
	}
	if delta != 0 && s.ShiftGammaForward {
		ramp = ramp.Shifted(delta)
	}
	return ramp, nil
}

// fit performs the Eq. 3 fit: weighted least-squares seed, then optional
// Gauss–Newton refinement of the second-order objective.
func (s *SGDP) fit(ts, vs, rho, drho []float64, in Input) (wave.Ramp, error) {
	a0, b0, err := numeric.WeightedLineFit(ts, vs, rho)
	if err != nil {
		// Degenerate weights (e.g. remap collapses to zero): fall back to
		// an unweighted fit of the noisy region.
		a0, b0, err = numeric.LineFit(ts, vs)
		if err != nil {
			return wave.Ramp{}, fmt.Errorf("SGDP: %w", err)
		}
	}
	ramp := wave.NewRamp(a0, b0, 0, in.Vdd)
	if !s.SecondOrder {
		return ramp, nil
	}
	iters := s.GaussNewtonIters
	if iters <= 0 {
		iters = 20
	}
	P := len(ts)
	p, ok := numeric.GaussNewton2([2]float64{a0, b0}, P,
		func(p [2]float64, resid []float64, jac [][2]float64) {
			for k := 0; k < P; k++ {
				r := p[0]*ts[k] + p[1] - vs[k]
				f, g := taylorResidual(rho[k], drho[k], r)
				resid[k] = f
				jac[k][0] = g * ts[k]
				jac[k][1] = g
			}
		}, iters, 1e-12)
	if ok && s.withinTrustRegion(p, a0, b0, ts, in) {
		ramp = wave.NewRamp(p[0], p[1], 0, in.Vdd)
	}
	return ramp, nil
}

// withinTrustRegion accepts the Gauss–Newton refinement only while it stays
// a *refinement* of the first-order seed: same direction, slope within 2×
// either way, and arrival moved by at most 30% of the fitted region. The
// Taylor expansion behind Eq. 3 is local; a minimum far from the seed is
// outside its validity and empirically degrades the hardest noise cases
// (see the SGDP ablation benches).
func (s *SGDP) withinTrustRegion(p [2]float64, a0, b0 float64, ts []float64, in Input) bool {
	if !isUsableSlope(p[0], in.Edge) {
		return false
	}
	if r := p[0] / a0; r < 0.5 || r > 2.0 {
		return false
	}
	half := 0.5 * in.Vdd
	arrSeed := (half - b0) / a0
	arrGN := (half - p[1]) / p[0]
	width := ts[len(ts)-1] - ts[0]
	return math.Abs(arrGN-arrSeed) <= 0.3*width
}

// collapsed reports whether a fitted ramp is unphysically shallow or has
// the wrong direction.
func (s *SGDP) collapsed(r wave.Ramp, noiselessTT float64, edge wave.Edge) bool {
	if !isUsableSlope(r.A, edge) {
		return true
	}
	tt, err := r.TransitionTime()
	if err != nil {
		return true
	}
	cf := s.CollapseFactor
	if cf <= 0 {
		cf = 2.5
	}
	return tt > cf*noiselessTT
}

// taylorResidual evaluates one Eq. 3 residual f(r) = ρ·r + ½·ρ'·r² and its
// derivative g = df/dr, with a monotone extension past the quadratic's
// extremum: the raw quadratic returns to zero at r = −2ρ/ρ', which would
// let the optimizer "cancel" a large fitting error with an invalid Taylor
// expansion. Beyond the extremum at r* = −ρ/ρ' the residual is frozen at
// its extremal value, keeping |f| non-decreasing in |r|.
func taylorResidual(rho, drho, r float64) (f, g float64) {
	if drho == 0 {
		return rho * r, rho
	}
	rStar := -rho / drho
	beyond := (drho > 0 && r < rStar) || (drho < 0 && r > rStar)
	if beyond {
		f = rho*rStar + 0.5*drho*rStar*rStar // = −ρ²/(2ρ')
		return f, 0
	}
	return rho*r + 0.5*drho*r*r, rho + drho*r
}

// isUsableSlope rejects fits whose slope direction contradicts the edge —
// a sign the Gauss–Newton landed in a degenerate minimum.
func isUsableSlope(a float64, edge wave.Edge) bool {
	if edge == wave.Rising {
		return a > 0
	}
	return a < 0
}
