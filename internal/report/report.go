// Package report renders experiment results as fixed-width text tables and
// CSV, shared by the command-line tools and EXPERIMENTS.md generation.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells (alternating format/value is not
// needed — each argument is rendered with %v).
func (t *Table) AddRowf(format string, args ...interface{}) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	var b strings.Builder
	b.WriteString(line(t.header))
	b.WriteByte('\n')
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(line(row))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Ps formats a duration in seconds as picoseconds with 1 decimal.
func Ps(seconds float64) string { return fmt.Sprintf("%.1f", seconds*1e12) }

// Ns formats a duration in seconds as nanoseconds with 3 decimals.
func Ns(seconds float64) string { return fmt.Sprintf("%.3f", seconds*1e9) }

// WriteWaveCSV dumps aligned (t, v...) series sampled on the first series'
// time grid.
func WriteWaveCSV(w io.Writer, names []string, at func(name string, t float64) float64, times []float64) error {
	var b strings.Builder
	b.WriteString("t")
	for _, n := range names {
		b.WriteByte(',')
		b.WriteString(n)
	}
	b.WriteByte('\n')
	for _, t := range times {
		fmt.Fprintf(&b, "%.6e", t)
		for _, n := range names {
			fmt.Fprintf(&b, ",%.6e", at(n, t))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
