package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Name", "Value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("bb", "22")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %q", out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[3], "bb") {
		t.Errorf("rows: %q", out)
	}
	// Columns align: "Value" starts at the same offset in every line.
	idx := strings.Index(lines[0], "Value")
	if !strings.HasPrefix(lines[2][idx:], "1") || !strings.HasPrefix(lines[3][idx:], "22") {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tbl := NewTable("A", "B", "C")
	tbl.AddRow("x")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x") {
		t.Error("row lost")
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := NewTable("k", "v")
	tbl.AddRow(`with,comma`, `with"quote`)
	var b strings.Builder
	if err := tbl.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "k,v\n\"with,comma\",\"with\"\"quote\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if Ps(1.5e-12) != "1.5" {
		t.Errorf("Ps: %s", Ps(1.5e-12))
	}
	if Ns(2.5e-9) != "2.500" {
		t.Errorf("Ns: %s", Ns(2.5e-9))
	}
}

func TestWriteWaveCSV(t *testing.T) {
	var b strings.Builder
	err := WriteWaveCSV(&b, []string{"x", "y"},
		func(name string, t float64) float64 {
			if name == "x" {
				return t
			}
			return 2 * t
		}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 || lines[0] != "t,x,y" {
		t.Errorf("CSV:\n%s", b.String())
	}
	if !strings.HasPrefix(lines[2], "1.000000e+00,1.000000e+00,2.000000e+00") {
		t.Errorf("row: %q", lines[2])
	}
}
