// Package device provides the transistor and cell models used by the
// transient simulator: an alpha-power-law (Sakurai–Newton) MOSFET model and
// CMOS inverter cells at the drive strengths of the paper's testbench
// (×1, ×4, ×16, ×64).
//
// The paper characterizes against a TSMC 0.13 µm industrial library, which
// is proprietary; this package substitutes a physically-motivated 130 nm
// technology (Vdd = 1.2 V, velocity-saturated alpha ≈ 1.3) whose inverters
// exhibit the same qualitative switching behaviour. See DESIGN.md §2.
package device

import "math"

// MOSParams describes one device polarity of the alpha-power-law model.
// All width-dependent quantities scale linearly with the channel width
// multiplier W used when instantiating a transistor.
type MOSParams struct {
	Vth    float64 // threshold voltage magnitude (V)
	Alpha  float64 // velocity-saturation index (2.0 = long channel)
	K      float64 // drive factor: Idsat = K·W·(Vgs−Vth)^Alpha (A at W=1)
	Kv     float64 // saturation voltage factor: Vdsat = Kv·(Vgs−Vth)^(Alpha/2)
	Lambda float64 // channel-length modulation (1/V)
}

// Tech bundles a full technology description.
type Tech struct {
	Name string
	Vdd  float64 // supply voltage (V)

	NMOS MOSParams
	PMOS MOSParams

	// PWRatio is the PMOS/NMOS width ratio used inside standard cells to
	// balance rise and fall drive.
	PWRatio float64

	// Per-unit-width parasitics for cell construction (F at W=1).
	CGate    float64 // total gate capacitance per unit NMOS width (incl. matched PMOS)
	CDrain   float64 // drain junction capacitance at the cell output per unit width
	CGateOvl float64 // gate-drain overlap (Miller) capacitance per unit width
}

// Default130 returns the built-in 130 nm-class technology. Values are
// calibrated so a ×1 inverter sources ≈0.58 mA at full gate drive and
// presents ≈2 fF of input capacitance, giving FO4-style delays around
// 40–50 ps — consistent with the 0.13 µm library the paper used, and
// strong enough that a ×1 driver holds a 1000 µm victim line against
// 100 fF-per-aggressor coupling in the regime Table 1's error magnitudes
// imply (see DESIGN.md §2).
func Default130() Tech {
	return Tech{
		Name: "generic130",
		Vdd:  1.2,
		NMOS: MOSParams{
			Vth:    0.32,
			Alpha:  1.30,
			K:      6.8e-4,
			Kv:     0.55,
			Lambda: 0.06,
		},
		PMOS: MOSParams{
			Vth:    0.30,
			Alpha:  1.35,
			K:      3.4e-4,
			Kv:     0.60,
			Lambda: 0.08,
		},
		PWRatio:  2.0,
		CGate:    2.0e-15,
		CDrain:   1.6e-15,
		CGateOvl: 0.25e-15,
	}
}

// IDS evaluates the alpha-power-law drain current and its partial
// derivatives for an N-type device with the given gate-source and
// drain-source voltages (source is the lower-potential terminal for normal
// operation). Drain-source reversal (vds < 0) is handled by terminal
// exchange so the model remains well defined during transients.
//
// The returned current is in amperes for a unit-width device; scale by the
// width multiplier externally.
func (p MOSParams) IDS(vgs, vds float64) (id, dIdVgs, dIdVds float64) {
	if vds < 0 {
		// Exchange source and drain: Id(vgs, vds) = −Id(vgs − vds, −vds).
		// With u = vgs − vds, w = −vds:
		//   ∂Id/∂vgs = −∂Id'/∂u
		//   ∂Id/∂vds = +∂Id'/∂u + ∂Id'/∂w
		idr, dgu, dgw := p.IDS(vgs-vds, -vds)
		return -idr, -dgu, dgu + dgw
	}
	vgt := vgs - p.Vth
	if vgt <= 0 {
		return 0, 0, 0
	}
	// Saturation current and voltage. The two powers vgt^α and vgt^(α/2)
	// share one logarithm; see powAlphaPair.
	pw, pwh := powAlphaPair(vgt, p.Alpha)
	idsat0 := p.K * pw.val    // K·vgt^α
	dIdsat0 := p.K * pw.deriv // α·K·vgt^(α−1)
	vdsat := p.Kv * pwh.val
	dVdsat := p.Kv * pwh.deriv
	clm := 1 + p.Lambda*vds

	if vds >= vdsat {
		id = idsat0 * clm
		dIdVgs = dIdsat0 * clm
		dIdVds = idsat0 * p.Lambda
		return id, dIdVgs, dIdVds
	}
	// Triode: quadratic blend that meets the saturation branch with value
	// continuity at vds = vdsat.
	u := vds / vdsat
	f := u * (2 - u)
	dfdu := 2 - 2*u
	id = idsat0 * clm * f
	// ∂/∂vgs: product rule; u depends on vgs through vdsat.
	dudVgs := -vds / (vdsat * vdsat) * dVdsat
	dIdVgs = dIdsat0*clm*f + idsat0*clm*dfdu*dudVgs
	dudVds := 1 / vdsat
	dIdVds = idsat0*p.Lambda*f + idsat0*clm*dfdu*dudVds
	return id, dIdVgs, dIdVds
}

type powResult struct{ val, deriv float64 }

// powAlphaPair returns x^a and x^(a/2), each with its derivative, for
// x > 0, evaluated as exp(a·log x) from a single logarithm. This is the
// dominant cost of the device model (two powers per linearization, several
// hundred thousand per transient), and sharing the log plus skipping
// math.Pow's extended-precision argument reduction roughly halves it. The
// results agree with math.Pow to within a few ulp, far inside the model's
// physical accuracy.
func powAlphaPair(x, a float64) (powResult, powResult) {
	al := a * math.Log(x)
	v := math.Exp(al)
	vh := math.Exp(0.5 * al)
	return powResult{val: v, deriv: a * v / x},
		powResult{val: vh, deriv: 0.5 * a * vh / x}
}
