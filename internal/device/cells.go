package device

import "fmt"

// Cell describes a standard cell at a given drive strength. Drive is the
// width multiplier relative to a unit (×1) cell; the paper's testbench uses
// drives 1, 4, 16 and 64.
type Cell struct {
	Name  string
	Kind  CellKind
	Drive float64
	Tech  Tech
}

// CellKind enumerates the supported logic functions.
type CellKind int

const (
	// Inv is a CMOS inverter.
	Inv CellKind = iota
	// Buf is a two-stage buffer (weak inverter driving a strong one).
	Buf
	// Nand2 is a two-input NAND.
	Nand2
	// Nor2 is a two-input NOR.
	Nor2
	// Aoi21 is an AND-OR-INVERT gate: Y = !(A·B + C).
	Aoi21
	// Oai21 is an OR-AND-INVERT gate: Y = !((A + B)·C).
	Oai21
)

// String returns the canonical kind name.
func (k CellKind) String() string {
	switch k {
	case Inv:
		return "INV"
	case Buf:
		return "BUF"
	case Nand2:
		return "NAND2"
	case Nor2:
		return "NOR2"
	case Aoi21:
		return "AOI21"
	case Oai21:
		return "OAI21"
	}
	return fmt.Sprintf("CellKind(%d)", int(k))
}

// Inverter returns an inverter cell at the given drive strength.
func Inverter(t Tech, drive float64) Cell {
	return Cell{
		Name:  fmt.Sprintf("INVX%g", drive),
		Kind:  Inv,
		Drive: drive,
		Tech:  t,
	}
}

// NAND2 returns a two-input NAND cell at the given drive strength.
func NAND2(t Tech, drive float64) Cell {
	return Cell{Name: fmt.Sprintf("NAND2X%g", drive), Kind: Nand2, Drive: drive, Tech: t}
}

// NOR2 returns a two-input NOR cell at the given drive strength.
func NOR2(t Tech, drive float64) Cell {
	return Cell{Name: fmt.Sprintf("NOR2X%g", drive), Kind: Nor2, Drive: drive, Tech: t}
}

// Buffer returns a two-stage buffer cell at the given (output) drive.
func Buffer(t Tech, drive float64) Cell {
	return Cell{Name: fmt.Sprintf("BUFX%g", drive), Kind: Buf, Drive: drive, Tech: t}
}

// AOI21 returns an AND-OR-INVERT (Y = !(A·B + C)) cell.
func AOI21(t Tech, drive float64) Cell {
	return Cell{Name: fmt.Sprintf("AOI21X%g", drive), Kind: Aoi21, Drive: drive, Tech: t}
}

// OAI21 returns an OR-AND-INVERT (Y = !((A + B)·C)) cell.
func OAI21(t Tech, drive float64) Cell {
	return Cell{Name: fmt.Sprintf("OAI21X%g", drive), Kind: Oai21, Drive: drive, Tech: t}
}

// InputCap returns the capacitance presented by one input pin of the cell.
// For series stacks (NAND/NOR) the per-input gate area matches the
// inverter's at equal drive; the internal sizing compensates the stack.
func (c Cell) InputCap() float64 {
	switch c.Kind {
	case Buf:
		// First stage is sized Drive/4 (minimum 1).
		first := c.Drive / 4
		if first < 1 {
			first = 1
		}
		return c.Tech.CGate * first
	case Nand2:
		// NMOS stack doubled in width: larger gate per input.
		return c.Tech.CGate * c.Drive * 1.25
	case Nor2:
		return c.Tech.CGate * c.Drive * 1.5
	case Aoi21, Oai21:
		// Mixed stacks: between the NAND and NOR cases.
		return c.Tech.CGate * c.Drive * 1.4
	default:
		return c.Tech.CGate * c.Drive
	}
}

// OutputCap returns the intrinsic drain capacitance at the cell output.
func (c Cell) OutputCap() float64 {
	switch c.Kind {
	case Nand2, Nor2:
		return c.Tech.CDrain * c.Drive * 1.5
	case Aoi21, Oai21:
		return c.Tech.CDrain * c.Drive * 1.8
	default:
		return c.Tech.CDrain * c.Drive
	}
}

// NWidth returns the effective NMOS pull-down width multiplier.
func (c Cell) NWidth() float64 {
	switch c.Kind {
	case Nand2:
		// Two series NMOS each at double width: effective drive matches an
		// inverter of the same drive class.
		return 2 * c.Drive
	default:
		return c.Drive
	}
}

// PWidth returns the effective PMOS pull-up width multiplier (before the
// technology's P/N ratio is applied).
func (c Cell) PWidth() float64 {
	switch c.Kind {
	case Nor2:
		return 2 * c.Drive
	default:
		return c.Drive
	}
}
