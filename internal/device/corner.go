package device

import "fmt"

// Corner describes a process/voltage/temperature corner as multiplicative
// and additive adjustments to the nominal technology. Characterizing a
// library per corner and timing against the slow corner for setup (late)
// and the fast corner for hold (early) is standard sign-off practice.
type Corner struct {
	Name string
	// KScale multiplies both polarities' drive factors (process +
	// temperature mobility effects).
	KScale float64
	// VthShift is added to both threshold magnitudes (V).
	VthShift float64
	// VddScale multiplies the supply.
	VddScale float64
}

// Standard corners for the built-in technology. The numbers follow the
// usual ±10% supply, ±25 mV threshold, ∓15–20% drive spreads of a 130 nm
// process.
var (
	TypicalCorner = Corner{Name: "tt", KScale: 1.00, VthShift: 0.000, VddScale: 1.00}
	SlowCorner    = Corner{Name: "ss", KScale: 0.80, VthShift: +0.025, VddScale: 0.90}
	FastCorner    = Corner{Name: "ff", KScale: 1.20, VthShift: -0.025, VddScale: 1.10}
)

// AtCorner returns the technology adjusted to the given corner. The
// returned Tech is independent of the receiver.
func (t Tech) AtCorner(c Corner) Tech {
	out := t
	out.Name = fmt.Sprintf("%s_%s", t.Name, c.Name)
	if c.KScale != 0 {
		out.NMOS.K *= c.KScale
		out.PMOS.K *= c.KScale
	}
	out.NMOS.Vth += c.VthShift
	out.PMOS.Vth += c.VthShift
	if c.VddScale != 0 {
		out.Vdd *= c.VddScale
	}
	return out
}
