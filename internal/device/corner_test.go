package device

import "testing"

func TestCornerAdjustments(t *testing.T) {
	nom := Default130()
	ss := nom.AtCorner(SlowCorner)
	ff := nom.AtCorner(FastCorner)
	if ss.Name != "generic130_ss" || ff.Name != "generic130_ff" {
		t.Errorf("corner names: %s %s", ss.Name, ff.Name)
	}
	if !(ss.NMOS.K < nom.NMOS.K && nom.NMOS.K < ff.NMOS.K) {
		t.Error("drive factors not ordered ss < tt < ff")
	}
	if !(ss.NMOS.Vth > nom.NMOS.Vth && ff.NMOS.Vth < nom.NMOS.Vth) {
		t.Error("thresholds not ordered")
	}
	if !(ss.Vdd < nom.Vdd && nom.Vdd < ff.Vdd) {
		t.Error("supplies not ordered")
	}
	// The receiver is untouched.
	if nom.NMOS.K != Default130().NMOS.K {
		t.Error("AtCorner mutated the nominal technology")
	}
	// Typical corner is the identity.
	tt := nom.AtCorner(TypicalCorner)
	if tt.NMOS.K != nom.NMOS.K || tt.Vdd != nom.Vdd || tt.NMOS.Vth != nom.NMOS.Vth {
		t.Error("typical corner changed the technology")
	}
}

// TestCornerCurrentsOrdered: at identical bias, the slow corner must source
// less current than nominal, the fast corner more. (Delay ordering follows
// directly; the full-chain check lives in the charlib corner test.)
func TestCornerCurrentsOrdered(t *testing.T) {
	nom := Default130()
	ss := nom.AtCorner(SlowCorner)
	ff := nom.AtCorner(FastCorner)
	iNom, _, _ := nom.NMOS.IDS(1.0, 0.8)
	iSS, _, _ := ss.NMOS.IDS(1.0, 0.8)
	iFF, _, _ := ff.NMOS.IDS(1.0, 0.8)
	if !(iSS < iNom && iNom < iFF) {
		t.Errorf("currents not ordered: ss=%g tt=%g ff=%g", iSS, iNom, iFF)
	}
}
