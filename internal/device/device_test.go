package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIDSRegions(t *testing.T) {
	p := Default130().NMOS
	// Cutoff.
	if id, g1, g2 := p.IDS(0.1, 0.6); id != 0 || g1 != 0 || g2 != 0 {
		t.Errorf("subthreshold current %g %g %g", id, g1, g2)
	}
	// Saturation: current independent of small vds changes (up to lambda).
	idSat, _, gds := p.IDS(1.2, 1.0)
	if idSat <= 0 {
		t.Fatal("no saturation current")
	}
	if gds <= 0 || gds > 0.2*idSat {
		t.Errorf("gds = %g (idSat=%g): CLM out of range", gds, idSat)
	}
	// Triode: current below saturation and increasing with vds.
	idLin, _, gdsLin := p.IDS(1.2, 0.1)
	if idLin >= idSat {
		t.Error("triode current above saturation")
	}
	if gdsLin <= gds {
		t.Error("triode conductance should exceed saturation conductance")
	}
}

func TestIDSContinuityAtVdsat(t *testing.T) {
	p := Default130().NMOS
	vgs := 1.0
	vgt := vgs - p.Vth
	vdsat := p.Kv * math.Pow(vgt, p.Alpha/2)
	below, _, _ := p.IDS(vgs, vdsat*(1-1e-9))
	above, _, _ := p.IDS(vgs, vdsat*(1+1e-9))
	if math.Abs(below-above) > 1e-9*math.Abs(above) {
		t.Errorf("discontinuity at vdsat: %g vs %g", below, above)
	}
}

func TestIDSReversal(t *testing.T) {
	p := Default130().NMOS
	// Antisymmetry under terminal exchange: Id(vgs, vds) with vds < 0
	// equals −Id(vgs−vds, −vds).
	id, _, _ := p.IDS(1.0, -0.4)
	ref, _, _ := p.IDS(1.4, 0.4)
	if math.Abs(id+ref) > 1e-12 {
		t.Errorf("reversal: %g vs %g", id, -ref)
	}
	// Zero crossing at vds = 0.
	if id, _, _ := p.IDS(1.0, 0); id != 0 {
		t.Errorf("Id(vds=0) = %g", id)
	}
}

func TestIDSDerivativesMatchFiniteDifferences(t *testing.T) {
	p := Default130().NMOS
	const h = 1e-7
	f := func(a, b float64) bool {
		vgs := 0.4 + math.Mod(math.Abs(a), 0.8)
		vds := 0.05 + math.Mod(math.Abs(b), 1.1)
		// Stay away from the vdsat kink where one-sided derivatives differ.
		vgt := vgs - p.Vth
		vdsat := p.Kv * math.Pow(vgt, p.Alpha/2)
		if math.Abs(vds-vdsat) < 1e-3 {
			return true
		}
		_, dg, dd := p.IDS(vgs, vds)
		ip, _, _ := p.IDS(vgs+h, vds)
		im, _, _ := p.IDS(vgs-h, vds)
		fdG := (ip - im) / (2 * h)
		ip, _, _ = p.IDS(vgs, vds+h)
		im, _, _ = p.IDS(vgs, vds-h)
		fdD := (ip - im) / (2 * h)
		okG := math.Abs(dg-fdG) <= 1e-4*(math.Abs(fdG)+1e-9)
		okD := math.Abs(dd-fdD) <= 1e-4*(math.Abs(fdD)+1e-9)
		return okG && okD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIDSMonotonicityProperty(t *testing.T) {
	p := Default130().NMOS
	// Current must be non-decreasing in vgs at fixed vds, and in vds at
	// fixed vgs (for vds >= 0).
	f := func(a, b, c float64) bool {
		vgs1 := math.Mod(math.Abs(a), 1.2)
		vgs2 := math.Mod(math.Abs(b), 1.2)
		if vgs1 > vgs2 {
			vgs1, vgs2 = vgs2, vgs1
		}
		vds := math.Mod(math.Abs(c), 1.2)
		i1, _, _ := p.IDS(vgs1, vds)
		i2, _, _ := p.IDS(vgs2, vds)
		return i2 >= i1-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCellProperties(t *testing.T) {
	tech := Default130()
	inv1 := Inverter(tech, 1)
	inv4 := Inverter(tech, 4)
	if inv1.Name != "INVX1" || inv4.Name != "INVX4" {
		t.Errorf("names: %s %s", inv1.Name, inv4.Name)
	}
	if inv4.InputCap() != 4*inv1.InputCap() {
		t.Error("input cap does not scale with drive")
	}
	if inv4.OutputCap() <= inv1.OutputCap() {
		t.Error("output cap does not scale")
	}
	n := NAND2(tech, 2)
	if n.NWidth() != 4 { // stacked NMOS doubled
		t.Errorf("NAND2 NWidth = %g", n.NWidth())
	}
	if n.PWidth() != 2 {
		t.Errorf("NAND2 PWidth = %g", n.PWidth())
	}
	r := NOR2(tech, 2)
	if r.PWidth() != 4 {
		t.Errorf("NOR2 PWidth = %g", r.PWidth())
	}
	b := Buffer(tech, 8)
	if b.InputCap() >= Inverter(tech, 8).InputCap() {
		t.Error("buffer input cap should be the (smaller) first stage")
	}
	kinds := map[CellKind]string{Inv: "INV", Buf: "BUF", Nand2: "NAND2", Nor2: "NOR2"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %s", k, k.String())
		}
	}
}
