// Package sta is a gate-level static timing engine built on the NLDM
// library layer: topological arrival propagation with rise/fall edges,
// per-net loading (pin caps + wire caps + coupling caps), critical-path
// extraction, and a noise-aware mode in which crosstalk-distorted nets are
// annotated with their waveforms and converted to equivalent linear
// waveforms by any of the paper's techniques before table lookup — exactly
// how the paper proposes SGDP be deployed inside a commercial timer.
package sta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"noisewave/internal/eqwave"
	"noisewave/internal/liberty"
	"noisewave/internal/netlist"
	"noisewave/internal/telemetry"
	"noisewave/internal/wave"
)

// PinTiming is the timing state of one net for one edge.
type PinTiming struct {
	Valid   bool
	Arrival float64 // latest (max) arrival (s)
	Trans   float64 // transition time at the latest arrival (s)

	// Early is the earliest (min) arrival, propagated alongside the
	// latest; min/max pairs feed hold-style checks and uncertainty
	// windows.
	Early float64

	// Back-pointers for path extraction (latest arrival only).
	FromNet  string
	FromEdge wave.Edge
	ViaGate  string
}

// NetTiming carries both edges of one net.
type NetTiming struct {
	Rise, Fall PinTiming
}

// timingFor returns the entry for an edge.
func (n *NetTiming) timingFor(e wave.Edge) *PinTiming {
	if e == wave.Rising {
		return &n.Rise
	}
	return &n.Fall
}

// NoiseAnnotation attaches crosstalk waveforms to a net: the noisy input
// observed at the receiving gate, plus the noiseless input/output pair the
// sensitivity-based techniques require.
//
// Noiseless and NoiselessOut may be left nil when the library was
// characterized with output waveforms (charlib Options.WithWaves): the
// timer then reconstructs the pair during propagation — the noiseless
// input as a ramp at the net's propagated arrival/transition, the
// noiseless output as the receiving cell's stored shape at the nearest
// characterization grid point — so noise-aware timing needs only the noisy
// waveform and a .lib file.
type NoiseAnnotation struct {
	Noisy        *wave.Waveform
	Noiseless    *wave.Waveform
	NoiselessOut *wave.Waveform
	Edge         wave.Edge
}

// Timer runs static timing on a design against a library.
//
// The context-first entry point is RunCtx(ctx, RunOptions): cancellable,
// parallel, traced and metered, with annotations snapshotted at run start
// so concurrent Annotate and RunCtx calls are defined behavior. Run is the
// retained legacy surface (a bit-identical sequential wrapper), and
// RunReference is the original map-based walk kept as the equivalence
// oracle.
type Timer struct {
	Lib    *liberty.Library
	Design *netlist.Design

	// Technique converts noise-annotated nets to equivalent waveforms
	// (default: SGDP).
	Technique eqwave.Technique
	// Noise maps net names to their annotations. Mutate through Annotate
	// (not directly) when a RunCtx may be in flight on another goroutine.
	Noise map[string]*NoiseAnnotation
	// P is the technique sample count (default eqwave.DefaultP).
	P int
	// Wire selects the interconnect delay model (default IdealWire);
	// RunOptions.Wire overrides it per run.
	Wire WireModel
	// Telemetry, if non-nil, observes the run: gate and arc counters, the
	// noise-conversion counter and the wall time of each Run (metric names
	// in EXPERIMENTS.md "Observability"). RunOptions.Telemetry overrides
	// it per run.
	Telemetry *telemetry.Registry

	// mu guards Noise for the Annotate/snapshotNoise pair.
	mu sync.Mutex
}

// New builds a timer with the default (SGDP) noise conversion.
func New(lib *liberty.Library, d *netlist.Design) *Timer {
	return &Timer{
		Lib:       lib,
		Design:    d,
		Technique: eqwave.NewSGDP(),
		Noise:     make(map[string]*NoiseAnnotation),
	}
}

// Annotate attaches a noise annotation to a net. It is safe to call
// concurrently with RunCtx: each run snapshots the annotation map when it
// starts, so an annotation lands either wholly in a run or not at all.
func (t *Timer) Annotate(net string, a *NoiseAnnotation) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Noise[net] = a
}

// Result holds the computed timing.
type Result struct {
	Nets map[string]*NetTiming
	// Order is the topological gate order used (diagnostics).
	Order []string

	// noiseConv memoizes the technique conversion of each annotated net,
	// keyed by (net, edge): the forward pass converts each annotated net
	// once, and the backward pass (ComputeRequired) reuses the stored
	// (arrival, transition) instead of re-running the full technique fit
	// per backward arc. The cache lives on the Result because required-time
	// propagation is documented as valid only against the Result of the
	// same Timer.Run call.
	noiseConv map[noiseKey]noiseVal
}

// noiseKey identifies one annotated (net, edge) conversion.
type noiseKey struct {
	net  string
	edge wave.Edge
}

// noiseVal is the memoized outcome of one technique conversion.
type noiseVal struct {
	arrival float64
	trans   float64
}

// ErrCombinationalLoop is returned when the gate graph has a cycle.
var ErrCombinationalLoop = errors.New("sta: combinational loop detected")

// Run propagates arrivals from the primary inputs to all nets.
//
// Deprecated: use RunCtx, which adds cancellation, parallelism, tracing
// and per-run telemetry through RunOptions. Run() is exactly
// RunCtx(context.Background(), RunOptions{Workers: 1}) and stays
// bit-identical to it.
func (t *Timer) Run() (*Result, error) {
	return t.RunCtx(context.Background(), RunOptions{Workers: 1})
}

// RunReference is the original sequential map-based walk, retained
// verbatim as the equivalence oracle the levelized parallel engine is
// tested against (and as the pre-levelized baseline cmd/bench's sta-mesh
// workload measures speedups over). It reads t.Noise live rather than
// snapshotting and performs per-net map lookups throughout — use RunCtx
// for production timing.
func (t *Timer) RunReference() (*Result, error) {
	defer t.Telemetry.Timer("sta.run_seconds").Start()()
	gatesTimed := t.Telemetry.Counter("sta.gates_timed")
	d := t.Design
	res := &Result{
		Nets:      make(map[string]*NetTiming),
		noiseConv: make(map[noiseKey]noiseVal),
	}
	netOf := func(name string) *NetTiming {
		n, ok := res.Nets[name]
		if !ok {
			n = &NetTiming{}
			res.Nets[name] = n
		}
		return n
	}

	// Primary inputs arrive with both edges.
	for _, p := range d.Inputs {
		n := netOf(p.Name)
		n.Rise = PinTiming{Valid: true, Arrival: p.Arrival, Early: p.Arrival, Trans: p.Slew}
		n.Fall = PinTiming{Valid: true, Arrival: p.Arrival, Early: p.Arrival, Trans: p.Slew}
	}

	order, err := t.levelize()
	if err != nil {
		return nil, err
	}
	res.Order = order

	loads, pinCaps, err := t.netLoads()
	if err != nil {
		return nil, err
	}

	gatesByName := make(map[string]*netlist.Gate, len(d.Gates))
	for i := range d.Gates {
		gatesByName[d.Gates[i].Name] = &d.Gates[i]
	}

	for _, gname := range order {
		gatesTimed.Inc()
		g := gatesByName[gname]
		cell, err := t.Lib.Cell(g.Cell)
		if err != nil {
			return nil, fmt.Errorf("sta: gate %s: %w", g.Name, err)
		}
		outNet, ok := g.Pins["Y"]
		if !ok {
			return nil, fmt.Errorf("sta: gate %s has no output pin Y", g.Name)
		}
		load := loads[outNet]
		out := netOf(outNet)
		for _, inPin := range cell.InputPins() {
			inNet, ok := g.Pins[inPin]
			if !ok {
				return nil, fmt.Errorf("sta: gate %s pin %s unconnected", g.Name, inPin)
			}
			arc, ok := cell.ArcTo(inPin)
			if !ok {
				return nil, fmt.Errorf("sta: cell %s has no arc %s->Y", cell.Name, inPin)
			}
			inTiming, err := t.inputTiming(res, netOf(inNet), inNet, cell, arc, load)
			if err != nil {
				return nil, fmt.Errorf("sta: gate %s input %s: %w", g.Name, inNet, err)
			}
			for _, inEdge := range []wave.Edge{wave.Rising, wave.Falling} {
				it := inTiming.timingFor(inEdge)
				if !it.Valid {
					continue
				}
				inArr, inTrans := it.Arrival, it.Trans
				if t.Wire == ElmoreWire {
					wDelay, wTrans := wireDelay(netRes(d, inNet),
						d.NetCaps[inNet], pinCaps[inNet], inTrans)
					inArr += wDelay
					inTrans = wTrans
				}
				delay, outTrans, outEdge, err := arc.Delay(inEdge, inTrans, load)
				if err != nil {
					return nil, fmt.Errorf("sta: gate %s: %w", g.Name, err)
				}
				cand := inArr + delay
				// Early arrival through the same arc: the minimum input
				// plus the (same-condition) delay. Wire delay applies to
				// both bounds.
				candEarly := it.Early + (inArr - it.Arrival) + delay
				ot := out.timingFor(outEdge)
				if !ot.Valid {
					*ot = PinTiming{
						Valid: true, Arrival: cand, Early: candEarly, Trans: outTrans,
						FromNet: inNet, FromEdge: inEdge, ViaGate: g.Name,
					}
					continue
				}
				if cand > ot.Arrival {
					early := ot.Early // keep the running minimum
					*ot = PinTiming{
						Valid: true, Arrival: cand, Early: early, Trans: outTrans,
						FromNet: inNet, FromEdge: inEdge, ViaGate: g.Name,
					}
				}
				if candEarly < ot.Early {
					ot.Early = candEarly
				}
			}
		}
	}
	return res, nil
}

// inputTiming returns the effective timing of a net as seen by a receiving
// gate: the propagated timing, unless the net carries a noise annotation —
// in which case the annotation's noisy waveform is converted to Γeff by the
// configured technique and its arrival/transition replace the propagated
// values for the annotated edge. cell/arc/load describe the receiving gate
// (used to reconstruct the noiseless pair from library waveforms when the
// annotation does not carry it).
//
// The conversion is memoized per (net, edge) on the Result: the technique
// fit runs once per annotated net and every later consumer — further
// fanouts in the forward pass, every backward arc in ComputeRequired —
// reuses the stored (arrival, transition). The sta.noise_conversions
// counter therefore counts actual fits, not lookups.
func (t *Timer) inputTiming(res *Result, base *NetTiming, net string, cell *liberty.Cell, arc *liberty.Arc, load float64) (*NetTiming, error) {
	ann, ok := t.Noise[net]
	if !ok {
		return base, nil
	}
	arr, tt, err := t.convertNoise(res, t.Telemetry, net, ann, base, cell, arc, load)
	if err != nil {
		return nil, err
	}
	// Stamp the converted timing into the result's net entry (keeping the
	// path back-pointers), so reported arrivals, critical paths and slacks
	// agree with the timing downstream gates actually saw.
	if nt, ok := res.Nets[net]; ok {
		pt := nt.timingFor(ann.Edge)
		pt.Valid = true
		pt.Arrival, pt.Early, pt.Trans = arr, arr, tt
	}
	eff := *base
	*eff.timingFor(ann.Edge) = PinTiming{Valid: true, Arrival: arr, Early: arr, Trans: tt}
	return &eff, nil
}

// convertNoise resolves one annotated (net, edge) to its equivalent-ramp
// arrival and transition, memoized on the Result so the technique fit runs
// once per annotated net regardless of which engine (map walk or levelized
// parallel) or pass (forward or backward) asks. The caller stamps the
// values wherever its own storage lives.
func (t *Timer) convertNoise(res *Result, reg *telemetry.Registry, net string, ann *NoiseAnnotation,
	base *NetTiming, cell *liberty.Cell, arc *liberty.Arc, load float64) (arr, tt float64, err error) {

	if res.noiseConv == nil {
		res.noiseConv = make(map[noiseKey]noiseVal)
	}
	key := noiseKey{net: net, edge: ann.Edge}
	if v, ok := res.noiseConv[key]; ok {
		return v.arrival, v.trans, nil
	}
	nl, nlOut := ann.Noiseless, ann.NoiselessOut
	if nl == nil || nlOut == nil {
		nl, nlOut, err = t.reconstructNoiseless(base, ann, cell, arc, load)
		if err != nil {
			return 0, 0, fmt.Errorf("noise annotation on %s: %w", net, err)
		}
	}
	reg.Counter("sta.noise_conversions").Inc()
	gamma, err := t.Technique.Equivalent(eqwave.Input{
		Noisy:        ann.Noisy,
		Noiseless:    nl,
		NoiselessOut: nlOut,
		Vdd:          t.Lib.Vdd,
		Edge:         ann.Edge,
		P:            t.P,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("noise conversion (%s): %w", t.Technique.Name(), err)
	}
	arr, err = gamma.Arrival()
	if err != nil {
		return 0, 0, err
	}
	tt, err = gamma.TransitionTime()
	if err != nil {
		return 0, 0, err
	}
	res.noiseConv[key] = noiseVal{arrival: arr, trans: tt}
	return arr, tt, nil
}

// reconstructNoiseless rebuilds the noiseless input/output pair of an
// annotated net from the library: the input as a saturated ramp at the
// propagated arrival/transition, the output as the receiving cell's stored
// characterization waveform (nearest grid point), shifted to the arrival.
func (t *Timer) reconstructNoiseless(base *NetTiming, ann *NoiseAnnotation, cell *liberty.Cell, arc *liberty.Arc, load float64) (nl, nlOut *wave.Waveform, err error) {
	pt := base.timingFor(ann.Edge)
	if !pt.Valid {
		return nil, nil, fmt.Errorf("no propagated timing for the %v edge", ann.Edge)
	}
	if cell.Waves == nil {
		return nil, nil, fmt.Errorf("cell %s has no characterized output waveforms (re-characterize with WithWaves)", cell.Name)
	}
	outEdge := ann.Edge
	if arc.Sense == liberty.NegativeUnate {
		outEdge = outEdge.Opposite()
	}
	wt, ok := cell.Waves[outEdge]
	if !ok {
		return nil, nil, fmt.Errorf("cell %s missing %v output waveforms", cell.Name, outEdge)
	}
	shape := wt.Nearest(pt.Trans, load)
	if shape == nil {
		return nil, nil, fmt.Errorf("cell %s has an empty waveform grid", cell.Name)
	}
	// Stored shapes use t = 0 at the input's 50% crossing.
	nlOut = shape.Shifted(pt.Arrival)

	vdd := t.Lib.Vdd
	a := 0.8 * vdd / pt.Trans
	if ann.Edge == wave.Falling {
		a = -a
	}
	ramp := wave.RampThroughPoint(a, pt.Arrival, 0.5*vdd, 0, vdd)
	span := 2 * pt.Trans
	nl = ramp.ToWaveform(pt.Arrival-span, pt.Arrival+span, 512)
	return nl, nlOut, nil
}

// netLoads computes the capacitive load on every net — receiver pin caps +
// annotated wire cap + declared coupling caps (grounded-aggressor
// approximation) — and, separately, the sum of receiver pin caps per net,
// which the Elmore wire model needs on its own (delay = ln2·R·(Cw/2 +
// ΣCpins), so lumping the wire cap into the pin term would double-count).
func (t *Timer) netLoads() (loads, pinCaps map[string]float64, err error) {
	loads = make(map[string]float64)
	pinCaps = make(map[string]float64)
	for net, c := range t.Design.NetCaps {
		loads[net] += c
	}
	for _, cp := range t.Design.Couplings {
		loads[cp.A] += cp.Cap
		loads[cp.B] += cp.Cap
	}
	for _, g := range t.Design.Gates {
		cell, err := t.Lib.Cell(g.Cell)
		if err != nil {
			return nil, nil, fmt.Errorf("sta: gate %s: %w", g.Name, err)
		}
		for _, pin := range cell.InputPins() {
			net, ok := g.Pins[pin]
			if !ok {
				continue
			}
			p, _ := cell.Pin(pin)
			loads[net] += p.Cap
			pinCaps[net] += p.Cap
		}
	}
	return loads, pinCaps, nil
}

// levelize returns gates in topological order (Kahn's algorithm over the
// net dependency graph).
func (t *Timer) levelize() ([]string, error) {
	d := t.Design
	driver := make(map[string]string) // net -> driving gate
	for _, g := range d.Gates {
		if out, ok := g.Pins["Y"]; ok {
			if prev, dup := driver[out]; dup {
				return nil, &MultiDriverError{Net: out, Driver1: prev, Driver2: g.Name}
			}
			driver[out] = g.Name
		}
	}
	primary := make(map[string]bool)
	for _, p := range d.Inputs {
		primary[p.Name] = true
	}
	// Dependency edges: gate A -> gate B when A drives one of B's inputs.
	indeg := make(map[string]int)
	succ := make(map[string][]string)
	for _, g := range d.Gates {
		indeg[g.Name] = 0
	}
	for _, g := range d.Gates {
		for pin, net := range g.Pins {
			if pin == "Y" {
				continue
			}
			if primary[net] {
				continue
			}
			drv, ok := driver[net]
			if !ok {
				return nil, fmt.Errorf("sta: net %s (input of %s) has no driver", net, g.Name)
			}
			succ[drv] = append(succ[drv], g.Name)
			indeg[g.Name]++
		}
	}
	var queue []string
	for name, deg := range indeg {
		if deg == 0 {
			queue = append(queue, name)
		}
	}
	sort.Strings(queue) // deterministic order
	var order []string
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		order = append(order, g)
		next := succ[g]
		sort.Strings(next)
		for _, s := range next {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(d.Gates) {
		return nil, ErrCombinationalLoop
	}
	return order, nil
}

// WorstOutput returns the latest-arriving (net, edge) among the design's
// primary outputs.
func (r *Result) WorstOutput(outputs []string) (net string, edge wave.Edge, at PinTiming, err error) {
	worst := math.Inf(-1)
	found := false
	for _, o := range outputs {
		n, ok := r.Nets[o]
		if !ok {
			continue
		}
		for _, e := range []wave.Edge{wave.Rising, wave.Falling} {
			pt := n.timingFor(e)
			if pt.Valid && pt.Arrival > worst {
				worst = pt.Arrival
				net, edge, at = o, e, *pt
				found = true
			}
		}
	}
	if !found {
		return "", wave.Rising, PinTiming{}, errors.New("sta: no timed outputs")
	}
	return net, edge, at, nil
}

// PathStep is one hop of an extracted critical path.
type PathStep struct {
	Net     string
	Edge    wave.Edge
	Arrival float64
	Trans   float64
	ViaGate string // gate driving this net ("" for primary inputs)
}

// CriticalPath walks the back-pointers from a (net, edge) endpoint to a
// primary input. A walk that has not reached a primary input after
// maxPathSteps hops means the back-pointers are corrupt (a cycle a
// levelized run cannot produce, or a Result assembled by hand); it is
// reported as an error rather than returned as a plausible-looking
// truncated path.
func (r *Result) CriticalPath(net string, edge wave.Edge) ([]PathStep, error) {
	const maxPathSteps = 10000
	var rev []PathStep
	cur, curEdge := net, edge
	for {
		if len(rev) >= maxPathSteps {
			return nil, fmt.Errorf("sta: critical path from %s (%v) exceeds %d steps without reaching a primary input (corrupt back-pointers)",
				net, edge, maxPathSteps)
		}
		n, ok := r.Nets[cur]
		if !ok {
			return nil, fmt.Errorf("sta: path reaches untimed net %s", cur)
		}
		pt := n.timingFor(curEdge)
		if !pt.Valid {
			return nil, fmt.Errorf("sta: path reaches invalid timing at %s (%v)", cur, curEdge)
		}
		rev = append(rev, PathStep{
			Net: cur, Edge: curEdge, Arrival: pt.Arrival, Trans: pt.Trans, ViaGate: pt.ViaGate,
		})
		if pt.ViaGate == "" {
			break
		}
		cur, curEdge = pt.FromNet, pt.FromEdge
	}
	// Reverse to input→output order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}
