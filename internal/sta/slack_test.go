package sta

import (
	"math"
	"testing"

	"noisewave/internal/wave"
)

func TestSlackSimpleChain(t *testing.T) {
	d := mustParse(t, `
design chain
input a at=0ps slew=50ps
output y
gate u1 INV A=a Y=n1
gate u2 INV A=n1 Y=y
`)
	timer := New(testLib(), d)
	res, err := timer.Run()
	if err != nil {
		t.Fatal(err)
	}
	req, err := timer.ComputeRequired(res, map[string]float64{"y": 100e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Forward: y rise arrives at 22 ps (12 fall + 10 rise).
	s, ok := req.Slack(res, "y", wave.Rising)
	if !ok {
		t.Fatal("no slack at y")
	}
	if math.Abs(s-(100e-12-22e-12)) > 1e-15 {
		t.Errorf("slack at y = %g, want 78 ps", s)
	}
	// Required at n1 fall = 100 − 10 (u2 rise delay from a falling input) = 90 ps.
	nr := req.Required["n1"]
	if nr == nil {
		t.Fatal("no required time at n1")
	}
	if math.Abs(nr.Fall-90e-12) > 1e-15 {
		t.Errorf("required n1 fall = %g, want 90 ps", nr.Fall)
	}
	// Slack is constant along a single path: slack(a) == slack(y).
	sa, ok := req.Slack(res, "a", wave.Rising)
	if !ok {
		t.Fatal("no slack at a")
	}
	if math.Abs(sa-s) > 1e-15 {
		t.Errorf("path slack not constant: %g vs %g", sa, s)
	}
}

func TestWorstSlackAndViolation(t *testing.T) {
	d := mustParse(t, `
design two
input a at=0ps
output y1
output y2
gate u1 INV A=a Y=y1
gate u2 BUF A=a Y=y2
`)
	timer := New(testLib(), d)
	res, err := timer.Run()
	if err != nil {
		t.Fatal(err)
	}
	req, err := timer.ComputeRequired(res, map[string]float64{
		"y1": 50e-12,
		"y2": 15e-12, // BUF takes 20 ps → violation of −5 ps
	})
	if err != nil {
		t.Fatal(err)
	}
	net, _, slack, ok := req.WorstSlack(res)
	if !ok {
		t.Fatal("no worst slack")
	}
	if net != "y2" {
		t.Errorf("worst net = %s, want y2", net)
	}
	if math.Abs(slack-(-5e-12)) > 1e-15 {
		t.Errorf("worst slack = %g, want −5 ps", slack)
	}
}

func TestUnconstrainedOutputsHaveNoSlack(t *testing.T) {
	d := mustParse(t, `
design u
input a
output y
gate u1 INV A=a Y=y
`)
	timer := New(testLib(), d)
	res, err := timer.Run()
	if err != nil {
		t.Fatal(err)
	}
	req, err := timer.ComputeRequired(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := req.Slack(res, "y", wave.Rising); ok {
		t.Error("unconstrained output reported a slack")
	}
	if _, _, _, ok := req.WorstSlack(res); ok {
		t.Error("WorstSlack found something with no constraints")
	}
}

func TestReconvergentSlack(t *testing.T) {
	// a → u1 → n1 → u3(A); a → u2 → n2 → u3(B): the later branch sets the
	// tighter requirement on a.
	d := mustParse(t, `
design reconv
input a at=0ps
output y
gate u1 INV A=a Y=n1
gate u2 BUF A=a Y=n2
gate u3 NAND A=n1 B=n2 Y=y
`)
	timer := New(testLib(), d)
	res, err := timer.Run()
	if err != nil {
		t.Fatal(err)
	}
	req, err := timer.ComputeRequired(res, map[string]float64{"y": 60e-12})
	if err != nil {
		t.Fatal(err)
	}
	na := req.Required["a"]
	if na == nil {
		t.Fatal("no requirement on a")
	}
	// Requirement through each branch; the minimum governs.
	if math.IsInf(na.Rise, 1) || math.IsInf(na.Fall, 1) {
		t.Errorf("input requirement not propagated: %+v", na)
	}
	sy, _ := req.Slack(res, "y", wave.Rising)
	sa, _ := req.Slack(res, "a", wave.Rising)
	saf, _ := req.Slack(res, "a", wave.Falling)
	worstA := math.Min(sa, saf)
	if worstA > sy+1e-15 {
		t.Errorf("input slack %g cannot exceed endpoint slack %g", worstA, sy)
	}
}
