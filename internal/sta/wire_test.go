package sta

import (
	"math"
	"testing"
)

func TestWireDelayFormula(t *testing.T) {
	// R = 200 Ω, Cw = 100 fF, Cp = 10 fF: Elmore = 200·(50f+10f) = 12 ps,
	// 50% delay = ln2·Elmore ≈ 8.3 ps.
	d, tr := wireDelay(200, 100e-15, 10e-15, 50e-12)
	want := math.Ln2 * 200 * (50e-15 + 10e-15)
	if math.Abs(d-want) > 1e-15 {
		t.Errorf("delay = %g, want %g", d, want)
	}
	if tr <= 50e-12 {
		t.Errorf("transition must degrade, got %g", tr)
	}
	// Quadrature composition: tr² = slew² + (2.2·R·Ceff)².
	rc := 2.2 * 200 * (50e-15 + 10e-15)
	wantTr := math.Sqrt(50e-12*50e-12 + rc*rc)
	if math.Abs(tr-wantTr) > 1e-15 {
		t.Errorf("transition = %g, want %g", tr, wantTr)
	}
	// Zero wire: identity.
	d0, tr0 := wireDelay(0, 0, 10e-15, 50e-12)
	if d0 != 0 || tr0 != 50e-12 {
		t.Errorf("ideal wire changed timing: %g %g", d0, tr0)
	}
}

func TestElmoreWireSlowsArrival(t *testing.T) {
	src := `
design w
input a at=0ps slew=50ps
output y
gate u1 INV A=a Y=n1
gate u2 INV A=n1 Y=y
netcap n1 150fF
netres n1 400
`
	d := mustParse(t, src)
	lib := testLib()

	ideal := New(lib, d)
	rIdeal, err := ideal.Run()
	if err != nil {
		t.Fatal(err)
	}
	elmore := New(lib, d)
	elmore.Wire = ElmoreWire
	rElmore, err := elmore.Run()
	if err != nil {
		t.Fatal(err)
	}
	ai := rIdeal.Nets["y"].Rise.Arrival
	ae := rElmore.Nets["y"].Rise.Arrival
	if ae <= ai {
		t.Fatalf("Elmore wire must slow the path: %g vs %g", ae, ai)
	}
	// The added delay must be at least the 50% Elmore of the wire alone.
	minExtra := math.Ln2 * 400 * (75e-15)
	if ae-ai < minExtra {
		t.Errorf("wire added %.2f ps, expected at least %.2f ps",
			(ae-ai)*1e12, minExtra*1e12)
	}
	t.Logf("ideal %.1f ps, elmore %.1f ps (+%.1f ps)", ai*1e12, ae*1e12, (ae-ai)*1e12)
}

func TestNetResParsing(t *testing.T) {
	d := mustParse(t, `
design r
input a
output y
gate u1 INV A=a Y=y
netres y 120
netres y 30
`)
	if got := d.NetRes["y"]; math.Abs(got-150) > 1e-12 {
		t.Errorf("netres accumulation = %g", got)
	}
}
