package sta

import (
	"math"
	"testing"

	"noisewave/internal/wave"
)

// TestEarlyEqualsLateOnSinglePath: with one path there is no spread.
func TestEarlyEqualsLateOnSinglePath(t *testing.T) {
	d := mustParse(t, `
design single
input a at=10ps
output y
gate u1 INV A=a Y=n1
gate u2 BUF A=n1 Y=y
`)
	res, err := New(testLib(), d).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []wave.Edge{wave.Rising, wave.Falling} {
		pt := res.Nets["y"].timingFor(e)
		if !pt.Valid {
			continue
		}
		if math.Abs(pt.Early-pt.Arrival) > 1e-18 {
			t.Errorf("%v: early %g != late %g on a single path", e, pt.Early, pt.Arrival)
		}
	}
}

// TestEarlyLateSpreadOnReconvergence: two paths of different depth into a
// NAND create an arrival window; early must track the short path and late
// the long one.
func TestEarlyLateSpreadOnReconvergence(t *testing.T) {
	d := mustParse(t, `
design spread
input a at=0ps
output y
gate u1 BUF  A=a Y=n1
gate u2 BUF  A=n1 Y=n2
gate u3 NAND A=n2 B=a Y=y
`)
	res, err := New(testLib(), d).Run()
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Nets["y"].timingFor(wave.Falling) // both inputs rising → falls
	if !pt.Valid {
		t.Fatal("y fall not timed")
	}
	if pt.Early >= pt.Arrival {
		t.Fatalf("no arrival window: early %g >= late %g", pt.Early, pt.Arrival)
	}
	// Short path: a (rise at 0) through the B arc (18 ps) = 18 ps.
	if math.Abs(pt.Early-18e-12) > 1e-15 {
		t.Errorf("early = %g, want 18 ps (direct B path)", pt.Early)
	}
	// Long path: two buffers (20 ps each) + A arc (15 ps) = 55 ps.
	if math.Abs(pt.Arrival-55e-12) > 1e-15 {
		t.Errorf("late = %g, want 55 ps (buffered A path)", pt.Arrival)
	}
}

// TestEarlyNeverExceedsLate is the structural invariant across a tree.
func TestEarlyNeverExceedsLate(t *testing.T) {
	d := mustParse(t, `
design inv
input a at=0ps
input b at=40ps
output y
gate g1 NAND A=a B=b Y=n1
gate g2 INV A=n1 Y=n2
gate g3 NAND A=n2 B=a Y=y
`)
	res, err := New(testLib(), d).Run()
	if err != nil {
		t.Fatal(err)
	}
	for name, nt := range res.Nets {
		for _, e := range []wave.Edge{wave.Rising, wave.Falling} {
			pt := nt.timingFor(e)
			if pt.Valid && pt.Early > pt.Arrival+1e-18 {
				t.Errorf("net %s %v: early %g > late %g", name, e, pt.Early, pt.Arrival)
			}
		}
	}
}
