package sta

import (
	"fmt"
	"math"

	"noisewave/internal/netlist"
	"noisewave/internal/wave"
)

// RequiredTimes holds per-net required arrival times computed by backward
// propagation from output constraints, and the resulting slacks.
type RequiredTimes struct {
	// Required[net] is the required time per edge (math.Inf(1) where
	// unconstrained).
	Required map[string]*NetRequired
}

// NetRequired carries both edges of a net's required time.
type NetRequired struct {
	Rise, Fall float64
}

// forEdge returns a pointer to the edge's required time.
func (n *NetRequired) forEdge(e wave.Edge) *float64 {
	if e == wave.Rising {
		return &n.Rise
	}
	return &n.Fall
}

// Slack returns arrival-vs-required slack of a net for an edge (positive =
// meets timing). The second return is false when either side is missing.
func (r *RequiredTimes) Slack(res *Result, net string, edge wave.Edge) (float64, bool) {
	nr, ok := r.Required[net]
	if !ok {
		return 0, false
	}
	nt, ok := res.Nets[net]
	if !ok {
		return 0, false
	}
	pt := nt.timingFor(edge)
	req := *nr.forEdge(edge)
	if !pt.Valid || math.IsInf(req, 1) {
		return 0, false
	}
	return req - pt.Arrival, true
}

// ComputeRequired propagates required times backward from per-output
// constraints (seconds). Outputs missing from the map are unconstrained.
// The forward Result must come from the same Timer.Run call so transitions
// and loads match.
func (t *Timer) ComputeRequired(res *Result, constraints map[string]float64) (*RequiredTimes, error) {
	d := t.Design
	req := &RequiredTimes{Required: make(map[string]*NetRequired)}
	get := func(net string) *NetRequired {
		n, ok := req.Required[net]
		if !ok {
			n = &NetRequired{Rise: math.Inf(1), Fall: math.Inf(1)}
			req.Required[net] = n
		}
		return n
	}
	for out, rt := range constraints {
		n := get(out)
		n.Rise, n.Fall = rt, rt
	}

	order, err := t.levelize()
	if err != nil {
		return nil, err
	}
	loads, pinCaps, err := t.netLoads()
	if err != nil {
		return nil, err
	}
	gatesByName := make(map[string]*netlist.Gate, len(d.Gates))
	for i := range d.Gates {
		gatesByName[d.Gates[i].Name] = &d.Gates[i]
	}

	// Walk gates in reverse topological order: the output's requirement
	// constrains each input through the arc delay evaluated at the same
	// conditions the forward pass used — including the ElmoreWire
	// transform: the arc delay is looked up at the wire-degraded
	// transition, and the wire delay itself is charged to the input net, so
	// slack stays constant along a path whichever wire model is active.
	for i := len(order) - 1; i >= 0; i-- {
		g := gatesByName[order[i]]
		cell, err := t.Lib.Cell(g.Cell)
		if err != nil {
			return nil, fmt.Errorf("sta: gate %s: %w", g.Name, err)
		}
		outNet, ok := g.Pins["Y"]
		if !ok {
			return nil, fmt.Errorf("sta: gate %s has no output pin Y", g.Name)
		}
		outReq := get(outNet)
		load := loads[outNet]
		for _, inPin := range cell.InputPins() {
			inNet := g.Pins[inPin]
			arc, ok := cell.ArcTo(inPin)
			if !ok {
				continue
			}
			inTiming, err := t.inputTiming(res, resNet(res, inNet), inNet, cell, arc, load)
			if err != nil {
				return nil, err
			}
			inReq := get(inNet)
			for _, inEdge := range []wave.Edge{wave.Rising, wave.Falling} {
				it := inTiming.timingFor(inEdge)
				if !it.Valid {
					continue
				}
				inTrans := it.Trans
				wDelay := 0.0
				if t.Wire == ElmoreWire {
					var wTrans float64
					wDelay, wTrans = wireDelay(netRes(d, inNet),
						d.NetCaps[inNet], pinCaps[inNet], inTrans)
					inTrans = wTrans
				}
				delay, _, outEdge, err := arc.Delay(inEdge, inTrans, load)
				if err != nil {
					return nil, err
				}
				cand := *outReq.forEdge(outEdge) - delay - wDelay
				slot := inReq.forEdge(inEdge)
				if cand < *slot {
					*slot = cand
				}
			}
		}
	}
	return req, nil
}

// resNet fetches (or creates an empty) net timing from a result.
func resNet(res *Result, name string) *NetTiming {
	if n, ok := res.Nets[name]; ok {
		return n
	}
	return &NetTiming{}
}

// WorstSlack scans all constrained nets for the minimum slack. Ties —
// routine, since slack is constant along a single path — break toward the
// lexicographically last net name, so the reported net is deterministic
// (and, with the conventional input-then-output naming, an endpoint rather
// than the primary input feeding it).
func (r *RequiredTimes) WorstSlack(res *Result) (net string, edge wave.Edge, slack float64, ok bool) {
	slack = math.Inf(1)
	for name := range r.Required {
		for _, e := range []wave.Edge{wave.Rising, wave.Falling} {
			s, valid := r.Slack(res, name, e)
			if !valid {
				continue
			}
			if s < slack || (s == slack && name > net) {
				net, edge, slack, ok = name, e, s, true
			}
		}
	}
	return net, edge, slack, ok
}
