package sta

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"noisewave/internal/liberty"
	"noisewave/internal/telemetry"
	"noisewave/internal/trace"
	"noisewave/internal/wave"
)

// RunOptions is the run-control block of the context-first timing API,
// mirroring the experiments.SweepOptions conventions: worker-pool sizing,
// cancellation, telemetry and tracing live in one struct instead of
// mutable Timer fields.
//
// The zero value reproduces Timer.Run exactly: sequential propagation, the
// Timer's own Telemetry and Wire settings, no tracing, no cancellation.
type RunOptions struct {
	// Ctx cancels the run between levels when the explicit ctx argument of
	// RunCtx is nil. nil means the run cannot be canceled.
	Ctx context.Context
	// Workers sizes the per-level worker pool: 1 runs the strictly
	// sequential path, <= 0 uses all available cores, and any N > 1 fans
	// each level's independent gates out over N workers. Arrivals, slacks
	// and back-pointers are bit-identical at any worker count.
	Workers int
	// Telemetry, if non-nil, overrides Timer.Telemetry for this run: gate
	// and arc counters, noise conversions, levels/nets gauges and the
	// sta.run_seconds wall timer.
	Telemetry *telemetry.Registry
	// Tracer, if non-nil, records hierarchical spans for the run: one
	// sta.run root with sta.build and sta.propagate children, plus one
	// event per noise conversion. Tracing never changes the numbers.
	Tracer *trace.Tracer
	// Wire, if non-nil, overrides Timer.Wire for this run (take the
	// address of an IdealWire/ElmoreWire constant). nil uses the Timer's
	// configured model.
	Wire *WireModel
}

// minParallelLevel is the smallest level fanned out to the pool; narrower
// levels (an inverter chain degenerates to width 1) run inline, where the
// dispatch overhead would exceed the work.
const minParallelLevel = 64

// checkEvery bounds how many gates a worker times between cancellation
// checks inside one wide level.
const checkEvery = 4096

// RunCtx propagates arrivals from the primary inputs to all nets over the
// compact levelized graph: gates are bucketed by topological depth and
// each level's gates — mutually independent by construction — are timed in
// parallel across opts.Workers goroutines. Every per-arc quantity (loads,
// parasitics, arcs, cell pointers) is resolved into flat arrays before the
// first lookup, so the propagation loop performs no map access and no
// per-net allocation.
//
// The result is bit-identical to the retained sequential reference walk
// (RunReference) at any worker count: each output net is written only by
// its single driver gate, per-gate arc iteration order matches the
// sequential walk, and noise conversions run at deterministic level
// boundaries.
//
// Noise annotations are snapshotted at run start, so Annotate may run
// concurrently with RunCtx; the snapshot defines which annotations the run
// sees. A canceled ctx (or opts.Ctx when ctx is nil) stops propagation at
// the next level boundary with an error matching telemetry.ErrCanceled.
func (t *Timer) RunCtx(ctx context.Context, opts RunOptions) (*Result, error) {
	if ctx == nil {
		ctx = opts.Ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = t.Telemetry
	}
	defer reg.Timer("sta.run_seconds").Start()()
	wire := t.Wire
	if opts.Wire != nil {
		wire = *opts.Wire
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	noise := t.snapshotNoise()

	_, span := opts.Tracer.Root(ctx, "sta.run", 0,
		trace.Int("gates", len(t.Design.Gates)),
		trace.Int("workers", workers))
	defer span.End()

	build := span.Child("sta.build")
	g, err := t.buildGraph()
	if err != nil {
		build.End()
		return nil, err
	}
	build.End()
	reg.Gauge("sta.levels").Set(float64(g.levels()))
	reg.Gauge("sta.nets").Set(float64(len(g.netName)))
	span.SetAttr(trace.Int("levels", g.levels()), trace.Int("nets", len(g.netName)))

	e := &engine{
		timer: t, graph: g, wire: wire, reg: reg,
		state: make([]NetTiming, len(g.netName)),
		res: &Result{
			Nets:      make(map[string]*NetTiming, len(g.netName)),
			noiseConv: make(map[noiseKey]noiseVal),
		},
	}
	e.bindNoise(noise)

	prop := span.Child("sta.propagate")
	err = e.propagate(ctx, workers, prop)
	prop.End()
	if err != nil {
		span.SetAttr(trace.String("error", err.Error()))
		return nil, err
	}

	// Materialize the public Result view: the map's values point into the
	// flat arena, so this is one map fill, not per-net allocations.
	fin := span.Child("sta.materialize")
	for id, name := range g.netName {
		e.res.Nets[name] = &e.state[id]
	}
	e.res.Order = make([]string, len(g.levelOrder))
	for i, gi := range g.levelOrder {
		e.res.Order[i] = g.gateName[gi]
	}
	fin.End()
	return e.res, nil
}

// snapshotNoise copies the annotation map under the timer's lock; the copy
// is what the run consumes, making concurrent Annotate/RunCtx defined.
func (t *Timer) snapshotNoise() map[string]*NoiseAnnotation {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.Noise) == 0 {
		return nil
	}
	out := make(map[string]*NoiseAnnotation, len(t.Noise))
	for k, v := range t.Noise {
		out[k] = v
	}
	return out
}

// noiseSite is one annotated net prepared for the levelized engine: the
// conversion runs once, at the level boundary where the net's timing
// becomes final, using the first consuming gate (lowest level, then lowest
// gate index) as the receiving-cell context for library reconstruction.
type noiseSite struct {
	net      int32
	ann      *NoiseAnnotation
	ready    int32 // level after which the net's timing is final
	recvGate int32
	recvCell *liberty.Cell
	recvArc  *liberty.Arc
}

// engine is the state of one RunCtx invocation.
type engine struct {
	timer *Timer
	graph *compactGraph
	wire  WireModel
	reg   *telemetry.Registry
	state []NetTiming // flat arena, indexed by net ID
	res   *Result

	sites map[int32][]*noiseSite // noise sites keyed by ready level

	failed atomic.Bool
	errMu  sync.Mutex
	err    error
}

// bindNoise resolves the annotation snapshot against the graph. Annotated
// nets that no gate consumes are skipped — exactly like the sequential
// walk, which converts lazily at the first consuming gate.
func (e *engine) bindNoise(noise map[string]*NoiseAnnotation) {
	if len(noise) == 0 {
		return
	}
	g := e.graph
	e.sites = make(map[int32][]*noiseSite)
	for name, ann := range noise {
		id, ok := g.netID[name]
		if !ok {
			continue
		}
		site := &noiseSite{net: id, ann: ann, recvGate: -1}
		for gi := 0; gi < len(g.gateName); gi++ {
			for k := g.inStart[gi]; k < g.inStart[gi+1]; k++ {
				if g.inNet[k] != id {
					continue
				}
				if site.recvGate < 0 || g.gateLevel[int32(gi)] < g.gateLevel[site.recvGate] {
					site.recvGate = int32(gi)
					site.recvCell = g.cellOf[gi]
					site.recvArc = g.inArc[k]
				}
				break
			}
		}
		if site.recvGate < 0 {
			continue // no consumer: never converted, matching the walk
		}
		// The net is final after its driver's level; primary or undriven
		// nets are final before level 0.
		site.ready = -1
		for gi := range g.gateName {
			if g.gateOut[gi] == id {
				site.ready = g.gateLevel[gi]
				break
			}
		}
		e.sites[site.ready] = append(e.sites[site.ready], site)
	}
	// Deterministic conversion order within one boundary.
	for _, list := range e.sites {
		for i := 1; i < len(list); i++ {
			for j := i; j > 0 && list[j].net < list[j-1].net; j-- {
				list[j], list[j-1] = list[j-1], list[j]
			}
		}
	}
}

// propagate seeds the primary inputs and times the graph level by level.
func (e *engine) propagate(ctx context.Context, workers int, span *trace.Span) error {
	g := e.graph
	d := e.timer.Design
	for i, p := range d.Inputs {
		nt := &e.state[g.primaryNet[i]]
		nt.Rise = PinTiming{Valid: true, Arrival: p.Arrival, Early: p.Arrival, Trans: p.Slew}
		nt.Fall = PinTiming{Valid: true, Arrival: p.Arrival, Early: p.Arrival, Trans: p.Slew}
	}
	if err := e.convertSites(-1, span); err != nil {
		return err
	}

	gatesTimed := e.reg.Counter("sta.gates_timed")
	levelSeconds := e.reg.Histogram("sta.level_seconds")
	var pool *levelPool
	if workers > 1 {
		pool = newLevelPool(workers, e)
		defer pool.close()
	}
	for l := 0; l < g.levels(); l++ {
		if err := ctx.Err(); err != nil {
			return telemetry.Canceled(ctx, "sta: propagation stopped at level %d/%d", l, g.levels())
		}
		lo, hi := g.levelStart[l], g.levelStart[l+1]
		n := int(hi - lo)
		stopLevel := levelSeconds.Start()
		if pool == nil || n < minParallelLevel {
			if err := e.timeRange(ctx, lo, hi); err != nil {
				return err
			}
		} else if err := pool.runLevel(ctx, lo, hi); err != nil {
			return err
		}
		stopLevel()
		gatesTimed.Add(int64(n))
		if err := e.convertSites(int32(l), span); err != nil {
			return err
		}
	}
	return nil
}

// convertSites runs the noise conversions that become valid once level l
// is complete, overwriting the annotated edge of each net in the arena so
// every later consumer sees the converted timing — the levelized
// equivalent of the sequential walk's first-consumer conversion plus
// result stamping.
func (e *engine) convertSites(l int32, span *trace.Span) error {
	sites := e.sites[l]
	for _, s := range sites {
		g := e.graph
		base := &e.state[s.net]
		load := g.load[g.gateOut[s.recvGate]]
		arr, tt, err := e.timer.convertNoise(e.res, e.reg, g.netName[s.net], s.ann, base, s.recvCell, s.recvArc, load)
		if err != nil {
			return fmt.Errorf("sta: gate %s input %s: %w", g.gateName[s.recvGate], g.netName[s.net], err)
		}
		pt := base.timingFor(s.ann.Edge)
		pt.Valid = true
		pt.Arrival, pt.Early, pt.Trans = arr, arr, tt
		span.Event("noise_conversion",
			trace.String("net", g.netName[s.net]),
			trace.Float("arrival", arr))
	}
	return nil
}

// timeRange times gates levelOrder[lo:hi] on the calling goroutine.
func (e *engine) timeRange(ctx context.Context, lo, hi int32) error {
	for i := lo; i < hi; i++ {
		if (i-lo)%checkEvery == checkEvery-1 {
			if err := ctx.Err(); err != nil {
				return telemetry.Canceled(ctx, "sta: propagation stopped mid-level")
			}
			if e.failed.Load() {
				return nil
			}
		}
		if err := e.timeGate(e.graph.levelOrder[i]); err != nil {
			return err
		}
	}
	return nil
}

// timeGate evaluates every fanin arc of one gate and folds the candidates
// into the gate's output net — the same candidate order and the same
// strict-greater max / strict-less min updates as the sequential walk, so
// worst-arrival tie-breaking (and with it back-pointers and transitions)
// is identical.
func (e *engine) timeGate(gi int32) error {
	g := e.graph
	outID := g.gateOut[gi]
	out := &e.state[outID]
	load := g.load[outID]
	for k := g.inStart[gi]; k < g.inStart[gi+1]; k++ {
		inID := g.inNet[k]
		arc := g.inArc[k]
		in := &e.state[inID]
		for _, inEdge := range []wave.Edge{wave.Rising, wave.Falling} {
			it := in.timingFor(inEdge)
			if !it.Valid {
				continue
			}
			inArr, inTrans := it.Arrival, it.Trans
			if e.wire == ElmoreWire {
				wDelay, wTrans := wireDelay(g.wireRes[inID], g.wireCap[inID], g.pinCap[inID], inTrans)
				inArr += wDelay
				inTrans = wTrans
			}
			delay, outTrans, outEdge, err := arc.Delay(inEdge, inTrans, load)
			if err != nil {
				return fmt.Errorf("sta: gate %s: %w", g.gateName[gi], err)
			}
			cand := inArr + delay
			candEarly := it.Early + (inArr - it.Arrival) + delay
			ot := out.timingFor(outEdge)
			if !ot.Valid {
				*ot = PinTiming{
					Valid: true, Arrival: cand, Early: candEarly, Trans: outTrans,
					FromNet: g.netName[inID], FromEdge: inEdge, ViaGate: g.gateName[gi],
				}
				continue
			}
			if cand > ot.Arrival {
				early := ot.Early
				*ot = PinTiming{
					Valid: true, Arrival: cand, Early: early, Trans: outTrans,
					FromNet: g.netName[inID], FromEdge: inEdge, ViaGate: g.gateName[gi],
				}
			}
			if candEarly < ot.Early {
				ot.Early = candEarly
			}
		}
	}
	return nil
}

// levelPool is the bounded worker pool the parallel path fans each level
// out over: persistent goroutines, chunked gate ranges, a WaitGroup
// barrier per level. Gates within a level write disjoint output nets, so
// workers share the arena without synchronization beyond the barrier.
type levelPool struct {
	e    *engine
	jobs chan chunk
	wg   sync.WaitGroup
}

type chunk struct {
	ctx    context.Context
	lo, hi int32
}

func newLevelPool(workers int, e *engine) *levelPool {
	p := &levelPool{e: e, jobs: make(chan chunk, workers)}
	for w := 0; w < workers; w++ {
		go func() {
			for c := range p.jobs {
				if !e.failed.Load() {
					if err := e.timeRange(c.ctx, c.lo, c.hi); err != nil {
						e.fail(err)
					}
				}
				p.wg.Done()
			}
		}()
	}
	return p
}

// runLevel splits [lo,hi) into one chunk per worker and waits for the
// barrier; the first worker error (or a cancellation) wins.
func (p *levelPool) runLevel(ctx context.Context, lo, hi int32) error {
	n := int(hi - lo)
	chunks := cap(p.jobs)
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	for c := lo; c < hi; c += int32(size) {
		end := c + int32(size)
		if end > hi {
			end = hi
		}
		p.wg.Add(1)
		p.jobs <- chunk{ctx: ctx, lo: c, hi: end}
	}
	p.wg.Wait()
	p.errMu().Lock()
	err := p.e.err
	p.errMu().Unlock()
	return err
}

func (p *levelPool) errMu() *sync.Mutex { return &p.e.errMu }

func (p *levelPool) close() { close(p.jobs) }

// fail records the first error and stops further work.
func (e *engine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
	e.failed.Store(true)
}
