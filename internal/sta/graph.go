package sta

import (
	"fmt"

	"noisewave/internal/liberty"
)

// MultiDriverError reports a net driven by more than one gate output. The
// map-based walk used to let the last driver win silently; both engines now
// reject the design, naming the net and the first two colliding drivers.
type MultiDriverError struct {
	Net              string
	Driver1, Driver2 string
}

func (e *MultiDriverError) Error() string {
	return fmt.Sprintf("sta: net %s driven by both %s and %s", e.Net, e.Driver1, e.Driver2)
}

// compactGraph is the levelized form of a design the parallel engine runs
// on: net and gate names interned to dense int32 IDs, fanin arcs and fanout
// dependency edges in CSR layout, gates bucketed by topological level, and
// every per-net quantity (load, pin caps, wire parasitics) in flat arrays —
// no map lookup survives into the propagation loop.
type compactGraph struct {
	// Net interning. netName[id] inverts netID.
	netID   map[string]int32
	netName []string

	// Per-net electrical state, indexed by net ID. load and pinCap mirror
	// Timer.netLoads exactly (same summation order), so arc lookups see
	// bit-identical values on both engines.
	load    []float64
	pinCap  []float64
	wireCap []float64
	wireRes []float64

	// Per-gate topology. Inputs are CSR: gate g's fanin arcs live at
	// inNet/inArc[inStart[g]:inStart[g+1]], in cell InputPins order —
	// the same arc iteration order as the sequential walk, which keeps
	// worst-arrival tie-breaking identical.
	gateName []string
	cellOf   []*liberty.Cell
	gateOut  []int32
	inStart  []int32
	inNet    []int32
	inArc    []*liberty.Arc

	// Levelization: levelOrder holds gate indices level-major (ascending
	// gate index within a level); level l spans
	// levelOrder[levelStart[l]:levelStart[l+1]]. All fanins of a level-l
	// gate are driven at levels < l, so gates within one level are
	// independent — the parallel engine's unit of work.
	levelStart []int32
	levelOrder []int32
	gateLevel  []int32 // level of each gate index

	// primaryNet[i] is the net ID of Design.Inputs[i].
	primaryNet []int32
}

// intern returns the ID for a net name, creating one on first sight.
func (g *compactGraph) intern(name string) int32 {
	if id, ok := g.netID[name]; ok {
		return id
	}
	id := int32(len(g.netName))
	g.netID[name] = id
	g.netName = append(g.netName, name)
	return id
}

// buildGraph compiles the timer's design and library into the compact
// levelized form. All structural errors — unknown cells, unconnected or
// missing pins, undriven nets, multi-driver nets, combinational loops —
// surface here, before any timing math runs.
func (t *Timer) buildGraph() (*compactGraph, error) {
	d := t.Design
	n := len(d.Gates)
	g := &compactGraph{
		netID:    make(map[string]int32, 2*n),
		gateName: make([]string, n),
		cellOf:   make([]*liberty.Cell, n),
		gateOut:  make([]int32, n),
		inStart:  make([]int32, n+1),
	}

	// Primary inputs first, so their IDs are dense and low.
	g.primaryNet = make([]int32, len(d.Inputs))
	for i, p := range d.Inputs {
		g.primaryNet[i] = g.intern(p.Name)
	}

	// Resolve every gate: cell, output net (multi-driver checked), fanin
	// arcs in InputPins order.
	driverOf := make([]int32, 0, 2*n) // net ID -> driving gate, -1 none
	driver := func(net int32) int32 {
		for int32(len(driverOf)) <= net {
			driverOf = append(driverOf, -1)
		}
		return driverOf[net]
	}
	for gi := range d.Gates {
		gate := &d.Gates[gi]
		g.gateName[gi] = gate.Name
		cell, err := t.Lib.Cell(gate.Cell)
		if err != nil {
			return nil, fmt.Errorf("sta: gate %s: %w", gate.Name, err)
		}
		g.cellOf[gi] = cell
		outNet, ok := gate.Pins["Y"]
		if !ok {
			return nil, fmt.Errorf("sta: gate %s has no output pin Y", gate.Name)
		}
		out := g.intern(outNet)
		if prev := driver(out); prev >= 0 {
			return nil, &MultiDriverError{Net: outNet, Driver1: g.gateName[prev], Driver2: gate.Name}
		}
		driverOf[out] = int32(gi)
		g.gateOut[gi] = out

		for _, inPin := range cell.InputPins() {
			inNet, ok := gate.Pins[inPin]
			if !ok {
				return nil, fmt.Errorf("sta: gate %s pin %s unconnected", gate.Name, inPin)
			}
			arc, ok := cell.ArcTo(inPin)
			if !ok {
				return nil, fmt.Errorf("sta: cell %s has no arc %s->Y", cell.Name, inPin)
			}
			g.inNet = append(g.inNet, g.intern(inNet))
			g.inArc = append(g.inArc, arc)
		}
		g.inStart[gi+1] = int32(len(g.inNet))
	}
	for int32(len(driverOf)) < int32(len(g.netName)) {
		driverOf = append(driverOf, -1)
	}

	primary := make([]bool, len(g.netName))
	for _, id := range g.primaryNet {
		primary[id] = true
	}

	// Dependency edges (gate -> consuming gate) as fanout CSR, plus
	// in-degrees, checking every consumed net has a source.
	indeg := make([]int32, n)
	foCount := make([]int32, n+1)
	for gi := 0; gi < n; gi++ {
		for k := g.inStart[gi]; k < g.inStart[gi+1]; k++ {
			net := g.inNet[k]
			if primary[net] {
				continue
			}
			drv := driverOf[net]
			if drv < 0 {
				return nil, fmt.Errorf("sta: net %s (input of %s) has no driver", g.netName[net], g.gateName[gi])
			}
			indeg[gi]++
			foCount[drv+1]++
		}
	}
	for i := 0; i < n; i++ {
		foCount[i+1] += foCount[i]
	}
	foGate := make([]int32, foCount[n])
	fill := append([]int32(nil), foCount[:n]...)
	for gi := 0; gi < n; gi++ {
		for k := g.inStart[gi]; k < g.inStart[gi+1]; k++ {
			net := g.inNet[k]
			if primary[net] || driverOf[net] < 0 {
				continue
			}
			drv := driverOf[net]
			foGate[fill[drv]] = int32(gi)
			fill[drv]++
		}
	}

	// Kahn over the dependency edges, tracking the longest-path level of
	// each gate: level(g) = 1 + max(level of fanin drivers).
	level := make([]int32, n)
	queue := make([]int32, 0, n)
	remaining := append([]int32(nil), indeg...)
	for gi := int32(0); gi < int32(n); gi++ {
		if remaining[gi] == 0 {
			queue = append(queue, gi)
		}
	}
	seen := 0
	maxLevel := int32(-1)
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		seen++
		if level[gi] > maxLevel {
			maxLevel = level[gi]
		}
		for k := foCount[gi]; k < foCount[gi+1]; k++ {
			s := foGate[k]
			if lv := level[gi] + 1; lv > level[s] {
				level[s] = lv
			}
			remaining[s]--
			if remaining[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != n {
		return nil, ErrCombinationalLoop
	}

	// Bucket gates by level (counting sort keeps ascending gate index
	// within each level — deterministic at any worker count).
	g.levelStart = make([]int32, maxLevel+2)
	for _, lv := range level {
		g.levelStart[lv+1]++
	}
	for l := int32(0); l <= maxLevel; l++ {
		g.levelStart[l+1] += g.levelStart[l]
	}
	g.levelOrder = make([]int32, n)
	pos := append([]int32(nil), g.levelStart[:maxLevel+1]...)
	for gi := int32(0); gi < int32(n); gi++ {
		lv := level[gi]
		g.levelOrder[pos[lv]] = gi
		pos[lv]++
	}
	g.gateLevel = level

	// Electrical state, computed by the same netLoads the sequential walk
	// uses (identical summation order → identical float values), then
	// flattened into arrays.
	loads, pinCaps, err := t.netLoads()
	if err != nil {
		return nil, err
	}
	nn := len(g.netName)
	g.load = make([]float64, nn)
	g.pinCap = make([]float64, nn)
	g.wireCap = make([]float64, nn)
	g.wireRes = make([]float64, nn)
	for id, name := range g.netName {
		g.load[id] = loads[name]
		g.pinCap[id] = pinCaps[name]
		g.wireCap[id] = d.NetCaps[name]
		if d.NetRes != nil {
			g.wireRes[id] = d.NetRes[name]
		}
	}
	return g, nil
}

// levels returns the number of levels.
func (g *compactGraph) levels() int { return len(g.levelStart) - 1 }
