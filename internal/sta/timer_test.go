package sta

import (
	"math"
	"strings"
	"testing"

	"noisewave/internal/eqwave"
	"noisewave/internal/liberty"
	"noisewave/internal/netlist"
	"noisewave/internal/wave"
)

// flatTable returns a constant NLDM table (delay or transition d).
func flatTable(d float64) *liberty.Table2D {
	return &liberty.Table2D{
		Index1: []float64{10e-12, 500e-12},
		Index2: []float64{1e-15, 100e-15},
		Values: [][]float64{{d, d}, {d, d}},
	}
}

// loadScaledTable returns delay = base + k·load.
func loadScaledTable(base, k float64) *liberty.Table2D {
	mk := func(load float64) float64 { return base + k*load }
	return &liberty.Table2D{
		Index1: []float64{10e-12, 500e-12},
		Index2: []float64{1e-15, 100e-15},
		Values: [][]float64{
			{mk(1e-15), mk(100e-15)},
			{mk(1e-15), mk(100e-15)},
		},
	}
}

// testLib builds a tiny synthetic library: INV (negative unate, 10 ps) and
// BUF (positive unate, 20 ps), both with 30 ps output transitions.
func testLib() *liberty.Library {
	lib := liberty.NewLibrary("tl", 1.2)
	inv := &liberty.Cell{
		Name: "INV",
		Pins: []liberty.Pin{
			{Name: "A", Direction: "input", Cap: 2e-15},
			{Name: "Y", Direction: "output"},
		},
		Arcs: []liberty.Arc{{
			From: "A", To: "Y", Sense: liberty.NegativeUnate,
			CellRise: flatTable(10e-12), CellFall: flatTable(12e-12),
			RiseTransition: flatTable(30e-12), FallTransition: flatTable(28e-12),
		}},
	}
	buf := &liberty.Cell{
		Name: "BUF",
		Pins: []liberty.Pin{
			{Name: "A", Direction: "input", Cap: 3e-15},
			{Name: "Y", Direction: "output"},
		},
		Arcs: []liberty.Arc{{
			From: "A", To: "Y", Sense: liberty.PositiveUnate,
			CellRise: flatTable(20e-12), CellFall: flatTable(20e-12),
			RiseTransition: flatTable(30e-12), FallTransition: flatTable(30e-12),
		}},
	}
	nand := &liberty.Cell{
		Name: "NAND",
		Pins: []liberty.Pin{
			{Name: "A", Direction: "input", Cap: 2e-15},
			{Name: "B", Direction: "input", Cap: 2e-15},
			{Name: "Y", Direction: "output"},
		},
		Arcs: []liberty.Arc{
			{
				From: "A", To: "Y", Sense: liberty.NegativeUnate,
				CellRise: flatTable(15e-12), CellFall: flatTable(15e-12),
				RiseTransition: flatTable(30e-12), FallTransition: flatTable(30e-12),
			},
			{
				From: "B", To: "Y", Sense: liberty.NegativeUnate,
				CellRise: flatTable(18e-12), CellFall: flatTable(18e-12),
				RiseTransition: flatTable(30e-12), FallTransition: flatTable(30e-12),
			},
		},
	}
	lib.AddCell(inv)
	lib.AddCell(buf)
	lib.AddCell(nand)
	return lib
}

func mustParse(t *testing.T, src string) *netlist.Design {
	t.Helper()
	d, err := netlist.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("netlist: %v", err)
	}
	return d
}

func TestInverterChainArrival(t *testing.T) {
	d := mustParse(t, `
design chain
input a at=100ps slew=50ps
output y
gate u1 INV A=a Y=n1
gate u2 INV A=n1 Y=y
`)
	res, err := New(testLib(), d).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	y := res.Nets["y"]
	// Rising output of u2 comes from falling n1 (12 ps fall through u1
	// from rising a... wait: a rising → n1 falling (12 ps) → y rising
	// (10 ps): arrival = 100 + 12 + 10 = 122 ps.
	if !y.Rise.Valid {
		t.Fatal("y rise invalid")
	}
	if got := y.Rise.Arrival; math.Abs(got-122e-12) > 1e-15 {
		t.Errorf("y rise arrival = %g, want 122 ps", got)
	}
	// Falling output: a falling → n1 rising (10) → y falling (12) = 122 ps.
	if got := y.Fall.Arrival; math.Abs(got-122e-12) > 1e-15 {
		t.Errorf("y fall arrival = %g, want 122 ps", got)
	}
}

func TestWorstInputWinsAtMultiInputGate(t *testing.T) {
	d := mustParse(t, `
design conv
input a at=0ps
input b at=100ps
output y
gate u1 NAND A=a B=b Y=y
`)
	res, err := New(testLib(), d).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	y := res.Nets["y"]
	// Worst rise at y: via B (100 ps arrival + 18 ps) = 118 ps.
	if math.Abs(y.Rise.Arrival-118e-12) > 1e-15 {
		t.Errorf("y rise = %g, want 118 ps", y.Rise.Arrival)
	}
	if y.Rise.FromNet != "b" {
		t.Errorf("worst path via %s, want b", y.Rise.FromNet)
	}
}

func TestCriticalPathExtraction(t *testing.T) {
	d := mustParse(t, `
design path
input a
output y
gate u1 INV A=a Y=n1
gate u2 BUF A=n1 Y=n2
gate u3 INV A=n2 Y=y
`)
	res, err := New(testLib(), d).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	net, edge, _, err := res.WorstOutput(d.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	path, err := res.CriticalPath(net, edge)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("path length %d, want 4 (a,n1,n2,y)", len(path))
	}
	if path[0].Net != "a" || path[len(path)-1].Net != "y" {
		t.Errorf("path endpoints %s..%s", path[0].Net, path[len(path)-1].Net)
	}
	// Arrivals must be non-decreasing along the path.
	for i := 1; i < len(path); i++ {
		if path[i].Arrival < path[i-1].Arrival {
			t.Errorf("arrival decreases at step %d", i)
		}
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	d := mustParse(t, `
design loop
input a
output n2
gate u1 NAND A=a B=n2 Y=n1
gate u2 INV A=n1 Y=n2
`)
	_, err := New(testLib(), d).Run()
	if err == nil {
		t.Fatal("loop accepted")
	}
}

func TestLoadAffectsDelay(t *testing.T) {
	lib := testLib()
	// Replace INV's rise table with a load-dependent one.
	inv, _ := lib.Cell("INV")
	inv.Arcs[0].CellRise = loadScaledTable(5e-12, 1e-12/1e-15) // 1 ps per fF
	single := mustParse(t, `
design l1
input a
output y
gate u1 INV A=a Y=y
`)
	fanout := mustParse(t, `
design l4
input a
output y
gate u1 INV A=a Y=y
gate f1 INV A=y Y=z1
gate f2 INV A=y Y=z2
gate f3 INV A=y Y=z3
output z1
output z2
output z3
`)
	r1, err := New(lib, single).Run()
	if err != nil {
		t.Fatal(err)
	}
	r4, err := New(lib, fanout).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r4.Nets["y"].Rise.Arrival <= r1.Nets["y"].Rise.Arrival {
		t.Errorf("fanout load should slow the driver: %g vs %g",
			r4.Nets["y"].Rise.Arrival, r1.Nets["y"].Rise.Arrival)
	}
}

func TestNoiseAnnotationChangesArrival(t *testing.T) {
	d := mustParse(t, `
design noisy
input a
output y
gate u1 INV A=a Y=n1
gate u2 INV A=n1 Y=y
`)
	lib := testLib()

	// Baseline run.
	base, err := New(lib, d).Run()
	if err != nil {
		t.Fatal(err)
	}

	// Annotate n1 with a noisy rising edge arriving much later than the
	// propagated arrival.
	mk := func(t0, full float64) *wave.Waveform {
		return wave.FromFunc(func(tt float64) float64 {
			u := (tt - t0) / full
			if u < 0 {
				u = 0
			}
			if u > 1 {
				u = 1
			}
			return 1.2 * u
		}, 0, t0+full+0.5e-9, 800)
	}
	nl := mk(0.5e-9, 0.2e-9)
	noisy := mk(0.8e-9, 0.2e-9)
	out := wave.FromFunc(func(tt float64) float64 {
		return 1.2 - nl.At(tt-30e-12) // crude inverted+delayed copy
	}, 0, 1.5e-9, 800)

	timer := New(lib, d)
	timer.Annotate("n1", &NoiseAnnotation{
		Noisy: noisy, Noiseless: nl, NoiselessOut: out, Edge: wave.Rising,
	})
	res, err := timer.Run()
	if err != nil {
		t.Fatalf("noise-aware run: %v", err)
	}
	// The rising edge at n1 now arrives near 0.9 ns, so y's fall must be
	// far later than the baseline.
	if res.Nets["y"].Fall.Arrival <= base.Nets["y"].Fall.Arrival+0.5e-9 {
		t.Errorf("annotation ignored: %g vs baseline %g",
			res.Nets["y"].Fall.Arrival, base.Nets["y"].Fall.Arrival)
	}
	// Technique choice is honored.
	if timer.Technique.Name() != "SGDP" {
		t.Errorf("default technique = %s", timer.Technique.Name())
	}
	timer.Technique = eqwave.P2{}
	if _, err := timer.Run(); err != nil {
		t.Errorf("P2 conversion failed: %v", err)
	}
}

func TestMissingCellAndDriverErrors(t *testing.T) {
	d := mustParse(t, `
design bad
input a
output y
gate u1 NOPE A=a Y=y
`)
	if _, err := New(testLib(), d).Run(); err == nil {
		t.Error("unknown cell accepted")
	}
	d2 := mustParse(t, `
design bad2
input a
output y
gate u1 INV A=floating Y=y
`)
	if _, err := New(testLib(), d2).Run(); err == nil {
		t.Error("undriven input accepted")
	}
}
