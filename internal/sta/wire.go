package sta

import (
	"math"

	"noisewave/internal/netlist"
)

// WireModel selects how net (interconnect) delay is treated during
// propagation.
type WireModel int

const (
	// IdealWire treats every net as a zero-delay node: the driver output
	// waveform appears unchanged at every receiver (the default, and the
	// assumption behind pure NLDM timing).
	IdealWire WireModel = iota
	// ElmoreWire adds a per-net RC delay and slew degradation computed
	// from the net's annotated wire resistance and capacitance: delay =
	// ln2 · R · (C/2 + ΣCpins), slew' = sqrt(slew² + (2.2·R·C_total)²) —
	// the classical dominant-pole estimates.
	ElmoreWire
)

// NetRes returns the annotated wire resistance of a net (Ω), zero when the
// netlist carries none. The netlist format annotates it with
// "netres <net> <ohms>".
func netRes(d *netlist.Design, net string) float64 {
	if d.NetRes == nil {
		return 0
	}
	return d.NetRes[net]
}

// wireDelay returns the Elmore 50% delay and the degraded transition for a
// net with wire resistance r, wire capacitance cw, receiver pin load cp
// and incoming transition trans.
func wireDelay(r, cw, cp, trans float64) (delay, outTrans float64) {
	if r <= 0 || cw+cp <= 0 {
		return 0, trans
	}
	elmore := r * (cw/2 + cp)
	delay = math.Ln2 * elmore
	// Slew degradation: RC step response 10–90 time is ≈2.2·RC; compose
	// with the incoming transition in quadrature (PERI-style).
	rcSlew := 2.2 * r * (cw/2 + cp)
	outTrans = math.Sqrt(trans*trans + rcSlew*rcSlew)
	return delay, outTrans
}
