package sta

import (
	"math"

	"noisewave/internal/netlist"
)

// WireModel selects how net (interconnect) delay is treated during
// propagation.
type WireModel int

const (
	// IdealWire treats every net as a zero-delay node: the driver output
	// waveform appears unchanged at every receiver (the default, and the
	// assumption behind pure NLDM timing).
	IdealWire WireModel = iota
	// ElmoreWire adds a per-net RC delay and slew degradation computed
	// from the net's annotated wire resistance and capacitance, with
	// Ceff = Cw/2 + ΣCpins (half the distributed wire cap plus the summed
	// receiver pin caps of the net): delay = ln2 · R · Ceff, slew' =
	// sqrt(slew² + (2.2·R·Ceff)²) — the classical dominant-pole estimates.
	// Both the forward arrival pass and the backward required-time pass
	// apply the same transform, so slack stays constant along a path.
	ElmoreWire
)

// NetRes returns the annotated wire resistance of a net (Ω), zero when the
// netlist carries none. The netlist format annotates it with
// "netres <net> <ohms>".
func netRes(d *netlist.Design, net string) float64 {
	if d.NetRes == nil {
		return 0
	}
	return d.NetRes[net]
}

// wireDelay returns the Elmore 50% delay and the degraded transition for a
// net with wire resistance r, wire capacitance cw, summed receiver pin
// capacitance pins (ΣCpins over every input pin the net drives — a single
// receiver's cap under-estimates the delay on multi-fanout nets) and
// incoming transition trans. Both use Ceff = cw/2 + pins: delay =
// ln2·r·Ceff; the slew degrades by the RC 10–90 time ≈ 2.2·r·Ceff composed
// with the incoming transition in quadrature (PERI-style).
func wireDelay(r, cw, pins, trans float64) (delay, outTrans float64) {
	if r <= 0 || cw+pins <= 0 {
		return 0, trans
	}
	ceff := cw/2 + pins
	delay = math.Ln2 * r * ceff
	rcSlew := 2.2 * r * ceff
	outTrans = math.Sqrt(trans*trans + rcSlew*rcSlew)
	return delay, outTrans
}
