package sta

import (
	"math"
	"strings"
	"testing"

	"noisewave/internal/telemetry"
	"noisewave/internal/wave"
)

// TestSlackConstantAlongPathElmore is the forward/backward consistency
// check for the Elmore wire model: with wire parasitics annotated on every
// internal net, the backward required-time pass must charge the same wire
// delay and look up arc delays at the same wire-degraded transitions as the
// forward pass, so slack is identical (±1 fs) at every net along the
// reported critical path.
func TestSlackConstantAlongPathElmore(t *testing.T) {
	d := mustParse(t, `
design elchain
input a at=0ps slew=50ps
output y
output z
gate u1 INV A=a Y=n1
gate u2 INV A=n1 Y=n2
gate u3 BUF A=n2 Y=y
gate f1 INV A=n1 Y=z
netcap n1 120fF
netres n1 350
netcap n2 80fF
netres n2 200
`)
	timer := New(testLib(), d)
	timer.Wire = ElmoreWire
	res, err := timer.Run()
	if err != nil {
		t.Fatal(err)
	}
	req, err := timer.ComputeRequired(res, map[string]float64{"y": 500e-12})
	if err != nil {
		t.Fatal(err)
	}
	net, edge, _, err := res.WorstOutput([]string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	path, err := res.CriticalPath(net, edge)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 4 {
		t.Fatalf("path too short: %d steps", len(path))
	}
	end, ok := req.Slack(res, net, edge)
	if !ok {
		t.Fatal("no endpoint slack")
	}
	for _, step := range path {
		s, ok := req.Slack(res, step.Net, step.Edge)
		if !ok {
			t.Fatalf("no slack at %s (%v)", step.Net, step.Edge)
		}
		if math.Abs(s-end) > 1e-15 {
			t.Errorf("slack not constant under ElmoreWire: %s (%v) = %g, endpoint = %g (Δ %g fs)",
				step.Net, step.Edge, s, end, (s-end)*1e15)
		}
	}
}

// TestSlackConstantAlongPathIdeal is the same invariant with the default
// (ideal) wire model — a regression guard that the backward-pass rework did
// not disturb the zero-wire-delay case.
func TestSlackConstantAlongPathIdeal(t *testing.T) {
	d := mustParse(t, `
design idchain
input a at=0ps slew=50ps
output y
gate u1 INV A=a Y=n1
gate u2 BUF A=n1 Y=n2
gate u3 INV A=n2 Y=y
`)
	timer := New(testLib(), d)
	res, err := timer.Run()
	if err != nil {
		t.Fatal(err)
	}
	req, err := timer.ComputeRequired(res, map[string]float64{"y": 200e-12})
	if err != nil {
		t.Fatal(err)
	}
	net, edge, _, err := res.WorstOutput([]string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	path, err := res.CriticalPath(net, edge)
	if err != nil {
		t.Fatal(err)
	}
	end, _ := req.Slack(res, net, edge)
	for _, step := range path {
		s, ok := req.Slack(res, step.Net, step.Edge)
		if !ok {
			t.Fatalf("no slack at %s (%v)", step.Net, step.Edge)
		}
		if math.Abs(s-end) > 1e-15 {
			t.Errorf("slack not constant: %s (%v) = %g vs endpoint %g", step.Net, step.Edge, s, end)
		}
	}
}

// TestMultiFanoutElmoreSumsPinCaps checks the wireDelay call site: the
// Elmore delay of a net must be computed with the *summed* receiver pin
// caps, not a single receiver's — on a two-fanout net the arrivals must
// match the closed-form estimate with ΣCpins = 4 fF (two INV inputs).
func TestMultiFanoutElmoreSumsPinCaps(t *testing.T) {
	d := mustParse(t, `
design fanout
input a at=0ps slew=50ps
output y
output z
gate u1 INV A=a Y=n1
gate u2 INV A=n1 Y=y
gate f1 INV A=n1 Y=z
netcap n1 100fF
netres n1 400
`)
	timer := New(testLib(), d)
	timer.Wire = ElmoreWire
	res, err := timer.Run()
	if err != nil {
		t.Fatal(err)
	}
	// testLib INV: rise 10 ps, fall 12 ps, flat tables (delay independent of
	// slew/load). a rising → n1 falling at 12 ps with 28 ps transition; wire
	// then adds its Elmore delay with ΣCpins = 2 fF (u2.A) + 2 fF (f1.A).
	wantDelay, _ := wireDelay(400, 100e-15, 4e-15, 28e-12)
	got := res.Nets["y"].Rise.Arrival
	want := 12e-12 + wantDelay + 10e-12
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("y rise arrival = %g, want %g (wire delay with summed pin caps)", got, want)
	}
	// A single receiver's pin cap would have produced a visibly smaller
	// delay — guard that the fix actually changed the number.
	oldDelay, _ := wireDelay(400, 100e-15, 2e-15, 28e-12)
	if math.Abs(wantDelay-oldDelay) < 1e-16 {
		t.Fatal("test design does not discriminate summed vs single pin caps")
	}
}

// TestComputeRequiredNoOutputPin: the backward pass must reject a gate
// without a Y pin with the same error Run reports, instead of silently
// propagating requirements through an empty net name.
func TestComputeRequiredNoOutputPin(t *testing.T) {
	good := mustParse(t, `
design ok
input a
output y
gate u1 INV A=a Y=y
`)
	timer := New(testLib(), good)
	res, err := timer.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the design after the forward pass: drop u1's output pin.
	delete(good.Gates[0].Pins, "Y")
	if _, err := timer.ComputeRequired(res, map[string]float64{"y": 100e-12}); err == nil {
		t.Fatal("ComputeRequired accepted a gate with no output pin Y")
	} else if !strings.Contains(err.Error(), "no output pin Y") {
		t.Errorf("error = %v, want the Run-style no-output-pin message", err)
	}
}

// TestCriticalPathCycleErrors: a back-pointer walk that never reaches a
// primary input must error out instead of returning a plausible-looking
// truncated path.
func TestCriticalPathCycleErrors(t *testing.T) {
	res := &Result{Nets: map[string]*NetTiming{
		"x": {Rise: PinTiming{Valid: true, FromNet: "y", FromEdge: wave.Rising, ViaGate: "g1"}},
		"y": {Rise: PinTiming{Valid: true, FromNet: "x", FromEdge: wave.Rising, ViaGate: "g2"}},
	}}
	if _, err := res.CriticalPath("x", wave.Rising); err == nil {
		t.Fatal("cyclic back-pointers returned a truncated path instead of an error")
	} else if !strings.Contains(err.Error(), "without reaching a primary input") {
		t.Errorf("error = %v, want the exceeded-steps message", err)
	}
}

// TestNoiseConversionMemoized: the technique fit of an annotated net must
// run once per (net, edge) within a Timer run — further fanouts and the
// whole backward pass reuse the memoized (arrival, transition), so the
// sta.noise_conversions counter stays at one and slacks are consistent with
// the forward arrivals.
func TestNoiseConversionMemoized(t *testing.T) {
	d := mustParse(t, `
design noisy
input a
output y
output z
gate u1 INV A=a Y=n1
gate u2 INV A=n1 Y=y
gate f1 BUF A=n1 Y=z
`)
	lib := testLib()
	mk := func(t0, full float64) *wave.Waveform {
		return wave.FromFunc(func(tt float64) float64 {
			u := (tt - t0) / full
			if u < 0 {
				u = 0
			}
			if u > 1 {
				u = 1
			}
			return 1.2 * u
		}, 0, t0+full+0.5e-9, 800)
	}
	nl := mk(0.5e-9, 0.2e-9)
	noisy := mk(0.8e-9, 0.2e-9)
	out := wave.FromFunc(func(tt float64) float64 {
		return 1.2 - nl.At(tt-30e-12)
	}, 0, 1.5e-9, 800)

	reg := telemetry.New()
	timer := New(lib, d)
	timer.Telemetry = reg
	timer.Annotate("n1", &NoiseAnnotation{
		Noisy: noisy, Noiseless: nl, NoiselessOut: out, Edge: wave.Rising,
	})
	res, err := timer.Run()
	if err != nil {
		t.Fatal(err)
	}
	// n1 fans out to two gates; the forward pass alone must fit once.
	if got := reg.Counter("sta.noise_conversions").Value(); got != 1 {
		t.Errorf("forward pass ran %d conversions, want 1 (memoized across fanouts)", got)
	}
	if _, err := timer.ComputeRequired(res, map[string]float64{"y": 2e-9, "z": 2e-9}); err != nil {
		t.Fatal(err)
	}
	// The backward pass revisits the annotated net on every backward arc;
	// all of them must be cache hits.
	if got := reg.Counter("sta.noise_conversions").Value(); got != 1 {
		t.Errorf("forward+backward ran %d conversions, want 1 (backward pass must reuse the cache)", got)
	}
}

// TestSlackConstantWithNoiseAnnotation: with a noise-annotated net on the
// path, the backward pass sees the same converted (arrival, transition) the
// forward pass used, so slack stays constant from the annotated net to the
// endpoint.
func TestSlackConstantWithNoiseAnnotation(t *testing.T) {
	d := mustParse(t, `
design noisy2
input a
output y
gate u1 INV A=a Y=n1
gate u2 INV A=n1 Y=y
`)
	lib := testLib()
	mk := func(t0, full float64) *wave.Waveform {
		return wave.FromFunc(func(tt float64) float64 {
			u := (tt - t0) / full
			if u < 0 {
				u = 0
			}
			if u > 1 {
				u = 1
			}
			return 1.2 * u
		}, 0, t0+full+0.5e-9, 800)
	}
	nl := mk(0.5e-9, 0.2e-9)
	noisy := mk(0.8e-9, 0.2e-9)
	out := wave.FromFunc(func(tt float64) float64 {
		return 1.2 - nl.At(tt-30e-12)
	}, 0, 1.5e-9, 800)
	timer := New(lib, d)
	timer.Annotate("n1", &NoiseAnnotation{
		Noisy: noisy, Noiseless: nl, NoiselessOut: out, Edge: wave.Rising,
	})
	res, err := timer.Run()
	if err != nil {
		t.Fatal(err)
	}
	req, err := timer.ComputeRequired(res, map[string]float64{"y": 2e-9})
	if err != nil {
		t.Fatal(err)
	}
	// y's fall comes from n1's (annotated) rise: slack at both must match.
	sy, ok := req.Slack(res, "y", wave.Falling)
	if !ok {
		t.Fatal("no slack at y fall")
	}
	sn, ok := req.Slack(res, "n1", wave.Rising)
	if !ok {
		t.Fatal("no slack at n1 rise")
	}
	if math.Abs(sy-sn) > 1e-15 {
		t.Errorf("slack across the annotated net drifts: n1 %g vs y %g", sn, sy)
	}
}
