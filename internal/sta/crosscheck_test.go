package sta

import (
	"fmt"
	"math"
	"testing"

	"noisewave/internal/charlib"
	"noisewave/internal/circuit"
	"noisewave/internal/device"
	"noisewave/internal/netlist"
	"noisewave/internal/spice"
	"noisewave/internal/wave"
)

// TestSTAMatchesTransistorSimulation is the end-to-end cross-validation of
// the timing stack: a four-stage inverter chain is timed two ways — (a)
// with the NLDM library characterized by the transient simulator, through
// the STA engine; (b) directly as a transistor-level transient of the whole
// chain. The NLDM arrival must match the simulated arrival within the
// table-model error budget (a few ps per stage).
func TestSTAMatchesTransistorSimulation(t *testing.T) {
	tech := device.Default130()
	drives := []float64{1, 4, 16, 64}
	const inSlew = 150e-12

	// (a) NLDM + STA.
	cells := make([]device.Cell, len(drives))
	names := make([]string, len(drives))
	for i, d := range drives {
		cells[i] = device.Inverter(tech, d)
		names[i] = cells[i].Name
	}
	opts := charlib.FastOptions()
	opts.Slews = []float64{20e-12, 50e-12, 150e-12, 400e-12}
	opts.Loads = []float64{1e-15, 4e-15, 16e-15, 64e-15, 200e-15}
	lib, err := charlib.Characterize(tech, cells, opts)
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	d := netlist.GenerateChain("xcheck", len(drives), names)
	d.Inputs[0].Slew = inSlew
	timer := New(lib, d)
	res, err := timer.Run()
	if err != nil {
		t.Fatalf("STA: %v", err)
	}
	// Input rises at t=0 → 4 inversions → y rises.
	staArrival := res.Nets["y"].timingFor(wave.Rising).Arrival

	// (b) Full transistor-level chain.
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
	in := ckt.Node("in")
	ckt.AddVSource("vin", in, circuit.Ground, circuit.SlewRamp(0.2e-9, inSlew, tech.Vdd, wave.Rising))
	prev := in
	var outName string
	for i, dr := range drives {
		out := ckt.Node(fmt.Sprintf("n%d", i))
		ckt.AddInverter(fmt.Sprintf("u%d", i), tech, dr, prev, out, vdd)
		outName = ckt.NodeName(out)
		prev = out
	}
	sim := spice.New(ckt, spice.Options{Stop: 1.5e-9, Step: 0.5e-12, Probes: []string{"in", outName}})
	sres, err := sim.Run()
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	wIn, _ := sres.Waveform("in")
	wOut, _ := sres.Waveform(outName)
	tIn, err := wIn.LastCrossing(0.5 * tech.Vdd)
	if err != nil {
		t.Fatal(err)
	}
	tOut, err := wOut.LastCrossing(0.5 * tech.Vdd)
	if err != nil {
		t.Fatal(err)
	}
	simArrival := tOut - tIn // STA input arrival is 0 at the 50% point

	diff := staArrival - simArrival
	t.Logf("chain arrival: STA %.2f ps vs transient %.2f ps (diff %+.2f ps)",
		staArrival*1e12, simArrival*1e12, diff*1e12)
	// NLDM errors compound per stage; 4 stages within 15 ps total keeps the
	// two timing views mutually consistent.
	if math.Abs(diff) > 15e-12 {
		t.Errorf("NLDM STA and transistor simulation disagree by %.2f ps", diff*1e12)
	}
}
