package sta

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"noisewave/internal/netgen"
	"noisewave/internal/netlist"
	"noisewave/internal/telemetry"
)

// meshTimer builds a timer over a generated mesh and the synthetic library.
func meshTimer(t *testing.T, cfg netgen.Config, w WireModel) *Timer {
	t.Helper()
	d, err := netgen.Generate(cfg)
	if err != nil {
		t.Fatalf("netgen.Generate: %v", err)
	}
	tm := New(netgen.SyntheticLibrary(), d)
	tm.Wire = w
	return tm
}

// requireSameTiming asserts two results carry bit-identical timing for
// every net: arrivals, early arrivals, transitions, validity and the path
// back-pointers, on both edges.
func requireSameTiming(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Nets) != len(got.Nets) {
		t.Fatalf("net count differs: %d vs %d", len(want.Nets), len(got.Nets))
	}
	for name, wn := range want.Nets {
		gn, ok := got.Nets[name]
		if !ok {
			t.Fatalf("net %s missing from second result", name)
		}
		if *wn != *gn {
			t.Fatalf("net %s timing differs:\nwant %+v\n got %+v", name, *wn, *gn)
		}
	}
}

// The levelized engine must reproduce the sequential map-based walk bit
// for bit at any worker count, including levels wide enough to engage the
// worker pool, under both wire models.
func TestParallelMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name  string
		gates int
		width int
		wire  WireModel
	}{
		{"elmore-wide", 4096, 128, ElmoreWire},
		{"ideal-narrow", 900, 30, IdealWire},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := netgen.DefaultConfig(tc.gates)
			cfg.Width = tc.width
			cfg.Seed = 1
			tm := meshTimer(t, cfg, tc.wire)
			ref, err := tm.RunReference()
			if err != nil {
				t.Fatalf("RunReference: %v", err)
			}
			for _, workers := range []int{1, 4, 16} {
				res, err := tm.RunCtx(context.Background(), RunOptions{Workers: workers})
				if err != nil {
					t.Fatalf("RunCtx(workers=%d): %v", workers, err)
				}
				requireSameTiming(t, ref, res)
			}
			// The legacy wrapper is the sequential path.
			res, err := tm.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			requireSameTiming(t, ref, res)
		})
	}
}

// Slacks derived from either engine's result must agree exactly.
func TestParallelSlacksMatchReference(t *testing.T) {
	cfg := netgen.DefaultConfig(2000)
	cfg.Seed = 5
	tm := meshTimer(t, cfg, ElmoreWire)
	constraints := make(map[string]float64, len(tm.Design.Outputs))
	for _, o := range tm.Design.Outputs {
		constraints[o] = 2e-9
	}

	ref, err := tm.RunReference()
	if err != nil {
		t.Fatal(err)
	}
	refReq, err := tm.ComputeRequired(ref, constraints)
	if err != nil {
		t.Fatal(err)
	}
	refNet, refEdge, refSlack, ok := refReq.WorstSlack(ref)
	if !ok {
		t.Fatal("reference worst slack not found")
	}

	res, err := tm.RunCtx(context.Background(), RunOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	req, err := tm.ComputeRequired(res, constraints)
	if err != nil {
		t.Fatal(err)
	}
	net, edge, slack, ok := req.WorstSlack(res)
	if !ok {
		t.Fatal("parallel worst slack not found")
	}
	if net != refNet || edge != refEdge || slack != refSlack {
		t.Fatalf("worst slack differs: ref (%s, %v, %g) vs parallel (%s, %v, %g)",
			refNet, refEdge, refSlack, net, edge, slack)
	}
}

// Noise-annotated meshes: the levelized engine converts at level
// boundaries, the reference converts lazily at the first consumer — the
// timing and the number of technique fits must match exactly.
func TestParallelNoiseEquivalence(t *testing.T) {
	cfg := netgen.DefaultConfig(2000)
	cfg.Width = 64
	cfg.Seed = 9
	tm := meshTimer(t, cfg, ElmoreWire)
	sites := netgen.NoiseSites(cfg, tm.Design, tm.Lib.Vdd, 0.08)
	if len(sites) == 0 {
		t.Fatal("no noise sites generated")
	}
	for _, s := range sites {
		tm.Annotate(s.Net, &NoiseAnnotation{
			Noisy: s.Noisy, Noiseless: s.Noiseless, NoiselessOut: s.NoiselessOut, Edge: s.Edge,
		})
	}

	regRef := telemetry.New()
	tm.Telemetry = regRef
	ref, err := tm.RunReference()
	if err != nil {
		t.Fatalf("RunReference: %v", err)
	}

	for _, workers := range []int{1, 8} {
		reg := telemetry.New()
		res, err := tm.RunCtx(context.Background(), RunOptions{Workers: workers, Telemetry: reg})
		if err != nil {
			t.Fatalf("RunCtx(workers=%d): %v", workers, err)
		}
		requireSameTiming(t, ref, res)
		refConv := regRef.Counter("sta.noise_conversions").Value()
		gotConv := reg.Counter("sta.noise_conversions").Value()
		if refConv == 0 {
			t.Fatal("reference performed no noise conversions")
		}
		if gotConv != refConv {
			t.Fatalf("workers=%d: %d conversions, reference did %d", workers, gotConv, refConv)
		}
	}
}

// A context canceled before the run starts must stop propagation with an
// error matching telemetry.ErrCanceled.
func TestRunCtxPreCanceled(t *testing.T) {
	cfg := netgen.DefaultConfig(500)
	tm := meshTimer(t, cfg, IdealWire)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tm.RunCtx(ctx, RunOptions{Workers: 4})
	if err == nil {
		t.Fatal("RunCtx with canceled ctx succeeded")
	}
	if !errors.Is(err, telemetry.ErrCanceled) {
		t.Fatalf("error %v does not match telemetry.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match context.Canceled", err)
	}
}

// countdownCtx reports cancellation after its Err budget is exhausted —
// tripping the engine's level-boundary check mid-propagation.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestRunCtxCanceledMidPropagation(t *testing.T) {
	cfg := netgen.DefaultConfig(2000)
	cfg.Width = 64 // depth ~31: plenty of level boundaries
	tm := meshTimer(t, cfg, IdealWire)
	ctx := &countdownCtx{Context: context.Background()}
	ctx.left.Store(3)
	reg := telemetry.New()
	_, err := tm.RunCtx(ctx, RunOptions{Workers: 1, Telemetry: reg})
	if err == nil {
		t.Fatal("RunCtx survived a mid-run cancellation")
	}
	if !errors.Is(err, telemetry.ErrCanceled) {
		t.Fatalf("error %v does not match telemetry.ErrCanceled", err)
	}
	timed := reg.Counter("sta.gates_timed").Value()
	if timed == 0 || timed >= int64(len(tm.Design.Gates)) {
		t.Fatalf("cancellation was not mid-propagation: %d of %d gates timed",
			timed, len(tm.Design.Gates))
	}
}

// opts.Ctx is the fallback when the explicit argument is nil.
func TestRunCtxOptsContextFallback(t *testing.T) {
	cfg := netgen.DefaultConfig(200)
	tm := meshTimer(t, cfg, IdealWire)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	//lint:ignore SA1012 nil ctx exercises the documented opts.Ctx fallback
	_, err := tm.RunCtx(nil, RunOptions{Ctx: ctx, Workers: 1})
	if !errors.Is(err, telemetry.ErrCanceled) {
		t.Fatalf("opts.Ctx cancellation not honored: %v", err)
	}
}

// Both engines must reject a multi-driven net with the typed error naming
// the net and both drivers.
func TestMultiDriverErrorTyped(t *testing.T) {
	d := &netlist.Design{
		Name:   "dup",
		Inputs: []netlist.Port{{Name: "a", Slew: 50e-12}},
		Gates: []netlist.Gate{
			{Name: "g1", Cell: "INVX1", Pins: map[string]string{"A": "a", "Y": "n1"}},
			{Name: "g2", Cell: "INVX1", Pins: map[string]string{"A": "a", "Y": "n1"}},
		},
		Outputs: []string{"n1"},
	}
	tm := New(netgen.SyntheticLibrary(), d)

	for name, run := range map[string]func() (*Result, error){
		"reference": tm.RunReference,
		"levelized": func() (*Result, error) { return tm.RunCtx(context.Background(), RunOptions{}) },
	} {
		_, err := run()
		var mde *MultiDriverError
		if !errors.As(err, &mde) {
			t.Fatalf("%s: error %v is not a *MultiDriverError", name, err)
		}
		if mde.Net != "n1" {
			t.Fatalf("%s: wrong net %q", name, mde.Net)
		}
		drivers := map[string]bool{mde.Driver1: true, mde.Driver2: true}
		if !drivers["g1"] || !drivers["g2"] {
			t.Fatalf("%s: wrong drivers %q, %q", name, mde.Driver1, mde.Driver2)
		}
	}
}

// An internal net no gate drives must fail levelization on both engines.
func TestUndrivenNetError(t *testing.T) {
	d := &netlist.Design{
		Name:   "ghost",
		Inputs: []netlist.Port{{Name: "a", Slew: 50e-12}},
		Gates: []netlist.Gate{
			{Name: "g1", Cell: "NAND2X1", Pins: map[string]string{"A": "a", "B": "phantom", "Y": "y"}},
		},
		Outputs: []string{"y"},
	}
	tm := New(netgen.SyntheticLibrary(), d)
	if _, err := tm.RunReference(); err == nil {
		t.Fatal("reference accepted an undriven net")
	}
	if _, err := tm.RunCtx(context.Background(), RunOptions{}); err == nil {
		t.Fatal("levelized engine accepted an undriven net")
	}
}

// Disconnected components levelize and time independently.
func TestDisconnectedDesign(t *testing.T) {
	d := &netlist.Design{
		Name: "islands",
		Inputs: []netlist.Port{
			{Name: "a", Slew: 50e-12},
			{Name: "b", Slew: 80e-12, Arrival: 20e-12},
		},
		Gates: []netlist.Gate{
			{Name: "g1", Cell: "INVX1", Pins: map[string]string{"A": "a", "Y": "y1"}},
			{Name: "g2", Cell: "INVX4", Pins: map[string]string{"A": "b", "Y": "y2"}},
		},
		Outputs: []string{"y1", "y2"},
	}
	tm := New(netgen.SyntheticLibrary(), d)
	ref, err := tm.RunReference()
	if err != nil {
		t.Fatal(err)
	}
	res, err := tm.RunCtx(context.Background(), RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	requireSameTiming(t, ref, res)
	for _, o := range d.Outputs {
		if nt := res.Nets[o]; nt == nil || !nt.Rise.Valid || !nt.Fall.Valid {
			t.Fatalf("output %s not fully timed: %+v", o, nt)
		}
	}
}

// RunOptions.Wire overrides the timer's model for one run without mutating
// the timer.
func TestRunOptionsWireOverride(t *testing.T) {
	cfg := netgen.DefaultConfig(600)
	cfg.Seed = 2
	tm := meshTimer(t, cfg, IdealWire)

	ideal, err := tm.Run()
	if err != nil {
		t.Fatal(err)
	}
	elmore := ElmoreWire
	over, err := tm.RunCtx(context.Background(), RunOptions{Workers: 1, Wire: &elmore})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Wire != IdealWire {
		t.Fatal("RunOptions.Wire mutated the timer")
	}

	tm.Wire = ElmoreWire
	want, err := tm.Run()
	if err != nil {
		t.Fatal(err)
	}
	requireSameTiming(t, want, over)

	differs := false
	for name, wn := range ideal.Nets {
		if *wn != *over.Nets[name] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("Elmore override produced identical timing to the ideal wire on a parasitic-annotated mesh")
	}
}

// Result.Order from the levelized engine must be a topological order: every
// gate appears after the drivers of all its inputs.
func TestParallelOrderTopological(t *testing.T) {
	cfg := netgen.DefaultConfig(800)
	cfg.Seed = 4
	tm := meshTimer(t, cfg, IdealWire)
	res, err := tm.RunCtx(context.Background(), RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != len(tm.Design.Gates) {
		t.Fatalf("Order has %d gates, design has %d", len(res.Order), len(tm.Design.Gates))
	}
	pos := make(map[string]int, len(res.Order))
	for i, g := range res.Order {
		pos[g] = i
	}
	driver := make(map[string]string)
	for _, g := range tm.Design.Gates {
		driver[g.Pins["Y"]] = g.Name
	}
	for _, g := range tm.Design.Gates {
		for pin, net := range g.Pins {
			if pin == "Y" {
				continue
			}
			drv, ok := driver[net]
			if !ok {
				continue // primary input
			}
			if pos[drv] >= pos[g.Name] {
				t.Fatalf("gate %s (pos %d) precedes its driver %s (pos %d)",
					g.Name, pos[g.Name], drv, pos[drv])
			}
		}
	}
}

// Annotate during an in-flight RunCtx is defined behavior: each run works
// from a snapshot. Run under -race to validate the locking.
func TestConcurrentAnnotateAndRun(t *testing.T) {
	cfg := netgen.DefaultConfig(1000)
	cfg.Seed = 6
	tm := meshTimer(t, cfg, ElmoreWire)
	sites := netgen.NoiseSites(cfg, tm.Design, tm.Lib.Vdd, 0.05)
	if len(sites) == 0 {
		t.Fatal("no noise sites")
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if _, err := tm.RunCtx(context.Background(), RunOptions{Workers: 4}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, s := range sites {
			tm.Annotate(s.Net, &NoiseAnnotation{
				Noisy: s.Noisy, Noiseless: s.Noiseless, NoiselessOut: s.NoiselessOut, Edge: s.Edge,
			})
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent RunCtx: %v", err)
	}
}

// benchMesh times one full arrival propagation over a pinned mesh.
func benchMesh(b *testing.B, gates, workers int, reference bool) {
	cfg := netgen.DefaultConfig(gates)
	cfg.Seed = 1
	d, err := netgen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tm := New(netgen.SyntheticLibrary(), d)
	tm.Wire = ElmoreWire
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reference {
			_, err = tm.RunReference()
		} else {
			_, err = tm.RunCtx(context.Background(), RunOptions{Workers: workers})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMesh is the gates-vs-wall scaling matrix behind EXPERIMENTS.md
// "Full-chip STA at scale": the legacy map walk versus the levelized
// engine at 1 and 4 workers, for 10³–10⁵ gates.
func BenchmarkMesh(b *testing.B) {
	for _, gates := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("reference/gates=%d", gates), func(b *testing.B) {
			benchMesh(b, gates, 1, true)
		})
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("levelized/gates=%d/workers=%d", gates, workers), func(b *testing.B) {
				benchMesh(b, gates, workers, false)
			})
		}
	}
}
