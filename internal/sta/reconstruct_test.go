package sta

import (
	"math"
	"testing"

	"noisewave/internal/charlib"
	"noisewave/internal/device"
	"noisewave/internal/wave"
)

// TestLibraryReconstructedAnnotation runs the noise-aware mode with an
// annotation that carries ONLY the noisy waveform; the noiseless pair must
// be rebuilt from the characterized output waveforms in the library.
func TestLibraryReconstructedAnnotation(t *testing.T) {
	tech := device.Default130()
	opts := charlib.FastOptions()
	opts.WithWaves = true
	lib, err := charlib.Characterize(tech,
		[]device.Cell{device.Inverter(tech, 1), device.Inverter(tech, 4)}, opts)
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}

	d := mustParse(t, `
design recon
input a slew=150ps
output y
gate u1 INVX1 A=a Y=n1
gate u2 INVX4 A=n1 Y=y
`)
	timer := New(lib, d)
	base, err := timer.Run()
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	// The propagated falling edge at n1 (input a rises → n1 falls).
	pt := base.Nets["n1"].Fall
	if !pt.Valid {
		t.Fatal("n1 fall not timed")
	}

	// Noisy waveform: the same edge delayed by 120 ps (a crosstalk
	// push-out), full swing.
	vdd := tech.Vdd
	delay := 120e-12
	noisy := wave.FromFunc(func(tt float64) float64 {
		u := (tt - (pt.Arrival + delay - pt.Trans/1.6)) / (pt.Trans / 0.8)
		u = math.Max(0, math.Min(1, u))
		return vdd * (1 - u)
	}, 0, pt.Arrival+delay+2*pt.Trans+0.5e-9, 1500)

	noisyTimer := New(lib, d)
	noisyTimer.Annotate("n1", &NoiseAnnotation{Noisy: noisy, Edge: wave.Falling})
	res, err := noisyTimer.Run()
	if err != nil {
		t.Fatalf("noise-aware run: %v", err)
	}
	// y's rising arrival (driven by n1 falling) must move out by ≈ delay.
	shift := res.Nets["y"].Rise.Arrival - base.Nets["y"].Rise.Arrival
	if math.Abs(shift-delay) > 60e-12 {
		t.Errorf("arrival shift %.1f ps, want ≈%.1f ps", shift*1e12, delay*1e12)
	}
	t.Logf("push-out through reconstructed annotation: %.1f ps (injected %.1f ps)",
		shift*1e12, delay*1e12)
}

// TestReconstructionRequiresWaves: without characterized waveforms the
// reconstruction must fail with a clear error.
func TestReconstructionRequiresWaves(t *testing.T) {
	tech := device.Default130()
	lib, err := charlib.Characterize(tech,
		[]device.Cell{device.Inverter(tech, 1), device.Inverter(tech, 4)},
		charlib.FastOptions()) // no WithWaves
	if err != nil {
		t.Fatal(err)
	}
	d := mustParse(t, `
design nr
input a
output y
gate u1 INVX1 A=a Y=n1
gate u2 INVX4 A=n1 Y=y
`)
	timer := New(lib, d)
	noisy := wave.FromFunc(func(tt float64) float64 { return 1.2 * tt / 1e-9 }, 0, 1e-9, 100)
	timer.Annotate("n1", &NoiseAnnotation{Noisy: noisy, Edge: wave.Rising})
	if _, err := timer.Run(); err == nil {
		t.Error("reconstruction without characterized waveforms accepted")
	}
}
