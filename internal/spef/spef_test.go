package spef

import (
	"math"
	"strings"
	"testing"

	"noisewave/internal/netlist"
)

const sample = `
*SPEF "IEEE 1481-1998"
*DESIGN top
*T_UNIT 1 PS
*C_UNIT 1 FF
*DIVIDER /
*DELIMITER :

*NAME_MAP
*1 n1
*2 agg

*D_NET *1 12.5
*CAP
1 *1:1 4.2
2 *1:2 *2:1 8.3
*RES
1 *1:1 *1:2 85.0
*END

*D_NET n2 3.0
*END
`

func TestParseSample(t *testing.T) {
	p, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Design != "top" {
		t.Errorf("design %q", p.Design)
	}
	if p.CapUnit != 1e-15 || p.TimeUnit != 1e-12 {
		t.Errorf("units: %g %g", p.CapUnit, p.TimeUnit)
	}
	// n1 has a detailed *CAP section: ground cap = 4.2 fF (the 12.5 total
	// is superseded), coupling to agg = 8.3 fF.
	if got := p.GroundCap["n1"]; math.Abs(got-4.2e-15) > 1e-21 {
		t.Errorf("n1 ground cap = %g", got)
	}
	if len(p.Couplings) != 1 {
		t.Fatalf("couplings: %v", p.Couplings)
	}
	cp := p.Couplings[0]
	if cp.A != "n1" || cp.B != "agg" || math.Abs(cp.Cap-8.3e-15) > 1e-21 {
		t.Errorf("coupling: %+v", cp)
	}
	// n2 keeps its lump total.
	if got := p.GroundCap["n2"]; math.Abs(got-3e-15) > 1e-21 {
		t.Errorf("n2 ground cap = %g", got)
	}
}

func TestUnits(t *testing.T) {
	src := "*C_UNIT 1 PF\n*D_NET x 2.0\n*END\n"
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.GroundCap["x"]; math.Abs(got-2e-12) > 1e-18 {
		t.Errorf("pF unit not applied: %g", got)
	}
	if _, err := Parse(strings.NewReader("*C_UNIT 1 XX\n")); err == nil {
		t.Error("unknown unit accepted")
	}
}

func TestMalformedCap(t *testing.T) {
	src := "*D_NET x 1.0\n*CAP\n1 x:1\n*END\n"
	if _, err := Parse(strings.NewReader(src)); err == nil {
		t.Error("short cap line accepted")
	}
}

func TestAnnotate(t *testing.T) {
	p, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	d := &netlist.Design{Name: "top", NetCaps: map[string]float64{"n1": 1e-15}}
	p.Annotate(d)
	if got := d.NetCaps["n1"]; math.Abs(got-5.2e-15) > 1e-21 {
		t.Errorf("annotated n1 cap = %g (want accumulate)", got)
	}
	if len(d.Couplings) != 1 {
		t.Errorf("couplings not merged: %v", d.Couplings)
	}
}

func TestSkipsUnknownDirectives(t *testing.T) {
	src := "*FOO bar\nsome stray tokens\n*D_NET x 1.5\n*END\n"
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("unknown directive broke the parser: %v", err)
	}
	if p.GroundCap["x"] == 0 {
		t.Error("net after unknown directive lost")
	}
}
