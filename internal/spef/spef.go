// Package spef parses the reduced SPEF (IEEE 1481) subset that carries the
// parasitics noise-aware STA needs: per-net total/ground capacitance and
// inter-net coupling capacitors. The result annotates a netlist.Design
// with net caps and couplings.
//
// Supported shape:
//
//	*SPEF "IEEE 1481-1998"
//	*DESIGN top
//	*T_UNIT 1 PS
//	*C_UNIT 1 FF
//
//	*D_NET n1 12.5
//	*CAP
//	1 n1:1 4.2
//	2 n1:2 agg:1 8.3
//	*END
//
// Name maps (*NAME_MAP) are supported; R/L sections inside *D_NET are
// skipped. Pin nodes ("net:idx") collapse onto their net.
package spef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"noisewave/internal/netlist"
)

// Parasitics is the parsed content.
type Parasitics struct {
	Design string
	// CapUnit in farads per SPEF capacitance unit, TimeUnit in seconds.
	CapUnit  float64
	TimeUnit float64
	// GroundCap is per-net capacitance to ground (F).
	GroundCap map[string]float64
	// Couplings lists inter-net coupling capacitors (F).
	Couplings []netlist.Coupling
}

// Parse reads the SPEF subset.
func Parse(r io.Reader) (*Parasitics, error) {
	p := &Parasitics{
		CapUnit:   1e-15, // SPEF default here: FF
		TimeUnit:  1e-12,
		GroundCap: make(map[string]float64),
	}
	nameMap := make(map[string]string)
	sc := bufio.NewScanner(r)
	lineNo := 0
	section := "" // "", "cap", "skip"
	curNet := ""
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		key := strings.ToUpper(fields[0])
		// Name-map entries ("*123 realname") start with '*' like directives
		// do, so they must be claimed while the *NAME_MAP section is open.
		if section == "namemap" && len(fields) == 2 && isMapKey(fields[0]) {
			nameMap[fields[0]] = fields[1]
			continue
		}
		switch {
		case key == "*SPEF" || key == "*VENDOR" || key == "*PROGRAM" ||
			key == "*VERSION" || key == "*DATE" || key == "*DIVIDER" ||
			key == "*DELIMITER" || key == "*BUS_DELIMITER" ||
			key == "*L_UNIT" || key == "*R_UNIT" || key == "*INDUCTANCE":
			// Header noise: ignored.
		case key == "*DESIGN":
			if len(fields) > 1 {
				p.Design = strings.Trim(fields[1], `"`)
			}
		case key == "*T_UNIT":
			u, err := parseUnit(fields[1:], map[string]float64{"S": 1, "MS": 1e-3, "US": 1e-6, "NS": 1e-9, "PS": 1e-12})
			if err != nil {
				return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
			}
			p.TimeUnit = u
		case key == "*C_UNIT":
			u, err := parseUnit(fields[1:], map[string]float64{"F": 1, "PF": 1e-12, "FF": 1e-15})
			if err != nil {
				return nil, fmt.Errorf("spef: line %d: %w", lineNo, err)
			}
			p.CapUnit = u
		case key == "*NAME_MAP":
			section = "namemap"
		case key == "*D_NET":
			if len(fields) < 2 {
				return nil, fmt.Errorf("spef: line %d: *D_NET needs a net", lineNo)
			}
			curNet = resolve(fields[1], nameMap)
			section = ""
			if len(fields) >= 3 {
				total, err := strconv.ParseFloat(fields[2], 64)
				if err != nil {
					return nil, fmt.Errorf("spef: line %d: bad total cap %q", lineNo, fields[2])
				}
				// Total cap recorded as ground cap unless a *CAP section
				// refines it below.
				p.GroundCap[curNet] += total * p.CapUnit
			}
		case key == "*CAP":
			section = "cap"
			// The detailed section supersedes the *D_NET total for this net.
			if curNet != "" {
				p.GroundCap[curNet] = 0
			}
		case key == "*RES" || key == "*INDUC" || key == "*CONN":
			section = "skip"
		case key == "*END":
			section, curNet = "", ""
		case strings.HasPrefix(key, "*"):
			// Unknown directive: ignore (forward compatible).
			section = "skip"
		default:
			if section == "cap" {
				if err := p.parseCapLine(fields, nameMap, lineNo); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseCapLine handles "idx node cap" (ground) and "idx node node cap"
// (coupling).
func (p *Parasitics) parseCapLine(fields []string, nameMap map[string]string, lineNo int) error {
	switch len(fields) {
	case 3:
		net := resolve(netOf(fields[1]), nameMap)
		c, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("spef: line %d: bad cap %q", lineNo, fields[2])
		}
		p.GroundCap[net] += c * p.CapUnit
		return nil
	case 4:
		a := resolve(netOf(fields[1]), nameMap)
		b := resolve(netOf(fields[2]), nameMap)
		c, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return fmt.Errorf("spef: line %d: bad cap %q", lineNo, fields[3])
		}
		p.Couplings = append(p.Couplings, netlist.Coupling{A: a, B: b, Cap: c * p.CapUnit})
		return nil
	default:
		return fmt.Errorf("spef: line %d: malformed cap entry %v", lineNo, fields)
	}
}

func parseUnit(fields []string, table map[string]float64) (float64, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("unit needs 'value suffix', got %v", fields)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("bad unit value %q", fields[0])
	}
	scale, ok := table[strings.ToUpper(fields[1])]
	if !ok {
		return 0, fmt.Errorf("unknown unit suffix %q", fields[1])
	}
	return v * scale, nil
}

// isMapKey reports whether a token is a name-map index: '*' followed by
// digits only.
func isMapKey(tok string) bool {
	if len(tok) < 2 || tok[0] != '*' {
		return false
	}
	for _, c := range tok[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// resolve maps "*123" through the name map.
func resolve(name string, nameMap map[string]string) string {
	if mapped, ok := nameMap[name]; ok {
		return mapped
	}
	return name
}

// netOf strips the pin index from "net:idx".
func netOf(node string) string {
	if i := strings.IndexByte(node, ':'); i >= 0 {
		return node[:i]
	}
	return node
}

// Annotate merges the parasitics into a design: ground caps accumulate
// into NetCaps, couplings append to Couplings. Nets unknown to the design
// are still recorded (aggressors outside the block are legitimate).
func (p *Parasitics) Annotate(d *netlist.Design) {
	if d.NetCaps == nil {
		d.NetCaps = make(map[string]float64)
	}
	for net, c := range p.GroundCap {
		if c != 0 {
			d.NetCaps[net] += c
		}
	}
	d.Couplings = append(d.Couplings, p.Couplings...)
}
