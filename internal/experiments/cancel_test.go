package experiments

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/telemetry"
	"noisewave/internal/xtalk"
)

// TestTable1CancelPartialStats: canceling mid-sweep must return the
// statistics over the completed cases together with an error matching
// telemetry.ErrCanceled — at both the sequential and the pooled worker
// count.
func TestTable1CancelPartialStats(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const cases, stopAfter = 8, 2
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			reg := telemetry.New()
			res, err := RunTable1(cfg, Table1Options{
				Cases: cases, Range: 1e-9, P: 35,
				SweepOptions: SweepOptions{
					Workers: workers, Ctx: ctx, Telemetry: reg,
					Progress: func(done, total int) {
						if done == stopAfter {
							cancel()
						}
					},
				},
			})
			if err == nil {
				t.Fatal("nil error from canceled sweep")
			}
			if !errors.Is(err, telemetry.ErrCanceled) {
				t.Fatalf("error %v does not match telemetry.ErrCanceled", err)
			}
			if res == nil {
				t.Fatal("nil result; want partial statistics")
			}
			if len(res.Stats) == 0 {
				t.Fatal("partial result carries no technique stats")
			}
			for _, s := range res.Stats {
				total := s.N + s.Failures
				if total < stopAfter || total >= cases {
					t.Errorf("technique %s scored on %d cases, want partial coverage in [%d, %d)",
						s.Name, total, stopAfter, cases)
				}
			}
			if got := len(res.Cases); got >= cases || got < stopAfter {
				t.Errorf("partial result holds %d case records, want in [%d, %d)",
					len(res.Cases), stopAfter, cases)
			}
			// The wall timer flushed exactly once despite the early return.
			if ts := reg.Snapshot().Timers["experiments.table1.seconds"]; ts.Count != 1 {
				t.Errorf("experiments.table1.seconds count = %d, want 1", ts.Count)
			}
		})
	}
}

// TestTable1TelemetrySnapshot: a completed sweep must leave a consistent
// end-to-end snapshot: spice counters from the transients, replay-cache
// outcomes, fit timers per technique and the sweep completion counter.
func TestTable1TelemetrySnapshot(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	cases := sweepCases(t, 6)
	reg := telemetry.New()
	res, err := RunTable1(cfg, Table1Options{
		Cases: cases, Range: 1e-9, P: 35,
		SweepOptions: SweepOptions{Workers: 2, Telemetry: reg},
	})
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sweep.cases_completed"]; got != int64(cases) {
		t.Errorf("sweep.cases_completed = %d, want %d", got, cases)
	}
	// Every case runs one reference transient plus the replay transients;
	// the baseline adds more. A conservative lower bound suffices: the
	// counters must actually observe the pipeline.
	if got := snap.Counters["spice.transients"]; got < int64(cases) {
		t.Errorf("spice.transients = %d, want >= %d", got, cases)
	}
	if got := snap.Counters["spice.newton_iterations"]; got <= 0 {
		t.Errorf("spice.newton_iterations = %d, want > 0", got)
	}
	hits := snap.Counters["core.replay_hits"]
	misses := snap.Counters["core.replay_misses"]
	if misses <= 0 {
		t.Errorf("core.replay_misses = %d, want > 0", misses)
	}
	// Hits+misses = one replay lookup per scored technique per case.
	var lookups int64
	for _, s := range res.Stats {
		lookups += int64(s.N + s.Failures)
	}
	// Techniques that fail before emitting a ramp never reach the cache, so
	// the lookup count is bounded by, not equal to, the scored count.
	if hits+misses > lookups {
		t.Errorf("replay lookups %d exceed scored technique-cases %d", hits+misses, lookups)
	}
	for _, s := range res.Stats {
		ts := snap.Timers["eqwave.fit_seconds."+s.Name]
		if ts.Count != int64(s.N+s.Failures) {
			t.Errorf("fit timer for %s observed %d times, want %d", s.Name, ts.Count, s.N+s.Failures)
		}
	}
	if ts := snap.Timers["experiments.table1.seconds"]; ts.Count != 1 || ts.Sum <= 0 {
		t.Errorf("experiments.table1.seconds = %+v, want one positive observation", ts)
	}
}

// TestPushoutCancelPartial: the push-out distribution is computed over the
// completed cases when canceled mid-sweep.
func TestPushoutCancelPartial(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	const cases, stopAfter = 8, 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := RunPushout(cfg, PushoutOptions{
		Cases: cases, Range: 1e-9,
		SweepOptions: SweepOptions{
			Workers: 2, Ctx: ctx,
			Progress: func(done, total int) {
				if done == stopAfter {
					cancel()
				}
			},
		},
	})
	if !errors.Is(err, telemetry.ErrCanceled) {
		t.Fatalf("error %v does not match telemetry.ErrCanceled", err)
	}
	if st == nil {
		t.Fatal("nil stats; want partial distribution")
	}
	if st.Cases < stopAfter || st.Cases >= cases {
		t.Errorf("partial distribution over %d cases, want in [%d, %d)", st.Cases, stopAfter, cases)
	}
	if len(st.Pushouts) != st.Cases {
		t.Errorf("Pushouts holds %d values, want %d", len(st.Pushouts), st.Cases)
	}
}
