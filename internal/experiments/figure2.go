package experiments

import (
	"fmt"

	"noisewave/internal/core"
	"noisewave/internal/eqwave"
	"noisewave/internal/wave"
	"noisewave/internal/xtalk"
)

// Figure2Series reproduces the data behind the paper's Figure 2: the
// noiseless sensitivity ρ (panel a) and the remapped sensitivity ρ_eff,
// the fitted Γeff and the resulting output v_out^eff against the reference
// noisy pair (panel b). Voltages are in volts, ρ is scaled by 0.2 exactly
// as the figure's legend does.
type Figure2Series struct {
	// Panel (a): the noiseless transition.
	NoiselessIn  *wave.Waveform
	NoiselessOut *wave.Waveform
	RhoNoiseless *wave.Waveform // 0.2·ρ_noiseless over the critical region

	// Panel (b): one representative noisy case.
	NoisyIn   *wave.Waveform
	NoisyOut  *wave.Waveform // reference ("Hspice") output
	RhoEff    *wave.Waveform // 0.2·ρ_eff over the noisy critical region
	GammaEff  wave.Ramp
	GammaWave *wave.Waveform // Γeff sampled over the noisy window
	EstOut    *wave.Waveform // v_out^eff (proposed)
}

// Figure2Options selects the noisy case shown in panel (b). The embedded
// SweepOptions carries cancellation and telemetry; Workers/Seed/Progress
// are ignored (Figure 2 is a single case, not a sweep).
type Figure2Options struct {
	// Offset of the aggressor edge relative to the victim edge (a mid-
	// transition hit by default).
	Offset float64
	// P is the technique sample count.
	P int

	SweepOptions
}

// RunFigure2 regenerates both panels of Figure 2 for the given
// configuration. Cancellation via opts.Ctx aborts the in-flight transient
// and returns an error matching telemetry.ErrCanceled (no partial series).
func RunFigure2(cfg xtalk.Config, opts Figure2Options) (*Figure2Series, error) {
	const victimStart = 0.3e-9
	if opts.Offset == 0 {
		opts.Offset = 0.05e-9
	}
	defer opts.Telemetry.Timer("experiments.figure2.seconds").Start()()
	cfg.Telemetry = opts.Telemetry
	ctx := opts.ctx()

	nlIn, nlOut, err := cfg.RunNoiselessCtx(ctx, victimStart)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure2 noiseless: %w", err)
	}
	starts := make([]float64, cfg.Aggressors)
	for k := range starts {
		starts[k] = victimStart + opts.Offset + float64(k)*40e-12
	}
	nIn, nOut, err := cfg.RunCtx(ctx, victimStart, starts)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure2 noisy: %w", err)
	}

	vdd := cfg.Tech.Vdd
	sens, err := eqwave.ComputeSensitivity(nlIn, nlOut, vdd, cfg.VictimEdge, 512)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure2 sensitivity: %w", err)
	}
	rhoNl := wave.MustNew(append([]float64(nil), sens.T...), scale(sens.Rho, 0.2))

	in := eqwave.Input{
		Noisy: nIn, Noiseless: nlIn, NoiselessOut: nlOut,
		Vdd: vdd, Edge: cfg.VictimEdge, P: opts.P,
	}
	sgdp := eqwave.NewSGDP()
	gamma, err := sgdp.Equivalent(in)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure2 SGDP: %w", err)
	}

	// ρ_eff over the noisy critical region (same remap SGDP Step 2 uses).
	tFirst, tLast, err := nIn.CriticalRegion(0.1*vdd, 0.9*vdd, cfg.VictimEdge)
	if err != nil {
		return nil, err
	}
	const nSamples = 512
	ts := make([]float64, nSamples)
	rhoEff := make([]float64, nSamples)
	for i := range ts {
		ts[i] = tFirst + (tLast-tFirst)*float64(i)/float64(nSamples-1)
		r, _ := sens.AtVoltage(nIn.At(ts[i]))
		rhoEff[i] = 0.2 * r
	}

	gate := core.NewInverterChainSim(cfg.Tech,
		[]float64{cfg.ReceiverDrive, cfg.Load1Drive, cfg.Load2Drive}, cfg.Step)
	gate.Telemetry = opts.Telemetry
	start, stop := core.WindowFor(gamma, nOut, 0.2e-9)
	est, err := gate.OutputForRampCtx(ctx, gamma, start, stop)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure2 gate eval: %w", err)
	}

	return &Figure2Series{
		NoiselessIn:  nlIn,
		NoiselessOut: nlOut,
		RhoNoiseless: rhoNl,
		NoisyIn:      nIn,
		NoisyOut:     nOut,
		RhoEff:       wave.MustNew(ts, rhoEff),
		GammaEff:     gamma,
		GammaWave:    gamma.ToWaveform(nIn.Start(), nIn.End(), 256),
		EstOut:       est,
	}, nil
}

func scale(v []float64, k float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = k * x
	}
	return out
}
