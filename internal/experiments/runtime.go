package experiments

import (
	"fmt"
	"time"

	"noisewave/internal/eqwave"
	"noisewave/internal/xtalk"
)

// RuntimeRow is one row of the §4.2 run-time comparison: the average time a
// technique takes to propagate delay information through one gate (Γeff
// fitting only — gate evaluation afterwards is common to all techniques).
type RuntimeRow struct {
	Name    string
	P       int
	PerGate time.Duration
	// AvgAbsErr links the run-time to accuracy for the P sweep (§4.2
	// remarks that small P is faster but less accurate); zero when not
	// measured.
	AvgAbsErr float64
}

// RuntimeOptions parameterizes the run-time experiment.
type RuntimeOptions struct {
	// Repeats is the number of Γeff fits timed per technique (default 200).
	Repeats int
	// P is the sample count (paper: 35).
	P int
	// Offset selects the noisy case used as the fitting workload.
	Offset float64
}

// RunRuntime measures per-gate propagation time for each technique on a
// representative noisy case, reproducing the §4.2 comparison. The timed
// fit loops run strictly sequentially on the calling goroutine by design:
// per-gate wall clock is the measurement, so fanning the repeats out over
// the sweep worker pool would contaminate it with scheduling noise.
func RunRuntime(cfg xtalk.Config, opts RuntimeOptions) ([]RuntimeRow, error) {
	if opts.Repeats <= 0 {
		opts.Repeats = 200
	}
	if opts.P <= 0 {
		opts.P = eqwave.DefaultP
	}
	if opts.Offset == 0 {
		opts.Offset = 0.05e-9
	}
	in, err := runtimeWorkload(cfg, opts.Offset, opts.P)
	if err != nil {
		return nil, err
	}
	var rows []RuntimeRow
	for _, tech := range eqwave.All() {
		// Warm-up fit, also validating the technique on this workload.
		if _, err := tech.Equivalent(in); err != nil {
			return nil, fmt.Errorf("experiments: runtime workload rejected by %s: %w", tech.Name(), err)
		}
		start := time.Now()
		for i := 0; i < opts.Repeats; i++ {
			if _, err := tech.Equivalent(in); err != nil {
				return nil, err
			}
		}
		rows = append(rows, RuntimeRow{
			Name:    tech.Name(),
			P:       opts.P,
			PerGate: time.Since(start) / time.Duration(opts.Repeats),
		})
	}
	return rows, nil
}

// runtimeWorkload builds the eqwave input for one representative noisy
// case of the configuration.
func runtimeWorkload(cfg xtalk.Config, offset float64, p int) (eqwave.Input, error) {
	const victimStart = 0.3e-9
	nlIn, nlOut, err := cfg.RunNoiseless(victimStart)
	if err != nil {
		return eqwave.Input{}, err
	}
	starts := make([]float64, cfg.Aggressors)
	for k := range starts {
		starts[k] = victimStart + offset + float64(k)*40e-12
	}
	nIn, _, err := cfg.Run(victimStart, starts)
	if err != nil {
		return eqwave.Input{}, err
	}
	return eqwave.Input{
		Noisy: nIn, Noiseless: nlIn, NoiselessOut: nlOut,
		Vdd: cfg.Tech.Vdd, Edge: cfg.VictimEdge, P: p,
	}, nil
}

// RunPSweep measures SGDP accuracy and run time across sample counts,
// reproducing the §4.2 trade-off remark ("smaller P reduces run time but
// tends to lower accuracy"). workers parallelizes the accuracy sweep run
// for each P (as in Table1Options.Workers); the per-gate fit timing loop
// stays on the calling goroutine so the reported wall-clock per fit is not
// distorted by concurrent load.
func RunPSweep(cfg xtalk.Config, ps []int, cases, workers int) ([]RuntimeRow, error) {
	if len(ps) == 0 {
		ps = []int{9, 17, 35, 71, 141}
	}
	if cases <= 0 {
		cases = 20
	}
	var rows []RuntimeRow
	for _, p := range ps {
		res, err := RunTable1(cfg, Table1Options{
			Cases: cases, Range: 1e-9, P: p,
			Techniques: []eqwave.Technique{eqwave.NewSGDP()},
			Workers:    workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: P sweep (P=%d): %w", p, err)
		}
		st, _ := res.StatsFor("SGDP")
		in, err := runtimeWorkload(cfg, 0.05e-9, p)
		if err != nil {
			return nil, err
		}
		sgdp := eqwave.NewSGDP()
		const reps = 100
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := sgdp.Equivalent(in); err != nil {
				return nil, err
			}
		}
		rows = append(rows, RuntimeRow{
			Name:      "SGDP",
			P:         p,
			PerGate:   time.Since(start) / reps,
			AvgAbsErr: st.AvgAbs,
		})
	}
	return rows, nil
}
