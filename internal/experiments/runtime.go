package experiments

import (
	"context"
	"fmt"
	"time"

	"noisewave/internal/eqwave"
	"noisewave/internal/telemetry"
	"noisewave/internal/xtalk"
)

// RuntimeRow is one row of the §4.2 run-time comparison: the average time a
// technique takes to propagate delay information through one gate (Γeff
// fitting only — gate evaluation afterwards is common to all techniques).
type RuntimeRow struct {
	Name    string
	P       int
	PerGate time.Duration
	// AvgAbsErr links the run-time to accuracy for the P sweep (§4.2
	// remarks that small P is faster but less accurate); zero when not
	// measured.
	AvgAbsErr float64
}

// RuntimeOptions parameterizes the run-time experiment.
type RuntimeOptions struct {
	// Repeats is the number of Γeff fits timed per technique (default 200).
	Repeats int
	// P is the sample count (paper: 35).
	P int
	// Offset selects the noisy case used as the fitting workload.
	Offset float64
	// Ctx, if non-nil, cancels the experiment between fits and inside the
	// workload transients; the error matches telemetry.ErrCanceled.
	Ctx context.Context
	// Telemetry, if non-nil, receives the per-technique fit timers
	// ("eqwave.fit_seconds.<name>") the reported rows are derived from;
	// nil uses a private registry.
	Telemetry *telemetry.Registry
}

func (o RuntimeOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// RunRuntime measures per-gate propagation time for each technique on a
// representative noisy case, reproducing the §4.2 comparison. The timed
// fit loops run strictly sequentially on the calling goroutine by design:
// per-gate wall clock is the measurement, so fanning the repeats out over
// the sweep worker pool would contaminate it with scheduling noise. Each
// fit is observed on the technique's "eqwave.fit_seconds.<name>" timer and
// the reported PerGate is the timer's average over the run — the same live
// counter a Table 1 sweep feeds — rather than a separate stopwatch.
func RunRuntime(cfg xtalk.Config, opts RuntimeOptions) ([]RuntimeRow, error) {
	if opts.Repeats <= 0 {
		opts.Repeats = 200
	}
	if opts.P <= 0 {
		opts.P = eqwave.DefaultP
	}
	if opts.Offset == 0 {
		opts.Offset = 0.05e-9
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	ctx := opts.ctx()
	in, err := runtimeWorkload(ctx, cfg, opts.Offset, opts.P, opts.Telemetry)
	if err != nil {
		return nil, err
	}
	var rows []RuntimeRow
	for _, tech := range eqwave.All() {
		// Warm-up fit, also validating the technique on this workload.
		if _, err := tech.Equivalent(in); err != nil {
			return nil, fmt.Errorf("experiments: runtime workload rejected by %s: %w", tech.Name(), err)
		}
		fit := reg.Timer("eqwave.fit_seconds." + tech.Name())
		before := fit.Stats()
		for i := 0; i < opts.Repeats; i++ {
			if ctx.Err() != nil {
				return rows, telemetry.Canceled(ctx, "experiments: runtime canceled during %s", tech.Name())
			}
			stop := fit.Start()
			_, err := tech.Equivalent(in)
			stop()
			if err != nil {
				return nil, err
			}
		}
		after := fit.Stats()
		perGate := (after.Sum - before.Sum) / float64(after.Count-before.Count)
		rows = append(rows, RuntimeRow{
			Name:    tech.Name(),
			P:       opts.P,
			PerGate: time.Duration(perGate * float64(time.Second)),
		})
	}
	return rows, nil
}

// runtimeWorkload builds the eqwave input for one representative noisy
// case of the configuration.
func runtimeWorkload(ctx context.Context, cfg xtalk.Config, offset float64, p int, reg *telemetry.Registry) (eqwave.Input, error) {
	const victimStart = 0.3e-9
	cfg.Telemetry = reg
	nlIn, nlOut, err := cfg.RunNoiselessCtx(ctx, victimStart)
	if err != nil {
		return eqwave.Input{}, err
	}
	starts := make([]float64, cfg.Aggressors)
	for k := range starts {
		starts[k] = victimStart + offset + float64(k)*40e-12
	}
	nIn, _, err := cfg.RunCtx(ctx, victimStart, starts)
	if err != nil {
		return eqwave.Input{}, err
	}
	return eqwave.Input{
		Noisy: nIn, Noiseless: nlIn, NoiselessOut: nlOut,
		Vdd: cfg.Tech.Vdd, Edge: cfg.VictimEdge, P: p,
	}, nil
}

// RunPSweep measures SGDP accuracy and run time across sample counts,
// reproducing the §4.2 trade-off remark ("smaller P reduces run time but
// tends to lower accuracy"). workers parallelizes the accuracy sweep run
// for each P (as in SweepOptions.Workers); the per-gate fit timing loop
// stays on the calling goroutine so the reported wall-clock per fit is not
// distorted by concurrent load.
func RunPSweep(cfg xtalk.Config, ps []int, cases, workers int) ([]RuntimeRow, error) {
	if len(ps) == 0 {
		ps = []int{9, 17, 35, 71, 141}
	}
	if cases <= 0 {
		cases = 20
	}
	var rows []RuntimeRow
	for _, p := range ps {
		res, err := RunTable1(cfg, Table1Options{
			Cases: cases, Range: 1e-9, P: p,
			Techniques:   []eqwave.Technique{eqwave.NewSGDP()},
			SweepOptions: SweepOptions{Workers: workers},
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: P sweep (P=%d): %w", p, err)
		}
		st, _ := res.StatsFor("SGDP")
		reg := telemetry.New()
		in, err := runtimeWorkload(context.Background(), cfg, 0.05e-9, p, reg)
		if err != nil {
			return nil, err
		}
		sgdp := eqwave.NewSGDP()
		fit := reg.Timer("eqwave.fit_seconds.SGDP")
		const reps = 100
		for i := 0; i < reps; i++ {
			stop := fit.Start()
			_, err := sgdp.Equivalent(in)
			stop()
			if err != nil {
				return nil, err
			}
		}
		stats := fit.Stats()
		rows = append(rows, RuntimeRow{
			Name:      "SGDP",
			P:         p,
			PerGate:   time.Duration(stats.Sum / float64(stats.Count) * float64(time.Second)),
			AvgAbsErr: st.AvgAbs,
		})
	}
	return rows, nil
}
