package experiments

// Experiment-level equivalence of the batched transient engine: Table 1 and
// pushout statistics must be bit-identical — reflect.DeepEqual, not a
// tolerance — between the scalar sweep and the batched sweep at every
// worker × batch-size combination. This is the acceptance contract that
// lets cmd/repro and the job service default batching on: the batch engine
// replays exactly the scalar fast path's arithmetic on a shared trunk, and
// anything it cannot share (early-starting aggressors, breakpoint
// mismatches, faults) peels back to the scalar path, so only wall-clock
// time may change. Run under -race in CI: the batched scheduler shares
// result slices and telemetry across workers.

import (
	"context"
	"reflect"
	"testing"

	"noisewave/internal/core"
	"noisewave/internal/device"
	"noisewave/internal/faultinject"
	"noisewave/internal/xtalk"
)

var batchGrid = []int{1, 2, 7, 32}

// TestTable1BatchEquivalence: Table 1 through the batched sweep at
// K ∈ {1,2,7,32} × workers ∈ {1,4} against the scalar sequential oracle.
// With the default alignment grid the low-index groups have aggressor edges
// before t = 0 (share window empty → whole-group scalar fallback) while
// later groups share a real trunk, so the grid exercises both regimes.
func TestTable1BatchEquivalence(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	cases := sweepCases(t, 10)
	base := Table1Options{Cases: cases, Range: 1e-9, P: 15,
		SweepOptions: SweepOptions{Workers: 1}}
	ref, err := RunTable1(cfg, base)
	if err != nil {
		t.Fatalf("scalar reference: %v", err)
	}
	for _, batch := range batchGrid {
		for _, workers := range []int{1, 4} {
			opts := base
			opts.SweepOptions = SweepOptions{Workers: workers, Batch: batch}
			got, err := RunTable1(cfg, opts)
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
			}
			if !reflect.DeepEqual(got.Stats, ref.Stats) {
				t.Errorf("batch=%d workers=%d: stats differ from scalar:\ngot: %+v\nref: %+v",
					batch, workers, got.Stats, ref.Stats)
			}
			if !reflect.DeepEqual(got.Cases, ref.Cases) {
				t.Errorf("batch=%d workers=%d: per-case records differ from scalar", batch, workers)
			}
			if got.Excluded != ref.Excluded {
				t.Errorf("batch=%d workers=%d: excluded %d, want %d",
					batch, workers, got.Excluded, ref.Excluded)
			}
		}
	}
}

// TestPushoutBatchEquivalence: the delay-noise distribution through the
// batched sweep, bit-identical at every worker × batch combination.
func TestPushoutBatchEquivalence(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	cases := sweepCases(t, 10)
	base := PushoutOptions{Cases: cases, Range: 1e-9,
		SweepOptions: SweepOptions{Workers: 1}}
	ref, err := RunPushout(cfg, base)
	if err != nil {
		t.Fatalf("scalar reference: %v", err)
	}
	for _, batch := range batchGrid {
		for _, workers := range []int{1, 4} {
			opts := base
			opts.SweepOptions = SweepOptions{Workers: workers, Batch: batch}
			got, err := RunPushout(cfg, opts)
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("batch=%d workers=%d: distribution differs from scalar:\ngot: %+v\nref: %+v",
					batch, workers, got, ref)
			}
		}
	}
}

// TestTable1BatchFaultEquivalence: the fault-injection leg. A deterministic
// injector is aimed a fixed number of Newton solves into case 0's golden
// transient — inside the region where the batched engine's call stream
// coincides with the scalar path's (the shared trunk replays case 0's
// prefix, and whole-group fallbacks replay it verbatim) — so the recovery
// ladder fires identically in both modes and every case record, including
// the Health classification and the aggregate statistics, must stay
// bit-identical. Workers is pinned to 1: the injector's cross-run fire
// ordinals are only deterministic on a single stream.
func TestTable1BatchFaultEquivalence(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	cases := sweepCases(t, 6)

	// Measure the Newton-solve count of the noiseless reference (which runs
	// before any case and consumes injector ordinals in both modes), then
	// aim a burst of exactly 16 forced divergences ~60 solves into case 0's
	// transient: enough to exhaust the ordinary halving attempts so the gmin
	// rung fires and the case is classified HealthRecovered — but not so
	// many that the ladder itself is poisoned and the case degrades.
	probe := faultinject.New(faultinject.Config{NewtonEvery: 1, NewtonAfter: 1 << 30})
	cfgProbe := cfg
	cfgProbe.Inject = probe
	if _, _, err := cfgProbe.RunNoiselessCtx(context.Background(), 0.3e-9); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	after := int(probe.Calls(faultinject.NewtonDivergence)) + 60

	run := func(batch int) (*Table1Result, *faultinject.Injector) {
		inj := faultinject.New(faultinject.Config{
			Seed: 7, NewtonEvery: 1, NewtonMax: 16, NewtonAfter: after,
		})
		res, err := RunTable1(cfg, Table1Options{
			Cases: cases, Range: 1e-9, P: 15,
			SweepOptions: SweepOptions{Workers: 1, Batch: batch, Inject: inj},
		})
		if err != nil {
			t.Fatalf("batch=%d under injection: %v", batch, err)
		}
		return res, inj
	}
	ref, refInj := run(0)
	if refInj.Fired(faultinject.NewtonDivergence) == 0 {
		t.Fatal("injector never fired on the scalar path — the leg is vacuous")
	}
	recovered := false
	for _, c := range ref.Cases {
		if c.Health != core.HealthOK {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no case shows the injected recovery — the leg is vacuous")
	}
	for _, batch := range []int{2, 7} {
		got, gotInj := run(batch)
		if gotInj.Fired(faultinject.NewtonDivergence) != refInj.Fired(faultinject.NewtonDivergence) {
			t.Errorf("batch=%d: fired %d faults, scalar fired %d",
				batch, gotInj.Fired(faultinject.NewtonDivergence), refInj.Fired(faultinject.NewtonDivergence))
		}
		if !reflect.DeepEqual(got.Stats, ref.Stats) {
			t.Errorf("batch=%d: stats under injection differ from scalar:\ngot: %+v\nref: %+v",
				batch, got.Stats, ref.Stats)
		}
		if !reflect.DeepEqual(got.Cases, ref.Cases) {
			t.Errorf("batch=%d: case records (incl. Health) under injection differ from scalar", batch)
		}
	}
}
