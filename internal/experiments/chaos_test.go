package experiments

import (
	"testing"

	"noisewave/internal/core"
	"noisewave/internal/device"
	"noisewave/internal/faultinject"
	"noisewave/internal/telemetry"
	"noisewave/internal/xtalk"
)

// TestChaosTable1DegradedFallback: a case whose golden transient is
// unrecoverable (sustained injected divergence after a warm-up window,
// with the fire cap sized so the fallback replay itself stays clean) falls
// back to the P2 Γeff path: the case completes with Health degraded and an
// estimated arrival, is excluded from the statistics, and the run returns
// no error.
func TestChaosTable1DegradedFallback(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	// NewtonAfter skips the noiseless reference (~1400 solves) and the
	// first ~1.1 k solves of the single case's golden transient, so the
	// failure lands well past the victim transition; NewtonMax 18 is
	// exactly enough to defeat one step's halving loop (16) plus both
	// ladder rungs (1 each), after which the injector is spent and the
	// fallback replay runs clean.
	inj := faultinject.New(faultinject.Config{NewtonEvery: 1, NewtonMax: 18, NewtonAfter: 2600})
	res, err := RunTable1(cfg, Table1Options{
		Cases: 1, Range: 1e-9, P: 35,
		SweepOptions: SweepOptions{Workers: 1, Inject: inj},
	})
	if err != nil {
		t.Fatalf("RunTable1 with degraded case: %v", err)
	}
	if inj.Fired(faultinject.NewtonDivergence) != 18 {
		t.Fatalf("injector fired %d divergences, want 18 (timing assumption broken)",
			inj.Fired(faultinject.NewtonDivergence))
	}
	if len(res.Cases) != 1 {
		t.Fatalf("want the degraded case retained, got %d cases", len(res.Cases))
	}
	c := res.Cases[0]
	if c.Health != core.HealthDegraded {
		t.Fatalf("case health = %v, want degraded", c.Health)
	}
	if res.Excluded != 1 {
		t.Errorf("Excluded = %d, want 1", res.Excluded)
	}
	if c.EstArrival < 0.3e-9 || c.EstArrival > 3e-9 {
		t.Errorf("degraded P2 arrival estimate %.3g s implausible", c.EstArrival)
	}
	for _, st := range res.Stats {
		if st.N != 0 {
			t.Errorf("technique %s scored N=%d on a sweep with no healthy cases", st.Name, st.N)
		}
	}
}

// TestChaosTable1KeepGoingQuarantine: injected worker panics quarantine
// their cases while the rest of the sweep completes and is scored; the
// failure report names the quarantined cases and the exclusion count is
// explicit.
func TestChaosTable1KeepGoingQuarantine(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	const cases = 4
	inj := faultinject.New(faultinject.Config{PanicEvery: 1, PanicMax: 2})
	reg := telemetry.New()
	res, err := RunTable1(cfg, Table1Options{
		Cases: cases, Range: 1e-9, P: 35,
		SweepOptions: SweepOptions{Workers: 2, KeepGoing: true, Inject: inj, Telemetry: reg},
	})
	if err != nil {
		t.Fatalf("KeepGoing sweep errored: %v", err)
	}
	if res.Failures == nil || res.Failures.Quarantined() != 2 {
		t.Fatalf("failure report = %v, want 2 quarantined cases", res.Failures)
	}
	for _, f := range res.Failures.Failures {
		if !f.Panicked || len(f.Attempts) == 0 {
			t.Errorf("quarantined case %d lacks panic classification/attempt log: %v", f.Index, f)
		}
	}
	if res.Excluded != 2 {
		t.Errorf("Excluded = %d, want 2", res.Excluded)
	}
	if got := len(res.Cases); got != cases-2 {
		t.Fatalf("%d cases retained, want %d", got, cases-2)
	}
	// The surviving cases are scored normally.
	for _, st := range res.Stats {
		if st.N+st.Failures != cases-2 {
			t.Errorf("technique %s: N=%d failures=%d, want sum %d", st.Name, st.N, st.Failures, cases-2)
		}
	}
	if got := reg.Snapshot().Counters["sweep.cases_quarantined"]; got != 2 {
		t.Errorf("sweep.cases_quarantined = %d, want 2", got)
	}
}

// TestChaosPushoutKeepGoing: the pushout driver has the same quarantine
// semantics — the distribution simply covers the surviving cases.
func TestChaosPushoutKeepGoing(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	inj := faultinject.New(faultinject.Config{PanicEvery: 1, PanicMax: 1})
	st, err := RunPushout(cfg, PushoutOptions{
		Cases: 4, Range: 1e-9,
		SweepOptions: SweepOptions{Workers: 2, KeepGoing: true, Inject: inj},
	})
	if err != nil {
		t.Fatalf("KeepGoing pushout errored: %v", err)
	}
	if st.Excluded != 1 || st.Failures.Quarantined() != 1 {
		t.Fatalf("Excluded=%d report=%v, want exactly 1 quarantined", st.Excluded, st.Failures)
	}
	if st.Cases != 3 || len(st.Pushouts) != 3 {
		t.Errorf("distribution over %d cases (%d pushouts), want 3", st.Cases, len(st.Pushouts))
	}
}
