package experiments

import (
	"noisewave/internal/eqwave"
	"noisewave/internal/xtalk"
)

// AblationVariant names one SGDP configuration under study.
type AblationVariant struct {
	Name string
	Tech eqwave.Technique
}

// AblationVariants returns the SGDP feature ablations called out in
// DESIGN.md: each removes one ingredient of §3 so its contribution to
// Table 1 accuracy can be isolated, with WLS5 as the baseline the paper
// compares against.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{"SGDP-full", eqwave.NewSGDP()},
		{"SGDP-first-order", &eqwave.SGDP{ // Eq. 3 without the Taylor term
			VoltageRemap: true, DeltaShift: true,
		}},
		{"SGDP-no-remap", &eqwave.SGDP{ // WLS5 weights, Eq. 3 objective
			SecondOrder: true, DeltaShift: true,
		}},
		{"SGDP-no-safeguard", &eqwave.SGDP{ // literal fit, no collapse fallback
			VoltageRemap: true, SecondOrder: true, DeltaShift: true,
			NoSafeguard: true,
		}},
		{"WLS5", eqwave.WLS5{}},
	}
}

// RunAblation sweeps the ablation variants over a Table 1-style alignment
// sweep and returns one stats row per variant. workers sizes the sweep
// worker pool exactly as Table1Options.Workers does (the SGDP variants
// hold configuration only, so sharing them across workers is safe).
func RunAblation(cfg xtalk.Config, cases, workers int) ([]TechniqueStats, error) {
	variants := AblationVariants()
	techs := make([]eqwave.Technique, 0, len(variants))
	for _, v := range variants {
		techs = append(techs, namedTechnique{v.Name, v.Tech})
	}
	res, err := RunTable1(cfg, Table1Options{
		Cases: cases, Range: 1e-9, P: eqwave.DefaultP, Techniques: techs,
		SweepOptions: SweepOptions{Workers: workers},
	})
	if err != nil {
		return nil, err
	}
	return res.Stats, nil
}

// namedTechnique relabels a technique so several SGDP variants can share
// one sweep.
type namedTechnique struct {
	name string
	eqwave.Technique
}

// Name implements eqwave.Technique.
func (n namedTechnique) Name() string { return n.name }
