package experiments

import (
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/xtalk"
)

// TestAblationConfigurationI isolates the contribution of each SGDP
// ingredient on the single-aggressor sweep. The full pipeline must be at
// least as accurate as each ablated variant (within a small tolerance for
// sweep noise at reduced case counts).
func TestAblationConfigurationI(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	stats, err := RunAblation(cfg, sweepCases(t, 20), 0)
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	byName := map[string]TechniqueStats{}
	for _, s := range stats {
		t.Logf("%-18s max=%7.2f ps avg=%6.2f ps fail=%d",
			s.Name, s.MaxAbs*1e12, s.AvgAbs*1e12, s.Failures)
		byName[s.Name] = s
	}
	full := byName["SGDP-full"]
	if full.N == 0 {
		t.Fatal("no scored cases")
	}
	for _, name := range []string{"SGDP-no-remap", "WLS5"} {
		if full.AvgAbs > byName[name].AvgAbs*1.3 {
			t.Errorf("full SGDP (%.2f ps) much worse than %s (%.2f ps)",
				full.AvgAbs*1e12, name, byName[name].AvgAbs*1e12)
		}
	}
}

// TestAblationSafeguardMatters shows the slope-collapse fallback earns its
// keep on the two-aggressor configuration: without it, the worst case
// degrades dramatically.
func TestAblationSafeguardMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("two-configuration ablation is slow")
	}
	cfg := xtalk.ConfigurationII(device.Default130())
	cfg.Step = 2e-12
	stats, err := RunAblation(cfg, sweepCases(t, 20), 0)
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	byName := map[string]TechniqueStats{}
	for _, s := range stats {
		t.Logf("%-18s max=%7.2f ps avg=%6.2f ps fail=%d",
			s.Name, s.MaxAbs*1e12, s.AvgAbs*1e12, s.Failures)
		byName[s.Name] = s
	}
	full := byName["SGDP-full"]
	raw := byName["SGDP-no-safeguard"]
	if full.MaxAbs >= raw.MaxAbs {
		t.Errorf("safeguard should reduce the worst case: full %.1f ps vs raw %.1f ps",
			full.MaxAbs*1e12, raw.MaxAbs*1e12)
	}
}
