// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation section: Table 1 (accuracy of the six
// equivalent-waveform techniques on two crosstalk configurations), Figure 2
// (sensitivity and Γeff waveforms), and the §4.2 run-time comparison. The
// drivers are shared by cmd/repro, the test suite and the benchmark
// harness.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"noisewave/internal/core"
	"noisewave/internal/device"
	"noisewave/internal/eqwave"
	"noisewave/internal/spice"
	"noisewave/internal/sweep"
	"noisewave/internal/trace"
	"noisewave/internal/wave"
	"noisewave/internal/xtalk"
)

// Table1Options parameterizes the Table 1 sweep. Sweep control (workers,
// progress, cancellation, telemetry) lives in the embedded SweepOptions;
// every worker owns a private core.GateSim (and so a private
// spice.Simulator, which is not safe for concurrent use).
type Table1Options struct {
	// Cases is the number of aggressor alignment cases (paper: 200).
	Cases int
	// RangeNs is the alignment window in seconds (paper: 1 ns), centered
	// on the victim transition.
	Range float64
	// P is the sample count for the fitting techniques (paper: 35).
	P int
	// Techniques to evaluate; nil = eqwave.All(). Techniques are shared
	// across workers and must therefore be safe for concurrent use (all
	// built-in techniques are: they hold configuration only).
	Techniques []eqwave.Technique

	SweepOptions
}

// DefaultTable1Options returns the paper's sweep parameters.
func DefaultTable1Options() Table1Options {
	return Table1Options{Cases: 200, Range: 1e-9, P: eqwave.DefaultP}
}

// TechniqueStats aggregates one technique's errors over a sweep.
type TechniqueStats struct {
	Name string
	// MaxAbs and AvgAbs are the paper's "Max" and "Avg" delay error
	// columns, in seconds.
	MaxAbs float64
	AvgAbs float64
	// MeanSigned exposes the bias direction (negative = optimistic).
	MeanSigned float64
	// Failures counts cases where the technique produced no prediction.
	Failures int
	// N is the number of scored cases.
	N int
}

// CaseRecord keeps per-case detail for diagnostics and plotting.
type CaseRecord struct {
	// Offsets holds every aggressor's alignment offset relative to the
	// victim edge, in aggressor order. The aggressors sweep the window
	// with different (coprime) strides — see aggressorOffset — so a single
	// scalar can only describe aggressor 0; Configuration II's second
	// aggressor is at a different offset in almost every case.
	Offsets     []float64
	TrueArrival float64
	TrueDelay   float64
	Errors      map[string]float64 // technique -> signed arrival error (s)
	// Health classifies the case: ok, recovered (the spice recovery ladder
	// fired but the golden reference completed), or degraded (the golden
	// transient was unrecoverable and the case fell back to the P2 Γeff
	// estimate over the salvaged waveform prefix). Degraded cases carry no
	// TrueArrival/Errors and are excluded from the statistics.
	Health core.Health
	// EstArrival is the P2-path output arrival estimate of a degraded
	// case (meaningless otherwise).
	EstArrival float64
}

// Table1Result is the reproduction of one configuration's half of Table 1.
type Table1Result struct {
	Config xtalk.Config
	Stats  []TechniqueStats
	Cases  []CaseRecord
	// Excluded counts cases that completed but were kept out of the error
	// statistics (degraded golden reference) plus cases quarantined by a
	// KeepGoing sweep. Stats are computed over healthy cases only.
	Excluded int
	// Failures is the sweep's failure report when any case was
	// quarantined or a worker was lost (nil otherwise).
	Failures *sweep.FailureReport
}

// table1Case is the result of one alignment case: the diagnostic record
// plus the per-technique outcomes needed for aggregation. The (potentially
// large) estimated output waveforms are dropped inside the worker so a
// 200-case sweep does not retain hundreds of transients.
type table1Case struct {
	rec    CaseRecord
	failed []bool    // per technique, in input order
	errs   []float64 // signed arrival error where !failed
}

// degradedTable1Case is the fallback for a case whose golden transient was
// unrecoverable: if the salvaged noisy-input prefix still covers the
// victim transition, the P2 technique fits a Γeff from it (P2 needs only
// the noisy waveform) and one gate replay produces an arrival estimate.
// The case is marked degraded — it carries no reference truth and is
// excluded from the statistics, but the sweep retains a usable number
// instead of a hole.
func degradedTable1Case(ctx context.Context, gate *core.GateSim, cfg xtalk.Config,
	offsets []float64, nIn *wave.Waveform, p int) (table1Case, error) {

	if nIn == nil {
		return table1Case{}, fmt.Errorf("no salvageable input prefix")
	}
	in := eqwave.Input{Noisy: nIn, Vdd: cfg.Tech.Vdd, Edge: cfg.VictimEdge, P: p}
	gamma, err := (eqwave.P2{}).Equivalent(in)
	if err != nil {
		return table1Case{}, fmt.Errorf("P2 fallback fit: %w", err)
	}
	start, stop := core.WindowFor(gamma, nIn, 0.2e-9)
	stop += cfg.Window // the salvaged prefix ends early; extend past it
	est, err := gate.OutputForRampCtx(ctx, gamma, start, stop)
	if err != nil {
		return table1Case{}, fmt.Errorf("P2 fallback replay: %w", err)
	}
	arr, err := core.ArrivalAt(est, cfg.Tech.Vdd)
	if err != nil {
		return table1Case{}, fmt.Errorf("P2 fallback arrival: %w", err)
	}
	return table1Case{rec: CaseRecord{
		Offsets:    offsets,
		Errors:     map[string]float64{},
		Health:     core.HealthDegraded,
		EstArrival: arr,
	}}, nil
}

// RunTable1 sweeps aggressor alignments over the configured window and
// scores every technique against the transient reference, reproducing one
// configuration row-block of Table 1. The independent alignment cases run
// on a worker pool (see SweepOptions.Workers); aggregation happens in
// case order afterwards, so the statistics are identical for any worker
// count.
//
// When opts.Ctx is canceled mid-sweep, RunTable1 returns the statistics
// aggregated over the cases that completed (still in case order) together
// with an error matching telemetry.ErrCanceled; TechniqueStats.N reports
// how many cases each technique was scored on.
func RunTable1(cfg xtalk.Config, opts Table1Options) (*Table1Result, error) {
	if opts.Cases <= 0 {
		opts.Cases = 200
	}
	if opts.Range <= 0 {
		opts.Range = 1e-9
	}
	techs := opts.Techniques
	if techs == nil {
		techs = eqwave.All()
	}
	defer opts.Telemetry.Timer("experiments.table1.seconds").Start()()
	cfg.Telemetry = opts.Telemetry
	cfg.Inject = opts.Inject
	cfg.NoFastPath = opts.NoFastPath

	const victimStart = 0.3e-9
	// The noiseless reference runs once, outside any case; it gets its own
	// run-level trace so the artifact timeline starts with it.
	nlCtx, nlSpan := opts.Tracer.Root(opts.ctx(), "experiments.table1.noiseless", trace.NoCase)
	nlIn, nlOut, err := cfg.RunNoiselessCtx(nlCtx, victimStart)
	nlSpan.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: noiseless reference: %w", err)
	}

	// Each worker owns a private gate backend and a private testbench: the
	// spice.Simulator inside each is not safe for concurrent use, and both
	// are reused across the worker's cases so the sweep stops paying circuit
	// construction per case. The telemetry registry is concurrency-safe and
	// shared.
	type table1Worker struct {
		gate  *core.GateSim
		bench *xtalk.Bench
	}
	newWorker := func(int) (*table1Worker, error) {
		gate := core.NewInverterChainSim(cfg.Tech,
			[]float64{cfg.ReceiverDrive, cfg.Load1Drive, cfg.Load2Drive}, cfg.Step)
		gate.Telemetry = opts.Telemetry
		gate.Inject = opts.Inject
		gate.NoFastPath = opts.NoFastPath
		bench, err := xtalk.NewBench(cfg)
		if err != nil {
			return nil, err
		}
		return &table1Worker{gate: gate, bench: bench}, nil
	}
	// caseStarts maps a case index to its aggressor edge times.
	caseStarts := func(i int) []float64 {
		offsets := caseOffsets(i, cfg.Aggressors, opts.Cases, opts.Range)
		starts := make([]float64, cfg.Aggressors)
		for k := range starts {
			starts[k] = victimStart + offsets[k]
		}
		return starts
	}
	// score turns one case's transient outcome into a table1Case. It is the
	// whole of the per-case work past the golden transient, shared verbatim
	// by the scalar path (which ran the transient itself) and the batched
	// path (where the batch engine ran it and delivers the outcome), so both
	// modes score with identical code and identical rounding.
	score := func(ctx context.Context, i int, w *table1Worker,
		nIn, nOut *wave.Waveform, rec spice.RecoveryReport, runErr error) (table1Case, error) {

		gate := w.gate
		gate.TakeRecovery() // discard any carry-over from a prior case
		offsets := caseOffsets(i, cfg.Aggressors, opts.Cases, opts.Range)
		caseSpan := trace.SpanOf(ctx)
		caseSpan.SetAttr(trace.String("config", cfg.Name), trace.Floats("offsets", offsets))
		if err := runErr; err != nil {
			if canceled(err) {
				return table1Case{}, fmt.Errorf("experiments: case %d (offsets %v): %w", i, offsets, err)
			}
			// The golden transient is unrecoverable (the recovery ladder
			// ran dry). Fall back to the P2 Γeff path over the salvaged
			// prefix and mark the case degraded.
			c, derr := degradedTable1Case(ctx, gate, cfg, offsets, nIn, opts.P)
			if derr != nil {
				return table1Case{}, fmt.Errorf("experiments: case %d (offsets %v): %w (degraded fallback: %v)",
					i, offsets, err, derr)
			}
			caseSpan.SetAttr(trace.String("health", c.rec.Health.String()))
			return c, nil
		}
		in := eqwave.Input{
			Noisy: nIn, Noiseless: nlIn, NoiselessOut: nlOut,
			Vdd: cfg.Tech.Vdd, Edge: cfg.VictimEdge, P: opts.P,
		}
		cmp, err := core.CompareTechniquesWith(gate, in, nOut, core.CompareOptions{
			Ctx: ctx, Techniques: techs, Telemetry: opts.Telemetry,
		})
		if err != nil {
			return table1Case{}, fmt.Errorf("experiments: case %d: %w", i, err)
		}
		c := table1Case{
			rec: CaseRecord{
				Offsets:     offsets,
				TrueArrival: cmp.TrueArrival,
				TrueDelay:   cmp.TrueDelay,
				Errors:      make(map[string]float64, len(techs)),
			},
			failed: make([]bool, len(cmp.Results)),
			errs:   make([]float64, len(cmp.Results)),
		}
		if rec.Absorb(gate.TakeRecovery()); rec.Recovered() {
			c.rec.Health = core.HealthRecovered
		}
		caseSpan.SetAttr(trace.String("health", c.rec.Health.String()))
		for j, r := range cmp.Results {
			if r.Err != nil {
				c.failed[j] = true
				continue
			}
			c.errs[j] = r.ArrivalError
			c.rec.Errors[r.Name] = r.ArrivalError
		}
		return c, nil
	}
	do := func(ctx context.Context, i int, w *table1Worker) (table1Case, error) {
		defer opts.Telemetry.Timer("experiments.table1.case_seconds").Start()()
		nIn, nOut, rec, err := w.bench.RunReportCtx(ctx, victimStart, caseStarts(i))
		return score(ctx, i, w, nIn, nOut, rec, err)
	}
	// doGroup runs a contiguous case group through the spice batch engine:
	// one DC solve and one shared transient trunk cover the group up to the
	// first aggressor divergence, then each case's continuation delivers the
	// same waveforms the scalar path would have produced (bit-identical —
	// the engine's contract). Scoring happens inside the delivery callback,
	// in delivery order; a case whose scoring fails is handed back to the
	// sweep for the scalar retry/quarantine path.
	doGroup := func(ctx context.Context, lo, hi int, w *table1Worker, deliver sweep.DeliverFunc[table1Case]) error {
		aggStarts := make([][]float64, hi-lo)
		for j := range aggStarts {
			aggStarts[j] = caseStarts(lo + j)
		}
		return w.bench.RunBatchReportCtx(ctx, victimStart, aggStarts,
			func(j int, nIn, nOut *wave.Waveform, rec spice.RecoveryReport, runErr error) error {
				defer opts.Telemetry.Timer("experiments.table1.case_seconds").Start()()
				c, serr := score(ctx, lo+j, w, nIn, nOut, rec, runErr)
				if serr != nil && canceled(serr) {
					return serr // abort the batch; the sweep fails promptly
				}
				deliver(lo+j, c, serr)
				return nil
			})
	}

	cases, completed, report, err := runSweepBatched(opts.SweepOptions, opts.Cases, newWorker, doGroup, do)
	if err != nil && !canceled(err) {
		return nil, err
	}

	// Aggregate strictly in case order: floating-point accumulation order
	// is then independent of worker scheduling. On cancellation only the
	// completed cases contribute, still in case order. Statistics cover
	// healthy cases only — degraded ones are retained in Cases (with their
	// P2 estimate) but counted in Excluded, alongside any quarantined
	// cases from a KeepGoing sweep.
	res := &Table1Result{Config: cfg, Failures: report, Excluded: report.Quarantined()}
	agg := make([]*TechniqueStats, len(techs))
	for j, t := range techs {
		agg[j] = &TechniqueStats{Name: t.Name()}
	}
	for i, c := range cases {
		if !completed[i] {
			continue
		}
		if !c.rec.Health.Healthy() {
			res.Excluded++
			res.Cases = append(res.Cases, c.rec)
			continue
		}
		for j := range techs {
			st := agg[j]
			if c.failed[j] {
				st.Failures++
				continue
			}
			e := c.errs[j]
			st.N++
			st.MeanSigned += e
			st.AvgAbs += math.Abs(e)
			if a := math.Abs(e); a > st.MaxAbs {
				st.MaxAbs = a
			}
		}
		res.Cases = append(res.Cases, c.rec)
	}
	for _, st := range agg {
		if st.N > 0 {
			st.AvgAbs /= float64(st.N)
			st.MeanSigned /= float64(st.N)
		}
		res.Stats = append(res.Stats, *st)
	}
	// err is nil or a cancellation here; a canceled sweep surfaces its
	// partial statistics alongside the error.
	return res, err
}

// caseOffsets returns every aggressor's alignment offset for case i.
func caseOffsets(i, aggressors, cases int, window float64) []float64 {
	out := make([]float64, aggressors)
	for k := range out {
		out[k] = aggressorOffset(i, k, cases, window)
	}
	return out
}

// aggressorOffset returns the deterministic alignment offset of aggressor k
// in case i. The paper analyzes 200 independent "noise injection timing
// cases in a range of 1 ns"; with several aggressors the cases must sweep
// their alignments independently or the sweep only ever sees the (rare,
// worst-possible) perfectly coincident attack. Aggressor 0 scans the window
// linearly; later aggressors scan the same window with a coprime stride, so
// the case set covers aligned and anti-aligned combinations.
func aggressorOffset(i, k, cases int, window float64) float64 {
	if cases <= 1 {
		return 0
	}
	// Strides 1, 89, 55, 34 … (Fibonacci numbers) are pairwise coprime with
	// almost any case count and give good low-discrepancy coverage.
	strides := []int{1, 89, 55, 34, 21, 13}
	g := strides[k%len(strides)]
	j := (i * g) % cases
	frac := float64(j) / float64(cases-1)
	return (frac - 0.5) * window
}

// WorstCase returns the case record on which the named technique's
// absolute arrival error is largest, with that error. The record's Offsets
// slice pinpoints the per-aggressor alignment that produced the failure —
// in Configuration II the two aggressors sweep with different strides, so
// both offsets are needed to reproduce the case.
func (r *Table1Result) WorstCase(name string) (CaseRecord, float64, bool) {
	worst := -1
	worstAbs := math.Inf(-1)
	for i, c := range r.Cases {
		e, ok := c.Errors[name]
		if !ok {
			continue
		}
		if a := math.Abs(e); a > worstAbs {
			worst, worstAbs = i, a
		}
	}
	if worst < 0 {
		return CaseRecord{}, 0, false
	}
	return r.Cases[worst], r.Cases[worst].Errors[name], true
}

// StatsFor returns the stats entry for a technique name.
func (r *Table1Result) StatsFor(name string) (TechniqueStats, bool) {
	for _, s := range r.Stats {
		if s.Name == name {
			return s, true
		}
	}
	return TechniqueStats{}, false
}

// Ranking returns technique names sorted by average absolute error
// (most accurate first).
func (r *Table1Result) Ranking() []string {
	out := make([]string, len(r.Stats))
	idx := make([]int, len(r.Stats))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return r.Stats[idx[a]].AvgAbs < r.Stats[idx[b]].AvgAbs
	})
	for i, j := range idx {
		out[i] = r.Stats[j].Name
	}
	return out
}

// DefaultConfigurations returns the paper's two configurations built on the
// default technology.
func DefaultConfigurations() []xtalk.Config {
	t := device.Default130()
	return []xtalk.Config{xtalk.ConfigurationI(t), xtalk.ConfigurationII(t)}
}

// Edge is re-exported for drivers that need the victim direction.
type Edge = wave.Edge
