// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation section: Table 1 (accuracy of the six
// equivalent-waveform techniques on two crosstalk configurations), Figure 2
// (sensitivity and Γeff waveforms), and the §4.2 run-time comparison. The
// drivers are shared by cmd/repro, the test suite and the benchmark
// harness.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"noisewave/internal/core"
	"noisewave/internal/device"
	"noisewave/internal/eqwave"
	"noisewave/internal/wave"
	"noisewave/internal/xtalk"
)

// Table1Options parameterizes the Table 1 sweep.
type Table1Options struct {
	// Cases is the number of aggressor alignment cases (paper: 200).
	Cases int
	// RangeNs is the alignment window in seconds (paper: 1 ns), centered
	// on the victim transition.
	Range float64
	// P is the sample count for the fitting techniques (paper: 35).
	P int
	// Techniques to evaluate; nil = eqwave.All().
	Techniques []eqwave.Technique
	// Progress, if non-nil, is called after each completed case.
	Progress func(done, total int)
}

// DefaultTable1Options returns the paper's sweep parameters.
func DefaultTable1Options() Table1Options {
	return Table1Options{Cases: 200, Range: 1e-9, P: eqwave.DefaultP}
}

// TechniqueStats aggregates one technique's errors over a sweep.
type TechniqueStats struct {
	Name string
	// MaxAbs and AvgAbs are the paper's "Max" and "Avg" delay error
	// columns, in seconds.
	MaxAbs float64
	AvgAbs float64
	// MeanSigned exposes the bias direction (negative = optimistic).
	MeanSigned float64
	// Failures counts cases where the technique produced no prediction.
	Failures int
	// N is the number of scored cases.
	N int
}

// CaseRecord keeps per-case detail for diagnostics and plotting.
type CaseRecord struct {
	Offset      float64 // aggressor offset relative to the victim edge
	TrueArrival float64
	TrueDelay   float64
	Errors      map[string]float64 // technique -> signed arrival error (s)
}

// Table1Result is the reproduction of one configuration's half of Table 1.
type Table1Result struct {
	Config xtalk.Config
	Stats  []TechniqueStats
	Cases  []CaseRecord
}

// RunTable1 sweeps aggressor alignments over the configured window and
// scores every technique against the transient reference, reproducing one
// configuration row-block of Table 1.
func RunTable1(cfg xtalk.Config, opts Table1Options) (*Table1Result, error) {
	if opts.Cases <= 0 {
		opts.Cases = 200
	}
	if opts.Range <= 0 {
		opts.Range = 1e-9
	}
	techs := opts.Techniques
	if techs == nil {
		techs = eqwave.All()
	}

	const victimStart = 0.3e-9
	nlIn, nlOut, err := cfg.RunNoiseless(victimStart)
	if err != nil {
		return nil, fmt.Errorf("experiments: noiseless reference: %w", err)
	}
	gate := core.NewInverterChainSim(cfg.Tech,
		[]float64{cfg.ReceiverDrive, cfg.Load1Drive, cfg.Load2Drive}, cfg.Step)

	res := &Table1Result{Config: cfg}
	agg := make(map[string]*TechniqueStats, len(techs))
	order := make([]string, 0, len(techs))
	for _, t := range techs {
		agg[t.Name()] = &TechniqueStats{Name: t.Name()}
		order = append(order, t.Name())
	}

	for i := 0; i < opts.Cases; i++ {
		// Alignment offsets uniformly spanning the window, centered on the
		// victim edge.
		frac := 0.5
		if opts.Cases > 1 {
			frac = float64(i) / float64(opts.Cases-1)
		}
		offset := (frac - 0.5) * opts.Range
		starts := make([]float64, cfg.Aggressors)
		for k := range starts {
			starts[k] = victimStart + aggressorOffset(i, k, opts.Cases, opts.Range)
		}
		nIn, nOut, err := cfg.Run(victimStart, starts)
		if err != nil {
			return nil, fmt.Errorf("experiments: case %d (offset %g): %w", i, offset, err)
		}
		in := eqwave.Input{
			Noisy: nIn, Noiseless: nlIn, NoiselessOut: nlOut,
			Vdd: cfg.Tech.Vdd, Edge: cfg.VictimEdge, P: opts.P,
		}
		cmp, err := core.CompareTechniques(gate, in, nOut, techs)
		if err != nil {
			return nil, fmt.Errorf("experiments: case %d: %w", i, err)
		}
		rec := CaseRecord{
			Offset:      offset,
			TrueArrival: cmp.TrueArrival,
			TrueDelay:   cmp.TrueDelay,
			Errors:      make(map[string]float64, len(techs)),
		}
		for _, r := range cmp.Results {
			st := agg[r.Name]
			if r.Err != nil {
				st.Failures++
				continue
			}
			e := r.ArrivalError
			rec.Errors[r.Name] = e
			st.N++
			st.MeanSigned += e
			st.AvgAbs += math.Abs(e)
			if a := math.Abs(e); a > st.MaxAbs {
				st.MaxAbs = a
			}
		}
		res.Cases = append(res.Cases, rec)
		if opts.Progress != nil {
			opts.Progress(i+1, opts.Cases)
		}
	}
	for _, name := range order {
		st := agg[name]
		if st.N > 0 {
			st.AvgAbs /= float64(st.N)
			st.MeanSigned /= float64(st.N)
		}
		res.Stats = append(res.Stats, *st)
	}
	return res, nil
}

// aggressorOffset returns the deterministic alignment offset of aggressor k
// in case i. The paper analyzes 200 independent "noise injection timing
// cases in a range of 1 ns"; with several aggressors the cases must sweep
// their alignments independently or the sweep only ever sees the (rare,
// worst-possible) perfectly coincident attack. Aggressor 0 scans the window
// linearly; later aggressors scan the same window with a coprime stride, so
// the case set covers aligned and anti-aligned combinations.
func aggressorOffset(i, k, cases int, window float64) float64 {
	if cases <= 1 {
		return 0
	}
	// Strides 1, 89, 55, 34 … (Fibonacci numbers) are pairwise coprime with
	// almost any case count and give good low-discrepancy coverage.
	strides := []int{1, 89, 55, 34, 21, 13}
	g := strides[k%len(strides)]
	j := (i * g) % cases
	frac := float64(j) / float64(cases-1)
	return (frac - 0.5) * window
}

// StatsFor returns the stats entry for a technique name.
func (r *Table1Result) StatsFor(name string) (TechniqueStats, bool) {
	for _, s := range r.Stats {
		if s.Name == name {
			return s, true
		}
	}
	return TechniqueStats{}, false
}

// Ranking returns technique names sorted by average absolute error
// (most accurate first).
func (r *Table1Result) Ranking() []string {
	out := make([]string, len(r.Stats))
	idx := make([]int, len(r.Stats))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return r.Stats[idx[a]].AvgAbs < r.Stats[idx[b]].AvgAbs
	})
	for i, j := range idx {
		out[i] = r.Stats[j].Name
	}
	return out
}

// DefaultConfigurations returns the paper's two configurations built on the
// default technology.
func DefaultConfigurations() []xtalk.Config {
	t := device.Default130()
	return []xtalk.Config{xtalk.ConfigurationI(t), xtalk.ConfigurationII(t)}
}

// Edge is re-exported for drivers that need the victim direction.
type Edge = wave.Edge
