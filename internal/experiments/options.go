package experiments

import (
	"context"
	"errors"
	"time"

	"noisewave/internal/faultinject"
	"noisewave/internal/sweep"
	"noisewave/internal/telemetry"
	"noisewave/internal/trace"
)

// SweepOptions is the shared sweep-control block embedded by every
// experiment's option struct (Table1Options, PushoutOptions,
// Figure2Options): worker-pool sizing, deterministic seeding, progress
// reporting, cancellation and telemetry live here once instead of being
// duplicated per experiment.
//
// In a composite literal the block is set as a named field:
//
//	experiments.Table1Options{
//		Cases: 200, Range: 1e-9, P: 35,
//		SweepOptions: experiments.SweepOptions{Workers: 8, Ctx: ctx},
//	}
//
// while field access stays flat (opts.Workers) through Go's embedding.
type SweepOptions struct {
	// Workers sizes the sweep worker pool: 1 runs the strictly sequential
	// oracle path, <= 0 uses all available cores, and any N > 1 fans the
	// independent cases out over N workers. Results are aggregated in case
	// order, so any worker count produces bit-identical statistics.
	Workers int
	// Shards splits the case space into that many consistent-hash shards
	// (sweep.ShardOf on the case index), executed shard by shard over the
	// pool and merged at the global case indices. Like Workers, it never
	// changes the numbers: any shard count produces bit-identical
	// statistics. <= 1 disables sharding. The job service (internal/jobs)
	// uses shards as its unit of scheduling.
	Shards int
	// Seed drives any randomized case generation (e.g. the pushout
	// Monte-Carlo alignment draws). Ignored by fully deterministic sweeps.
	Seed int64
	// Progress, if non-nil, is called after each completed case. Calls are
	// serialized by the sweep engine.
	Progress func(done, total int)
	// Ctx, if non-nil, cancels the experiment: case dispatch stops, the
	// in-flight transistor-level transients stop at their next time step,
	// and the driver returns statistics over the completed cases together
	// with an error matching telemetry.ErrCanceled. nil means the run
	// cannot be canceled.
	Ctx context.Context
	// Telemetry, if non-nil, observes the whole pipeline under the sweep:
	// spice engine counters, replay-cache outcomes, per-technique fit
	// timers, sweep queue/worker metrics and per-experiment wall timers.
	Telemetry *telemetry.Registry
	// Tracer, if non-nil, records hierarchical spans: one root per sweep
	// case with the experiment's case attrs (aggressor offsets, health),
	// with the golden transient, per-technique fits/replays and spice
	// internals nested beneath. Tracing never changes numbers — results
	// are bit-identical with it on or off.
	Tracer *trace.Tracer

	// KeepGoing quarantines failing cases (error, panic, or timeout)
	// instead of aborting the experiment: the sweep completes the
	// remaining cases, statistics are computed over the healthy ones with
	// an explicit exclusion count, and the result carries the
	// sweep.FailureReport naming each quarantined case.
	KeepGoing bool
	// CaseTimeout, if > 0, bounds each case with its own deadline; a case
	// exceeding it fails with sweep.ErrCaseTimeout (quarantined under
	// KeepGoing).
	CaseTimeout time.Duration
	// CaseRetries is how many extra attempts a failing case gets (0 =
	// single attempt).
	CaseRetries int
	// Inject, if non-nil, threads the deterministic fault injector through
	// the sweep and into every worker's spice engine — the backbone of
	// cmd/repro's -chaos mode.
	Inject *faultinject.Injector
	// NoFastPath disables the spice solver fast path in every transient the
	// sweep runs (cmd/repro's -no-fastpath; see spice.Options.NoFastPath).
	NoFastPath bool
	// Batch sets the lockstep group size for batch-capable sweeps: contiguous
	// groups of up to Batch cases go to the spice batch engine, which shares
	// one DC operating point and one transient trunk across the group (see
	// spice.Simulator.RunBatch). Results are bit-identical to the scalar path
	// at any Workers × Batch combination. <= 1 disables batching; ignored
	// when Shards > 1 (a shard's case indices are not contiguous, so its
	// groups would not share alignment structure).
	Batch int
}

// ctx returns the configured context, defaulting to Background.
func (o SweepOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// runSweep dispatches n independent cases over the sweep engine, routing
// Workers == 1 through the strictly sequential oracle path the parallel
// path is tested against. It returns the partial-results contract of
// sweep.RunPartial: on cancellation the completed cases are kept and
// flagged.
func runSweep[W, R any](so SweepOptions, n int,
	newWorker func(int) (W, error),
	do func(context.Context, int, W) (R, error)) ([]R, []bool, *sweep.FailureReport, error) {

	opts := sweep.Options{
		Workers: so.Workers, Progress: so.Progress, Telemetry: so.Telemetry,
		Tracer:    so.Tracer,
		KeepGoing: so.KeepGoing, CaseTimeout: so.CaseTimeout, CaseRetries: so.CaseRetries,
		Inject: so.Inject,
	}
	if so.Shards > 1 {
		return sweep.RunShardedPartial(so.ctx(), n, so.Shards, opts, newWorker, do)
	}
	if so.Workers == 1 {
		return sweep.SequentialPartial(so.ctx(), n, opts, newWorker, do)
	}
	return sweep.RunPartial(so.ctx(), n, opts, newWorker, do)
}

// runSweepBatched is runSweep for batch-capable experiments: when Batch > 1
// (and the sweep is not sharded) contiguous case groups are offered to
// doGroup through sweep.RunBatchedPartial, with do as the scalar fallback
// for anything a group cannot settle; otherwise it degenerates to runSweep.
// Workers == 1 with batching runs the groups in index order on a one-worker
// pool — still bit-identical to the sequential oracle.
func runSweepBatched[W, R any](so SweepOptions, n int,
	newWorker func(int) (W, error),
	doGroup sweep.GroupFunc[W, R],
	do func(context.Context, int, W) (R, error)) ([]R, []bool, *sweep.FailureReport, error) {

	if so.Batch <= 1 || so.Shards > 1 {
		return runSweep(so, n, newWorker, do)
	}
	opts := sweep.Options{
		Workers: so.Workers, Progress: so.Progress, Telemetry: so.Telemetry,
		Tracer:    so.Tracer,
		KeepGoing: so.KeepGoing, CaseTimeout: so.CaseTimeout, CaseRetries: so.CaseRetries,
		Inject: so.Inject,
	}
	return sweep.RunBatchedPartial(so.ctx(), n, so.Batch, opts, newWorker, doGroup, do)
}

// canceled reports whether err is a cancellation (and so partial results
// are meaningful and should be surfaced alongside it).
func canceled(err error) bool {
	return errors.Is(err, telemetry.ErrCanceled)
}
