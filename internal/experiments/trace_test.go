package experiments

import (
	"reflect"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/faultinject"
	"noisewave/internal/trace"
	"noisewave/internal/xtalk"
)

// spanAttr returns the value of the named attribute on a span record.
func spanAttr(rec trace.SpanRecord, key string) (any, bool) {
	for _, a := range rec.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// rootSpans filters the case-bound roots ("sweep.case" spans) from a dump.
func rootSpans(spans []trace.SpanRecord) []trace.SpanRecord {
	var roots []trace.SpanRecord
	for _, s := range spans {
		if s.Parent == 0 && s.Case != trace.NoCase && s.Name == "sweep.case" {
			roots = append(roots, s)
		}
	}
	return roots
}

// TestTable1TracedEquivalence: tracing is observation only. A parallel
// Table 1 sweep with a tracer attached must produce bit-identical stats
// and per-case records to the same sweep with tracing off, and the trace
// must contain exactly one "sweep.case" root span per case, each closed
// with status ok. Run under -race this also exercises the tracer's
// concurrent span buffer.
func TestTable1TracedEquivalence(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	cases := sweepCases(t, 8)

	opts := Table1Options{
		Cases: cases, Range: 1e-9, P: 35,
		SweepOptions: SweepOptions{Workers: 4},
	}
	plain, err := RunTable1(cfg, opts)
	if err != nil {
		t.Fatalf("untraced run: %v", err)
	}

	tr := trace.New()
	opts.Tracer = tr
	traced, err := RunTable1(cfg, opts)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}

	if !reflect.DeepEqual(plain.Stats, traced.Stats) {
		t.Errorf("tracing changed the stats:\noff: %+v\non:  %+v", plain.Stats, traced.Stats)
	}
	if !reflect.DeepEqual(plain.Cases, traced.Cases) {
		t.Errorf("tracing changed the per-case records")
	}

	roots := rootSpans(tr.Spans())
	if len(roots) != cases {
		t.Fatalf("%d sweep.case root spans, want %d", len(roots), cases)
	}
	perCase := make(map[int]int)
	for _, r := range roots {
		perCase[r.Case]++
		if status, _ := spanAttr(r, "status"); status != "ok" {
			t.Errorf("case %d root span status = %v, want ok", r.Case, status)
		}
		if r.Duration <= 0 {
			t.Errorf("case %d root span not closed properly (duration %v)", r.Case, r.Duration)
		}
	}
	for i := 0; i < cases; i++ {
		if perCase[i] != 1 {
			t.Errorf("case %d has %d root spans, want exactly 1", i, perCase[i])
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("tracer dropped %d spans on a small sweep", tr.Dropped())
	}
}

// TestTraceQuarantineCarriesFailure: under KeepGoing, a quarantined case's
// root span is closed with status failed and carries the failure message
// as the "failure" attribute, so /trace/{case} and the journal explain the
// exclusion without consulting the FailureReport.
func TestTraceQuarantineCarriesFailure(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	const cases = 4
	inj := faultinject.New(faultinject.Config{PanicEvery: 1, PanicMax: 2})
	tr := trace.New()
	res, err := RunTable1(cfg, Table1Options{
		Cases: cases, Range: 1e-9, P: 35,
		SweepOptions: SweepOptions{Workers: 2, KeepGoing: true, Inject: inj, Tracer: tr},
	})
	if err != nil {
		t.Fatalf("KeepGoing sweep errored: %v", err)
	}
	if res.Failures == nil || res.Failures.Quarantined() != 2 {
		t.Fatalf("failure report = %v, want 2 quarantined cases", res.Failures)
	}

	quarantined := make(map[int]bool)
	for _, f := range res.Failures.Failures {
		quarantined[f.Index] = true
	}
	roots := rootSpans(tr.Spans())
	if len(roots) != cases {
		t.Fatalf("%d root spans, want %d (quarantined cases still get a root)", len(roots), cases)
	}
	for _, r := range roots {
		status, _ := spanAttr(r, "status")
		failure, hasFailure := spanAttr(r, "failure")
		if quarantined[r.Case] {
			if status != "failed" {
				t.Errorf("quarantined case %d status = %v, want failed", r.Case, status)
			}
			if !hasFailure || failure == "" {
				t.Errorf("quarantined case %d root span lacks the failure attr", r.Case)
			}
		} else {
			if status != "ok" {
				t.Errorf("surviving case %d status = %v, want ok", r.Case, status)
			}
			if hasFailure {
				t.Errorf("surviving case %d carries a failure attr: %v", r.Case, failure)
			}
		}
	}
}
