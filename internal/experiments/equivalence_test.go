package experiments

// Experiment-level equivalence of the solver fast path: the Table 1 and
// pushout sweeps must produce the same statistics with the fast path on
// (the default) and off (SweepOptions.NoFastPath, cmd/repro -no-fastpath),
// at any worker count.
//
// The two solver paths agree to a fraction of the Newton tolerance on the
// raw waveforms (see internal/spice's equivalence suite), not bitwise; the
// derived arrival times and delay errors therefore match to femtosecond
// noise, far below the picosecond scale the paper's tables report.
// Within one path, worker counts remain bit-identical (parallel_test.go);
// here the fast sweep runs at workers 1 and 4 against one slow reference.

import (
	"math"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/xtalk"
)

// statTol is the agreement demanded of sweep statistics across solver
// paths, in seconds. The fast path accepts a converged iterate once its
// certified residual error sits below the deep tolerance (VTol·DeepFactor,
// ~1e-9 V), whereas the slow path's fresh-Jacobian iterations land
// essentially on each step's fixed point; the accumulated difference shows
// up on arrival-derived numbers at the ~1e-14 s scale (observed ≤7e-15 s).
// 1e-13 s keeps an order of margin over that while still sitting an order
// below the ~1 ps differences that would signal a real divergence — and
// well below the paper-table resolution. Within one path (including the
// batched engine), results remain bit-identical at any worker or batch
// size; this tolerance is only about fast-vs-slow.
const statTol = 1e-13

func closeStat(a, b float64) bool {
	return math.Abs(a-b) <= statTol
}

// TestTable1FastPathEquivalence: Table 1 statistics with the fast path on,
// at 1 and 4 workers, against the slow-path reference.
func TestTable1FastPathEquivalence(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	cases := sweepCases(t, 6)
	opts := Table1Options{
		Cases: cases, Range: 1e-9, P: 15,
		SweepOptions: SweepOptions{Workers: 1, NoFastPath: true},
	}
	slow, err := RunTable1(cfg, opts)
	if err != nil {
		t.Fatalf("slow-path reference: %v", err)
	}
	for _, workers := range []int{1, 4} {
		opts.SweepOptions = SweepOptions{Workers: workers}
		fast, err := RunTable1(cfg, opts)
		if err != nil {
			t.Fatalf("fast path @%d workers: %v", workers, err)
		}
		if len(fast.Stats) != len(slow.Stats) {
			t.Fatalf("technique sets diverge: fast %d, slow %d", len(fast.Stats), len(slow.Stats))
		}
		for i, fs := range fast.Stats {
			ss := slow.Stats[i]
			if fs.Name != ss.Name || fs.Failures != ss.Failures || fs.N != ss.N {
				t.Errorf("@%d workers, technique %d: identity diverges: fast %+v, slow %+v",
					workers, i, fs, ss)
				continue
			}
			if !closeStat(fs.MaxAbs, ss.MaxAbs) || !closeStat(fs.AvgAbs, ss.AvgAbs) ||
				!closeStat(fs.MeanSigned, ss.MeanSigned) {
				t.Errorf("@%d workers, %s: stats diverge beyond %g s:\n fast %+v\n slow %+v",
					workers, fs.Name, statTol, fs, ss)
			}
		}
		if fast.Excluded != slow.Excluded {
			t.Errorf("@%d workers: excluded counts diverge: fast %d, slow %d",
				workers, fast.Excluded, slow.Excluded)
		}
		for i, fc := range fast.Cases {
			sc := slow.Cases[i]
			if fc.Health != sc.Health || !closeStat(fc.TrueArrival, sc.TrueArrival) ||
				!closeStat(fc.TrueDelay, sc.TrueDelay) {
				t.Errorf("@%d workers, case %d: record diverges:\n fast %+v\n slow %+v",
					workers, i, fc, sc)
			}
		}
	}
}

// TestPushoutFastPathEquivalence: the delay-noise distribution through
// both solver paths.
func TestPushoutFastPathEquivalence(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	cases := sweepCases(t, 6)
	opts := PushoutOptions{
		Cases: cases, Range: 1e-9,
		SweepOptions: SweepOptions{Workers: 1, NoFastPath: true},
	}
	slow, err := RunPushout(cfg, opts)
	if err != nil {
		t.Fatalf("slow-path reference: %v", err)
	}
	for _, workers := range []int{1, 4} {
		opts.SweepOptions = SweepOptions{Workers: workers}
		fast, err := RunPushout(cfg, opts)
		if err != nil {
			t.Fatalf("fast path @%d workers: %v", workers, err)
		}
		if fast.Cases != slow.Cases || fast.Excluded != slow.Excluded {
			t.Fatalf("case accounting diverges: fast %d/%d, slow %d/%d",
				fast.Cases, fast.Excluded, slow.Cases, slow.Excluded)
		}
		if !closeStat(fast.QuietArrival, slow.QuietArrival) {
			t.Errorf("@%d workers: quiet arrival diverges: fast %.18g, slow %.18g",
				workers, fast.QuietArrival, slow.QuietArrival)
		}
		for _, p := range []struct {
			name       string
			fast, slow float64
		}{
			{"mean", fast.Mean, slow.Mean},
			{"min", fast.Min, slow.Min},
			{"max", fast.Max, slow.Max},
			{"p50", fast.P50, slow.P50},
			{"p95", fast.P95, slow.P95},
		} {
			if !closeStat(p.fast, p.slow) {
				t.Errorf("@%d workers: %s diverges beyond %g s: fast %.18g, slow %.18g",
					workers, p.name, statTol, p.fast, p.slow)
			}
		}
		if len(fast.Pushouts) != len(slow.Pushouts) {
			t.Fatalf("@%d workers: pushout counts diverge: %d vs %d",
				workers, len(fast.Pushouts), len(slow.Pushouts))
		}
		for i := range slow.Pushouts {
			if !closeStat(fast.Pushouts[i], slow.Pushouts[i]) {
				t.Errorf("@%d workers: case %d pushout diverges: fast %.18g, slow %.18g",
					workers, i, fast.Pushouts[i], slow.Pushouts[i])
			}
		}
	}
}
