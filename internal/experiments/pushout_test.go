package experiments

import (
	"math"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/xtalk"
)

// TestPushoutDistribution checks the physical sanity of the delay-noise
// distribution on Configuration I: opposing aggressors can only delay or
// barely speed the edge, the worst case lands when the aggressor hits
// mid-transition, and far-off alignments leave the arrival untouched.
func TestPushoutDistribution(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	st, err := RunPushout(cfg, PushoutOptions{Cases: sweepCases(t, 24), Range: 1e-9})
	if err != nil {
		t.Fatalf("RunPushout: %v", err)
	}
	t.Logf("pushout: mean=%.1f ps p50=%.1f ps p95=%.1f ps max=%.1f ps min=%.1f ps",
		st.Mean*1e12, st.P50*1e12, st.P95*1e12, st.Max*1e12, st.Min*1e12)
	if st.Max <= 10e-12 {
		t.Errorf("max pushout %.1f ps — aggressor has no effect", st.Max*1e12)
	}
	if st.Max > 500e-12 {
		t.Errorf("max pushout %.1f ps — implausibly large for Cfg I", st.Max*1e12)
	}
	// An opposing aggressor should essentially never speed the edge up by
	// much.
	if st.Min < -20e-12 {
		t.Errorf("min pushout %.1f ps — opposing aggressor should not speed up the victim", st.Min*1e12)
	}
	if st.P95 < st.P50 || st.Max < st.P95 {
		t.Error("quantiles out of order")
	}
	// Histogram covers all cases.
	n := 0
	for _, b := range st.Hist {
		n += b.Count
	}
	if n != st.Cases {
		t.Errorf("histogram holds %d of %d cases", n, st.Cases)
	}
}

// TestPushoutMonteCarloAgreesWithGrid compares Monte Carlo sampling with
// the deterministic stride grid: medians within a factor of the overall
// spread (loose — both are small samples).
func TestPushoutMonteCarloAgreesWithGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("two sweeps")
	}
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	n := sweepCases(t, 24)
	grid, err := RunPushout(cfg, PushoutOptions{Cases: n, Range: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := RunPushout(cfg, PushoutOptions{Cases: n, Range: 1e-9, MonteCarlo: true, SweepOptions: SweepOptions{Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	spread := grid.Max - grid.Min
	if spread <= 0 {
		t.Fatal("degenerate grid spread")
	}
	if d := math.Abs(grid.P50 - mc.P50); d > 0.5*spread {
		t.Errorf("grid P50 %.1f ps vs MC P50 %.1f ps — sampling bias?",
			grid.P50*1e12, mc.P50*1e12)
	}
	// Determinism: same seed, same result.
	mc2, err := RunPushout(cfg, PushoutOptions{Cases: n, Range: 1e-9, MonteCarlo: true, SweepOptions: SweepOptions{Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mc.Pushouts {
		if mc.Pushouts[i] != mc2.Pushouts[i] {
			t.Fatal("Monte Carlo sweep is not deterministic for a fixed seed")
		}
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if q := quantile(s, 0.5); q != 3 {
		t.Errorf("median = %g", q)
	}
	if q := quantile(s, 0); q != 1 {
		t.Errorf("min = %g", q)
	}
	if q := quantile(s, 1); q != 5 {
		t.Errorf("max = %g", q)
	}
	if q := quantile(s, 0.25); q != 2 {
		t.Errorf("q25 = %g", q)
	}
	if q := quantile([]float64{7}, 0.9); q != 7 {
		t.Errorf("single = %g", q)
	}
}
