package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"noisewave/internal/core"
	"noisewave/internal/spice"
	"noisewave/internal/sweep"
	"noisewave/internal/trace"
	"noisewave/internal/wave"
	"noisewave/internal/xtalk"
)

// PushoutStats characterizes the delay-noise distribution of a crosstalk
// configuration: how far the victim receiver's output arrival moves versus
// the quiet baseline across aggressor alignments. This is the underlying
// physical quantity whose *estimation error* Table 1 scores; the
// distribution itself shows how much timing noise the configuration
// injects.
type PushoutStats struct {
	Cases int
	// QuietArrival is the aggressor-quiet output arrival (s).
	QuietArrival float64
	// Pushouts are per-case arrival shifts (s), in case order.
	Pushouts []float64
	// Summary statistics (s).
	Mean, Min, Max, P50, P95 float64
	// Hist is a fixed 12-bin histogram over [Min, Max].
	Hist []HistBin
	// Excluded counts cases quarantined by a KeepGoing sweep; the
	// distribution covers the remaining (healthy) cases.
	Excluded int
	// Failures is the sweep's failure report when any case was
	// quarantined or a worker was lost (nil otherwise).
	Failures *sweep.FailureReport
}

// HistBin is one histogram bucket.
type HistBin struct {
	Lo, Hi float64
	Count  int
}

// PushoutOptions configures the distribution sweep. Sweep control —
// workers, the Monte-Carlo seed, progress, cancellation and telemetry —
// lives in the embedded SweepOptions.
type PushoutOptions struct {
	Cases int
	Range float64
	// MonteCarlo samples aggressor alignments uniformly at random (with
	// SweepOptions.Seed) instead of the deterministic grid — useful to
	// check that the grid's stride decorrelation does not bias the
	// statistics. Alignment offsets — including the Monte-Carlo draws —
	// are precomputed in case order before dispatch, so the distribution
	// is identical for any worker count.
	MonteCarlo bool

	SweepOptions
}

// RunPushout sweeps aggressor alignments and measures reference output
// arrival shifts (no equivalent-waveform techniques involved).
//
// When opts.Ctx is canceled mid-sweep, RunPushout returns the distribution
// over the cases that completed (still in case order) together with an
// error matching telemetry.ErrCanceled.
func RunPushout(cfg xtalk.Config, opts PushoutOptions) (*PushoutStats, error) {
	if opts.Cases <= 0 {
		opts.Cases = 100
	}
	if opts.Range <= 0 {
		opts.Range = 1e-9
	}
	defer opts.Telemetry.Timer("experiments.pushout.seconds").Start()()
	cfg.Telemetry = opts.Telemetry
	cfg.Inject = opts.Inject
	cfg.NoFastPath = opts.NoFastPath

	const victimStart = 0.3e-9
	// The quiet baseline runs once, outside any case; give it a run-level
	// trace so the artifacts show where the reference arrival came from.
	blCtx, blSpan := opts.Tracer.Root(opts.ctx(), "experiments.pushout.baseline", trace.NoCase)
	_, quietOut, err := cfg.RunNoiselessCtx(blCtx, victimStart)
	blSpan.End()
	if err != nil {
		return nil, fmt.Errorf("experiments: pushout baseline: %w", err)
	}
	quietArr, err := core.ArrivalAt(quietOut, cfg.Tech.Vdd)
	if err != nil {
		return nil, err
	}
	// Draw every case's offsets up-front, in case order: the Monte-Carlo
	// stream must not depend on worker scheduling.
	rng := rand.New(rand.NewSource(opts.Seed))
	offsets := make([][]float64, opts.Cases)
	for i := range offsets {
		offs := make([]float64, cfg.Aggressors)
		for k := range offs {
			if opts.MonteCarlo {
				offs[k] = (rng.Float64() - 0.5) * opts.Range
			} else {
				offs[k] = aggressorOffset(i, k, opts.Cases, opts.Range)
			}
		}
		offsets[i] = offs
	}

	// Each worker owns a private reusable testbench (the simulator inside
	// is not safe for concurrent use).
	newWorker := func(int) (*xtalk.Bench, error) { return xtalk.NewBench(cfg) }
	caseStarts := func(i int) []float64 {
		starts := make([]float64, cfg.Aggressors)
		for k := range starts {
			starts[k] = victimStart + offsets[i][k]
		}
		return starts
	}
	// score turns one case's transient outcome into its pushout — shared by
	// the scalar path and the batched delivery callback so both modes score
	// with identical code (see RunTable1 for the pattern).
	score := func(ctx context.Context, i int, out *wave.Waveform, runErr error) (float64, error) {
		caseSpan := trace.SpanOf(ctx)
		caseSpan.SetAttr(trace.String("config", cfg.Name), trace.Floats("offsets", offsets[i]))
		if runErr != nil {
			return 0, fmt.Errorf("experiments: pushout case %d: %w", i, runErr)
		}
		arr, err := core.ArrivalAt(out, cfg.Tech.Vdd)
		if err != nil {
			return 0, fmt.Errorf("experiments: pushout case %d: %w", i, err)
		}
		caseSpan.SetAttr(trace.Float("pushout_s", arr-quietArr))
		return arr - quietArr, nil
	}
	do := func(ctx context.Context, i int, bench *xtalk.Bench) (float64, error) {
		_, out, _, err := bench.RunReportCtx(ctx, victimStart, caseStarts(i))
		if err != nil {
			out = nil // match RunCtx: no salvaged prefix reaches scoring
		}
		return score(ctx, i, out, err)
	}
	doGroup := func(ctx context.Context, lo, hi int, bench *xtalk.Bench, deliver sweep.DeliverFunc[float64]) error {
		aggStarts := make([][]float64, hi-lo)
		for j := range aggStarts {
			aggStarts[j] = caseStarts(lo + j)
		}
		return bench.RunBatchReportCtx(ctx, victimStart, aggStarts,
			func(j int, _, out *wave.Waveform, _ spice.RecoveryReport, runErr error) error {
				if runErr != nil {
					out = nil
				}
				p, serr := score(ctx, lo+j, out, runErr)
				if serr != nil && canceled(serr) {
					return serr
				}
				deliver(lo+j, p, serr)
				return nil
			})
	}
	pushouts, completed, report, err := runSweepBatched(opts.SweepOptions, opts.Cases, newWorker, doGroup, do)
	if err != nil && !canceled(err) {
		return nil, err
	}
	// Keep completed cases only (in case order); on a full run this is the
	// whole slice. Quarantined cases (KeepGoing) are simply absent from
	// the distribution and counted in Excluded.
	kept := pushouts[:0]
	for i, p := range pushouts {
		if completed[i] {
			kept = append(kept, p)
		}
	}
	st := &PushoutStats{
		Cases: len(kept), QuietArrival: quietArr, Pushouts: kept,
		Excluded: report.Quarantined(), Failures: report,
	}
	st.summarize()
	return st, err
}

func (st *PushoutStats) summarize() {
	if len(st.Pushouts) == 0 {
		return
	}
	sorted := append([]float64(nil), st.Pushouts...)
	sort.Float64s(sorted)
	st.Min = sorted[0]
	st.Max = sorted[len(sorted)-1]
	sum := 0.0
	for _, p := range sorted {
		sum += p
	}
	st.Mean = sum / float64(len(sorted))
	st.P50 = quantile(sorted, 0.50)
	st.P95 = quantile(sorted, 0.95)

	const bins = 12
	span := st.Max - st.Min
	if span <= 0 {
		st.Hist = []HistBin{{Lo: st.Min, Hi: st.Max, Count: len(sorted)}}
		return
	}
	st.Hist = make([]HistBin, bins)
	for b := range st.Hist {
		st.Hist[b].Lo = st.Min + span*float64(b)/bins
		st.Hist[b].Hi = st.Min + span*float64(b+1)/bins
	}
	for _, p := range sorted {
		b := int(float64(bins) * (p - st.Min) / span)
		if b >= bins {
			b = bins - 1
		}
		st.Hist[b].Count++
	}
}

// quantile returns the q-quantile of a sorted slice with linear
// interpolation between order statistics.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
