package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/xtalk"
)

// TestTable1ParallelEquivalence: the worker-pool sweep must be bit-identical
// to the sequential oracle — same TechniqueStats (MaxAbs/AvgAbs/MeanSigned/
// Failures/N) and same per-case records — on both paper configurations.
// This is the contract that lets cmd/repro default to all cores.
func TestTable1ParallelEquivalence(t *testing.T) {
	for _, mk := range []func(device.Tech) xtalk.Config{xtalk.ConfigurationI, xtalk.ConfigurationII} {
		cfg := mk(device.Default130())
		cfg.Step = 2e-12
		cases := sweepCases(t, 12)

		opts := Table1Options{
			Cases: cases, Range: 1e-9, P: 35,
			SweepOptions: SweepOptions{Workers: 1},
		}
		seq, err := RunTable1(cfg, opts)
		if err != nil {
			t.Fatalf("config %s sequential: %v", cfg.Name, err)
		}
		opts.Workers = 4
		par, err := RunTable1(cfg, opts)
		if err != nil {
			t.Fatalf("config %s parallel: %v", cfg.Name, err)
		}

		if !reflect.DeepEqual(seq.Stats, par.Stats) {
			t.Errorf("config %s: workers=4 stats differ from workers=1:\nseq: %+v\npar: %+v",
				cfg.Name, seq.Stats, par.Stats)
		}
		if !reflect.DeepEqual(seq.Cases, par.Cases) {
			t.Errorf("config %s: per-case records differ between worker counts", cfg.Name)
		}
		for _, s := range seq.Stats {
			t.Logf("config %s %-5s max=%6.2f ps avg=%5.2f ps (bit-identical across worker counts)",
				cfg.Name, s.Name, s.MaxAbs*1e12, s.AvgAbs*1e12)
		}
	}
}

// TestTable1ProgressUnderWorkers: the progress callback must report a
// strictly increasing completed count ending at the case total, regardless
// of worker scheduling.
func TestTable1ProgressUnderWorkers(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	cases := sweepCases(t, 8)
	var last int64
	_, err := RunTable1(cfg, Table1Options{
		Cases: cases, Range: 1e-9, P: 35,
		SweepOptions: SweepOptions{
			Workers: 4,
			Progress: func(done, total int) {
				if int64(done) != atomic.AddInt64(&last, 1) {
					t.Errorf("progress done=%d out of order", done)
				}
				if total != cases {
					t.Errorf("progress total=%d, want %d", total, cases)
				}
			},
		},
	})
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if int(last) != cases {
		t.Errorf("progress reached %d, want %d", last, cases)
	}
}

// TestPushoutParallelEquivalence: the push-out distribution — including the
// Monte-Carlo variant, whose random draws are precomputed in case order —
// must not depend on the worker count.
func TestPushoutParallelEquivalence(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	for _, mc := range []bool{false, true} {
		seq, err := RunPushout(cfg, PushoutOptions{
			Cases: 8, Range: 1e-9, MonteCarlo: mc,
			SweepOptions: SweepOptions{Seed: 7, Workers: 1},
		})
		if err != nil {
			t.Fatalf("sequential (mc=%v): %v", mc, err)
		}
		par, err := RunPushout(cfg, PushoutOptions{
			Cases: 8, Range: 1e-9, MonteCarlo: mc,
			SweepOptions: SweepOptions{Seed: 7, Workers: 3},
		})
		if err != nil {
			t.Fatalf("parallel (mc=%v): %v", mc, err)
		}
		if !reflect.DeepEqual(seq.Pushouts, par.Pushouts) {
			t.Errorf("mc=%v: pushouts differ between worker counts:\nseq %v\npar %v",
				mc, seq.Pushouts, par.Pushouts)
		}
	}
}
