package experiments

import (
	"math"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/wave"
	"noisewave/internal/xtalk"
)

// TestFigure2Series validates the structure of the regenerated Figure 2:
// both panels populated, ρ series bounded and localized to the critical
// regions, and the proposed v_out^eff close to the reference noisy output
// around the switching window (the visual claim of Figure 2b).
func TestFigure2Series(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	s, err := RunFigure2(cfg, Figure2Options{Offset: 0.05e-9})
	if err != nil {
		t.Fatalf("RunFigure2: %v", err)
	}
	for name, w := range map[string]*wave.Waveform{
		"NoiselessIn": s.NoiselessIn, "NoiselessOut": s.NoiselessOut,
		"RhoNoiseless": s.RhoNoiseless, "NoisyIn": s.NoisyIn,
		"NoisyOut": s.NoisyOut, "RhoEff": s.RhoEff,
		"GammaWave": s.GammaWave, "EstOut": s.EstOut,
	} {
		if w == nil || w.Len() < 10 {
			t.Fatalf("series %s missing", name)
		}
	}
	// The 0.2-scaled ρ series must be non-negative and bounded.
	for _, rw := range []*wave.Waveform{s.RhoNoiseless, s.RhoEff} {
		if rw.MinV() < 0 {
			t.Errorf("scaled rho negative: %g", rw.MinV())
		}
		if rw.MaxV() > 0.2*100+1e-9 {
			t.Errorf("scaled rho exceeds cap: %g", rw.MaxV())
		}
	}
	// Γeff is a rising edge tracking the noisy input arrival.
	arrGamma, err := s.GammaEff.Arrival()
	if err != nil {
		t.Fatal(err)
	}
	arrNoisy, err := s.NoisyIn.LastCrossing(0.5 * cfg.Tech.Vdd)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arrGamma-arrNoisy) > 100e-12 {
		t.Errorf("Γeff arrival %.1f ps vs noisy %.1f ps", arrGamma*1e12, arrNoisy*1e12)
	}
	// v_out^eff must reproduce the reference output arrival within the
	// Table 1 error scale.
	vdd := cfg.Tech.Vdd
	aEst, err := s.EstOut.LastCrossing(0.5 * vdd)
	if err != nil {
		t.Fatal(err)
	}
	aRef, err := s.NoisyOut.LastCrossing(0.5 * vdd)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aEst-aRef) > 25e-12 {
		t.Errorf("v_out^eff arrival error %.1f ps", (aEst-aRef)*1e12)
	}
}

// TestRuntimeComparison reproduces the §4.2 structure: every technique has
// a per-gate time; the weighted techniques (WLS5, SGDP) cost more than the
// point-based ones but all stay in the sub-millisecond regime the paper
// reports (µs on 2005 hardware — we only check ordering and sanity).
func TestRuntimeComparison(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	rows, err := RunRuntime(cfg, RuntimeOptions{Repeats: 30, P: 35})
	if err != nil {
		t.Fatalf("RunRuntime: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: %d", len(rows))
	}
	times := map[string]float64{}
	for _, r := range rows {
		t.Logf("%-5s %v", r.Name, r.PerGate)
		if r.PerGate <= 0 {
			t.Errorf("%s: non-positive time", r.Name)
		}
		if r.PerGate.Seconds() > 50e-3 {
			t.Errorf("%s: per-gate fit took %v — implausibly slow", r.Name, r.PerGate)
		}
		times[r.Name] = r.PerGate.Seconds()
	}
	// The paper's qualitative run-time split: P1/P2 are cheaper than the
	// sensitivity-based SGDP (which must compute ρ and iterate).
	if times["SGDP"] < times["P1"] {
		t.Errorf("SGDP (%.3g s) should not be cheaper than P1 (%.3g s)", times["SGDP"], times["P1"])
	}
}

// TestPSweep checks the §4.2 trade-off machinery on a tiny sweep.
func TestPSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("P sweep is slow")
	}
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	rows, err := RunPSweep(cfg, []int{9, 35}, 6, 0)
	if err != nil {
		t.Fatalf("RunPSweep: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("P=%-3d per-gate=%v avg|err|=%.2f ps", r.P, r.PerGate, r.AvgAbsErr*1e12)
		if r.AvgAbsErr <= 0 || r.AvgAbsErr > 150e-12 {
			t.Errorf("P=%d: avg err %.2g out of range", r.P, r.AvgAbsErr)
		}
	}
}

// TestAggressorOffsetCoverage: the decorrelated sweep must cover the window
// for every aggressor and produce differing pairings.
func TestAggressorOffsetCoverage(t *testing.T) {
	const cases = 50
	win := 1e-9
	seen0 := map[int]bool{}
	pairDiff := false
	for i := 0; i < cases; i++ {
		o0 := aggressorOffset(i, 0, cases, win)
		o1 := aggressorOffset(i, 1, cases, win)
		if o0 < -win/2-1e-15 || o0 > win/2+1e-15 {
			t.Fatalf("offset out of window: %g", o0)
		}
		seen0[int(math.Round((o0/win+0.5)*float64(cases-1)))] = true
		if math.Abs(o0-o1) > 1e-13 {
			pairDiff = true
		}
	}
	if len(seen0) != cases {
		t.Errorf("aggressor 0 visits %d distinct offsets, want %d", len(seen0), cases)
	}
	if !pairDiff {
		t.Error("aggressors never decorrelate")
	}
}
