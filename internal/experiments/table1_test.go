package experiments

import (
	"math"
	"os"
	"strconv"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/xtalk"
)

// sweepCases returns the number of alignment cases used by the sweep tests:
// small by default to keep go test fast, overridable for full-fidelity runs
// via NOISEWAVE_CASES.
func sweepCases(t *testing.T, def int) int {
	if s := os.Getenv("NOISEWAVE_CASES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad NOISEWAVE_CASES=%q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		return def / 2
	}
	return def
}

// TestTable1ConfigurationI reproduces the Configuration I half of Table 1
// at reduced case count and checks the paper's qualitative claims:
//
//   - every technique's average error is finite and below 150 ps,
//   - the sensitivity-based techniques (WLS5, SGDP) rank above the
//     point/fit-based ones on average error,
//   - SGDP's average error is within 25% of WLS5's or better (the paper
//     reports SGDP strictly better; at reduced case counts we allow noise).
func TestTable1ConfigurationI(t *testing.T) {
	cfg := xtalk.ConfigurationI(device.Default130())
	cfg.Step = 2e-12
	res, err := RunTable1(cfg, Table1Options{Cases: sweepCases(t, 30), Range: 1e-9, P: 35})
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	checkTable1(t, res, 150e-12)
	// Configuration I additionally reproduces the paper's full ranking:
	// SGDP best, WLS5 second, the conventional techniques behind.
	rank := res.Ranking()
	if rank[0] != "SGDP" || rank[1] != "WLS5" {
		t.Errorf("ranking %v, want SGDP then WLS5 leading", rank)
	}
}

// TestTable1ConfigurationII is the two-aggressor counterpart. WLS5 is
// exempt from the magnitude bound here: with two aggressors the victim
// edge can be pushed (partly) outside the noiseless critical region, where
// WLS5's window-limited fit degrades arbitrarily — the exact failure mode
// §2.4 of the paper describes ("the higher the number of aggressors is,
// the higher is the probability that WLS5 underestimates the arrival time
// and/or slew ... by a large amount"). Our sweep includes harsher
// coincident-aggressor cases than the paper's, so the magnitude is larger;
// see EXPERIMENTS.md.
func TestTable1ConfigurationII(t *testing.T) {
	cfg := xtalk.ConfigurationII(device.Default130())
	cfg.Step = 2e-12
	res, err := RunTable1(cfg, Table1Options{Cases: sweepCases(t, 30), Range: 1e-9, P: 35})
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	checkTable1(t, res, math.Inf(1))
	// The paper's headline claim for Configuration II: SGDP is the most
	// accurate technique, and it degrades gracefully where WLS5 does not.
	if rank := res.Ranking(); rank[0] != "SGDP" {
		t.Errorf("ranking %v, want SGDP first", rank)
	}
	wls, _ := res.StatsFor("WLS5")
	sgdp, _ := res.StatsFor("SGDP")
	if sgdp.MaxAbs >= wls.MaxAbs {
		t.Errorf("SGDP max %.2f ps should be below WLS5 max %.2f ps",
			sgdp.MaxAbs*1e12, wls.MaxAbs*1e12)
	}
}

// checkTable1 validates the invariants every configuration must satisfy;
// wlsBound is the avg-error plausibility bound applied to WLS5 (relaxed in
// Configuration II, see above).
func checkTable1(t *testing.T, res *Table1Result, wlsBound float64) {
	t.Helper()
	stats := map[string]TechniqueStats{}
	for _, s := range res.Stats {
		t.Logf("%-5s max=%7.2f ps avg=%6.2f ps bias=%+7.2f ps fail=%d",
			s.Name, s.MaxAbs*1e12, s.AvgAbs*1e12, s.MeanSigned*1e12, s.Failures)
		stats[s.Name] = s
		if s.Failures > 0 {
			t.Errorf("%s failed on %d cases", s.Name, s.Failures)
		}
		if s.N == 0 {
			t.Fatalf("%s scored no cases", s.Name)
		}
		bound := 150e-12
		if s.Name == "WLS5" {
			bound = wlsBound
		}
		if math.IsNaN(s.AvgAbs) || s.AvgAbs > bound {
			t.Errorf("%s avg error %.2f ps out of range", s.Name, s.AvgAbs*1e12)
		}
	}
	t.Logf("ranking by avg error: %v", res.Ranking())

	sgdp := stats["SGDP"]
	for _, other := range []string{"P1", "P2", "LSF3", "E4", "WLS5"} {
		if sgdp.AvgAbs > stats[other].AvgAbs {
			t.Errorf("SGDP avg %.2f ps should beat %s avg %.2f ps",
				sgdp.AvgAbs*1e12, other, stats[other].AvgAbs*1e12)
		}
	}
}
