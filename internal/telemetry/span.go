package telemetry

import "time"

// spanCapacity bounds the completed-span ring: the dump is a recent-history
// diagnostic, not a full trace store.
const spanCapacity = 256

// SpanRecord is one completed span.
type SpanRecord struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
}

// spanRing is a bounded ring of completed spans. Guarded by the Registry
// mutex.
type spanRing struct {
	buf  []SpanRecord
	next int  // insertion index once the ring is full
	full bool // buf wrapped at least once
}

func (s *spanRing) add(rec SpanRecord) {
	if !s.full {
		s.buf = append(s.buf, rec)
		if len(s.buf) == spanCapacity {
			s.full = true
		}
		return
	}
	s.buf[s.next] = rec
	s.next = (s.next + 1) % spanCapacity
}

// records returns completed spans oldest-first.
func (s *spanRing) records() []SpanRecord {
	if !s.full {
		return append([]SpanRecord(nil), s.buf...)
	}
	out := make([]SpanRecord, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Span is one in-flight traced operation. End records its duration both
// into the ring of recent spans and into the timer "span.<name>", so span
// timings aggregate like any other metric.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// StartSpan begins a span. Nil-safe: a nil registry returns a span whose
// End is a no-op.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, name: name, start: time.Now()}
}

// End completes the span and returns its duration (0 for a nil span).
func (s *Span) End() time.Duration {
	if s == nil || s.reg == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.Timer("span." + s.name).Observe(d.Seconds())
	s.reg.mu.Lock()
	s.reg.spans.add(SpanRecord{Name: s.name, Start: s.start, Duration: d})
	s.reg.mu.Unlock()
	return d
}
