package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of every instrument in a registry. It is
// a plain value: safe to retain, diff and serialize while the registry keeps
// moving.
//
// Both serializations are deterministic: WriteText sorts every section's
// names, and WriteJSON inherits encoding/json's sorted map keys plus the
// fixed struct field order, so two snapshots with equal instrument values
// render byte-identically — `-metrics text` dumps diff cleanly between
// runs. (Span history is not part of the snapshot; hierarchical traces
// live in internal/trace.)
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Timers     map[string]TimerStats     `json:"timers"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Snapshot captures the current state of the registry. Nil-safe: a nil
// registry yields an empty snapshot. The copy is not atomic across
// instruments (each instrument is read consistently, but instruments are
// read one after another); deltas over a quiesced registry are exact.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Timers:     make(map[string]TimerStats),
		Histograms: make(map[string]HistogramStats),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, t := range timers {
		s.Timers[k] = t.Stats()
	}
	for k, h := range histograms {
		s.Histograms[k] = h.Stats()
	}
	return s
}

// Delta returns the change from prev to s: counters and timer count/sum are
// subtracted (instruments absent from prev count from zero), gauges keep
// their current level (a gauge is a level, not an accumulation), and timer
// Min/Max/Avg are recomputed where possible — Min and Max cannot be
// recovered for the window, so they carry the current cumulative values and
// Avg is the windowed Sum/Count.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Timers:     make(map[string]TimerStats, len(s.Timers)),
		Histograms: make(map[string]HistogramStats, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		d.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		d.Gauges[k] = v
	}
	for k, v := range s.Timers {
		p := prev.Timers[k]
		t := TimerStats{Count: v.Count - p.Count, Sum: v.Sum - p.Sum, Min: v.Min, Max: v.Max, Quantiles: v.Quantiles}
		if t.Count > 0 {
			t.Avg = t.Sum / float64(t.Count)
		}
		d.Timers[k] = t
	}
	for k, v := range s.Histograms {
		p := prev.Histograms[k]
		h := HistogramStats{
			TimerStats: TimerStats{Count: v.Count - p.Count, Sum: v.Sum - p.Sum, Min: v.Min, Max: v.Max},
			Buckets:    make([]Bucket, len(v.Buckets)),
		}
		if h.Count > 0 {
			h.Avg = h.Sum / float64(h.Count)
		}
		for i, b := range v.Buckets {
			h.Buckets[i] = b
			if i < len(p.Buckets) && p.Buckets[i].UpperBound == b.UpperBound {
				h.Buckets[i].Count = b.Count - p.Buckets[i].Count
			}
		}
		d.Histograms[k] = h
	}
	return d
}

// WriteJSON serializes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as sorted human-readable lines.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "counter %-44s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "gauge   %-44s %g\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Timers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		t := s.Timers[k]
		if _, err := fmt.Fprintf(w, "timer   %-44s count=%d sum=%.6gs avg=%.6gs min=%.6gs max=%.6gs\n",
			k, t.Count, t.Sum, t.Avg, t.Min, t.Max); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "hist    %-44s count=%d sum=%.6gs avg=%.6gs min=%.6gs max=%.6gs buckets=%d\n",
			k, h.Count, h.Sum, h.Avg, h.Min, h.Max, len(h.Buckets)); err != nil {
			return err
		}
	}
	return nil
}
