package telemetry

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the pipeline's cancellation sentinel: every layer that
// stops early because its context was canceled or timed out wraps this
// error (alongside the context's own error), so callers can test one
// sentinel with errors.Is regardless of which layer noticed first. Partial
// results — a truncated spice.Result, sweep results for the completed
// cases, experiment statistics over the cases that finished — accompany the
// error where the layer can produce them.
var ErrCanceled = errors.New("run canceled")

// Canceled wraps ctx's error so that errors.Is matches both ErrCanceled and
// the underlying context error (context.Canceled or
// context.DeadlineExceeded). The format arguments describe where the run
// stopped.
func Canceled(ctx context.Context, format string, args ...any) error {
	return fmt.Errorf("%s: %w: %w", fmt.Sprintf(format, args...), ErrCanceled, context.Cause(ctx))
}
