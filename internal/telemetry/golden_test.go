package telemetry

import (
	"bytes"
	"testing"
)

// goldenRegistry populates a registry with one instrument of each kind in
// deliberately unsorted insertion order, so the goldens below prove the
// renderers sort rather than echo insertion order.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("sweep.cases_completed").Add(6)
	r.Counter("core.replay_hits").Add(12)
	r.Gauge("sweep.queue_depth").Set(0)
	r.Gauge("sweep.pool_size").Set(0)
	r.Timer("spice.transient_seconds").Observe(0.25)
	r.Timer("experiments.table1.seconds").Observe(1.5)
	h := r.HistogramWith("jobs.run_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.3)
	return r
}

// TestSnapshotGoldenText pins the exact text rendering: names sorted within
// each section, fixed column layout. Two runs that produce the same
// instrument values must produce byte-identical `-metrics text` dumps, so
// this golden is a determinism contract, not a formatting preference.
func TestSnapshotGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	const want = "counter core.replay_hits                             12\n" +
		"counter sweep.cases_completed                        6\n" +
		"gauge   sweep.pool_size                              0\n" +
		"gauge   sweep.queue_depth                            0\n" +
		"timer   experiments.table1.seconds                   count=1 sum=1.5s avg=1.5s min=1.5s max=1.5s\n" +
		"timer   spice.transient_seconds                      count=1 sum=0.25s avg=0.25s min=0.25s max=0.25s\n" +
		"hist    jobs.run_seconds                             count=2 sum=0.35s avg=0.175s min=0.05s max=0.3s buckets=3\n"
	if got := buf.String(); got != want {
		t.Errorf("text rendering drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSnapshotGoldenJSON pins the exact JSON rendering: encoding/json
// sorts map keys and the struct field order is fixed, so equal snapshots
// serialize byte-identically.
func TestSnapshotGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "counters": {
    "core.replay_hits": 12,
    "sweep.cases_completed": 6
  },
  "gauges": {
    "sweep.pool_size": 0,
    "sweep.queue_depth": 0
  },
  "timers": {
    "experiments.table1.seconds": {
      "count": 1,
      "sum": 1.5,
      "min": 1.5,
      "max": 1.5,
      "avg": 1.5
    },
    "spice.transient_seconds": {
      "count": 1,
      "sum": 0.25,
      "min": 0.25,
      "max": 0.25,
      "avg": 0.25
    }
  },
  "histograms": {
    "jobs.run_seconds": {
      "count": 2,
      "sum": 0.35,
      "min": 0.05,
      "max": 0.3,
      "avg": 0.175,
      "buckets": [
        {
          "le": 0.1,
          "count": 1
        },
        {
          "le": 1,
          "count": 2
        },
        {
          "le": 10,
          "count": 2
        }
      ]
    }
  }
}
`
	if got := buf.String(); got != want {
		t.Errorf("JSON rendering drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Stability across repeated renders of independently built registries.
	var again bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two identical registries rendered different JSON")
	}
}
