package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeTimerBasics(t *testing.T) {
	r := New()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Error("Counter did not return the same instrument for the same name")
	}

	g := r.Gauge("a.depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}

	tm := r.Timer("a.seconds")
	tm.Observe(0.5)
	tm.Observe(1.5)
	st := tm.Stats()
	if st.Count != 2 || st.Sum != 2.0 || st.Min != 0.5 || st.Max != 1.5 || st.Avg != 1.0 {
		t.Errorf("timer stats = %+v", st)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Timer("x").Observe(1)
	r.Timer("x").Start()()
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Timers) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	r.Counter("c").Add(10)
	r.Gauge("g").Set(7)
	r.Timer("t").Observe(2)
	before := r.Snapshot()

	r.Counter("c").Add(5)
	r.Counter("new").Inc()
	r.Gauge("g").Set(3)
	r.Timer("t").Observe(4)
	d := r.Snapshot().Delta(before)

	if d.Counters["c"] != 5 {
		t.Errorf("delta c = %d, want 5", d.Counters["c"])
	}
	if d.Counters["new"] != 1 {
		t.Errorf("delta new = %d, want 1", d.Counters["new"])
	}
	if d.Gauges["g"] != 3 {
		t.Errorf("delta gauge = %g, want current level 3", d.Gauges["g"])
	}
	ts := d.Timers["t"]
	if ts.Count != 1 || ts.Sum != 4 || ts.Avg != 4 {
		t.Errorf("delta timer = %+v, want count=1 sum=4", ts)
	}
}

// TestConcurrentInstruments drives every instrument type from many
// goroutines; run under -race this is the registry's concurrency contract.
func TestConcurrentInstruments(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Timer("t").Observe(1)
				if i%100 == 0 {
					_ = r.Snapshot() // snapshots race against writers by design
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge = %g, want %d", got, workers*perWorker)
	}
	if st := r.Timer("t").Stats(); st.Count != workers*perWorker {
		t.Errorf("timer count = %d, want %d", st.Count, workers*perWorker)
	}
}

func TestSnapshotSerialization(t *testing.T) {
	r := New()
	r.Counter("spice.transients").Add(3)
	r.Gauge("sweep.queue_depth").Set(2)
	r.Timer("spice.transient_seconds").Observe(0.25)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["spice.transients"] != 3 {
		t.Errorf("round-tripped counter = %d", round.Counters["spice.transients"])
	}

	buf.Reset()
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"spice.transients", "sweep.queue_depth", "spice.transient_seconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}
}

func TestCanceledWrapsBothSentinels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx, "sweep: stopped after %d cases", 7)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err does not match ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err does not match context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "stopped after 7 cases") {
		t.Errorf("err lost its context: %v", err)
	}
}
