// Package telemetry is the observability and run-control layer of the
// simulation pipeline: a zero-dependency, concurrency-safe metrics registry
// (counters, gauges and timers with snapshot/delta semantics) and the
// cancellation sentinel the pipeline reports when a run is stopped by a
// context. Hierarchical span tracing lives in the sibling package
// internal/trace; this package stays purely aggregate.
//
// The package is designed for hot paths: every instrument is nil-safe, so
// instrumented code threads an optional *Registry unconditionally —
//
//	reg.Counter("spice.steps_accepted").Inc()
//
// is a no-op (a single nil check, no allocation) when reg is nil. Hot loops
// should hoist the instrument out of the loop: Counter/Gauge/Timer lookups
// take a registry-wide lock, while Add/Set/Observe on the returned
// instrument are lock-free or per-instrument.
//
// Metric names are dot-separated, lowercase, with the owning package as the
// first segment ("spice.newton_iterations", "sweep.queue_depth",
// "core.replay_hits"). EXPERIMENTS.md documents every name the pipeline
// emits.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named instruments. The zero value is not usable; call New.
// A nil *Registry is valid everywhere and turns every operation into a
// no-op, so instrumentation can be threaded through APIs unconditionally.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe: a nil
// registry returns a nil counter whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns (creating if needed) the named timer. Nil-safe.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{min: math.Inf(1), max: math.Inf(-1)}
		r.timers[name] = t
	}
	return t
}

// Counter is a monotonically increasing int64. Lock-free; safe for
// concurrent use; all methods are nil-receiver-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 level (queue depth, pool size). Lock-free; safe for
// concurrent use; all methods are nil-receiver-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the level.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add moves the level by d (compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer aggregates duration (or any other) observations: count, sum, min
// and max. It doubles as a histogram-lite: Avg is Sum/Count, and the
// min/max pair bounds the distribution. A timer can additionally keep a
// bounded ring of raw samples (KeepSamples) for percentile reporting —
// off by default so hot solver timers stay allocation-lean. Safe for
// concurrent use; all methods are nil-receiver-safe.
type Timer struct {
	mu    sync.Mutex
	count int64
	sum   float64
	min   float64
	max   float64

	// samples is the optional ring of raw observations; sampleNext is the
	// ring cursor once len(samples) == cap(samples).
	samples    []float64
	sampleNext int
}

// Observe records one measurement, in seconds by convention.
func (t *Timer) Observe(v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.count++
	t.sum += v
	if v < t.min {
		t.min = v
	}
	if v > t.max {
		t.max = v
	}
	if cap(t.samples) > 0 {
		if len(t.samples) < cap(t.samples) {
			t.samples = append(t.samples, v)
		} else {
			t.samples[t.sampleNext] = v
			t.sampleNext = (t.sampleNext + 1) % len(t.samples)
		}
	}
	t.mu.Unlock()
}

// KeepSamples makes the timer retain its most recent n raw observations in
// a ring, enabling Samples/percentile reporting (the load test reads
// jobs.run_seconds this way). n <= 0 disables retention and drops any
// samples held.
func (t *Timer) KeepSamples(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if n <= 0 {
		t.samples, t.sampleNext = nil, 0
	} else if cap(t.samples) != n {
		old := t.samples
		t.samples = make([]float64, 0, n)
		t.sampleNext = 0
		// Keep as much of the existing history as fits.
		if len(old) > n {
			old = old[len(old)-n:]
		}
		t.samples = append(t.samples, old...)
		if len(t.samples) == n {
			t.sampleNext = 0
		}
	}
	t.mu.Unlock()
}

// Samples returns a copy of the retained raw observations (nil unless
// KeepSamples enabled retention).
func (t *Timer) Samples() []float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) == 0 {
		return nil
	}
	out := make([]float64, len(t.samples))
	copy(out, t.samples)
	return out
}

// Quantile returns the q-th quantile (0 <= q <= 1) of samples using the
// nearest-rank method on a sorted copy; NaN for an empty slice. Exported
// for latency reports (p50/p95/p99).
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// Start begins a wall-clock measurement and returns the function that
// records it:
//
//	defer reg.Timer("spice.transient_seconds").Start()()
func (t *Timer) Start() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start).Seconds()) }
}

// Stats returns the aggregate view (zero stats for a nil timer). When the
// timer retains a sample ring (KeepSamples), the stats carry p50/p95/p99
// computed over the ring — these surface as summary quantile lines in the
// Prometheus exposition.
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := timerStatsLocked(t.count, t.sum, t.min, t.max)
	if len(t.samples) > 0 {
		s.Quantiles = quantileMap(t.samples)
	}
	return s
}

// quantileMap computes the standard reporting quantiles over one sorted
// copy of the ring.
func quantileMap(samples []float64) map[string]float64 {
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	return map[string]float64{"0.5": q(0.5), "0.95": q(0.95), "0.99": q(0.99)}
}

func timerStatsLocked(count int64, sum, min, max float64) TimerStats {
	s := TimerStats{Count: count, Sum: sum}
	if count > 0 {
		s.Min, s.Max, s.Avg = min, max, sum/float64(count)
	}
	return s
}

// TimerStats is the exported aggregate of a Timer. Quantiles is populated
// (keys "0.5", "0.95", "0.99") only for timers with a KeepSamples ring;
// like Min/Max in Delta, quantiles are a property of the retained window,
// not of a diff.
type TimerStats struct {
	Count     int64              `json:"count"`
	Sum       float64            `json:"sum"`
	Min       float64            `json:"min"`
	Max       float64            `json:"max"`
	Avg       float64            `json:"avg"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}
