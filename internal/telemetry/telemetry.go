// Package telemetry is the observability and run-control layer of the
// simulation pipeline: a zero-dependency, concurrency-safe metrics registry
// (counters, gauges and timers with snapshot/delta semantics) and the
// cancellation sentinel the pipeline reports when a run is stopped by a
// context. Hierarchical span tracing lives in the sibling package
// internal/trace; this package stays purely aggregate.
//
// The package is designed for hot paths: every instrument is nil-safe, so
// instrumented code threads an optional *Registry unconditionally —
//
//	reg.Counter("spice.steps_accepted").Inc()
//
// is a no-op (a single nil check, no allocation) when reg is nil. Hot loops
// should hoist the instrument out of the loop: Counter/Gauge/Timer lookups
// take a registry-wide lock, while Add/Set/Observe on the returned
// instrument are lock-free or per-instrument.
//
// Metric names are dot-separated, lowercase, with the owning package as the
// first segment ("spice.newton_iterations", "sweep.queue_depth",
// "core.replay_hits"). EXPERIMENTS.md documents every name the pipeline
// emits.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named instruments. The zero value is not usable; call New.
// A nil *Registry is valid everywhere and turns every operation into a
// no-op, so instrumentation can be threaded through APIs unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe: a nil
// registry returns a nil counter whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns (creating if needed) the named timer. Nil-safe.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{min: math.Inf(1), max: math.Inf(-1)}
		r.timers[name] = t
	}
	return t
}

// Counter is a monotonically increasing int64. Lock-free; safe for
// concurrent use; all methods are nil-receiver-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 level (queue depth, pool size). Lock-free; safe for
// concurrent use; all methods are nil-receiver-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the level.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add moves the level by d (compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer aggregates duration (or any other) observations: count, sum, min
// and max. It doubles as a histogram-lite: Avg is Sum/Count, and the
// min/max pair bounds the distribution. Safe for concurrent use; all
// methods are nil-receiver-safe.
type Timer struct {
	mu    sync.Mutex
	count int64
	sum   float64
	min   float64
	max   float64
}

// Observe records one measurement, in seconds by convention.
func (t *Timer) Observe(v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.count++
	t.sum += v
	if v < t.min {
		t.min = v
	}
	if v > t.max {
		t.max = v
	}
	t.mu.Unlock()
}

// Start begins a wall-clock measurement and returns the function that
// records it:
//
//	defer reg.Timer("spice.transient_seconds").Start()()
func (t *Timer) Start() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start).Seconds()) }
}

// Stats returns the aggregate view (zero stats for a nil timer).
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return timerStatsLocked(t.count, t.sum, t.min, t.max)
}

func timerStatsLocked(count int64, sum, min, max float64) TimerStats {
	s := TimerStats{Count: count, Sum: sum}
	if count > 0 {
		s.Min, s.Max, s.Avg = min, max, sum/float64(count)
	}
	return s
}

// TimerStats is the exported aggregate of a Timer.
type TimerStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Avg   float64 `json:"avg"`
}
