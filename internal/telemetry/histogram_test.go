package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-4, 100, 13)
	if len(b) != 13 {
		t.Fatalf("got %d bounds, want 13", len(b))
	}
	if b[0] != 1e-4 || b[12] != 100 {
		t.Errorf("endpoints = %g, %g; want 1e-4, 100", b[0], b[12])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	// Half-decade grid: every other bound is a power of ten.
	if got := b[2]; math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("b[2] = %g, want ~1e-3", got)
	}
	if one := LogBuckets(1, 8, 1); len(one) != 1 || one[0] != 8 {
		t.Errorf("LogBuckets(1,8,1) = %v, want [8]", one)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := New()
	h := r.HistogramWith("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 5 || s.Min != 0.5 || s.Max != 500 {
		t.Fatalf("aggregate = %+v", s.TimerStats)
	}
	// le=1 catches 0.5 and the boundary value 1 (le is inclusive).
	wantCum := []int64{2, 3, 4}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%g count=%d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
	// Same name returns the same instrument; bounds don't move.
	if h2 := r.HistogramWith("h", []float64{42}); h2 != h {
		t.Error("second HistogramWith returned a different instrument")
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var r *Registry
	h := r.Histogram("nil")
	h.Observe(1)
	h.KeepSamples(4)
	h.Start()()
	if s := h.Samples(); s != nil {
		t.Errorf("nil histogram Samples = %v", s)
	}
	if st := h.Stats(); st.Count != 0 {
		t.Errorf("nil histogram Stats = %+v", st)
	}
}

func TestHistogramSamplesRing(t *testing.T) {
	h := newHistogram([]float64{1})
	h.KeepSamples(3)
	for i := 1; i <= 5; i++ {
		h.Observe(float64(i))
	}
	got := h.Samples()
	if len(got) != 3 {
		t.Fatalf("ring holds %d samples, want 3", len(got))
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if sum != 3+4+5 {
		t.Errorf("ring samples = %v, want the last three observations", got)
	}
	if p := Quantile(got, 0.5); p != 4 {
		t.Errorf("p50 of ring = %g, want 4", p)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := newHistogram([]float64{1, 10})
	b := newHistogram([]float64{1, 10})
	a.Observe(0.5)
	a.Observe(20)
	b.Observe(5)
	m := a.Stats().Merge(b.Stats())
	if m.Count != 3 || m.Min != 0.5 || m.Max != 20 {
		t.Fatalf("merged aggregate = %+v", m.TimerStats)
	}
	if m.Buckets[0].Count != 1 || m.Buckets[1].Count != 2 {
		t.Errorf("merged buckets = %+v", m.Buckets)
	}
	// Empty sides pass through untouched.
	empty := newHistogram([]float64{5}).Stats()
	if got := a.Stats().Merge(empty); got.Count != 2 {
		t.Errorf("merge with empty drifted: %+v", got)
	}
	if got := empty.Merge(b.Stats()); got.Count != 1 || got.Min != 5 {
		t.Errorf("empty.Merge drifted: %+v", got)
	}
}

func TestHistogramDelta(t *testing.T) {
	r := New()
	h := r.HistogramWith("d", []float64{1, 10})
	h.Observe(0.5)
	before := r.Snapshot()
	h.Observe(5)
	h.Observe(5)
	d := r.Snapshot().Delta(before)
	hs := d.Histograms["d"]
	if hs.Count != 2 || hs.Sum != 10 {
		t.Fatalf("delta aggregate = %+v", hs.TimerStats)
	}
	if hs.Buckets[0].Count != 0 || hs.Buckets[1].Count != 2 {
		t.Errorf("delta buckets = %+v", hs.Buckets)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("conc")
			h.KeepSamples(16)
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%7) * 0.01)
			}
			h.Samples()
			h.Stats()
		}(w)
	}
	wg.Wait()
	if got := r.Histogram("conc").Stats().Count; got != 8000 {
		t.Errorf("concurrent count = %d, want 8000", got)
	}
}
