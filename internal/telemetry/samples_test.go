package telemetry

import (
	"math"
	"testing"
)

func TestTimerSamplesOffByDefault(t *testing.T) {
	reg := New()
	tm := reg.Timer("t")
	tm.Observe(1)
	tm.Observe(2)
	if s := tm.Samples(); s != nil {
		t.Errorf("Samples without KeepSamples = %v, want nil", s)
	}
}

func TestTimerKeepSamplesRing(t *testing.T) {
	reg := New()
	tm := reg.Timer("t")
	tm.KeepSamples(3)
	for i := 1; i <= 5; i++ {
		tm.Observe(float64(i))
	}
	// Ring of 3 after 5 observations: {4, 5, 3} in ring order — contents,
	// not order, are what percentile reporting needs.
	got := tm.Samples()
	if len(got) != 3 {
		t.Fatalf("len(Samples) = %d, want 3", len(got))
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if sum != 3+4+5 {
		t.Errorf("ring holds %v, want the 3 most recent observations {3,4,5}", got)
	}
	// Aggregates still cover everything observed.
	if st := tm.Stats(); st.Count != 5 || st.Sum != 15 {
		t.Errorf("stats = %+v, want count=5 sum=15", st)
	}
	// Disabling drops retention but not aggregates.
	tm.KeepSamples(0)
	if s := tm.Samples(); s != nil {
		t.Errorf("Samples after disable = %v, want nil", s)
	}
	if st := tm.Stats(); st.Count != 5 {
		t.Errorf("disable dropped aggregates: %+v", st)
	}
}

func TestTimerKeepSamplesNilSafe(t *testing.T) {
	var tm *Timer
	tm.KeepSamples(4)
	tm.Observe(1)
	if s := tm.Samples(); s != nil {
		t.Errorf("nil timer Samples = %v", s)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	samples := []float64{9, 1, 7, 3, 5} // sorted: 1 3 5 7 9
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 5}, {0.8, 7}, {0.95, 9}, {1, 9},
	}
	for _, c := range cases {
		if got := Quantile(samples, c.q); got != c.want {
			t.Errorf("Quantile(q=%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Input must not be mutated (sorted copy).
	if samples[0] != 9 {
		t.Error("Quantile sorted the caller's slice")
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("Quantile(empty) = %g, want NaN", got)
	}
	if got := Quantile([]float64{42}, 0.99); got != 42 {
		t.Errorf("Quantile(single, 0.99) = %g, want 42", got)
	}
}
