package telemetry

import (
	"math"
	"sync"
	"time"
)

// LogBuckets returns n log-spaced bucket upper bounds from lo to hi
// (inclusive, geometric progression). It is the canonical way to build
// histogram bounds: latency histograms span microseconds to minutes, and a
// geometric grid keeps relative resolution constant across that range.
// Panics on invalid arguments so misconfigured instruments fail at
// registration, not at scrape time.
func LogBuckets(lo, hi float64, n int) []float64 {
	if n < 1 || lo <= 0 || hi < lo {
		panic("telemetry: LogBuckets requires n >= 1 and 0 < lo <= hi")
	}
	bounds := make([]float64, n)
	if n == 1 {
		bounds[0] = hi
		return bounds
	}
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range bounds {
		bounds[i] = v
		v *= ratio
	}
	bounds[n-1] = hi // pin the endpoint against float drift
	return bounds
}

// DefaultLatencyBounds spans 100 µs to 100 s in half-decade steps — wide
// enough for both a sub-millisecond cache-hit job and a multi-minute
// full-chip sweep. Shared by every duration histogram unless the
// instrumentation site picks its own grid via HistogramWith.
func DefaultLatencyBounds() []float64 { return LogBuckets(1e-4, 100, 13) }

// IterationBounds is the power-of-two grid for count-shaped histograms
// (Newton iterations per run): 1, 2, 4, … 2^20.
func IterationBounds() []float64 { return LogBuckets(1, 1<<20, 21) }

// Histogram returns (creating if needed) the named histogram with the
// default latency bounds. Nil-safe: a nil registry returns a nil histogram
// whose methods are no-ops.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith returns (creating if needed) the named histogram. On first
// creation the given bounds become the fixed bucket grid (nil means
// DefaultLatencyBounds); later calls return the existing instrument
// unchanged, so the first registration wins — bounds are part of the
// instrument's identity and never move once observations exist.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBounds()
		}
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Histogram aggregates observations into fixed log-spaced buckets alongside
// the same count/sum/min/max aggregate a Timer keeps, so it can replace a
// Timer at any call site (Observe, Start, KeepSamples, Samples all match).
// Unlike a Timer it preserves the shape of the distribution: per-bucket
// counts are exported through Snapshot and rendered as a true Prometheus
// histogram. Safe for concurrent use; all methods are nil-receiver-safe.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; immutable after construction
	counts []int64   // len(bounds)+1; last slot is the +Inf overflow
	count  int64
	sum    float64
	min    float64
	max    float64

	// samples is the optional ring of raw observations (see KeepSamples).
	samples    []float64
	sampleNext int
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: b,
		counts: make([]int64, len(b)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one measurement, in seconds by convention for latency
// histograms (count-shaped grids observe plain counts).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	// Binary search for the first bound >= v; the overflow slot catches the
	// rest. Bucket grids are short (≤ ~21), but the search keeps Observe
	// O(log n) regardless of grid size.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	if cap(h.samples) > 0 {
		if len(h.samples) < cap(h.samples) {
			h.samples = append(h.samples, v)
		} else {
			h.samples[h.sampleNext] = v
			h.sampleNext = (h.sampleNext + 1) % len(h.samples)
		}
	}
	h.mu.Unlock()
}

// Start begins a wall-clock measurement and returns the function that
// records it, mirroring Timer.Start:
//
//	defer reg.Histogram("jobs.run_seconds").Start()()
func (h *Histogram) Start() func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

// KeepSamples makes the histogram retain its most recent n raw observations
// in a ring for exact-percentile reporting (the load test reads
// jobs.run_seconds this way). n <= 0 disables retention.
func (h *Histogram) KeepSamples(n int) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if n <= 0 {
		h.samples, h.sampleNext = nil, 0
	} else if cap(h.samples) != n {
		old := h.samples
		h.samples = make([]float64, 0, n)
		h.sampleNext = 0
		if len(old) > n {
			old = old[len(old)-n:]
		}
		h.samples = append(h.samples, old...)
	}
	h.mu.Unlock()
}

// Samples returns a copy of the retained raw observations (nil unless
// KeepSamples enabled retention).
func (h *Histogram) Samples() []float64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return nil
	}
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

// Stats returns the exported aggregate (zero stats for a nil histogram).
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramStats{
		TimerStats: timerStatsLocked(h.count, h.sum, h.min, h.max),
		Buckets:    make([]Bucket, len(h.bounds)),
	}
	if len(h.samples) > 0 {
		s.Quantiles = quantileMap(h.samples)
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		s.Buckets[i] = Bucket{UpperBound: b, Count: cum}
	}
	return s
}

// Bucket is one cumulative histogram bucket: Count observations were <=
// UpperBound. The implicit +Inf bucket is the total Count of the stats.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramStats is the exported aggregate of a Histogram: the familiar
// TimerStats plus cumulative buckets. Cumulative counts make stats from
// shards with identical grids mergeable by plain addition (Merge).
type HistogramStats struct {
	TimerStats
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Merge combines two stats with identical bucket grids (bucket-wise and
// aggregate-wise addition); it returns s unchanged when other is empty and
// other when s is empty. Mismatched grids panic — merging histograms with
// different resolutions silently would corrupt both.
func (s HistogramStats) Merge(other HistogramStats) HistogramStats {
	if other.Count == 0 {
		return s
	}
	if s.Count == 0 {
		return other
	}
	if len(s.Buckets) != len(other.Buckets) {
		panic("telemetry: merging histograms with different bucket grids")
	}
	out := HistogramStats{
		TimerStats: TimerStats{
			Count: s.Count + other.Count,
			Sum:   s.Sum + other.Sum,
			Min:   math.Min(s.Min, other.Min),
			Max:   math.Max(s.Max, other.Max),
		},
		Buckets: make([]Bucket, len(s.Buckets)),
	}
	if out.Count > 0 {
		out.Avg = out.Sum / float64(out.Count)
	}
	for i := range s.Buckets {
		if s.Buckets[i].UpperBound != other.Buckets[i].UpperBound {
			panic("telemetry: merging histograms with different bucket grids")
		}
		out.Buckets[i] = Bucket{
			UpperBound: s.Buckets[i].UpperBound,
			Count:      s.Buckets[i].Count + other.Buckets[i].Count,
		}
	}
	return out
}
