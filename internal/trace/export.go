package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// attrMap flattens an attr list into a JSON-ready map; the last value of a
// repeated key wins. Non-finite floats (a quiet aggressor's +Inf offset)
// are rendered as strings, which encoding/json would otherwise reject.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = jsonSafe(a.Value)
	}
	return m
}

// jsonSafe replaces NaN/Inf float values with their string rendering.
func jsonSafe(v any) any {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Sprint(x)
		}
	case []float64:
		for _, f := range x {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				out := make([]any, len(x))
				for i, g := range x {
					out[i] = jsonSafe(g)
				}
				return out
			}
		}
	}
	return v
}

// chromeEvent is one Chrome trace_event entry. Complete spans use phase
// "X" (ts + dur), point events phase "i" (instant), and thread naming the
// "M" metadata phase — the subset chrome://tracing and Perfetto render
// without any extra configuration.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // µs since the tracer epoch
	Dur   float64        `json:"dur,omitempty"` // µs
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object flavor of the trace_event format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// micros converts a monotonic offset to trace_event microseconds.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChrome serializes completed spans in Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto. Each trace (one sweep case)
// becomes a thread row named after its root span, so the per-case timeline
// of golden transient, fits and replays reads left to right; span events
// render as instant markers on the same row. Timestamps are monotonic
// offsets from epoch (the tracer's creation time).
func WriteChrome(w io.Writer, epoch time.Time, spans []SpanRecord) error {
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	named := make(map[uint64]bool)
	for _, s := range spans {
		ts := micros(s.Start.Sub(epoch))
		if s.Parent == 0 && !named[s.TraceID] {
			named[s.TraceID] = true
			label := s.Name
			if s.Case != NoCase {
				label = fmt.Sprintf("case %d", s.Case)
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: s.TraceID,
				Args: map[string]any{"name": label},
			})
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: s.Name, Phase: "X", TS: ts, Dur: micros(s.Duration),
			PID: 1, TID: s.TraceID, Args: attrMap(s.Attrs),
		})
		for _, e := range s.Events {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: e.Name, Phase: "i", TS: ts + micros(e.At),
				PID: 1, TID: s.TraceID, Scope: "t", Args: attrMap(e.Attrs),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// JournalEntry is one line of the JSONL run journal: the per-case
// provenance record derived from the case's root span. Together with the
// run's resolved config it is enough to re-run the case (the case index
// and aggressor offsets pin the alignment).
type JournalEntry struct {
	Case     int            `json:"case"`
	TraceID  uint64         `json:"trace_id"`
	Name     string         `json:"name"`
	StartUs  float64        `json:"start_us"` // µs since the tracer epoch
	DurUs    float64        `json:"dur_us"`
	Spans    int            `json:"spans"`  // spans in the case, root included
	Events   int            `json:"events"` // events across those spans
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []string       `json:"children,omitempty"` // child span names, creation order
}

// WriteJournal writes one JSON line per case root span, ascending by case
// index. Every settled case — completed, degraded or quarantined — has a
// root span, so the journal's line count equals the number of cases the
// sweep settled.
func WriteJournal(w io.Writer, epoch time.Time, spans []SpanRecord) error {
	byTrace := make(map[uint64][]SpanRecord)
	var roots []SpanRecord
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
		if s.Parent == 0 && s.Case != NoCase {
			roots = append(roots, s)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].Case != roots[j].Case {
			return roots[i].Case < roots[j].Case
		}
		return roots[i].ID < roots[j].ID
	})
	enc := json.NewEncoder(w)
	for _, r := range roots {
		e := JournalEntry{
			Case: r.Case, TraceID: r.TraceID, Name: r.Name,
			StartUs: micros(r.Start.Sub(epoch)), DurUs: micros(r.Duration),
			Attrs: attrMap(r.Attrs),
		}
		for _, s := range byTrace[r.TraceID] {
			e.Spans++
			e.Events += len(s.Events)
			if s.ID != r.ID {
				e.Children = append(e.Children, s.Name)
			}
		}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// MarshalSpans renders spans as a JSON array with flattened attrs — the
// payload of the status server's /trace/{case} endpoint.
func MarshalSpans(epoch time.Time, spans []SpanRecord) ([]byte, error) {
	type jsonEvent struct {
		Name  string         `json:"name"`
		AtUs  float64        `json:"at_us"`
		Attrs map[string]any `json:"attrs,omitempty"`
	}
	type jsonSpan struct {
		TraceID uint64         `json:"trace_id"`
		ID      uint64         `json:"id"`
		Parent  uint64         `json:"parent,omitempty"`
		Name    string         `json:"name"`
		Case    int            `json:"case"`
		StartUs float64        `json:"start_us"`
		DurUs   float64        `json:"dur_us"`
		Attrs   map[string]any `json:"attrs,omitempty"`
		Events  []jsonEvent    `json:"events,omitempty"`
	}
	out := make([]jsonSpan, 0, len(spans))
	for _, s := range spans {
		js := jsonSpan{
			TraceID: s.TraceID, ID: s.ID, Parent: s.Parent, Name: s.Name,
			Case: s.Case, StartUs: micros(s.Start.Sub(epoch)), DurUs: micros(s.Duration),
			Attrs: attrMap(s.Attrs),
		}
		for _, e := range s.Events {
			js.Events = append(js.Events, jsonEvent{Name: e.Name, AtUs: micros(e.At), Attrs: attrMap(e.Attrs)})
		}
		out = append(out, js)
	}
	return json.Marshal(out)
}
