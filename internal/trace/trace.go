// Package trace is the hierarchical span tracer of the sweep pipeline. It
// answers the question the flat telemetry counters cannot: for each of the
// paper's aggressor-alignment cases, *when* did the golden transient, the
// per-technique Γeff fits and the replay transients run, in what order, and
// which recovery or quarantine path did they take.
//
// The model is a small subset of distributed tracing, specialized for the
// sweep:
//
//   - A Tracer collects completed spans. One tracer observes a whole run;
//     it is safe for concurrent use by the sweep workers.
//   - A root span is opened per sweep case (sweep.runCase) and carries the
//     case index; every root gets a fresh case-scoped trace ID.
//   - Child spans nest under their parent through the context: xtalk
//     transients, per-technique fits, replay transients and spice solves
//     all call Start(ctx, ...) and land under whatever span the context
//     carries. Spans also record point Events (cache hits, recovery rungs).
//   - Timing is monotonic: Start captures a time.Time (which carries Go's
//     monotonic reading) and End records a monotonic duration.
//
// A nil *Tracer — the production default — is a valid no-op: Root returns
// (ctx, nil) after a single branch, and every method of a nil *Span is a
// no-op, so instrumented code threads spans unconditionally. With tracing
// off the sweep outputs are byte-identical to an uninstrumented build.
//
// A Span is confined to the goroutine running its case (like the simulator
// itself); the Tracer's completed-span store is what synchronizes.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or event. Values are kept as
// produced (string, int64, float64, bool, []float64) and serialized by the
// exporters.
type Attr struct {
	Key   string
	Value any
}

// String returns a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 returns an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float returns a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool returns a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Floats returns a float-slice attribute (the value is copied, so callers
// may keep mutating their slice).
func Floats(k string, v []float64) Attr {
	return Attr{Key: k, Value: append([]float64(nil), v...)}
}

// Event is a point-in-time annotation inside a span (a replay-cache hit, a
// recovery-ladder rung), at a monotonic offset from the span start.
type Event struct {
	Name  string
	At    time.Duration
	Attrs []Attr
}

// SpanRecord is one completed span as stored by the tracer.
type SpanRecord struct {
	// TraceID groups the spans of one sweep case (or other root); children
	// inherit it from their root.
	TraceID uint64
	// ID is unique within the tracer; Parent is the parent span's ID, 0 for
	// a root span.
	ID, Parent uint64
	// Name is the operation ("sweep.case", "spice.transient", ...).
	Name string
	// Case is the sweep case index the span belongs to, -1 for spans
	// outside any case (run-level roots).
	Case int
	// Start is the wall-clock start (with Go's monotonic reading);
	// Duration is the monotonic span length.
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Events   []Event
}

// NoCase marks a root span that is not bound to a sweep case.
const NoCase = -1

// defaultCapacity bounds the completed-span store. A full 200-case Table 1
// sweep emits a few thousand spans; the bound only matters for runaway
// instrumentation, and overflow is counted rather than silently ignored.
const defaultCapacity = 1 << 18

// Tracer collects completed spans. The zero value is not usable; call New.
// A nil *Tracer is valid everywhere and turns every operation into a no-op.
type Tracer struct {
	mu      sync.Mutex
	spans   []SpanRecord
	common  []Attr
	dropped int64

	nextID atomic.Uint64
	epoch  time.Time
	cap    int
}

// New returns an empty tracer. The epoch (time zero of the exported
// timelines) is the moment of creation.
func New() *Tracer {
	return &Tracer{epoch: time.Now(), cap: defaultCapacity}
}

// Epoch returns the tracer's time zero (zero time for a nil tracer).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// SetCommonAttrs sets attributes stamped onto every subsequent root span
// (e.g. the owning job ID, so every trace in a job's artifact bundle can be
// joined back to its logs by correlation ID). Nil-safe no-op.
func (t *Tracer) SetCommonAttrs(attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.common = append([]Attr(nil), attrs...)
	t.mu.Unlock()
}

// Root opens a root span: a fresh trace ID, no parent, bound to the given
// sweep case index (NoCase for run-level spans). It returns a context
// carrying the span, under which Start nests children. Nil-safe: a nil
// tracer returns (ctx, nil) after one branch.
func (t *Tracer) Root(ctx context.Context, name string, caseIndex int, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	t.mu.Lock()
	common := t.common
	t.mu.Unlock()
	if len(common) > 0 {
		attrs = append(append([]Attr(nil), common...), attrs...)
	}
	id := t.nextID.Add(1)
	s := &Span{
		tracer: t,
		rec: SpanRecord{
			TraceID: id, ID: id, Case: caseIndex,
			Name: name, Start: time.Now(), Attrs: attrs,
		},
	}
	return With(ctx, s), s
}

// add stores a completed span, dropping (and counting) past capacity.
func (t *Tracer) add(rec SpanRecord) {
	t.mu.Lock()
	if len(t.spans) >= t.cap {
		t.dropped++
	} else {
		t.spans = append(t.spans, rec)
	}
	t.mu.Unlock()
}

// Spans returns a copy of every completed span, ordered by span ID (i.e.
// creation order, which is deterministic for a sequential sweep).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sortSpans(out)
	return out
}

// CaseSpans returns the completed spans of one sweep case, in creation
// order.
func (t *Tracer) CaseSpans(caseIndex int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []SpanRecord
	for _, s := range t.spans {
		if s.Case == caseIndex {
			out = append(out, s)
		}
	}
	t.mu.Unlock()
	sortSpans(out)
	return out
}

// Len returns the number of completed spans stored.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many completed spans were discarded because the
// store was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// sortSpans orders records by span ID (insertion sort: End order is close
// to ID order already).
func sortSpans(s []SpanRecord) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Span is one in-flight traced operation. A span is confined to the
// goroutine running its case; all methods are nil-receiver-safe no-ops so
// instrumented code never branches on "is tracing on".
type Span struct {
	tracer *Tracer
	rec    SpanRecord
	ended  bool
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// With returns a context carrying the span. A nil span returns ctx
// unchanged, so untraced runs never grow the context chain.
func With(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanOf returns the span carried by the context, nil when there is none
// (including a nil context, so callers holding an optional context need no
// guard).
func SpanOf(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child span under the context's span and returns a derived
// context carrying it. With no span in the context (tracing off) it
// returns (ctx, nil) — the single-branch no-op path.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanOf(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Child(name, attrs...)
	return With(ctx, child), child
}

// Child opens a child span inheriting the receiver's trace ID and case.
// Nil-safe: a nil parent yields a nil child.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer: s.tracer,
		rec: SpanRecord{
			TraceID: s.rec.TraceID,
			ID:      s.tracer.nextID.Add(1),
			Parent:  s.rec.ID,
			Case:    s.rec.Case,
			Name:    name,
			Start:   time.Now(),
			Attrs:   attrs,
		},
	}
}

// SetAttr appends attributes to the span (exporters keep the last value of
// a repeated key).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, attrs...)
}

// Event records a point event at the current monotonic offset.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.rec.Events = append(s.rec.Events, Event{
		Name: name, At: time.Since(s.rec.Start), Attrs: attrs,
	})
}

// End completes the span, recording its monotonic duration into the
// tracer. Multiple Ends are idempotent; a nil span ignores the call.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.Duration = time.Since(s.rec.Start)
	s.tracer.add(s.rec)
}
