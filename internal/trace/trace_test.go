package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilTracerIsNoOp: the production default — no tracer — must cost one
// branch and allocate nothing: Root returns the context unchanged and a nil
// span whose whole method set is inert, and Start on an untraced context
// does the same.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	cctx, root := tr.Root(ctx, "sweep.case", 3)
	if cctx != ctx {
		t.Error("nil tracer must return the context unchanged")
	}
	if root != nil {
		t.Fatal("nil tracer must return a nil span")
	}
	root.SetAttr(Int("case", 3))
	root.Event("event")
	root.End()
	if c := root.Child("child"); c != nil {
		t.Error("nil span must yield a nil child")
	}
	sctx, sp := Start(ctx, "op")
	if sctx != ctx || sp != nil {
		t.Error("Start on an untraced context must be (ctx, nil)")
	}
	if SpanOf(nil) != nil {
		t.Error("SpanOf(nil ctx) must be nil")
	}
	if tr.Spans() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer accessors must be empty")
	}

	allocs := testing.AllocsPerRun(100, func() {
		_, s := tr.Root(ctx, "sweep.case", 1)
		s.SetAttr(Int("i", 1))
		s.End()
	})
	if allocs != 0 {
		t.Errorf("nil-tracer hot path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestHierarchy: children inherit trace ID and case, parent links form the
// tree, and events carry monotonic offsets.
func TestHierarchy(t *testing.T) {
	tr := New()
	ctx, root := tr.Root(context.Background(), "sweep.case", 7, Int("worker", 0))
	if SpanOf(ctx) != root {
		t.Fatal("Root must install the span in the context")
	}
	cctx, child := Start(ctx, "xtalk.transient", String("config", "I"))
	child.Event("spice.recovery.gmin_ramp", Float("t", 1e-9))
	_, grand := Start(cctx, "spice.transient")
	grand.End()
	child.End()
	root.SetAttr(String("health", "ok"))
	root.End()
	root.End() // idempotent

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Creation order: root, child, grand; IDs ascending.
	r, c, g := spans[0], spans[1], spans[2]
	if r.Parent != 0 || c.Parent != r.ID || g.Parent != c.ID {
		t.Errorf("parent chain broken: root=%+v child=%+v grand=%+v", r, c, g)
	}
	for _, s := range spans {
		if s.TraceID != r.TraceID || s.Case != 7 {
			t.Errorf("span %s: trace/case not inherited: %+v", s.Name, s)
		}
	}
	if len(c.Events) != 1 || c.Events[0].Name != "spice.recovery.gmin_ramp" || c.Events[0].At < 0 {
		t.Errorf("child events = %+v", c.Events)
	}
	if got := attrMap(r.Attrs); got["health"] != "ok" || got["worker"] != int64(0) {
		t.Errorf("root attrs = %v", got)
	}
	if cs := tr.CaseSpans(7); len(cs) != 3 {
		t.Errorf("CaseSpans(7) = %d spans, want 3", len(cs))
	}
	if cs := tr.CaseSpans(8); len(cs) != 0 {
		t.Errorf("CaseSpans(8) = %d spans, want 0", len(cs))
	}
}

// TestConcurrentCases: case spans ended from many goroutines (the sweep
// worker pool) must all land, each with a distinct span ID.
func TestConcurrentCases(t *testing.T) {
	tr := New()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, root := tr.Root(context.Background(), "sweep.case", i)
			_, c := Start(ctx, "child")
			c.End()
			root.End()
		}(i)
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != 2*n {
		t.Fatalf("got %d spans, want %d", len(spans), 2*n)
	}
	ids := make(map[uint64]bool)
	for _, s := range spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		ids[s.ID] = true
	}
	for i := 0; i < n; i++ {
		if cs := tr.CaseSpans(i); len(cs) != 2 {
			t.Errorf("case %d has %d spans, want 2", i, len(cs))
		}
	}
}

// TestCapacityDrop: overflowing the span store drops and counts instead of
// growing without bound.
func TestCapacityDrop(t *testing.T) {
	tr := New()
	tr.cap = 4
	for i := 0; i < 10; i++ {
		_, s := tr.Root(context.Background(), "sweep.case", i)
		s.End()
	}
	if tr.Len() != 4 {
		t.Errorf("stored %d spans, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
}

// TestWriteChrome: the exporter must emit valid trace_event JSON with one
// complete ("X") event per span, instant events for span events, and a
// thread-name metadata record per case.
func TestWriteChrome(t *testing.T) {
	tr := New()
	ctx, root := tr.Root(context.Background(), "sweep.case", 0, Floats("offsets", []float64{-1e-10}))
	_, child := Start(ctx, "core.technique", String("technique", "SGDP"))
	child.Event("replay.cache_hit")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Epoch(), tr.Spans()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range f.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["X"] != 2 || phases["i"] != 1 || phases["M"] != 1 {
		t.Errorf("event phases = %v, want 2 X, 1 i, 1 M", phases)
	}
	if !strings.Contains(buf.String(), `"case 0"`) {
		t.Errorf("thread name for case 0 missing:\n%s", buf.String())
	}
}

// TestWriteJournal: one line per case root, ascending by case, with
// aggregate span/event counts and flattened attrs.
func TestWriteJournal(t *testing.T) {
	tr := New()
	for _, i := range []int{2, 0, 1} {
		ctx, root := tr.Root(context.Background(), "sweep.case", i, String("status", "ok"))
		_, c := Start(ctx, "xtalk.transient")
		c.Event("e")
		c.End()
		root.End()
	}
	// A run-level root must not produce a journal line.
	_, run := tr.Root(context.Background(), "repro.run", NoCase)
	run.End()

	var buf bytes.Buffer
	if err := WriteJournal(&buf, tr.Epoch(), tr.Spans()); err != nil {
		t.Fatalf("WriteJournal: %v", err)
	}
	var entries []JournalEntry
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e JournalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("journal line is not valid JSON: %v (%s)", err, sc.Text())
		}
		entries = append(entries, e)
	}
	if len(entries) != 3 {
		t.Fatalf("journal has %d lines, want 3", len(entries))
	}
	for i, e := range entries {
		if e.Case != i {
			t.Errorf("line %d: case %d, want ascending order", i, e.Case)
		}
		if e.Spans != 2 || e.Events != 1 {
			t.Errorf("case %d: spans=%d events=%d, want 2/1", e.Case, e.Spans, e.Events)
		}
		if e.Attrs["status"] != "ok" {
			t.Errorf("case %d: attrs = %v", e.Case, e.Attrs)
		}
		if len(e.Children) != 1 || e.Children[0] != "xtalk.transient" {
			t.Errorf("case %d: children = %v", e.Case, e.Children)
		}
	}
}

// TestMarshalSpans: the /trace payload round-trips through JSON.
func TestMarshalSpans(t *testing.T) {
	tr := New()
	ctx, root := tr.Root(context.Background(), "sweep.case", 5, Int("case", 5))
	_, c := Start(ctx, "child")
	c.Event("ev", Bool("hit", true))
	c.End()
	root.End()
	b, err := MarshalSpans(tr.Epoch(), tr.CaseSpans(5))
	if err != nil {
		t.Fatalf("MarshalSpans: %v", err)
	}
	var out []map[string]any
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("payload not valid JSON: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("payload has %d spans, want 2", len(out))
	}
	if out[1]["parent"] == nil || out[1]["name"] != "child" {
		t.Errorf("child span malformed: %v", out[1])
	}
}
