// Package xtalk builds and runs the paper's Figure 1 crosstalk testbench:
// one or more aggressor lines capacitively coupled to a victim line, each
// line driven by a ×1 inverter and received by a ×4 inverter that drives a
// ×16 → ×64 inverter chain. The package produces the noiseless and noisy
// waveforms at the victim receiver input (the paper's in_u) and output
// (out_u), and runs aggressor-alignment sweeps.
//
// Topology notes (Figure 1 leaves some details implicit — see DESIGN.md §6):
// each line is three π-segments; the coupling capacitance is split equally
// over the three segment boundaries; the gate under test is the victim's
// ×4 receiver, loaded by the ×16 inverter whose output drives the ×64
// inverter.
package xtalk

import (
	"context"
	"fmt"
	"math"

	"noisewave/internal/circuit"
	"noisewave/internal/device"
	"noisewave/internal/faultinject"
	"noisewave/internal/interconnect"
	"noisewave/internal/spice"
	"noisewave/internal/telemetry"
	"noisewave/internal/trace"
	"noisewave/internal/wave"
)

// Quiet marks an aggressor as non-switching in a Run call.
var Quiet = math.Inf(1)

// Config describes one crosstalk experiment configuration.
type Config struct {
	Name string
	Tech device.Tech

	// Aggressors is the number of aggressor lines (1 in Configuration I,
	// 2 in Configuration II).
	Aggressors int

	// LineLengthUm is the victim/aggressor line length in µm (1000 in
	// Configuration I, 500 in Configuration II).
	LineLengthUm float64

	// CouplingTotal is the total victim coupling capacitance per aggressor
	// (100 fF in both configurations).
	CouplingTotal float64

	// Drive strengths of the chain, per Figure 1.
	DriverDrive   float64 // line driver (×1)
	ReceiverDrive float64 // gate under test (×4)
	Load1Drive    float64 // first load stage (×16)
	Load2Drive    float64 // second load stage (×64)

	// VictimSlew and AggressorSlew are 10–90% input slews (150 ps).
	VictimSlew    float64
	AggressorSlew float64

	// VictimEdge is the victim transition direction; aggressors switch the
	// opposite way, which maximizes delay push-out.
	VictimEdge wave.Edge

	// Step and Window control the transient runs.
	Step   float64 // simulator base step
	Window float64 // extra simulated time after the victim input edge

	// Telemetry, if non-nil, receives the spice engine counters of every
	// transient the testbench runs (the experiment drivers set it from
	// their SweepOptions).
	Telemetry *telemetry.Registry

	// Inject, if non-nil, threads the deterministic fault injector into
	// every transient the testbench runs (chaos testing; see
	// internal/faultinject).
	Inject *faultinject.Injector

	// NoFastPath threads Options.NoFastPath into every transient the
	// testbench runs (the solver fast path's escape hatch; see
	// internal/spice).
	NoFastPath bool
}

// ConfigurationI returns the paper's Configuration I: one aggressor,
// 1000 µm lines, 100 fF total coupling, 150 ps slews.
func ConfigurationI(t device.Tech) Config {
	return Config{
		Name:          "I",
		Tech:          t,
		Aggressors:    1,
		LineLengthUm:  1000,
		CouplingTotal: 100e-15,
		DriverDrive:   1,
		ReceiverDrive: 4,
		Load1Drive:    16,
		Load2Drive:    64,
		VictimSlew:    150e-12,
		AggressorSlew: 150e-12,
		VictimEdge:    wave.Rising,
		Step:          1e-12,
		Window:        2.5e-9,
	}
}

// ConfigurationII returns the paper's Configuration II: two aggressors
// (x1, x2) each with 100 fF coupling to the victim, 500 µm lines.
func ConfigurationII(t device.Tech) Config {
	c := ConfigurationI(t)
	c.Name = "II"
	c.Aggressors = 2
	c.LineLengthUm = 500
	return c
}

// Node names exposed by the testbench.
const (
	NodeVictimIn   = "in_v"   // victim driver input
	NodeVictimNear = "drv_v"  // victim driver output (line near end)
	NodeVictimFar  = "in_u"   // victim line far end = gate-under-test input
	NodeGateOut    = "out_u"  // gate-under-test output
	NodeLoad1Out   = "out_16" // ×16 stage output
	NodeLoad2Out   = "out_64" // ×64 stage output
)

// AggressorIn returns the input node name of aggressor k (0-based).
func AggressorIn(k int) string { return fmt.Sprintf("in_x%d", k+1) }

// edgeSource builds the driver-input source that yields the desired edge
// direction at the line (the ×1 driver inverts). A non-finite start time
// produces a quiet (DC) source at the pre-transition level.
func edgeSource(start, slew, vdd float64, lineEdge wave.Edge) circuit.Source {
	inEdge := lineEdge.Opposite() // driver inversion
	if math.IsInf(start, 0) {
		if inEdge == wave.Rising {
			return circuit.DCSource(0)
		}
		return circuit.DCSource(vdd)
	}
	return circuit.SlewRamp(start, slew, vdd, inEdge)
}

// Build constructs the full testbench circuit. victimStart is the time of
// the victim edge at the line; aggStart[k] the edge time of aggressor k
// (Quiet for a non-switching aggressor).
func (cfg Config) Build(victimStart float64, aggStart []float64) (*circuit.Circuit, error) {
	ckt, _, _, err := cfg.build(victimStart, aggStart)
	return ckt, err
}

// build is Build returning, in addition, the victim and aggressor source
// elements so a Bench can re-aim the edges between runs without rebuilding.
func (cfg Config) build(victimStart float64, aggStart []float64) (*circuit.Circuit, *circuit.VSource, []*circuit.VSource, error) {
	if len(aggStart) != cfg.Aggressors {
		return nil, nil, nil, fmt.Errorf("xtalk: %d aggressor start times for %d aggressors", len(aggStart), cfg.Aggressors)
	}
	t := cfg.Tech
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(t.Vdd))

	line := interconnect.PaperLine(cfg.LineLengthUm)

	// Victim path.
	vin := ckt.Node(NodeVictimIn)
	vnear := ckt.Node(NodeVictimNear)
	farV := ckt.Node(NodeVictimFar)
	vsrc := ckt.AddVSource("v_victim", vin, circuit.Ground,
		edgeSource(victimStart, cfg.VictimSlew, t.Vdd, cfg.VictimEdge))
	ckt.AddInverter("drv_v", t, cfg.DriverDrive, vin, vnear, vdd)
	juncV := line.BuildBetween(ckt, "lv", vnear, farV)

	// Gate under test and its load chain.
	outU := ckt.Node(NodeGateOut)
	out16 := ckt.Node(NodeLoad1Out)
	out64 := ckt.Node(NodeLoad2Out)
	ckt.AddInverter("gut", t, cfg.ReceiverDrive, farV, outU, vdd)
	ckt.AddInverter("l16", t, cfg.Load1Drive, outU, out16, vdd)
	ckt.AddInverter("l64", t, cfg.Load2Drive, out16, out64, vdd)

	// Aggressor paths.
	aggEdge := cfg.VictimEdge.Opposite()
	asrcs := make([]*circuit.VSource, cfg.Aggressors)
	for k := 0; k < cfg.Aggressors; k++ {
		ain := ckt.Node(AggressorIn(k))
		anear := ckt.Node(fmt.Sprintf("drv_x%d", k+1))
		afar := ckt.Node(fmt.Sprintf("far_x%d", k+1))
		asrcs[k] = ckt.AddVSource(fmt.Sprintf("v_agg%d", k+1), ain, circuit.Ground,
			edgeSource(aggStart[k], cfg.AggressorSlew, t.Vdd, aggEdge))
		ckt.AddInverter(fmt.Sprintf("drv_x%d", k+1), t, cfg.DriverDrive, ain, anear, vdd)
		juncA := line.BuildBetween(ckt, fmt.Sprintf("lx%d", k+1), anear, afar)
		// Aggressor receiver (same ×4 stage, lightly loaded).
		aout := ckt.Node(fmt.Sprintf("out_x%d", k+1))
		ckt.AddInverter(fmt.Sprintf("rcv_x%d", k+1), t, cfg.ReceiverDrive, afar, aout, vdd)
		if err := interconnect.CouplePair(ckt, juncV, juncA, cfg.CouplingTotal); err != nil {
			return nil, nil, nil, err
		}
	}
	return ckt, vsrc, asrcs, nil
}

// simWindow returns the simulation end time for a set of edge times,
// ignoring quiet (non-finite) edges.
func (cfg Config) simWindow(victimStart float64, aggStart []float64) float64 {
	end := 0.0
	if !math.IsInf(victimStart, 0) {
		end = victimStart
	}
	for _, a := range aggStart {
		if !math.IsInf(a, 0) && a > end {
			end = a
		}
	}
	return end + cfg.Window
}

// Run simulates the testbench and returns the waveforms at the gate-under-
// test input and output.
func (cfg Config) Run(victimStart float64, aggStart []float64) (in, out *wave.Waveform, err error) {
	return cfg.RunCtx(context.Background(), victimStart, aggStart)
}

// RunCtx is Run under a context: the transient stops at the next outer
// time step once ctx is done, returning an error that matches
// telemetry.ErrCanceled. On any error the waveforms are nil; use
// RunReportCtx to salvage the recorded prefix of a failed transient.
func (cfg Config) RunCtx(ctx context.Context, victimStart float64, aggStart []float64) (in, out *wave.Waveform, err error) {
	in, out, _, err = cfg.RunReportCtx(ctx, victimStart, aggStart)
	if err != nil {
		return nil, nil, err
	}
	return in, out, nil
}

// RunReportCtx is RunCtx with the resilience detail the robust experiment
// drivers need: the spice recovery report of the transient and, when the
// run fails partway (an unrecoverable step, a cancellation), the waveform
// prefixes recorded up to the failure. On error the returned waveforms are
// the salvageable prefixes — nil when nothing usable was recorded — so a
// caller can fall back to a degraded estimate instead of discarding the
// case.
func (cfg Config) RunReportCtx(ctx context.Context, victimStart float64, aggStart []float64) (in, out *wave.Waveform, rec spice.RecoveryReport, err error) {
	b, err := NewBench(cfg)
	if err != nil {
		return nil, nil, rec, err
	}
	return b.RunReportCtx(ctx, victimStart, aggStart)
}

// Bench is a built testbench whose edge times can be re-aimed between runs:
// the circuit and simulator are constructed once and reused for every case,
// so a sweep worker replaying hundreds of alignments stops paying circuit
// construction and simulator allocation per case. Each run starts from a
// fresh DC operating point, so no electrical state leaks between cases.
// A Bench is not safe for concurrent use; sweeps hold one per worker.
type Bench struct {
	cfg  Config
	vsrc *circuit.VSource
	asrc []*circuit.VSource
	sim  *spice.Simulator
}

// NewBench builds the testbench circuit for cfg with all edges initially
// quiet. The Config's Telemetry/Inject/NoFastPath are baked into the bench;
// change them by building a new one.
func NewBench(cfg Config) (*Bench, error) {
	quiet := make([]float64, cfg.Aggressors)
	for i := range quiet {
		quiet[i] = Quiet
	}
	ckt, vsrc, asrc, err := cfg.build(Quiet, quiet)
	if err != nil {
		return nil, err
	}
	sim := spice.New(ckt, spice.Options{
		Step:        cfg.Step,
		Probes:      []string{NodeVictimFar, NodeGateOut},
		Telemetry:   cfg.Telemetry,
		Inject:      cfg.Inject,
		NoFastPath:  cfg.NoFastPath,
		ReuseResult: true,
	})
	return &Bench{cfg: cfg, vsrc: vsrc, asrc: asrc, sim: sim}, nil
}

// RunCtx is Config.RunCtx on the reusable bench.
func (b *Bench) RunCtx(ctx context.Context, victimStart float64, aggStart []float64) (in, out *wave.Waveform, err error) {
	in, out, _, err = b.RunReportCtx(ctx, victimStart, aggStart)
	if err != nil {
		return nil, nil, err
	}
	return in, out, nil
}

// RunNoiselessCtx is Config.RunNoiselessCtx on the reusable bench.
func (b *Bench) RunNoiselessCtx(ctx context.Context, victimStart float64) (in, out *wave.Waveform, err error) {
	quiet := make([]float64, b.cfg.Aggressors)
	for i := range quiet {
		quiet[i] = Quiet
	}
	return b.RunCtx(ctx, victimStart, quiet)
}

// RunReportCtx is Config.RunReportCtx on the reusable bench: it re-aims the
// victim and aggressor sources at the requested edge times and re-runs the
// simulator over the matching window.
func (b *Bench) RunReportCtx(ctx context.Context, victimStart float64, aggStart []float64) (in, out *wave.Waveform, rec spice.RecoveryReport, err error) {
	cfg := b.cfg
	if len(aggStart) != cfg.Aggressors {
		return nil, nil, rec, fmt.Errorf("xtalk: %d aggressor start times for %d aggressors", len(aggStart), cfg.Aggressors)
	}
	ctx, span := trace.Start(ctx, "xtalk.transient",
		trace.String("config", cfg.Name),
		trace.Float("victim_start_s", victimStart),
		trace.Floats("agg_start_s", aggStart))
	defer span.End()
	t := cfg.Tech
	b.vsrc.Value = edgeSource(victimStart, cfg.VictimSlew, t.Vdd, cfg.VictimEdge)
	aggEdge := cfg.VictimEdge.Opposite()
	for k, src := range b.asrc {
		src.Value = edgeSource(aggStart[k], cfg.AggressorSlew, t.Vdd, aggEdge)
	}
	res, runErr := b.sim.RunWindow(ctx, 0, cfg.simWindow(victimStart, aggStart))
	if res != nil {
		rec = res.Recovery
	}
	if runErr != nil {
		// Salvage the recorded prefix: the failing step was rejected
		// before recording, so whatever is in the result is finite and
		// monotone. Waveform construction can still fail (fewer than two
		// samples); the prefix is then just not salvageable.
		if res != nil && res.Steps() >= 2 {
			in, _ = res.Waveform(NodeVictimFar)
			out, _ = res.Waveform(NodeGateOut)
		}
		return in, out, rec, fmt.Errorf("xtalk: config %s: %w", cfg.Name, runErr)
	}
	if in, err = res.Waveform(NodeVictimFar); err != nil {
		return nil, nil, rec, err
	}
	if out, err = res.Waveform(NodeGateOut); err != nil {
		return nil, nil, rec, err
	}
	return in, out, rec, nil
}

// RunBatchReportCtx runs K alignment cases of this bench through the spice
// batch engine: one DC operating point and one shared transient trunk cover
// every case up to the earliest time any case's aggressor sources diverge
// from case 0's, then each case continues independently. Results are
// bit-identical to K calls of RunReportCtx (the engine's contract), just
// cheaper. The victim edge is fixed at victimStart for every case;
// aggStarts[i] gives case i's aggressor edge times (Quiet for
// non-switching).
//
// deliver is called once per case in order with the same values
// RunReportCtx would return for it — including salvaged waveform prefixes
// alongside a non-nil error. The waveforms are fresh copies, safe to retain.
// A non-nil error from deliver aborts the batch, as does cancellation; other
// per-case errors are reported through deliver and the remaining cases
// continue.
func (b *Bench) RunBatchReportCtx(ctx context.Context, victimStart float64, aggStarts [][]float64,
	deliver func(i int, in, out *wave.Waveform, rec spice.RecoveryReport, err error) error) error {

	cfg := b.cfg
	for i, as := range aggStarts {
		if len(as) != cfg.Aggressors {
			return fmt.Errorf("xtalk: case %d: %d aggressor start times for %d aggressors", i, len(as), cfg.Aggressors)
		}
	}
	if len(aggStarts) == 0 {
		return nil
	}
	ctx, span := trace.Start(ctx, "xtalk.batch_transient",
		trace.String("config", cfg.Name),
		trace.Int("cases", len(aggStarts)),
		trace.Float("victim_start_s", victimStart))
	defer span.End()

	t := cfg.Tech
	b.vsrc.Value = edgeSource(victimStart, cfg.VictimSlew, t.Vdd, cfg.VictimEdge)
	aggEdge := cfg.VictimEdge.Opposite()

	// Precompute each case's aggressor sources and the share horizon: the
	// trunk is valid up to the earliest time any case's source set provably
	// diverges from case 0's (pairwise vs case 0 suffices — sources equal on
	// (-inf, T) to a common reference are equal to each other there).
	srcs := make([][]circuit.Source, len(aggStarts))
	share := math.Inf(1)
	for i, as := range aggStarts {
		srcs[i] = make([]circuit.Source, cfg.Aggressors)
		for k := range as {
			srcs[i][k] = edgeSource(as[k], cfg.AggressorSlew, t.Vdd, aggEdge)
			if i > 0 {
				if d := circuit.SourceDivergeTime(srcs[0][k], srcs[i][k]); d < share {
					share = d
				}
			}
		}
	}
	span.SetAttr(trace.Float("share_until_s", share))

	cases := make([]spice.BatchCase, len(aggStarts))
	for i := range aggStarts {
		i := i
		cases[i] = spice.BatchCase{
			Stop: cfg.simWindow(victimStart, aggStarts[i]),
			Retarget: func() {
				for k, src := range srcs[i] {
					b.asrc[k].Value = src
				}
			},
		}
	}
	return b.sim.RunBatch(ctx, 0, share, cases, func(i int, res *spice.Result, runErr error) error {
		// The Result is recycled after this callback returns; Waveform()
		// copies, so the extracted waveforms are safe to hand out. Salvage
		// semantics mirror RunReportCtx exactly.
		var rec spice.RecoveryReport
		var in, out *wave.Waveform
		if res != nil {
			rec = res.Recovery
		}
		if runErr != nil {
			if res != nil && res.Steps() >= 2 {
				in, _ = res.Waveform(NodeVictimFar)
				out, _ = res.Waveform(NodeGateOut)
			}
			return deliver(i, in, out, rec, fmt.Errorf("xtalk: config %s: %w", cfg.Name, runErr))
		}
		var err error
		if in, err = res.Waveform(NodeVictimFar); err != nil {
			return deliver(i, nil, nil, rec, err)
		}
		if out, err = res.Waveform(NodeGateOut); err != nil {
			return deliver(i, nil, nil, rec, err)
		}
		return deliver(i, in, out, rec, nil)
	})
}

// RunNoiseless simulates with all aggressors quiet and returns the
// noiseless victim input/output pair used for sensitivity extraction.
func (cfg Config) RunNoiseless(victimStart float64) (in, out *wave.Waveform, err error) {
	return cfg.RunNoiselessCtx(context.Background(), victimStart)
}

// RunNoiselessCtx is RunNoiseless under a context (see RunCtx).
func (cfg Config) RunNoiselessCtx(ctx context.Context, victimStart float64) (in, out *wave.Waveform, err error) {
	quiet := make([]float64, cfg.Aggressors)
	for i := range quiet {
		quiet[i] = Quiet
	}
	return cfg.RunCtx(ctx, victimStart, quiet)
}

// RunQuietVictim simulates the functional-noise scenario: the victim never
// switches (held at its pre-transition level — low for a rising-victim
// configuration) while the aggressors fire at the given times. The
// returned waveforms are the coupling glitch at the victim receiver input
// and the receiver output.
func (cfg Config) RunQuietVictim(aggStart []float64) (in, out *wave.Waveform, err error) {
	return cfg.Run(Quiet, aggStart)
}
