package xtalk

import (
	"context"
	"errors"
	"testing"

	"noisewave/internal/faultinject"
	"noisewave/internal/spice"
)

// TestChaosSalvagePartialWaveforms: when the transient becomes
// unrecoverable mid-run (sustained NaN poisoning past a warm-up window),
// RunReportCtx returns the error together with the waveform prefixes
// recorded up to the failure — long enough to cover the victim transition
// — and a recovery report marked exhausted.
func TestChaosSalvagePartialWaveforms(t *testing.T) {
	cfg := fastConfigI()
	cfg.Inject = faultinject.New(faultinject.Config{NaNEvery: 1, NaNAfter: 700})
	in, out, rec, err := cfg.RunReportCtx(context.Background(), 0.3e-9, []float64{0.3e-9})
	if err == nil {
		t.Fatal("sustained NaN poisoning did not fail the run")
	}
	if !errors.Is(err, spice.ErrNewton) {
		t.Errorf("error %v does not match spice.ErrNewton", err)
	}
	if !rec.Exhausted || rec.NonFinite == 0 {
		t.Errorf("recovery report not exhausted with non-finite rejections: %v", rec)
	}
	if in == nil || out == nil {
		t.Fatal("no waveform prefixes salvaged")
	}
	// ~700 accepted 2 ps steps before the poison starts: the prefix must
	// reach past the victim transition (edge at 0.3 ns + 150 ps slew).
	if in.End() < 1e-9 {
		t.Errorf("salvaged prefix ends at %.3g s, want ≥ 1 ns", in.End())
	}
	if _, err := in.LastCrossing(0.5 * cfg.Tech.Vdd); err != nil {
		t.Errorf("salvaged input prefix does not cover the transition: %v", err)
	}
	// RunCtx keeps the historical contract: nil waveforms on error.
	nIn, nOut, err := cfg.RunCtx(context.Background(), 0.3e-9, []float64{0.3e-9})
	if err == nil || nIn != nil || nOut != nil {
		t.Error("RunCtx must drop partial waveforms on error")
	}
}
