package xtalk

import (
	"math"
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/wave"
)

func fastConfigI() Config {
	c := ConfigurationI(device.Default130())
	c.Step = 2e-12 // coarser for test speed
	return c
}

// TestNoiselessPropagation: with quiet aggressors the victim edge must
// propagate cleanly (monotone-ish input, full-swing inverted output).
func TestNoiselessPropagation(t *testing.T) {
	cfg := fastConfigI()
	in, out, err := cfg.RunNoiseless(0.3e-9)
	if err != nil {
		t.Fatalf("RunNoiseless: %v", err)
	}
	vdd := cfg.Tech.Vdd
	if in.EdgeDir() != wave.Rising {
		t.Errorf("victim far-end edge = %v, want rising", in.EdgeDir())
	}
	if got := in.V[len(in.V)-1]; math.Abs(got-vdd) > 0.05 {
		t.Errorf("victim input settles at %.3f, want %.2f", got, vdd)
	}
	if got := out.V[len(out.V)-1]; got > 0.05 {
		t.Errorf("gate output settles at %.3f, want ~0 (inverted)", got)
	}
	// The noiseless input should cross 0.5Vdd exactly once.
	if n := in.CrossingCount(0.5 * vdd); n != 1 {
		t.Errorf("noiseless input crosses 0.5Vdd %d times, want 1", n)
	}
	// Gate delay (50%-to-50%) should be positive and below 500 ps.
	tin, err := in.LastCrossing(0.5 * vdd)
	if err != nil {
		t.Fatal(err)
	}
	tout, err := out.LastCrossing(0.5 * vdd)
	if err != nil {
		t.Fatal(err)
	}
	d := tout - tin
	if d <= 0 || d > 500e-12 {
		t.Errorf("gate delay %.3g s implausible", d)
	}
	t.Logf("noiseless: far-end slew=%v gate delay=%.1f ps",
		mustSlew(t, in, vdd), d*1e12)
}

// TestNoisyInjection: an opposing aggressor aligned with the victim
// transition must visibly distort the victim far-end waveform and push the
// gate output arrival later than the noiseless case.
func TestNoisyInjection(t *testing.T) {
	cfg := fastConfigI()
	const vs = 0.3e-9
	vdd := cfg.Tech.Vdd

	inQ, outQ, err := cfg.RunNoiseless(vs)
	if err != nil {
		t.Fatalf("RunNoiseless: %v", err)
	}
	// Aggressor switching right on top of the victim transition.
	inN, outN, err := cfg.Run(vs, []float64{vs + 0.1e-9})
	if err != nil {
		t.Fatalf("Run noisy: %v", err)
	}
	distortion := inN.MaxAbsDiff(inQ)
	if distortion < 0.05*vdd {
		t.Errorf("aggressor injection only distorts input by %.3f V — coupling too weak", distortion)
	}
	tQ, err := outQ.LastCrossing(0.5 * vdd)
	if err != nil {
		t.Fatal(err)
	}
	tN, err := outN.LastCrossing(0.5 * vdd)
	if err != nil {
		t.Fatal(err)
	}
	if tN <= tQ {
		t.Errorf("opposing aggressor should delay the output: noisy %.4g <= quiet %.4g", tN, tQ)
	}
	t.Logf("input distortion=%.3f V, output pushout=%.1f ps", distortion, (tN-tQ)*1e12)
}

// TestConfigurationIIBuilds: two aggressors, 500 µm lines.
func TestConfigurationII(t *testing.T) {
	cfg := ConfigurationII(device.Default130())
	cfg.Step = 2e-12
	const vs = 0.3e-9
	in, out, err := cfg.Run(vs, []float64{vs, vs + 0.05e-9})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if in.Len() == 0 || out.Len() == 0 {
		t.Fatal("empty waveforms")
	}
	if got := out.V[len(out.V)-1]; got > 0.05 {
		t.Errorf("gate output settles at %.3f, want ~0", got)
	}
}

func mustSlew(t *testing.T, w *wave.Waveform, vdd float64) float64 {
	t.Helper()
	s, err := w.Slew(vdd, w.EdgeDir())
	if err != nil {
		t.Fatalf("slew: %v", err)
	}
	return s
}
