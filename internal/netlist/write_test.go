package netlist

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleDesign() *Design {
	return &Design{
		Name: "rt",
		Inputs: []Port{
			{Name: "a", Slew: 120e-12, Arrival: 0},
			{Name: "b", Slew: 80e-12, Arrival: 50e-12},
		},
		Outputs: []string{"y"},
		Gates: []Gate{
			{Name: "u1", Cell: "NAND2X1", Pins: map[string]string{"A": "a", "B": "b", "Y": "n1"}},
			{Name: "u2", Cell: "INVX4", Pins: map[string]string{"A": "n1", "Y": "y"}},
		},
		NetCaps:   map[string]float64{"n1": 4.37e-15, "y": 1.05e-14},
		NetRes:    map[string]float64{"n1": 152.8},
		Couplings: []Coupling{{A: "n1", B: "y", Cap: 6e-14}},
	}
}

// Write then Parse must reproduce the design exactly: the writer uses
// shortest round-trip float formatting with no unit suffixes, so every
// quantity survives bit-for-bit.
func TestWriteParseRoundTrip(t *testing.T) {
	d := sampleDesign()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse(Write(d)): %v\noutput:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v\ntext:\n%s", got, d, buf.String())
	}
}

// Output must be byte-stable across calls even though gate pins and net
// parasitics live in maps.
func TestWriteDeterministic(t *testing.T) {
	d := sampleDesign()
	var a, b bytes.Buffer
	if err := Write(&a, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := Write(&b, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic output:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// A written design must still satisfy Validate.
func TestWriteValidates(t *testing.T) {
	d := sampleDesign()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate after round trip: %v", err)
	}
}
