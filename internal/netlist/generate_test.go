package netlist

import "testing"

func TestGenerateChain(t *testing.T) {
	d := GenerateChain("c", 5, []string{"INVX1", "INVX4"})
	if err := d.Validate(); err != nil {
		t.Fatalf("generated chain invalid: %v", err)
	}
	if len(d.Gates) != 5 {
		t.Fatalf("gates: %d", len(d.Gates))
	}
	if d.Gates[0].Cell != "INVX1" || d.Gates[1].Cell != "INVX4" {
		t.Error("cells do not alternate")
	}
	if d.Gates[4].Pins["Y"] != "y" {
		t.Error("last gate must drive y")
	}
	// Degenerate arguments still produce a valid design.
	if err := GenerateChain("c0", 0, nil).Validate(); err != nil {
		t.Errorf("minimal chain: %v", err)
	}
}

func TestGenerateTree(t *testing.T) {
	d := GenerateTree("t", 3, "NAND2X1")
	if err := d.Validate(); err != nil {
		t.Fatalf("generated tree invalid: %v", err)
	}
	if len(d.Inputs) != 8 {
		t.Errorf("inputs: %d", len(d.Inputs))
	}
	if len(d.Gates) != 7 { // 4 + 2 + 1
		t.Errorf("gates: %d", len(d.Gates))
	}
	if d.Outputs[0] != "y" {
		t.Error("output must be y")
	}
}
