package netlist

import (
	"strings"
	"testing"
)

// FuzzParse ensures arbitrary netlist text never panics the parser, and
// every accepted design passes its own validation.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("design x\ninput a\noutput a\n")
	f.Add("gate u1 INVX1 A=a Y=y\n")
	f.Add("netcap n1 -4fF\n")
	f.Add("couple a b 1e99F\n")
	f.Add("input a slew=")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted design fails validation: %v\n%s", err, src)
		}
	})
}

// FuzzParseQuantity ensures the unit parser never panics and stays in
// (value, error) discipline.
func FuzzParseQuantity(f *testing.F) {
	for _, s := range []string{"150ps", "1.5ns", "4fF", "-3ps", "1e-12", "", "ps", "++1ns", "1e999ns"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = ParseQuantity(s)
	})
}
