package netlist

import "fmt"

// GenerateChain builds an n-stage inverter-chain design programmatically:
// in → u1 → n1 → u2 → … → y. Cells alternate through the given cell names
// (e.g. {"INVX1","INVX4"}). Used by benchmarks and scaling tests.
func GenerateChain(name string, n int, cells []string) *Design {
	if n < 1 {
		n = 1
	}
	if len(cells) == 0 {
		cells = []string{"INVX1"}
	}
	d := &Design{Name: name, NetCaps: make(map[string]float64)}
	d.Inputs = append(d.Inputs, Port{Name: "in", Slew: 100e-12})
	prev := "in"
	for i := 1; i <= n; i++ {
		out := fmt.Sprintf("n%d", i)
		if i == n {
			out = "y"
		}
		d.Gates = append(d.Gates, Gate{
			Name: fmt.Sprintf("u%d", i),
			Cell: cells[(i-1)%len(cells)],
			Pins: map[string]string{"A": prev, "Y": out},
		})
		prev = out
	}
	d.Outputs = append(d.Outputs, "y")
	return d
}

// GenerateTree builds a balanced binary NAND-reduction tree with 2^depth
// primary inputs feeding depth levels of two-input gates — a wider timing
// graph than a chain, exercising multi-fanin worst-arrival selection.
func GenerateTree(name string, depth int, nandCell string) *Design {
	if depth < 1 {
		depth = 1
	}
	if nandCell == "" {
		nandCell = "NAND2X1"
	}
	d := &Design{Name: name, NetCaps: make(map[string]float64)}
	level := make([]string, 1<<depth)
	for i := range level {
		in := fmt.Sprintf("in%d", i)
		d.Inputs = append(d.Inputs, Port{Name: in, Slew: 100e-12})
		level[i] = in
	}
	gid := 0
	for l := depth; l >= 1; l-- {
		next := make([]string, len(level)/2)
		for i := range next {
			gid++
			out := fmt.Sprintf("t%d_%d", l, i)
			if l == 1 {
				out = "y"
			}
			d.Gates = append(d.Gates, Gate{
				Name: fmt.Sprintf("g%d", gid),
				Cell: nandCell,
				Pins: map[string]string{"A": level[2*i], "B": level[2*i+1], "Y": out},
			})
			next[i] = out
		}
		level = next
	}
	d.Outputs = append(d.Outputs, "y")
	return d
}
