package netlist

import (
	"math"
	"strings"
	"testing"
)

const sample = `
# two-stage path with an annotated coupling
design demo
input  a slew=150ps at=10ps
input  b
output y
gate   u1 NAND2X1 A=a B=b Y=n1
gate   u2 INVX4   A=n1 Y=y
netcap n1 4fF
couple n1 agg 60fF
`

func TestParseSample(t *testing.T) {
	d, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Name != "demo" {
		t.Errorf("name %q", d.Name)
	}
	if len(d.Inputs) != 2 || len(d.Outputs) != 1 || len(d.Gates) != 2 {
		t.Fatalf("counts: %d inputs %d outputs %d gates",
			len(d.Inputs), len(d.Outputs), len(d.Gates))
	}
	a, ok := d.Input("a")
	if !ok || math.Abs(a.Slew-150e-12) > 1e-18 || math.Abs(a.Arrival-10e-12) > 1e-18 {
		t.Errorf("input a: %+v", a)
	}
	b, _ := d.Input("b")
	if b.Slew != 50e-12 { // default
		t.Errorf("input b default slew: %g", b.Slew)
	}
	if d.Gates[0].Pins["A"] != "a" || d.Gates[0].Pins["Y"] != "n1" {
		t.Errorf("gate pins: %v", d.Gates[0].Pins)
	}
	if math.Abs(d.NetCaps["n1"]-4e-15) > 1e-20 {
		t.Errorf("netcap: %g", d.NetCaps["n1"])
	}
	if len(d.Couplings) != 1 || math.Abs(d.Couplings[0].Cap-60e-15) > 1e-20 {
		t.Errorf("couplings: %+v", d.Couplings)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown statement":  "frob x y",
		"bad attribute":      "input a slew:150ps",
		"bad unit":           "input a slew=150qs",
		"double pin":         "gate u1 INVX1 A=a A=b Y=y",
		"double driver":      "input n1\ngate u1 INVX1 A=a Y=n1",
		"duplicate gate":     "input a\ngate u1 INVX1 A=a Y=n1\ngate u1 INVX1 A=n1 Y=n2",
		"unknown output net": "input a\ngate g INVX1 A=a Y=n1\noutput zzz",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted\n%s", name, src)
		}
	}
}

func TestParseQuantity(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"150ps", 150e-12}, {"1.5ns", 1.5e-9}, {"2s", 2}, {"3fs", 3e-15},
		{"4fF", 4e-15}, {"0.1pF", 0.1e-12}, {"1e-12", 1e-12}, {"7", 7},
	}
	for _, c := range cases {
		got, err := ParseQuantity(c.in)
		if err != nil {
			t.Errorf("ParseQuantity(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want)+1e-30 {
			t.Errorf("ParseQuantity(%q) = %g, want %g", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "ps", "12xx", "--3ns"} {
		if _, err := ParseQuantity(bad); err == nil {
			t.Errorf("ParseQuantity(%q) accepted", bad)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "\n# full comment\ninput a # trailing comment\n\noutput a\n"
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(d.Inputs) != 1 || d.Inputs[0].Name != "a" {
		t.Errorf("inputs: %+v", d.Inputs)
	}
}
