// Package netlist parses the gate-level netlist format consumed by the STA
// engine. The format is line-oriented:
//
//	# comment
//	design  my_block
//	input   a slew=120ps at=0ps
//	input   b slew=80ps  at=50ps
//	output  y
//	gate    u1 NAND2X1 A=a B=b Y=n1
//	gate    u2 INVX4   A=n1 Y=y
//	netcap  n1 4fF
//	couple  n1 agg1 60fF
//
// Units accepted: s/ns/ps/fs for times, F/pF/fF for capacitances. `couple`
// lines declare a coupling capacitance between two nets; the STA engine
// treats them as extra load and as candidates for noise annotation.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Port is a primary input declaration.
type Port struct {
	Name    string
	Arrival float64 // arrival time at the input (s)
	Slew    float64 // 10–90% transition time (s)
}

// Gate is one cell instance; Pins maps cell pin names to net names.
type Gate struct {
	Name string
	Cell string
	Pins map[string]string
}

// Coupling is a declared coupling capacitor between two nets.
type Coupling struct {
	A, B string
	Cap  float64
}

// Design is a parsed netlist.
type Design struct {
	Name      string
	Inputs    []Port
	Outputs   []string
	Gates     []Gate
	NetCaps   map[string]float64
	NetRes    map[string]float64
	Couplings []Coupling
}

// Input returns the primary input with the given name.
func (d *Design) Input(name string) (Port, bool) {
	for _, p := range d.Inputs {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// Parse reads a netlist.
func Parse(r io.Reader) (*Design, error) {
	d := &Design{NetCaps: make(map[string]float64), NetRes: make(map[string]float64)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if err := d.parseLine(fields); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Design) parseLine(fields []string) error {
	switch fields[0] {
	case "design":
		if len(fields) != 2 {
			return fmt.Errorf("design needs a name")
		}
		d.Name = fields[1]
	case "input":
		if len(fields) < 2 {
			return fmt.Errorf("input needs a net name")
		}
		p := Port{Name: fields[1], Slew: 50e-12}
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bad attribute %q", kv)
			}
			val, err := ParseQuantity(v)
			if err != nil {
				return fmt.Errorf("attribute %s: %w", k, err)
			}
			switch k {
			case "slew":
				p.Slew = val
			case "at":
				p.Arrival = val
			default:
				return fmt.Errorf("unknown input attribute %q", k)
			}
		}
		d.Inputs = append(d.Inputs, p)
	case "output":
		if len(fields) != 2 {
			return fmt.Errorf("output needs a net name")
		}
		d.Outputs = append(d.Outputs, fields[1])
	case "gate":
		if len(fields) < 4 {
			return fmt.Errorf("gate needs: name cell PIN=net...")
		}
		g := Gate{Name: fields[1], Cell: fields[2], Pins: make(map[string]string)}
		for _, kv := range fields[3:] {
			pin, net, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bad pin connection %q", kv)
			}
			if _, dup := g.Pins[pin]; dup {
				return fmt.Errorf("pin %s connected twice on %s", pin, g.Name)
			}
			g.Pins[pin] = net
		}
		d.Gates = append(d.Gates, g)
	case "netcap":
		if len(fields) != 3 {
			return fmt.Errorf("netcap needs: net value")
		}
		v, err := ParseQuantity(fields[2])
		if err != nil {
			return err
		}
		d.NetCaps[fields[1]] += v
	case "netres":
		if len(fields) != 3 {
			return fmt.Errorf("netres needs: net ohms")
		}
		v, err := ParseQuantity(fields[2])
		if err != nil {
			return err
		}
		if d.NetRes == nil {
			d.NetRes = make(map[string]float64)
		}
		d.NetRes[fields[1]] += v
	case "couple":
		if len(fields) != 4 {
			return fmt.Errorf("couple needs: netA netB value")
		}
		v, err := ParseQuantity(fields[3])
		if err != nil {
			return err
		}
		d.Couplings = append(d.Couplings, Coupling{A: fields[1], B: fields[2], Cap: v})
	default:
		return fmt.Errorf("unknown statement %q", fields[0])
	}
	return nil
}

// Validate performs structural checks: unique gate names, single driver per
// net, outputs exist.
func (d *Design) Validate() error {
	gateNames := make(map[string]bool)
	drivers := make(map[string]string)
	nets := make(map[string]bool)
	for _, p := range d.Inputs {
		if drivers[p.Name] != "" {
			return fmt.Errorf("netlist: input %s collides with another driver", p.Name)
		}
		drivers[p.Name] = "input:" + p.Name
		nets[p.Name] = true
	}
	for _, g := range d.Gates {
		if gateNames[g.Name] {
			return fmt.Errorf("netlist: duplicate gate name %q", g.Name)
		}
		gateNames[g.Name] = true
		for pin, net := range g.Pins {
			nets[net] = true
			if pin == "Y" { // output pin convention
				if prev := drivers[net]; prev != "" {
					return fmt.Errorf("netlist: net %s driven by both %s and %s", net, prev, g.Name)
				}
				drivers[net] = g.Name
			}
		}
	}
	for _, o := range d.Outputs {
		if !nets[o] {
			return fmt.Errorf("netlist: output %s is not a known net", o)
		}
	}
	return nil
}

// ParseQuantity parses "150ps", "4fF", "1.2e-12", "3ns" into SI units.
func ParseQuantity(s string) (float64, error) {
	unitScale := map[string]float64{
		"s": 1, "ns": 1e-9, "ps": 1e-12, "fs": 1e-15,
		"F": 1, "pF": 1e-12, "fF": 1e-15, "pf": 1e-12, "ff": 1e-15,
	}
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == '-' || c == '+' {
			break
		}
		i--
	}
	num, suffix := s[:i], s[i:]
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad quantity %q", s)
	}
	if suffix == "" {
		return v, nil
	}
	scale, ok := unitScale[suffix]
	if !ok {
		return 0, fmt.Errorf("unknown unit %q in %q", suffix, s)
	}
	return v * scale, nil
}
