package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Write emits a design in the package's line-oriented format, the inverse
// of Parse: Parse(Write(d)) reproduces d exactly (quantities are printed
// with strconv's shortest round-trip formatting, no unit suffixes).
// Sections are ordered design/input/output/gate/netcap/netres/couple, with
// netcap/netres sorted by net name and gate pins sorted by pin name, so
// output is deterministic regardless of map iteration order.
func Write(w io.Writer, d *Design) error {
	bw := bufio.NewWriter(w)
	q := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	if d.Name != "" {
		fmt.Fprintf(bw, "design %s\n", d.Name)
	}
	for _, p := range d.Inputs {
		fmt.Fprintf(bw, "input %s slew=%s at=%s\n", p.Name, q(p.Slew), q(p.Arrival))
	}
	for _, o := range d.Outputs {
		fmt.Fprintf(bw, "output %s\n", o)
	}
	for _, g := range d.Gates {
		fmt.Fprintf(bw, "gate %s %s", g.Name, g.Cell)
		pins := make([]string, 0, len(g.Pins))
		for pin := range g.Pins {
			pins = append(pins, pin)
		}
		sort.Strings(pins)
		for _, pin := range pins {
			fmt.Fprintf(bw, " %s=%s", pin, g.Pins[pin])
		}
		fmt.Fprintln(bw)
	}
	for _, net := range sortedKeys(d.NetCaps) {
		if v := d.NetCaps[net]; v != 0 {
			fmt.Fprintf(bw, "netcap %s %s\n", net, q(v))
		}
	}
	for _, net := range sortedKeys(d.NetRes) {
		if v := d.NetRes[net]; v != 0 {
			fmt.Fprintf(bw, "netres %s %s\n", net, q(v))
		}
	}
	for _, c := range d.Couplings {
		fmt.Fprintf(bw, "couple %s %s %s\n", c.A, c.B, q(c.Cap))
	}
	return bw.Flush()
}

// sortedKeys returns the map's keys in lexicographic order.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
