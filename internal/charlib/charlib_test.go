package charlib

import (
	"testing"

	"noisewave/internal/device"
	"noisewave/internal/wave"
)

// TestCharacterizeInverter checks monotonicity properties every sane NLDM
// table must have: delay grows with load, output transition grows with
// load, and delay grows (weakly) with input slew.
func TestCharacterizeInverter(t *testing.T) {
	tech := device.Default130()
	lib, err := Characterize(tech, []device.Cell{device.Inverter(tech, 4)}, FastOptions())
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	cell, err := lib.Cell("INVX4")
	if err != nil {
		t.Fatal(err)
	}
	arc, ok := cell.ArcTo("A")
	if !ok {
		t.Fatal("missing arc A->Y")
	}
	for name, tbl := range map[string]interface {
		At(float64, float64) float64
	}{
		"cell_rise": arc.CellRise, "cell_fall": arc.CellFall,
		"rise_transition": arc.RiseTransition, "fall_transition": arc.FallTransition,
	} {
		// Monotone in load at fixed mid slew.
		prev := -1.0
		for _, load := range []float64{2e-15, 8e-15, 32e-15} {
			v := tbl.At(150e-12, load)
			if v <= 0 {
				t.Errorf("%s at load %g: non-positive %g", name, load, v)
			}
			if v < prev {
				t.Errorf("%s not monotone in load: %g after %g", name, v, prev)
			}
			prev = v
		}
	}
	// Plausible magnitudes: a ×4 inverter at 8 fF should switch within
	// 1–100 ps.
	d := arc.CellFall.At(150e-12, 8e-15)
	if d < 1e-12 || d > 100e-12 {
		t.Errorf("cell_fall delay %.3g s implausible", d)
	}
	// Input pin capacitance is the device model's value.
	pin, ok := cell.Pin("A")
	if !ok || pin.Cap <= 0 {
		t.Errorf("missing input pin capacitance")
	}
}

// TestCharacterizeNAND2 covers a two-input cell: both arcs present, side
// input held non-controlling.
func TestCharacterizeNAND2(t *testing.T) {
	tech := device.Default130()
	opts := FastOptions()
	opts.Slews = opts.Slews[:2]
	opts.Loads = opts.Loads[:2]
	lib, err := Characterize(tech, []device.Cell{device.NAND2(tech, 1)}, opts)
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	cell, err := lib.Cell("NAND2X1")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"A", "B"} {
		arc, ok := cell.ArcTo(in)
		if !ok {
			t.Fatalf("missing arc %s->Y", in)
		}
		if arc.Sense != 0 { // NegativeUnate
			t.Errorf("NAND2 arc %s should be negative_unate", in)
		}
		if d := arc.CellRise.At(100e-12, 4e-15); d <= 0 || d > 200e-12 {
			t.Errorf("arc %s cell_rise %.3g s implausible", in, d)
		}
	}
}

// TestCharacterizeWithWaves stores output shapes for the sensitivity
// reference path.
func TestCharacterizeWithWaves(t *testing.T) {
	tech := device.Default130()
	opts := FastOptions()
	opts.Slews = opts.Slews[:2]
	opts.Loads = opts.Loads[:2]
	opts.WithWaves = true
	lib, err := Characterize(tech, []device.Cell{device.Inverter(tech, 4)}, opts)
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	cell, err := lib.Cell("INVX4")
	if err != nil {
		t.Fatal(err)
	}
	if cell.Waves == nil {
		t.Fatal("no waveform tables stored")
	}
	for _, e := range []wave.Edge{wave.Rising, wave.Falling} {
		wt, ok := cell.Waves[e]
		if !ok {
			t.Fatalf("missing %v wave table", e)
		}
		w := wt.Nearest(100e-12, 4e-15)
		if w == nil || w.Len() < 10 {
			t.Fatalf("missing stored waveform for %v", e)
		}
		if w.EdgeDir() != e {
			t.Errorf("stored waveform direction %v, want %v", w.EdgeDir(), e)
		}
		// The shifted time base places the input 50% crossing at t = 0, so
		// the output transition must happen at small positive times.
		mid, err := w.LastCrossing(0.5 * tech.Vdd)
		if err != nil {
			t.Fatal(err)
		}
		if mid < 0 || mid > 200e-12 {
			t.Errorf("stored %v waveform arrival %.3g s implausible", e, mid)
		}
	}
}
