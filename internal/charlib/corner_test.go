package charlib

import (
	"testing"

	"noisewave/internal/device"
)

// TestCornerDelayOrdering characterizes the same inverter at all three
// corners: delays must order ff < tt < ss across the grid — the end-to-end
// check that the corner model, the simulator and the characterization
// engine compose correctly.
func TestCornerDelayOrdering(t *testing.T) {
	opts := FastOptions()
	opts.Slews = opts.Slews[:2]
	opts.Loads = opts.Loads[:2]
	nom := device.Default130()
	delays := map[string]float64{}
	for _, corner := range []device.Corner{device.SlowCorner, device.TypicalCorner, device.FastCorner} {
		tech := nom.AtCorner(corner)
		lib, err := Characterize(tech, []device.Cell{device.Inverter(tech, 4)}, opts)
		if err != nil {
			t.Fatalf("corner %s: %v", corner.Name, err)
		}
		cell, err := lib.Cell("INVX4")
		if err != nil {
			t.Fatal(err)
		}
		arc, _ := cell.ArcTo("A")
		delays[corner.Name] = arc.CellFall.At(150e-12, 8e-15)
		t.Logf("corner %s: cell_fall = %.2f ps", corner.Name, delays[corner.Name]*1e12)
	}
	if !(delays["ff"] < delays["tt"] && delays["tt"] < delays["ss"]) {
		t.Errorf("corner delays not ordered: ff=%g tt=%g ss=%g",
			delays["ff"], delays["tt"], delays["ss"])
	}
	// The spread should be substantial (tens of percent), not noise.
	if delays["ss"] < 1.2*delays["ff"] {
		t.Errorf("corner spread implausibly small: ss/ff = %.2f", delays["ss"]/delays["ff"])
	}
}
