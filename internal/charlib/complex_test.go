package charlib

import (
	"testing"

	"noisewave/internal/device"
)

// TestCharacterizeComplexGates covers AOI21 and OAI21: all three arcs must
// characterize with plausible, positive delays through every sensitized
// path.
func TestCharacterizeComplexGates(t *testing.T) {
	tech := device.Default130()
	opts := FastOptions()
	opts.Slews = opts.Slews[:2]
	opts.Loads = opts.Loads[:2]
	lib, err := Characterize(tech,
		[]device.Cell{device.AOI21(tech, 1), device.OAI21(tech, 1)}, opts)
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	for _, name := range []string{"AOI21X1", "OAI21X1"} {
		cell, err := lib.Cell(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(cell.InputPins()); got != 3 {
			t.Fatalf("%s: %d input pins", name, got)
		}
		for _, in := range []string{"A", "B", "C"} {
			arc, ok := cell.ArcTo(in)
			if !ok {
				t.Fatalf("%s: missing arc %s->Y", name, in)
			}
			for tname, tbl := range map[string]interface {
				At(float64, float64) float64
			}{"rise": arc.CellRise, "fall": arc.CellFall} {
				d := tbl.At(100e-12, 4e-15)
				if d <= 0 || d > 300e-12 {
					t.Errorf("%s arc %s %s delay %.3g s implausible", name, in, tname, d)
				}
			}
		}
	}
}

// TestSideLevelSensitization spot-checks the static side levels.
func TestSideLevelSensitization(t *testing.T) {
	cases := []struct {
		kind            device.CellKind
		switching, side string
		want            float64
	}{
		{device.Nand2, "A", "B", 1},
		{device.Nor2, "A", "B", 0},
		{device.Aoi21, "A", "B", 1},
		{device.Aoi21, "A", "C", 0},
		{device.Aoi21, "C", "A", 0},
		{device.Oai21, "A", "B", 0},
		{device.Oai21, "A", "C", 1},
		{device.Oai21, "C", "A", 1},
		{device.Oai21, "C", "B", 0},
	}
	for _, c := range cases {
		if got := sideLevel(c.kind, c.switching, c.side); got != c.want {
			t.Errorf("sideLevel(%v, %s, %s) = %g, want %g",
				c.kind, c.switching, c.side, got, c.want)
		}
	}
}
