// Package charlib is the cell characterization engine: it sweeps input
// slew × output load across the transistor-level cells of internal/device,
// measures delay and output transition with the internal simulator, and
// emits a conventional NLDM library (internal/liberty) — the "current level
// of gate characterization in conventional ASIC cell libraries" that the
// paper's techniques are designed to be compatible with.
//
// Optionally the engine also stores the simulated output waveform at every
// grid point (a CCS-style extension); the noise-aware STA mode uses those
// shapes as the noiseless sensitivity reference.
package charlib

import (
	"fmt"

	"noisewave/internal/circuit"
	"noisewave/internal/device"
	"noisewave/internal/liberty"
	"noisewave/internal/spice"
	"noisewave/internal/wave"
)

// Options configures a characterization run.
type Options struct {
	// Slews are the 10–90% input transition times of the table's index_1.
	Slews []float64
	// Loads are the output capacitive loads of index_2.
	Loads []float64
	// Step is the simulator timestep (default 1 ps).
	Step float64
	// WithWaves stores the output waveform at every grid point.
	WithWaves bool
}

// DefaultOptions returns a production-quality 6×7 grid.
func DefaultOptions() Options {
	return Options{
		Slews: []float64{20e-12, 50e-12, 100e-12, 200e-12, 400e-12, 800e-12},
		Loads: []float64{1e-15, 2e-15, 4e-15, 8e-15, 16e-15, 32e-15, 64e-15},
		Step:  1e-12,
	}
}

// FastOptions returns a coarse 3×3 grid for tests.
func FastOptions() Options {
	return Options{
		Slews: []float64{50e-12, 150e-12, 400e-12},
		Loads: []float64{2e-15, 8e-15, 32e-15},
		Step:  2e-12,
	}
}

// StandardCells returns the cell set of the paper's testbench technology:
// inverters at ×1/×4/×16/×64 plus NAND2, NOR2 and BUF at ×1 and ×4.
func StandardCells(t device.Tech) []device.Cell {
	return []device.Cell{
		device.Inverter(t, 1), device.Inverter(t, 4),
		device.Inverter(t, 16), device.Inverter(t, 64),
		device.NAND2(t, 1), device.NAND2(t, 4),
		device.NOR2(t, 1), device.NOR2(t, 4),
		device.AOI21(t, 1), device.OAI21(t, 1),
		device.Buffer(t, 4),
	}
}

// Characterize builds a library for the given cells.
func Characterize(t device.Tech, cells []device.Cell, opts Options) (*liberty.Library, error) {
	if len(opts.Slews) == 0 || len(opts.Loads) == 0 {
		return nil, fmt.Errorf("charlib: empty slew/load grid")
	}
	if opts.Step == 0 {
		opts.Step = 1e-12
	}
	lib := liberty.NewLibrary(t.Name, t.Vdd)
	for _, c := range cells {
		cell, err := characterizeCell(t, c, opts)
		if err != nil {
			return nil, fmt.Errorf("charlib: %s: %w", c.Name, err)
		}
		lib.AddCell(cell)
	}
	return lib, nil
}

// inputNames returns the logical input pin names of a cell kind.
func inputNames(k device.CellKind) []string {
	switch k {
	case device.Nand2, device.Nor2:
		return []string{"A", "B"}
	case device.Aoi21, device.Oai21:
		return []string{"A", "B", "C"}
	default:
		return []string{"A"}
	}
}

// sideLevel returns the sensitizing static level (as a fraction of Vdd) for
// a non-switching input while `switching` toggles: the side values must
// make the output controlled by the switching pin alone.
func sideLevel(k device.CellKind, switching, side string) float64 {
	switch k {
	case device.Nand2:
		return 1 // non-controlling high
	case device.Nor2:
		return 0 // non-controlling low
	case device.Aoi21:
		// Y = !(A·B + C).
		if switching == "C" {
			// Kill the AND term: A low.
			if side == "A" {
				return 0
			}
			return 1
		}
		// Switching A or B: the other AND input high, C low.
		if side == "C" {
			return 0
		}
		return 1
	case device.Oai21:
		// Y = !((A + B)·C).
		if switching == "C" {
			// Keep the OR term true via A, B low.
			if side == "A" {
				return 1
			}
			return 0
		}
		// Switching A or B: the other OR input low, C high.
		if side == "C" {
			return 1
		}
		return 0
	default:
		return 1
	}
}

func characterizeCell(t device.Tech, c device.Cell, opts Options) (*liberty.Cell, error) {
	ins := inputNames(c.Kind)
	out := &liberty.Cell{
		Name: c.Name,
		Area: c.Drive,
	}
	for _, in := range ins {
		out.Pins = append(out.Pins, liberty.Pin{
			Name: in, Direction: "input", Cap: c.InputCap(),
		})
	}
	out.Pins = append(out.Pins, liberty.Pin{Name: "Y", Direction: "output"})

	sense := liberty.NegativeUnate
	if c.Kind == device.Buf {
		sense = liberty.PositiveUnate
	}

	for _, in := range ins {
		arc := liberty.Arc{From: in, To: "Y", Sense: sense}
		shape := newShapeTable(opts)
		for _, outEdge := range []wave.Edge{wave.Rising, wave.Falling} {
			inEdge := outEdge
			if sense == liberty.NegativeUnate {
				inEdge = outEdge.Opposite()
			}
			delayTbl, transTbl := newTable(opts), newTable(opts)
			for i, slew := range opts.Slews {
				for j, load := range opts.Loads {
					m, err := measure(t, c, in, inEdge, slew, load, opts)
					if err != nil {
						return nil, fmt.Errorf("arc %s %v slew=%g load=%g: %w", in, outEdge, slew, load, err)
					}
					delayTbl.Values[i][j] = m.delay
					transTbl.Values[i][j] = m.outTrans
					if opts.WithWaves {
						shape.put(outEdge, i, j, m.outWave)
					}
				}
			}
			if outEdge == wave.Rising {
				arc.CellRise, arc.RiseTransition = delayTbl, transTbl
			} else {
				arc.CellFall, arc.FallTransition = delayTbl, transTbl
			}
		}
		if opts.WithWaves && out.Waves == nil {
			out.Waves = shape.tables()
		}
		out.Arcs = append(out.Arcs, arc)
	}
	return out, nil
}

func newTable(opts Options) *liberty.Table2D {
	t := &liberty.Table2D{
		Index1: append([]float64(nil), opts.Slews...),
		Index2: append([]float64(nil), opts.Loads...),
		Values: make([][]float64, len(opts.Slews)),
	}
	for i := range t.Values {
		t.Values[i] = make([]float64, len(opts.Loads))
	}
	return t
}

type shapeTable struct {
	opts  Options
	waves map[wave.Edge][][]*wave.Waveform
}

func newShapeTable(opts Options) *shapeTable {
	s := &shapeTable{opts: opts, waves: make(map[wave.Edge][][]*wave.Waveform)}
	for _, e := range []wave.Edge{wave.Rising, wave.Falling} {
		rows := make([][]*wave.Waveform, len(opts.Slews))
		for i := range rows {
			rows[i] = make([]*wave.Waveform, len(opts.Loads))
		}
		s.waves[e] = rows
	}
	return s
}

func (s *shapeTable) put(e wave.Edge, i, j int, w *wave.Waveform) { s.waves[e][i][j] = w }

func (s *shapeTable) tables() map[wave.Edge]*liberty.WaveTable {
	out := make(map[wave.Edge]*liberty.WaveTable, 2)
	for e, rows := range s.waves {
		out[e] = &liberty.WaveTable{
			Index1: append([]float64(nil), s.opts.Slews...),
			Index2: append([]float64(nil), s.opts.Loads...),
			Waves:  rows,
		}
	}
	return out
}

type measurement struct {
	delay    float64
	outTrans float64
	outWave  *wave.Waveform // time base shifted so 0 = input 50% crossing
}

// measure runs one characterization point: the cell with one switching
// input (others held at their non-controlling level), a pure capacitive
// load, and a saturated-ramp input of the given slew.
func measure(t device.Tech, c device.Cell, switching string, inEdge wave.Edge, slew, load float64, opts Options) (measurement, error) {
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(t.Vdd))
	outN := ckt.Node("y")
	ckt.AddCapacitor(outN, circuit.Ground, load)

	const t0 = 0.2e-9
	ins := inputNames(c.Kind)
	pins := circuit.CellPins{Out: outN, Vdd: vdd}
	for _, name := range ins {
		n := ckt.Node("in_" + name)
		pins.Inputs = append(pins.Inputs, n)
		if name == switching {
			ckt.AddVSource("v_"+name, n, circuit.Ground, circuit.SlewRamp(t0, slew, t.Vdd, inEdge))
			continue
		}
		level := sideLevel(c.Kind, switching, name) * t.Vdd
		ckt.AddVSource("v_"+name, n, circuit.Ground, circuit.DCSource(level))
	}
	if err := ckt.AddCell("dut", c, pins); err != nil {
		return measurement{}, err
	}

	stop := t0 + slew/0.8 + 1.5e-9
	sim := spice.New(ckt, spice.Options{Stop: stop, Step: opts.Step, Probes: []string{"in_" + switching, "y"}})
	res, err := sim.Run()
	if err != nil {
		return measurement{}, err
	}
	wIn, err := res.Waveform("in_" + switching)
	if err != nil {
		return measurement{}, err
	}
	wOut, err := res.Waveform("y")
	if err != nil {
		return measurement{}, err
	}
	half := 0.5 * t.Vdd
	tIn, err := wIn.LastCrossing(half)
	if err != nil {
		return measurement{}, fmt.Errorf("input never crosses 50%%: %w", err)
	}
	tOut, err := wOut.LastCrossing(half)
	if err != nil {
		return measurement{}, fmt.Errorf("output never crosses 50%%: %w", err)
	}
	outTrans, err := wOut.Slew(t.Vdd, wOut.EdgeDir())
	if err != nil {
		return measurement{}, fmt.Errorf("output transition: %w", err)
	}
	m := measurement{delay: tOut - tIn, outTrans: outTrans}
	if opts.WithWaves {
		m.outWave = wOut.Shifted(-tIn)
	}
	return m, nil
}
