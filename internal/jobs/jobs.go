// Package jobs is the timing-as-a-service layer: a long-running in-process
// job service that accepts batch sweep and STA configurations, queues them
// with priorities and per-tenant quotas behind a bounded backlog, shards
// each job's case space across the sweep worker pool by consistent hash on
// the case index, and serves results from a content-addressed store so
// resubmitting an identical configuration costs zero solves.
//
// The package wires together what the engine already provides as libraries:
// the bounded worker pool with bit-identical sharding (internal/sweep), the
// quarantine/keep-going resilience layer, per-job run artifacts
// (internal/obs) as audit trails, hierarchical tracing, and the telemetry
// registry — all behind a Submit/Get/Result request path that
// internal/obs/httpserver exposes over HTTP and cmd/serve boots as a
// daemon.
//
// Job identity is content-addressed: a configuration is normalized
// (defaults applied), canonically serialized, and hashed; execution details
// that provably do not change the numbers — worker count, shard count —
// live on the Manager, not in the configuration, so they never fragment the
// cache.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"noisewave/internal/eqwave"
)

// Experiment names accepted by Config.Experiment.
const (
	ExpTable1  = "table1"
	ExpPushout = "pushout"
	ExpSTA     = "sta"
)

// Config is the JSON body of one batch job. Exactly the scientific content
// lives here: two configurations with equal Config hash produce bit-equal
// results, and the manager's content-addressed store relies on that.
type Config struct {
	// Experiment selects the driver: table1 | pushout | sta.
	Experiment string `json:"experiment"`

	// Sweep jobs (table1, pushout).
	Config     string   `json:"config,omitempty"`      // crosstalk configuration: I | II (default I)
	Cases      int      `json:"cases,omitempty"`       // alignment cases (default 200 table1 / 100 pushout)
	P          int      `json:"p,omitempty"`           // technique sample count (default 35)
	RangeS     float64  `json:"range_s,omitempty"`     // alignment window in seconds (default 1e-9)
	Techniques []string `json:"techniques,omitempty"`  // table1 techniques (default: all)
	Seed       int64    `json:"seed,omitempty"`        // pushout Monte-Carlo seed
	MonteCarlo bool     `json:"monte_carlo,omitempty"` // pushout: random alignments
	KeepGoing  bool     `json:"keep_going,omitempty"`  // quarantine failing cases

	// STA jobs.
	Netlist   string            `json:"netlist,omitempty"`   // native netlist text
	Liberty   string            `json:"liberty,omitempty"`   // Liberty library text
	Wire      string            `json:"wire,omitempty"`      // ideal | elmore (default ideal)
	Technique string            `json:"technique,omitempty"` // noise conversion technique (default SGDP)
	Require   map[string]string `json:"require,omitempty"`   // net -> required arrival ("500ps")
}

// Submission errors. The HTTP layer maps ErrBacklogFull and ErrQuota to
// 429, ErrInvalidConfig to 400, and ErrClosed/ErrDraining to 503 with a
// Retry-After so clients back off through a restart.
var (
	ErrBacklogFull   = errors.New("jobs: backlog full")
	ErrQuota         = errors.New("jobs: tenant quota exceeded")
	ErrInvalidConfig = errors.New("jobs: invalid config")
	ErrClosed        = errors.New("jobs: manager closed")
	// ErrDraining rejects submissions while a graceful shutdown lets the
	// running jobs finish (cmd/serve -drain-timeout).
	ErrDraining = errors.New("jobs: manager draining for shutdown")
	// ErrDurable wraps a write-ahead-journal or result-store failure: the
	// submission could not be made durable, so it was not accepted.
	ErrDurable = errors.New("jobs: durable store failure")
	// ErrInterrupted marks a job that was running when the daemon died and
	// the RecoverInterrupt policy refused to re-run (see RecoverPolicy).
	ErrInterrupted = errors.New("jobs: interrupted by daemon crash")
)

// Normalized returns the config with defaults applied and every field
// validated — the canonical form the content hash is computed over.
func (c Config) Normalized() (Config, error) {
	switch c.Experiment {
	case ExpTable1, ExpPushout:
		if c.Config == "" {
			c.Config = "I"
		}
		c.Config = strings.ToUpper(c.Config)
		if c.Config != "I" && c.Config != "II" {
			return c, fmt.Errorf("%w: config %q (want I or II)", ErrInvalidConfig, c.Config)
		}
		if c.Cases <= 0 {
			if c.Experiment == ExpTable1 {
				c.Cases = 200
			} else {
				c.Cases = 100
			}
		}
		if c.P <= 0 {
			c.P = eqwave.DefaultP
		}
		if c.RangeS <= 0 {
			c.RangeS = 1e-9
		}
		for _, name := range c.Techniques {
			if _, err := eqwave.ByName(name); err != nil {
				return c, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
			}
		}
		if c.Experiment == ExpTable1 && (c.Seed != 0 || c.MonteCarlo) {
			return c, fmt.Errorf("%w: seed/monte_carlo apply to pushout jobs only", ErrInvalidConfig)
		}
		if c.Netlist != "" || c.Liberty != "" || c.Wire != "" || c.Technique != "" || len(c.Require) > 0 {
			return c, fmt.Errorf("%w: netlist/liberty/wire/technique/require apply to sta jobs only", ErrInvalidConfig)
		}
	case ExpSTA:
		if c.Netlist == "" {
			return c, fmt.Errorf("%w: sta job needs a netlist", ErrInvalidConfig)
		}
		if c.Liberty == "" {
			return c, fmt.Errorf("%w: sta job needs a liberty library", ErrInvalidConfig)
		}
		if c.Wire == "" {
			c.Wire = "ideal"
		}
		if c.Wire != "ideal" && c.Wire != "elmore" {
			return c, fmt.Errorf("%w: wire %q (want ideal or elmore)", ErrInvalidConfig, c.Wire)
		}
		if c.Technique == "" {
			c.Technique = "SGDP"
		}
		if _, err := eqwave.ByName(c.Technique); err != nil {
			return c, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		if c.Config != "" || c.Cases != 0 || c.P != 0 || c.RangeS != 0 ||
			len(c.Techniques) > 0 || c.Seed != 0 || c.MonteCarlo || c.KeepGoing {
			return c, fmt.Errorf("%w: sweep fields apply to table1/pushout jobs only", ErrInvalidConfig)
		}
	case "":
		return c, fmt.Errorf("%w: missing experiment", ErrInvalidConfig)
	default:
		return c, fmt.Errorf("%w: unknown experiment %q (want table1, pushout or sta)", ErrInvalidConfig, c.Experiment)
	}
	return c, nil
}

// Hash returns the content address of a *normalized* config: the SHA-256
// of its canonical JSON. encoding/json emits struct fields in declaration
// order and map keys sorted, so equal configs hash equally.
func (c Config) Hash() string {
	b, err := json.Marshal(c)
	if err != nil {
		// A Config is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("jobs: marshal config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	// StateInterrupted is terminal: the job was running when the previous
	// daemon process died, and the recovery policy (RecoverInterrupt)
	// marked it for inspection instead of re-running it.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateInterrupted
}

// Result is the JSON-serializable outcome of one job. Exactly one of the
// experiment payloads is set.
type Result struct {
	Experiment string          `json:"experiment"`
	Table1     *Table1Payload  `json:"table1,omitempty"`
	Pushout    *PushoutPayload `json:"pushout,omitempty"`
	STA        *STAPayload     `json:"sta,omitempty"`
	// Excluded counts sweep cases kept out of the statistics (degraded or
	// quarantined); Failures names each quarantined case.
	Excluded int             `json:"excluded,omitempty"`
	Failures []FailureRecord `json:"failures,omitempty"`
}

// FailureRecord is one quarantined sweep case, flattened for JSON.
type FailureRecord struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// Table1Payload is the table1 job result: the per-technique accuracy rows.
type Table1Payload struct {
	Config string          `json:"config"`
	Cases  int             `json:"cases"`
	P      int             `json:"p"`
	Stats  []TechniqueStat `json:"stats"`
}

// TechniqueStat is one accuracy row, bit-exact against the direct driver.
type TechniqueStat struct {
	Name       string  `json:"name"`
	MaxAbs     float64 `json:"max_abs_s"`
	AvgAbs     float64 `json:"avg_abs_s"`
	MeanSigned float64 `json:"mean_signed_s"`
	Failures   int     `json:"failures"`
	N          int     `json:"n"`
}

// PushoutPayload is the pushout job result: the delay-noise distribution.
type PushoutPayload struct {
	Config       string    `json:"config"`
	Cases        int       `json:"cases"`
	QuietArrival float64   `json:"quiet_arrival_s"`
	Mean         float64   `json:"mean_s"`
	Min          float64   `json:"min_s"`
	Max          float64   `json:"max_s"`
	P50          float64   `json:"p50_s"`
	P95          float64   `json:"p95_s"`
	Pushouts     []float64 `json:"pushouts_s"`
}

// STAPayload is the sta job result: per-output timing, the critical path
// and the slack report.
type STAPayload struct {
	Design     string        `json:"design"`
	Gates      int           `json:"gates"`
	Outputs    []NetTimingJS `json:"outputs"`
	WorstNet   string        `json:"worst_net"`
	WorstEdge  string        `json:"worst_edge"`
	WorstAT    float64       `json:"worst_arrival_s"`
	Path       []PathStepJS  `json:"critical_path"`
	Slacks     []SlackJS     `json:"slacks,omitempty"`
	WorstSlack *SlackJS      `json:"worst_slack,omitempty"`
}

// NetTimingJS is one net's rise/fall timing.
type NetTimingJS struct {
	Net         string  `json:"net"`
	RiseArrival float64 `json:"rise_arrival_s"`
	RiseTrans   float64 `json:"rise_trans_s"`
	FallArrival float64 `json:"fall_arrival_s"`
	FallTrans   float64 `json:"fall_trans_s"`
}

// PathStepJS is one hop of the critical path.
type PathStepJS struct {
	Net     string  `json:"net"`
	Edge    string  `json:"edge"`
	Arrival float64 `json:"arrival_s"`
	Trans   float64 `json:"trans_s"`
	ViaGate string  `json:"via_gate,omitempty"`
}

// SlackJS is one slack entry of the report.
type SlackJS struct {
	Net      string  `json:"net"`
	Edge     string  `json:"edge"`
	Arrival  float64 `json:"arrival_s"`
	Required float64 `json:"required_s"`
	Slack    float64 `json:"slack_s"`
}

// sortedRequireNets returns the require map's net names in sorted order so
// slack reports render deterministically.
func sortedRequireNets(require map[string]string) []string {
	nets := make([]string, 0, len(require))
	for net := range require {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	return nets
}
