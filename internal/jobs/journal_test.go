package jobs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"noisewave/internal/faultinject"
)

// testRecords is a small mixed-lifecycle record sequence.
func testRecords() []journalRecord {
	cfg := staConfig(100)
	return []journalRecord{
		{Type: recSubmitted, ID: "job-1", Seq: 1, Tenant: "a", Priority: 2,
			Hash: "h1", Config: &cfg, Time: time.Unix(1700000000, 0).UTC()},
		{Type: recRunning, ID: "job-1"},
		{Type: recDone, ID: "job-1", Hash: "h1", Time: time.Unix(1700000001, 0).UTC()},
		{Type: recSubmitted, ID: "job-2", Seq: 2, Tenant: "b", Hash: "h2", Config: &cfg},
		{Type: recFailed, ID: "job-2", Error: "solver diverged"},
		{Type: recShutdown, Time: time.Unix(1700000002, 0).UTC()},
	}
}

// TestJournalRoundTrip: records appended and fsync'd must replay verbatim
// after reopening the file.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalFile)
	j, recs, torn, err := openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || torn != 0 {
		t.Fatalf("fresh journal replayed %d records, torn=%d", len(recs), torn)
	}
	want := testRecords()
	for _, rec := range want {
		if err := j.append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	_, got, torn, err := openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Errorf("clean journal reports torn bytes %d", torn)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replayed records differ:\n got %+v\nwant %+v", got, want)
	}
}

// TestJournalTornTailEveryOffset truncates a journal at every byte offset
// and verifies replay yields exactly the whole-record prefix, reports the
// discarded tail, and physically truncates the file so a subsequent append
// lands on a frame boundary.
func TestJournalTornTailEveryOffset(t *testing.T) {
	recs := testRecords()
	var whole bytes.Buffer
	var bounds []int64 // cumulative frame end offsets
	for _, rec := range recs {
		buf, err := encodeFrame(rec)
		if err != nil {
			t.Fatal(err)
		}
		whole.Write(buf)
		bounds = append(bounds, int64(whole.Len()))
	}
	full := whole.Bytes()

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		// wantN = how many records end at or before the cut.
		wantN := 0
		for _, b := range bounds {
			if b <= cut {
				wantN++
			}
		}
		validEnd := int64(0)
		if wantN > 0 {
			validEnd = bounds[wantN-1]
		}

		dir := t.TempDir()
		path := filepath.Join(dir, journalFile)
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, got, torn, err := openJournal(path, nil)
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		if len(got) != wantN {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(got), wantN)
		}
		if torn != cut-validEnd {
			t.Fatalf("cut=%d: torn=%d, want %d", cut, torn, cut-validEnd)
		}
		// The handle must append cleanly after the truncation.
		if err := j.append(journalRecord{Type: recShutdown}); err != nil {
			t.Fatalf("cut=%d: append after truncate: %v", cut, err)
		}
		j.close()
		_, got2, torn2, err := openJournal(path, nil)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if torn2 != 0 || len(got2) != wantN+1 {
			t.Fatalf("cut=%d: after append reopen got %d records torn=%d, want %d torn=0",
				cut, len(got2), torn2, wantN+1)
		}
	}
}

// TestJournalCorruptFrameStopsReplay: a bit flip inside a frame fails its
// CRC and discards it plus everything after.
func TestJournalCorruptFrameStopsReplay(t *testing.T) {
	recs := testRecords()
	var buf bytes.Buffer
	var firstEnd int64
	for i, rec := range recs {
		b, err := encodeFrame(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		if i == 0 {
			firstEnd = int64(buf.Len())
		}
	}
	data := buf.Bytes()
	data[firstEnd+frameHeader+2] ^= 0x40 // flip a payload bit in record 2

	path := filepath.Join(t.TempDir(), journalFile)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, torn, err := openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("replayed %d records past a corrupt frame, want 1", len(got))
	}
	if torn != int64(len(data))-firstEnd {
		t.Errorf("torn=%d, want %d", torn, int64(len(data))-firstEnd)
	}
}

// TestJournalDiskFaultAppend: an injected disk fault fails the append with
// ErrDiskFault; in short-write mode the torn half-frame it lands is
// discarded by the next replay, so the journal is append-consistent.
func TestJournalDiskFaultAppend(t *testing.T) {
	for _, short := range []bool{false, true} {
		dir := t.TempDir()
		path := filepath.Join(dir, journalFile)
		inj := faultinject.New(faultinject.Config{
			DiskEvery: 1, DiskAfter: 1, DiskShortWrite: short,
		})
		j, _, _, err := openJournal(path, inj)
		if err != nil {
			t.Fatal(err)
		}
		recs := testRecords()
		if err := j.append(recs[0]); err != nil {
			t.Fatalf("short=%v: first append: %v", short, err)
		}
		err = j.append(recs[1])
		if !errors.Is(err, faultinject.ErrDiskFault) {
			t.Fatalf("short=%v: second append err = %v, want ErrDiskFault", short, err)
		}
		j.close()

		if short {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			b0, _ := encodeFrame(recs[0])
			if info.Size() <= int64(len(b0)) {
				t.Fatalf("short write landed nothing: size=%d", info.Size())
			}
		}
		_, got, _, err := openJournal(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].ID != recs[0].ID {
			t.Errorf("short=%v: replay after fault got %d records, want the 1 durable one",
				short, len(got))
		}
	}
}

// TestJournalCompact: compaction rewrites the file to exactly the given
// records, atomically, and the handle keeps appending afterwards.
func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalFile)
	j, _, _, err := openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range testRecords() {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	keep := testRecords()[:2]
	if err := j.compact(keep); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if j.appends != 0 {
		t.Errorf("append counter not reset by compaction: %d", j.appends)
	}
	if err := j.append(journalRecord{Type: recShutdown}); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	j.close()

	_, got, torn, err := openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(got) != len(keep)+1 {
		t.Fatalf("after compact: %d records torn=%d, want %d torn=0", len(got), torn, len(keep)+1)
	}
	if !reflect.DeepEqual(got[:len(keep)], keep) {
		t.Errorf("compacted records differ:\n got %+v\nwant %+v", got[:len(keep)], keep)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("compaction left its temp file behind")
	}
}
