package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"noisewave/internal/faultinject"
	"noisewave/internal/telemetry"
)

// copyTree copies the durable data directory, simulating what a crashed
// process leaves on disk: the manager that owns dir keeps running, so the
// copy is a moment-in-time disk image taken without any shutdown path.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		w, err := os.Create(out)
		if err != nil {
			return err
		}
		if _, err := io.Copy(w, in); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	})
	if err != nil {
		t.Fatalf("copy data dir: %v", err)
	}
}

// resultJSON canonicalizes a result for bit-identity comparison across the
// JSON round-trip a rehydrated result takes.
func resultJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDurableResultsSurviveRestart: jobs completed before a clean Drain are
// rehydrated on the next Open with bit-identical results, the boot reports
// the clean shutdown, and a resubmission is a durable cache hit that runs
// zero new solves.
func TestDurableResultsSurviveRestart(t *testing.T) {
	lib := testLibertyText(t)
	dir := t.TempDir()
	m, err := Open(Options{DataDir: dir, Runners: 2, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]Config, 3)
	want := make(map[string]string) // job ID -> result JSON
	for i := range cfgs {
		cfgs[i] = staConfig(60 + 10*i)
		cfgs[i].Liberty = lib
		j, err := m.Submit(cfgs[i], "durable", i)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if j.State() != StateDone {
			t.Fatalf("job %s: state %s err %v", j.ID, j.State(), j.Err())
		}
		want[j.ID] = resultJSON(t, j.Result())
	}
	m.Drain(time.Second)

	reg := telemetry.New()
	m2, err := Open(Options{DataDir: dir, Runners: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rep := m2.Recovery()
	if !rep.CleanShutdown {
		t.Errorf("drained shutdown not detected: %+v", rep)
	}
	if rep.Recovered() {
		t.Errorf("clean restart reported crash recovery: %+v", rep)
	}
	if rep.Rehydrated != len(cfgs) {
		t.Errorf("rehydrated %d jobs, want %d", rep.Rehydrated, len(cfgs))
	}
	for id, wantJSON := range want {
		j, ok := m2.Get(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		if j.State() != StateDone {
			t.Fatalf("job %s rehydrated as %s", id, j.State())
		}
		if got := resultJSON(t, j.Result()); got != wantJSON {
			t.Errorf("job %s result changed across restart:\n got %s\nwant %s", id, got, wantJSON)
		}
	}

	// Resubmitting a pre-restart config must be a cache hit with zero new
	// solves — the durable store replaces the work.
	before := reg.Snapshot()
	j, err := m2.Submit(cfgs[0], "other-tenant", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit || j.State() != StateDone {
		t.Fatalf("resubmission after restart not a cache hit: hit=%v state=%s", j.CacheHit, j.State())
	}
	delta := reg.Snapshot().Delta(before)
	for name, v := range delta.Counters {
		if strings.HasPrefix(name, "spice.") && v != 0 {
			t.Errorf("durable cache hit ran solves: %s moved by %d", name, v)
		}
	}
	for name, ts := range delta.Timers {
		if strings.HasPrefix(name, "spice.") && ts.Count != 0 {
			t.Errorf("durable cache hit ran work: timer %s fired %d times", name, ts.Count)
		}
	}
	for name, hs := range delta.Histograms {
		if (strings.HasPrefix(name, "spice.") || name == "jobs.run_seconds") && hs.Count != 0 {
			t.Errorf("durable cache hit ran work: histogram %s fired %d times", name, hs.Count)
		}
	}
}

// TestCrashRecoveryProperty is the crash-injection property test: build a
// durable workload, image the data directory as a crash would leave it,
// truncate the journal at a seeded random offset (the unsynced tail), and
// reopen. For every seed: no acknowledged job is lost, every recovered job
// completes with a bit-identical result, and nothing torn is ever served.
func TestCrashRecoveryProperty(t *testing.T) {
	lib := testLibertyText(t)
	for seed := 0; seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			dir := t.TempDir()
			m, err := Open(Options{DataDir: dir, Runners: 2, Telemetry: telemetry.New()})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			// Mixed-priority workload; every config distinct.
			nJobs := 3 + rng.Intn(4)
			wantByHash := make(map[string]string) // hash -> direct-run result JSON
			for i := 0; i < nJobs; i++ {
				cfg := staConfig(40 + 5*i + 101*seed)
				cfg.Liberty = lib
				j, err := m.Submit(cfg, fmt.Sprintf("tenant-%d", i%2), rng.Intn(3))
				if err != nil {
					t.Fatal(err)
				}
				waitDone(t, j)
				if j.State() != StateDone {
					t.Fatalf("workload job failed: %v", j.Err())
				}
				wantByHash[j.Hash] = resultJSON(t, j.Result())
			}

			// Crash image: copy the live data dir, then cut the journal at a
			// random offset — everything past the cut is the unsynced tail.
			crashDir := t.TempDir()
			copyTree(t, dir, crashDir)
			jp := filepath.Join(crashDir, journalFile)
			info, err := os.Stat(jp)
			if err != nil {
				t.Fatal(err)
			}
			cut := rng.Int63n(info.Size() + 1)
			if err := os.Truncate(jp, cut); err != nil {
				t.Fatal(err)
			}

			// The acknowledged set of the crashed world: submitted records in
			// the valid prefix. (An append whose fsync never finished was
			// never acknowledged to a client.)
			f, err := os.Open(jp)
			if err != nil {
				t.Fatal(err)
			}
			prefix, valid := readJournal(f)
			f.Close()
			acked := make(map[string]journalRecord)
			for _, rec := range prefix {
				if rec.Type == recSubmitted {
					acked[rec.ID] = rec
				}
			}

			reg := telemetry.New()
			m2, err := Open(Options{DataDir: crashDir, Runners: 2, Telemetry: reg})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer m2.Close()
			rep := m2.Recovery()
			if wantTorn := cut - valid; rep.TornBytes != wantTorn {
				t.Errorf("torn bytes = %d, want %d", rep.TornBytes, wantTorn)
			}

			// Property 1: no acknowledged job lost. Property 2: every
			// recovered job completes with a result bit-identical to the
			// pre-crash run (rescued from the store or recomputed — content
			// addressing makes them indistinguishable).
			for id, rec := range acked {
				j, ok := m2.Get(id)
				if !ok {
					t.Fatalf("acknowledged job %s lost (cut=%d)", id, cut)
				}
				waitDone(t, j)
				if j.State() != StateDone {
					t.Fatalf("job %s recovered into %s: %v", id, j.State(), j.Err())
				}
				if got := resultJSON(t, j.Result()); got != wantByHash[rec.Hash] {
					t.Errorf("job %s result not bit-identical after crash:\n got %s\nwant %s",
						id, got, wantByHash[rec.Hash])
				}
			}

			// Property 3: a config whose result was durable pre-crash is a
			// cache hit with zero new solves when resubmitted post-recovery.
			store, err := openResultStore(filepath.Join(crashDir, resultsDir), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range acked {
				if _, ok := store.get(rec.Hash); !ok || rec.Config == nil {
					continue
				}
				before := reg.Snapshot()
				j, err := m2.Submit(*rec.Config, "resubmit", 0)
				if err != nil {
					t.Fatal(err)
				}
				if !j.CacheHit || j.State() != StateDone {
					t.Fatalf("resubmission of durable %s not a cache hit", rec.Hash)
				}
				delta := reg.Snapshot().Delta(before)
				for name, v := range delta.Counters {
					if strings.HasPrefix(name, "spice.") && v != 0 {
						t.Errorf("cache hit ran solves: %s moved by %d", name, v)
					}
				}
				break
			}
		})
	}
}

// hookRunning installs a testHookRunning for one test. Tests using it must
// not run in parallel (package-global hook).
func hookRunning(t *testing.T, hook func(*Job)) {
	t.Helper()
	testHookRunning = hook
	t.Cleanup(func() { testHookRunning = nil })
}

// TestDrainResumesQueuedAndRunningJobs: a drain that times out on a stuck
// running job leaves both it and the queued backlog journaled as
// unfinished, and the next Open re-runs them to completion in one pass.
func TestDrainResumesQueuedAndRunningJobs(t *testing.T) {
	lib := testLibertyText(t)
	dir := t.TempDir()

	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var once sync.Once
	hookRunning(t, func(j *Job) {
		once.Do(func() { entered.Done() })
		<-release
	})

	m, err := Open(Options{DataDir: dir, Runners: 1, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	cfgA := staConfig(300)
	cfgA.Liberty = lib
	cfgB := staConfig(310)
	cfgB.Liberty = lib
	jA, err := m.Submit(cfgA, "drain", 1)
	if err != nil {
		t.Fatal(err)
	}
	entered.Wait() // jA is running, pinned on the hook
	jB, err := m.Submit(cfgB, "drain", 0)
	if err != nil {
		t.Fatal(err)
	}

	// While draining, admission must answer ErrDraining (the HTTP 503).
	// Probes that race ahead of Drain taking the lock get admitted and are
	// counted into the expected requeue set.
	drained := make(chan struct{})
	go func() {
		m.Drain(50 * time.Millisecond)
		close(drained)
	}()
	probe := staConfig(999)
	probe.Liberty = lib
	admittedProbes := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := m.Submit(probe, "late", 0)
		if errors.Is(err, ErrDraining) || errors.Is(err, ErrClosed) {
			break
		}
		if err == nil {
			admittedProbes++ // landed before draining flipped; resumes later
		} else {
			t.Fatalf("probe submit: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("draining manager kept admitting jobs")
		}
		time.Sleep(time.Millisecond)
	}
	close(release) // let the canceled runner exit
	<-drained

	if jB.State() != StateQueued {
		t.Fatalf("queued job dispatched during drain: %s", jB.State())
	}

	testHookRunning = nil
	m2, err := Open(Options{DataDir: dir, Runners: 1, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	// The pinned job either observed the cancel (replays as
	// running-at-crash: resumed or rescued) or raced past it and completed
	// durably after the deadline (rehydrated done) — both are loss-free.
	rep := m2.Recovery()
	if rep.Resumed+rep.Rescued+rep.Rehydrated != 1 {
		t.Errorf("recovery = %+v, want exactly 1 resumed/rescued/rehydrated", rep)
	}
	if rep.Requeued != 1+admittedProbes {
		t.Errorf("recovery = %+v, want %d requeued", rep, 1+admittedProbes)
	}
	for _, id := range []string{jA.ID, jB.ID} {
		j, ok := m2.Get(id)
		if !ok {
			t.Fatalf("job %s lost across drain", id)
		}
		waitDone(t, j)
		if j.State() != StateDone {
			t.Errorf("job %s: state %s err %v", id, j.State(), j.Err())
		}
	}
}

// TestRecoverInterruptPolicy: with RecoverInterrupt, a job that was running
// at crash time is marked terminal with ErrInterrupted instead of
// re-running; queued jobs still resume.
func TestRecoverInterruptPolicy(t *testing.T) {
	lib := testLibertyText(t)
	dir := t.TempDir()

	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var once sync.Once
	hookRunning(t, func(j *Job) {
		once.Do(func() { entered.Done() })
		<-release
	})

	m, err := Open(Options{DataDir: dir, Runners: 1, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	cfgA := staConfig(400)
	cfgA.Liberty = lib
	cfgB := staConfig(410)
	cfgB.Liberty = lib
	jA, err := m.Submit(cfgA, "intr", 0)
	if err != nil {
		t.Fatal(err)
	}
	entered.Wait()
	jB, err := m.Submit(cfgB, "intr", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Crash image taken while jA runs and jB queues.
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	close(release)
	m.Close()

	testHookRunning = nil
	m2, err := Open(Options{
		DataDir: crashDir, Runners: 1, Recover: RecoverInterrupt,
		Telemetry: telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rep := m2.Recovery()
	if rep.Interrupted != 1 || rep.Requeued != 1 {
		t.Fatalf("recovery = %+v, want 1 interrupted + 1 requeued", rep)
	}
	ja2, ok := m2.Get(jA.ID)
	if !ok {
		t.Fatal("interrupted job lost")
	}
	if ja2.State() != StateInterrupted || !errors.Is(ja2.Err(), ErrInterrupted) {
		t.Errorf("crashed running job: state=%s err=%v, want interrupted/ErrInterrupted",
			ja2.State(), ja2.Err())
	}
	jb2, ok := m2.Get(jB.ID)
	if !ok {
		t.Fatal("queued job lost")
	}
	waitDone(t, jb2)
	if jb2.State() != StateDone {
		t.Errorf("queued job after interrupt recovery: %s (%v)", jb2.State(), jb2.Err())
	}
}

// TestSubmitAfterCloseReturnsErrClosed: the typed sentinel the HTTP layer
// maps to 503, for both manager flavors.
func TestSubmitAfterCloseReturnsErrClosed(t *testing.T) {
	lib := testLibertyText(t)
	cfg := staConfig(500)
	cfg.Liberty = lib

	mem := NewManager(Options{Telemetry: telemetry.New()})
	mem.Close()
	if _, err := mem.Submit(cfg, "late", 0); !errors.Is(err, ErrClosed) {
		t.Errorf("in-memory Submit after Close: err = %v, want ErrClosed", err)
	}

	dur, err := Open(Options{DataDir: t.TempDir(), Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	dur.Close()
	if _, err := dur.Submit(cfg, "late", 0); !errors.Is(err, ErrClosed) {
		t.Errorf("durable Submit after Close: err = %v, want ErrClosed", err)
	}
}

// TestJournalCompactionBoundsState: with tight retention, a long stream of
// terminal jobs keeps both the journal and the in-memory listing bounded,
// while evicted results stay durable — a resubmission is still a zero-solve
// durable cache hit.
func TestJournalCompactionBoundsState(t *testing.T) {
	lib := testLibertyText(t)
	dir := t.TempDir()
	reg := telemetry.New()
	m, err := Open(Options{
		DataDir: dir, Runners: 1, RetainTerminal: 2, CompactEvery: 8,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	first := staConfig(700)
	first.Liberty = lib
	for i := 0; i < n; i++ {
		cfg := staConfig(700 + i)
		cfg.Liberty = lib
		j, err := m.Submit(cfg, "bound", 0)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if j.State() != StateDone {
			t.Fatalf("job %d failed: %v", i, j.Err())
		}
	}
	if reg.Counter("jobs.journal_compactions").Value() == 0 {
		t.Error("no compaction fired across the workload")
	}
	// Between compactions up to CompactEvery appends (~CompactEvery/3 jobs)
	// accumulate past the retention window; the listing must stay well
	// bounded below the workload size either way.
	if got := len(m.Jobs()); got > 2+8 {
		t.Errorf("job listing holds %d jobs, want <= retention+CompactEvery slack", got)
	}
	m.Drain(time.Second)

	m2, err := Open(Options{DataDir: dir, Runners: 1, RetainTerminal: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Recovery().Rehydrated; got > 2+8 {
		t.Errorf("restart rehydrated %d jobs, want <= retention+CompactEvery slack", got)
	}
	// Boot-time compaction trims the listing to exactly the retention window.
	if got := len(m2.Jobs()); got != 2 {
		t.Errorf("post-compaction listing holds %d jobs, want RetainTerminal=2", got)
	}
	// The first config was evicted from the journal long ago; its result
	// must still be durable.
	before := reg.Snapshot()
	j, err := m2.Submit(first, "bound", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit || j.State() != StateDone {
		t.Fatalf("evicted config not served from the durable store: hit=%v state=%s",
			j.CacheHit, j.State())
	}
	delta := reg.Snapshot().Delta(before)
	if delta.Counters["jobs.durable_cache_hits"] != 1 {
		t.Errorf("jobs.durable_cache_hits delta = %d, want 1",
			delta.Counters["jobs.durable_cache_hits"])
	}
	for name, v := range delta.Counters {
		if strings.HasPrefix(name, "spice.") && v != 0 {
			t.Errorf("durable cache hit ran solves: %s moved by %d", name, v)
		}
	}
}

// TestDurableSubmitFailsClosedOnJournalFault: when the acknowledgement
// append fails, Submit must reject with ErrDurable — never acknowledge a
// job that would not survive a crash — and must not register the job.
func TestDurableSubmitFailsClosedOnJournalFault(t *testing.T) {
	lib := testLibertyText(t)
	reg := telemetry.New()
	// Durable write 1 is the boot-time compaction (must succeed); write 2,
	// the acknowledgement append, fails.
	m, err := Open(Options{
		DataDir: t.TempDir(), Runners: 1, Telemetry: reg,
		Disk: faultinject.New(faultinject.Config{DiskEvery: 1, DiskAfter: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cfg := staConfig(800)
	cfg.Liberty = lib
	_, err = m.Submit(cfg, "fault", 0)
	if !errors.Is(err, ErrDurable) {
		t.Fatalf("Submit with failing journal: err = %v, want ErrDurable", err)
	}
	if reg.Counter("jobs.rejected_durable").Value() != 1 {
		t.Errorf("jobs.rejected_durable = %d, want 1",
			reg.Counter("jobs.rejected_durable").Value())
	}
	if got := len(m.Jobs()); got != 0 {
		t.Errorf("rejected submission registered %d jobs", got)
	}
}

// TestResultStorePutFaultFailsJob: a result that cannot be made durable
// fails the job with ErrDurable rather than acknowledging a completion a
// crash would lose; nothing lands under the final artifact path.
func TestResultStorePutFaultFailsJob(t *testing.T) {
	lib := testLibertyText(t)
	dir := t.TempDir()
	reg := telemetry.New()
	// Durable writes 1 (boot compaction) and 2 (the acknowledgement append)
	// must succeed; writes 3+ — the running record, then the result-store
	// put — fail.
	m, err := Open(Options{
		DataDir: dir, Runners: 1, Telemetry: reg,
		Disk: faultinject.New(faultinject.Config{DiskEvery: 1, DiskAfter: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cfg := staConfig(810)
	cfg.Liberty = lib
	j, err := m.Submit(cfg, "fault", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateFailed || !errors.Is(j.Err(), ErrDurable) {
		t.Fatalf("job with failing store: state=%s err=%v, want failed/ErrDurable",
			j.State(), j.Err())
	}
	if reg.Counter("jobs.store_errors").Value() == 0 {
		t.Error("jobs.store_errors not counted")
	}
	store, err := openResultStore(filepath.Join(dir, resultsDir), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.get(j.Hash); ok {
		t.Error("failed put is visible under the final artifact path")
	}
}
