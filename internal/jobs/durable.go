package jobs

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Durable layout under Options.DataDir:
//
//	<data>/journal.wal   CRC-framed write-ahead journal of job lifecycle
//	<data>/results/      content-addressed result store (<hash>.json)
//
// The contract: Submit fsyncs the submitted record before it returns, so
// any job a client saw acknowledged survives kill -9; a result is written
// to the store (temp + rename) before its done record is journaled, so a
// done record always has its artifact; and a job that was running at crash
// time is detected on boot by its missing terminal record.

// Durable file names inside DataDir.
const (
	journalFile = "journal.wal"
	resultsDir  = "results"
)

// RecoverPolicy selects what boot-time replay does with jobs that were
// *running* when the previous process died.
type RecoverPolicy int

const (
	// RecoverRequeue re-enqueues crashed in-flight jobs (the default).
	// Re-running is idempotent: results are content-addressed, and if a
	// racing twin already finished, the durable cache satisfies the job
	// with zero new solves.
	RecoverRequeue RecoverPolicy = iota
	// RecoverInterrupt marks crashed in-flight jobs terminal with
	// ErrInterrupted instead of re-running them — for deployments where a
	// half-run job must be inspected, not silently retried.
	RecoverInterrupt
)

// RecoveryReport summarizes what boot-time replay found. Retrieve it with
// Manager.Recovery.
type RecoveryReport struct {
	// CleanShutdown is true when the journal ends with the clean-shutdown
	// record Drain writes — the previous process exited on purpose.
	CleanShutdown bool
	// TornBytes is the size of the corrupt journal tail discarded (a crash
	// mid-append); 0 on a clean journal.
	TornBytes int64
	// Records is how many whole journal records replayed.
	Records int
	// Rehydrated counts terminal jobs restored (done jobs reconnect to
	// their stored result; failed/canceled keep their recorded outcome).
	Rehydrated int
	// Requeued counts jobs that were still queued and went back into the
	// priority queue.
	Requeued int
	// Resumed counts jobs that were running at crash time and were
	// re-enqueued (RecoverRequeue).
	Resumed int
	// Rescued counts jobs that were running at crash time but whose result
	// was already durable (the crash hit between the store put and the
	// done record, or a twin finished) — completed with zero new solves.
	Rescued int
	// Interrupted counts running-at-crash jobs marked terminal with
	// ErrInterrupted (RecoverInterrupt).
	Interrupted int
}

// Recovered reports whether replay had to repair anything a crash left
// behind (as opposed to resuming a cleanly drained queue).
func (r RecoveryReport) Recovered() bool {
	return r.Resumed > 0 || r.Rescued > 0 || r.Interrupted > 0 || r.TornBytes > 0
}

// Recovery returns the boot-time replay report (zero for an in-memory
// manager or a first boot on an empty DataDir).
func (m *Manager) Recovery() RecoveryReport { return m.recovery }

// Open starts a manager. With Options.DataDir set it is the durable
// constructor: it opens (creating if needed) the write-ahead journal and
// the content-addressed result store, replays the journal — rehydrating
// terminal jobs, re-enqueueing acknowledged-but-unfinished ones in
// priority order per Options.Recover — compacts the journal, and only then
// starts the runner goroutines. With an empty DataDir it is equivalent to
// NewManager and never fails.
func Open(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		reg:        opts.Telemetry,
		ctx:        ctx,
		stop:       stop,
		byID:       make(map[string]*Job),
		byHash:     make(map[string]*Job),
		tenantLoad: make(map[string]int),
	}
	m.cond = sync.NewCond(&m.mu)

	if opts.DataDir != "" {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			stop()
			return nil, fmt.Errorf("jobs: create data dir: %w", err)
		}
		store, err := openResultStore(filepath.Join(opts.DataDir, resultsDir), opts.Disk)
		if err != nil {
			stop()
			return nil, err
		}
		jn, recs, torn, err := openJournal(filepath.Join(opts.DataDir, journalFile), opts.Disk)
		if err != nil {
			stop()
			return nil, err
		}
		m.store, m.journal = store, jn
		if err := m.replay(recs, torn); err != nil {
			jn.close()
			stop()
			return nil, err
		}
	}

	for i := 0; i < opts.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m, nil
}

// replayState accumulates one job's records during replay.
type replayState struct {
	sub     journalRecord
	running bool
	// runningAt is the recRunning record's timestamp; terminal rehydrated
	// jobs keep it as Started so their timeline survives the restart.
	runningAt time.Time
	term      *journalRecord
}

// replay rebuilds the manager's state from the journal records, then
// compacts the journal so restart cost stays bounded no matter how many
// restarts preceded this one. Caller is single-threaded (no runners yet).
func (m *Manager) replay(recs []journalRecord, torn int64) error {
	rep := RecoveryReport{TornBytes: torn, Records: len(recs)}
	rep.CleanShutdown = len(recs) > 0 && recs[len(recs)-1].Type == recShutdown

	byID := make(map[string]*replayState)
	var order []*replayState
	for i := range recs {
		rec := recs[i]
		switch rec.Type {
		case recSubmitted:
			st := &replayState{sub: rec}
			byID[rec.ID] = st
			order = append(order, st)
		case recRunning:
			if st := byID[rec.ID]; st != nil {
				st.running = true
				st.runningAt = rec.Time
			}
		case recDone, recFailed, recCanceled, recInterrupted:
			if st := byID[rec.ID]; st != nil {
				st.term = &recs[i]
			}
		case recShutdown:
			// Ordering marker only.
		}
	}

	for _, st := range order {
		if st.sub.Seq > m.seq {
			m.seq = st.sub.Seq
		}
		if st.sub.Config == nil {
			continue // unreadable submitted record; nothing to rebuild from
		}
		j := &Job{
			ID: st.sub.ID, Tenant: st.sub.Tenant, Priority: st.sub.Priority,
			Hash: st.sub.Hash, CacheHit: st.sub.CacheHit,
			cfg: *st.sub.Config, seq: st.sub.Seq,
			doneCh: make(chan struct{}),
		}
		j.created = st.sub.Time

		if st.term != nil {
			// A terminal job's running timestamp is history, not live state:
			// keep it so GET /jobs/{id} reconstructs the full timeline.
			j.started = st.runningAt
			switch st.term.Type {
			case recDone:
				if sr, ok := m.store.get(j.Hash); ok {
					m.rehydrateDone(j, sr, st.term.Time)
					rep.Rehydrated++
					continue
				}
				// Done record without its artifact (operator deleted the
				// store?): fall through and re-run — content addressing
				// makes that safe.
			case recFailed:
				msg := st.term.Error
				if msg == "" {
					msg = "failed before the previous shutdown"
				}
				m.rehydrateTerminal(j, StateFailed, errors.New(msg), st.term.Time)
				rep.Rehydrated++
				continue
			case recCanceled:
				m.rehydrateTerminal(j, StateCanceled, context.Canceled, st.term.Time)
				rep.Rehydrated++
				continue
			case recInterrupted:
				m.rehydrateTerminal(j, StateInterrupted, ErrInterrupted, st.term.Time)
				rep.Rehydrated++
				continue
			}
		}

		// Acknowledged but not terminal: the crash/restart interrupted it.
		if sr, ok := m.store.get(j.Hash); ok {
			// Its own put raced the crash, or an identical twin finished:
			// the result is durable, so the job completes without re-running.
			j.started = st.runningAt
			m.rehydrateDone(j, sr, j.created)
			rep.Rescued++
			continue
		}
		if st.running && m.opts.Recover == RecoverInterrupt {
			j.started = st.runningAt
			m.rehydrateTerminal(j, StateInterrupted, ErrInterrupted, time.Time{})
			m.appendLocked(journalRecord{Type: recInterrupted, ID: j.ID, Time: j.created})
			rep.Interrupted++
			continue
		}
		// Going back into the queue: any previous running timestamp is
		// stale — the timeline restarts at "queued".
		j.started = time.Time{}
		j.state = StateQueued
		heap.Push(&m.pending, j)
		m.byID[j.ID] = j
		m.tenantLoad[j.Tenant]++
		if st.running {
			rep.Resumed++
		} else {
			rep.Requeued++
		}
	}

	m.recovery = rep
	m.reg.Gauge("jobs.queue_depth").Set(float64(len(m.pending)))
	if err := m.journal.compact(m.liveRecords()); err != nil {
		return err
	}
	return nil
}

// rehydrateDone restores a terminal done job sharing the stored result.
func (m *Manager) rehydrateDone(j *Job, sr *storedResult, finished time.Time) {
	j.state = StateDone
	j.result = sr.Result
	j.done, j.total = sr.Done, sr.Total
	j.finished = finished
	close(j.doneCh)
	m.byID[j.ID] = j
	if _, ok := m.byHash[j.Hash]; !ok {
		m.byHash[j.Hash] = j
	}
}

// rehydrateTerminal restores a failed/canceled/interrupted job.
func (m *Manager) rehydrateTerminal(j *Job, state State, err error, finished time.Time) {
	j.state = state
	j.err = err
	j.finished = finished
	close(j.doneCh)
	m.byID[j.ID] = j
}

// liveRecords renders the manager's current state as the minimal journal:
// every non-terminal job (submitted, plus running marker), and the most
// recent Options.RetainTerminal terminal jobs. Jobs older than the
// retention window drop out of the journal — and out of byID, bounding
// both — while their results stay in the content-addressed store, so
// resubmitting them is still a zero-solve durable cache hit. Caller holds
// m.mu (or is the single-threaded replay).
func (m *Manager) liveRecords() []journalRecord {
	all := make([]*Job, 0, len(m.byID))
	for _, j := range m.byID {
		all = append(all, j)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].seq < all[b].seq })

	terminal := 0
	for _, j := range all {
		if j.stateLocked().Terminal() {
			terminal++
		}
	}
	dropTerminal := terminal - m.opts.RetainTerminal
	var recs []journalRecord
	for _, j := range all {
		j.mu.Lock()
		state, jerr := j.state, j.err
		created, started, finished := j.created, j.started, j.finished
		j.mu.Unlock()
		if state.Terminal() && dropTerminal > 0 {
			dropTerminal--
			delete(m.byID, j.ID)
			continue
		}
		cfg := j.cfg
		recs = append(recs, journalRecord{
			Type: recSubmitted, ID: j.ID, Seq: j.seq, Tenant: j.Tenant,
			Priority: j.Priority, Hash: j.Hash, CacheHit: j.CacheHit,
			Config: &cfg, Time: created,
		})
		// The running marker (with its timestamp) survives compaction even
		// for terminal jobs, so their timeline survives any number of
		// restarts.
		if !started.IsZero() && state != StateQueued {
			recs = append(recs, journalRecord{Type: recRunning, ID: j.ID, Time: started})
		}
		switch state {
		case StateQueued:
		case StateRunning:
			if started.IsZero() {
				recs = append(recs, journalRecord{Type: recRunning, ID: j.ID})
			}
		case StateDone:
			recs = append(recs, journalRecord{Type: recDone, ID: j.ID, Hash: j.Hash, Time: finished})
		case StateFailed:
			recs = append(recs, journalRecord{Type: recFailed, ID: j.ID, Error: errString(jerr), Time: finished})
		case StateCanceled:
			recs = append(recs, journalRecord{Type: recCanceled, ID: j.ID, Time: finished})
		case StateInterrupted:
			recs = append(recs, journalRecord{Type: recInterrupted, ID: j.ID, Time: finished})
		}
	}
	return recs
}

// stateLocked returns the state taking the job's own lock.
func (j *Job) stateLocked() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// appendLocked journals one record, best-effort for non-acknowledgement
// records: an append failure is counted (jobs.journal_errors) but does not
// fail the in-memory transition — the worst a lost transition record costs
// is one idempotent re-run after the next restart. Submit's acknowledgement
// append is the exception and checks the error itself. Caller holds m.mu.
func (m *Manager) appendLocked(rec journalRecord) {
	if m.journal == nil {
		return
	}
	if err := m.journal.append(rec); err != nil {
		m.reg.Counter("jobs.journal_errors").Inc()
		return
	}
	m.maybeCompactLocked()
}

// maybeCompactLocked rewrites the journal once enough records accumulated.
// Caller holds m.mu.
func (m *Manager) maybeCompactLocked() {
	if m.journal == nil || m.journal.appends < m.opts.CompactEvery {
		return
	}
	if err := m.journal.compact(m.liveRecords()); err != nil {
		m.reg.Counter("jobs.journal_errors").Inc()
	} else {
		m.reg.Counter("jobs.journal_compactions").Inc()
	}
}

// Drain is the graceful shutdown: stop admitting (Submit returns
// ErrDraining), stop dispatching queued jobs, give running jobs up to
// timeout to finish, cancel whatever is still running *without* journaling
// a terminal record — so the next boot re-runs them — then journal the
// clean-shutdown record and release the journal. Queued jobs stay queued
// in the journal and resume on the next boot in priority order. Idempotent
// and safe to call instead of Close.
func (m *Manager) Drain(timeout time.Duration) {
	m.mu.Lock()
	if m.closed || m.draining {
		m.mu.Unlock()
		return
	}
	m.draining = true
	m.cond.Broadcast() // idle runners exit; busy ones finish their job
	m.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		active := m.active
		m.mu.Unlock()
		if active == 0 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Past the deadline: cancel stragglers. shuttingDown suppresses their
	// terminal journal records so the next boot treats them as
	// running-at-crash and re-runs them.
	m.mu.Lock()
	m.shuttingDown = true
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()

	m.mu.Lock()
	m.closed = true
	m.reg.Gauge("jobs.queue_depth").Set(0)
	m.reg.Gauge("jobs.active").Set(0)
	if m.journal != nil {
		if err := m.journal.append(journalRecord{Type: recShutdown, Time: time.Now()}); err != nil {
			m.reg.Counter("jobs.journal_errors").Inc()
		}
		m.journal.close()
	}
	m.mu.Unlock()
}
