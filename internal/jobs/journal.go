package jobs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"noisewave/internal/faultinject"
)

// The write-ahead journal is the durable record of every job lifecycle
// transition. Each record is framed as
//
//	[4-byte little-endian payload length][4-byte CRC32-C of payload][payload]
//
// where the payload is the canonical JSON of a journalRecord. Appends are
// fsync'd before they are acknowledged, so a record that made a client see
// a 202 survives any crash. Replay reads records until the first torn or
// corrupt frame — the unsynced tail of a crash — and truncates the file
// back to the last whole record, so the journal is append-consistent after
// any kill point.
//
// The journal stays bounded by compaction: the manager periodically
// rewrites it (temp file + rename) with only the live state — queued and
// running jobs in full, plus a bounded window of recent terminal jobs.
// Results themselves never live in the journal; they live in the
// content-addressed resultStore keyed by config hash, so a done record is a
// few hundred bytes regardless of payload size.

// recType tags one journal record.
type recType string

const (
	recSubmitted recType = "submitted"
	recRunning   recType = "running"
	recDone      recType = "done"
	recFailed    recType = "failed"
	recCanceled  recType = "canceled"
	// recInterrupted marks a job the recovery pass refused to re-run
	// (RecoverInterrupt policy): it was running when the daemon died.
	recInterrupted recType = "interrupted"
	// recShutdown is the clean-shutdown marker Drain writes last; a boot
	// that replays it as the final record knows the daemon exited on
	// purpose rather than crashed.
	recShutdown recType = "shutdown"
)

// journalRecord is the JSON payload of one frame. Submitted records carry
// the full config (the journal is the only durable copy of a queued job);
// every other type is a small transition keyed by job ID.
type journalRecord struct {
	Type     recType   `json:"type"`
	ID       string    `json:"id,omitempty"`
	Seq      int64     `json:"seq,omitempty"`
	Tenant   string    `json:"tenant,omitempty"`
	Priority int       `json:"priority,omitempty"`
	Hash     string    `json:"hash,omitempty"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	Config   *Config   `json:"config,omitempty"`
	Error    string    `json:"error,omitempty"`
	Time     time.Time `json:"time,omitzero"`
}

// crcTable is Castagnoli — hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader = 8 // 4-byte length + 4-byte CRC
	// maxFrame bounds a single record; anything larger in the length field
	// is treated as corruption, not an allocation request.
	maxFrame = 64 << 20
)

// journal is the append handle plus replay/compaction machinery. It is not
// internally synchronized: the Manager serializes access under its mutex.
type journal struct {
	path string
	f    *os.File
	inj  *faultinject.Injector
	// appends counts records written since open/compaction, the
	// compaction trigger.
	appends int
}

// encodeFrame renders one record to its framed byte form.
func encodeFrame(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("jobs: marshal journal record: %w", err)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeader:], payload)
	return buf, nil
}

// readJournal scans a journal file, returning every whole, checksummed
// record and the byte offset where the valid prefix ends. A torn or
// corrupt frame stops the scan — everything past it is the unsynced debris
// of a crash.
func readJournal(r io.Reader) (recs []journalRecord, valid int64) {
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return recs, valid
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxFrame {
			return recs, valid
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, valid
		}
		if crc32.Checksum(payload, crcTable) != want {
			return recs, valid
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, valid
		}
		recs = append(recs, rec)
		valid += int64(frameHeader) + int64(n)
	}
}

// openJournal opens (creating if needed) the journal at path, replays its
// records and truncates any torn tail so the handle appends after the last
// whole record. tornBytes reports how much tail was discarded.
func openJournal(path string, inj *faultinject.Injector) (j *journal, recs []journalRecord, tornBytes int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("jobs: open journal: %w", err)
	}
	recs, valid := readJournal(f)
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("jobs: seek journal: %w", err)
	}
	if size > valid {
		tornBytes = size - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("jobs: truncate torn journal tail: %w", err)
		}
		if _, err := f.Seek(valid, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("jobs: seek journal: %w", err)
		}
	}
	return &journal{path: path, f: f, inj: inj}, recs, tornBytes, nil
}

// append frames, writes and fsyncs one record. On an injected disk fault
// the write fails — optionally after landing a torn prefix of the frame,
// the shape a real crash mid-write leaves — and the caller must treat the
// record as not durable.
func (j *journal) append(rec journalRecord) error {
	buf, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	if j.inj.DiskFaults() {
		if j.inj.DiskShortWrites() && len(buf) > 1 {
			// Land a torn frame, then fail: replay must discard it.
			j.f.Write(buf[:len(buf)/2])
			j.f.Sync()
		}
		return fmt.Errorf("jobs: journal append: %w", faultinject.ErrDiskFault)
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("jobs: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: journal sync: %w", err)
	}
	j.appends++
	return nil
}

// compact atomically replaces the journal with exactly recs (temp file +
// fsync + rename + directory fsync), then reopens the handle for appending.
// A crash at any point leaves either the old journal or the new one — never
// a mix.
func (j *journal) compact(recs []journalRecord) error {
	if j.inj.DiskFaults() {
		return fmt.Errorf("jobs: journal compact: %w", faultinject.ErrDiskFault)
	}
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	for _, rec := range recs {
		buf, err := encodeFrame(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("jobs: journal compact: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	old := j.f
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	old.Close()
	if err := syncDir(filepath.Dir(j.path)); err != nil {
		return err
	}
	nf, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: reopen compacted journal: %w", err)
	}
	j.f = nf
	j.appends = 0
	return nil
}

// close releases the file handle (without any shutdown marker — that is
// Drain's job).
func (j *journal) close() error {
	if j == nil || j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil && !errors.Is(err, os.ErrClosed) {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Filesystems that reject directory fsync are tolerated — the
// rename itself is still atomic there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("jobs: open dir for sync: %w", err)
	}
	defer d.Close()
	d.Sync()
	return nil
}
