package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"noisewave/internal/faultinject"
)

// resultStore is the on-disk content-addressed result cache:
// <dir>/<config-hash>.json, written via a unique temp file + rename so a
// torn artifact is never visible under the final name. The stored payload
// repeats the hash, so a file that was corrupted or renamed by hand fails
// closed (treated as a miss) instead of serving the wrong result.
//
// The store is the durable half of the manager's byHash cache: done
// records in the journal carry only the hash, and any future submission of
// an identical config — in this process or after a restart — rehydrates
// the result from here with zero new solves.
type resultStore struct {
	dir string
	inj *faultinject.Injector
}

// storedResult is the JSON envelope of one cached result.
type storedResult struct {
	Hash   string  `json:"hash"`
	Done   int     `json:"done"`
	Total  int     `json:"total"`
	Result *Result `json:"result"`
}

// openResultStore creates the directory if needed and sweeps any *.tmp
// debris a crash mid-put left behind (never visible as results, but no
// reason to keep them).
func openResultStore(dir string, inj *faultinject.Injector) (*resultStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create result store: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: read result store: %w", err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &resultStore{dir: dir, inj: inj}, nil
}

// path returns the final artifact path of a hash.
func (s *resultStore) path(hash string) string {
	return filepath.Join(s.dir, hash+".json")
}

// put durably stores a result under its config hash: unique temp file,
// fsync, rename, directory fsync. Concurrent puts of the same hash are
// safe — identical configs produce bit-identical bytes, and rename is
// atomic, so the last writer simply re-lands the same content. An injected
// disk fault fails the put before the rename, so the final path never
// carries a partial artifact.
func (s *resultStore) put(hash string, res *Result, done, total int) error {
	payload, err := json.Marshal(storedResult{Hash: hash, Done: done, Total: total, Result: res})
	if err != nil {
		return fmt.Errorf("jobs: marshal result %s: %w", hash, err)
	}
	f, err := os.CreateTemp(s.dir, hash+".*.tmp")
	if err != nil {
		return fmt.Errorf("jobs: result store put: %w", err)
	}
	tmp := f.Name()
	if s.inj.DiskFaults() {
		if s.inj.DiskShortWrites() && len(payload) > 1 {
			f.Write(payload[:len(payload)/2])
			f.Sync()
		}
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: result store put: %w", faultinject.ErrDiskFault)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: result store put: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: result store sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: result store close: %w", err)
	}
	if err := os.Rename(tmp, s.path(hash)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: result store rename: %w", err)
	}
	return syncDir(s.dir)
}

// get loads the stored result for hash. A missing file, unparsable JSON or
// a hash mismatch inside the envelope all report a miss — the store fails
// closed and the job simply re-runs.
func (s *resultStore) get(hash string) (*storedResult, bool) {
	b, err := os.ReadFile(s.path(hash))
	if err != nil {
		return nil, false
	}
	var sr storedResult
	if err := json.Unmarshal(b, &sr); err != nil || sr.Hash != hash || sr.Result == nil {
		return nil, false
	}
	return &sr, true
}
