package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"strings"

	"noisewave/internal/device"
	"noisewave/internal/eqwave"
	"noisewave/internal/experiments"
	"noisewave/internal/liberty"
	"noisewave/internal/netlist"
	"noisewave/internal/obs"
	"noisewave/internal/obs/logctx"
	"noisewave/internal/sta"
	"noisewave/internal/sweep"
	"noisewave/internal/telemetry"
	"noisewave/internal/trace"
	"noisewave/internal/wave"
	"noisewave/internal/xtalk"
)

// canceledErr reports whether a job's terminal error is a cancellation
// rather than a failure.
func canceledErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, telemetry.ErrCanceled)
}

// RunDirect executes a configuration synchronously, outside any queue or
// cache — the reference path smoke tests and goldens compare the service
// against. Only the execution fields of opts (Workers, Shards, Telemetry)
// are used.
func RunDirect(ctx context.Context, cfg Config, opts Options) (*Result, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	opts.ArtifactsDir = "" // no job identity to file artifacts under
	m := &Manager{opts: opts.withDefaults(), reg: opts.Telemetry}
	return m.execute(ctx, &Job{cfg: norm, doneCh: make(chan struct{})})
}

// execute runs one job's configuration and, when ArtifactsDir is set,
// leaves a per-job audit trail (config, metrics delta, trace, structured
// log, failures) under <ArtifactsDir>/<jobID>/.
//
// This is where the correlation ID enters the pipeline: the job ID rides
// the context (logctx.WithID) so sweep quarantine and spice recovery events
// carry it, the job-scoped logger is teed into an in-memory buffer that
// becomes the artifact log.jsonl, and the per-job tracer stamps the ID onto
// every root span.
func (m *Manager) execute(ctx context.Context, j *Job) (*Result, error) {
	cfg := j.cfg

	ctx = logctx.WithID(ctx, j.ID)
	runLog := m.logger()
	var logBuf *logctx.SyncBuffer

	var tracer *trace.Tracer
	var before telemetry.Snapshot
	if m.opts.ArtifactsDir != "" {
		tracer = trace.New()
		tracer.SetCommonAttrs(trace.String("job", j.ID))
		before = m.reg.Snapshot()
		logBuf = &logctx.SyncBuffer{}
		capture := slog.NewJSONHandler(logBuf, &slog.HandlerOptions{Level: slog.LevelDebug})
		runLog = slog.New(logctx.Tee(runLog.Handler(), capture))
	}
	ctx = logctx.With(ctx, runLog)
	// Bracket the run in the job-scoped log so the captured log.jsonl in
	// the artifact bundle is never empty, even for a clean quiet run.
	logctx.From(ctx).Info("run started", "experiment", cfg.Experiment)

	var res *Result
	var report *sweep.FailureReport
	var err error
	switch cfg.Experiment {
	case ExpTable1:
		res, report, err = m.runTable1(ctx, j, tracer)
	case ExpPushout:
		res, report, err = m.runPushout(ctx, j, tracer)
	case ExpSTA:
		res, err = runSTA(ctx, cfg, m.reg, tracer)
	default:
		err = fmt.Errorf("%w: unknown experiment %q", ErrInvalidConfig, cfg.Experiment)
	}

	if err != nil {
		logctx.From(ctx).Warn("run finished", "err", err.Error())
	} else {
		logctx.From(ctx).Info("run finished")
	}
	if m.opts.ArtifactsDir != "" {
		if aerr := m.writeArtifacts(j, tracer, before, report, logBuf, err); aerr != nil && err == nil {
			err = fmt.Errorf("jobs: write artifacts: %w", aerr)
		}
	}
	return res, err
}

// writeArtifacts records the job's audit trail. The metrics file holds the
// job-scoped delta of the shared registry — with Runners == 1 (the
// default) it is exact; with concurrent runners it attributes overlapping
// activity to every overlapping job.
func (m *Manager) writeArtifacts(j *Job, tracer *trace.Tracer,
	before telemetry.Snapshot, report *sweep.FailureReport,
	logBuf *logctx.SyncBuffer, runErr error) error {

	run, err := obs.OpenRun(filepath.Join(m.opts.ArtifactsDir, obs.SafeName(j.ID)))
	if err != nil {
		return err
	}
	if err := run.WriteConfig(struct {
		ID     string `json:"id"`
		Tenant string `json:"tenant,omitempty"`
		Hash   string `json:"hash"`
		Error  string `json:"error,omitempty"`
		Config Config `json:"config"`
	}{
		ID: j.ID, Tenant: j.Tenant, Hash: j.Hash,
		Error: errString(runErr), Config: j.cfg,
	}); err != nil {
		return err
	}
	if err := run.WriteMetrics(m.reg.Snapshot().Delta(before)); err != nil {
		return err
	}
	if err := run.WriteTrace(tracer); err != nil {
		return err
	}
	if logBuf != nil {
		if err := run.WriteLog(logBuf.String()); err != nil {
			return err
		}
	}
	if runErr != nil {
		// A failing job freezes the flight ring into its audit trail: the
		// events leading up to the failure, not just its own.
		if err := run.WriteFlight(m.opts.Flight); err != nil {
			return err
		}
	}
	return run.WriteFailures(map[string]*sweep.FailureReport{j.cfg.Experiment: report})
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// sweepOptions assembles the sweep-control block every sweep job shares:
// the manager's worker pool and shard count, the job's context, the shared
// registry and the per-job tracer, plus a progress hook updating the job.
func (m *Manager) sweepOptions(ctx context.Context, j *Job, tracer *trace.Tracer, keepGoing bool) experiments.SweepOptions {
	return experiments.SweepOptions{
		Workers:    m.opts.Workers,
		Shards:     m.opts.Shards,
		NoFastPath: m.opts.NoFastPath,
		Batch:      m.opts.Batch,
		Ctx:        ctx,
		Telemetry:  m.reg,
		Tracer:     tracer,
		KeepGoing:  keepGoing,
		Progress: func(done, total int) {
			j.mu.Lock()
			j.done, j.total = done, total
			j.mu.Unlock()
		},
	}
}

// crosstalkConfig resolves the "I" / "II" name to the paper configuration.
func crosstalkConfig(name string) xtalk.Config {
	t := device.Default130()
	if name == "II" {
		return xtalk.ConfigurationII(t)
	}
	return xtalk.ConfigurationI(t)
}

func (m *Manager) runTable1(ctx context.Context, j *Job, tracer *trace.Tracer) (*Result, *sweep.FailureReport, error) {
	cfg := j.cfg
	var techs []eqwave.Technique
	for _, name := range cfg.Techniques {
		t, err := eqwave.ByName(name)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		techs = append(techs, t)
	}
	opts := experiments.Table1Options{
		Cases: cfg.Cases, Range: cfg.RangeS, P: cfg.P, Techniques: techs,
		SweepOptions: m.sweepOptions(ctx, j, tracer, cfg.KeepGoing),
	}
	r, err := experiments.RunTable1(crosstalkConfig(cfg.Config), opts)
	if err != nil {
		return nil, nil, err
	}
	p := &Table1Payload{Config: cfg.Config, Cases: cfg.Cases, P: cfg.P}
	for _, s := range r.Stats {
		p.Stats = append(p.Stats, TechniqueStat{
			Name: s.Name, MaxAbs: s.MaxAbs, AvgAbs: s.AvgAbs,
			MeanSigned: s.MeanSigned, Failures: s.Failures, N: s.N,
		})
	}
	res := &Result{Experiment: ExpTable1, Table1: p, Excluded: r.Excluded}
	res.Failures = failureRecords(r.Failures)
	return res, r.Failures, nil
}

func (m *Manager) runPushout(ctx context.Context, j *Job, tracer *trace.Tracer) (*Result, *sweep.FailureReport, error) {
	cfg := j.cfg
	opts := experiments.PushoutOptions{
		Cases: cfg.Cases, Range: cfg.RangeS, MonteCarlo: cfg.MonteCarlo,
		SweepOptions: m.sweepOptions(ctx, j, tracer, cfg.KeepGoing),
	}
	opts.Seed = cfg.Seed
	r, err := experiments.RunPushout(crosstalkConfig(cfg.Config), opts)
	if err != nil {
		return nil, nil, err
	}
	p := &PushoutPayload{
		Config: cfg.Config, Cases: r.Cases, QuietArrival: r.QuietArrival,
		Mean: r.Mean, Min: r.Min, Max: r.Max, P50: r.P50, P95: r.P95,
		Pushouts: r.Pushouts,
	}
	res := &Result{Experiment: ExpPushout, Pushout: p, Excluded: r.Excluded}
	res.Failures = failureRecords(r.Failures)
	return res, r.Failures, nil
}

// failureRecords flattens a sweep failure report for JSON.
func failureRecords(r *sweep.FailureReport) []FailureRecord {
	if r == nil {
		return nil
	}
	out := make([]FailureRecord, 0, len(r.Failures))
	for _, f := range r.Failures {
		out = append(out, FailureRecord{Index: f.Index, Error: f.Err.Error()})
	}
	return out
}

// runSTA parses the job's netlist and library, runs the timer and flattens
// the per-net timing, critical path and slack report. STA jobs are pure
// table-lookup timing — fast enough that they run unsharded on the runner
// goroutine itself; ctx still cancels a pathological design at the next
// level boundary.
func runSTA(ctx context.Context, cfg Config, reg *telemetry.Registry, tracer *trace.Tracer) (*Result, error) {
	design, err := netlist.Parse(strings.NewReader(cfg.Netlist))
	if err != nil {
		return nil, fmt.Errorf("%w: netlist: %v", ErrInvalidConfig, err)
	}
	lib, err := liberty.Parse(strings.NewReader(cfg.Liberty))
	if err != nil {
		return nil, fmt.Errorf("%w: liberty: %v", ErrInvalidConfig, err)
	}
	tech, err := eqwave.ByName(cfg.Technique)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	timer := sta.New(lib, design)
	timer.Technique = tech
	if cfg.Wire == "elmore" {
		timer.Wire = sta.ElmoreWire
	}

	res, err := timer.RunCtx(ctx, sta.RunOptions{Workers: 1, Telemetry: reg, Tracer: tracer})
	if err != nil {
		return nil, err
	}
	p := &STAPayload{Design: design.Name, Gates: len(design.Gates)}
	for _, o := range design.Outputs {
		n := res.Nets[o]
		if n == nil {
			continue
		}
		p.Outputs = append(p.Outputs, NetTimingJS{
			Net:         o,
			RiseArrival: n.Rise.Arrival, RiseTrans: n.Rise.Trans,
			FallArrival: n.Fall.Arrival, FallTrans: n.Fall.Trans,
		})
	}
	net, edge, at, err := res.WorstOutput(design.Outputs)
	if err != nil {
		return nil, err
	}
	p.WorstNet, p.WorstEdge, p.WorstAT = net, edge.String(), at.Arrival
	path, err := res.CriticalPath(net, edge)
	if err != nil {
		return nil, err
	}
	for _, s := range path {
		p.Path = append(p.Path, PathStepJS{
			Net: s.Net, Edge: s.Edge.String(),
			Arrival: s.Arrival, Trans: s.Trans, ViaGate: s.ViaGate,
		})
	}

	if len(cfg.Require) > 0 {
		constraints := make(map[string]float64, len(cfg.Require))
		for netName, val := range cfg.Require {
			t, err := netlist.ParseQuantity(val)
			if err != nil {
				return nil, fmt.Errorf("%w: require %s: %v", ErrInvalidConfig, netName, err)
			}
			constraints[netName] = t
		}
		req, err := timer.ComputeRequired(res, constraints)
		if err != nil {
			return nil, err
		}
		for _, netName := range sortedRequireNets(cfg.Require) {
			for _, e := range []wave.Edge{wave.Rising, wave.Falling} {
				s, ok := req.Slack(res, netName, e)
				if !ok {
					continue
				}
				pt := res.Nets[netName].Rise
				if e == wave.Falling {
					pt = res.Nets[netName].Fall
				}
				p.Slacks = append(p.Slacks, SlackJS{
					Net: netName, Edge: e.String(), Arrival: pt.Arrival,
					Required: constraints[netName], Slack: s,
				})
			}
		}
		if wnet, wedge, ws, ok := req.WorstSlack(res); ok {
			wpt := res.Nets[wnet].Rise
			if wedge == wave.Falling {
				wpt = res.Nets[wnet].Fall
			}
			p.WorstSlack = &SlackJS{
				Net: wnet, Edge: wedge.String(), Arrival: wpt.Arrival,
				Required: wpt.Arrival + ws, Slack: ws,
			}
		}
	}
	return &Result{Experiment: ExpSTA, STA: p}, nil
}
