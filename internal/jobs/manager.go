package jobs

import (
	"container/heap"
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"noisewave/internal/faultinject"
	"noisewave/internal/obs"
	"noisewave/internal/obs/logctx"
	"noisewave/internal/telemetry"
)

// Options configures a Manager.
type Options struct {
	// Backlog bounds the number of queued (not yet running) jobs; a Submit
	// beyond it is rejected with ErrBacklogFull (the HTTP layer's 429).
	// <= 0 selects 64.
	Backlog int
	// TenantQuota bounds each tenant's queued+running jobs; a Submit beyond
	// it is rejected with ErrQuota (429). <= 0 selects 8.
	TenantQuota int
	// Runners is the number of jobs executed concurrently. Each job runs
	// its own sweep over Workers workers, so the total parallelism is
	// Runners × Workers; the default 1 keeps one job's sweep owning the
	// pool at a time.
	Runners int
	// Workers sizes each job's sweep worker pool (0 = all cores). Not part
	// of job identity: any worker count produces bit-identical results.
	Workers int
	// Shards splits each sweep job's case space into consistent-hash
	// shards (sweep.ShardOf); like Workers it never changes the numbers.
	// <= 1 runs unsharded.
	Shards int
	// NoFastPath disables the spice solver fast path in every transient
	// the jobs run (cmd/serve -no-fastpath). An execution knob like
	// Workers/Shards: results agree to solver tolerance either way, and it
	// is not part of job identity or the content address.
	NoFastPath bool
	// Batch is the lockstep batch size for sweep jobs (cmd/serve -batch;
	// see experiments.SweepOptions.Batch). Also an execution knob outside
	// job identity: any Workers × Batch combination is bit-identical.
	// <= 1 runs the scalar path.
	Batch int
	// Telemetry observes the service (jobs.* metrics) and every solve the
	// jobs run (spice.*, sweep.*, sta.* …). The httpserver /metrics page
	// typically shares this registry.
	Telemetry *telemetry.Registry
	// ArtifactsDir, when set, writes a per-job audit trail —
	// <ArtifactsDir>/<jobID>/ with the resolved config, the job-scoped
	// metrics delta, the hierarchical trace and the failure report.
	ArtifactsDir string
	// DataDir, when set (use Open, not NewManager), roots the durable
	// store: the fsync'd write-ahead journal of job lifecycle records and
	// the on-disk content-addressed result store. Acknowledged jobs and
	// completed results then survive crashes and restarts.
	DataDir string
	// Recover selects what boot-time replay does with jobs that were
	// running when the previous process died (default: re-enqueue).
	Recover RecoverPolicy
	// RetainTerminal bounds how many terminal jobs the journal (and the
	// job listing) keeps across compactions. <= 0 selects 256. Results
	// evicted from the listing remain durable in the result store.
	RetainTerminal int
	// CompactEvery is the number of journal appends between compaction
	// passes. <= 0 selects 1024.
	CompactEvery int
	// Disk, when set, injects deterministic disk faults into journal
	// appends and result-store writes (crash-recovery tests).
	Disk *faultinject.Injector
	// Log receives structured lifecycle events (queued, running, done,
	// failed…), each carrying the job ID as the "corr" attribute. Tee it
	// with a FlightRecorder handler (logctx.Tee) to feed the flight ring.
	// nil = silent.
	Log *slog.Logger
	// Flight, when set alongside ArtifactsDir, is dumped into a failing
	// job's artifact directory (flight.json) — the events leading up to the
	// failure become part of the audit trail.
	Flight *obs.FlightRecorder
}

func (o Options) withDefaults() Options {
	if o.Backlog <= 0 {
		o.Backlog = 64
	}
	if o.TenantQuota <= 0 {
		o.TenantQuota = 8
	}
	if o.Runners <= 0 {
		o.Runners = 1
	}
	if o.RetainTerminal <= 0 {
		o.RetainTerminal = 256
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = 1024
	}
	return o
}

// Job is one submitted configuration's lifecycle record. All exported
// methods are safe for concurrent use.
type Job struct {
	ID       string
	Tenant   string
	Priority int
	Hash     string
	// CacheHit marks a job served entirely from the content-addressed
	// result store: it was born in StateDone and ran zero solves.
	CacheHit bool

	cfg Config
	seq int64

	mu       sync.Mutex
	state    State
	err      error
	result   *Result
	done     int
	total    int
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc

	doneCh chan struct{}
}

// State returns the current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the terminal error of a failed job (nil otherwise).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the job's result (nil until StateDone).
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Progress returns the job's settled/total sweep-case counts.
func (j *Job) Progress() (done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done, j.total
}

// Config returns the normalized configuration the job runs.
func (j *Job) Config() Config { return j.cfg }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Wait blocks until the job is terminal or ctx is canceled, returning the
// job's terminal error (nil for StateDone).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.doneCh:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status is a point-in-time JSON view of a job.
type Status struct {
	ID       string    `json:"id"`
	Tenant   string    `json:"tenant,omitempty"`
	Priority int       `json:"priority"`
	Hash     string    `json:"hash"`
	State    State     `json:"state"`
	CacheHit bool      `json:"cache_hit"`
	Done     int       `json:"done"`
	Total    int       `json:"total"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Timeline is the lifecycle phase history (submitted → queued →
	// running → terminal state), reconstructed from the manager's
	// transition timestamps — which the journal preserves, so a timeline
	// survives restarts.
	Timeline []PhaseStamp `json:"timeline,omitempty"`
}

// PhaseStamp is one lifecycle transition in a job's timeline.
type PhaseStamp struct {
	Phase string    `json:"phase"`
	Time  time.Time `json:"time"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID: j.ID, Tenant: j.Tenant, Priority: j.Priority, Hash: j.Hash,
		State: j.state, CacheHit: j.CacheHit, Done: j.done, Total: j.total,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	s.Timeline = []PhaseStamp{{Phase: "submitted", Time: j.created}}
	if j.CacheHit {
		// Born done from the content-addressed store: never queued or run.
		if !j.finished.IsZero() {
			s.Timeline = append(s.Timeline, PhaseStamp{Phase: string(j.state), Time: j.finished})
		}
		return s
	}
	s.Timeline = append(s.Timeline, PhaseStamp{Phase: "queued", Time: j.created})
	if !j.started.IsZero() {
		s.Timeline = append(s.Timeline, PhaseStamp{Phase: "running", Time: j.started})
	}
	if j.state.Terminal() && !j.finished.IsZero() {
		s.Timeline = append(s.Timeline, PhaseStamp{Phase: string(j.state), Time: j.finished})
	}
	return s
}

// pendingHeap orders queued jobs by descending priority, FIFO within a
// priority level (ascending submission sequence).
type pendingHeap []*Job

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(a, b int) bool {
	if h[a].Priority != h[b].Priority {
		return h[a].Priority > h[b].Priority
	}
	return h[a].seq < h[b].seq
}
func (h pendingHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *pendingHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// Manager owns the job queue, the runner pool and the content-addressed
// result store. Create with NewManager, stop with Close.
type Manager struct {
	opts Options
	reg  *telemetry.Registry

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	seq     int64
	pending pendingHeap
	byID    map[string]*Job
	// byHash is the in-memory half of the content-addressed store: config
	// hash → the completed job whose result every future identical
	// submission shares. With DataDir set, the on-disk resultStore backs
	// it across restarts.
	byHash map[string]*Job
	// tenantLoad counts each tenant's queued+running jobs for the quota.
	tenantLoad map[string]int
	// active counts jobs currently executing on a runner; Drain waits on
	// it.
	active int
	// draining stops admission and dispatch during graceful shutdown.
	draining bool
	// shuttingDown suppresses terminal journal records for jobs canceled
	// by the shutdown itself, so the next boot re-runs them.
	shuttingDown bool

	// Durable state (nil for an in-memory manager).
	journal  *journal
	store    *resultStore
	recovery RecoveryReport
}

// logger returns the lifecycle logger (Discard when Options.Log is nil),
// so call sites never nil-check.
func (m *Manager) logger() *slog.Logger {
	if m.opts.Log != nil {
		return m.opts.Log
	}
	return logctx.Discard()
}

// NewManager starts an in-memory manager with its runner goroutines. For a
// durable manager (Options.DataDir) use Open, which can fail; NewManager
// panics if DataDir is set, so a dropped journal can never be silent.
func NewManager(opts Options) *Manager {
	if opts.DataDir != "" {
		panic("jobs: NewManager cannot open a durable manager; use Open")
	}
	m, err := Open(opts)
	if err != nil {
		// Unreachable: without DataDir, Open has no failure path.
		panic(err)
	}
	return m
}

// Close stops accepting submissions, cancels the active jobs, fails the
// queued ones and waits for the runners to drain. A durable manager
// instead hard-drains (Drain with a zero deadline): queued and interrupted
// jobs stay journaled and resume on the next Open.
func (m *Manager) Close() {
	if m.journal != nil {
		m.Drain(0)
		return
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, j := range m.pending {
		m.finishLocked(j, nil, ErrClosed, StateCanceled)
	}
	m.pending = nil
	m.reg.Gauge("jobs.queue_depth").Set(0)
	m.cond.Broadcast()
	m.mu.Unlock()
	m.stop() // cancels running jobs' contexts
	m.wg.Wait()
}

// Submit validates, content-addresses and enqueues a configuration.
//
// A config whose hash is already in the result store — in memory, or on
// disk from a previous process — returns immediately with a terminal job
// that shares the stored result (CacheHit): no queue slot, no quota
// charge, zero solves. Otherwise the job is enqueued unless the tenant is
// over quota (ErrQuota) or the backlog is full (ErrBacklogFull). On a
// durable manager the submitted record is fsync'd into the journal before
// Submit returns — a job a client saw acknowledged survives kill -9 — and
// a journal write failure rejects the submission with ErrDurable.
func (m *Manager) Submit(cfg Config, tenant string, priority int) (*Job, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		m.reg.Counter("jobs.rejected_invalid").Inc()
		return nil, err
	}
	hash := norm.Hash()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.draining {
		return nil, ErrDraining
	}
	m.seq++
	id := fmt.Sprintf("job-%d", m.seq)

	prior, hit := m.byHash[hash]
	if !hit && m.store != nil {
		// Miss in memory; the durable store may still have it (an earlier
		// process, or a terminal job evicted by journal compaction).
		if sr, ok := m.store.get(hash); ok {
			prior = &Job{Hash: hash, state: StateDone, result: sr.Result,
				done: sr.Done, total: sr.Total, doneCh: make(chan struct{})}
			close(prior.doneCh)
			m.byHash[hash] = prior
			m.reg.Counter("jobs.durable_cache_hits").Inc()
			hit = true
		}
	}
	if hit {
		j := &Job{
			ID: id, Tenant: tenant, Priority: priority, Hash: hash,
			CacheHit: true, cfg: norm, seq: m.seq,
			state:  StateDone,
			result: prior.Result(),
			doneCh: make(chan struct{}),
		}
		j.created = time.Now()
		j.started, j.finished = j.created, j.created
		j.done, j.total = prior.done, prior.total
		close(j.doneCh)
		m.byID[id] = j
		// Best-effort journaling: the client already holds the result, so
		// a failed append only costs this job its place in the restart
		// listing, never an acknowledged outcome.
		cfgCopy := norm
		m.appendLocked(journalRecord{
			Type: recSubmitted, ID: id, Seq: m.seq, Tenant: tenant,
			Priority: priority, Hash: hash, CacheHit: true,
			Config: &cfgCopy, Time: j.created,
		})
		m.appendLocked(journalRecord{Type: recDone, ID: id, Hash: hash, Time: j.created})
		m.reg.Counter("jobs.submitted").Inc()
		m.reg.Counter("jobs.cache_hits").Inc()
		m.reg.Counter("jobs.completed").Inc()
		m.logger().Info("job cache hit",
			"corr", id, "tenant", tenant, "hash", hash, "durable", prior.ID == "")
		return j, nil
	}

	if m.tenantLoad[tenant] >= m.opts.TenantQuota {
		m.reg.Counter("jobs.rejected_quota").Inc()
		m.logger().Warn("job rejected",
			"corr", id, "tenant", tenant, "reason", "quota",
			"in_flight", m.tenantLoad[tenant], "quota", m.opts.TenantQuota)
		return nil, fmt.Errorf("%w: tenant %q has %d jobs in flight (quota %d)",
			ErrQuota, tenant, m.tenantLoad[tenant], m.opts.TenantQuota)
	}
	if len(m.pending) >= m.opts.Backlog {
		m.reg.Counter("jobs.rejected_backlog").Inc()
		m.logger().Warn("job rejected",
			"corr", id, "tenant", tenant, "reason", "backlog",
			"queued", len(m.pending), "backlog", m.opts.Backlog)
		return nil, fmt.Errorf("%w: %d jobs queued (backlog %d)",
			ErrBacklogFull, len(m.pending), m.opts.Backlog)
	}

	j := &Job{
		ID: id, Tenant: tenant, Priority: priority, Hash: hash,
		cfg: norm, seq: m.seq,
		state:  StateQueued,
		doneCh: make(chan struct{}),
	}
	j.created = time.Now()
	if m.journal != nil {
		// The acknowledgement write: until this record is on disk the job
		// does not exist, so a failure here must reject the submission.
		cfgCopy := norm
		if err := m.journal.append(journalRecord{
			Type: recSubmitted, ID: id, Seq: m.seq, Tenant: tenant,
			Priority: priority, Hash: hash, Config: &cfgCopy, Time: j.created,
		}); err != nil {
			m.reg.Counter("jobs.journal_errors").Inc()
			m.reg.Counter("jobs.rejected_durable").Inc()
			m.logger().Error("job rejected",
				"corr", id, "tenant", tenant, "reason", "journal", "err", err)
			return nil, fmt.Errorf("%w: %v", ErrDurable, err)
		}
		m.maybeCompactLocked()
	}
	heap.Push(&m.pending, j)
	m.byID[id] = j
	m.tenantLoad[tenant]++
	m.reg.Counter("jobs.submitted").Inc()
	m.reg.Gauge("jobs.queue_depth").Set(float64(len(m.pending)))
	m.logger().Info("job queued",
		"corr", id, "tenant", tenant, "priority", priority, "hash", hash,
		"experiment", norm.Experiment, "queue_depth", len(m.pending))
	m.cond.Signal()
	return j, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	return j, ok
}

// Jobs returns every known job, most recently submitted first.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.byID))
	for _, j := range m.byID {
		out = append(out, j)
	}
	// Sort by descending submission sequence.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].seq > out[k-1].seq; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Cancel cancels a queued or running job. It returns false when the job is
// unknown or already terminal.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.byID[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	j.mu.Lock()
	state := j.state
	cancel := j.cancel
	j.mu.Unlock()
	switch state {
	case StateQueued:
		for i, q := range m.pending {
			if q == j {
				heap.Remove(&m.pending, i)
				break
			}
		}
		m.reg.Gauge("jobs.queue_depth").Set(float64(len(m.pending)))
		m.finishLocked(j, nil, context.Canceled, StateCanceled)
		m.mu.Unlock()
		return true
	case StateRunning:
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		m.mu.Unlock()
		return false
	}
}

// finishLocked moves a job to a terminal state, releases its tenant-quota
// slot, journals the transition and closes its done channel. Caller holds
// m.mu.
func (m *Manager) finishLocked(j *Job, res *Result, err error, state State) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.err = err
	j.finished = time.Now()
	finished := j.finished
	wall := finished.Sub(j.created).Seconds()
	done, total := j.done, j.total
	j.mu.Unlock()
	if m.tenantLoad[j.Tenant] > 0 {
		m.tenantLoad[j.Tenant]--
	}
	switch state {
	case StateFailed:
		m.logger().Error("job failed",
			"corr", j.ID, "tenant", j.Tenant, "err", err,
			"done", done, "total", total, "wall_seconds", wall)
	default:
		m.logger().Info("job "+string(state),
			"corr", j.ID, "tenant", j.Tenant,
			"done", done, "total", total, "wall_seconds", wall)
	}
	switch state {
	case StateDone:
		m.reg.Counter("jobs.completed").Inc()
		// Publish into the content-addressed store (first writer wins; any
		// later identical job would have produced bit-identical bytes).
		// The durable half (resultStore.put) already happened on the
		// runner, before this record, so a done record always has its
		// artifact.
		if _, ok := m.byHash[j.Hash]; !ok {
			m.byHash[j.Hash] = j
		}
		m.appendLocked(journalRecord{Type: recDone, ID: j.ID, Hash: j.Hash, Time: finished})
	case StateFailed:
		m.reg.Counter("jobs.failed").Inc()
		m.appendLocked(journalRecord{Type: recFailed, ID: j.ID, Error: errString(err), Time: finished})
	case StateCanceled:
		m.reg.Counter("jobs.canceled").Inc()
		// A job canceled *by shutdown* keeps its journal open-ended on
		// purpose: the next boot sees running-without-terminal and re-runs
		// it. Only a user-initiated cancel is terminal durably.
		if !m.shuttingDown {
			m.appendLocked(journalRecord{Type: recCanceled, ID: j.ID, Time: finished})
		}
	case StateInterrupted:
		m.reg.Counter("jobs.interrupted").Inc()
	}
	close(j.doneCh)
}

// testHookRunning, when set (tests only), runs on the runner goroutine
// after a job enters StateRunning and before it executes — a deterministic
// place to block a job mid-flight for drain/crash tests.
var testHookRunning func(*Job)

// runner is one job-executing goroutine: pop the highest-priority queued
// job, run it, publish the outcome durably, repeat until Close or Drain.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed && !m.draining {
			m.cond.Wait()
		}
		if m.closed || m.draining {
			m.mu.Unlock()
			return
		}
		j := heap.Pop(&m.pending).(*Job)
		m.reg.Gauge("jobs.queue_depth").Set(float64(len(m.pending)))
		ctx, cancel := context.WithCancel(m.ctx)
		j.mu.Lock()
		j.state = StateRunning
		j.started = time.Now()
		j.cancel = cancel
		j.mu.Unlock()
		m.active++
		m.reg.Gauge("jobs.active").Add(1)
		// The running record makes the crash-vs-queued distinction
		// replayable; losing it is harmless (the job re-runs either way).
		m.appendLocked(journalRecord{Type: recRunning, ID: j.ID, Time: j.started})
		m.mu.Unlock()

		queued := j.started.Sub(j.created).Seconds()
		m.reg.Histogram("jobs.queue_seconds").Observe(queued)
		m.logger().Info("job running",
			"corr", j.ID, "tenant", j.Tenant, "queue_seconds", queued)

		if testHookRunning != nil {
			testHookRunning(j)
		}
		stopTimer := m.reg.Histogram("jobs.run_seconds").Start()
		res, err := m.execute(ctx, j)
		stopTimer()
		cancel()

		// Durability ordering: the result artifact lands (temp + rename +
		// fsync) before the done record is journaled, so replay never
		// finds a done record without its artifact. A failed put fails the
		// job — the config can be resubmitted, and nothing torn is ever
		// visible under the final path.
		if err == nil && m.store != nil {
			done, total := j.Progress()
			if perr := m.store.put(j.Hash, res, done, total); perr != nil {
				m.reg.Counter("jobs.store_errors").Inc()
				err = fmt.Errorf("%w: %v", ErrDurable, perr)
			}
		}

		m.mu.Lock()
		m.active--
		m.reg.Gauge("jobs.active").Add(-1)
		switch {
		case err == nil:
			m.finishLocked(j, res, nil, StateDone)
		case canceledErr(err):
			m.finishLocked(j, nil, err, StateCanceled)
		default:
			m.finishLocked(j, nil, err, StateFailed)
		}
		m.mu.Unlock()
	}
}
