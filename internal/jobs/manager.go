package jobs

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"time"

	"noisewave/internal/telemetry"
)

// Options configures a Manager.
type Options struct {
	// Backlog bounds the number of queued (not yet running) jobs; a Submit
	// beyond it is rejected with ErrBacklogFull (the HTTP layer's 429).
	// <= 0 selects 64.
	Backlog int
	// TenantQuota bounds each tenant's queued+running jobs; a Submit beyond
	// it is rejected with ErrQuota (429). <= 0 selects 8.
	TenantQuota int
	// Runners is the number of jobs executed concurrently. Each job runs
	// its own sweep over Workers workers, so the total parallelism is
	// Runners × Workers; the default 1 keeps one job's sweep owning the
	// pool at a time.
	Runners int
	// Workers sizes each job's sweep worker pool (0 = all cores). Not part
	// of job identity: any worker count produces bit-identical results.
	Workers int
	// Shards splits each sweep job's case space into consistent-hash
	// shards (sweep.ShardOf); like Workers it never changes the numbers.
	// <= 1 runs unsharded.
	Shards int
	// Telemetry observes the service (jobs.* metrics) and every solve the
	// jobs run (spice.*, sweep.*, sta.* …). The httpserver /metrics page
	// typically shares this registry.
	Telemetry *telemetry.Registry
	// ArtifactsDir, when set, writes a per-job audit trail —
	// <ArtifactsDir>/<jobID>/ with the resolved config, the job-scoped
	// metrics delta, the hierarchical trace and the failure report.
	ArtifactsDir string
}

func (o Options) withDefaults() Options {
	if o.Backlog <= 0 {
		o.Backlog = 64
	}
	if o.TenantQuota <= 0 {
		o.TenantQuota = 8
	}
	if o.Runners <= 0 {
		o.Runners = 1
	}
	return o
}

// Job is one submitted configuration's lifecycle record. All exported
// methods are safe for concurrent use.
type Job struct {
	ID       string
	Tenant   string
	Priority int
	Hash     string
	// CacheHit marks a job served entirely from the content-addressed
	// result store: it was born in StateDone and ran zero solves.
	CacheHit bool

	cfg Config
	seq int64

	mu       sync.Mutex
	state    State
	err      error
	result   *Result
	done     int
	total    int
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc

	doneCh chan struct{}
}

// State returns the current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the terminal error of a failed job (nil otherwise).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the job's result (nil until StateDone).
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Progress returns the job's settled/total sweep-case counts.
func (j *Job) Progress() (done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done, j.total
}

// Config returns the normalized configuration the job runs.
func (j *Job) Config() Config { return j.cfg }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Wait blocks until the job is terminal or ctx is canceled, returning the
// job's terminal error (nil for StateDone).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.doneCh:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status is a point-in-time JSON view of a job.
type Status struct {
	ID       string    `json:"id"`
	Tenant   string    `json:"tenant,omitempty"`
	Priority int       `json:"priority"`
	Hash     string    `json:"hash"`
	State    State     `json:"state"`
	CacheHit bool      `json:"cache_hit"`
	Done     int       `json:"done"`
	Total    int       `json:"total"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID: j.ID, Tenant: j.Tenant, Priority: j.Priority, Hash: j.Hash,
		State: j.state, CacheHit: j.CacheHit, Done: j.done, Total: j.total,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// pendingHeap orders queued jobs by descending priority, FIFO within a
// priority level (ascending submission sequence).
type pendingHeap []*Job

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(a, b int) bool {
	if h[a].Priority != h[b].Priority {
		return h[a].Priority > h[b].Priority
	}
	return h[a].seq < h[b].seq
}
func (h pendingHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *pendingHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// Manager owns the job queue, the runner pool and the content-addressed
// result store. Create with NewManager, stop with Close.
type Manager struct {
	opts Options
	reg  *telemetry.Registry

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	seq     int64
	pending pendingHeap
	byID    map[string]*Job
	// byHash is the content-addressed store: config hash → the completed
	// job whose result every future identical submission shares.
	byHash map[string]*Job
	// tenantLoad counts each tenant's queued+running jobs for the quota.
	tenantLoad map[string]int
}

// NewManager starts a manager with its runner goroutines.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		reg:        opts.Telemetry,
		ctx:        ctx,
		stop:       stop,
		byID:       make(map[string]*Job),
		byHash:     make(map[string]*Job),
		tenantLoad: make(map[string]int),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < opts.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// Close stops accepting submissions, cancels the active jobs, fails the
// queued ones and waits for the runners to drain.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, j := range m.pending {
		m.finishLocked(j, nil, ErrClosed, StateCanceled)
	}
	m.pending = nil
	m.reg.Gauge("jobs.queue_depth").Set(0)
	m.cond.Broadcast()
	m.mu.Unlock()
	m.stop() // cancels running jobs' contexts
	m.wg.Wait()
}

// Submit validates, content-addresses and enqueues a configuration.
//
// A config whose hash is already in the result store returns immediately
// with a terminal job that shares the stored result (CacheHit) — no queue
// slot, no quota charge, zero solves. Otherwise the job is enqueued unless
// the tenant is over quota (ErrQuota) or the backlog is full
// (ErrBacklogFull).
func (m *Manager) Submit(cfg Config, tenant string, priority int) (*Job, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		m.reg.Counter("jobs.rejected_invalid").Inc()
		return nil, err
	}
	hash := norm.Hash()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("job-%d", m.seq)

	if prior, ok := m.byHash[hash]; ok {
		j := &Job{
			ID: id, Tenant: tenant, Priority: priority, Hash: hash,
			CacheHit: true, cfg: norm, seq: m.seq,
			state:  StateDone,
			result: prior.Result(),
			doneCh: make(chan struct{}),
		}
		j.created = time.Now()
		j.started, j.finished = j.created, j.created
		j.done, j.total = prior.done, prior.total
		close(j.doneCh)
		m.byID[id] = j
		m.reg.Counter("jobs.submitted").Inc()
		m.reg.Counter("jobs.cache_hits").Inc()
		m.reg.Counter("jobs.completed").Inc()
		return j, nil
	}

	if m.tenantLoad[tenant] >= m.opts.TenantQuota {
		m.reg.Counter("jobs.rejected_quota").Inc()
		return nil, fmt.Errorf("%w: tenant %q has %d jobs in flight (quota %d)",
			ErrQuota, tenant, m.tenantLoad[tenant], m.opts.TenantQuota)
	}
	if len(m.pending) >= m.opts.Backlog {
		m.reg.Counter("jobs.rejected_backlog").Inc()
		return nil, fmt.Errorf("%w: %d jobs queued (backlog %d)",
			ErrBacklogFull, len(m.pending), m.opts.Backlog)
	}

	j := &Job{
		ID: id, Tenant: tenant, Priority: priority, Hash: hash,
		cfg: norm, seq: m.seq,
		state:  StateQueued,
		doneCh: make(chan struct{}),
	}
	j.created = time.Now()
	heap.Push(&m.pending, j)
	m.byID[id] = j
	m.tenantLoad[tenant]++
	m.reg.Counter("jobs.submitted").Inc()
	m.reg.Gauge("jobs.queue_depth").Set(float64(len(m.pending)))
	m.cond.Signal()
	return j, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	return j, ok
}

// Jobs returns every known job, most recently submitted first.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.byID))
	for _, j := range m.byID {
		out = append(out, j)
	}
	// Sort by descending submission sequence.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].seq > out[k-1].seq; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Cancel cancels a queued or running job. It returns false when the job is
// unknown or already terminal.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.byID[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	j.mu.Lock()
	state := j.state
	cancel := j.cancel
	j.mu.Unlock()
	switch state {
	case StateQueued:
		for i, q := range m.pending {
			if q == j {
				heap.Remove(&m.pending, i)
				break
			}
		}
		m.reg.Gauge("jobs.queue_depth").Set(float64(len(m.pending)))
		m.finishLocked(j, nil, context.Canceled, StateCanceled)
		m.mu.Unlock()
		return true
	case StateRunning:
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		m.mu.Unlock()
		return false
	}
}

// finishLocked moves a job to a terminal state, releases its tenant-quota
// slot and closes its done channel. Caller holds m.mu.
func (m *Manager) finishLocked(j *Job, res *Result, err error, state State) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	if m.tenantLoad[j.Tenant] > 0 {
		m.tenantLoad[j.Tenant]--
	}
	switch state {
	case StateDone:
		m.reg.Counter("jobs.completed").Inc()
		// Publish into the content-addressed store (first writer wins; any
		// later identical job would have produced bit-identical bytes).
		if _, ok := m.byHash[j.Hash]; !ok {
			m.byHash[j.Hash] = j
		}
	case StateFailed:
		m.reg.Counter("jobs.failed").Inc()
	case StateCanceled:
		m.reg.Counter("jobs.canceled").Inc()
	}
	close(j.doneCh)
}

// runner is one job-executing goroutine: pop the highest-priority queued
// job, run it, publish the outcome, repeat until Close.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := heap.Pop(&m.pending).(*Job)
		m.reg.Gauge("jobs.queue_depth").Set(float64(len(m.pending)))
		ctx, cancel := context.WithCancel(m.ctx)
		j.mu.Lock()
		j.state = StateRunning
		j.started = time.Now()
		j.cancel = cancel
		j.mu.Unlock()
		m.reg.Gauge("jobs.active").Add(1)
		m.mu.Unlock()

		stopTimer := m.reg.Timer("jobs.run_seconds").Start()
		res, err := m.execute(ctx, j)
		stopTimer()
		cancel()

		m.mu.Lock()
		m.reg.Gauge("jobs.active").Add(-1)
		switch {
		case err == nil:
			m.finishLocked(j, res, nil, StateDone)
		case canceledErr(err):
			m.finishLocked(j, nil, err, StateCanceled)
		default:
			m.finishLocked(j, nil, err, StateFailed)
		}
		m.mu.Unlock()
	}
}
