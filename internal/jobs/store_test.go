package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"noisewave/internal/faultinject"
)

func testResult() *Result {
	return &Result{STA: &STAPayload{Design: "store_test"}}
}

// TestResultStorePutGet: a stored result round-trips bit-for-bit and leaves
// no temp debris.
func TestResultStorePutGet(t *testing.T) {
	dir := t.TempDir()
	s, err := openResultStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := testResult()
	if err := s.put("hash-a", res, 3, 4); err != nil {
		t.Fatalf("put: %v", err)
	}
	sr, ok := s.get("hash-a")
	if !ok {
		t.Fatal("get after put reports a miss")
	}
	if sr.Done != 3 || sr.Total != 4 || !reflect.DeepEqual(sr.Result, res) {
		t.Errorf("stored result differs: %+v", sr)
	}
	if _, ok := s.get("hash-b"); ok {
		t.Error("get of an unknown hash reports a hit")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "hash-a.json" {
		t.Errorf("store dir = %v, want exactly hash-a.json", ents)
	}
}

// TestResultStoreFailsClosed: corrupt JSON, an envelope whose recorded hash
// disagrees with its file name, and a missing result payload all read as
// misses, never as wrong results.
func TestResultStoreFailsClosed(t *testing.T) {
	dir := t.TempDir()
	s, err := openResultStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.put("good", testResult(), 1, 1); err != nil {
		t.Fatal(err)
	}
	// Torn/corrupt file.
	if err := os.WriteFile(s.path("torn"), []byte(`{"hash":"torn","resu`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Renamed-by-hand artifact: envelope says "good", name says "evil".
	b, err := os.ReadFile(s.path("good"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("evil"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	// Envelope without a result payload.
	if err := os.WriteFile(s.path("empty"), []byte(`{"hash":"empty"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, hash := range []string{"torn", "evil", "empty"} {
		if _, ok := s.get(hash); ok {
			t.Errorf("get(%q) served a corrupt/mismatched artifact", hash)
		}
	}
	if _, ok := s.get("good"); !ok {
		t.Error("the intact artifact must still serve")
	}
}

// TestResultStoreSweepsTmpDebris: *.tmp files a crash mid-put left behind
// are removed on open and never visible as results.
func TestResultStoreSweepsTmpDebris(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(dir, "hash-x.12345.tmp")
	if err := os.WriteFile(debris, []byte("half a resul"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := openResultStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Error("open did not sweep tmp debris")
	}
	if _, ok := s.get("hash-x"); ok {
		t.Error("tmp debris served as a result")
	}
}

// TestResultStoreDiskFault: an injected fault fails the put before the
// rename — the final path never appears, no temp file survives, and in
// short-write mode the torn bytes land only under the temp name.
func TestResultStoreDiskFault(t *testing.T) {
	for _, short := range []bool{false, true} {
		dir := t.TempDir()
		inj := faultinject.New(faultinject.Config{DiskEvery: 1, DiskShortWrite: short})
		s, err := openResultStore(dir, inj)
		if err != nil {
			t.Fatal(err)
		}
		err = s.put("hash-a", testResult(), 1, 1)
		if !errors.Is(err, faultinject.ErrDiskFault) {
			t.Fatalf("short=%v: put err = %v, want ErrDiskFault", short, err)
		}
		if _, ok := s.get("hash-a"); ok {
			t.Errorf("short=%v: failed put is visible under the final path", short)
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Errorf("short=%v: failed put left %v behind", short, ents)
		}
	}
}
