package jobs

import (
	"bytes"
	"container/heap"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"noisewave/internal/experiments"
	"noisewave/internal/liberty"
	"noisewave/internal/telemetry"
)

// flatTable returns a constant NLDM table.
func flatTable(d float64) *liberty.Table2D {
	return &liberty.Table2D{
		Index1: []float64{10e-12, 500e-12},
		Index2: []float64{1e-15, 100e-15},
		Values: [][]float64{{d, d}, {d, d}},
	}
}

// testLibertyText serializes a tiny synthetic library (INV 10/12 ps, BUF
// 20 ps) to Liberty text, the form an HTTP job carries it in.
func testLibertyText(t *testing.T) string {
	t.Helper()
	lib := liberty.NewLibrary("jobslib", 1.2)
	for _, c := range []*liberty.Cell{
		{
			Name: "INV",
			Pins: []liberty.Pin{
				{Name: "A", Direction: "input", Cap: 2e-15},
				{Name: "Y", Direction: "output"},
			},
			Arcs: []liberty.Arc{{
				From: "A", To: "Y", Sense: liberty.NegativeUnate,
				CellRise: flatTable(10e-12), CellFall: flatTable(12e-12),
				RiseTransition: flatTable(30e-12), FallTransition: flatTable(28e-12),
			}},
		},
		{
			Name: "BUF",
			Pins: []liberty.Pin{
				{Name: "A", Direction: "input", Cap: 3e-15},
				{Name: "Y", Direction: "output"},
			},
			Arcs: []liberty.Arc{{
				From: "A", To: "Y", Sense: liberty.PositiveUnate,
				CellRise: flatTable(20e-12), CellFall: flatTable(20e-12),
				RiseTransition: flatTable(30e-12), FallTransition: flatTable(30e-12),
			}},
		},
	} {
		lib.AddCell(c)
	}
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatalf("write liberty: %v", err)
	}
	return buf.String()
}

// testNetlistText is a three-gate chain with parasitics on the inner nets;
// slew parameterized so distinct jobs hash differently.
func testNetlistText(slewPs int) string {
	return fmt.Sprintf(`design jobs_chain
input a slew=%dps at=0ps
output y
gate u1 INV A=a Y=n1
gate u2 BUF A=n1 Y=n2
gate u3 INV A=n2 Y=y
netcap n1 5fF
netres n1 200
netcap n2 3fF
netres n2 150
`, slewPs)
}

func staConfig(slewPs int) Config {
	return Config{
		Experiment: ExpSTA,
		Netlist:    testNetlistText(slewPs),
		Liberty:    "", // filled by caller (needs *testing.T)
		Wire:       "elmore",
		Require:    map[string]string{"y": "500ps"},
	}
}

// directSTA computes the reference payload the job service must match
// bit-for-bit, through the same public sta API a standalone tool uses.
func directSTA(t *testing.T, cfg Config) *STAPayload {
	t.Helper()
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	res, err := runSTA(context.Background(), norm, nil, nil)
	if err != nil {
		t.Fatalf("direct sta run: %v", err)
	}
	return res.STA
}

// newStoppedManager builds a manager with no runner goroutines: submitted
// jobs stay queued forever, making quota/backlog/priority tests
// deterministic.
func newStoppedManager(opts Options) *Manager {
	opts = opts.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		opts: opts, reg: opts.Telemetry,
		ctx: ctx, stop: stop,
		byID:       make(map[string]*Job),
		byHash:     make(map[string]*Job),
		tenantLoad: make(map[string]int),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	select {
	case <-j.Done():
	case <-ctx.Done():
		t.Fatalf("job %s did not finish: state %s", j.ID, j.State())
	}
}

// TestSTAJobMatchesDirectRun: a job's STA payload must be bit-identical to
// the same configuration run directly against the sta package.
func TestSTAJobMatchesDirectRun(t *testing.T) {
	lib := testLibertyText(t)
	cfg := staConfig(100)
	cfg.Liberty = lib

	m := NewManager(Options{Telemetry: telemetry.New()})
	defer m.Close()
	j, err := m.Submit(cfg, "t1", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if err := j.Err(); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	got := j.Result().STA
	want := directSTA(t, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("service STA payload differs from direct run:\n got %+v\nwant %+v", got, want)
	}
	if got.WorstSlack == nil {
		t.Fatal("no worst slack in payload")
	}
	// Slack must be constant (±1 fs) along the elmore critical path: the
	// service result inherits the timer's slack-consistency guarantee.
	for i := 1; i < len(got.Slacks); i++ {
		if d := got.Slacks[i].Slack - got.Slacks[0].Slack; d > 1e-15 || d < -1e-15 {
			t.Errorf("slack not constant: %v", got.Slacks)
		}
	}
}

// TestConcurrentSubmissionsBitIdentical: many distinct jobs submitted
// concurrently, executed by several runners over a sharded pool, must each
// match their direct run exactly.
func TestConcurrentSubmissionsBitIdentical(t *testing.T) {
	lib := testLibertyText(t)
	m := NewManager(Options{Runners: 3, Workers: 2, Shards: 4, Telemetry: telemetry.New()})
	defer m.Close()

	slews := []int{60, 80, 100, 120, 140, 160}
	jobsOut := make([]*Job, len(slews))
	var wg sync.WaitGroup
	for i, s := range slews {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			cfg := staConfig(s)
			cfg.Liberty = lib
			j, err := m.Submit(cfg, fmt.Sprintf("tenant-%d", i%2), i%3)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobsOut[i] = j
		}(i, s)
	}
	wg.Wait()
	for i, j := range jobsOut {
		if j == nil {
			continue
		}
		waitDone(t, j)
		if err := j.Err(); err != nil {
			t.Fatalf("job %d failed: %v", i, err)
		}
		cfg := staConfig(slews[i])
		cfg.Liberty = lib
		want := directSTA(t, cfg)
		if !reflect.DeepEqual(j.Result().STA, want) {
			t.Errorf("job %d payload differs from direct run", i)
		}
	}
}

// TestPushoutJobMatchesDirectRunSharded: a spice-backed sweep job, sharded
// over the pool, must be bit-identical to the direct experiments driver.
func TestPushoutJobMatchesDirectRunSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("transistor-level sweep")
	}
	cfg := Config{Experiment: ExpPushout, Cases: 3, RangeS: 0.4e-9}
	m := NewManager(Options{Workers: 2, Shards: 2, Telemetry: telemetry.New()})
	defer m.Close()
	j, err := m.Submit(cfg, "t1", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if err := j.Err(); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	got := j.Result().Pushout

	direct, err := experiments.RunPushout(crosstalkConfig("I"), experiments.PushoutOptions{
		Cases: 3, Range: 0.4e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.QuietArrival != direct.QuietArrival || got.Mean != direct.Mean ||
		got.Min != direct.Min || got.Max != direct.Max ||
		!reflect.DeepEqual(got.Pushouts, direct.Pushouts) {
		t.Errorf("sharded service pushout differs from direct run:\n got %+v\nwant %+v", got, direct)
	}

	done, total := j.Progress()
	if done != 3 || total != 3 {
		t.Errorf("progress = %d/%d, want 3/3", done, total)
	}
}

// TestCacheHitServesResubmissionWithZeroSolves: resubmitting an identical
// config must return a terminal job sharing the stored result, counted in
// jobs.cache_hits, with no new spice solves (spice.* counters frozen).
func TestCacheHitServesResubmissionWithZeroSolves(t *testing.T) {
	if testing.Short() {
		t.Skip("transistor-level sweep")
	}
	reg := telemetry.New()
	cfg := Config{Experiment: ExpPushout, Cases: 2, RangeS: 0.4e-9}
	m := NewManager(Options{Telemetry: reg})
	defer m.Close()

	j1, err := m.Submit(cfg, "t1", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	if err := j1.Err(); err != nil {
		t.Fatalf("first job failed: %v", err)
	}
	before := reg.Snapshot()

	// Different tenant, different priority, same content: must hit.
	j2, err := m.Submit(cfg, "t2", 9)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit || j2.State() != StateDone {
		t.Fatalf("resubmission not served from cache: hit=%v state=%s", j2.CacheHit, j2.State())
	}
	if j2.Result() != j1.Result() {
		t.Error("cache hit does not share the stored result")
	}
	delta := reg.Snapshot().Delta(before)
	if got := delta.Counters["jobs.cache_hits"]; got != 1 {
		t.Errorf("jobs.cache_hits delta = %d, want 1", got)
	}
	for name, v := range delta.Counters {
		if strings.HasPrefix(name, "spice.") && v != 0 {
			t.Errorf("cache hit ran solves: %s moved by %d", name, v)
		}
	}
	for name, ts := range delta.Timers {
		if strings.HasPrefix(name, "spice.") && ts.Count != 0 {
			t.Errorf("cache hit ran solves: timer %s fired %d times", name, ts.Count)
		}
	}
}

// TestCacheHitSTA: the cheap-path version of the cache test, run even with
// -short: identical STA configs share one result.
func TestCacheHitSTA(t *testing.T) {
	lib := testLibertyText(t)
	cfg := staConfig(100)
	cfg.Liberty = lib
	reg := telemetry.New()
	m := NewManager(Options{Telemetry: reg})
	defer m.Close()

	j1, err := m.Submit(cfg, "t1", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	j2, err := m.Submit(cfg, "t1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit || j2.Result() != j1.Result() {
		t.Error("identical STA config not served from cache")
	}
	if got := reg.Counter("jobs.cache_hits").Value(); got != 1 {
		t.Errorf("jobs.cache_hits = %d, want 1", got)
	}
	if j1.Hash != j2.Hash || j1.Hash == "" {
		t.Errorf("hashes differ: %q vs %q", j1.Hash, j2.Hash)
	}
}

// TestQuotaRejection: a tenant's queued+running jobs are bounded; the
// excess submission fails with ErrQuota while other tenants still submit.
func TestQuotaRejection(t *testing.T) {
	lib := testLibertyText(t)
	reg := telemetry.New()
	m := newStoppedManager(Options{TenantQuota: 2, Backlog: 16, Telemetry: reg})
	for i := 0; i < 2; i++ {
		cfg := staConfig(60 + i)
		cfg.Liberty = lib
		if _, err := m.Submit(cfg, "greedy", 0); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	cfg := staConfig(99)
	cfg.Liberty = lib
	if _, err := m.Submit(cfg, "greedy", 0); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota submit: err = %v, want ErrQuota", err)
	}
	if _, err := m.Submit(cfg, "polite", 0); err != nil {
		t.Fatalf("other tenant blocked by greedy tenant's quota: %v", err)
	}
	if got := reg.Counter("jobs.rejected_quota").Value(); got != 1 {
		t.Errorf("jobs.rejected_quota = %d, want 1", got)
	}
}

// TestBacklogRejection: the global queue is bounded regardless of tenant.
func TestBacklogRejection(t *testing.T) {
	lib := testLibertyText(t)
	reg := telemetry.New()
	m := newStoppedManager(Options{Backlog: 3, TenantQuota: 100, Telemetry: reg})
	for i := 0; i < 3; i++ {
		cfg := staConfig(60 + i)
		cfg.Liberty = lib
		if _, err := m.Submit(cfg, fmt.Sprintf("t%d", i), 0); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	cfg := staConfig(99)
	cfg.Liberty = lib
	if _, err := m.Submit(cfg, "t9", 0); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("over-backlog submit: err = %v, want ErrBacklogFull", err)
	}
	if got := reg.Counter("jobs.rejected_backlog").Value(); got != 1 {
		t.Errorf("jobs.rejected_backlog = %d, want 1", got)
	}
}

// TestPriorityOrdering: the queue pops by descending priority, FIFO within
// a level.
func TestPriorityOrdering(t *testing.T) {
	lib := testLibertyText(t)
	m := newStoppedManager(Options{Backlog: 16, TenantQuota: 16})
	prios := []int{0, 5, 3, 5, 1}
	ids := make([]string, len(prios))
	for i, p := range prios {
		cfg := staConfig(60 + i)
		cfg.Liberty = lib
		j, err := m.Submit(cfg, "t", p)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	var got []string
	m.mu.Lock()
	for m.pending.Len() > 0 {
		got = append(got, heap.Pop(&m.pending).(*Job).ID)
	}
	m.mu.Unlock()
	want := []string{ids[1], ids[3], ids[2], ids[4], ids[0]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pop order %v, want %v (priorities %v)", got, want, prios)
	}
}

// TestCancelQueuedReleasesQuota: canceling a queued job frees its tenant
// slot and terminates the job.
func TestCancelQueuedReleasesQuota(t *testing.T) {
	lib := testLibertyText(t)
	m := newStoppedManager(Options{TenantQuota: 1, Backlog: 16})
	cfg := staConfig(60)
	cfg.Liberty = lib
	j, err := m.Submit(cfg, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := staConfig(61)
	cfg2.Liberty = lib
	if _, err := m.Submit(cfg2, "t", 0); !errors.Is(err, ErrQuota) {
		t.Fatalf("expected quota rejection, got %v", err)
	}
	if !m.Cancel(j.ID) {
		t.Fatal("cancel returned false")
	}
	if j.State() != StateCanceled {
		t.Fatalf("state = %s, want canceled", j.State())
	}
	select {
	case <-j.Done():
	default:
		t.Error("done channel not closed after cancel")
	}
	if _, err := m.Submit(cfg2, "t", 0); err != nil {
		t.Fatalf("quota slot not released by cancel: %v", err)
	}
	if m.Cancel(j.ID) {
		t.Error("canceling a terminal job reported success")
	}
}

// TestCloseFailsQueuedJobs: Close cancels the backlog and rejects further
// submissions.
func TestCloseFailsQueuedJobs(t *testing.T) {
	lib := testLibertyText(t)
	m := NewManager(Options{Telemetry: telemetry.New()})
	cfg := staConfig(60)
	cfg.Liberty = lib
	j, _ := m.Submit(cfg, "t", 0)
	m.Close()
	waitDone(t, j)
	if _, err := m.Submit(cfg, "t", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

// TestConfigValidation exercises the Normalized error paths the HTTP layer
// maps to 400s.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Experiment: "frobnicate"},
		{Experiment: ExpTable1, Config: "III"},
		{Experiment: ExpTable1, Techniques: []string{"NOPE"}},
		{Experiment: ExpTable1, Seed: 7},
		{Experiment: ExpTable1, Netlist: "design x"},
		{Experiment: ExpSTA},
		{Experiment: ExpSTA, Netlist: "design x"},
		{Experiment: ExpSTA, Netlist: "design x", Liberty: "library(l){}", Wire: "rc-tree"},
		{Experiment: ExpSTA, Netlist: "design x", Liberty: "library(l){}", Technique: "NOPE"},
		{Experiment: ExpSTA, Netlist: "design x", Liberty: "library(l){}", Cases: 5},
	}
	for i, c := range bad {
		if _, err := c.Normalized(); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("config %d: err = %v, want ErrInvalidConfig", i, err)
		}
	}
	good, err := Config{Experiment: ExpTable1}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if good.Config != "I" || good.Cases != 200 || good.P == 0 || good.RangeS != 1e-9 {
		t.Errorf("defaults not applied: %+v", good)
	}
}

// TestHashSemantics: equal content hashes equally; any scientific field
// change re-addresses the config.
func TestHashSemantics(t *testing.T) {
	a, err := Config{Experiment: ExpTable1}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Config{Experiment: ExpTable1, Config: "i", Cases: 200}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Error("equivalent configs hash differently")
	}
	c, err := Config{Experiment: ExpTable1, Cases: 201}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == c.Hash() {
		t.Error("different case counts hash equally")
	}
}

// TestArtifactsWritten: with ArtifactsDir set, a finished job leaves its
// audit trail on disk.
func TestArtifactsWritten(t *testing.T) {
	lib := testLibertyText(t)
	dir := t.TempDir()
	m := NewManager(Options{Telemetry: telemetry.New(), ArtifactsDir: dir})
	defer m.Close()
	cfg := staConfig(100)
	cfg.Liberty = lib
	j, err := m.Submit(cfg, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	for _, name := range []string{"config.json", "metrics.json", "failures.json"} {
		if _, err := os.ReadFile(filepath.Join(dir, j.ID, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
}

// TestSTAJobIdealWireSlack pins the ideal-wire slack arithmetic end to end
// through the service: a 3-gate chain with 10+20+12 ps of cell delay
// against a 500 ps constraint.
func TestSTAJobIdealWireSlack(t *testing.T) {
	lib := testLibertyText(t)
	cfg := Config{
		Experiment: ExpSTA,
		Netlist:    testNetlistText(100),
		Liberty:    lib,
		Wire:       "ideal",
		Require:    map[string]string{"y": "500ps"},
	}
	m := NewManager(Options{Telemetry: telemetry.New()})
	defer m.Close()
	j, err := m.Submit(cfg, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	p := j.Result().STA
	// a rise -> n1 fall (+12ps INV) -> n2 fall (+20ps BUF) -> y rise (+10ps INV)
	wantAT := 42e-12
	if p.WorstAT < wantAT-1e-15 || p.WorstAT > wantAT+1e-15 {
		t.Errorf("worst arrival = %g, want %g", p.WorstAT, wantAT)
	}
	if p.WorstSlack == nil {
		t.Fatal("no worst slack")
	}
	wantSlack := 500e-12 - wantAT
	if d := p.WorstSlack.Slack - wantSlack; d > 1e-15 || d < -1e-15 {
		t.Errorf("worst slack = %g, want %g", p.WorstSlack.Slack, wantSlack)
	}
}
