package spice

import (
	"testing"

	"noisewave/internal/circuit"
)

// TestRejectedStepKeepsBreakpointAlignment is the regression test for a
// step-control bug: breakpoint alignment used to be computed once per
// outer step, and a rejected attempt cleared the hit flag before halving.
// A retried, halved step that still lands on the breakpoint (within the
// 1e-21 s alignment tolerance) was then accepted with hitBP=false, so the
// post-breakpoint backward-Euler damping (beSteps = 2) was silently
// skipped and the source corner was integrated with undamped trapezoidal
// steps. Alignment is now re-evaluated on every attempt.
//
// The 1e-21 tolerance is absolute, so the scenario only arises when step
// sizes are within a few orders of magnitude of it: a zeptosecond-scale
// RC (tau = R·C = 1e-21 s) driven by a PWL corner at 6e-21 s, stepped at
// 1e-21 s. A forced rejection at t = 5e-21 halves the breakpoint-aligned
// step; the retry lands at 5.5e-21, within tolerance of the corner.
func TestRejectedStepKeepsBreakpointAlignment(t *testing.T) {
	const bp = 6e-21
	ckt := circuit.New()
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.AddVSource("vin", in, circuit.Ground, circuit.PWL{
		T: []float64{0, bp}, V: []float64{0, 1},
	})
	ckt.AddResistor(in, out, 1e-3)
	ckt.AddCapacitor(out, circuit.Ground, 1e-18)

	sim := New(ckt, Options{Stop: 10e-21, Step: 1e-21, RecordSteps: true})
	rejected := false
	sim.testForceReject = func(tt, h float64) bool {
		if !rejected && tt > 4.5e-21 {
			rejected = true
			return true
		}
		return false
	}

	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rejected {
		t.Fatal("force-reject hook never fired; test setup is broken")
	}

	// Find the accepted step that survived the rejection.
	ri := -1
	for i, st := range res.Trace {
		if st.Rejects > 0 {
			ri = i
			break
		}
	}
	if ri < 0 {
		t.Fatalf("no trace entry with rejects; trace: %+v", res.Trace)
	}
	st := res.Trace[ri]
	if st.Rejects != 1 {
		t.Errorf("rejected step retried %d times, want 1", st.Rejects)
	}
	// The halved retry lands at 5.5e-21, within the 1e-21 alignment
	// tolerance of the 6e-21 corner: it must still count as a breakpoint
	// hit so the damping kicks in.
	if st.T > bp+1e-21 {
		t.Fatalf("rejected step accepted at t=%.3g, expected at/before the %.3g breakpoint", st.T, bp)
	}
	if !st.HitBP {
		t.Errorf("step accepted at t=%.3g after rejection lost its breakpoint hit (HitBP=false)", st.T)
	}
	// The two steps after the breakpoint must be damped with backward
	// Euler, exactly as they are when no rejection occurs.
	for k := 1; k <= 2 && ri+k < len(res.Trace); k++ {
		if got := res.Trace[ri+k].Method; got != BackwardEuler {
			t.Errorf("step %d after breakpoint used %v, want BE damping", k, got)
		}
	}
}

// TestStepTraceBaseline pins the trace in the no-rejection case: the step
// that lands on the breakpoint is flagged, and the two following steps are
// backward Euler. This is the behaviour the regression test above checks
// is preserved under rejection.
func TestStepTraceBaseline(t *testing.T) {
	ckt := circuit.New()
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.AddVSource("vin", in, circuit.Ground, circuit.PWL{
		T: []float64{0, 3e-12}, V: []float64{0, 1},
	})
	ckt.AddResistor(in, out, 1e3)
	ckt.AddCapacitor(out, circuit.Ground, 1e-15)

	sim := New(ckt, Options{Stop: 10e-12, Step: 1e-12, RecordSteps: true})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	hit := -1
	for i, st := range res.Trace {
		if st.HitBP {
			hit = i
			break
		}
	}
	if hit < 0 {
		t.Fatalf("no step hit the 3 ps breakpoint; trace: %+v", res.Trace)
	}
	for k := 1; k <= 2; k++ {
		if got := res.Trace[hit+k].Method; got != BackwardEuler {
			t.Errorf("step %d after breakpoint used %v, want BE", k, got)
		}
	}
	for _, st := range res.Trace {
		if st.Rejects != 0 {
			t.Errorf("unexpected rejection at t=%g", st.T)
		}
	}
}
