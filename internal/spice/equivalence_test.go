package spice

// Equivalence suite for the solver fast path: every circuit shape the
// reproduction simulates is run through both solver paths — the fast path
// (partitioned stamping, cached-LU modified Newton, sparse residual) and
// the historical slow path behind Options.NoFastPath — and the results are
// pinned against each other.
//
// The two paths are not bitwise identical: the fast path's modified Newton
// iterates against a stale Jacobian and takes a different sequence of
// damped updates, so both converge to the same fixed point but stop at
// (very slightly) different iterates. What IS required:
//
//   - identical accepted-step sequences (sample-for-sample equal Time
//     grids), because step acceptance is driven by Newton convergence and
//     LTE, and both paths must make the same control decisions;
//   - node voltages within a fraction of the Newton tolerance VTol at
//     every sample: each converged solve differs by sub-VTol amounts and
//     the integration history accumulates them, so the natural bound is
//     VTol-relative, not absolute (observed worst case ≈ 0.06·VTol; the
//     suite pins 0.25·VTol). A tightened-VTol case proves the gap scales
//     down with the tolerance — the fixed points genuinely coincide;
//   - identical recovery-ladder engagement under injected faults, because
//     the injector fires on solveTransient call ordinals and a fast/slow
//     pair that diverged in step control would consume different ordinals.

import (
	"math"
	"testing"

	"noisewave/internal/circuit"
	"noisewave/internal/device"
	"noisewave/internal/faultinject"
	"noisewave/internal/wave"
)

// equivTol returns the per-sample voltage agreement the suite demands
// between the two solver paths for a run at the given options:
// |Δv| ≤ equivTol·max(1, |v|), set to a quarter of the effective Newton
// tolerance (4× margin over the observed worst case of ≈ 0.06·VTol).
func equivTol(opts Options) float64 {
	vtol := opts.VTol
	if vtol == 0 {
		vtol = 1e-6 // validate()'s default
	}
	return vtol / 4
}

// chainCircuit is the experiments' receiver shape with a switching input:
// a ×1 driver into a ×4 / ×16 fanout chain, rising ramp on the input.
func chainCircuit(tech device.Tech, edge wave.Edge) *circuit.Circuit {
	ckt := circuit.New()
	in := ckt.Node("in")
	mid := ckt.Node("mid")
	out := ckt.Node("out")
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
	ckt.AddVSource("vin", in, circuit.Ground,
		circuit.SlewRamp(0.2e-9, 150e-12, tech.Vdd, edge))
	ckt.AddInverter("u1", tech, 1, in, mid, vdd)
	ckt.AddInverter("u2", tech, 4, mid, out, vdd)
	ckt.AddInverter("u3", tech, 16, out, ckt.Node("out2"), vdd)
	return ckt
}

// coupledCircuit couples two driven RC lines through a bridge capacitor —
// the aggressor/victim shape of the crosstalk testbench, linear except for
// the victim's receiving inverter.
func coupledCircuit(tech device.Tech) *circuit.Circuit {
	ckt := circuit.New()
	va := ckt.Node("va")
	vb := ckt.Node("vb")
	fa := ckt.Node("fa")
	fb := ckt.Node("fb")
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
	ckt.AddVSource("vs_a", va, circuit.Ground,
		circuit.SlewRamp(0.2e-9, 100e-12, tech.Vdd, wave.Rising))
	ckt.AddVSource("vs_b", vb, circuit.Ground,
		circuit.SlewRamp(0.25e-9, 80e-12, tech.Vdd, wave.Falling))
	ckt.AddResistor(va, fa, 500)
	ckt.AddResistor(vb, fb, 700)
	ckt.AddCapacitor(fa, circuit.Ground, 20e-15)
	ckt.AddCapacitor(fb, circuit.Ground, 25e-15)
	ckt.AddCapacitor(fa, fb, 40e-15) // coupling bridge
	ckt.AddInverter("u_rx", tech, 4, fa, ckt.Node("out"), vdd)
	return ckt
}

// equivCases enumerates the suite's circuit × options grid.
func equivCases() []struct {
	name  string
	build func() *circuit.Circuit
	opts  Options
} {
	tech := device.Default130()
	return []struct {
		name  string
		build func() *circuit.Circuit
		opts  Options
	}{
		{
			name:  "rc-linear-trap",
			build: rcCircuit,
			opts:  Options{Stop: 5e-9, Step: 5e-12},
		},
		{
			name:  "rc-linear-be",
			build: rcCircuit,
			opts:  Options{Stop: 5e-9, Step: 5e-12, Method: BackwardEuler},
		},
		{
			name:  "inverter-trap",
			build: func() *circuit.Circuit { return inverterCircuit(tech) },
			opts:  Options{Stop: 1e-9, Step: 1e-12},
		},
		{
			name:  "chain-rising-trap",
			build: func() *circuit.Circuit { return chainCircuit(tech, wave.Rising) },
			opts:  Options{Stop: 1.2e-9, Step: 1e-12},
		},
		{
			name:  "chain-falling-be",
			build: func() *circuit.Circuit { return chainCircuit(tech, wave.Falling) },
			opts:  Options{Stop: 1.2e-9, Step: 1e-12, Method: BackwardEuler},
		},
		{
			name:  "chain-rising-adaptive",
			build: func() *circuit.Circuit { return chainCircuit(tech, wave.Rising) },
			opts:  Options{Stop: 1.2e-9, Step: 1e-12, Adaptive: true},
		},
		{
			// Tightening VTol 100× must tighten the fast/slow gap with it:
			// the paths share a fixed point, they don't just happen to land
			// near each other at the default tolerance.
			name:  "chain-rising-tight-vtol",
			build: func() *circuit.Circuit { return chainCircuit(tech, wave.Rising) },
			opts:  Options{Stop: 1.2e-9, Step: 1e-12, VTol: 1e-8},
		},
		{
			name:  "coupled-trap",
			build: func() *circuit.Circuit { return coupledCircuit(tech) },
			opts:  Options{Stop: 1.5e-9, Step: 1e-12},
		},
	}
}

// runEquivPair runs the same circuit/options through the fast and slow
// paths and returns both results.
func runEquivPair(t *testing.T, build func() *circuit.Circuit, opts Options) (fast, slow *Result) {
	t.Helper()
	fastOpts := opts
	fastOpts.NoFastPath = false
	slowOpts := opts
	slowOpts.NoFastPath = true
	fast, err := New(build(), fastOpts).Run()
	if err != nil {
		t.Fatalf("fast-path Run: %v", err)
	}
	slow, err = New(build(), slowOpts).Run()
	if err != nil {
		t.Fatalf("slow-path Run: %v", err)
	}
	return fast, slow
}

// assertResultsEquivalent pins the fast result to the slow reference:
// identical time grids, per-sample voltages within tol.
func assertResultsEquivalent(t *testing.T, fast, slow *Result, tol float64) {
	t.Helper()
	if fast.Steps() != slow.Steps() {
		t.Fatalf("step counts diverge: fast %d, slow %d", fast.Steps(), slow.Steps())
	}
	for i := range slow.Time {
		if fast.Time[i] != slow.Time[i] {
			t.Fatalf("time grids diverge at sample %d: fast %.9g, slow %.9g",
				i, fast.Time[i], slow.Time[i])
		}
	}
	for _, node := range slow.Nodes() {
		vf, err := fast.Voltage(node)
		if err != nil {
			t.Fatalf("fast result lost node %q: %v", node, err)
		}
		vs, _ := slow.Voltage(node)
		worst, at := 0.0, 0
		for i := range vs {
			d := math.Abs(vf[i]-vs[i]) / math.Max(1, math.Abs(vs[i]))
			if d > worst {
				worst, at = d, i
			}
		}
		if worst > tol {
			t.Errorf("node %q: fast/slow diverge by %.3g at t=%.6g (tol %g)",
				node, worst, slow.Time[at], tol)
		}
	}
}

// TestFastPathEquivalence: transient equivalence over the full circuit ×
// method × step-control grid.
func TestFastPathEquivalence(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			fast, slow := runEquivPair(t, tc.build, tc.opts)
			assertResultsEquivalent(t, fast, slow, equivTol(tc.opts))
		})
	}
}

// TestFastPathOperatingPointEquivalence: the DC solve through both paths
// agrees on every node, on both a linear and a nonlinear circuit.
func TestFastPathOperatingPointEquivalence(t *testing.T) {
	tech := device.Default130()
	for _, tc := range []struct {
		name  string
		build func() *circuit.Circuit
	}{
		{"rc", rcCircuit},
		{"chain", func() *circuit.Circuit { return chainCircuit(tech, wave.Rising) }},
		{"coupled", func() *circuit.Circuit { return coupledCircuit(tech) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Stop: 1e-9, Step: 1e-12}
			fastOpts, slowOpts := opts, opts
			slowOpts.NoFastPath = true
			fastOP, err := New(tc.build(), fastOpts).OperatingPoint()
			if err != nil {
				t.Fatalf("fast OperatingPoint: %v", err)
			}
			slowOP, err := New(tc.build(), slowOpts).OperatingPoint()
			if err != nil {
				t.Fatalf("slow OperatingPoint: %v", err)
			}
			if len(fastOP) != len(slowOP) {
				t.Fatalf("node sets diverge: fast %d, slow %d", len(fastOP), len(slowOP))
			}
			for node, vs := range slowOP {
				vf, ok := fastOP[node]
				if !ok {
					t.Fatalf("fast OP lost node %q", node)
				}
				if d := math.Abs(vf-vs) / math.Max(1, math.Abs(vs)); d > equivTol(opts) {
					t.Errorf("node %q: OP diverges by %.3g (fast %.12g, slow %.12g)",
						node, d, vf, vs)
				}
			}
		})
	}
}

// TestChaosFastPathRecoveryEquivalence: under identical injected fault
// schedules the two paths must engage the recovery ladder identically —
// same rung counts, same budget usage — and still agree on the waveforms.
// The injector fires on solveTransient call ordinals, so this doubles as a
// check that the paths make the same sequence of step-control decisions.
func TestChaosFastPathRecoveryEquivalence(t *testing.T) {
	tech := device.Default130()
	for _, tc := range []struct {
		name  string
		build func() *circuit.Circuit
		cfg   faultinject.Config
	}{
		{
			// Capped all-attempts divergence: burns the halving loop, then
			// the ladder recovers (rung 2/3).
			name:  "rc-divergence",
			build: rcCircuit,
			cfg:   faultinject.Config{NewtonEvery: 1, NewtonMax: 17},
		},
		{
			// Scattered divergence plus NaN poisoning on the nonlinear chain.
			name:  "chain-mixed",
			build: func() *circuit.Circuit { return chainCircuit(tech, wave.Rising) },
			cfg:   faultinject.Config{Seed: 7, NewtonEvery: 90, NaNEvery: 130},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Stop: 1.2e-9, Step: 1e-12}
			fastOpts, slowOpts := opts, opts
			fastOpts.Inject = faultinject.New(tc.cfg)
			slowOpts.Inject = faultinject.New(tc.cfg)
			slowOpts.NoFastPath = true
			fast, err := New(tc.build(), fastOpts).Run()
			if err != nil {
				t.Fatalf("fast-path chaos Run: %v", err)
			}
			slow, err := New(tc.build(), slowOpts).Run()
			if err != nil {
				t.Fatalf("slow-path chaos Run: %v", err)
			}
			if fast.Recovery != slow.Recovery {
				t.Fatalf("recovery reports diverge:\n fast %+v\n slow %+v",
					fast.Recovery, slow.Recovery)
			}
			if !fast.Recovery.Recovered() && fast.Recovery.StepCuts == 0 {
				t.Fatalf("injection was a no-op (report %+v); the test lost its teeth",
					fast.Recovery)
			}
			assertResultsEquivalent(t, fast, slow, equivTol(opts))
		})
	}
}
