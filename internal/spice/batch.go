package spice

// Batched multi-case transient: K sweep cases whose sources agree on a
// shared prefix of the run window are solved in lockstep — one DC operating
// point and one shared trunk of transient steps, then a per-case
// continuation forked from the trunk's final state. The contract is bit
// identity: every case's delivered result equals, sample for sample, what a
// scalar Run of that case would have produced. That holds because
//
//   - the trunk only takes steps whose every *attempt* (including rejected
//     ones, which probe up to t+base) samples the sources strictly before
//     the shared horizon, where the caller guarantees all cases agree;
//   - the fork snapshot restores the complete solver state a scalar run
//     would carry at that point — iterate and step history, dynamic-element
//     state, the cached LU factorization with its sparse elimination order,
//     and the reuse-policy accumulators — byte for byte;
//   - each continuation re-verifies that the case's own source breakpoints
//     match the trunk's below the horizon; a case whose breakpoint prefix
//     differs (so the trunk's step grid is not the grid its scalar run
//     would have chosen) is peeled off to an ordinary scalar Run.
//
// Whole batches fall back to scalar runs when sharing is impossible or
// unverifiable: fast path disabled, a fault injector armed (injection
// schedules are per-run, not per-case-suffix), an empty shared window, or a
// dynamic element whose state cannot be snapshotted.

import (
	"context"
	"errors"
	"time"

	"noisewave/internal/circuit"
	"noisewave/internal/linalg"
	"noisewave/internal/telemetry"
	"noisewave/internal/trace"
)

// BatchCase describes one case of a batched run.
type BatchCase struct {
	// Stop is the case's run-window end (the window starts at RunBatch's
	// shared start).
	Stop float64
	// Retarget points the shared circuit's sources at this case's
	// configuration. It is called before any solver work for the case; the
	// sources it installs must agree with every other case's on
	// [start, shareUntil).
	Retarget func()
}

// batchState is the fork snapshot plus the reusable buffers of RunBatch,
// held on the Simulator so steady-state batching allocates nothing.
type batchState struct {
	x, xPrev, xPrevPrev []float64
	dyn                 []float64 // DynState snapshot of all dynamic elements
	bps                 []float64 // trunk's breakpoint list
	t, base, hPrev      float64
	beSteps             int
	move, rho           float64 // reuse-policy accumulators at the fork
	clu                 linalg.CachedLUState[luKey]
	rec                 RecoveryReport

	trunkRes *Result
	caseRes  *Result
	peel     []int // case indices peeled off to scalar runs
}

// bpSlop is the breakpoint-alignment tolerance of alignStep; the trunk
// horizon and the breakpoint-prefix verification reason in multiples of it.
const bpSlop = 1e-21

// RunBatch solves every case over [start, case.Stop] and hands each result
// to deliver(i, res, err), in unspecified case order. The caller guarantees
// that all cases' sources agree on [start, shareUntil); RunBatch clamps the
// shared horizon to the shortest case window and verifies each case's
// breakpoint prefix before reusing the trunk, so a violated guarantee about
// breakpointed sources degrades to a scalar run, not a wrong result.
//
// The *Result passed to deliver is only valid during the callback — its
// storage is recycled for the next case. A case that fails mid-run is
// delivered with the salvageable prefix result and its error, exactly as a
// scalar Run returns both; the remaining cases still run. RunBatch itself
// returns the first deliver error (aborting the batch), a cancellation, or
// nil.
func (s *Simulator) RunBatch(ctx context.Context, start, shareUntil float64, cases []BatchCase, deliver func(i int, res *Result, err error) error) error {
	if len(cases) == 0 {
		return nil
	}
	share := shareUntil
	for i := range cases {
		if cases[i].Stop < share {
			share = cases[i].Stop
		}
	}
	shared := share > start && !s.opts.NoFastPath && s.opts.Inject == nil
	if shared {
		for _, d := range s.dynamics {
			if _, ok := d.(circuit.DynState); !ok {
				shared = false
				break
			}
		}
	}
	reg := s.opts.Telemetry
	if reg != nil {
		reg.Counter("spice.batch.cases").Add(int64(len(cases)))
	}
	if !shared {
		if reg != nil {
			reg.Counter("spice.batch.scalar_fallbacks").Inc()
		}
		return s.runScalarCases(ctx, start, cases, nil, deliver)
	}

	// Trunk setup mirrors Run: validate, DC operating point, dynamic-state
	// init, breakpoints, stepping state. The trunk runs under case 0's
	// sources and window; below the shared horizon that is every case.
	cases[0].Retarget()
	s.opts.Ctx = ctx
	s.opts.Start = start
	s.opts.Stop = cases[0].Stop
	if err := (&s.opts).validate(); err != nil {
		return err
	}
	s.fast = true
	s.stats.wallStart = time.Now()
	_, span := trace.Start(ctx, "spice.batch",
		trace.Float("start_s", start), trace.Float("share_until_s", share),
		trace.Int64("cases", int64(len(cases))))
	s.span = span

	bs := s.bs
	if bs == nil {
		bs = &batchState{}
		s.bs = bs
	}
	bs.peel = bs.peel[:0]

	// finish closes the span and flushes the accumulated engine counters
	// under the batch names. It must run before any scalar fallback Run,
	// whose own flush would otherwise misattribute the batch's counters.
	finish := func(trunkSteps int) {
		span.SetAttr(
			trace.Int64("newton_iterations", s.stats.nrIters),
			trace.Int64("trunk_steps", int64(trunkSteps)),
			trace.Int64("peeled_cases", int64(len(bs.peel))),
		)
		span.End()
		s.span = nil
		s.recovery = nil
		if reg != nil {
			reg.Counter("spice.batch.trunk_steps").Add(int64(trunkSteps))
			reg.Counter("spice.batch.peeled_cases").Add(int64(len(bs.peel)))
		}
		s.flushTelemetry("spice.batch.runs", "spice.batch.seconds")
	}

	opSpan := span.Child("spice.op")
	if _, err := s.solveOP(); err != nil {
		opSpan.SetAttr(trace.String("error", err.Error()))
		opSpan.End()
		// The sources agree at Start, so every case's scalar DC solve fails
		// the same way; run them scalar so each case reports the failure
		// exactly as a scalar sweep would.
		for i := range cases {
			bs.peel = append(bs.peel, i)
		}
		finish(0)
		return s.runScalarCases(ctx, start, cases, bs.peel, deliver)
	}
	opSpan.End()
	for _, d := range s.dynamics {
		d.InitState(s.asm)
	}

	names := s.resolveProbes()
	if bs.trunkRes == nil || !sameNames(bs.trunkRes.names, names) {
		bs.trunkRes = newResult(names)
		bs.caseRes = newResult(names)
	}
	res := bs.trunkRes
	res.reset()
	rec := &res.Recovery
	if s.opts.RecoveryBudget > 0 {
		rec.Budget = s.opts.RecoveryBudget
	}
	s.recovery = rec
	s.recordSample(res, start)

	st := &s.tr
	st.bps = s.breakpoints(st.bps[:0])
	st.t = start
	st.base = s.opts.Step
	st.beSteps = 2
	n := s.ckt.Size()
	st.xPrev = resized(st.xPrev, n)
	copy(st.xPrev, s.asm.X)
	st.xPrevPrev = resized(st.xPrevPrev, n)
	copy(st.xPrevPrev, s.asm.X)
	st.hPrev = 0.0
	st.nNodes = s.ckt.NumNodes()

	// Shared trunk. The loop condition is strictly conservative: a step
	// attempt may probe any time up to t+base (a rejected full-size attempt
	// still samples the sources there before halving), so the trunk only
	// starts a step when even that worst case stays below the horizon —
	// with two alignment slops of margin, so the |bp−(t+h)| ≤ bpSlop hit
	// test in alignStep can never reach a breakpoint at or beyond it.
	// Every quantity the trunk computes therefore depends only on source
	// values and breakpoints strictly below share, which all cases share.
	for st.t+st.base < share-2*bpSlop {
		if err := s.stepTransient(res, rec, st); err != nil {
			if errors.Is(err, telemetry.ErrCanceled) {
				finish(len(res.Time) - 1)
				return err
			}
			// A hard trunk failure (recovery ladder exhausted) is common to
			// every case: fall back to scalar runs so each delivers its own
			// prefix-plus-error exactly as a scalar sweep would.
			for i := range cases {
				bs.peel = append(bs.peel, i)
			}
			finish(len(res.Time) - 1)
			return s.runScalarCases(ctx, start, cases, bs.peel, deliver)
		}
	}
	trunkSamples := len(res.Time)
	trunkTrace := len(res.Trace)

	// Fork snapshot: everything a scalar run carries at this point.
	bs.x = append(bs.x[:0], s.asm.X...)
	bs.xPrev = append(bs.xPrev[:0], st.xPrev...)
	bs.xPrevPrev = append(bs.xPrevPrev[:0], st.xPrevPrev...)
	bs.dyn = bs.dyn[:0]
	for _, d := range s.dynamics {
		bs.dyn = d.(circuit.DynState).AppendDynState(bs.dyn)
	}
	bs.bps = append(bs.bps[:0], st.bps...)
	bs.t, bs.base, bs.hPrev, bs.beSteps = st.t, st.base, st.hPrev, st.beSteps
	bs.move, bs.rho = s.moveSinceFactor, s.rhoEst
	s.clu.SaveState(&bs.clu)
	bs.rec = *rec

	for i := range cases {
		cases[i].Retarget()
		s.opts.Stop = cases[i].Stop
		st.bps = s.breakpoints(st.bps[:0])
		if !bpPrefixEqual(bs.bps, st.bps, share) {
			// The trunk's step grid is not the grid this case's scalar run
			// would have chosen; replay it from scratch instead.
			bs.peel = append(bs.peel, i)
			continue
		}

		// Restore the fork. The linear-baseline cache is rebuilt rather
		// than snapshotted: the rebuild is bitwise deterministic, so
		// invalidating it cannot perturb the trajectory.
		copy(s.asm.X, bs.x)
		copy(st.xPrev, bs.xPrev)
		copy(st.xPrevPrev, bs.xPrevPrev)
		off := 0
		for _, d := range s.dynamics {
			off += d.(circuit.DynState).LoadDynState(bs.dyn[off:])
		}
		st.t, st.base, st.hPrev, st.beSteps = bs.t, bs.base, bs.hPrev, bs.beSteps
		s.moveSinceFactor, s.rhoEst = bs.move, bs.rho
		s.clu.RestoreState(&bs.clu)
		s.bl.valid = false

		cres := bs.caseRes
		cres.reset()
		cres.Recovery = bs.rec
		s.recovery = &cres.Recovery
		cres.Time = append(cres.Time, res.Time[:trunkSamples]...)
		for j := range cres.v {
			cres.v[j] = append(cres.v[j], res.v[j][:trunkSamples]...)
		}
		if s.opts.RecordSteps {
			cres.Trace = append(cres.Trace, res.Trace[:trunkTrace]...)
		}

		var cerr error
		for st.t < s.opts.Stop-1e-21 {
			if err := s.stepTransient(cres, &cres.Recovery, st); err != nil {
				cerr = err
				break
			}
		}
		if derr := deliver(i, cres, cerr); derr != nil {
			finish(trunkSamples - 1)
			return derr
		}
		if cerr != nil && errors.Is(cerr, telemetry.ErrCanceled) {
			finish(trunkSamples - 1)
			return cerr
		}
	}

	// Peeled cases run as ordinary scalar transients after the batch's own
	// telemetry is flushed, so their flushes stay correctly attributed. An
	// empty peel list means every case was already delivered off the trunk —
	// it must not fall through to runScalarCases, whose nil-selector form
	// means "run all".
	finish(trunkSamples - 1)
	if len(bs.peel) == 0 {
		return nil
	}
	return s.runScalarCases(ctx, start, cases, bs.peel, deliver)
}

// runScalarCases runs the selected cases (all of them when only is nil) as
// ordinary scalar transients, delivering each result.
func (s *Simulator) runScalarCases(ctx context.Context, start float64, cases []BatchCase, only []int, deliver func(i int, res *Result, err error) error) error {
	run := func(i int) error {
		cases[i].Retarget()
		res, err := s.RunWindow(ctx, start, cases[i].Stop)
		if derr := deliver(i, res, err); derr != nil {
			return derr
		}
		if err != nil && errors.Is(err, telemetry.ErrCanceled) {
			return err
		}
		return nil
	}
	if only == nil {
		for i := range cases {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range only {
		if err := run(i); err != nil {
			return err
		}
	}
	return nil
}

// bpPrefixEqual reports whether two sorted breakpoint lists agree, exactly,
// on every breakpoint the trunk's stepping could have consulted: those
// strictly below the shared horizon less one alignment slop. (The trunk
// loop keeps every attempt at least two slops below the horizon, so a
// breakpoint at or past share−bpSlop can influence neither the trim test
// nor the hit test in alignStep.)
func bpPrefixEqual(a, b []float64, share float64) bool {
	lim := share - bpSlop
	na := 0
	for na < len(a) && a[na] < lim {
		na++
	}
	nb := 0
	for nb < len(b) && b[nb] < lim {
		nb++
	}
	if na != nb {
		return false
	}
	for k := 0; k < na; k++ {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}
