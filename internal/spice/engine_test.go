package spice

import (
	"math"
	"testing"

	"noisewave/internal/circuit"
	"noisewave/internal/device"
	"noisewave/internal/wave"
)

// TestRCStepResponse checks the simulator against the analytic exponential
// response of a single RC low-pass driven by a voltage step.
func TestRCStepResponse(t *testing.T) {
	const (
		r   = 1e3
		c   = 1e-12 // tau = 1 ns
		vdd = 1.0
	)
	ckt := circuit.New()
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.AddVSource("vin", in, circuit.Ground, circuit.PWL{
		T: []float64{0, 1e-12}, V: []float64{0, vdd},
	})
	ckt.AddResistor(in, out, r)
	ckt.AddCapacitor(out, circuit.Ground, c)

	sim := New(ckt, Options{Stop: 5e-9, Step: 5e-12})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	w, err := res.Waveform("out")
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	tau := r * c
	for _, tc := range []float64{0.5e-9, 1e-9, 2e-9, 4e-9} {
		want := vdd * (1 - math.Exp(-(tc-1e-12)/tau))
		got := w.At(tc)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("v(out) at t=%g: got %.4f want %.4f", tc, got, want)
		}
	}
	// Final value approaches vdd.
	if vf := w.At(5e-9); vf < 0.99 {
		t.Errorf("final value %.4f, want ~1", vf)
	}
}

// TestRCChargeConservation checks trapezoidal integration on a charge
// divider: two equal caps through a resistor settle to the mean voltage.
func TestRCChargeConservation(t *testing.T) {
	ckt := circuit.New()
	a := ckt.Node("a")
	b := ckt.Node("b")
	// Pre-charge node a to 1 V with a source that disconnects... an ideal
	// source cannot disconnect, so instead drive a through a tiny R from a
	// stepped source and check the divider midpoint behaviour at node b.
	src := ckt.Node("src")
	ckt.AddVSource("v", src, circuit.Ground, circuit.PWL{T: []float64{0, 1e-12}, V: []float64{0, 1}})
	ckt.AddResistor(src, a, 10)
	ckt.AddResistor(a, b, 1e4)
	ckt.AddCapacitor(a, circuit.Ground, 1e-13)
	ckt.AddCapacitor(b, circuit.Ground, 1e-13)
	sim := New(ckt, Options{Stop: 2e-8, Step: 2e-11})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	vb, err := res.Final("b")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vb-1) > 0.01 {
		t.Errorf("v(b) final = %.4f, want ~1 (fully charged)", vb)
	}
}

// TestInverterDC checks the static transfer curve: output high for low
// input, low for high input, and a transition region in between.
func TestInverterDC(t *testing.T) {
	tech := device.Default130()
	for _, vin := range []float64{0, 0.2, 1.0, 1.2} {
		ckt := circuit.New()
		in := ckt.Node("in")
		out := ckt.Node("out")
		vdd := ckt.Node("vdd")
		ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
		ckt.AddVSource("vin", in, circuit.Ground, circuit.DCSource(vin))
		ckt.AddInverter("u1", tech, 1, in, out, vdd)
		sim := New(ckt, Options{Stop: 1e-9, Step: 1e-11})
		op, err := sim.OperatingPoint()
		if err != nil {
			t.Fatalf("vin=%g: OperatingPoint: %v", vin, err)
		}
		vout := op["out"]
		if vin <= 0.2 && vout < tech.Vdd-0.05 {
			t.Errorf("vin=%g: vout=%.3f, want ~%.2f", vin, vout, tech.Vdd)
		}
		if vin >= 1.0 && vout > 0.05 {
			t.Errorf("vin=%g: vout=%.3f, want ~0", vin, vout)
		}
	}
}

// TestInverterTransient checks that an inverter chain inverts and that the
// stage delay is in a physically plausible range (1–100 ps for a ×1
// inverter driving a ×4 load in a 130 nm-class technology).
func TestInverterTransient(t *testing.T) {
	tech := device.Default130()
	ckt := circuit.New()
	in := ckt.Node("in")
	mid := ckt.Node("mid")
	out := ckt.Node("out")
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
	ckt.AddVSource("vin", in, circuit.Ground,
		circuit.SlewRamp(0.2e-9, 150e-12, tech.Vdd, wave.Rising))
	ckt.AddInverter("u1", tech, 1, in, mid, vdd)
	ckt.AddInverter("u2", tech, 4, mid, out, vdd)

	sim := New(ckt, Options{Stop: 1.5e-9, Step: 0.5e-12})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wIn, _ := res.Waveform("in")
	wMid, err := res.Waveform("mid")
	if err != nil {
		t.Fatal(err)
	}
	wOut, err := res.Waveform("out")
	if err != nil {
		t.Fatal(err)
	}
	// mid must fall, out must rise.
	if wMid.V[len(wMid.V)-1] > 0.1 {
		t.Fatalf("mid did not fall: final %.3f", wMid.V[len(wMid.V)-1])
	}
	if wOut.V[len(wOut.V)-1] < tech.Vdd-0.1 {
		t.Fatalf("out did not rise: final %.3f", wOut.V[len(wOut.V)-1])
	}
	half := 0.5 * tech.Vdd
	tin, err := wIn.LastCrossing(half)
	if err != nil {
		t.Fatal(err)
	}
	tmid, err := wMid.LastCrossing(half)
	if err != nil {
		t.Fatal(err)
	}
	d1 := tmid - tin
	if d1 < 0.5e-12 || d1 > 120e-12 {
		t.Errorf("stage-1 delay %.3g s out of plausible range", d1)
	}
}

// TestBreakpointAlignment ensures source knots are hit exactly so sharp
// edges are not smeared across a step.
func TestBreakpointAlignment(t *testing.T) {
	ckt := circuit.New()
	in := ckt.Node("in")
	ckt.AddVSource("vin", in, circuit.Ground, circuit.PWL{
		T: []float64{0, 0.33e-9, 0.34e-9}, V: []float64{0, 0, 1},
	})
	ckt.AddResistor(in, circuit.Ground, 1e6)
	sim := New(ckt, Options{Stop: 1e-9, Step: 0.1e-9})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := false
	for _, tt := range res.Time {
		if math.Abs(tt-0.33e-9) < 1e-15 {
			found = true
		}
	}
	if !found {
		t.Errorf("breakpoint 0.33ns not in time grid")
	}
	w, _ := res.Waveform("in")
	if v := w.At(0.33e-9); math.Abs(v) > 1e-9 {
		t.Errorf("edge smeared: v(0.33ns)=%g want 0", v)
	}
}

// TestNewtonFailureRecovery: a brutally fast edge into a nonlinear load
// should still converge via step halving.
func TestStiffEdge(t *testing.T) {
	tech := device.Default130()
	ckt := circuit.New()
	in := ckt.Node("in")
	out := ckt.Node("out")
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
	ckt.AddVSource("vin", in, circuit.Ground, circuit.PWL{
		T: []float64{0.1e-9, 0.1001e-9}, V: []float64{0, tech.Vdd}, // 0.1 ps edge
	})
	ckt.AddInverter("u1", tech, 16, in, out, vdd)
	sim := New(ckt, Options{Stop: 0.5e-9, Step: 1e-12})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v, _ := res.Final("out"); v > 0.05 {
		t.Errorf("output should be low, got %.3f", v)
	}
}
