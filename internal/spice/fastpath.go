package spice

import (
	"fmt"
	"math"

	"noisewave/internal/circuit"
)

// The solver fast path. Profiling the Table 1 sweeps shows the slow
// Newton loop spends ~70% of its time in dense LU factorization and most
// of the rest re-stamping elements whose contributions never change within
// a solve. The fast path removes both costs:
//
//   - Partitioned stamping: the iterate-independent stamps (resistors,
//     capacitor companions, sources, gmin) are assembled once per solve
//     into a baseline; each Newton iteration restores the baseline with a
//     flat copy and restamps only the nonlinear devices through their
//     cached stamp slots (circuit.Partition).
//
//   - Modified Newton with Jacobian reuse: the LU factorization is cached
//     across iterations and timesteps (linalg.CachedLU) and truly
//     refactored only when the stamp configuration changes (the luKey),
//     when the iterate has moved too far since the factorization, or when
//     convergence stalls (linalg.ReusePolicy). Through quiet stretches of
//     a transient this eliminates nearly every factorization.
//
// Correctness hinges on the iteration form. The slow path solves the
// linearized-companion system A(x_k)·x_{k+1} = B(x_k) directly; with a
// stale factorization LU ≈ A(x_old) that form converges to the wrong
// fixed point (LU⁻¹·B(x*) ≠ x*). The fast path therefore iterates in
// residual form,
//
//	r_k = B(x_k) − A(x_k)·x_k,   LU·δ = r_k,   x_{k+1} = x_k + λ·δ,
//
// whose fixed point (r = 0) is the true solution of the assembled system
// no matter how stale the factorization is — staleness only affects the
// convergence *rate*, which the ReusePolicy monitors. With a fresh LU the
// residual step is algebraically identical to the slow path's update, so
// the two paths agree to solver tolerance: each converged solve differs by
// well under VTol, the transient history carries those sub-VTol gaps
// forward, and the equivalence suite pins the end-to-end divergence to a
// fraction of VTol — shrinking in lockstep when VTol is tightened — on
// identical accepted-step grids; on convergence against a stale LU the solve
// either certifies the remaining error far below VTol or polishes with
// one fresh-Jacobian iteration. The recovery ladder (recovery.go) is
// unchanged and remains the backstop for solves that fail outright.

// luKey tags the stamp configuration a cached factorization was built
// under: any change to the analysis mode, the integration coefficients
// (method or step size) or the gmin homotopy rung makes the baseline
// matrix structurally different, so Ensure must refactor.
type luKey struct {
	mode      circuit.StampMode
	geq, hist float64
	gminExtra float64
}

// sparsity is the cached structural nonzero pattern of the assembled A
// matrix (CSR column lists), valid for one luKey: the baseline matrix is
// identical across solves with the same key, and the slot-cached devices
// can only write their cached positions, so the pattern never changes
// until the key does. The residual loop uses it to skip the ~95% of a
// ladder-network MNA row that is structurally zero.
type sparsity struct {
	valid  bool
	key    luKey
	rowPtr []int32
	cols   []int32
}

// refreshPattern rebuilds the pattern from the fully assembled (baseline +
// nonlinear) matrix, forcing the slot positions in: a device may stamp an
// exact zero at this iterate and a nonzero at the next.
func (s *Simulator) refreshPattern(key luKey) {
	n := s.ckt.Size()
	if s.slotMark == nil {
		s.slotMark = make([]bool, n*n)
		for _, idx := range s.part.AppendSlotIndices(nil) {
			s.slotMark[idx] = true
		}
	}
	ad := s.asm.A.Data
	s.sp.rowPtr = s.sp.rowPtr[:0]
	s.sp.cols = s.sp.cols[:0]
	s.sp.rowPtr = append(s.sp.rowPtr, 0)
	for i := 0; i < n; i++ {
		row := ad[i*n : (i+1)*n]
		mark := s.slotMark[i*n : (i+1)*n]
		for j, v := range row {
			if v != 0 || mark[j] {
				s.sp.cols = append(s.sp.cols, int32(j))
			}
		}
		s.sp.rowPtr = append(s.sp.rowPtr, int32(len(s.sp.cols)))
	}
	s.sp.valid = true
	s.sp.key = key
}

// residual computes r = B − A·x into s.resid over the structural nonzeros
// of A. Skipped zero entries contribute exactly 0 to each dot product, so
// this equals the dense product for any finite iterate. Conservatively
// classified nonlinear elements can stamp anywhere; with any present the
// pattern is unsound and the dense product is used instead.
func (s *Simulator) residual(key luKey) {
	n := s.ckt.Size()
	if s.part.NumUnknown() > 0 {
		s.asm.A.MulVecInto(s.resid, s.asm.X)
		for i := 0; i < n; i++ {
			s.resid[i] = s.asm.B[i] - s.resid[i]
		}
		return
	}
	if !s.sp.valid || s.sp.key != key {
		s.refreshPattern(key)
	}
	ad, x, b := s.asm.A.Data, s.asm.X, s.asm.B
	cols := s.sp.cols
	rowPtr := s.sp.rowPtr
	for i := 0; i < n; i++ {
		row := ad[i*n : (i+1)*n]
		sum := 0.0
		for _, j := range cols[rowPtr[i]:rowPtr[i+1]] {
			sum += row[j] * x[j]
		}
		s.resid[i] = b[i] - sum
	}
}

// buildBaseline assembles the iterate-independent stamps — linear elements
// plus the gmin diagonal — and snapshots them as the solve's baseline.
// Time-varying sources are iterate-independent too: the assembler's Time
// is fixed for the duration of one solve.
func (s *Simulator) buildBaseline(mode circuit.StampMode, gminExtra float64) {
	s.asm.Reset()
	s.part.StampLinear(s.asm, mode)
	g := s.opts.Gmin + gminExtra
	n := s.ckt.NumNodes()
	for i := 0; i < n; i++ {
		s.asm.A.Add(i, i, g)
	}
	s.asm.SnapshotBaseline()
	s.stats.baselineBuilds++
}

// newtonFast is the damped modified-Newton iteration of the fast path;
// same contract as newton.
func (s *Simulator) newtonFast(mode circuit.StampMode, gminExtra float64) error {
	n := s.ckt.Size()
	nNodes := s.ckt.NumNodes()
	key := luKey{mode: mode, gminExtra: gminExtra}
	if mode == circuit.Transient {
		key.geq, key.hist = s.ic.Geq, s.ic.HistI
	}
	s.buildBaseline(mode, gminExtra)
	prevMaxDV := math.Inf(1)
	force := false
	for iter := 0; iter < s.opts.MaxNewton; iter++ {
		s.stats.nrIters++
		s.asm.RestoreBaseline()
		s.part.StampNonlinear(s.asm, mode)
		s.stats.restamps++
		// Residual at the current iterate: r = B − A·x.
		s.residual(key)
		if s.moveSinceFactor > s.policy.MoveLimit || math.IsNaN(s.moveSinceFactor) {
			force = true
		}
		refactored, err := s.clu.Ensure(s.asm.A, key, force)
		if err != nil {
			return fmt.Errorf("spice: t=%.6g: %w", s.asm.Time, err)
		}
		force = false
		if refactored {
			s.stats.refactors++
			s.moveSinceFactor = 0
		} else {
			s.stats.luReuses++
		}
		if err := s.clu.SolveInto(s.delta, s.resid); err != nil {
			return err
		}
		// Damped update: clamp node-voltage moves (branch-current entries
		// of δ are applied but, as in the slow path, not clamped against).
		maxDV := 0.0
		for i := 0; i < nNodes; i++ {
			if dv := math.Abs(s.delta[i]); dv > maxDV {
				maxDV = dv
			}
		}
		lambda := 1.0
		if maxDV > s.opts.MaxDeltaV {
			lambda = s.opts.MaxDeltaV / maxDV
		}
		for i := 0; i < n; i++ {
			s.asm.X[i] += lambda * s.delta[i]
		}
		s.moveSinceFactor += lambda * maxDV
		if lambda == 1.0 && maxDV < s.opts.VTol {
			if refactored || s.policy.DeepConverged(maxDV, prevMaxDV, s.opts.VTol) {
				return nil
			}
			// Converged against a stale Jacobian without an accuracy
			// certificate: polish with one fresh-Jacobian iteration.
			force = true
		} else if !refactored && s.policy.Stalled(maxDV, prevMaxDV) {
			force = true
		}
		prevMaxDV = maxDV
	}
	return fmt.Errorf("%w (t=%.6g)", ErrNewton, s.asm.Time)
}
