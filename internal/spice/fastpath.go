package spice

import (
	"fmt"
	"math"
	"sort"

	"noisewave/internal/circuit"
)

// The solver fast path. Profiling the Table 1 sweeps shows the slow
// Newton loop spends ~70% of its time in dense LU factorization and most
// of the rest re-stamping elements whose contributions never change within
// a solve. The fast path removes both costs:
//
//   - Partitioned stamping: the iterate-independent stamps (resistors,
//     capacitor companions, sources, gmin) are assembled once per solve
//     into a baseline; each Newton iteration restores the baseline with a
//     flat copy and restamps only the nonlinear devices through their
//     cached stamp slots (circuit.Partition).
//
//   - Modified Newton with Jacobian reuse: the LU factorization is cached
//     across iterations and timesteps (linalg.CachedLU) and truly
//     refactored only when the stamp configuration changes (the luKey),
//     when the iterate has moved too far since the factorization, or when
//     convergence stalls (linalg.ReusePolicy). Through quiet stretches of
//     a transient this eliminates nearly every factorization.
//
// Correctness hinges on the iteration form. The slow path solves the
// linearized-companion system A(x_k)·x_{k+1} = B(x_k) directly; with a
// stale factorization LU ≈ A(x_old) that form converges to the wrong
// fixed point (LU⁻¹·B(x*) ≠ x*). The fast path therefore iterates in
// residual form,
//
//	r_k = B(x_k) − A(x_k)·x_k,   LU·δ = r_k,   x_{k+1} = x_k + λ·δ,
//
// whose fixed point (r = 0) is the true solution of the assembled system
// no matter how stale the factorization is — staleness only affects the
// convergence *rate*, which the ReusePolicy monitors. With a fresh LU the
// residual step is algebraically identical to the slow path's update, so
// the two paths agree to solver tolerance: each converged solve differs by
// well under VTol, the transient history carries those sub-VTol gaps
// forward, and the equivalence suite pins the end-to-end divergence to a
// fraction of VTol — shrinking in lockstep when VTol is tightened — on
// identical accepted-step grids; on convergence against a stale LU the solve
// either certifies the remaining error far below VTol or polishes with
// one fresh-Jacobian iteration. The recovery ladder (recovery.go) is
// unchanged and remains the backstop for solves that fail outright.

// luKey tags the stamp configuration a cached factorization was built
// under: any change to the analysis mode, the integration coefficients
// (method or step size) or the gmin homotopy rung makes the baseline
// matrix structurally different, so Ensure must refactor.
type luKey struct {
	mode      circuit.StampMode
	geq, hist float64
	gminExtra float64
}

// sparsity is the cached structural nonzero pattern of the assembled A
// matrix (CSR column lists), valid for one luKey: the baseline matrix is
// identical across solves with the same key, and the slot-cached devices
// can only write their cached positions, so the pattern never changes
// until the key does. The residual loop uses it to skip the ~95% of a
// ladder-network MNA row that is structurally zero.
type sparsity struct {
	valid  bool
	key    luKey
	rowPtr []int32
	cols   []int32
}

// baselineCache is the per-key baseline reuse state: when consecutive
// transient solves share a luKey, the baseline A matrix is bitwise
// identical across them (its values depend only on the key — circuit
// structure, integration coefficients, gmin rung — never on time or
// state), so instead of re-stamping it the solver restores the handful of
// slot positions the nonlinear devices dirtied and rebuilds only the
// right-hand side, which does carry time and companion history.
type baselineCache struct {
	valid bool
	key   luKey

	idxReady bool
	aIdx     []int32   // deduplicated flat A indices the devices may write
	aVals    []float64 // baseline values at aIdx, captured for bl.key
	bIdx     []int32   // deduplicated B indices the devices may write
}

// refreshPattern rebuilds the pattern from the fully assembled (baseline +
// nonlinear) matrix, forcing the slot positions in: a device may stamp an
// exact zero at this iterate and a nonzero at the next.
func (s *Simulator) refreshPattern(key luKey) {
	n := s.ckt.Size()
	if s.slotMark == nil {
		s.slotMark = make([]bool, n*n)
		for _, idx := range s.part.AppendSlotIndices(nil) {
			s.slotMark[idx] = true
		}
	}
	ad := s.asm.A.Data
	s.sp.rowPtr = s.sp.rowPtr[:0]
	s.sp.cols = s.sp.cols[:0]
	s.sp.rowPtr = append(s.sp.rowPtr, 0)
	for i := 0; i < n; i++ {
		row := ad[i*n : (i+1)*n]
		mark := s.slotMark[i*n : (i+1)*n]
		for j, v := range row {
			if v != 0 || mark[j] {
				s.sp.cols = append(s.sp.cols, int32(j))
			}
		}
		s.sp.rowPtr = append(s.sp.rowPtr, int32(len(s.sp.cols)))
	}
	s.sp.valid = true
	s.sp.key = key
	if key.mode == circuit.Transient {
		s.armSparse()
	}
}

// armSparse points the cached-LU's frozen-pattern sparse refactorization at
// the current residual pattern. SetPattern is a no-op when the content is
// unchanged (the pattern is the same for every transient key of one
// circuit), so the elimination order seeded from the first dense
// factorization of this run survives key changes; solveOP clears it per
// run so results stay independent of case scheduling.
func (s *Simulator) armSparse() {
	s.clu.SetPattern(s.ckt.Size(), s.sp.rowPtr, s.sp.cols)
	s.spArmed = true
}

// residual computes r = B − A·x into s.resid over the structural nonzeros
// of A. Skipped zero entries contribute exactly 0 to each dot product, so
// this equals the dense product for any finite iterate. Conservatively
// classified nonlinear elements can stamp anywhere; with any present the
// pattern is unsound and the dense product is used instead.
func (s *Simulator) residual(key luKey) {
	n := s.ckt.Size()
	if s.part.NumUnknown() > 0 {
		s.asm.A.MulVecInto(s.resid, s.asm.X)
		for i := 0; i < n; i++ {
			s.resid[i] = s.asm.B[i] - s.resid[i]
		}
		return
	}
	if !s.sp.valid || s.sp.key != key {
		s.refreshPattern(key)
	}
	ad, x, b := s.asm.A.Data, s.asm.X, s.asm.B
	cols := s.sp.cols
	rowPtr := s.sp.rowPtr
	for i := 0; i < n; i++ {
		row := ad[i*n : (i+1)*n]
		sum := 0.0
		for _, j := range cols[rowPtr[i]:rowPtr[i+1]] {
			sum += row[j] * x[j]
		}
		s.resid[i] = b[i] - sum
	}
}

// buildBaseline assembles the iterate-independent stamps — linear elements
// plus the gmin diagonal — and snapshots them as the solve's baseline.
// Time-varying sources are iterate-independent too: the assembler's Time
// is fixed for the duration of one solve.
func (s *Simulator) buildBaseline(mode circuit.StampMode, gminExtra float64) {
	s.asm.Reset()
	s.part.StampLinear(s.asm, mode)
	g := s.opts.Gmin + gminExtra
	n := s.ckt.NumNodes()
	for i := 0; i < n; i++ {
		s.asm.A.Add(i, i, g)
	}
	s.asm.SnapshotBaseline()
	s.stats.baselineBuilds++
}

// captureBaseline records the baseline values at the device slot positions
// right after a full baseline build, enabling the slot-sparse restore and
// the RHS-only rebuild for later solves under the same key.
func (s *Simulator) captureBaseline(key luKey) {
	bl := &s.bl
	if !bl.idxReady {
		bl.aIdx = bl.aIdx[:0]
		for _, idx := range s.part.AppendSlotIndices(nil) {
			bl.aIdx = append(bl.aIdx, int32(idx))
		}
		bl.aIdx = dedupSortedInt32(bl.aIdx)
		bl.bIdx = dedupSortedInt32(s.part.AppendRHSIndices(bl.bIdx[:0]))
		bl.idxReady = true
	}
	bl.aVals = resized(bl.aVals, len(bl.aIdx))
	ad := s.asm.A.Data
	for i, idx := range bl.aIdx {
		bl.aVals[i] = ad[idx]
	}
	bl.key = key
	bl.valid = true
}

func dedupSortedInt32(v []int32) []int32 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// newtonFast is the damped modified-Newton iteration of the fast path;
// same contract as newton.
func (s *Simulator) newtonFast(mode circuit.StampMode, gminExtra float64) error {
	n := s.ckt.Size()
	nNodes := s.ckt.NumNodes()
	key := luKey{mode: mode, gminExtra: gminExtra}
	if mode == circuit.Transient {
		key.geq, key.hist = s.ic.Geq, s.ic.HistI
	}
	// With every nonlinear element slot-cached, all writes since the last
	// baseline are at known positions, so baselines can be restored
	// slot-sparsely instead of by full matrix copies. Conservatively
	// classified elements can stamp anywhere and disable this.
	slotRestore := s.part.NumUnknown() == 0 && mode == circuit.Transient
	if slotRestore && s.bl.valid && s.bl.key == key {
		// A still holds baseline(bl.key) plus stale slot writes from the
		// previous solve: restore the slots, then rebuild only the
		// right-hand side, which carries the time and companion history the
		// baseline A does not. Bitwise identical to the full rebuild below.
		s.asm.RestoreBaselineAt(s.bl.aIdx, s.bl.aVals, nil)
		for i := range s.asm.B {
			s.asm.B[i] = 0
		}
		s.part.StampLinearRHS(s.asm, mode)
		s.asm.SnapshotBaselineB()
		s.stats.rhsRebuilds++
	} else {
		s.buildBaseline(mode, gminExtra)
		if slotRestore {
			s.captureBaseline(key)
		} else {
			s.bl.valid = false
		}
	}
	if mode == circuit.Transient && !s.spArmed && s.sp.valid && s.sp.key == key && s.part.NumUnknown() == 0 {
		// A previous run left a matching residual pattern; re-arm the
		// sparse path for this run (refreshPattern won't fire on a key hit).
		s.armSparse()
	}
	prevMaxDV := math.Inf(1)
	force := false
	staleConv := 0
	for iter := 0; iter < s.opts.MaxNewton; iter++ {
		s.stats.nrIters++
		if s.bl.valid && s.bl.key == key {
			s.asm.RestoreBaselineAt(s.bl.aIdx, s.bl.aVals, s.bl.bIdx)
		} else {
			s.asm.RestoreBaseline()
		}
		s.part.StampNonlinear(s.asm, mode)
		s.stats.restamps++
		// Residual at the current iterate: r = B − A·x.
		s.residual(key)
		if s.moveSinceFactor > s.policy.MoveLimit || math.IsNaN(s.moveSinceFactor) {
			force = true
		}
		refactored, err := s.clu.Ensure(s.asm.A, key, force)
		if err != nil {
			return fmt.Errorf("spice: t=%.6g: %w", s.asm.Time, err)
		}
		force = false
		if refactored {
			s.stats.refactors++
			if s.clu.Sparse() {
				s.stats.sparseRefactors++
			}
			s.moveSinceFactor = 0
			s.rhoEst = math.NaN()
		} else {
			s.stats.luReuses++
		}
		if err := s.clu.SolveInto(s.delta, s.resid); err != nil {
			return err
		}
		// Damped update: clamp node-voltage moves (branch-current entries
		// of δ are applied but, as in the slow path, not clamped against).
		maxDV := 0.0
		for i := 0; i < nNodes; i++ {
			if dv := math.Abs(s.delta[i]); dv > maxDV {
				maxDV = dv
			}
		}
		lambda := 1.0
		if maxDV > s.opts.MaxDeltaV {
			lambda = s.opts.MaxDeltaV / maxDV
		}
		for i := 0; i < n; i++ {
			s.asm.X[i] += lambda * s.delta[i]
		}
		s.moveSinceFactor += lambda * maxDV
		if !refactored && lambda == 1.0 && prevMaxDV > 0 && !math.IsInf(prevMaxDV, 0) {
			// Contraction observed against the current factorization; carried
			// across solves to certify first-iteration convergence below.
			s.rhoEst = maxDV / prevMaxDV
		}
		if lambda == 1.0 && maxDV < s.opts.VTol {
			if refactored || s.policy.DeepConverged(maxDV, prevMaxDV, s.opts.VTol) {
				return nil
			}
			if s.policy.CarriedConverged(maxDV, s.rhoEst, s.opts.VTol) {
				s.stats.carriedAccepts++
				return nil
			}
			// Converged against a stale Jacobian without an accuracy
			// certificate: a further stale iteration is far cheaper than a
			// refactor and usually contracts enough for the in-solve rho
			// certificate (or the deep tolerance) to fire next time around;
			// polish with a true fresh-Jacobian iteration only if two such
			// attempts fail to certify.
			staleConv++
			if staleConv > 2 {
				force = true
			}
		} else if !refactored && s.policy.Stalled(maxDV, prevMaxDV) {
			force = true
		}
		prevMaxDV = maxDV
	}
	return fmt.Errorf("%w (t=%.6g)", ErrNewton, s.asm.Time)
}
