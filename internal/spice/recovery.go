package spice

import (
	"errors"
	"fmt"
	"math"

	"noisewave/internal/circuit"
	"noisewave/internal/obs/logctx"
	"noisewave/internal/trace"
)

// ErrNonFinite marks a Newton solve whose converged solution contains NaN
// or Inf — numerically "successful" but physically garbage. Internally it
// triggers the same rejection/recovery path as non-convergence; it only
// surfaces (wrapped together with ErrNewton) when the recovery ladder is
// exhausted.
var ErrNonFinite = errors.New("spice: non-finite solution")

// RecoveryReport is the typed account of what the transient recovery
// ladder did during one Run. The ladder escalates deterministically when a
// step fails: ordinary step halving first (rung 1, already part of the
// attempt loop), then a transient gmin ramp at a conservative step (rung
// 2), then a backward-Euler fallback at a further reduced step (rung 3).
// Escalations past rung 1 consume the per-Run budget
// (Options.RecoveryBudget); when the budget is spent or the last rung
// fails, the run returns an error matching ErrNewton and the report's
// Exhausted flag is set.
type RecoveryReport struct {
	// StepCuts counts accepted steps that needed at least one halving
	// retry (rung 1).
	StepCuts int
	// GminRamps counts steps recovered by the transient gmin ramp (rung 2).
	GminRamps int
	// BEFallbacks counts steps recovered by the backward-Euler fallback
	// (rung 3).
	BEFallbacks int
	// NonFinite counts solves rejected because the solution vector carried
	// NaN/Inf (diverged residual or injected poison).
	NonFinite int
	// BudgetUsed is how many ladder escalations (rungs 2–3) this run
	// consumed, out of Budget.
	BudgetUsed int
	// Budget is the effective Options.RecoveryBudget of the run.
	Budget int
	// Exhausted is set when a step failed every rung (or the budget ran
	// out) and the run was abandoned.
	Exhausted bool
}

// Recovered reports whether any step needed the ladder proper (rungs 2–3).
// Step halving alone is routine and does not count.
func (r RecoveryReport) Recovered() bool { return r.GminRamps+r.BEFallbacks > 0 }

// Absorb accumulates another report into r (used by callers that run
// several transients per logical case, e.g. a gate backend's replays).
func (r *RecoveryReport) Absorb(o RecoveryReport) {
	r.StepCuts += o.StepCuts
	r.GminRamps += o.GminRamps
	r.BEFallbacks += o.BEFallbacks
	r.NonFinite += o.NonFinite
	r.BudgetUsed += o.BudgetUsed
	r.Exhausted = r.Exhausted || o.Exhausted
}

// String renders the rung counters compactly for logs and failure reports.
func (r RecoveryReport) String() string {
	return fmt.Sprintf("recovery{cuts=%d gmin=%d be=%d nonfinite=%d budget=%d/%d exhausted=%v}",
		r.StepCuts, r.GminRamps, r.BEFallbacks, r.NonFinite, r.BudgetUsed, r.Budget, r.Exhausted)
}

// nonFiniteAt returns the index of the first NaN/Inf entry, or -1.
func nonFiniteAt(x []float64) int {
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

// solveTransient is the transient Newton solve with the robustness wrapper
// the recovery ladder relies on: injected divergence fires before the
// solve, injected NaN poisoning fires after a success, and a converged
// solution containing NaN/Inf is rejected as ErrNonFinite instead of being
// accepted into the history and the recorded waveforms.
func (s *Simulator) solveTransient(gminExtra float64) error {
	if s.opts.Inject.NewtonDiverges() {
		return fmt.Errorf("%w (injected divergence at t=%.6g)", ErrNewton, s.asm.Time)
	}
	if err := s.solve(circuit.Transient, gminExtra); err != nil {
		return err
	}
	if s.opts.Inject.PoisonNaN() {
		s.asm.X[0] = math.NaN()
	}
	if i := nonFiniteAt(s.asm.X); i >= 0 {
		s.stats.nonFinite++
		if s.recovery != nil {
			s.recovery.NonFinite++
		}
		return fmt.Errorf("%w: x[%d]=%g at t=%.6g", ErrNonFinite, i, s.asm.X[i], s.asm.Time)
	}
	return nil
}

// recoverStep is the escalation ladder for a step that survived every
// ordinary halving attempt. It consumes one unit of the run's recovery
// budget and tries, in order:
//
//	rung 2: a transient gmin ramp — the step is re-solved at a
//	        conservative size with extra conductance from every node to
//	        ground, ramped down to zero so the solve walks a homotopy from
//	        a heavily damped circuit to the true one;
//	rung 3: a backward-Euler fallback — the same gmin ramp, but with the
//	        L-stable BE integrator at a further reduced step, which kills
//	        the trapezoidal oscillation modes that block convergence on
//	        hard nonlinear corners.
//
// On success it returns the step size, the integration method used and
// whether the step landed on a source breakpoint; the caller accepts the
// state exactly as if the ordinary loop had produced it. On failure the
// prior state is restored and the returned error wraps ErrNewton, naming
// the rung each escalation reached.
func (s *Simulator) recoverStep(t, base float64, rec *RecoveryReport, xPrev []float64) (h float64, method Method, hitBP bool, err error) {

	if rec.Budget <= 0 || rec.BudgetUsed >= rec.Budget {
		rec.Exhausted = true
		s.stats.exhausted++
		s.span.Event("spice.recovery.exhausted", trace.Float("t_s", t),
			trace.String("cause", "budget"))
		logctx.From(s.opts.Ctx).Warn("recovery exhausted",
			"t_s", t, "cause", "budget", "used", rec.BudgetUsed, "budget", rec.Budget)
		return 0, 0, false, fmt.Errorf("%w at t=%.6g: recovery budget exhausted (%d/%d escalations; rungs: step-cut, gmin-ramp, BE-fallback)",
			ErrNewton, t, rec.BudgetUsed, rec.Budget)
	}
	rec.BudgetUsed++

	// tryRamp re-solves the step at size h with method m under a gmin
	// homotopy. Intermediate ramp solutions are kept as the starting
	// iterate of the next (less damped) solve; any failure restores the
	// pre-step state.
	tryRamp := func(h float64, m Method) error {
		ic := circuit.IntegrationCoeffs{Geq: 1 / h, HistI: 0}
		if m == Trap {
			ic = circuit.IntegrationCoeffs{Geq: 2 / h, HistI: -1}
		}
		s.ic = ic
		for _, g := range []float64{1e-3, 1e-5, 1e-7, 1e-9, 0} {
			for _, d := range s.dynamics {
				d.BeginStep(ic)
			}
			s.asm.Time = t + h
			if err := s.solveTransient(g); err != nil {
				copy(s.asm.X, xPrev)
				return err
			}
		}
		return nil
	}

	// Rung 2: gmin ramp at a conservative fraction of the base step.
	h = math.Max(base/8, s.opts.MinStep)
	h, hitBP = s.alignStep(t, h)
	errGmin := tryRamp(h, s.opts.Method)
	if errGmin == nil {
		rec.GminRamps++
		s.stats.gminRamps++
		s.span.Event("spice.recovery.gmin_ramp", trace.Float("t_s", t))
		logctx.From(s.opts.Ctx).Debug("recovery rung", "rung", "gmin_ramp", "t_s", t, "h_s", h)
		return h, s.opts.Method, hitBP, nil
	}

	// Rung 3: backward-Euler fallback at a further reduced step.
	h = math.Max(h/4, s.opts.MinStep)
	h, hitBP = s.alignStep(t, h)
	errBE := tryRamp(h, BackwardEuler)
	if errBE == nil {
		rec.BEFallbacks++
		s.stats.beFallbacks++
		s.span.Event("spice.recovery.be_fallback", trace.Float("t_s", t))
		logctx.From(s.opts.Ctx).Debug("recovery rung", "rung", "be_fallback", "t_s", t, "h_s", h)
		return h, BackwardEuler, hitBP, nil
	}

	rec.Exhausted = true
	s.stats.exhausted++
	s.span.Event("spice.recovery.exhausted", trace.Float("t_s", t),
		trace.String("cause", "ladder"))
	logctx.From(s.opts.Ctx).Warn("recovery exhausted",
		"t_s", t, "cause", "ladder", "used", rec.BudgetUsed, "budget", rec.Budget)
	return 0, 0, false, fmt.Errorf("%w at t=%.6g: recovery ladder exhausted (rung gmin-ramp: %w; rung BE-fallback: %w; budget %d/%d)",
		ErrNewton, t, errGmin, errBE, rec.BudgetUsed, rec.Budget)
}
