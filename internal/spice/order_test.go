package spice

import (
	"math"
	"testing"

	"noisewave/internal/circuit"
)

// rcError runs the RC step response at a given fixed step with the given
// method and returns the max abs error against the analytic exponential,
// sampled away from the source breakpoint.
func rcError(t *testing.T, method Method, step float64) float64 {
	t.Helper()
	const (
		r   = 1e3
		c   = 1e-12
		t0  = 0.1e-9
		vdd = 1.0
	)
	ckt := circuit.New()
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.AddVSource("vin", in, circuit.Ground, circuit.PWL{T: []float64{t0, t0 + 1e-15}, V: []float64{0, vdd}})
	ckt.AddResistor(in, out, r)
	ckt.AddCapacitor(out, circuit.Ground, c)
	sim := New(ckt, Options{Stop: 4e-9, Step: step, Method: method})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	w, err := res.Waveform("out")
	if err != nil {
		t.Fatal(err)
	}
	tau := r * c
	maxErr := 0.0
	for _, tc := range []float64{0.5e-9, 1e-9, 1.5e-9, 2e-9, 3e-9} {
		want := vdd * (1 - math.Exp(-(tc-t0)/tau))
		if e := math.Abs(w.At(tc) - want); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

// TestIntegrationOrders verifies the local truncation behaviour of the two
// integrators on an analytic RC response: halving the step must shrink the
// backward-Euler error ≈2× (first order) and the trapezoidal error ≈4×
// (second order).
func TestIntegrationOrders(t *testing.T) {
	const h = 40e-12
	beCoarse := rcError(t, BackwardEuler, h)
	beFine := rcError(t, BackwardEuler, h/2)
	trCoarse := rcError(t, Trap, h)
	trFine := rcError(t, Trap, h/2)

	beRatio := beCoarse / beFine
	trRatio := trCoarse / trFine
	t.Logf("BE: %.3g -> %.3g (ratio %.2f); TR: %.3g -> %.3g (ratio %.2f)",
		beCoarse, beFine, beRatio, trCoarse, trFine, trRatio)

	if beRatio < 1.6 || beRatio > 2.6 {
		t.Errorf("backward Euler convergence ratio %.2f, want ≈2 (first order)", beRatio)
	}
	if trRatio < 3.0 {
		t.Errorf("trapezoidal convergence ratio %.2f, want ≈4 (second order)", trRatio)
	}
	if trCoarse > beCoarse {
		t.Errorf("TR (%.3g) should beat BE (%.3g) at equal step", trCoarse, beCoarse)
	}
}
