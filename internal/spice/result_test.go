package spice

import (
	"errors"
	"math"
	"testing"

	"noisewave/internal/circuit"
)

func TestResultAccessors(t *testing.T) {
	r := newResult([]string{"a", "b"})
	r.record(0, func(n string) float64 { return 1 })
	r.record(1e-12, func(n string) float64 {
		if n == "a" {
			return 2
		}
		return 3
	})
	if r.Steps() != 2 {
		t.Fatalf("steps: %d", r.Steps())
	}
	v, err := r.Voltage("a")
	if err != nil || v[1] != 2 {
		t.Errorf("Voltage(a): %v %v", v, err)
	}
	if _, err := r.Voltage("zz"); err == nil {
		t.Error("unknown probe accepted")
	}
	f, err := r.Final("b")
	if err != nil || f != 3 {
		t.Errorf("Final(b): %g %v", f, err)
	}
	w, err := r.Waveform("a")
	if err != nil || w.Len() != 2 {
		t.Errorf("Waveform: %v %v", w, err)
	}
	nodes := r.Nodes()
	if len(nodes) != 2 || nodes[0] != "a" {
		t.Errorf("Nodes: %v", nodes)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Stop: 1e-9},                           // no step
		{Step: 1e-12},                          // no stop
		{Step: 1e-12, Stop: -1},                // stop before start
		{Step: 1e-12, Stop: 1e-9, Start: 2e-9}, // inverted window
	}
	ckt := circuit.New()
	ckt.AddResistor(ckt.Node("a"), circuit.Ground, 1)
	for i, o := range bad {
		if _, err := New(ckt, o).Run(); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
}

func TestSingularCircuitReported(t *testing.T) {
	// Two ideal sources fighting over one node: the MNA system is
	// inconsistent/singular and must be reported, not crash.
	ckt := circuit.New()
	a := ckt.Node("a")
	ckt.AddVSource("v1", a, circuit.Ground, circuit.DCSource(1))
	ckt.AddVSource("v2", a, circuit.Ground, circuit.DCSource(2))
	_, err := New(ckt, Options{Stop: 1e-9, Step: 1e-10}).Run()
	if err == nil {
		t.Fatal("conflicting sources accepted")
	}
}

func TestProbeSelection(t *testing.T) {
	ckt := circuit.New()
	a := ckt.Node("a")
	b := ckt.Node("b")
	ckt.AddVSource("v", a, circuit.Ground, circuit.DCSource(1))
	ckt.AddResistor(a, b, 1e3)
	ckt.AddResistor(b, circuit.Ground, 1e3)
	res, err := New(ckt, Options{Stop: 1e-10, Step: 1e-11, Probes: []string{"b"}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Voltage("b"); err != nil {
		t.Error("probed node missing")
	}
	if _, err := res.Voltage("a"); err == nil {
		t.Error("unprobed node recorded")
	}
	if v, _ := res.Final("b"); math.Abs(v-0.5) > 1e-6 {
		t.Errorf("divider value %g", v)
	}
}

func TestMethodString(t *testing.T) {
	if Trap.String() != "TR" || BackwardEuler.String() != "BE" {
		t.Error("method names")
	}
}

func TestErrNewtonWrapped(t *testing.T) {
	// Construct a pathologically stiff nonlinear case by driving an
	// enormous device with an instantaneous source through no damping —
	// and verify failures carry ErrNewton when they happen. If the solver
	// actually converges (it is robust), that is fine too.
	err := error(nil)
	func() {
		defer func() { recover() }()
		ckt := circuit.New()
		a := ckt.Node("a")
		ckt.AddVSource("v", a, circuit.Ground, circuit.DCSource(1))
		_, err = New(ckt, Options{Stop: 1e-12, Step: 1e-12, MaxNewton: 1}).Run()
	}()
	if err != nil && !errors.Is(err, ErrNewton) {
		// Permissible: other failure classes exist (singular etc.).
		t.Logf("non-Newton error: %v", err)
	}
}
