// Package spice implements the nonlinear transient circuit simulator used
// as the golden reference ("Hspice substitute") of the reproduction: dense
// MNA assembly, damped Newton–Raphson per timestep, trapezoidal integration
// with backward-Euler start-up steps, source-breakpoint alignment and
// automatic step halving on Newton failure.
package spice

import (
	"context"
	"fmt"

	"noisewave/internal/faultinject"
	"noisewave/internal/telemetry"
)

// Method selects the integration scheme.
type Method int

const (
	// Trap is trapezoidal integration with BE start-up (default).
	Trap Method = iota
	// BackwardEuler uses backward Euler for every step.
	BackwardEuler
)

// String names the method.
func (m Method) String() string {
	if m == BackwardEuler {
		return "BE"
	}
	return "TR"
}

// Options configures a transient run.
type Options struct {
	Start float64 // first timepoint (default 0)
	Stop  float64 // last timepoint (required > Start)
	Step  float64 // base timestep (required > 0)

	Method Method

	MaxNewton int     // Newton iterations per solve (default 80)
	VTol      float64 // node-voltage convergence tolerance (default 1 µV)
	Gmin      float64 // conductance from every node to ground (default 1e-12 S)
	MaxDeltaV float64 // per-iteration node voltage damping clamp (default 0.4 V)

	// Probes limits recording to these node names; empty records all.
	Probes []string

	// RecordSteps appends a StepTrace entry to the Result for every
	// accepted step (size, method, breakpoint hit, rejected attempts).
	// Diagnostic only; off by default.
	RecordSteps bool

	// Ctx, if non-nil, is polled at every outer time step of the transient
	// loop: when it is canceled or its deadline passes, Run stops and
	// returns the waveforms recorded so far together with an error matching
	// telemetry.ErrCanceled (and the context's own error). nil means the
	// run cannot be canceled.
	Ctx context.Context

	// Telemetry, if non-nil, receives the engine's counters — Newton
	// iterations, step accepts/rejects, breakpoint hits — and the wall time
	// of each transient (see EXPERIMENTS.md "Observability" for the metric
	// names). Counters are flushed once per Run/OperatingPoint call, so the
	// per-step hot path never touches the registry.
	Telemetry *telemetry.Registry

	// RecoveryBudget bounds how many steps per Run may escalate past the
	// ordinary step-halving retries into the recovery ladder (transient
	// gmin ramp, then backward-Euler fallback — see RecoveryReport). Zero
	// selects the default (25); a negative value disables the ladder, which
	// restores the pre-ladder behavior of failing the run on the first step
	// that survives every halving attempt.
	RecoveryBudget int

	// Inject, if non-nil, is the deterministic fault injector driving the
	// chaos test suite and cmd/repro's -chaos mode: it can force transient
	// Newton divergence, NaN-poison converged solutions, and stall the
	// outer time loop (honoring Ctx). Nil — the production default — costs
	// one nil check per site.
	Inject *faultinject.Injector

	// NoFastPath disables the solver fast path (partitioned stamping,
	// cached-LU modified Newton, residual-form updates) and restores the
	// historical solver: full restamp and full LU factorization on every
	// Newton iteration. The fast path is equivalent to solver tolerance
	// (waveforms agree to a fraction of VTol on identical step grids — see
	// the equivalence suite) but not bitwise identical; this switch exists
	// as the escape hatch and as the reference for that suite.
	NoFastPath bool

	// ReuseResult recycles the previous Run's Result storage (sample
	// buffers, step trace) when the probe set is unchanged, so per-case
	// simulators replayed across a sweep stop allocating per run. The
	// returned *Result is then only valid until the next Run on this
	// simulator; callers must copy what they keep (Waveform already does).
	ReuseResult bool

	// Adaptive enables local-truncation-error timestep control: steps
	// shrink when the solution outruns a linear prediction and stretch
	// (up to MaxStep) through quiescent stretches. Step then acts as the
	// initial/base step.
	Adaptive bool
	// LTETol is the accepted per-step prediction error on node voltages
	// (default 2 mV).
	LTETol float64
	// MaxStep caps adaptive growth (default 20×Step).
	MaxStep float64
	// MinStep floors adaptive shrinking (default Step/512).
	MinStep float64
}

func (o *Options) validate() error {
	if o.Step <= 0 {
		return fmt.Errorf("spice: Step must be > 0, got %g", o.Step)
	}
	if o.Stop <= o.Start {
		return fmt.Errorf("spice: Stop (%g) must be > Start (%g)", o.Stop, o.Start)
	}
	if o.MaxNewton == 0 {
		o.MaxNewton = 80
	}
	if o.VTol == 0 {
		o.VTol = 1e-6
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	if o.MaxDeltaV == 0 {
		o.MaxDeltaV = 0.4
	}
	if o.RecoveryBudget == 0 {
		o.RecoveryBudget = 25
	}
	if o.LTETol == 0 {
		o.LTETol = 2e-3
	}
	if o.MaxStep == 0 {
		o.MaxStep = 20 * o.Step
	}
	if o.MinStep == 0 {
		o.MinStep = o.Step / 512
	}
	return nil
}
