package spice

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"noisewave/internal/circuit"
	"noisewave/internal/device"
	"noisewave/internal/faultinject"
	"noisewave/internal/telemetry"
	"noisewave/internal/wave"
)

// The recovery tests reuse rcCircuit from telemetry_test.go.

// inverterCircuit builds a nonlinear testbench (inverter driven by a ramp).
func inverterCircuit(tech device.Tech) *circuit.Circuit {
	ckt := circuit.New()
	in := ckt.Node("in")
	out := ckt.Node("out")
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
	ckt.AddVSource("vin", in, circuit.Ground,
		circuit.SlewRamp(0.2e-9, 150e-12, tech.Vdd, wave.Rising))
	ckt.AddInverter("u1", tech, 4, in, out, vdd)
	return ckt
}

// TestChaosNewtonDivergenceRecovers: a capped dose of injected Newton
// divergence is absorbed by the ladder — the run completes, the report
// shows recovery activity, and the waveform still matches the analytic RC
// response.
func TestChaosNewtonDivergenceRecovers(t *testing.T) {
	// Every attempt of the early steps diverges until the cap is spent:
	// the halving loop burns all 16 attempts, then the ladder's gmin ramp
	// or BE fallback gets a post-cap (clean) solve and recovers the step.
	inj := faultinject.New(faultinject.Config{NewtonEvery: 1, NewtonMax: 17})
	reg := telemetry.New()
	sim := New(rcCircuit(), Options{Stop: 5e-9, Step: 5e-12, Inject: inj, Telemetry: reg})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run with capped divergence injection: %v", err)
	}
	if !res.Recovery.Recovered() {
		t.Fatalf("recovery report shows no ladder activity: %v", res.Recovery)
	}
	if res.Recovery.BudgetUsed == 0 || res.Recovery.Exhausted {
		t.Errorf("unexpected report: %v", res.Recovery)
	}
	w, err := res.Waveform("out")
	if err != nil {
		t.Fatalf("Waveform: %v", err)
	}
	want := 1 - math.Exp(-(2e-9-1e-12)/1e-9)
	if got := w.At(2e-9); math.Abs(got-want) > 0.02 {
		t.Errorf("recovered run drifted: v(2ns)=%.4f want %.4f", got, want)
	}
	snap := reg.Snapshot()
	if snap.Counters["spice.recovery.gmin_ramps"]+snap.Counters["spice.recovery.be_fallbacks"] == 0 {
		t.Error("recovery rung counters not published to telemetry")
	}
}

// TestChaosNewtonDivergenceUnrecoverable: uncapped divergence defeats
// every rung; the run fails with an error matching ErrNewton that names
// the ladder, and the report is marked exhausted — the process never
// panics and the recorded prefix is retained.
func TestChaosNewtonDivergenceUnrecoverable(t *testing.T) {
	inj := faultinject.New(faultinject.Config{NewtonEvery: 1})
	sim := New(rcCircuit(), Options{Stop: 5e-9, Step: 5e-12, Inject: inj})
	res, err := sim.Run()
	if err == nil {
		t.Fatal("uncapped divergence injection did not fail the run")
	}
	if !errors.Is(err, ErrNewton) {
		t.Errorf("error %v does not match ErrNewton", err)
	}
	if !strings.Contains(err.Error(), "gmin-ramp") || !strings.Contains(err.Error(), "BE-fallback") {
		t.Errorf("error %q does not name the rungs reached", err)
	}
	if res == nil || !res.Recovery.Exhausted {
		t.Fatalf("result/report not surfaced on exhaustion: %+v", res)
	}
	if res.Steps() == 0 {
		t.Error("completed prefix discarded on exhaustion")
	}
}

// TestChaosNaNPoisonRecovers: injected NaN poisoning of converged
// solutions is rejected as non-finite (never recorded) and the run
// completes; the non-finite rejections are accounted in the report.
func TestChaosNaNPoisonRecovers(t *testing.T) {
	inj := faultinject.New(faultinject.Config{NaNEvery: 1, NaNMax: 17})
	sim := New(rcCircuit(), Options{Stop: 5e-9, Step: 5e-12, Inject: inj})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run with capped NaN injection: %v", err)
	}
	if res.Recovery.NonFinite == 0 {
		t.Errorf("report shows no non-finite rejections: %v", res.Recovery)
	}
	w, err := res.Waveform("out")
	if err != nil {
		t.Fatalf("Waveform after NaN injection: %v", err)
	}
	for i, v := range w.V {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("poisoned sample leaked into the waveform: v[%d]=%g", i, v)
		}
	}
}

// TestChaosNaNPoisonUnrecoverable: uncapped poisoning fails the run with a
// typed error instead of producing a garbage waveform.
func TestChaosNaNPoisonUnrecoverable(t *testing.T) {
	inj := faultinject.New(faultinject.Config{NaNEvery: 1})
	sim := New(rcCircuit(), Options{Stop: 5e-9, Step: 5e-12, Inject: inj})
	_, err := sim.Run()
	if err == nil {
		t.Fatal("uncapped NaN injection did not fail the run")
	}
	if !errors.Is(err, ErrNewton) {
		t.Errorf("error %v does not match ErrNewton", err)
	}
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("error %v does not preserve the non-finite cause", err)
	}
}

// TestChaosNonlinearRecovery: the ladder also recovers the nonlinear
// (inverter) testbench, and the recovered output still switches rail to
// rail.
func TestChaosNonlinearRecovery(t *testing.T) {
	tech := device.Default130()
	inj := faultinject.New(faultinject.Config{Seed: 7, NewtonEvery: 25, NewtonMax: 40})
	sim := New(inverterCircuit(tech), Options{Stop: 1.2e-9, Step: 1e-12, Inject: inj})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v, _ := res.Final("out"); v > 0.1 {
		t.Errorf("inverter output %.3f, want low (input rose)", v)
	}
}

// TestRecoveryBudgetExhaustion: with a budget of 1, the second hard step
// fails the run and reports exhaustion with the budget spent.
func TestRecoveryBudgetExhaustion(t *testing.T) {
	// Persistent divergence eats the budget on the very first step's
	// ladder walk (ladder solves also diverge), so even budget 1 runs
	// straight to exhaustion.
	inj := faultinject.New(faultinject.Config{NewtonEvery: 1})
	sim := New(rcCircuit(), Options{Stop: 5e-9, Step: 5e-12, Inject: inj, RecoveryBudget: 1})
	res, err := sim.Run()
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	if res.Recovery.BudgetUsed != 1 || res.Recovery.Budget != 1 {
		t.Errorf("budget accounting: %v", res.Recovery)
	}
}

// TestRecoveryDisabled: a negative budget restores the pre-ladder
// behavior — first unrecoverable step fails the run without escalation.
func TestRecoveryDisabled(t *testing.T) {
	inj := faultinject.New(faultinject.Config{NewtonEvery: 1, NewtonMax: 17})
	sim := New(rcCircuit(), Options{Stop: 5e-9, Step: 5e-12, Inject: inj, RecoveryBudget: -1})
	res, err := sim.Run()
	if err == nil {
		t.Fatal("disabled ladder still recovered the run")
	}
	if !errors.Is(err, ErrNewton) {
		t.Errorf("error %v does not match ErrNewton", err)
	}
	if res.Recovery.BudgetUsed != 0 {
		t.Errorf("disabled ladder consumed budget: %v", res.Recovery)
	}
}

// TestChaosStallHonorsRunContext: an injected stall inside the transient
// loop returns promptly when the run's context is already done, and the
// run reports a cancellation.
func TestChaosStallHonorsRunContext(t *testing.T) {
	inj := faultinject.New(faultinject.Config{StallEvery: 1, StallMax: 1, StallFor: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim := New(rcCircuit(), Options{Stop: 5e-9, Step: 5e-12, Inject: inj, Ctx: ctx})
	_, err := sim.Run()
	if err == nil || !errors.Is(err, telemetry.ErrCanceled) {
		t.Fatalf("err = %v, want cancellation", err)
	}
}

// TestWaveformRejectsNonFiniteSamples: a Result carrying a NaN sample (as
// from a probe of a node name that never existed) surfaces
// wave.ErrBadSamples from Waveform, with the node named.
func TestWaveformRejectsNonFiniteSamples(t *testing.T) {
	sim := New(rcCircuit(), Options{Stop: 1e-9, Step: 1e-11, Probes: []string{"no_such_node"}})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, err = res.Waveform("no_such_node")
	if err == nil {
		t.Fatal("Waveform accepted NaN samples")
	}
	if !errors.Is(err, wave.ErrBadSamples) {
		t.Errorf("error %v does not match wave.ErrBadSamples", err)
	}
	if !strings.Contains(err.Error(), "no_such_node") {
		t.Errorf("error %q does not name the node", err)
	}
}

// TestRecoveryReportAbsorb: Absorb accumulates counters and sticks the
// Exhausted flag.
func TestRecoveryReportAbsorb(t *testing.T) {
	var r RecoveryReport
	r.Absorb(RecoveryReport{StepCuts: 1, GminRamps: 2, BEFallbacks: 3, NonFinite: 4, BudgetUsed: 5})
	r.Absorb(RecoveryReport{StepCuts: 1, Exhausted: true})
	if r.StepCuts != 2 || r.GminRamps != 2 || r.BEFallbacks != 3 || r.NonFinite != 4 || r.BudgetUsed != 5 || !r.Exhausted {
		t.Errorf("absorbed report: %v", r)
	}
	if !r.Recovered() {
		t.Error("Recovered() = false with ladder counters set")
	}
}
