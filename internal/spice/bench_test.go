package spice

// Micro-benchmarks of the solver hot paths, pinning the fast path's two
// claims: partitioned assembly beats the full per-iteration restamp, and
// the steady-state transient loop allocates nothing per step (allocs/op
// amortizes to 0 — the sample buffers grow on the first window and are
// recycled afterwards). Run via `make bench-micro`.

import (
	"context"
	"testing"

	"noisewave/internal/circuit"
	"noisewave/internal/device"
)

// benchCircuit is the standard receiver shape of the experiments: a ×1
// driver into a ×4 / ×16 inverter chain, input held mid-transition so the
// transistors stamp in their nonlinear region.
func benchCircuit() *circuit.Circuit {
	tech := device.Default130()
	ckt := circuit.New()
	in := ckt.Node("in")
	mid := ckt.Node("mid")
	out := ckt.Node("out")
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
	ckt.AddVSource("vin", in, circuit.Ground, circuit.DCSource(0.6))
	ckt.AddInverter("u1", tech, 1, in, mid, vdd)
	ckt.AddInverter("u2", tech, 4, mid, out, vdd)
	ckt.AddInverter("u3", tech, 16, out, ckt.Node("out2"), vdd)
	return ckt
}

// benchSim returns a simulator with a solved operating point and the
// dynamic elements initialized for a trapezoidal step of size h.
func benchSim(b *testing.B, fast bool, h float64) *Simulator {
	b.Helper()
	s := New(benchCircuit(), Options{Stop: 1e-9, Step: h, ReuseResult: true})
	if err := (&s.opts).validate(); err != nil {
		b.Fatal(err)
	}
	s.fast = fast
	if _, err := s.solveOP(); err != nil {
		b.Fatal(err)
	}
	for _, d := range s.dynamics {
		d.InitState(s.asm)
	}
	ic := circuit.IntegrationCoeffs{Geq: 2 / h, HistI: -1}
	s.ic = ic
	for _, d := range s.dynamics {
		d.BeginStep(ic)
	}
	s.asm.Time = h
	return s
}

// BenchmarkAssemble compares the slow path's full per-iteration restamp
// against the fast path's baseline-restore + nonlinear-only restamp.
func BenchmarkAssemble(b *testing.B) {
	b.Run("full", func(b *testing.B) {
		s := benchSim(b, false, 1e-12)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.assemble(circuit.Transient)
		}
	})
	b.Run("partitioned", func(b *testing.B) {
		s := benchSim(b, true, 1e-12)
		s.buildBaseline(circuit.Transient, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.asm.RestoreBaseline()
			s.part.StampNonlinear(s.asm, circuit.Transient)
		}
	})
}

// BenchmarkNewtonIteration measures one transient Newton solve from an
// already-converged iterate — the steady-state shape of a transient's
// solves — through both solver paths.
func BenchmarkNewtonIteration(b *testing.B) {
	for _, bc := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"slow", false}} {
		b.Run(bc.name, func(b *testing.B) {
			s := benchSim(b, bc.fast, 1e-12)
			if err := s.solve(circuit.Transient, 0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.solve(circuit.Transient, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransientStep drives the outer transient loop one accepted step
// per iteration, recycling the run state window after window exactly as a
// sweep worker's simulator does. The fast-path variant must report
// 0 allocs/op: the per-step hot path may not allocate.
func BenchmarkTransientStep(b *testing.B) {
	for _, bc := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"slow", false}} {
		b.Run(bc.name, func(b *testing.B) {
			s := New(benchCircuit(), Options{Stop: 1e-9, Step: 1e-12, ReuseResult: true})
			if err := (&s.opts).validate(); err != nil {
				b.Fatal(err)
			}
			s.fast = bc.fast
			if _, err := s.solveOP(); err != nil {
				b.Fatal(err)
			}
			for _, d := range s.dynamics {
				d.InitState(s.asm)
			}
			res := s.newRunResult()
			rec := &res.Recovery
			rec.Budget = s.opts.RecoveryBudget
			s.recovery = rec
			defer func() { s.recovery = nil }()
			st := &s.tr
			resetWindow := func() {
				res.reset()
				rec.Budget = s.opts.RecoveryBudget
				st.bps = s.breakpoints(st.bps[:0])
				st.t = 0
				st.base = s.opts.Step
				st.beSteps = 2
				n := s.ckt.Size()
				st.xPrev = resized(st.xPrev, n)
				copy(st.xPrev, s.asm.X)
				st.xPrevPrev = resized(st.xPrevPrev, n)
				copy(st.xPrevPrev, s.asm.X)
				st.hPrev = 0
				st.nNodes = s.ckt.NumNodes()
				s.recordSample(res, 0)
			}
			resetWindow()
			// Warm one full window so the sample buffers reach their final
			// capacity before measurement starts.
			for st.t < s.opts.Stop-1.5*s.opts.Step {
				if err := s.stepTransient(res, rec, st); err != nil {
					b.Fatal(err)
				}
			}
			resetWindow()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if st.t >= s.opts.Stop-1.5*s.opts.Step {
					resetWindow()
				}
				if err := s.stepTransient(res, rec, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchRun pins the batch engine's claim: K transients solved in
// lockstep through one DC operating point and one shared trunk beat K
// scalar RunWindow calls of the same cases, and the steady-state batch loop
// allocates no more per case than the scalar loop. Cases differ only in a
// late aggressor edge, so the trunk covers most of the window — the shape
// the alignment sweeps produce. Run via `make bench-batch`.
func BenchmarkBatchRun(b *testing.B) {
	const stop = 1.2e-9
	starts := make([]float64, 8)
	for i := range starts {
		starts[i] = 0.7e-9 + float64(i)*10e-12
	}
	b.Run("scalar", func(b *testing.B) {
		bb := newBatchBench()
		s := New(bb.ckt, Options{Stop: stop, Step: 1e-12, ReuseResult: true})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, t0 := range starts {
				bb.retarget(t0)
				if _, err := s.RunWindow(context.Background(), 0, stop); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch8", func(b *testing.B) {
		bb := newBatchBench()
		s := New(bb.ckt, Options{Stop: stop, Step: 1e-12, ReuseResult: true})
		share := aggShare(bb, starts)
		cases := make([]BatchCase, len(starts))
		for i, t0 := range starts {
			t0 := t0
			cases[i] = BatchCase{Stop: stop, Retarget: func() { bb.retarget(t0) }}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := s.RunBatch(context.Background(), 0, share, cases,
				func(_ int, _ *Result, err error) error { return err })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
