package spice

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"noisewave/internal/circuit"
	"noisewave/internal/linalg"
	"noisewave/internal/telemetry"
	"noisewave/internal/trace"
)

// ErrNewton is returned when the Newton iteration fails to converge even
// after step halving.
var ErrNewton = errors.New("spice: newton iteration failed to converge")

// Simulator runs transient analyses on a circuit. A Simulator may be reused
// for several runs, but a single Simulator is not safe for concurrent use.
type Simulator struct {
	ckt  *circuit.Circuit
	opts Options

	asm  *circuit.Assembler
	lu   *linalg.LU
	xNew []float64

	dynamics []circuit.Dynamic

	// Fast-path state (see fastpath.go): the linear/nonlinear element
	// partition, the cached LU factorization with its refactor heuristics,
	// and the residual/step buffers of the modified-Newton iteration.
	part            *circuit.Partition
	clu             linalg.CachedLU[luKey]
	policy          linalg.ReusePolicy
	fast            bool
	ic              circuit.IntegrationCoeffs // coefficients of the step being solved
	resid, delta    []float64
	moveSinceFactor float64
	rhoEst          float64       // carried contraction estimate for the current factorization
	sp              sparsity      // residual nonzero pattern, per luKey
	slotMark        []bool        // flat A indices the slot-cached devices may write
	bl              baselineCache // per-key baseline reuse (slot-sparse restore)
	spArmed         bool          // sparse refactorization armed this run

	// Per-run state reused across Run calls so the steady-state transient
	// loop allocates nothing.
	tr       transient
	probeIDs []circuit.NodeID
	res      *Result     // previous run's result, recycled under Options.ReuseResult
	bs       *batchState // fork snapshot + buffers of RunBatch (see batch.go)

	// stats accumulates engine counters for the current solve; they are
	// flushed to Options.Telemetry once per Run/OperatingPoint call so the
	// per-step and per-iteration hot paths never touch the registry.
	stats engineStats

	// recovery points at the active Run's report so the solve wrapper can
	// account non-finite rejections; nil outside a transient.
	recovery *RecoveryReport

	// span is the active Run's "spice.transient" trace span; the recovery
	// ladder posts its rung events here. Nil (no tracer in Options.Ctx, or
	// outside a transient) is a no-op.
	span *trace.Span

	// testForceReject, when set, rejects an attempted step as if Newton had
	// failed (the step is halved and retried). Test-only: it exercises the
	// rejection path at chosen timepoints without having to construct a
	// circuit that fails to converge on demand.
	testForceReject func(t, h float64) bool
}

// New creates a simulator; the options are validated at Run time.
func New(c *circuit.Circuit, o Options) *Simulator {
	s := &Simulator{ckt: c, opts: o, asm: circuit.NewAssembler(c)}
	n := c.Size()
	s.xNew = make([]float64, n)
	s.resid = make([]float64, n)
	s.delta = make([]float64, n)
	s.part = circuit.NewPartition(c)
	s.policy = linalg.DefaultReusePolicy()
	for _, e := range c.Elements() {
		if d, ok := e.(circuit.Dynamic); ok {
			s.dynamics = append(s.dynamics, d)
		}
	}
	return s
}

// transient is the outer-loop state of one Run, held on the Simulator so
// its buffers (breakpoints, previous-step iterates) survive across runs.
type transient struct {
	bps              []float64
	t, base, hPrev   float64
	beSteps          int
	xPrev, xPrevPrev []float64
	nNodes           int
}

// engineStats are the per-solve telemetry accumulators.
type engineStats struct {
	nrIters         int64 // Newton–Raphson iterations (DC + transient)
	accepts         int64 // accepted transient steps
	rejects         int64 // rejected step attempts (Newton failure or LTE)
	bpHits          int64 // accepted steps that landed on a source breakpoint
	canceled        int64 // 1 when the run was stopped by its context
	stepCuts        int64 // accepted steps that needed >= 1 halving (ladder rung 1)
	gminRamps       int64 // steps recovered by the transient gmin ramp (rung 2)
	beFallbacks     int64 // steps recovered by the BE fallback (rung 3)
	nonFinite       int64 // solves rejected for a NaN/Inf solution vector
	exhausted       int64 // runs abandoned with the ladder exhausted
	baselineBuilds  int64 // fast path: linear-baseline assemblies (full rebuilds)
	rhsRebuilds     int64 // fast path: solves served by the per-key RHS-only rebuild
	restamps        int64 // fast path: per-iteration nonlinear restamps
	refactors       int64 // fast path: true LU factorizations
	sparseRefactors int64 // fast path: refactors served by the frozen-pattern sparse path
	luReuses        int64 // fast path: iterations served by a cached LU
	carriedAccepts  int64 // fast path: solves accepted on the carried-rho certificate
	wallStart       time.Time
}

// flushTelemetry publishes the accumulated counters and the solve's wall
// time under the given run counter / wall timer names, then resets the
// accumulators. Nil-safe on the registry.
func (s *Simulator) flushTelemetry(runCounter, wallTimer string) {
	reg := s.opts.Telemetry
	if reg != nil {
		reg.Counter(runCounter).Inc()
		reg.Counter("spice.newton_iterations").Add(s.stats.nrIters)
		reg.Counter("spice.steps_accepted").Add(s.stats.accepts)
		reg.Counter("spice.steps_rejected").Add(s.stats.rejects)
		reg.Counter("spice.breakpoints_hit").Add(s.stats.bpHits)
		reg.Counter("spice.runs_canceled").Add(s.stats.canceled)
		reg.Counter("spice.recovery.step_cuts").Add(s.stats.stepCuts)
		reg.Counter("spice.recovery.gmin_ramps").Add(s.stats.gminRamps)
		reg.Counter("spice.recovery.be_fallbacks").Add(s.stats.beFallbacks)
		reg.Counter("spice.recovery.exhausted").Add(s.stats.exhausted)
		reg.Counter("spice.rejected_nonfinite").Add(s.stats.nonFinite)
		// The fast-path counters only appear once the fast path ran, so a
		// -no-fastpath run's snapshot matches the pre-fast-path engine.
		if s.stats.baselineBuilds > 0 || s.stats.refactors > 0 || s.stats.luReuses > 0 {
			reg.Counter("spice.fastpath.baseline_builds").Add(s.stats.baselineBuilds)
			reg.Counter("spice.fastpath.rhs_rebuilds").Add(s.stats.rhsRebuilds)
			reg.Counter("spice.fastpath.restamps").Add(s.stats.restamps)
			reg.Counter("spice.fastpath.refactors").Add(s.stats.refactors)
			reg.Counter("spice.fastpath.sparse_refactors").Add(s.stats.sparseRefactors)
			reg.Counter("spice.fastpath.lu_reuses").Add(s.stats.luReuses)
			reg.Counter("spice.fastpath.carried_accepts").Add(s.stats.carriedAccepts)
		}
		reg.Timer(wallTimer).Observe(time.Since(s.stats.wallStart).Seconds())
		// Distribution of NR effort per solve: a long tail here means a few
		// hard corners dominate, which the run counters alone cannot show.
		reg.HistogramWith("spice.newton_iterations_per_run",
			telemetry.IterationBounds()).Observe(float64(s.stats.nrIters))
	}
	s.stats = engineStats{}
}

// assemble stamps every element at the assembler's current iterate, then
// adds gmin from every node to ground. This is the slow path's full
// per-iteration assembly; the fast path splits it into buildBaseline +
// the per-iteration nonlinear restamp (see fastpath.go).
func (s *Simulator) assemble(mode circuit.StampMode) {
	s.asm.Reset()
	for _, e := range s.ckt.Elements() {
		e.Stamp(s.asm, mode)
	}
	n := s.ckt.NumNodes()
	for i := 0; i < n; i++ {
		s.asm.A.Add(i, i, s.opts.Gmin)
	}
}

// solve runs one Newton solve at the assembler's current Time through the
// configured path: the partitioned modified-Newton fast path by default,
// the historical full-assembly/full-factorization loop under NoFastPath.
func (s *Simulator) solve(mode circuit.StampMode, gminExtra float64) error {
	if s.fast {
		return s.newtonFast(mode, gminExtra)
	}
	return s.newton(mode, gminExtra)
}

// newton runs a damped Newton iteration at the assembler's current Time,
// starting from the current iterate. gminExtra adds additional conductance
// to ground (used by the DC gmin-stepping homotopy).
func (s *Simulator) newton(mode circuit.StampMode, gminExtra float64) error {
	n := s.ckt.Size()
	nNodes := s.ckt.NumNodes()
	for iter := 0; iter < s.opts.MaxNewton; iter++ {
		s.stats.nrIters++
		s.assemble(mode)
		if gminExtra > 0 {
			for i := 0; i < nNodes; i++ {
				s.asm.A.Add(i, i, gminExtra)
			}
		}
		var err error
		if s.lu == nil {
			s.lu, err = linalg.NewLU(s.asm.A)
		} else {
			err = s.lu.Refactor(s.asm.A)
		}
		if err != nil {
			return fmt.Errorf("spice: t=%.6g: %w", s.asm.Time, err)
		}
		if err := s.lu.SolveInto(s.xNew, s.asm.B); err != nil {
			return err
		}
		// Damped update: clamp node-voltage moves.
		maxDV := 0.0
		lambda := 1.0
		for i := 0; i < nNodes; i++ {
			dv := math.Abs(s.xNew[i] - s.asm.X[i])
			if dv > maxDV {
				maxDV = dv
			}
		}
		if maxDV > s.opts.MaxDeltaV {
			lambda = s.opts.MaxDeltaV / maxDV
		}
		for i := 0; i < n; i++ {
			s.asm.X[i] += lambda * (s.xNew[i] - s.asm.X[i])
		}
		if lambda == 1.0 && maxDV < s.opts.VTol {
			return nil
		}
	}
	return fmt.Errorf("%w (t=%.6g)", ErrNewton, s.asm.Time)
}

// OperatingPoint solves the DC operating point with the sources at their
// t = Start values, using a gmin-stepping homotopy for robustness. The
// solution is left in the assembler and also returned keyed by node name.
func (s *Simulator) OperatingPoint() (map[string]float64, error) {
	if err := (&s.opts).validate(); err != nil {
		return nil, err
	}
	s.fast = !s.opts.NoFastPath
	s.stats.wallStart = time.Now()
	defer s.flushTelemetry("spice.op_solves", "spice.op_seconds")
	return s.solveOP()
}

// solveOP is OperatingPoint without validation or telemetry flushing; Run
// uses it so the DC solve's Newton iterations are accounted to the
// enclosing transient.
func (s *Simulator) solveOP() (map[string]float64, error) {
	s.asm.Time = s.opts.Start
	s.ic = circuit.IntegrationCoeffs{}
	// A cached factorization from a previous run (or a previous homotopy)
	// was built at a different iterate; start every DC solve fresh. The
	// sparse elimination order and the per-key baseline capture are also
	// per-run state: reseeding them inside each run keeps results
	// independent of which case a reused Simulator ran previously (and so
	// independent of sweep worker scheduling).
	s.clu.Invalidate()
	s.clu.ClearPattern()
	s.spArmed = false
	s.bl.valid = false
	s.moveSinceFactor = 0
	s.rhoEst = math.NaN()
	linalg.Fill(s.asm.X, 0)
	// Try a direct solve first; fall back to gmin stepping.
	if err := s.solve(circuit.DC, 0); err != nil {
		linalg.Fill(s.asm.X, 0)
		for _, g := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 0} {
			if err := s.solve(circuit.DC, g); err != nil {
				return nil, fmt.Errorf("spice: DC homotopy failed at gmin=%g: %w", g, err)
			}
		}
	}
	if i := nonFiniteAt(s.asm.X); i >= 0 {
		s.stats.nonFinite++
		return nil, fmt.Errorf("spice: DC operating point: %w: x[%d]=%g", ErrNonFinite, i, s.asm.X[i])
	}
	out := make(map[string]float64, s.ckt.NumNodes())
	for _, name := range s.ckt.NodeNames() {
		id, _ := s.ckt.LookupNode(name)
		out[name] = s.asm.V(id)
	}
	return out, nil
}

// breakpoints collects and sorts all source breakpoints inside the run
// window, appending into buf (whose storage is reused).
func (s *Simulator) breakpoints(buf []float64) []float64 {
	bps := buf
	for _, e := range s.ckt.Elements() {
		v, ok := e.(*circuit.VSource)
		if !ok {
			continue
		}
		for _, t := range v.Value.Breakpoints() {
			if t > s.opts.Start && t < s.opts.Stop {
				bps = append(bps, t)
			}
		}
	}
	sort.Float64s(bps)
	// Deduplicate.
	out := bps[:0]
	for i, t := range bps {
		if i == 0 || t-out[len(out)-1] > 1e-18 {
			out = append(out, t)
		}
	}
	return out
}

// resized returns buf with length n, reusing its storage when possible.
func resized(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// probeMissing marks a probe name that resolved to no circuit node; its
// samples record as NaN (caught by Result.Waveform's validation).
const probeMissing = circuit.NodeID(-2)

// resolveProbes computes the run's probe name list and caches the matching
// node IDs in s.probeIDs (storage reused across runs).
func (s *Simulator) resolveProbes() []string {
	names := s.opts.Probes
	if len(names) == 0 {
		names = s.ckt.NodeNames()
	}
	s.probeIDs = s.probeIDs[:0]
	for _, n := range names {
		id, ok := s.ckt.LookupNode(n)
		if !ok {
			id = probeMissing
		}
		s.probeIDs = append(s.probeIDs, id)
	}
	return names
}

// newRunResult returns the Result for a starting run: a fresh one, or —
// under Options.ReuseResult, when the probe set is unchanged — the previous
// run's Result with its sample storage recycled.
func (s *Simulator) newRunResult() *Result {
	names := s.resolveProbes()
	if s.opts.ReuseResult && s.res != nil && sameNames(s.res.names, names) {
		s.res.reset()
		return s.res
	}
	res := newResult(names)
	if s.opts.ReuseResult {
		s.res = res
	}
	return res
}

// recordSample appends the current iterate's probe voltages at time t.
func (s *Simulator) recordSample(res *Result, t float64) {
	res.Time = append(res.Time, t)
	for i, id := range s.probeIDs {
		v := math.NaN()
		if id != probeMissing {
			v = s.asm.V(id)
		}
		res.v[i] = append(res.v[i], v)
	}
}

// alignStep trims a candidate step to the next source breakpoint and
// reports whether the step lands on one (within tolerance). It is
// re-evaluated on every attempt: a step that is halved after a Newton
// or LTE rejection may still land on — or newly straddle — a
// breakpoint, and the post-breakpoint BE damping must not be lost
// just because the first attempt was rejected.
func (s *Simulator) alignStep(t, h float64) (float64, bool) {
	for _, bp := range s.tr.bps {
		if bp > t+1e-21 && bp < t+h-1e-21 {
			return bp - t, true
		}
		if math.Abs(bp-(t+h)) <= 1e-21 {
			return h, true
		}
		if bp >= t+h {
			break
		}
	}
	return h, false
}

// RunWindow re-targets the simulator at a new run window and context, then
// performs the transient. It exists for callers that reuse one Simulator
// (and circuit) across many cases, replacing only the source values and
// the window between runs; every Run starts from a fresh DC operating
// point, so no state leaks from the previous case.
func (s *Simulator) RunWindow(ctx context.Context, start, stop float64) (*Result, error) {
	s.opts.Ctx = ctx
	s.opts.Start = start
	s.opts.Stop = stop
	return s.Run()
}

// Run performs the transient analysis: DC operating point, then fixed-base
// stepping with breakpoint alignment, BE start-up steps, and step halving
// on Newton failure.
//
// When Options.Ctx is canceled (or its deadline passes) mid-run, Run stops
// at the next outer time step and returns the waveforms recorded so far
// together with an error matching telemetry.ErrCanceled.
func (s *Simulator) Run() (*Result, error) {
	if err := (&s.opts).validate(); err != nil {
		return nil, err
	}
	s.fast = !s.opts.NoFastPath
	s.stats.wallStart = time.Now()
	defer s.flushTelemetry("spice.transients", "spice.transient_seconds")
	// The span-closing defer is registered after the telemetry flush so it
	// runs first, while the stats it snapshots are still live.
	_, span := trace.Start(s.opts.Ctx, "spice.transient",
		trace.Float("start_s", s.opts.Start), trace.Float("stop_s", s.opts.Stop))
	s.span = span
	defer func() {
		span.SetAttr(
			trace.Int64("newton_iterations", s.stats.nrIters),
			trace.Int64("steps_accepted", s.stats.accepts),
			trace.Int64("steps_rejected", s.stats.rejects),
		)
		span.End()
		s.span = nil
	}()
	opSpan := span.Child("spice.op")
	if _, err := s.solveOP(); err != nil {
		opSpan.SetAttr(trace.String("error", err.Error()))
		opSpan.End()
		return nil, err
	}
	opSpan.End()
	for _, d := range s.dynamics {
		d.InitState(s.asm)
	}

	res := s.newRunResult()
	rec := &res.Recovery
	if s.opts.RecoveryBudget > 0 {
		rec.Budget = s.opts.RecoveryBudget
	}
	s.recovery = rec
	defer func() { s.recovery = nil }()
	s.recordSample(res, s.opts.Start)

	st := &s.tr
	st.bps = s.breakpoints(st.bps[:0])
	st.t = s.opts.Start
	st.base = s.opts.Step
	// beSteps counts remaining forced backward-Euler steps (used at start
	// and after each breakpoint to damp trapezoidal ringing).
	st.beSteps = 2
	n := s.ckt.Size()
	st.xPrev = resized(st.xPrev, n)
	copy(st.xPrev, s.asm.X)
	// Previous accepted state for the adaptive LTE predictor.
	st.xPrevPrev = resized(st.xPrevPrev, n)
	copy(st.xPrevPrev, s.asm.X)
	st.hPrev = 0.0
	st.nNodes = s.ckt.NumNodes()

	for st.t < s.opts.Stop-1e-21 {
		if err := s.stepTransient(res, rec, st); err != nil {
			return res, err
		}
	}
	return res, nil
}

// stepTransient advances the transient by one accepted outer step: it
// polls the context, attempts the step with halving on Newton failure or
// excessive LTE, escalates through the recovery ladder when every halving
// attempt fails, commits the dynamic-element state, records the sample and
// updates the adaptive base step.
func (s *Simulator) stepTransient(res *Result, rec *RecoveryReport, st *transient) error {
	t := st.t
	if ctx := s.opts.Ctx; ctx != nil {
		select {
		case <-ctx.Done():
			s.stats.canceled = 1
			s.span.Event("spice.canceled", trace.Float("t_s", t))
			return telemetry.Canceled(ctx, "spice: transient canceled at t=%.6g (of %.6g)", t, s.opts.Stop)
		default:
		}
	}
	s.opts.Inject.StallPoint(s.opts.Ctx)
	h := st.base
	if t+h > s.opts.Stop {
		h = s.opts.Stop - t
	}

	// Attempt the step, halving on Newton failure or excessive LTE.
	accepted := false
	hitBP := false
	rejects := 0
	var lte float64
	var method Method
	for attempt := 0; attempt < 16; attempt++ {
		h, hitBP = s.alignStep(t, h)
		method = s.opts.Method
		if st.beSteps > 0 {
			method = BackwardEuler
		}
		if s.testForceReject != nil && s.testForceReject(t, h) {
			h /= 2
			rejects++
			continue
		}
		ic := circuit.IntegrationCoeffs{Geq: 1 / h, HistI: 0}
		if method == Trap {
			ic = circuit.IntegrationCoeffs{Geq: 2 / h, HistI: -1}
		}
		s.ic = ic
		for _, d := range s.dynamics {
			d.BeginStep(ic)
		}
		s.asm.Time = t + h
		if err := s.solveTransient(0); err != nil {
			// Reject (non-convergence or a non-finite solution):
			// restore the iterate and halve the step.
			copy(s.asm.X, st.xPrev)
			h /= 2
			rejects++
			continue
		}
		// Adaptive: compare against the linear prediction from the
		// two previous accepted points.
		if s.opts.Adaptive && st.hPrev > 0 && st.beSteps == 0 {
			lte = 0
			for i := 0; i < st.nNodes; i++ {
				pred := st.xPrev[i] + (st.xPrev[i]-st.xPrevPrev[i])*(h/st.hPrev)
				if d := math.Abs(s.asm.X[i] - pred); d > lte {
					lte = d
				}
			}
			if lte > s.opts.LTETol && h > s.opts.MinStep {
				copy(s.asm.X, st.xPrev)
				h = math.Max(h/2, s.opts.MinStep)
				rejects++
				continue
			}
		}
		accepted = true
		break
	}
	recovered := false
	if !accepted {
		// Every halving attempt failed (previously fatal): escalate
		// through the recovery ladder — gmin ramp, then BE fallback —
		// within the run's recovery budget.
		s.stats.rejects += int64(rejects)
		rejects = 0
		var rerr error
		h, method, hitBP, rerr = s.recoverStep(t, st.base, rec, st.xPrev)
		if rerr != nil {
			return rerr
		}
		recovered = true
	}
	if rejects > 0 {
		rec.StepCuts++
		s.stats.stepCuts++
	}
	s.stats.accepts++
	s.stats.rejects += int64(rejects)
	if hitBP {
		s.stats.bpHits++
	}
	for _, d := range s.dynamics {
		d.EndStep(s.asm)
	}
	t += h
	st.t = t
	copy(st.xPrevPrev, st.xPrev)
	copy(st.xPrev, s.asm.X)
	st.hPrev = h
	s.recordSample(res, t)
	if s.opts.RecordSteps {
		res.Trace = append(res.Trace, StepTrace{
			T: t, H: h, Method: method, HitBP: hitBP, Rejects: rejects,
		})
	}
	if st.beSteps > 0 {
		st.beSteps--
	}
	if hitBP {
		st.beSteps = 2
	}
	if recovered {
		// The circuit just proved itself hard at this timepoint: damp
		// the next steps with backward Euler (as after a breakpoint)
		// and skip this step's adaptive growth, whose LTE estimate is
		// meaningless across the ladder.
		st.beSteps = 2
		return nil
	}
	// Adaptive growth through quiet stretches.
	if s.opts.Adaptive && accepted && st.beSteps == 0 {
		switch {
		case lte < s.opts.LTETol/4:
			st.base = math.Min(st.base*1.5, s.opts.MaxStep)
		case lte > s.opts.LTETol/2:
			st.base = math.Max(st.base/1.5, s.opts.MinStep)
		}
		if h < st.base {
			// A halved step also caps the next base so recovery is
			// gradual after a rejection.
			st.base = math.Max(h*1.5, s.opts.MinStep)
		}
	}
	return nil
}
