package spice

import (
	"context"
	"errors"
	"testing"
	"time"

	"noisewave/internal/circuit"
	"noisewave/internal/telemetry"
)

// rcCircuit builds the single-pole RC low-pass used by the telemetry tests.
func rcCircuit() *circuit.Circuit {
	ckt := circuit.New()
	in := ckt.Node("in")
	out := ckt.Node("out")
	ckt.AddVSource("vin", in, circuit.Ground, circuit.PWL{
		T: []float64{0, 1e-12}, V: []float64{0, 1},
	})
	ckt.AddResistor(in, out, 1e3)
	ckt.AddCapacitor(out, circuit.Ground, 1e-12)
	return ckt
}

// TestTransientTelemetry: one Run must flush one transient counter, a
// positive Newton-iteration and step-accept count, and a wall timer whose
// single observation is consistent with the measured wall clock.
func TestTransientTelemetry(t *testing.T) {
	reg := telemetry.New()
	sim := New(rcCircuit(), Options{Stop: 2e-9, Step: 5e-12, Telemetry: reg})
	wallStart := time.Now()
	if _, err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	wall := time.Since(wallStart).Seconds()

	snap := reg.Snapshot()
	if got := snap.Counters["spice.transients"]; got != 1 {
		t.Errorf("spice.transients = %d, want 1", got)
	}
	if got := snap.Counters["spice.newton_iterations"]; got <= 0 {
		t.Errorf("spice.newton_iterations = %d, want > 0", got)
	}
	accepts := snap.Counters["spice.steps_accepted"]
	if accepts <= 0 {
		t.Errorf("spice.steps_accepted = %d, want > 0", accepts)
	}
	// Fixed 5 ps steps over 2 ns: about 400 accepted steps.
	if accepts < 300 || accepts > 500 {
		t.Errorf("spice.steps_accepted = %d, want ~400 for fixed 5 ps steps over 2 ns", accepts)
	}
	if got := snap.Counters["spice.runs_canceled"]; got != 0 {
		t.Errorf("spice.runs_canceled = %d, want 0", got)
	}
	ts, ok := snap.Timers["spice.transient_seconds"]
	if !ok {
		t.Fatal("spice.transient_seconds timer missing from snapshot")
	}
	if ts.Count != 1 {
		t.Errorf("transient_seconds count = %d, want 1", ts.Count)
	}
	if ts.Sum <= 0 || ts.Sum > wall {
		t.Errorf("transient_seconds sum = %g, want in (0, %g]", ts.Sum, wall)
	}

	// A second run accumulates into the same counters.
	if _, err := sim.Run(); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if got := reg.Counter("spice.transients").Value(); got != 2 {
		t.Errorf("after two runs spice.transients = %d, want 2", got)
	}
}

// TestOperatingPointTelemetry: a standalone DC solve flushes under the
// op_solves/op_seconds names, not the transient names.
func TestOperatingPointTelemetry(t *testing.T) {
	reg := telemetry.New()
	sim := New(rcCircuit(), Options{Stop: 1e-9, Step: 5e-12, Telemetry: reg})
	if _, err := sim.OperatingPoint(); err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["spice.op_solves"]; got != 1 {
		t.Errorf("spice.op_solves = %d, want 1", got)
	}
	if got := snap.Counters["spice.transients"]; got != 0 {
		t.Errorf("spice.transients = %d, want 0 after a pure DC solve", got)
	}
	if got := snap.Counters["spice.newton_iterations"]; got <= 0 {
		t.Errorf("spice.newton_iterations = %d, want > 0", got)
	}
	if ts := snap.Timers["spice.op_seconds"]; ts.Count != 1 {
		t.Errorf("op_seconds count = %d, want 1", ts.Count)
	}
}

// TestForcedRejectionCounted: a step rejected through the test hook must
// show up in spice.steps_rejected while the run still completes.
func TestForcedRejectionCounted(t *testing.T) {
	reg := telemetry.New()
	sim := New(rcCircuit(), Options{Stop: 1e-9, Step: 5e-12, Telemetry: reg})
	rejected := false
	sim.testForceReject = func(tt, h float64) bool {
		if !rejected && tt > 0.5e-9 {
			rejected = true
			return true
		}
		return false
	}
	if _, err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rejected {
		t.Fatal("test hook never fired")
	}
	if got := reg.Counter("spice.steps_rejected").Value(); got != 1 {
		t.Errorf("spice.steps_rejected = %d, want 1", got)
	}
}

// TestTransientCancel: a canceled context stops the outer loop, returns the
// partial waveforms recorded so far, and the error matches both the
// library's ErrCanceled sentinel and the context's own cause.
func TestTransientCancel(t *testing.T) {
	reg := telemetry.New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the first outer step
	sim := New(rcCircuit(), Options{Stop: 2e-9, Step: 5e-12, Ctx: ctx, Telemetry: reg})
	res, err := sim.Run()
	if err == nil {
		t.Fatal("Run returned nil error under a canceled context")
	}
	if !errors.Is(err, telemetry.ErrCanceled) {
		t.Errorf("error %v does not match telemetry.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not match context.Canceled", err)
	}
	if res == nil {
		t.Fatal("Run returned nil result; want the partial waveforms")
	}
	w, werr := res.Waveform("out")
	if werr != nil {
		t.Fatalf("partial result has no 'out' waveform: %v", werr)
	}
	// Only the initial record exists: the first step was never taken.
	if w.Len() != 1 {
		t.Errorf("partial waveform has %d samples, want 1 (the t=Start record)", w.Len())
	}
	if got := reg.Counter("spice.runs_canceled").Value(); got != 1 {
		t.Errorf("spice.runs_canceled = %d, want 1", got)
	}
}

// TestTransientDeadline: a deadline mid-run leaves a truncated waveform and
// an error matching both ErrCanceled and context.DeadlineExceeded.
func TestTransientDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 1*time.Millisecond)
	defer cancel()
	// A long, finely-stepped run so the deadline reliably fires mid-loop.
	sim := New(rcCircuit(), Options{Stop: 1e-6, Step: 1e-12, Ctx: ctx})
	res, err := sim.Run()
	if err == nil {
		t.Skip("run finished before the deadline; machine too fast for this bound")
	}
	if !errors.Is(err, telemetry.ErrCanceled) {
		t.Errorf("error %v does not match telemetry.ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not match context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("nil partial result")
	}
	w, werr := res.Waveform("out")
	if werr != nil {
		t.Fatalf("partial result: %v", werr)
	}
	if w.End() >= 1e-6 {
		t.Errorf("partial waveform reaches t=%g; expected truncation before Stop", w.End())
	}
}
