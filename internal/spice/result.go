package spice

import (
	"fmt"

	"noisewave/internal/wave"
)

// StepTrace describes one accepted transient step: where it landed, its
// size, the integration method actually used, whether it ended on a source
// breakpoint, and how many attempts were rejected (Newton failure or LTE)
// before acceptance.
type StepTrace struct {
	T, H    float64
	Method  Method
	HitBP   bool
	Rejects int
}

// Result holds recorded node voltages over time.
type Result struct {
	Time []float64
	// Trace holds per-step diagnostics when Options.RecordSteps is set.
	Trace []StepTrace
	// Recovery reports what the transient recovery ladder did during the
	// run (step cuts, gmin ramps, BE fallbacks, budget usage). A zero
	// report means the run never needed recovery.
	Recovery RecoveryReport

	names []string
	index map[string]int
	v     [][]float64 // v[probe][step]
}

func newResult(names []string) *Result {
	r := &Result{
		names: names,
		index: make(map[string]int, len(names)),
		v:     make([][]float64, len(names)),
	}
	for i, n := range names {
		r.index[n] = i
	}
	return r
}

// Nodes returns the recorded node names.
func (r *Result) Nodes() []string { return append([]string(nil), r.names...) }

// Steps returns the number of recorded timepoints.
func (r *Result) Steps() int { return len(r.Time) }

// Voltage returns the voltage samples of a node.
func (r *Result) Voltage(node string) ([]float64, error) {
	i, ok := r.index[node]
	if !ok {
		return nil, fmt.Errorf("spice: node %q was not probed (have %v)", node, r.names)
	}
	return r.v[i], nil
}

// Waveform returns the recorded node voltage as a waveform. Samples are
// validated first: a NaN/Inf voltage — the signature of a diverged solve
// that escaped rejection, or of a probe that never resolved to a node —
// returns an error wrapping wave.ErrBadSamples naming the node and
// timepoint, instead of leaking into downstream crossing queries as a
// silent anomaly.
func (r *Result) Waveform(node string) (*wave.Waveform, error) {
	v, err := r.Voltage(node)
	if err != nil {
		return nil, err
	}
	if i := nonFiniteAt(v); i >= 0 {
		return nil, fmt.Errorf("spice: node %q: non-finite sample v=%g at t=%.6g: %w",
			node, v[i], r.Time[i], wave.ErrBadSamples)
	}
	return wave.New(append([]float64(nil), r.Time...), append([]float64(nil), v...))
}

// Final returns the last recorded voltage of a node.
func (r *Result) Final(node string) (float64, error) {
	v, err := r.Voltage(node)
	if err != nil {
		return 0, err
	}
	if len(v) == 0 {
		return 0, fmt.Errorf("spice: no samples recorded")
	}
	return v[len(v)-1], nil
}

// record appends one sample row by evaluating get per probe name. The
// engine's hot path records through Simulator.recordSample (cached node
// IDs, no closure); this remains for tests building Results directly.
func (r *Result) record(t float64, get func(name string) float64) {
	r.Time = append(r.Time, t)
	for i, n := range r.names {
		r.v[i] = append(r.v[i], get(n))
	}
}

// reset clears the recorded samples and diagnostics keeping the storage,
// so a simulator running under Options.ReuseResult recycles the buffers
// across runs instead of reallocating them per case.
func (r *Result) reset() {
	r.Time = r.Time[:0]
	r.Trace = r.Trace[:0]
	r.Recovery = RecoveryReport{}
	for i := range r.v {
		r.v[i] = r.v[i][:0]
	}
}

// sameNames reports whether two probe name lists are identical.
func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
