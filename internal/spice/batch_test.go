package spice

// Bit-identity suite for the batch engine: RunBatch must deliver, for every
// case, exactly the Result a scalar Run of that case produces — same Time
// grid, same voltage bits, same step trace, same recovery report — at any
// batch size, whether a case rode the shared trunk, peeled off, or the
// whole batch fell back to scalar runs.

import (
	"context"
	"math"
	"testing"

	"noisewave/internal/circuit"
	"noisewave/internal/device"
	"noisewave/internal/faultinject"
	"noisewave/internal/wave"
)

// batchBench is a retargetable aggressor/victim pair: the victim source is
// fixed, the aggressor source is re-aimed per case, mirroring how the
// crosstalk sweeps drive the engine.
type batchBench struct {
	ckt  *circuit.Circuit
	agg  *circuit.VSource
	tech device.Tech
}

func newBatchBench() *batchBench {
	tech := device.Default130()
	ckt := circuit.New()
	va := ckt.Node("va")
	vb := ckt.Node("vb")
	fa := ckt.Node("fa")
	fb := ckt.Node("fb")
	vdd := ckt.Node("vdd")
	ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
	ckt.AddVSource("vs_v", va, circuit.Ground,
		circuit.SlewRamp(0.2e-9, 100e-12, tech.Vdd, wave.Rising))
	agg := ckt.AddVSource("vs_a", vb, circuit.Ground,
		circuit.SlewRamp(0.5e-9, 80e-12, tech.Vdd, wave.Falling))
	ckt.AddResistor(va, fa, 500)
	ckt.AddResistor(vb, fb, 700)
	ckt.AddCapacitor(fa, circuit.Ground, 20e-15)
	ckt.AddCapacitor(fb, circuit.Ground, 25e-15)
	ckt.AddCapacitor(fa, fb, 40e-15)
	ckt.AddInverter("u_rx", tech, 4, fa, ckt.Node("out"), vdd)
	return &batchBench{ckt: ckt, agg: agg, tech: tech}
}

// retarget aims the aggressor edge at t0 (Inf = quiet low).
func (b *batchBench) retarget(t0 float64) {
	if math.IsInf(t0, 0) {
		b.agg.Value = circuit.DCSource(b.tech.Vdd)
		return
	}
	b.agg.Value = circuit.SlewRamp(t0, 80e-12, b.tech.Vdd, wave.Falling)
}

// aggSources builds the per-case aggressor sources and the shared horizon
// (minimum pairwise divergence against case 0).
func aggShare(b *batchBench, starts []float64) float64 {
	srcOf := func(t0 float64) circuit.Source {
		if math.IsInf(t0, 0) {
			return circuit.DCSource(b.tech.Vdd)
		}
		return circuit.SlewRamp(t0, 80e-12, b.tech.Vdd, wave.Falling)
	}
	share := math.Inf(1)
	for _, t0 := range starts[1:] {
		if d := circuit.SourceDivergeTime(srcOf(starts[0]), srcOf(t0)); d < share {
			share = d
		}
	}
	return share
}

// snapshotResult deep-copies the parts of a Result the suite compares.
type snapshotResult struct {
	time  []float64
	v     [][]float64
	trace []StepTrace
	rec   RecoveryReport
	err   error
}

func snapshot(res *Result, err error) snapshotResult {
	s := snapshotResult{err: err}
	if res == nil {
		return s
	}
	s.time = append([]float64(nil), res.Time...)
	s.trace = append([]StepTrace(nil), res.Trace...)
	s.rec = res.Recovery
	s.v = make([][]float64, len(res.v))
	for i := range res.v {
		s.v[i] = append([]float64(nil), res.v[i]...)
	}
	return s
}

func assertIdentical(t *testing.T, label string, got, want snapshotResult) {
	t.Helper()
	if (got.err == nil) != (want.err == nil) {
		t.Fatalf("%s: error mismatch: batch %v, scalar %v", label, got.err, want.err)
	}
	if got.rec != want.rec {
		t.Errorf("%s: recovery reports differ: batch %+v, scalar %+v", label, got.rec, want.rec)
	}
	if len(got.time) != len(want.time) {
		t.Fatalf("%s: sample counts differ: batch %d, scalar %d", label, len(got.time), len(want.time))
	}
	for k := range want.time {
		if got.time[k] != want.time[k] {
			t.Fatalf("%s: time grid diverges at sample %d: batch %.18g, scalar %.18g",
				label, k, got.time[k], want.time[k])
		}
	}
	if len(got.trace) != len(want.trace) {
		t.Fatalf("%s: step traces differ in length: %d vs %d", label, len(got.trace), len(want.trace))
	}
	for k := range want.trace {
		if got.trace[k] != want.trace[k] {
			t.Fatalf("%s: step trace diverges at step %d: batch %+v, scalar %+v",
				label, k, got.trace[k], want.trace[k])
		}
	}
	for j := range want.v {
		for k := range want.v[j] {
			if got.v[j][k] != want.v[j][k] {
				t.Fatalf("%s: probe %d sample %d diverges: batch %.18g, scalar %.18g (Δ=%g)",
					label, j, k, got.v[j][k], want.v[j][k], got.v[j][k]-want.v[j][k])
			}
		}
	}
}

// runBatchVsScalar runs the alignment set through RunBatch on one simulator
// and through scalar RunWindow calls on a fresh one, and demands bitwise
// identity per case.
func runBatchVsScalar(t *testing.T, opts Options, starts []float64, share float64) {
	t.Helper()
	stops := make([]float64, len(starts))
	for i, t0 := range starts {
		end := 0.5e-9
		if !math.IsInf(t0, 0) && t0 > 0.2e-9 {
			end = t0
		}
		stops[i] = end + 1.2e-9
	}

	bb := newBatchBench()
	sim := New(bb.ckt, opts)
	cases := make([]BatchCase, len(starts))
	for i := range starts {
		t0 := starts[i]
		cases[i] = BatchCase{Stop: stops[i], Retarget: func() { bb.retarget(t0) }}
	}
	got := make([]snapshotResult, len(cases))
	seen := make([]bool, len(cases))
	err := sim.RunBatch(context.Background(), 0, share, cases,
		func(i int, res *Result, cerr error) error {
			got[i] = snapshot(res, cerr)
			seen[i] = true
			return nil
		})
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("case %d was never delivered", i)
		}
	}

	sb := newBatchBench()
	ssim := New(sb.ckt, opts)
	for i := range starts {
		sb.retarget(starts[i])
		res, rerr := ssim.RunWindow(context.Background(), 0, stops[i])
		assertIdentical(t, "case "+string(rune('0'+i)), got[i], snapshot(res, rerr))
	}
}

func TestBatchBitIdentity(t *testing.T) {
	opts := Options{Step: 2e-12, RecordSteps: true, ReuseResult: true}
	for _, tc := range []struct {
		name   string
		starts []float64
	}{
		{"k1", []float64{0.9e-9}},
		{"k4-with-quiet", []float64{0.9e-9, 1.1e-9, 1.4e-9, math.Inf(1)}},
		{"k3-adaptive-window-spread", []float64{0.8e-9, 1.6e-9, 1.0e-9}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bb := newBatchBench()
			runBatchVsScalar(t, opts, tc.starts, aggShare(bb, tc.starts))
		})
	}
}

// TestBatchAdaptive exercises the adaptive step controller through the
// trunk/fork machinery, where the fork must carry the grown base step and
// the two-deep iterate history the LTE estimator uses.
func TestBatchAdaptive(t *testing.T) {
	opts := Options{
		Step: 2e-12, Adaptive: true, LTETol: 2e-3,
		MaxStep: 40e-12, MinStep: 0.5e-12, RecordSteps: true,
	}
	starts := []float64{0.9e-9, 1.3e-9, 1.05e-9}
	bb := newBatchBench()
	runBatchVsScalar(t, opts, starts, aggShare(bb, starts))
}

// TestBatchPeelOnBreakpointMismatch overclaims the shared horizon: the
// caller promises sharing past an aggressor edge, so each case's breakpoint
// prefix disagrees with the trunk's and the engine must peel the mismatched
// cases to scalar runs rather than deliver trunk steps computed under the
// wrong sources.
func TestBatchPeelOnBreakpointMismatch(t *testing.T) {
	opts := Options{Step: 2e-12, RecordSteps: true}
	starts := []float64{0.6e-9, 0.8e-9, 1.0e-9}
	// True divergence is at 0.6e-9; claim sharing until past the first two
	// edges. Case 0 matches the trunk (it *is* the trunk's source), the
	// others must peel.
	runBatchVsScalar(t, opts, starts, 0.9e-9)
}

// TestBatchScalarFallbacks covers the whole-batch fallbacks: fast path
// disabled, a fault injector armed (with the injected faults driving the
// recovery ladder identically in both runs), and an empty shared window.
func TestBatchScalarFallbacks(t *testing.T) {
	starts := []float64{0.9e-9, 1.2e-9}
	t.Run("no-fastpath", func(t *testing.T) {
		bb := newBatchBench()
		runBatchVsScalar(t, Options{Step: 2e-12, NoFastPath: true}, starts, aggShare(bb, starts))
	})
	t.Run("empty-share-window", func(t *testing.T) {
		runBatchVsScalar(t, Options{Step: 2e-12}, starts, 0)
	})
	t.Run("fault-injection", func(t *testing.T) {
		// The injector counts solveTransient ordinals per run; batched
		// sharing would shift them, so the engine must fall back to scalar
		// runs — and then the recovery reports agree bit for bit.
		mk := func() *faultinject.Injector {
			return faultinject.New(faultinject.Config{
				Seed: 7, NewtonEvery: 1, NewtonMax: 3, NewtonAfter: 150,
			})
		}
		stops := []float64{2.1e-9, 2.4e-9}

		bb := newBatchBench()
		sim := New(bb.ckt, Options{Step: 2e-12, Inject: mk()})
		var got []snapshotResult
		for range starts {
			got = append(got, snapshotResult{})
		}
		cases := []BatchCase{
			{Stop: stops[0], Retarget: func() { bb.retarget(starts[0]) }},
			{Stop: stops[1], Retarget: func() { bb.retarget(starts[1]) }},
		}
		err := sim.RunBatch(context.Background(), 0, aggShare(bb, starts), cases,
			func(i int, res *Result, cerr error) error {
				got[i] = snapshot(res, cerr)
				return nil
			})
		if err != nil {
			t.Fatalf("RunBatch: %v", err)
		}

		sb := newBatchBench()
		ssim := New(sb.ckt, Options{Step: 2e-12, Inject: mk()})
		perturbed := false
		for i := range starts {
			sb.retarget(starts[i])
			res, rerr := ssim.RunWindow(context.Background(), 0, stops[i])
			if r := got[i].rec; r.StepCuts > 0 || r.NonFinite > 0 || r.Recovered() {
				perturbed = true
			}
			assertIdentical(t, "inject case "+string(rune('0'+i)), got[i], snapshot(res, rerr))
		}
		if !perturbed {
			t.Error("injector never perturbed any case; the leg is vacuous")
		}
	})
}

// TestBatchCancellation cancels mid-batch and checks the batch aborts with
// a cancellation error without delivering wrong results.
func TestBatchCancellation(t *testing.T) {
	bb := newBatchBench()
	sim := New(bb.ckt, Options{Step: 2e-12})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	starts := []float64{0.9e-9, 1.2e-9}
	cases := []BatchCase{
		{Stop: 2.1e-9, Retarget: func() { bb.retarget(starts[0]) }},
		{Stop: 2.4e-9, Retarget: func() { bb.retarget(starts[1]) }},
	}
	delivered := 0
	err := sim.RunBatch(ctx, 0, aggShare(bb, starts), cases,
		func(i int, res *Result, cerr error) error {
			delivered++
			if cerr == nil {
				t.Errorf("case %d delivered without error under a canceled context", i)
			}
			return nil
		})
	if err == nil {
		t.Fatalf("RunBatch under canceled context returned nil (delivered %d)", delivered)
	}
}

// TestBatchDeliversEachCaseOnce pins the delivery count: a batch where every
// case rides the trunk must deliver each case exactly once. (A regression
// here is invisible to the bit-identity suite — a duplicate scalar re-run
// delivers the identical result — but it silently doubles the work and
// erases the batch speedup.)
func TestBatchDeliversEachCaseOnce(t *testing.T) {
	bb := newBatchBench()
	s := New(bb.ckt, Options{Stop: 1.2e-9, Step: 1e-12, ReuseResult: true})
	starts := []float64{0.7e-9, 0.72e-9, 0.75e-9, 0.8e-9}
	cases := make([]BatchCase, len(starts))
	for i, t0 := range starts {
		t0 := t0
		cases[i] = BatchCase{Stop: 1.2e-9, Retarget: func() { bb.retarget(t0) }}
	}
	delivered := make([]int, len(cases))
	err := s.RunBatch(context.Background(), 0, aggShare(bb, starts), cases,
		func(i int, res *Result, err error) error {
			delivered[i]++
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range delivered {
		if n != 1 {
			t.Errorf("case %d delivered %d times, want exactly 1", i, n)
		}
	}
}
