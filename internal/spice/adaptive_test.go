package spice

import (
	"math"
	"testing"

	"noisewave/internal/circuit"
	"noisewave/internal/device"
	"noisewave/internal/wave"
)

// TestAdaptiveRCAccuracy: the adaptive integrator must track the analytic
// RC exponential within tolerance while taking fewer steps than the fixed
// grid would over the long quiet tail.
func TestAdaptiveRCAccuracy(t *testing.T) {
	build := func() *circuit.Circuit {
		ckt := circuit.New()
		in := ckt.Node("in")
		out := ckt.Node("out")
		ckt.AddVSource("vin", in, circuit.Ground, circuit.PWL{
			T: []float64{0.1e-9, 0.101e-9}, V: []float64{0, 1},
		})
		ckt.AddResistor(in, out, 1e3)
		ckt.AddCapacitor(out, circuit.Ground, 1e-12) // tau = 1 ns
		return ckt
	}
	// 50 ns window with a 1 ns tau: a fixed 5 ps grid needs 10000 steps.
	fixedSteps := int(50e-9 / 5e-12)

	sim := New(build(), Options{Stop: 50e-9, Step: 5e-12, Adaptive: true, LTETol: 0.5e-3})
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	w, err := res.Waveform("out")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []float64{0.5e-9, 1e-9, 3e-9, 10e-9, 40e-9} {
		want := 1 - math.Exp(-(tc-0.101e-9)/1e-9)
		if tc < 0.101e-9 {
			want = 0
		}
		if got := w.At(tc); math.Abs(got-want) > 5e-3 {
			t.Errorf("v(out) at %g: %.5f want %.5f", tc, got, want)
		}
	}
	if res.Steps() >= fixedSteps/4 {
		t.Errorf("adaptive run took %d steps; expected well below fixed %d", res.Steps(), fixedSteps)
	}
	t.Logf("adaptive: %d steps vs %d fixed", res.Steps(), fixedSteps)
}

// TestAdaptiveMatchesFixedOnGateDelay: the adaptive mode must reproduce a
// fixed-step gate delay within a couple of picoseconds.
func TestAdaptiveMatchesFixedOnGateDelay(t *testing.T) {
	tech := device.Default130()
	build := func() *circuit.Circuit {
		ckt := circuit.New()
		in := ckt.Node("in")
		out := ckt.Node("out")
		vdd := ckt.Node("vdd")
		ckt.AddVSource("vdd", vdd, circuit.Ground, circuit.DCSource(tech.Vdd))
		ckt.AddVSource("vin", in, circuit.Ground,
			circuit.SlewRamp(0.2e-9, 150e-12, tech.Vdd, wave.Rising))
		ckt.AddInverter("u1", tech, 4, in, out, vdd)
		ckt.AddCapacitor(out, circuit.Ground, 20e-15)
		return ckt
	}
	delayOf := func(opts Options) float64 {
		sim := New(build(), opts)
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		wi, _ := res.Waveform("in")
		wo, _ := res.Waveform("out")
		ti, err := wi.LastCrossing(0.5 * tech.Vdd)
		if err != nil {
			t.Fatal(err)
		}
		to, err := wo.LastCrossing(0.5 * tech.Vdd)
		if err != nil {
			t.Fatal(err)
		}
		return to - ti
	}
	fixed := delayOf(Options{Stop: 1.5e-9, Step: 0.25e-12})
	adaptive := delayOf(Options{Stop: 1.5e-9, Step: 1e-12, Adaptive: true, LTETol: 1e-3})
	if math.Abs(fixed-adaptive) > 2e-12 {
		t.Errorf("delay fixed %.2f ps vs adaptive %.2f ps", fixed*1e12, adaptive*1e12)
	}
}
