package noise

import (
	"errors"
	"math"
	"testing"

	"noisewave/internal/core"
	"noisewave/internal/device"
	"noisewave/internal/wave"
	"noisewave/internal/xtalk"
)

// bump builds a Gaussian glitch waveform around a baseline.
func bump(base, amp, center, width float64) *wave.Waveform {
	return wave.FromFunc(func(t float64) float64 {
		return base + amp*math.Exp(-((t-center)/width)*((t-center)/width))
	}, 0, 2e-9, 2000)
}

func TestAnalyzeGaussianBump(t *testing.T) {
	g, err := Analyze(bump(0, 0.4, 1e-9, 50e-12))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Peak-0.4) > 0.01 {
		t.Errorf("peak = %g", g.Peak)
	}
	if math.Abs(g.PeakTime-1e-9) > 5e-12 {
		t.Errorf("peak time = %g", g.PeakTime)
	}
	// Gaussian full width at half maximum = 2·width·sqrt(ln 2).
	fwhm := 2 * 50e-12 * math.Sqrt(math.Ln2)
	if math.Abs(g.Width-fwhm) > 0.1*fwhm {
		t.Errorf("width = %g, want ≈ %g", g.Width, fwhm)
	}
	// Gaussian area = amp·width·sqrt(pi).
	wantArea := 0.4 * 50e-12 * math.Sqrt(math.Pi)
	if math.Abs(g.Area-wantArea) > 0.05*wantArea {
		t.Errorf("area = %g, want ≈ %g", g.Area, wantArea)
	}
}

func TestAnalyzeUndershoot(t *testing.T) {
	g, err := Analyze(bump(1.2, -0.3, 0.8e-9, 40e-12))
	if err != nil {
		t.Fatal(err)
	}
	if g.Baseline != 1.2 {
		t.Errorf("baseline = %g", g.Baseline)
	}
	if math.Abs(g.Peak+0.3) > 0.01 {
		t.Errorf("peak = %g, want ≈ -0.3", g.Peak)
	}
}

func TestAnalyzeQuiet(t *testing.T) {
	flat := wave.FromFunc(func(float64) float64 { return 0.6 }, 0, 1e-9, 100)
	if _, err := Analyze(flat); !errors.Is(err, ErrNoGlitch) {
		t.Errorf("flat waveform: err = %v", err)
	}
}

func TestSeverity(t *testing.T) {
	g := Glitch{Peak: 0.3}
	if s := g.Severity(0.6); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("severity = %g", s)
	}
	if !math.IsInf(g.Severity(0), 1) {
		t.Error("zero margin should be infinite severity")
	}
}

// TestCouplingGlitchGrowsWithCoupling uses the real testbench: a quiet
// victim picks up a glitch whose peak grows with the coupling capacitance.
func TestCouplingGlitchGrowsWithCoupling(t *testing.T) {
	tech := device.Default130()
	var prevPeak float64
	for i, cc := range []float64{20e-15, 100e-15} {
		cfg := xtalk.ConfigurationI(tech)
		cfg.Step = 2e-12
		cfg.CouplingTotal = cc
		in, _, err := cfg.RunQuietVictim([]float64{0.3e-9})
		if err != nil {
			t.Fatalf("RunQuietVictim: %v", err)
		}
		g, err := Analyze(in)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		t.Logf("coupling %.0f fF: %v", cc*1e15, g)
		// Victim rests low... for a rising-victim config the quiet level is
		// low and a falling aggressor couples a NEGATIVE glitch.
		if g.Peak >= 0 {
			t.Errorf("coupling %g: expected negative glitch, got %+v", cc, g)
		}
		if i > 0 && math.Abs(g.Peak) <= math.Abs(prevPeak) {
			t.Errorf("glitch did not grow with coupling: %g vs %g", g.Peak, prevPeak)
		}
		prevPeak = g.Peak
	}
}

// TestGlitchPropagationAttenuation: a small glitch must be attenuated by
// the receiver chain (noise rejection), far below the failure threshold.
func TestGlitchPropagationAttenuation(t *testing.T) {
	tech := device.Default130()
	cfg := xtalk.ConfigurationI(tech)
	cfg.Step = 2e-12
	cfg.CouplingTotal = 30e-15 // weak coupling → small glitch
	in, _, err := cfg.RunQuietVictim([]float64{0.3e-9})
	if err != nil {
		t.Fatal(err)
	}
	gate := core.NewInverterChainSim(tech, []float64{4, 16}, cfg.Step)
	res, err := Propagate(gate, in, 0.5*tech.Vdd)
	if err != nil {
		t.Fatalf("Propagate: %v", err)
	}
	t.Logf("in %v -> out %v (gain %.2f)", res.Input, res.Output, res.Gain)
	if res.Propagates {
		t.Error("a small glitch should not propagate as a failure")
	}
	if res.Gain > 1.0 {
		t.Errorf("receiver amplified a sub-threshold glitch: gain %.2f", res.Gain)
	}
}
