// Package noise provides functional (glitch) noise analysis on quiet
// victims — the companion analysis to the delay-noise propagation the
// paper focuses on. It measures coupling glitches (peak, width, area),
// classifies them against noise-rejection thresholds, and propagates them
// through receiving gates with the transient simulator to decide whether a
// glitch is functionally dangerous.
package noise

import (
	"errors"
	"fmt"
	"math"

	"noisewave/internal/core"
	"noisewave/internal/wave"
)

// Glitch summarizes a noise bump on an otherwise quiet net.
type Glitch struct {
	// Baseline is the quiet level the net should hold (0 or Vdd).
	Baseline float64
	// Peak is the largest excursion from the baseline (signed: positive =
	// above baseline).
	Peak float64
	// PeakTime is when the peak occurs.
	PeakTime float64
	// Width is the time spent beyond half of the peak excursion.
	Width float64
	// Area is ∫ |v − baseline| dt over the record.
	Area float64
}

// ErrNoGlitch is returned when the waveform never leaves the baseline.
var ErrNoGlitch = errors.New("noise: waveform shows no excursion from baseline")

// Analyze measures the dominant glitch on a quiet-net waveform. The
// baseline is taken from the first sample (the DC state before any
// aggressor activity).
func Analyze(w *wave.Waveform) (Glitch, error) {
	if w == nil || w.Len() < 2 {
		return Glitch{}, errors.New("noise: empty waveform")
	}
	base := w.V[0]
	g := Glitch{Baseline: base}
	for i, v := range w.V {
		d := v - base
		if math.Abs(d) > math.Abs(g.Peak) {
			g.Peak = d
			g.PeakTime = w.T[i]
		}
	}
	if math.Abs(g.Peak) < 1e-9 {
		return g, ErrNoGlitch
	}
	// Width: total time with |v - base| above |peak|/2. Measured on the
	// excursion magnitude so both overshoot and undershoot work.
	half := math.Abs(g.Peak) / 2
	for i := 0; i+1 < w.Len(); i++ {
		d0 := math.Abs(w.V[i] - base)
		d1 := math.Abs(w.V[i+1] - base)
		dt := w.T[i+1] - w.T[i]
		switch {
		case d0 >= half && d1 >= half:
			g.Width += dt
		case d0 < half && d1 >= half:
			g.Width += dt * (d1 - half) / (d1 - d0)
		case d0 >= half && d1 < half:
			g.Width += dt * (d0 - half) / (d0 - d1)
		}
	}
	// Area of the excursion.
	for i := 0; i+1 < w.Len(); i++ {
		d0 := math.Abs(w.V[i] - base)
		d1 := math.Abs(w.V[i+1] - base)
		g.Area += 0.5 * (d0 + d1) * (w.T[i+1] - w.T[i])
	}
	return g, nil
}

// Severity classifies a glitch against a DC noise margin: the fraction of
// the margin the peak consumes (≥ 1 means a potential functional failure
// before considering the receiver's low-pass filtering).
func (g Glitch) Severity(noiseMargin float64) float64 {
	if noiseMargin <= 0 {
		return math.Inf(1)
	}
	return math.Abs(g.Peak) / noiseMargin
}

// String renders the glitch summary.
func (g Glitch) String() string {
	return fmt.Sprintf("Glitch{peak=%+.3fV at %.3gns width=%.3gps area=%.3gV·ps}",
		g.Peak, g.PeakTime*1e9, g.Width*1e12, g.Area*1e12)
}

// PropagationResult reports how a glitch survives a receiving gate.
type PropagationResult struct {
	Input  Glitch
	Output Glitch
	// Gain is |output peak| / |input peak| — below 1 the receiver
	// attenuates the glitch (noise rejection), above 1 it amplifies
	// toward a functional failure.
	Gain float64
	// Propagates reports whether the output excursion exceeds the given
	// failure threshold.
	Propagates bool
}

// Propagate replays the glitch waveform into a receiving gate chain and
// measures the surviving output glitch. failThreshold is the output
// excursion (volts) beyond which the glitch is considered propagated
// (typically 0.5·Vdd for a hard failure).
func Propagate(gate *core.GateSim, glitchWave *wave.Waveform, failThreshold float64) (PropagationResult, error) {
	in, err := Analyze(glitchWave)
	if err != nil {
		return PropagationResult{}, fmt.Errorf("noise: input: %w", err)
	}
	out, err := gate.OutputForWave(glitchWave, glitchWave.Start(), glitchWave.End())
	if err != nil {
		return PropagationResult{}, fmt.Errorf("noise: gate evaluation: %w", err)
	}
	og, err := Analyze(out)
	if err != nil && !errors.Is(err, ErrNoGlitch) {
		return PropagationResult{}, err
	}
	res := PropagationResult{Input: in, Output: og}
	if in.Peak != 0 {
		res.Gain = math.Abs(og.Peak) / math.Abs(in.Peak)
	}
	res.Propagates = math.Abs(og.Peak) >= failThreshold
	return res, nil
}
